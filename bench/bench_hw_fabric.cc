/**
 * @file
 * E10 — section 6: where should synchronization variables live?
 * The dedicated register file with broadcast local images keeps
 * busy-waiting off the buses entirely; memory-resident variables
 * put every poll (uncached) or every invalidation refill (cached)
 * on the data bus, stealing bandwidth from the actual data
 * accesses.
 */

#include <cstdio>

#include "bench/common.hh"
#include "workloads/fig21.hh"

using namespace psync;

int
main()
{
    bench::banner(
        "E10: synchronization fabric — registers+broadcast vs "
        "memory",
        "section 6",
        "local-register polling is free; memory-resident sync vars "
        "turn busy-waiting into bus and module traffic");

    const long n = 256;
    dep::Loop loop = workloads::makeFig21Loop(n);

    std::printf("%-22s %10s %10s %12s %12s %12s %10s\n", "fabric",
                "cycles", "util", "data-bus-txn", "sync-polls",
                "broadcasts", "bus-util");

    struct Variant
    {
        const char *name;
        sim::FabricKind fabric;
        bool cached;
    };
    for (const Variant &v :
         {Variant{"registers+broadcast", sim::FabricKind::registers,
                  true},
          Variant{"memory (cached spin)", sim::FabricKind::memory,
                  true},
          Variant{"memory (polling)", sim::FabricKind::memory,
                  false}}) {
        auto cfg = bench::registerMachine(8, 16);
        cfg.machine.fabric = v.fabric;
        cfg.machine.cachedSpinning = v.cached;
        auto r = core::runDoacross(
            loop, sync::SchemeKind::processImproved, cfg);
        bench::require(r, v.name);
        std::printf("%-22s %10llu %10.3f %12llu %12llu %12llu "
                    "%10.3f\n",
                    v.name,
                    static_cast<unsigned long long>(r.run.cycles),
                    r.run.utilization(),
                    static_cast<unsigned long long>(
                        r.run.dataBusTransactions),
                    static_cast<unsigned long long>(
                        r.run.syncMemPolls),
                    static_cast<unsigned long long>(
                        r.run.syncBusBroadcasts),
                    r.run.dataBusUtilization);
    }

    std::printf("\nper-scheme traffic on the register fabric "
                "(broadcast writes only):\n");
    std::printf("%-18s %12s %12s\n", "scheme", "broadcasts",
                "coalesced");
    for (auto kind : {sync::SchemeKind::processBasic,
                      sync::SchemeKind::processImproved,
                      sync::SchemeKind::statementOriented}) {
        auto cfg = bench::registerMachine(8, 16);
        auto r = core::runDoacross(loop, kind, cfg);
        bench::require(r, sync::schemeKindName(kind));
        std::printf("%-18s %12llu %12llu\n",
                    sync::schemeKindName(kind),
                    static_cast<unsigned long long>(
                        r.run.syncBusBroadcasts),
                    static_cast<unsigned long long>(
                        r.run.coalescedWrites));
    }
    return 0;
}
