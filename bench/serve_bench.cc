#include "bench/serve_bench.hh"

#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "bench/registry.hh"
#include "core/value_rule.hh"

namespace psync {
namespace bench {

namespace {

using Clock = std::chrono::steady_clock;

/** One plan source the traffic draws from. */
struct PlanSource
{
    std::string scenarioId;
    dep::Loop loop;
    sync::SchemeKind kind;
    core::RunConfig config;
};

/**
 * Resolve the glob to plan sources. The transform passes run (as
 * psync_bench's sim sweep does by default): served programs are
 * the optimized lowering.
 */
std::vector<PlanSource>
planSources(const std::string &glob)
{
    std::vector<PlanSource> sources;
    for (const Scenario *scenario : matchScenariosGlob(glob)) {
        PlanSource src;
        src.scenarioId = scenario->id;
        src.loop = scenario->loop();
        src.kind = scenario->kind;
        src.config = scenario->config;
        src.config.passes.enabled = true;
        src.config.passes.verify = true;
        src.config.passes.eliminateRedundantWaits = true;
        src.config.passes.peephole = true;
        sources.push_back(std::move(src));
    }
    if (sources.empty()) {
        std::fprintf(stderr,
                     "serve campaign: no scenario matches '%s'\n",
                     glob.c_str());
        std::abort();
    }
    return sources;
}

/** Deterministic plan draw for request `i` of a mix. */
std::size_t
drawSource(const std::string &mix, std::uint64_t seed,
           std::uint64_t i, std::size_t num_sources)
{
    std::uint64_t r = core::mix64(seed ^ (i * 0x9e3779b97f4a7c15ull));
    if (mix == "hotkey") {
        // 90% of traffic on source 0; the tail spreads uniformly
        // over the others (or the hot one again when it is alone).
        if (r % 10 != 9 || num_sources == 1)
            return 0;
        return 1 + core::mix64(r) % (num_sources - 1);
    }
    return r % num_sources;
}

ServeCellResult
runServeCell(const std::string &mix, native::WakePolicy policy,
             const std::vector<PlanSource> &sources,
             const ServeCampaignOptions &opts)
{
    serve::ServeConfig scfg;
    scfg.gangs = opts.gangs;
    scfg.gangSize = opts.gangSize;
    scfg.wakePolicy = policy;
    scfg.verifySampleEvery = opts.verifySampleEvery;
    scfg.requestTimeoutMs = opts.requestTimeoutMs;

    serve::DoacrossService service(scfg);

    const auto t0 = Clock::now();
    for (std::uint64_t i = 0; i < opts.requests; ++i) {
        const PlanSource &src = sources[drawSource(
            mix, opts.seed, i, sources.size())];
        // Full-path submission: the per-request plan-cache lookup
        // is part of what the cell measures.
        service.submit(src.loop, src.kind, src.config);
        if (mix == "bursty" && opts.burstSize &&
            (i + 1) % opts.burstSize == 0)
            service.waitIdle();
    }
    service.waitIdle();
    const auto t1 = Clock::now();
    serve::ServiceStats stats = service.stats();
    service.stop();

    ServeCellResult cell;
    cell.mix = mix;
    cell.policy = policy;
    cell.gangs = scfg.gangs;
    cell.gangSize = scfg.gangSize;
    cell.requests = stats.submitted;
    cell.failed = stats.failed;
    cell.programsRun = stats.programsRun;
    cell.verifySamples = stats.verifySamples;
    cell.verifyFailures = stats.verifyFailures;
    cell.epochsBegun = stats.epochsBegun;
    cell.planCacheHits = stats.planCacheHits;
    cell.planCacheMisses = stats.planCacheMisses;
    cell.planCacheHitRate = stats.planCacheHitRate;
    cell.latencyP50Ns = stats.latencyNs.percentile(0.50);
    cell.latencyP95Ns = stats.latencyNs.percentile(0.95);
    cell.latencyP99Ns = stats.latencyNs.percentile(0.99);
    cell.hostNanos = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(t1 -
                                                             t0)
            .count());
    return cell;
}

} // namespace

std::string
ServeCellResult::recordId() const
{
    return "serve/" + mix + "#" +
           std::string(native::wakePolicyName(policy)) + "-g" +
           std::to_string(gangs) + "x" + std::to_string(gangSize);
}

core::json::Value
ServeCellResult::toJson() const
{
    core::json::Value rec = core::json::object();
    rec.set("scenario", recordId());
    rec.set("kind", "serve");
    rec.set("mix", mix);
    rec.set("wake_policy", native::wakePolicyName(policy));
    rec.set("gangs", gangs);
    rec.set("gang_size", gangSize);
    rec.set("requests", requests);
    rec.set("failed", failed);
    rec.set("programs_run", programsRun);
    rec.set("programs_per_sec", programsPerSec());
    rec.set("plan_cache_hits", planCacheHits);
    rec.set("plan_cache_misses", planCacheMisses);
    rec.set("plan_cache_hit_rate", planCacheHitRate);
    rec.set("latency_p50_ns", latencyP50Ns);
    rec.set("latency_p95_ns", latencyP95Ns);
    rec.set("latency_p99_ns", latencyP99Ns);
    rec.set("epochs_begun", epochsBegun);
    rec.set("verify_samples", verifySamples);
    rec.set("verify_failures", verifyFailures);
    rec.set("host_ns", hostNanos);
    rec.set("winner", winner);
    return rec;
}

core::json::Value
ServeCampaignResult::toJson() const
{
    core::json::Value rec = core::json::object();
    if (!cells.empty()) {
        rec.set("scenario",
                "serve/campaign#g" +
                    std::to_string(cells.front().gangs) + "x" +
                    std::to_string(cells.front().gangSize));
    } else {
        rec.set("scenario", "serve/campaign");
    }
    rec.set("kind", "serve");
    rec.set("requests", totalRequests);
    rec.set("programs_run", totalPrograms);
    rec.set("failed", totalFailed);
    rec.set("verify_failures", totalVerifyFailures);
    core::json::Value src = core::json::array();
    for (const auto &s : sources)
        src.push(s);
    rec.set("sources", std::move(src));
    core::json::Value winners = core::json::object();
    for (const auto &cell : cells) {
        if (cell.winner)
            winners.set(cell.mix,
                        native::wakePolicyName(cell.policy));
    }
    rec.set("winners", std::move(winners));
    return rec;
}

ServeCampaignResult
runServeCampaign(const ServeCampaignOptions &opts)
{
    std::vector<PlanSource> sources =
        planSources(opts.scenarioGlob);

    std::vector<std::string> mixes = opts.mixes;
    if (mixes.empty())
        mixes = {"uniform", "hotkey", "bursty"};
    std::vector<native::WakePolicy> policies = opts.policies;
    if (policies.empty())
        policies = {native::WakePolicy::sharded,
                    native::WakePolicy::flatCombining};

    ServeCampaignResult result;
    for (const auto &src : sources)
        result.sources.push_back(src.scenarioId);

    for (const auto &mix : mixes) {
        std::size_t first = result.cells.size();
        for (auto policy : policies) {
            result.cells.push_back(
                runServeCell(mix, policy, sources, opts));
            const ServeCellResult &cell = result.cells.back();
            std::printf(
                "serve %-8s %-14s %8llu req %10llu prog "
                "%12.0f prog/s  cache %5.1f%%  p99 %8.2f ms%s\n",
                mix.c_str(), native::wakePolicyName(policy),
                static_cast<unsigned long long>(cell.requests),
                static_cast<unsigned long long>(cell.programsRun),
                cell.programsPerSec(),
                cell.planCacheHitRate * 100.0,
                static_cast<double>(cell.latencyP99Ns) / 1e6,
                cell.failed || cell.verifyFailures ? "  FAILED"
                                                   : "");
        }
        // The race: fastest policy of this mix wins.
        std::size_t best = first;
        for (std::size_t i = first; i < result.cells.size(); ++i) {
            if (result.cells[i].programsPerSec() >
                result.cells[best].programsPerSec())
                best = i;
        }
        result.cells[best].winner = true;
    }

    for (const auto &cell : result.cells) {
        result.totalRequests += cell.requests;
        result.totalPrograms += cell.programsRun;
        result.totalFailed += cell.failed;
        result.totalVerifyFailures += cell.verifyFailures;
    }
    return result;
}

} // namespace bench
} // namespace psync
