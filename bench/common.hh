/**
 * @file
 * Shared helpers for the experiment benches: standard machine
 * configurations and fixed-width table printing. Each bench binary
 * regenerates one experiment from the DESIGN.md index (the paper
 * has no numeric tables, so every figure/claim gets a quantitative
 * table here; EXPERIMENTS.md records claim vs measured).
 */

#ifndef PSYNC_BENCH_COMMON_HH
#define PSYNC_BENCH_COMMON_HH

#include <cstdio>
#include <string>

#include "core/runtime.hh"

namespace psync {
namespace bench {

/** Default register-fabric machine (section 6 hardware). */
inline core::RunConfig
registerMachine(unsigned procs = 8, unsigned num_pcs = 16)
{
    core::RunConfig cfg;
    cfg.machine.numProcs = procs;
    cfg.machine.fabric = sim::FabricKind::registers;
    cfg.machine.syncRegisters = 1u << 22;
    cfg.scheme.numPcs = num_pcs;
    cfg.scheme.numScs = 1u << 20;
    cfg.tickLimit = 2000000000ull;
    return cfg;
}

/** Default memory-fabric machine (keys live with the data). */
inline core::RunConfig
memoryMachine(unsigned procs = 8)
{
    core::RunConfig cfg = registerMachine(procs);
    cfg.machine.fabric = sim::FabricKind::memory;
    return cfg;
}

/** Pick the natural fabric for a scheme. */
inline core::RunConfig
machineFor(sync::SchemeKind kind, unsigned procs = 8,
           unsigned num_pcs = 16)
{
    if (kind == sync::SchemeKind::referenceBased ||
        kind == sync::SchemeKind::instanceBased) {
        return memoryMachine(procs);
    }
    return registerMachine(procs, num_pcs);
}

/** Print a header naming the experiment and the paper claim. */
inline void
banner(const char *exp_id, const char *artifact, const char *claim)
{
    std::printf("==========================================================="
                "=====================\n");
    std::printf("%s  (paper artifact: %s)\n", exp_id, artifact);
    std::printf("claim: %s\n", claim);
    std::printf("==========================================================="
                "=====================\n");
}

/** Abort the bench if a run was incorrect or deadlocked. */
inline void
require(const core::DoacrossResult &r, const char *what)
{
    if (!r.run.completed) {
        std::fprintf(stderr, "%s: DEADLOCK (tick limit)\n", what);
        std::exit(1);
    }
    if (!r.correct()) {
        std::fprintf(stderr, "%s: dependence violation: %s\n", what,
                     r.violations.front().c_str());
        std::exit(1);
    }
}

} // namespace bench
} // namespace psync

#endif // PSYNC_BENCH_COMMON_HH
