/**
 * @file
 * Shared helpers for the experiment benches: standard machine
 * configurations and fixed-width table printing. Each bench binary
 * regenerates one experiment from the DESIGN.md index (the paper
 * has no numeric tables, so every figure/claim gets a quantitative
 * table here; EXPERIMENTS.md records claim vs measured).
 */

#ifndef PSYNC_BENCH_COMMON_HH
#define PSYNC_BENCH_COMMON_HH

#include <cstdio>
#include <fstream>
#include <initializer_list>
#include <string>
#include <vector>

#include "core/json.hh"
#include "core/runtime.hh"

namespace psync {
namespace bench {

/** Default register-fabric machine (section 6 hardware). */
inline core::RunConfig
registerMachine(unsigned procs = 8, unsigned num_pcs = 16)
{
    core::RunConfig cfg;
    cfg.machine.numProcs = procs;
    cfg.machine.fabric = sim::FabricKind::registers;
    cfg.machine.syncRegisters = 1u << 22;
    cfg.scheme.numPcs = num_pcs;
    cfg.scheme.numScs = 1u << 20;
    cfg.tickLimit = 2000000000ull;
    return cfg;
}

/** Default memory-fabric machine (keys live with the data). */
inline core::RunConfig
memoryMachine(unsigned procs = 8)
{
    core::RunConfig cfg = registerMachine(procs);
    cfg.machine.fabric = sim::FabricKind::memory;
    return cfg;
}

/**
 * Combining-fabric machine: sync variables in interleaved modules
 * behind a combining omega network (Ultracomputer/RP3 style). Same
 * variable capacity model as the memory machine; the network in
 * front is what changes.
 */
inline core::RunConfig
combiningMachine(unsigned procs = 8, unsigned num_pcs = 16)
{
    core::RunConfig cfg = registerMachine(procs, num_pcs);
    cfg.machine.fabric = sim::FabricKind::combining;
    return cfg;
}

/**
 * Two-level hierarchical cluster machine: per-cluster register
 * images and local buses joined by one global stage.
 */
inline core::RunConfig
hierarchicalMachine(unsigned procs = 8, unsigned clusters = 4,
                    unsigned num_pcs = 16)
{
    core::RunConfig cfg = registerMachine(procs, num_pcs);
    cfg.machine.fabric = sim::FabricKind::hierarchical;
    cfg.machine.numClusters = clusters;
    return cfg;
}

/** Pick the natural fabric for a scheme. */
inline core::RunConfig
machineFor(sync::SchemeKind kind, unsigned procs = 8,
           unsigned num_pcs = 16)
{
    if (kind == sync::SchemeKind::referenceBased ||
        kind == sync::SchemeKind::instanceBased) {
        return memoryMachine(procs);
    }
    return registerMachine(procs, num_pcs);
}

/** Print a header naming the experiment and the paper claim. */
inline void
banner(const char *exp_id, const char *artifact, const char *claim)
{
    std::printf("==========================================================="
                "=====================\n");
    std::printf("%s  (paper artifact: %s)\n", exp_id, artifact);
    std::printf("claim: %s\n", claim);
    std::printf("==========================================================="
                "=====================\n");
}

/**
 * Fixed-width table printing shared by the bench binaries. Columns
 * are declared once (name, width, alignment); every row then lines
 * up under the header without each bench repeating printf format
 * strings. Cells are pre-formatted strings — use the num() /
 * fixed() / times() helpers for the common numeric formats.
 */
class Table
{
  public:
    struct Col
    {
        const char *name;
        int width;
        /** 'l' left-aligns (labels); anything else right-aligns. */
        char align = 'r';
    };

    Table(std::initializer_list<Col> cols) : cols_(cols) {}

    /** Print the header row from the column names. */
    void
    header() const
    {
        for (const auto &col : cols_)
            cell(col, col.name);
        std::printf("\n");
    }

    /** Print one row; extra cells are ignored, missing ones blank. */
    void
    row(std::initializer_list<std::string> cells) const
    {
        auto it = cells.begin();
        for (const auto &col : cols_) {
            cell(col, it != cells.end() ? it->c_str() : "");
            if (it != cells.end())
                ++it;
        }
        std::printf("\n");
    }

    /** Decimal integer cell. */
    static std::string
    num(std::uint64_t v)
    {
        return std::to_string(v);
    }

    /** Fixed-point cell ("0.123"). */
    static std::string
    fixed(double v, int prec = 3)
    {
        char buf[32];
        std::snprintf(buf, sizeof buf, "%.*f", prec, v);
        return buf;
    }

    /** Ratio cell ("1.66x"). */
    static std::string
    times(double v, int prec = 2)
    {
        return fixed(v, prec) + "x";
    }

  private:
    void
    cell(const Col &col, const char *text) const
    {
        if (col.align == 'l')
            std::printf("%-*s ", col.width, text);
        else
            std::printf("%*s ", col.width, text);
    }

    std::vector<Col> cols_;
};

/**
 * Pull a `--json <path>` flag out of argv (compacting it in place so
 * later argument parsers — e.g. google-benchmark's — never see it).
 * @return the path, or empty when the flag is absent.
 */
inline std::string
extractJsonPath(int &argc, char **argv)
{
    std::string path;
    int out = 1;
    for (int in = 1; in < argc; ++in) {
        if (std::string(argv[in]) == "--json" && in + 1 < argc) {
            path = argv[++in];
            continue;
        }
        argv[out++] = argv[in];
    }
    argc = out;
    return path;
}

/**
 * Collects per-run JSON records and writes them as one document:
 * `{"bench": ..., "records": [...]}`. Records embed
 * RunResult::toJson() so every table row is machine-readable.
 */
class JsonReport
{
  public:
    explicit JsonReport(std::string path, std::string bench_name)
        : path_(std::move(path)), benchName_(std::move(bench_name))
    {
    }

    bool enabled() const { return !path_.empty(); }

    /** Append one record; extra fields go in front of the result. */
    void
    add(core::json::Value record)
    {
        records_.push(std::move(record));
    }

    /** Convenience: label + scheme plan + run result. */
    void
    addRun(const std::string &workload, const std::string &scheme,
           const core::DoacrossResult &r)
    {
        core::json::Value rec = core::json::object();
        rec.set("workload", workload);
        rec.set("scheme", scheme);
        rec.set("sync_vars", r.plan.numSyncVars);
        rec.set("sync_storage_bytes", r.plan.syncStorageBytes);
        rec.set("renamed_storage_bytes", r.plan.renamedStorageBytes);
        rec.set("init_cycles",
                static_cast<std::uint64_t>(r.initCycles));
        rec.set("result", r.run.toJson());
        add(std::move(rec));
    }

    /** Write the document; call once at the end of main. */
    void
    write()
    {
        if (!enabled())
            return;
        core::json::Value doc = core::json::object();
        doc.set("bench", benchName_);
        doc.set("records", std::move(records_));
        std::ofstream os(path_);
        if (!os) {
            std::fprintf(stderr, "cannot write %s\n", path_.c_str());
            std::exit(1);
        }
        doc.dump(os, 2);
        os << "\n";
    }

  private:
    std::string path_;
    std::string benchName_;
    core::json::Value records_ = core::json::array();
};

/** Abort the bench if a run was incorrect or deadlocked. */
inline void
require(const core::DoacrossResult &r, const char *what)
{
    if (!r.run.completed) {
        std::fprintf(stderr, "%s: DEADLOCK (tick limit)\n", what);
        std::exit(1);
    }
    if (!r.correct()) {
        std::fprintf(stderr, "%s: dependence violation: %s\n", what,
                     r.violations.front().c_str());
        std::exit(1);
    }
}

} // namespace bench
} // namespace psync

#endif // PSYNC_BENCH_COMMON_HH
