/**
 * @file
 * E12 — host-side micro-benchmarks (google-benchmark): throughput
 * of dependence analysis, scheme planning, per-iteration codegen
 * and whole-machine simulation. These quantify the toolkit itself
 * rather than the simulated machine.
 */

#include <benchmark/benchmark.h>

#include "bench/common.hh"
#include "core/runtime.hh"
#include "dep/dep_graph.hh"
#include "sync/process_oriented.hh"
#include "workloads/fig21.hh"
#include "workloads/synthetic.hh"

using namespace psync;

namespace {

void
BM_DependenceAnalysis(benchmark::State &state)
{
    workloads::SyntheticSpec spec;
    spec.numStatements = static_cast<unsigned>(state.range(0));
    spec.seed = 5;
    dep::Loop loop = workloads::makeSyntheticLoop(spec);
    for (auto _ : state) {
        dep::DepAnalysis analysis = dep::analyze(loop);
        benchmark::DoNotOptimize(analysis.deps.data());
    }
    state.SetItemsProcessed(state.iterations() *
                            spec.numStatements);
}
BENCHMARK(BM_DependenceAnalysis)->Arg(4)->Arg(8)->Arg(16);

void
BM_CoverageElimination(benchmark::State &state)
{
    dep::Loop loop = workloads::makeFig21Loop(64);
    for (auto _ : state) {
        dep::DepGraph graph(loop);
        benchmark::DoNotOptimize(graph.numCovered());
    }
}
BENCHMARK(BM_CoverageElimination);

void
BM_ProcessSchemeEmit(benchmark::State &state)
{
    sim::MachineConfig mc;
    mc.numProcs = 1;
    mc.fabric = sim::FabricKind::registers;
    mc.syncRegisters = 64;
    sim::Machine machine(mc);
    dep::Loop loop = workloads::makeFig21Loop(1 << 16);
    dep::DepGraph graph(loop);
    dep::DataLayout layout(loop);
    sync::ProcessOrientedScheme scheme(true);
    sync::SchemeConfig cfg;
    scheme.plan(graph, layout, machine.fabric(), cfg);

    std::uint64_t lpid = 5;
    for (auto _ : state) {
        sim::Program prog = scheme.emit(lpid);
        benchmark::DoNotOptimize(prog.ops.data());
        lpid = lpid % 60000 + 1;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ProcessSchemeEmit);

void
BM_FullDoacrossRun(benchmark::State &state)
{
    dep::Loop loop = workloads::makeFig21Loop(state.range(0));
    core::RunConfig cfg;
    cfg.machine.numProcs = 8;
    cfg.machine.fabric = sim::FabricKind::registers;
    cfg.checkTrace = false;
    for (auto _ : state) {
        auto r = core::runDoacross(
            loop, sync::SchemeKind::processImproved, cfg);
        benchmark::DoNotOptimize(r.run.cycles);
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_FullDoacrossRun)->Arg(64)->Arg(256)->Arg(1024);

void
BM_SimulatedEventsPerSecond(benchmark::State &state)
{
    dep::Loop loop = workloads::makeFig21Loop(512);
    core::RunConfig cfg;
    cfg.machine.numProcs = 8;
    cfg.machine.fabric = sim::FabricKind::memory;
    cfg.checkTrace = false;
    for (auto _ : state) {
        auto r = core::runDoacross(
            loop, sync::SchemeKind::referenceBased, cfg);
        benchmark::DoNotOptimize(r.run.memAccesses);
    }
}
BENCHMARK(BM_SimulatedEventsPerSecond);

/**
 * With --json, also run the fixed simulation scenarios once each
 * and dump their full RunResult records — the stable, CI-diffable
 * complement of the host-timing numbers above.
 */
void
emitJsonRecords(bench::JsonReport &report)
{
    dep::Loop loop = workloads::makeFig21Loop(256);
    {
        auto cfg = bench::registerMachine();
        auto r = core::runDoacross(
            loop, sync::SchemeKind::processImproved, cfg);
        bench::require(r, "process-improved");
        report.addRun("fig2.1 (N=256)", "process-improved", r);
    }
    {
        auto cfg = bench::memoryMachine();
        auto r = core::runDoacross(
            loop, sync::SchemeKind::referenceBased, cfg);
        bench::require(r, "reference");
        report.addRun("fig2.1 (N=256)", "reference", r);
    }
}

} // namespace

int
main(int argc, char **argv)
{
    bench::JsonReport report(bench::extractJsonPath(argc, argv),
                             "bench_micro");
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    if (report.enabled()) {
        emitJsonRecords(report);
        report.write();
    }
    return 0;
}
