/**
 * @file
 * Declarative experiment registry.
 *
 * Every Doacross experiment the `bench_*` binaries hard-code —
 * scheme x workload x machine configuration — is named here as a
 * Scenario with a stable id ("<group>/<variant>"). The `psync_bench`
 * driver runs any subset and appends schema-versioned records to a
 * trajectory file (BENCH_PSYNC.json), so cycle counts are
 * comparable across commits and regressions are machine-detectable
 * (bench/compare). Scenario ids are the regression-tracking
 * contract: renaming one orphans its history.
 */

#ifndef PSYNC_BENCH_REGISTRY_HH
#define PSYNC_BENCH_REGISTRY_HH

#include <functional>
#include <string>
#include <vector>

#include <memory>

#include "core/json.hh"
#include "core/profile.hh"
#include "core/runtime.hh"
#include "core/timeline.hh"
#include "dep/loop_ir.hh"
#include "native/runner.hh"

namespace psync {
namespace bench {

/**
 * Version of the record layout written to trajectory files.
 * History: v1 had no host-timing fields; v2 adds host_ns,
 * events_executed and events_per_sec to each record; v3 tags each
 * record with "kind" ("sim" or "native"), adds event_core and
 * heap_fallback_events to sim records, and introduces native
 * records (host wall-time of real-thread execution — no simulated
 * cycles); v4 adds the IR pass-pipeline fields to sim records:
 * "passes" (whether transform passes ran), "waits_before",
 * "waits_after", "waits_eliminated", "ops_before", "ops_after" and
 * "ops_merged"; v5 adds profiling fields to records produced under
 * `--profile`: sim records gain "critpath_achieved",
 * "critpath_gap_pct" and a "profile" object (path phase
 * composition plus wait-latency histogram summaries), native
 * records gain "fa_retries", "wait_ns" and "park_wake_ns" — all
 * absent on unprofiled runs, so unprofiled v5 records differ from
 * v4 only in the version stamp; v6 adds a "timeline" summary
 * object to sim records produced under `--timeline` (sampling
 * interval, peak bus occupancy and queue depth, peak module
 * backlog, peak waiter count, peak event rate, heap-fallback total
 * and the detected hot-spot records) — absent on unsampled runs,
 * so those records differ from v5 only in the version stamp; v7
 * introduces kind:"fuzz" campaign-coverage records (programs run,
 * shapes drawn, scheme x backend x passes runs, analytical-oracle
 * gates, divergence count and a deterministic case digest) written
 * by `psync_bench --fuzz` — sim and native records are unchanged
 * from v6; v8 introduces kind:"serve" records written by
 * `psync_serve`, the persistent runtime-service campaigns: each
 * carries the traffic mix, wake policy, gang shape, requests
 * served, programs_per_sec, plan-cache hit rate,
 * submit-to-publish latency percentiles (p50/p95/p99 ns), epochs
 * begun, verification samples/failures, and per-mix winner
 * marking for the sharded-vs-flat-combining fabric race — sim,
 * native and fuzz records are unchanged from v7; v9 adds the
 * fabric-topology fields that ride along with the composed sync
 * fabrics: sim records on the combining fabric carry a top-level
 * "combine_rate" plus the per-stage network arrays inside
 * "result" (net_packets, net_combined, net_stage_conflicts,
 * net_stage_combines, net_stage_utilization, ...), and records on
 * the hierarchical fabric carry "num_clusters" /
 * "procs_per_cluster" plus the broadcast/coalescing counters and
 * "cluster_bus_utilization" inside "result" — all absent on the
 * flat fabrics, so memory/register records differ from v8 only in
 * the version stamp. v9 also introduces the scale-1024 scenario
 * group and, on fuzz records, a conditional "fabric_rotation"
 * marker for --fuzz-fabric campaigns. Loaders accept all versions
 * and ignore non-"sim" records when comparing cycles.
 */
constexpr int kTrajectorySchemaVersion = 9;

/** Oldest trajectory schema loadTrajectory still accepts. */
constexpr int kMinTrajectorySchemaVersion = 1;

/** One named experiment: a loop, a scheme, and a machine. */
struct Scenario
{
    /** Stable id, "<group>/<variant>" (e.g. "fig21-n256/statement"). */
    std::string id;

    /** Workload label shared by the group's scenarios. */
    std::string workload;

    /** Scheme label, including variant suffixes ("reference+cedar"). */
    std::string scheme;

    /** One line on what the scenario demonstrates. */
    std::string description;

    sync::SchemeKind kind = sync::SchemeKind::processImproved;

    /** Builds the loop (deterministic; called per run). */
    std::function<dep::Loop()> loop;

    /** Fully-configured machine + scheme + schedule knobs. */
    core::RunConfig config;
};

/** All registered scenarios, in registration order. */
const std::vector<Scenario> &allScenarios();

/** Exact-id lookup; nullptr when unknown. */
const Scenario *findScenario(const std::string &id);

/**
 * Scenarios whose id contains `pattern` (exact match wins alone);
 * empty pattern matches everything.
 */
std::vector<const Scenario *>
matchScenarios(const std::string &pattern);

/**
 * Shell-style glob match over the whole of `text`: `*` matches any
 * run (including empty, including '/'), `?` any single character;
 * everything else is literal. Iterative, so adversarial patterns
 * cost O(pattern x text), not exponential time.
 */
bool globMatch(const std::string &pattern, const std::string &text);

/**
 * Scenarios whose id matches the shell-style glob (--scenarios):
 * "fig32-*" takes a group, "*statement*" a scheme column. A
 * pattern without a glob metacharacter degrades to substring
 * matching so existing --run habits keep working.
 */
std::vector<const Scenario *>
matchScenariosGlob(const std::string &pattern);

/** Outcome of one scenario run, with the bound attached. */
struct ScenarioRecord
{
    const Scenario *scenario = nullptr;
    core::DoacrossResult result;
    /** Pure dependence-chain bound (one processor per iteration). */
    sim::Tick depBoundCycles = 0;
    /** Dependence-or-work/P bound on the scenario's machine. */
    sim::Tick boundCycles = 0;

    /**
     * Host wall-clock nanoseconds runScenario spent on this record
     * (loop build + planning + simulation + trace check). Not
     * comparable across machines; trajectory comparisons only look
     * at simulated cycles.
     */
    std::uint64_t hostNanos = 0;

    /**
     * Whether IR transform passes (redundant-wait elimination and
     * the peephole) were enabled for this run. The verifier runs
     * either way; recorded so trajectory readers can tell the two
     * series apart.
     */
    bool transformsEnabled = false;

    /**
     * Achieved-critical-path profile, built when runScenario was
     * asked to profile (requires a TraceRecorder tracer); null
     * otherwise. Shared so records stay cheap to copy.
     */
    std::shared_ptr<core::CriticalPathProfile> profile;

    /**
     * Assembled timeline, built when runScenario sampled the run
     * (timeline_interval > 0, requires a TraceRecorder tracer);
     * null otherwise. Shared so records stay cheap to copy.
     */
    std::shared_ptr<core::Timeline> timeline;

    /** Simulated events per host second (0 when unmeasured). */
    double
    eventsPerSec() const
    {
        if (hostNanos == 0)
            return 0.0;
        return static_cast<double>(result.run.eventsExecuted) *
               1e9 / static_cast<double>(hostNanos);
    }

    /**
     * One schema-versioned trajectory record: scenario id, scheme,
     * machine shape, cycles, bound, cycle split, bus and memory
     * utilization, host timing, plus the full RunResult under
     * "result".
     */
    core::json::Value toJson() const;
};

/**
 * Run one scenario (plan + run + trace-verify). Aborts the process
 * on a dependence violation or deadlock — a broken scenario must
 * never silently enter a trajectory file.
 * @param tracer optional event tracer for blame reports.
 * @param passes when non-null, overrides the scenario's registered
 *        ir::PassConfig (psync_bench uses this to turn the
 *        transform passes on by default and off under
 *        `--no-passes`); null runs the config as registered, i.e.
 *        verifier on, transforms off.
 * @param profile build the achieved-critical-path profile from the
 *        recorded trace and fill result.run.waitLatency; requires
 *        `tracer` to be a core::TraceRecorder.
 * @param timeline_interval sample the run's timeline every this
 *        many cycles (0 = off). Sampling is passive — cycle counts
 *        are identical with it on or off — and needs `tracer` to be
 *        a core::TraceRecorder for the Timeline to be assembled.
 *        kTimelineAutoInterval picks an interval from the scenario's
 *        cycle bound (~128 samples across the run).
 */
ScenarioRecord runScenario(const Scenario &scenario,
                           sim::Tracer *tracer = nullptr,
                           const ir::PassConfig *passes = nullptr,
                           bool profile = false,
                           sim::Tick timeline_interval = 0);

/**
 * Sentinel for runScenario's timeline_interval: derive the interval
 * from the scenario's achievable cycle bound, max(16, bound / 128).
 */
constexpr sim::Tick kTimelineAutoInterval =
    static_cast<sim::Tick>(-1);

/**
 * Outcome of one native (real-thread) scenario run. Records host
 * wall-time and throughput only; there are no simulated cycles to
 * regress against, so compare tooling skips these records.
 */
struct NativeScenarioRecord
{
    const Scenario *scenario = nullptr;
    unsigned numThreads = 0;
    native::NativeDoacrossResult result;
    /** Host-clock latency instrumentation was on for this run. */
    bool profiled = false;

    /**
     * Trajectory record with kind "native". The id is the scenario
     * id suffixed "#native-t<threads>" so native series never
     * collide with the sim series for the same scenario.
     */
    std::string recordId() const;
    core::json::Value toJson() const;
};

/**
 * Execute one scenario on the native backend with `threads` host
 * threads. Planning is identical to runScenario; execution happens
 * on real threads and is verified by replaying the access log
 * through the same trace checker. Aborts the process on a
 * dependence violation, value divergence, or deadlock. With
 * `profile`, blocking waits are host-clock timed (spin-vs-park
 * split, park wakeup latency, fetch&add retries) into the record.
 */
NativeScenarioRecord runScenarioNative(const Scenario &scenario,
                                       unsigned threads,
                                       bool profile = false);

} // namespace bench
} // namespace psync

#endif // PSYNC_BENCH_REGISTRY_HH
