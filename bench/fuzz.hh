/**
 * @file
 * Differential Doacross fuzzing.
 *
 * A fuzz campaign draws seeded random loops from the
 * workloads/fuzz grammar and pushes each one through the entire
 * stack: every synchronization scheme x both backends (simulator
 * and native threads) x the IR pass pipeline off and on. Three
 * independent oracles must agree on every case:
 *
 *  1. the functional sequential replay (core::sequentialImage) —
 *     no simulator, scheme, or trace involved;
 *  2. the simulator's ValueTrace image + trace-checker verdict;
 *  3. the native backend's ticket-replayed image + checker verdict.
 *
 * On small instance DAGs a fourth, analytical oracle is gated too:
 * the closed-form critical path (core::analyticalCriticalPath) must
 * equal the DP bound exactly, and the profiled achieved path must
 * land in [analytical bound, simulated cycles].
 *
 * Any divergence is shrunk (greedy iteration/statement/reference
 * bisection over the canonical grammar) and emitted as a
 * self-contained repro bundle: one JSON file holding the canonical
 * loop text, the per-case configuration, and the observed failures,
 * replayable with `psync_bench --fuzz-replay FILE`.
 *
 * Everything a campaign reports is a pure function of (seed, count,
 * limits): the coverage record and case digest are byte-identical
 * across --jobs counts, which CI turns into a determinism gate.
 */

#ifndef PSYNC_BENCH_FUZZ_HH
#define PSYNC_BENCH_FUZZ_HH

#include <cstdint>
#include <string>
#include <vector>

#include "core/json.hh"
#include "core/runtime.hh"
#include "workloads/fuzz.hh"

namespace psync {
namespace bench {

/** Knobs of one fuzz campaign. */
struct FuzzOptions
{
    /** Programs to generate (--fuzz N). */
    std::uint64_t count = 100;
    /** Campaign seed (--seed S). */
    std::uint64_t seed = 1;
    /** Worker threads over cases (--jobs). */
    unsigned jobs = 1;
    /** Grammar size bounds. */
    workloads::FuzzLimits limits;
    /** Directory for repro bundles; empty = don't write files. */
    std::string reproDir;
    /** Shrink divergent cases before bundling. */
    bool shrink = true;
    /**
     * Gate the analytical critical-path oracle on cases with at
     * most this many statement instances (iterations x statements).
     */
    std::uint64_t smallDagMaxInstances = 600;
    /** Max predicate evaluations while shrinking one case. */
    std::uint64_t shrinkBudget = 160;
    /**
     * Watchdog deadline for each native-backend leg, threaded into
     * native::NativeConfig::timeoutMs. Fuzz programs are tiny
     * (hundreds of iterations); a healthy native run finishes in
     * milliseconds, so a short deadline keeps backend-deadlock
     * cases from stalling the campaign for the default 20s each.
     */
    std::uint64_t nativeTimeoutMs = 2000;
    /**
     * Also run each case through the persistent runtime service
     * (serve::DoacrossService, epoch-reused fabric) and compare its
     * image against the same oracles as the direct native leg.
     */
    bool serveMode = false;
    /**
     * Fabric-rotation legs (--fuzz-fabric): re-run each clean
     * (scheme, case) pair on one rotated sync fabric — memory,
     * registers, combining omega network or hierarchical clusters,
     * chosen round-robin from (case index, scheme) — and hold the
     * run to the same sequential-replay oracle. Timing differs
     * across fabrics by design; values must not.
     */
    bool fabricMode = false;
};

/**
 * Per-case run configuration, drawn deterministically from
 * (seed, index) independently of the loop shape: processor count,
 * schedule policy, chunk size, PC count, native thread count and
 * interleaving-jitter seed all vary across cases so the matrix
 * sweeps the configuration space, not just the program space.
 */
struct FuzzCaseConfig
{
    unsigned procs = 4;
    core::SchedulePolicy schedule =
        core::SchedulePolicy::selfScheduling;
    std::uint64_t chunkSize = 4;
    unsigned numPcs = 16;
    unsigned nativeThreads = 2;
    std::uint64_t timingSeed = 1;
};

/** The configuration fuzz case `index` of campaign `seed` runs. */
FuzzCaseConfig fuzzCaseConfig(std::uint64_t seed,
                              std::uint64_t index);

/** Outcome of the differential matrix on one generated loop. */
struct FuzzCaseOutcome
{
    std::uint64_t index = 0;
    /** One entry per divergence; empty = all oracles agreed. */
    std::vector<std::string> failures;

    // Deterministic coverage facts, folded into the campaign
    // record.
    bool depth2 = false;
    bool guarded = false;
    /** instance-based skipped (scheme rejects guarded bodies). */
    bool instanceSkipped = false;
    /** Analytical critical-path oracle was gated on this case. */
    bool analyticalGated = false;
    /** scheme x backend x passes executions performed. */
    std::uint64_t schemeRuns = 0;
    /** FNV digest of the sequential image (memory + reads). */
    std::uint64_t imageDigest = 0;
    /** FNV digest over (scheme, passes, simulated cycles). */
    std::uint64_t cyclesDigest = 0;

    bool ok() const { return failures.empty(); }
};

/**
 * Run the full differential matrix on one loop under one case
 * configuration. Never aborts the process: verifier rejections are
 * reported as failures (the matrix runs with the in-planner
 * verifier off and checks ir::verifyPrograms explicitly).
 */
FuzzCaseOutcome runFuzzCase(const dep::Loop &loop,
                            const FuzzCaseConfig &config,
                            const FuzzOptions &opts,
                            std::uint64_t index = 0);

/** One divergent case, after shrinking. */
struct FuzzDivergence
{
    std::uint64_t index = 0;
    /** Canonical text of the shrunk loop. */
    std::string canonical;
    /** Canonical text of the original generated loop. */
    std::string originalCanonical;
    /** Failures observed on the shrunk loop. */
    std::vector<std::string> failures;
    /** Bundle file path; empty when reproDir was empty. */
    std::string bundlePath;

    /** Self-contained repro bundle document. */
    core::json::Value toBundle(const FuzzOptions &opts,
                               const FuzzCaseConfig &config) const;
};

/** Aggregate outcome of a campaign. */
struct FuzzCampaignResult
{
    std::uint64_t seed = 0;
    std::uint64_t programs = 0;
    std::uint64_t schemeRuns = 0;
    std::uint64_t depth2 = 0;
    std::uint64_t guarded = 0;
    std::uint64_t instanceSkipped = 0;
    std::uint64_t analyticalGated = 0;
    /** Campaign ran the fabric-rotation legs (--fuzz-fabric). */
    bool fabricMode = false;
    /** Fold of every case's digests, in case order. */
    std::uint64_t caseDigest = 0;
    std::vector<FuzzDivergence> divergences;

    bool ok() const { return divergences.empty(); }

    /**
     * Trajectory coverage record (kind "fuzz", schema v7): programs
     * run, shapes drawn, scheme runs, analytical gates, divergence
     * count and the campaign digest. Deterministic across --jobs.
     */
    core::json::Value toJson() const;
};

/**
 * Generate and differentially test `opts.count` programs on a
 * worker pool. Shrinks and bundles divergent cases (serially, after
 * the sweep). Progress lines go to stdout.
 */
FuzzCampaignResult runFuzzCampaign(const FuzzOptions &opts);

/**
 * Re-run a repro bundle produced by a campaign (or a hand-written
 * one). Fills `failures` with the divergences observed now; returns
 * false when the bundle itself is malformed (error in `failures`).
 */
bool replayFuzzBundle(const core::json::Value &bundle,
                      std::vector<std::string> &failures);

} // namespace bench
} // namespace psync

#endif // PSYNC_BENCH_FUZZ_HH
