/**
 * @file
 * E5 — Fig. 5.1 (Example 1): the Doacross-enclosing-a-serial-loop
 * relaxation kernel, four ways:
 *
 *  - asynchronous pipelining on process counters (G sweep);
 *  - the wavefront method with a butterfly barrier;
 *  - the wavefront method with a counter barrier;
 *  - a statement-counter pipeline under a limited SC file.
 *
 * Both methods have the same number of parallel steps; the paper
 * claims efficiency and utilization favor pipelining, that G
 * trades synchronization count against pipeline delay, and that
 * the statement scheme needs N-1 counters to pipeline finely.
 */

#include <cstdio>

#include "bench/common.hh"
#include "core/trace_check.hh"
#include "dep/dep_graph.hh"
#include "workloads/relaxation.hh"

using namespace psync;

namespace {

struct Row
{
    core::RunResult result;
    bool clean = true;
};

Row
runPipelined(const workloads::RelaxationSpec &spec, unsigned procs)
{
    core::TraceChecker checker;
    auto mc = bench::registerMachine(procs).machine;
    sim::Machine machine(mc, &checker);
    sync::PcFile pcs(machine.fabric(), 2 * procs);
    dep::Loop loop =
        workloads::makeRelaxationLoop(spec.n, spec.stmtCost);
    dep::DataLayout layout(loop);
    auto programs =
        workloads::buildPipelinedPrograms(pcs, loop, layout, spec);
    Row row;
    row.result = core::runProgramPool(
        machine, programs, core::SchedulePolicy::selfScheduling);
    dep::DepGraph graph(loop);
    row.clean =
        checker.verify(loop, graph.crossIteration()).empty();
    return row;
}

Row
runScPipelined(const workloads::RelaxationSpec &spec, unsigned procs,
               unsigned scs)
{
    core::TraceChecker checker;
    auto mc = bench::registerMachine(procs).machine;
    sim::Machine machine(mc, &checker);
    unsigned used = workloads::requiredScs(spec, scs);
    sim::SyncVarId base = machine.fabric().allocate(used, 0);
    dep::Loop loop =
        workloads::makeRelaxationLoop(spec.n, spec.stmtCost);
    dep::DataLayout layout(loop);
    auto programs = workloads::buildScPipelinedPrograms(
        base, scs, loop, layout, spec);
    Row row;
    row.result = core::runProgramPool(
        machine, programs, core::SchedulePolicy::selfScheduling);
    dep::DepGraph graph(loop);
    row.clean =
        checker.verify(loop, graph.crossIteration()).empty();
    return row;
}

Row
runWavefront(const workloads::RelaxationSpec &spec, unsigned procs,
             bool butterfly)
{
    core::TraceChecker checker;
    auto mc = bench::registerMachine(procs).machine;
    sim::Machine machine(mc, &checker);
    dep::Loop loop =
        workloads::makeRelaxationLoop(spec.n, spec.stmtCost);
    dep::DataLayout layout(loop);
    std::vector<std::vector<sim::Program>> programs;
    if (butterfly) {
        sync::ButterflyBarrier barrier(machine.fabric(), procs);
        programs = workloads::buildWavefrontPrograms(
            barrier, procs, loop, layout, spec);
    } else {
        sync::CounterBarrier barrier(machine.fabric(), procs);
        programs = workloads::buildWavefrontProgramsCtr(
            barrier, procs, loop, layout, spec);
    }
    Row row;
    row.result = core::runPerProcessorPrograms(machine, programs);
    dep::DepGraph graph(loop);
    row.clean =
        checker.verify(loop, graph.crossIteration()).empty();
    return row;
}

void
print(const char *method, long g_or_scs, const Row &row)
{
    std::printf("%-26s %8ld %10llu %10.3f %10.3f %10llu%s\n", method,
                g_or_scs,
                static_cast<unsigned long long>(row.result.cycles),
                row.result.utilization(), row.result.spinFraction(),
                static_cast<unsigned long long>(row.result.syncOps),
                row.clean ? "" : "  [VIOLATION]");
}

} // namespace

int
main()
{
    bench::banner(
        "E5: pipelined vs wavefront relaxation",
        "Fig. 5.1 (Example 1)",
        "equal parallel steps, but asynchronous pipelining wins on "
        "efficiency/utilization; G trades sync count vs delay; the "
        "statement scheme degrades when SCs are scarce");

    workloads::RelaxationSpec spec;
    spec.n = 64;
    spec.stmtCost = 8;
    const unsigned procs = 8;

    std::printf("relaxation %ldx%ld, P=%u, cost=%llu\n\n", spec.n,
                spec.n, procs,
                static_cast<unsigned long long>(spec.stmtCost));
    std::printf("%-26s %8s %10s %10s %10s %10s\n", "method", "G/SCs",
                "cycles", "util", "spin-frac", "sync-ops");

    for (long g : {1L, 2L, 4L, 8L, 16L, 32L}) {
        spec.group = g;
        print("pipelined (PC)", g, runPipelined(spec, procs));
    }
    std::printf("\n");

    spec.group = 1;
    print("wavefront+butterfly", -1, runWavefront(spec, procs, true));
    print("wavefront+counter", -1, runWavefront(spec, procs, false));
    std::printf("\n");

    for (unsigned scs : {63u, 16u, 8u, 4u, 2u, 1u}) {
        spec.group = 1;
        print("pipelined (SC, limited)",
              static_cast<long>(workloads::requiredScs(spec, scs)),
              runScPipelined(spec, procs, scs));
    }
    std::printf("\n(the SC pipeline needs N-1 = %ld counters for "
                "full fine-grain pipelining)\n", spec.n - 1);
    return 0;
}
