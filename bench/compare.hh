/**
 * @file
 * Trajectory files and the regression detector.
 *
 * A trajectory file (BENCH_PSYNC.json) is a schema-versioned JSON
 * document `{"schema_version": 1, "records": [...]}` with at most
 * one record per scenario id — rewriting it on each run and letting
 * version control keep the history makes per-PR cycle trajectories
 * diffable. Comparing two trajectory files classifies every
 * scenario as regression / improvement / unchanged / added /
 * removed; any regression beyond the threshold makes the comparison
 * fail (non-zero driver exit), which is what the CI smoke job
 * checks against the checked-in bench/baseline.json.
 */

#ifndef PSYNC_BENCH_COMPARE_HH
#define PSYNC_BENCH_COMPARE_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "core/json.hh"

namespace psync {
namespace bench {

/** Empty trajectory document (schema header, no records). */
core::json::Value makeTrajectoryDoc();

/**
 * Insert `record` into trajectory `doc`, replacing any existing
 * record with the same "scenario" id (appends otherwise).
 */
void mergeRecord(core::json::Value &doc, core::json::Value record);

/** Scenario-id -> cycles view of a trajectory document. */
struct Trajectory
{
    bool ok = false;
    std::string error;
    /** (scenario id, cycles), in document order. */
    std::vector<std::pair<std::string, std::uint64_t>> cycles;
};

/**
 * Validate a trajectory document and extract its cycle counts.
 * Rejects missing/foreign schema versions and records without a
 * scenario id or cycle count.
 */
Trajectory loadTrajectory(const core::json::Value &doc);

/** Comparison tunables. */
struct CompareOptions
{
    /**
     * Cycle increase (percent of baseline) beyond which a scenario
     * counts as regressed. Simulated cycles are deterministic, so
     * the default tolerance is tight.
     */
    double regressThresholdPct = 2.0;

    /**
     * Require bit-identical cycle counts: any difference — faster,
     * slower, or a scenario present on only one side — fails the
     * comparison. This is the `--exact` determinism gate: a sweep
     * run with `--jobs N` must reproduce the serial sweep exactly.
     */
    bool requireIdentical = false;
};

/** How one scenario moved between two trajectories. */
struct ScenarioDelta
{
    enum class Kind
    {
        regression,
        improvement,
        unchanged,
        /** Present only in the current trajectory. */
        added,
        /** Present only in the baseline. */
        removed,
    };

    std::string id;
    std::uint64_t baselineCycles = 0;
    std::uint64_t currentCycles = 0;
    /** Signed percent change from baseline (0 for added/removed). */
    double deltaPct = 0.0;
    Kind kind = Kind::unchanged;
};

/** Outcome of comparing two trajectories. */
struct CompareResult
{
    /** Current-trajectory order, with removed scenarios appended. */
    std::vector<ScenarioDelta> deltas;
    unsigned regressions = 0;
    unsigned improvements = 0;
    unsigned unchanged = 0;
    unsigned added = 0;
    unsigned removed = 0;

    /** True when no scenario regressed beyond the threshold. */
    bool ok() const { return regressions == 0; }
};

/**
 * Diff `current` against `baseline`. Both documents must pass
 * loadTrajectory; a malformed document yields a CompareResult with
 * one pseudo-delta carrying the error in `id` and `regressions`
 * forced non-zero so callers fail safe.
 */
CompareResult compareTrajectories(const core::json::Value &baseline,
                                  const core::json::Value &current,
                                  const CompareOptions &opts = {});

/** Aligned per-scenario table plus a verdict line. */
void printCompare(std::ostream &os, const CompareResult &result,
                  const CompareOptions &opts);

} // namespace bench
} // namespace psync

#endif // PSYNC_BENCH_COMPARE_HH
