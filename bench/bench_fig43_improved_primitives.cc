/**
 * @file
 * E4 — Fig. 4.2 vs Fig. 4.3 and section 6: the improved primitives
 * (load_index / mark_PC / transfer_PC) never block before a mark
 * — a process that does not yet own its PC just skips the update,
 * covered by the final transfer — and write coalescing absorbs
 * back-to-back PC updates before they win the sync bus.
 *
 * Three tables: (a) basic vs improved across X (folding degree);
 * (b) marks actually skipped; (c) sync-bus broadcasts with
 * coalescing on vs off.
 */

#include <cstdio>

#include "bench/common.hh"
#include "workloads/fig21.hh"

using namespace psync;

int
main()
{
    bench::banner(
        "E4: improved primitives and write coalescing",
        "Fig. 4.2 vs Fig. 4.3, section 6",
        "improved primitives remove the blocking get_PC (fewer "
        "spins when X is small); coalescing cuts sync-bus "
        "broadcasts");

    const long n = 512;
    dep::Loop loop = workloads::makeFig21Loop(n);

    std::printf("(a) folding sweep, P=8\n");
    std::printf("%-6s %-18s %10s %12s %12s %14s\n", "X", "primitives",
                "cycles", "spin-cycles", "sync-ops", "marks-skipped");
    for (unsigned x : {2u, 4u, 8u, 16u, 64u}) {
        for (bool improved : {false, true}) {
            auto kind = improved ? sync::SchemeKind::processImproved
                                 : sync::SchemeKind::processBasic;
            auto cfg = bench::registerMachine(8, x);
            auto r = core::runDoacross(loop, kind, cfg);
            bench::require(r, sync::schemeKindName(kind));
            std::printf("%-6u %-18s %10llu %12llu %12llu %14llu\n",
                        x, improved ? "improved" : "basic",
                        static_cast<unsigned long long>(r.run.cycles),
                        static_cast<unsigned long long>(
                            r.run.spinCycles),
                        static_cast<unsigned long long>(
                            r.run.syncOps),
                        static_cast<unsigned long long>(
                            r.run.marksSkipped));
        }
    }

    std::printf("\n(b) sync-bus traffic with and without "
                "coalescing (improved primitives, X=16, slow sync "
                "bus)\n");
    std::printf("%-12s %12s %12s %12s\n", "coalescing", "broadcasts",
                "coalesced", "cycles");
    for (bool coalesce : {true, false}) {
        auto cfg = bench::registerMachine(8, 16);
        cfg.machine.coalesceWrites = coalesce;
        cfg.machine.syncBusCycles = 4;
        auto r = core::runDoacross(
            loop, sync::SchemeKind::processImproved, cfg);
        bench::require(r, "coalescing");
        std::printf("%-12s %12llu %12llu %12llu\n",
                    coalesce ? "on" : "off",
                    static_cast<unsigned long long>(
                        r.run.syncBusBroadcasts),
                    static_cast<unsigned long long>(
                        r.run.coalescedWrites),
                    static_cast<unsigned long long>(r.run.cycles));
    }
    return 0;
}
