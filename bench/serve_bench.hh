/**
 * @file
 * Runtime-service campaigns: sustained mixed traffic against
 * serve::DoacrossService, recorded as trajectory schema v8
 * kind:"serve" records.
 *
 * A campaign is a grid of cells: traffic mix x fabric wake policy.
 * Each cell boots a fresh service (persistent gangs, plan cache,
 * epoch-reused fabrics), drives `requests` submissions drawn from
 * the bench registry's scenarios, waits for the service to drain,
 * and snapshots throughput (programs_per_sec), plan-cache hit
 * rate, and submit-to-publish latency percentiles. The two wake
 * policies — the 64-shard mutex+condvar design and the
 * flat-combining contender — run the identical traffic, and the
 * faster one per mix is marked as the winner in the records.
 *
 * Traffic mixes:
 *  - uniform: requests draw uniformly over the matched scenarios'
 *    plans (steady multi-tenant load, every arena warm);
 *  - hotkey: 90% of requests hit one hot plan, the rest spread
 *    uniformly (cache/arena skew, the service's best case and the
 *    fabric's most contended);
 *  - bursty: uniform draw, but submissions arrive in bursts with a
 *    full drain between bursts (queue-depth spikes show up in the
 *    latency tail).
 *
 * Per-request init-cost amortization (the paper's section 4
 * argument, measured at service scale): every request logically
 * reinitializes its scheme's sync variables, but pays one epoch
 * bump instead of |initWords| writes — the throughput delta
 * against the per-run native backend in the same trajectory file
 * is the measured claim.
 */

#ifndef PSYNC_BENCH_SERVE_BENCH_HH
#define PSYNC_BENCH_SERVE_BENCH_HH

#include <cstdint>
#include <string>
#include <vector>

#include "core/json.hh"
#include "serve/service.hh"

namespace psync {
namespace bench {

/** Campaign shape (one grid of mix x policy cells). */
struct ServeCampaignOptions
{
    /** Requests per cell. */
    std::uint64_t requests = 800;
    unsigned gangs = 2;
    unsigned gangSize = 4;
    std::uint64_t seed = 1;
    /** Scenario glob the traffic draws plans from. */
    std::string scenarioGlob = "fig21-n256/*";
    /** Full verification every Nth request per gang (0 = never). */
    unsigned verifySampleEvery = 64;
    std::uint64_t requestTimeoutMs = 10000;
    /** Requests per burst in the bursty mix. */
    std::uint64_t burstSize = 128;
    /** Mixes to run; empty = all three. */
    std::vector<std::string> mixes;
    /** Wake policies to race; empty = both. */
    std::vector<native::WakePolicy> policies;
};

/** Result of one campaign cell (mix x policy). */
struct ServeCellResult
{
    std::string mix;
    native::WakePolicy policy = native::WakePolicy::sharded;
    unsigned gangs = 0;
    unsigned gangSize = 0;
    std::uint64_t requests = 0;
    std::uint64_t failed = 0;
    std::uint64_t programsRun = 0;
    std::uint64_t verifySamples = 0;
    std::uint64_t verifyFailures = 0;
    std::uint64_t epochsBegun = 0;
    std::uint64_t planCacheHits = 0;
    std::uint64_t planCacheMisses = 0;
    double planCacheHitRate = 0.0;
    std::uint64_t latencyP50Ns = 0;
    std::uint64_t latencyP95Ns = 0;
    std::uint64_t latencyP99Ns = 0;
    /** Whole-cell host wall time, submission through drain. */
    std::uint64_t hostNanos = 0;
    /** Fastest policy of this mix (set after the race). */
    bool winner = false;

    double
    programsPerSec() const
    {
        if (hostNanos == 0)
            return 0.0;
        return static_cast<double>(programsRun) * 1e9 /
               static_cast<double>(hostNanos);
    }

    /** Record id: "serve/<mix>#<policy>-g<gangs>x<gangSize>". */
    std::string recordId() const;
    /** One schema-v8 kind:"serve" trajectory record. */
    core::json::Value toJson() const;
};

/** A full campaign: every cell plus grid-level totals. */
struct ServeCampaignResult
{
    std::vector<ServeCellResult> cells;
    std::uint64_t totalRequests = 0;
    std::uint64_t totalPrograms = 0;
    std::uint64_t totalFailed = 0;
    std::uint64_t totalVerifyFailures = 0;
    /** Scenario ids the traffic drew from. */
    std::vector<std::string> sources;

    bool
    ok() const
    {
        return totalFailed == 0 && totalVerifyFailures == 0 &&
               !cells.empty();
    }

    /** Campaign summary record ("serve/campaign#..."). */
    core::json::Value toJson() const;
};

/**
 * Run the campaign grid. Aborts the process when the scenario glob
 * matches nothing. Deterministic plan-draw sequence per (seed,
 * requests); host timings are whatever the machine gives.
 */
ServeCampaignResult
runServeCampaign(const ServeCampaignOptions &opts);

} // namespace bench
} // namespace psync

#endif // PSYNC_BENCH_SERVE_BENCH_HH
