/**
 * @file
 * E6 — Fig. 5.2 (Example 2): multiply-nested Doacross loops. The
 * process-oriented scheme coalesces the nest implicitly (lpid =
 * (i-1)*M + j) and accepts a few extra boundary arcs; the
 * data-oriented schemes handle boundaries exactly but pay O(r*d)
 * boundary-check cycles per iteration, per-element keys and a key
 * initialization sweep.
 */

#include <cstdio>

#include "bench/common.hh"
#include "dep/dep_graph.hh"
#include "dep/transform.hh"
#include "workloads/nested.hh"

using namespace psync;

int
main()
{
    bench::banner(
        "E6: nested Doacross — implicit coalescing vs exact "
        "boundaries",
        "Fig. 5.2 (Example 2)",
        "linearization adds a few enforced-but-unreal arcs yet "
        "avoids the O(r*d) boundary overhead and the per-element "
        "keys of data-oriented schemes");

    std::printf("%-10s %-18s %10s %10s %10s %10s %10s\n", "N x M",
                "scheme", "cycles", "+init", "sync-vars", "util",
                "speedup");

    for (auto [n, m] : {std::pair<long, long>{16, 16},
                        {32, 32},
                        {16, 64},
                        {64, 16}}) {
        dep::Loop loop = workloads::makeNestedLoop(n, m);
        dep::DepGraph graph(loop);
        std::uint64_t extras = 0;
        for (const auto &d : graph.enforced())
            extras += dep::extraDepCount(loop, d);

        auto seq_cfg = bench::registerMachine();
        sim::Tick seq = core::sequentialCycles(loop, seq_cfg.machine);

        char shape[32];
        std::snprintf(shape, sizeof(shape), "%ldx%ld", n, m);
        auto row = [&](const char *label, sync::SchemeKind kind,
                       bool exact) {
            auto cfg = bench::machineFor(kind);
            cfg.scheme.exactBoundaries = exact;
            cfg.checkTrace = loop.iterations() <= 1024;
            auto r = core::runDoacross(loop, kind, cfg);
            if (cfg.checkTrace)
                bench::require(r, label);
            std::printf("%-10s %-18s %10llu %10llu %10llu %10.3f "
                        "%10.2f\n",
                        shape, label,
                        static_cast<unsigned long long>(r.run.cycles),
                        static_cast<unsigned long long>(
                            r.totalWithInit()),
                        static_cast<unsigned long long>(
                            r.plan.numSyncVars),
                        r.run.utilization(), r.run.speedupOver(seq));
        };
        row("process-improved", sync::SchemeKind::processImproved,
            false);
        row("process-exact-bd", sync::SchemeKind::processImproved,
            true);
        row("statement", sync::SchemeKind::statementOriented,
            false);
        row("reference", sync::SchemeKind::referenceBased, false);
        row("instance", sync::SchemeKind::instanceBased, false);
        std::printf("  (linearization enforces %llu extra boundary "
                    "arcs)\n\n",
                    static_cast<unsigned long long>(extras));
    }
    return 0;
}
