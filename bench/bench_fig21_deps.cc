/**
 * @file
 * E1 — Fig. 2.1(b): the dependence graph of the running example,
 * with distances and coverage elimination, plus the per-scheme
 * synchronization placement derived from it.
 */

#include <cstdio>

#include "bench/common.hh"
#include "dep/dep_graph.hh"
#include "sim/program.hh"
#include "sync/process_oriented.hh"
#include "workloads/fig21.hh"

using namespace psync;

int
main()
{
    bench::banner(
        "E1: dependence analysis of the running example",
        "Fig. 2.1(a)-(c)",
        "flow S1->S2 (2), S1->S3 (1), S4->S5 (1); anti S2->S4 (1), "
        "S3->S4 (2); output S1->S4 (3) covered by S1->S3 + S3->S4");

    dep::Loop loop = workloads::makeFig21Loop(64);
    dep::DepGraph graph(loop);
    std::printf("%s\n", graph.toString().c_str());
    std::printf("cross-iteration arcs: %zu, covered: %u, enforced: "
                "%zu\n\n",
                graph.crossIteration().size(), graph.numCovered(),
                graph.enforced().size());

    // The transformed Doacross body (Fig. 4.2b), disassembled.
    sim::MachineConfig mc;
    mc.numProcs = 1;
    mc.fabric = sim::FabricKind::registers;
    mc.syncRegisters = 64;
    sim::Machine machine(mc);
    dep::DataLayout layout(loop);
    sync::ProcessOrientedScheme basic(false);
    sync::SchemeConfig scfg;
    scfg.numPcs = 4;
    basic.plan(graph, layout, machine.fabric(), scfg);
    std::printf("transformed iteration 10 under the basic "
                "primitives (Fig. 4.2b):\n%s\n",
                sim::disassemble(basic.emit(10)).c_str());
    return 0;
}
