/**
 * @file
 * E7 — Fig. 5.3 (Example 3): dependence sources inside branches.
 * The synchronization state of an untaken source must still
 * advance on every path; the paper's placement marks it as early
 * as possible rather than deferring to the end of the iteration,
 * so sinks two/three iterations later proceed sooner.
 */

#include <cstdio>

#include "bench/common.hh"
#include "workloads/branches.hh"

using namespace psync;

int
main()
{
    bench::banner(
        "E7: sources in branches — early vs deferred signaling",
        "Fig. 5.3 (Example 3)",
        "signal untaken sources as soon as possible: sinks wait "
        "less than with signals deferred to the iteration's end");

    const long n = 256;
    std::printf("%-12s %-18s %-10s %10s %12s %10s\n", "taken-prob",
                "scheme", "signals", "cycles", "spin-cycles",
                "util");

    for (double p : {0.1, 0.5, 0.9}) {
        dep::Loop loop =
            workloads::makeBranchLoop(n, p, 6, 96, 128, 23);
        for (auto kind : {sync::SchemeKind::processImproved,
                          sync::SchemeKind::processBasic,
                          sync::SchemeKind::statementOriented}) {
            for (bool early : {true, false}) {
                auto cfg = bench::registerMachine(8, 16);
                cfg.scheme.earlyBranchSignals = early;
                auto r = core::runDoacross(loop, kind, cfg);
                bench::require(r, sync::schemeKindName(kind));
                std::printf("%-12.1f %-18s %-10s %10llu %12llu "
                            "%10.3f\n",
                            p, sync::schemeKindName(kind),
                            early ? "early" : "deferred",
                            static_cast<unsigned long long>(
                                r.run.cycles),
                            static_cast<unsigned long long>(
                                r.run.spinCycles),
                            r.run.utilization());
            }
        }
        std::printf("\n");
    }
    return 0;
}
