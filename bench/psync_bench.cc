/**
 * @file
 * The registry-driven benchmark driver.
 *
 *   psync_bench --list                       name every scenario
 *   psync_bench --all --json BENCH_PSYNC.json
 *                                            run all, write records
 *   psync_bench --run fig21-n256             run a subset (substring
 *                                            or exact id match)
 *   psync_bench --all --baseline old.json    run + diff, exit 1 on
 *                                            cycle regressions
 *   psync_bench --all --jobs 8               run scenarios on a
 *                                            worker pool (identical
 *                                            cycles, less wall time)
 *   psync_bench --compare old.json new.json  diff two trajectory
 *                                            files without running
 *   psync_bench --compare a.json b.json --exact
 *                                            determinism gate: any
 *                                            cycle difference fails
 *   psync_bench --report [pattern]           contention blame report
 *                                            (per-sync-var wait
 *                                            attribution, module
 *                                            heatmap, slack)
 *
 * Exit codes: 0 success, 1 regression detected or comparison
 * failure, 2 usage/IO error.
 */

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench/common.hh"
#include "bench/compare.hh"
#include "bench/fuzz.hh"
#include "bench/registry.hh"
#include "core/blame.hh"
#include "core/profile.hh"
#include "core/tracing.hh"

using namespace psync;

namespace {

struct Options
{
    bool list = false;
    bool all = false;
    bool report = false;
    bool native = false;
    bool forbidHeapFallback = false;
    bool noPasses = false;
    bool profile = false;
    bool timeline = false;
    sim::Tick timelineInterval = 0;
    unsigned jobs = 1;
    bool fuzz = false;
    bool fuzzNoShrink = false;
    bool fuzzServe = false;
    bool fuzzFabric = false;
    std::uint64_t fuzzCount = 0;
    std::uint64_t fuzzSeed = 1;
    std::uint64_t fuzzNativeTimeoutMs = 2000;
    std::string fuzzJsonPath;
    std::string reproDir;
    std::string fuzzReplayPath;
    std::vector<unsigned> threadCounts;
    std::vector<std::string> patterns;
    std::vector<std::string> globs;
    std::string timelineJsonPath;
    std::string jsonPath;
    std::string baselinePath;
    std::string reportJsonPath;
    std::string profileTracePath;
    std::string compareOld;
    std::string compareNew;
    bench::CompareOptions compare;
};

void
usage(std::FILE *to)
{
    std::fprintf(
        to,
        "usage: psync_bench [--list] [--all] [--run PATTERN]... \n"
        "                   [--scenarios GLOB]... [PATTERN]...\n"
        "                   [--json FILE] [--jobs N]\n"
        "                   [--baseline FILE] [--threshold PCT]\n"
        "                   [--compare OLD NEW] [--exact]\n"
        "                   [--native] [--threads N,N,...]\n"
        "                   [--forbid-heap-fallback] [--no-passes]\n"
        "                   [--profile] [--profile-trace FILE]\n"
        "                   [--timeline] [--timeline-interval N]\n"
        "                   [--timeline-json FILE]\n"
        "                   [--report [PATTERN]] "
        "[--report-json FILE]\n"
        "                   [--fuzz N] [--seed S] "
        "[--fuzz-json FILE]\n"
        "                   [--repro-dir DIR] [--no-shrink]\n"
        "                   [--fuzz-replay FILE] [--fuzz-serve]\n"
        "                   [--fuzz-fabric] [--fuzz-timeout-ms MS]\n"
        "\n"
        "--fuzz N generates N seeded random Doacross loops and\n"
        "differentially tests each one: every scheme x both\n"
        "backends x the pass pipeline off/on must agree with a\n"
        "functional sequential replay (and, on small DAGs, with\n"
        "the closed-form critical-path oracle). Divergent cases\n"
        "are shrunk and written as repro bundles to --repro-dir;\n"
        "--fuzz-json writes the deterministic campaign record\n"
        "(byte-identical across --jobs); --fuzz-replay re-runs a\n"
        "bundle. Exit 1 on any divergence. --fuzz-serve adds a\n"
        "runtime-service leg per scheme (plan cache + epoch-reused\n"
        "fabric, every served request verified); --fuzz-fabric\n"
        "adds a fabric-rotation leg per clean (case, scheme) pair\n"
        "(memory / registers / combining / hierarchical, rotated\n"
        "round-robin, held to the sequential-replay oracle);\n"
        "--fuzz-timeout-ms sets the native watchdog deadline per\n"
        "backend leg (default 2000).\n"
        "\n"
        "--native runs the selected scenarios on the real-thread\n"
        "backend (default --threads 2,4) and records host wall-time\n"
        "instead of simulated cycles; --forbid-heap-fallback fails\n"
        "a sim sweep if any run demoted calendar events to the\n"
        "heap. Sim runs apply the IR transform passes\n"
        "(redundant-wait elimination + peephole) by default;\n"
        "--no-passes runs each scenario's config as registered\n"
        "(verifier only), reproducing pre-pipeline cycle counts\n"
        "exactly.\n"
        "\n"
        "--profile reconstructs each run's achieved critical path\n"
        "(per-op cycle attribution, wait-latency histograms) and\n"
        "prints a per-scenario report; records gain the schema-v5\n"
        "critpath_achieved / critpath_gap_pct / profile fields.\n"
        "With --native it times blocking waits on the host clock\n"
        "instead. --profile-trace FILE additionally writes a\n"
        "Perfetto/Chrome trace with a \"critical path\" track (one\n"
        "file per scenario; the scenario id lands in the name when\n"
        "more than one is selected). Cycle counts are identical\n"
        "with profiling on or off.\n"
        "\n"
        "--timeline samples each run at a fixed interval (bus\n"
        "occupancy, per-module traffic and backlog, sync-var\n"
        "waiters, processor state mix, event-core self-metrics),\n"
        "prints a sparkline report with detected hot spots, and\n"
        "stamps records with the schema-v6 \"timeline\" summary.\n"
        "--timeline-interval N overrides the auto-picked interval\n"
        "(~128 samples per run); --timeline-json FILE writes the\n"
        "full series. Sampling is passive: cycle counts are\n"
        "identical with it on or off. --scenarios selects by\n"
        "shell-style glob over scenario ids (\"fig32-*\",\n"
        "\"*/statement*\").\n");
}

bool
parseArgs(int argc, char **argv, Options &opts)
{
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&](const char *flag) -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s needs an argument\n", flag);
                return nullptr;
            }
            return argv[++i];
        };
        if (arg == "--list") {
            opts.list = true;
        } else if (arg == "--all") {
            opts.all = true;
        } else if (arg == "--run") {
            const char *p = next("--run");
            if (!p)
                return false;
            opts.patterns.push_back(p);
        } else if (arg == "--json") {
            const char *p = next("--json");
            if (!p)
                return false;
            opts.jsonPath = p;
        } else if (arg == "--baseline") {
            const char *p = next("--baseline");
            if (!p)
                return false;
            opts.baselinePath = p;
        } else if (arg == "--jobs") {
            const char *p = next("--jobs");
            if (!p)
                return false;
            int n = std::atoi(p);
            if (n < 1) {
                std::fprintf(stderr,
                             "--jobs needs a positive count\n");
                return false;
            }
            opts.jobs = static_cast<unsigned>(n);
        } else if (arg == "--fuzz") {
            const char *p = next("--fuzz");
            if (!p)
                return false;
            long long n = std::atoll(p);
            if (n < 1) {
                std::fprintf(stderr,
                             "--fuzz needs a positive count\n");
                return false;
            }
            opts.fuzz = true;
            opts.fuzzCount = static_cast<std::uint64_t>(n);
        } else if (arg == "--seed") {
            const char *p = next("--seed");
            if (!p)
                return false;
            opts.fuzzSeed = std::strtoull(p, nullptr, 0);
        } else if (arg == "--fuzz-json") {
            const char *p = next("--fuzz-json");
            if (!p)
                return false;
            opts.fuzzJsonPath = p;
        } else if (arg == "--repro-dir") {
            const char *p = next("--repro-dir");
            if (!p)
                return false;
            opts.reproDir = p;
        } else if (arg == "--no-shrink") {
            opts.fuzzNoShrink = true;
        } else if (arg == "--fuzz-serve") {
            opts.fuzzServe = true;
        } else if (arg == "--fuzz-fabric") {
            opts.fuzzFabric = true;
        } else if (arg == "--fuzz-timeout-ms") {
            const char *p = next("--fuzz-timeout-ms");
            if (!p)
                return false;
            long long n = std::atoll(p);
            if (n < 1) {
                std::fprintf(
                    stderr,
                    "--fuzz-timeout-ms needs a positive count\n");
                return false;
            }
            opts.fuzzNativeTimeoutMs =
                static_cast<std::uint64_t>(n);
        } else if (arg == "--fuzz-replay") {
            const char *p = next("--fuzz-replay");
            if (!p)
                return false;
            opts.fuzzReplayPath = p;
        } else if (arg == "--native") {
            opts.native = true;
        } else if (arg == "--forbid-heap-fallback") {
            opts.forbidHeapFallback = true;
        } else if (arg == "--no-passes") {
            opts.noPasses = true;
        } else if (arg == "--profile") {
            opts.profile = true;
        } else if (arg == "--timeline") {
            opts.timeline = true;
        } else if (arg == "--timeline-interval") {
            const char *p = next("--timeline-interval");
            if (!p)
                return false;
            long long n = std::atoll(p);
            if (n < 1) {
                std::fprintf(
                    stderr,
                    "--timeline-interval needs a positive cycle "
                    "count\n");
                return false;
            }
            opts.timelineInterval = static_cast<sim::Tick>(n);
            opts.timeline = true;
        } else if (arg == "--timeline-json") {
            const char *p = next("--timeline-json");
            if (!p)
                return false;
            opts.timelineJsonPath = p;
            opts.timeline = true;
        } else if (arg == "--scenarios") {
            const char *p = next("--scenarios");
            if (!p)
                return false;
            opts.globs.push_back(p);
        } else if (arg == "--profile-trace") {
            const char *p = next("--profile-trace");
            if (!p)
                return false;
            opts.profileTracePath = p;
            opts.profile = true;
        } else if (arg == "--threads") {
            const char *p = next("--threads");
            if (!p)
                return false;
            std::string list = p;
            std::size_t pos = 0;
            while (pos < list.size()) {
                std::size_t comma = list.find(',', pos);
                if (comma == std::string::npos)
                    comma = list.size();
                int n = std::atoi(list.substr(pos, comma - pos)
                                      .c_str());
                if (n < 1) {
                    std::fprintf(
                        stderr,
                        "--threads needs positive counts\n");
                    return false;
                }
                opts.threadCounts.push_back(
                    static_cast<unsigned>(n));
                pos = comma + 1;
            }
        } else if (arg == "--exact") {
            opts.compare.requireIdentical = true;
        } else if (arg == "--threshold") {
            const char *p = next("--threshold");
            if (!p)
                return false;
            opts.compare.regressThresholdPct = std::atof(p);
        } else if (arg == "--compare") {
            const char *old_path = next("--compare");
            if (!old_path)
                return false;
            opts.compareOld = old_path;
            const char *new_path = next("--compare");
            if (!new_path)
                return false;
            opts.compareNew = new_path;
        } else if (arg == "--report") {
            opts.report = true;
        } else if (arg == "--report-json") {
            const char *p = next("--report-json");
            if (!p)
                return false;
            opts.reportJsonPath = p;
        } else if (arg == "--help" || arg == "-h") {
            usage(stdout);
            std::exit(0);
        } else if (!arg.empty() && arg[0] == '-') {
            std::fprintf(stderr, "unknown flag %s\n", arg.c_str());
            return false;
        } else {
            opts.patterns.push_back(arg);
        }
    }
    return true;
}

bool
readJsonFile(const std::string &path, core::json::Value &out)
{
    std::ifstream is(path);
    if (!is) {
        std::fprintf(stderr, "cannot read %s\n", path.c_str());
        return false;
    }
    std::ostringstream text;
    text << is.rdbuf();
    auto parsed = core::json::parse(text.str());
    if (!parsed.ok) {
        std::fprintf(stderr, "%s: %s\n", path.c_str(),
                     parsed.error.c_str());
        return false;
    }
    out = std::move(parsed.value);
    return true;
}

bool
writeJsonFile(const std::string &path, const core::json::Value &doc)
{
    std::ofstream os(path);
    if (!os) {
        std::fprintf(stderr, "cannot write %s\n", path.c_str());
        return false;
    }
    doc.dump(os, 2);
    os << "\n";
    return true;
}

void
listScenarios()
{
    std::printf("%-40s %s\n", "scenario", "description");
    for (const auto &s : bench::allScenarios())
        std::printf("%-40s %s\n", s.id.c_str(),
                    s.description.c_str());
    std::printf("(%zu scenarios)\n", bench::allScenarios().size());
}

std::vector<const bench::Scenario *>
selectScenarios(const Options &opts)
{
    if (opts.all ||
        (opts.patterns.empty() && opts.globs.empty()))
        return bench::matchScenarios("");
    std::vector<const bench::Scenario *> selected;
    auto take = [&](const std::string &pattern,
                    std::vector<const bench::Scenario *> matched) {
        if (matched.empty()) {
            std::fprintf(stderr, "no scenario matches '%s'\n",
                         pattern.c_str());
            return;
        }
        for (const auto *s : matched) {
            bool seen = false;
            for (const auto *have : selected)
                seen = seen || have == s;
            if (!seen)
                selected.push_back(s);
        }
    };
    for (const auto &pattern : opts.patterns)
        take(pattern, bench::matchScenarios(pattern));
    for (const auto &glob : opts.globs)
        take(glob, bench::matchScenariosGlob(glob));
    return selected;
}

/** One-line log2-histogram summary for table footers. */
std::string
histSummary(const core::LogHistogram &h)
{
    if (h.count() == 0)
        return "(no samples)";
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "n=%llu p50=%llu p95=%llu p99=%llu max=%llu",
                  static_cast<unsigned long long>(h.count()),
                  static_cast<unsigned long long>(h.percentile(0.50)),
                  static_cast<unsigned long long>(h.percentile(0.95)),
                  static_cast<unsigned long long>(h.percentile(0.99)),
                  static_cast<unsigned long long>(h.max()));
    return buf;
}

/**
 * Per-scenario output path for --profile-trace: the given path when
 * only one scenario runs, otherwise the sanitized scenario id is
 * spliced in before the extension so files never collide.
 */
std::string
traceFileFor(const std::string &base, const std::string &id,
             bool many)
{
    if (!many)
        return base;
    std::string tag = id;
    for (char &c : tag) {
        if (c == '/' || c == ':' || c == '#')
            c = '-';
    }
    std::size_t dot = base.rfind('.');
    if (dot == std::string::npos ||
        base.find('/', dot) != std::string::npos)
        return base + "-" + tag;
    return base.substr(0, dot) + "-" + tag + base.substr(dot);
}

/**
 * Pass configuration for sim runs: transform passes on by default,
 * scenario config as registered (nullptr) under --no-passes.
 */
const ir::PassConfig *
benchPasses(const Options &opts)
{
    static const ir::PassConfig transforms = [] {
        ir::PassConfig cfg;
        cfg.eliminateRedundantWaits = true;
        cfg.peephole = true;
        return cfg;
    }();
    return opts.noPasses ? nullptr : &transforms;
}

/**
 * --native: execute the selected scenarios on the real-thread
 * backend at each requested thread count and append kind:"native"
 * records (host wall-time, throughput) to the trajectory file.
 * Every run is verified by the trace-checker replay inside
 * runScenarioNative; a violation aborts before any record lands.
 */
int
runNative(const Options &opts,
          const std::vector<const bench::Scenario *> &selected)
{
    std::vector<unsigned> threads = opts.threadCounts;
    if (threads.empty())
        threads = {2, 4};

    core::json::Value doc = bench::makeTrajectoryDoc();
    if (!opts.jsonPath.empty()) {
        std::ifstream exists(opts.jsonPath);
        if (exists) {
            core::json::Value existing;
            if (readJsonFile(opts.jsonPath, existing) &&
                bench::loadTrajectory(existing).ok) {
                doc = std::move(existing);
                doc.set("schema_version",
                        bench::kTrajectorySchemaVersion);
            }
        }
    }

    bench::Table table{{"record", 48, 'l'},
                       {"wall-ms", 8},
                       {"progs/s", 10},
                       {"sync-ops", 10},
                       {"parks", 8}};
    table.header();
    for (const auto *scenario : selected) {
        for (unsigned t : threads) {
            bench::NativeScenarioRecord record =
                bench::runScenarioNative(*scenario, t, opts.profile);
            table.row(
                {record.recordId(),
                 bench::Table::fixed(
                     static_cast<double>(record.result.run.wallNanos) /
                         1e6,
                     1),
                 bench::Table::fixed(
                     record.result.run.programsPerSec(), 0),
                 bench::Table::num(record.result.run.syncOps),
                 bench::Table::num(record.result.run.parks)});
            bench::mergeRecord(doc, record.toJson());
            if (opts.profile) {
                const native::NativeRunResult &r = record.result.run;
                std::printf("    wait ns:      %s\n",
                            histSummary(r.waitNs).c_str());
                std::printf("    park-wake ns: %s\n",
                            histSummary(r.parkWakeNs).c_str());
                std::printf("    fa retries:   %llu\n",
                            static_cast<unsigned long long>(
                                r.faRetries));
            }
        }
    }

    if (!opts.jsonPath.empty() &&
        !writeJsonFile(opts.jsonPath, doc))
        return 2;
    return 0;
}

/**
 * --fuzz: run a differential fuzz campaign, print divergences with
 * their shrunk canonical programs, write the deterministic campaign
 * record (--fuzz-json, and merged into --json when given). Exit 1
 * on any divergence.
 */
int
runFuzz(const Options &opts)
{
    bench::FuzzOptions fopts;
    fopts.count = opts.fuzzCount;
    fopts.seed = opts.fuzzSeed;
    fopts.jobs = opts.jobs;
    fopts.reproDir = opts.reproDir;
    fopts.shrink = !opts.fuzzNoShrink;
    fopts.serveMode = opts.fuzzServe;
    fopts.fabricMode = opts.fuzzFabric;
    fopts.nativeTimeoutMs = opts.fuzzNativeTimeoutMs;

    bench::FuzzCampaignResult result =
        bench::runFuzzCampaign(fopts);

    std::printf(
        "fuzz: seed %llu: %llu programs, %llu scheme runs "
        "(%llu depth-2, %llu guarded, %llu analytical-gated), "
        "%zu divergences\n",
        static_cast<unsigned long long>(result.seed),
        static_cast<unsigned long long>(result.programs),
        static_cast<unsigned long long>(result.schemeRuns),
        static_cast<unsigned long long>(result.depth2),
        static_cast<unsigned long long>(result.guarded),
        static_cast<unsigned long long>(result.analyticalGated),
        result.divergences.size());

    for (const auto &div : result.divergences) {
        std::printf("\n== divergent case %llu ==\n",
                    static_cast<unsigned long long>(div.index));
        for (const std::string &f : div.failures)
            std::printf("  %s\n", f.c_str());
        if (!div.bundlePath.empty())
            std::printf("  bundle: %s\n", div.bundlePath.c_str());
        std::printf("  shrunk program:\n%s",
                    div.canonical.c_str());
    }

    if (!opts.fuzzJsonPath.empty()) {
        core::json::Value doc = core::json::object();
        doc.set("schema_version", bench::kTrajectorySchemaVersion);
        doc.set("campaign", result.toJson());
        if (!writeJsonFile(opts.fuzzJsonPath, doc))
            return 2;
    }

    if (!opts.jsonPath.empty()) {
        core::json::Value doc = bench::makeTrajectoryDoc();
        std::ifstream exists(opts.jsonPath);
        if (exists) {
            core::json::Value existing;
            if (readJsonFile(opts.jsonPath, existing) &&
                bench::loadTrajectory(existing).ok) {
                doc = std::move(existing);
                doc.set("schema_version",
                        bench::kTrajectorySchemaVersion);
            }
        }
        bench::mergeRecord(doc, result.toJson());
        if (!writeJsonFile(opts.jsonPath, doc))
            return 2;
    }
    return result.ok() ? 0 : 1;
}

/** --fuzz-replay: re-run one repro bundle. */
int
runFuzzReplay(const Options &opts)
{
    core::json::Value bundle;
    if (!readJsonFile(opts.fuzzReplayPath, bundle))
        return 2;
    std::vector<std::string> failures;
    if (!bench::replayFuzzBundle(bundle, failures)) {
        for (const std::string &f : failures)
            std::fprintf(stderr, "%s\n", f.c_str());
        return 2;
    }
    if (failures.empty()) {
        std::printf("replay clean: %s no longer diverges\n",
                    opts.fuzzReplayPath.c_str());
        return 0;
    }
    std::printf("replay of %s still diverges:\n",
                opts.fuzzReplayPath.c_str());
    for (const std::string &f : failures)
        std::printf("  %s\n", f.c_str());
    return 1;
}

/** The Fig. 3.2 scenario --report defaults to. */
const char *const kDefaultReportScenario = "fig32-jitter/statement";

int
runReports(const Options &opts)
{
    std::vector<const bench::Scenario *> selected;
    if (opts.patterns.empty()) {
        const bench::Scenario *s =
            bench::findScenario(kDefaultReportScenario);
        if (s)
            selected.push_back(s);
    } else {
        selected = selectScenarios(opts);
    }
    if (selected.empty()) {
        std::fprintf(stderr, "no scenario to report on\n");
        return 2;
    }

    core::json::Value reports = core::json::array();
    for (const auto *scenario : selected) {
        core::TraceRecorder recorder;
        bench::ScenarioRecord record = bench::runScenario(
            *scenario, &recorder, benchPasses(opts));
        core::BlameReport blame = core::buildBlameReport(
            recorder, record.result.run, record.boundCycles);

        std::cout << "== " << scenario->id << " ("
                  << scenario->workload << ", " << scenario->scheme
                  << ") ==\n";
        blame.writeText(std::cout);
        std::cout << "\n";

        if (!opts.reportJsonPath.empty()) {
            core::json::Value entry = core::json::object();
            entry.set("scenario", scenario->id);
            entry.set("report", blame.toJson());
            reports.push(std::move(entry));
        }
    }
    if (!opts.reportJsonPath.empty()) {
        core::json::Value doc = core::json::object();
        doc.set("schema_version", bench::kTrajectorySchemaVersion);
        doc.set("reports", std::move(reports));
        if (!writeJsonFile(opts.reportJsonPath, doc))
            return 2;
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opts;
    if (!parseArgs(argc, argv, opts)) {
        usage(stderr);
        return 2;
    }

    if (opts.list) {
        listScenarios();
        return 0;
    }

    if (!opts.compareOld.empty()) {
        core::json::Value old_doc, new_doc;
        if (!readJsonFile(opts.compareOld, old_doc) ||
            !readJsonFile(opts.compareNew, new_doc))
            return 2;
        bench::CompareResult result = bench::compareTrajectories(
            old_doc, new_doc, opts.compare);
        bench::printCompare(std::cout, result, opts.compare);
        return result.ok() ? 0 : 1;
    }

    if (!opts.fuzzReplayPath.empty())
        return runFuzzReplay(opts);

    if (opts.fuzz)
        return runFuzz(opts);

    if (opts.report)
        return runReports(opts);

    auto selected = selectScenarios(opts);
    if (selected.empty()) {
        std::fprintf(stderr,
                     "nothing to run (try --list or --all)\n");
        return 2;
    }

    if (opts.native)
        return runNative(opts, selected);

    // Start from the existing trajectory file when appending, so a
    // partial rerun keeps the other scenarios' records.
    core::json::Value doc = bench::makeTrajectoryDoc();
    if (!opts.jsonPath.empty()) {
        std::ifstream exists(opts.jsonPath);
        if (exists) {
            core::json::Value existing;
            if (readJsonFile(opts.jsonPath, existing) &&
                bench::loadTrajectory(existing).ok) {
                doc = std::move(existing);
                // Kept records may predate the current layout;
                // restamp the header since we rewrite the file.
                doc.set("schema_version",
                        bench::kTrajectorySchemaVersion);
            }
        }
    }

    // Run the selected scenarios: in order on this thread, or
    // claimed index-at-a-time by a worker pool under --jobs. Every
    // run builds its own Machine (and thus its own event queue and
    // RNG streams), so workers share nothing mutable but the claim
    // counter; cycle counts are identical either way and the
    // determinism gate in CI checks exactly that. Records land in
    // per-scenario slots so printing and merging stay in selection
    // order after the join.
    const ir::PassConfig *passes = benchPasses(opts);
    std::vector<bench::ScenarioRecord> records(selected.size());
    // Profiling and timeline sampling keep each run's recorder
    // alive past the run so --profile-trace can render the full
    // phase tracks (and counter tracks) afterwards.
    bool record_trace = opts.profile || opts.timeline;
    sim::Tick interval =
        opts.timeline ? (opts.timelineInterval
                             ? opts.timelineInterval
                             : bench::kTimelineAutoInterval)
                      : 0;
    std::vector<std::unique_ptr<core::TraceRecorder>> recorders(
        record_trace ? selected.size() : 0);
    auto run_one = [&](std::size_t i) {
        if (!record_trace) {
            records[i] =
                bench::runScenario(*selected[i], nullptr, passes);
            return;
        }
        recorders[i] = std::make_unique<core::TraceRecorder>();
        records[i] = bench::runScenario(
            *selected[i], recorders[i].get(), passes, opts.profile,
            interval);
    };
    unsigned workers = std::min<std::size_t>(opts.jobs,
                                             selected.size());
    if (workers <= 1) {
        for (std::size_t i = 0; i < selected.size(); ++i)
            run_one(i);
    } else {
        std::atomic<std::size_t> next_index{0};
        std::vector<std::thread> pool;
        pool.reserve(workers);
        for (unsigned w = 0; w < workers; ++w) {
            pool.emplace_back([&run_one, &selected, &next_index]() {
                for (;;) {
                    std::size_t i = next_index.fetch_add(1);
                    if (i >= selected.size())
                        return;
                    run_one(i);
                }
            });
        }
        for (auto &worker : pool)
            worker.join();
    }

    core::json::Value fresh = bench::makeTrajectoryDoc();
    bench::Table table{{"scenario", 40, 'l'},
                       {"cycles", 12},
                       {"bound", 12},
                       {"slack", 7},
                       {"spin-frac", 9},
                       {"host-ms", 8},
                       {"Mev/s", 7}};
    table.header();
    for (std::size_t i = 0; i < selected.size(); ++i) {
        const bench::Scenario *scenario = selected[i];
        bench::ScenarioRecord &record = records[i];
        table.row(
            {scenario->id, bench::Table::num(record.result.run.cycles),
             bench::Table::num(record.boundCycles),
             bench::Table::times(
                 record.boundCycles
                     ? static_cast<double>(record.result.run.cycles) /
                           static_cast<double>(record.boundCycles)
                     : 0.0),
             bench::Table::fixed(record.result.run.spinFraction()),
             bench::Table::fixed(
                 static_cast<double>(record.hostNanos) / 1e6, 1),
             bench::Table::fixed(record.eventsPerSec() / 1e6, 1)});
        core::json::Value rec = record.toJson();
        bench::mergeRecord(doc, rec);
        bench::mergeRecord(fresh, std::move(rec));
    }

    int profile_rc = 0;
    if (opts.profile) {
        for (std::size_t i = 0; i < selected.size(); ++i) {
            const bench::ScenarioRecord &record = records[i];
            if (!record.profile)
                continue;
            std::cout << "\n";
            record.profile->writeText(std::cout, selected[i]->id);

            // The reconstruction must land between the analytical
            // floor and the run itself; anything else means the
            // walk lost or double-counted cycles.
            sim::Tick achieved = record.profile->achievedCycles;
            if (achieved < record.boundCycles ||
                achieved > record.result.run.cycles) {
                std::fprintf(
                    stderr,
                    "profile invariant violated: %s achieved %llu "
                    "outside [bound %llu, cycles %llu]\n",
                    selected[i]->id.c_str(),
                    static_cast<unsigned long long>(achieved),
                    static_cast<unsigned long long>(
                        record.boundCycles),
                    static_cast<unsigned long long>(
                        record.result.run.cycles));
                profile_rc = 1;
            }

            if (!opts.profileTracePath.empty() && recorders[i]) {
                std::string path = traceFileFor(
                    opts.profileTracePath, selected[i]->id,
                    selected.size() > 1);
                core::json::Value trace =
                    recorders[i]->chromeTrace();
                core::json::Value events =
                    *trace.find("traceEvents");
                core::json::Value path_events =
                    record.profile->perfettoEvents();
                for (auto &ev : path_events.asArray())
                    events.push(std::move(ev));
                trace.set("traceEvents", std::move(events));
                if (!writeJsonFile(path, trace))
                    return 2;
                std::printf("wrote %s\n", path.c_str());
            }
        }
    }

    if (opts.timeline) {
        core::json::Value timelines = core::json::array();
        for (std::size_t i = 0; i < selected.size(); ++i) {
            const bench::ScenarioRecord &record = records[i];
            if (!record.timeline)
                continue;
            std::cout << "\n== " << selected[i]->id
                      << " timeline ==\n";
            record.timeline->writeText(std::cout);
            if (!opts.timelineJsonPath.empty()) {
                core::json::Value entry = core::json::object();
                entry.set("scenario", selected[i]->id);
                entry.set("timeline", record.timeline->toJson());
                timelines.push(std::move(entry));
            }
        }
        if (!opts.timelineJsonPath.empty()) {
            core::json::Value tdoc = core::json::object();
            tdoc.set("schema_version",
                     bench::kTrajectorySchemaVersion);
            tdoc.set("timelines", std::move(timelines));
            if (!writeJsonFile(opts.timelineJsonPath, tdoc))
                return 2;
            std::printf("wrote %s\n",
                        opts.timelineJsonPath.c_str());
        }
    }

    if (!opts.jsonPath.empty() &&
        !writeJsonFile(opts.jsonPath, doc))
        return 2;

    if (opts.forbidHeapFallback) {
        bool fell_back = false;
        for (std::size_t i = 0; i < selected.size(); ++i) {
            if (records[i].result.run.heapFallbackEvents == 0)
                continue;
            fell_back = true;
            std::fprintf(
                stderr,
                "heap fallback: %s demoted %llu events from the "
                "calendar core\n",
                selected[i]->id.c_str(),
                static_cast<unsigned long long>(
                    records[i].result.run.heapFallbackEvents));
        }
        if (fell_back)
            return 1;
    }

    if (!opts.baselinePath.empty()) {
        core::json::Value baseline;
        if (!readJsonFile(opts.baselinePath, baseline))
            return 2;
        bench::CompareResult result = bench::compareTrajectories(
            baseline, fresh, opts.compare);
        bench::printCompare(std::cout, result, opts.compare);
        return result.ok() ? profile_rc : 1;
    }
    return profile_rc;
}
