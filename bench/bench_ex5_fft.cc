/**
 * @file
 * E9 — Example 5: FFT phases with local communication. Each stage
 * exchanges with one partner, so pairwise PC synchronization
 * (mark_PC + spin on the partner) replaces the global barrier.
 * Under per-stage jitter, fast pairs run ahead of slow ones.
 */

#include <cstdio>

#include "bench/common.hh"
#include "core/runtime.hh"
#include "workloads/fft.hh"

using namespace psync;

namespace {

core::RunResult
runMode(workloads::FftSync mode, const workloads::FftSpec &spec)
{
    sim::MachineConfig cfg;
    cfg.numProcs = spec.numProcs;
    cfg.fabric = sim::FabricKind::registers;
    cfg.syncRegisters = 2 * spec.numProcs + 8;
    sim::Machine machine(cfg);
    std::vector<std::vector<sim::Program>> progs;
    switch (mode) {
      case workloads::FftSync::pairwise: {
        sim::SyncVarId base =
            machine.fabric().allocate(spec.numProcs, 0);
        progs = workloads::buildFftPairwise(base, spec);
        break;
      }
      case workloads::FftSync::butterflyBarrier: {
        sync::ButterflyBarrier barrier(machine.fabric(),
                                       spec.numProcs);
        progs = workloads::buildFftButterfly(barrier, spec);
        break;
      }
      case workloads::FftSync::counterBarrier: {
        sync::CounterBarrier barrier(machine.fabric(),
                                     spec.numProcs);
        progs = workloads::buildFftCounter(barrier, spec);
        break;
      }
    }
    auto r = core::runPerProcessorPrograms(machine, progs);
    if (!r.completed) {
        std::fprintf(stderr, "fft run deadlocked\n");
        std::exit(1);
    }
    return r;
}

} // namespace

int
main()
{
    bench::banner(
        "E9: FFT phase synchronization — pairwise vs global barrier",
        "Example 5",
        "communication is pairwise per stage, so no global barrier "
        "is needed; pairwise PC sync wins, more so under jitter");

    workloads::FftSpec spec;
    spec.rounds = 8;
    spec.stageCost = 64;

    std::printf("%-4s %-8s %12s %12s %12s %14s\n", "P", "jitter",
                "pairwise", "butterfly", "counter", "pairwise-gain");
    for (unsigned p : {4u, 8u, 16u, 32u}) {
        spec.numProcs = p;
        for (sim::Tick jitter : {0ull, 32ull, 96ull}) {
            spec.stageJitter = jitter;
            auto pw = runMode(workloads::FftSync::pairwise, spec);
            auto bf =
                runMode(workloads::FftSync::butterflyBarrier, spec);
            auto ctr =
                runMode(workloads::FftSync::counterBarrier, spec);
            std::printf("%-4u %-8llu %12llu %12llu %12llu %13.2fx\n",
                        p, static_cast<unsigned long long>(jitter),
                        static_cast<unsigned long long>(pw.cycles),
                        static_cast<unsigned long long>(bf.cycles),
                        static_cast<unsigned long long>(ctr.cycles),
                        static_cast<double>(ctr.cycles) / pw.cycles);
        }
        std::printf("\n");
    }
    return 0;
}
