/**
 * @file
 * E8 — Fig. 5.4 (Example 4): the butterfly barrier built from
 * process-counter primitives vs the counter barrier, across
 * processor counts and fabrics. The counter barrier funnels the
 * fetch&add arrivals and the release re-fetch burst through one
 * memory module (the hot spot); the butterfly spreads its log P
 * pairwise steps and needs no atomic operation at all.
 */

#include <cstdio>

#include "bench/common.hh"
#include "core/runtime.hh"
#include "workloads/butterfly.hh"

using namespace psync;

namespace {

core::RunResult
runBarrier(bool butterfly, unsigned procs, sim::FabricKind fabric,
           const workloads::BarrierSpec &spec)
{
    sim::MachineConfig cfg;
    cfg.numProcs = procs;
    cfg.fabric = fabric;
    cfg.syncRegisters = 2 * procs + 8;
    sim::Machine machine(cfg);
    std::vector<std::vector<sim::Program>> progs;
    if (butterfly) {
        sync::ButterflyBarrier barrier(machine.fabric(), procs);
        progs = workloads::buildButterflyPrograms(barrier, spec);
    } else {
        sync::CounterBarrier barrier(machine.fabric(), procs);
        progs = workloads::buildCounterBarrierPrograms(barrier, spec);
    }
    auto r = core::runPerProcessorPrograms(machine, progs);
    if (!r.completed) {
        std::fprintf(stderr, "barrier run deadlocked\n");
        std::exit(1);
    }
    return r;
}

core::RunResult
runDissemination(unsigned procs, sim::FabricKind fabric,
                 const workloads::BarrierSpec &spec)
{
    sim::MachineConfig cfg;
    cfg.numProcs = procs;
    cfg.fabric = fabric;
    cfg.syncRegisters = 2 * procs + 8;
    sim::Machine machine(cfg);
    sync::DisseminationBarrier barrier(machine.fabric(), procs);
    auto progs = workloads::buildDisseminationPrograms(barrier, spec);
    auto r = core::runPerProcessorPrograms(machine, progs);
    if (!r.completed) {
        std::fprintf(stderr, "dissemination run deadlocked\n");
        std::exit(1);
    }
    return r;
}

} // namespace

int
main()
{
    bench::banner(
        "E8: butterfly barrier vs counter barrier",
        "Fig. 5.4 (Example 4)",
        "the butterfly removes the hot spot and the atomic op, and "
        "performs better than a counter barrier on small bus-based "
        "systems");

    workloads::BarrierSpec spec;
    spec.episodes = 32;
    spec.workCost = 32;
    spec.workJitter = 32;

    std::printf("%-4s %-10s %12s %12s %12s %12s\n", "P", "fabric",
                "butterfly", "counter", "hot-spot", "ctr-queue");
    for (unsigned p : {2u, 4u, 8u, 16u, 32u}) {
        spec.numProcs = p;
        for (auto fabric : {sim::FabricKind::memory,
                            sim::FabricKind::registers}) {
            auto bf = runBarrier(true, p, fabric, spec);
            auto ctr = runBarrier(false, p, fabric, spec);
            std::printf("%-4u %-10s %12llu %12llu %12.2f %12llu\n",
                        p, sim::fabricKindName(fabric),
                        static_cast<unsigned long long>(bf.cycles),
                        static_cast<unsigned long long>(ctr.cycles),
                        ctr.hotSpotRatio,
                        static_cast<unsigned long long>(
                            ctr.moduleQueueDelay));
        }
    }
    std::printf(
        "\nnotes: on the register fabric the counter column assumes "
        "single-cycle atomic fetch&add registers — hardware the "
        "paper's scheme exists to avoid; the butterfly uses plain "
        "writes only. At P=32 the shared data bus saturates under "
        "P log P butterfly refills (uncached-era bus model).\n");

    // "with a minor modification, b_barrier() can work even when P
    // is not a power of 2 [11]" — the dissemination barrier.
    std::printf("\ndissemination barrier (any P), register "
                "fabric:\n");
    std::printf("%-4s %12s %12s\n", "P", "dissemination",
                "counter");
    for (unsigned p : {3u, 5u, 6u, 8u, 12u, 16u}) {
        spec.numProcs = p;
        auto dis = runDissemination(p, sim::FabricKind::registers,
                                    spec);
        auto ctr = runBarrier(false, p, sim::FabricKind::registers,
                              spec);
        std::printf("%-4u %12llu %12llu\n", p,
                    static_cast<unsigned long long>(dis.cycles),
                    static_cast<unsigned long long>(ctr.cycles));
    }
    return 0;
}
