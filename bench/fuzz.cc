#include "bench/fuzz.hh"

#include <atomic>
#include <charconv>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <thread>

#include "bench/common.hh"
#include "bench/registry.hh"
#include "core/critical_path.hh"
#include "core/profile.hh"
#include "core/tracing.hh"
#include "core/value_trace.hh"
#include "dep/dep_graph.hh"
#include "dep/loop_text.hh"
#include "ir/passes.hh"
#include "native/runner.hh"
#include "serve/service.hh"
#include "sim/machine.hh"
#include "sim/rng.hh"

namespace psync {
namespace bench {

namespace {

// ---- digests ----------------------------------------------------

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ull;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;

std::uint64_t
fnv1a(std::uint64_t h, std::uint64_t v)
{
    for (int b = 0; b < 8; ++b) {
        h ^= (v >> (b * 8)) & 0xff;
        h *= kFnvPrime;
    }
    return h;
}

std::uint64_t
fnv1aStr(std::uint64_t h, const std::string &s)
{
    for (unsigned char c : s) {
        h ^= c;
        h *= kFnvPrime;
    }
    return h;
}

/** Hex rendering for u64-wide JSON fields (doubles lose 2^53+). */
std::string
hex64(std::uint64_t v)
{
    char buf[19];
    std::snprintf(buf, sizeof(buf), "0x%016llx",
                  static_cast<unsigned long long>(v));
    return buf;
}

bool
parseHex64(const std::string &s, std::uint64_t &out)
{
    const char *p = s.c_str();
    if (s.size() > 2 && s[0] == '0' && (s[1] == 'x' || s[1] == 'X'))
        p += 2;
    auto res =
        std::from_chars(p, s.c_str() + s.size(), out, 16);
    return res.ec == std::errc{} &&
           res.ptr == s.c_str() + s.size();
}

// ---- per-case configuration -------------------------------------

std::uint64_t
configStream(std::uint64_t seed, std::uint64_t index)
{
    // Distinct salt from workloads::makeFuzzLoop so the run
    // configuration is uncorrelated with the loop shape.
    std::uint64_t z =
        (seed ^ 0xc2b2ae3d27d4eb4full) +
        index * 0x9e3779b97f4a7c15ull;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

const core::SchedulePolicy kPolicies[] = {
    core::SchedulePolicy::selfScheduling,
    core::SchedulePolicy::chunkedSelfScheduling,
    core::SchedulePolicy::guidedSelfScheduling,
    core::SchedulePolicy::staticCyclic,
};

core::SchedulePolicy
policyByName(const std::string &name, bool &ok)
{
    for (core::SchedulePolicy p : kPolicies) {
        if (name == core::schedulePolicyName(p)) {
            ok = true;
            return p;
        }
    }
    ok = false;
    return core::SchedulePolicy::selfScheduling;
}

// ---- the differential matrix ------------------------------------

bool
loopHasGuards(const dep::Loop &loop)
{
    for (const dep::Statement &stmt : loop.body)
        if (stmt.guard.conditional())
            return true;
    return false;
}

/** Sim machine + schedule for one (case config, scheme) pair. */
core::RunConfig
runConfigFor(const FuzzCaseConfig &ccfg, sync::SchemeKind kind,
             bool passes_on)
{
    core::RunConfig cfg =
        machineFor(kind, ccfg.procs, ccfg.numPcs);
    cfg.schedule = ccfg.schedule;
    cfg.chunkSize = ccfg.chunkSize;
    // The matrix reports verifier rejections as divergences instead
    // of letting planDoacross abort the whole campaign; acceptance
    // is checked explicitly via ir::verifyPrograms below.
    cfg.passes.verify = false;
    cfg.passes.eliminateRedundantWaits = passes_on;
    cfg.passes.peephole = passes_on;
    return cfg;
}

using Image = std::map<sim::Addr, std::uint64_t>;
using Reads = std::map<std::uint64_t, std::uint64_t>;

std::uint64_t
imageDigestOf(const Image &memory, const Reads &reads)
{
    std::uint64_t h = kFnvOffset;
    for (const auto &kv : memory) {
        h = fnv1a(h, kv.first);
        h = fnv1a(h, kv.second);
    }
    for (const auto &kv : reads) {
        h = fnv1a(h, kv.first);
        h = fnv1a(h, kv.second);
    }
    return h;
}

/** First differing key/value, for failure messages. */
template <typename Map>
std::string
firstDelta(const Map &got, const Map &want)
{
    auto g = got.begin();
    auto w = want.begin();
    while (g != got.end() && w != want.end()) {
        if (g->first != w->first || g->second != w->second)
            break;
        ++g;
        ++w;
    }
    char buf[160];
    if (g == got.end() && w == want.end())
        return "(equal)";
    if (g == got.end())
        std::snprintf(buf, sizeof(buf),
                      "missing key %llx (want value %llx)",
                      static_cast<unsigned long long>(w->first),
                      static_cast<unsigned long long>(w->second));
    else if (w == want.end())
        std::snprintf(buf, sizeof(buf),
                      "extra key %llx (got value %llx)",
                      static_cast<unsigned long long>(g->first),
                      static_cast<unsigned long long>(g->second));
    else
        std::snprintf(
            buf, sizeof(buf),
            "key %llx: got %llx want %llx",
            static_cast<unsigned long long>(
                g->first != w->first ? w->first : g->first),
            static_cast<unsigned long long>(g->second),
            static_cast<unsigned long long>(w->second));
    return buf;
}

} // namespace

FuzzCaseConfig
fuzzCaseConfig(std::uint64_t seed, std::uint64_t index)
{
    sim::Rng rng(configStream(seed, index));
    FuzzCaseConfig cfg;
    cfg.procs = 2 + static_cast<unsigned>(rng.below(7));
    cfg.schedule = kPolicies[rng.below(4)];
    cfg.chunkSize = 2 + rng.below(7);
    const unsigned pcs[] = {4, 8, 16};
    cfg.numPcs = pcs[rng.below(3)];
    cfg.nativeThreads = 2 + static_cast<unsigned>(rng.below(3));
    cfg.timingSeed = rng.next() | 1;
    return cfg;
}

FuzzCaseOutcome
runFuzzCase(const dep::Loop &loop, const FuzzCaseConfig &ccfg,
            const FuzzOptions &opts, std::uint64_t index)
{
    FuzzCaseOutcome out;
    out.index = index;
    out.depth2 = loop.depth == 2;
    out.guarded = loopHasGuards(loop);
    out.cyclesDigest = kFnvOffset;

    auto fail = [&](const std::string &what) {
        out.failures.push_back(what);
    };

    // Oracle 1: the functional sequential replay.
    core::SequentialImage seq = core::sequentialImage(loop);
    out.imageDigest = imageDigestOf(seq.memory, seq.reads);

    const std::vector<sync::SchemeKind> kinds =
        sync::allSyncSchemes();

    // Analytical oracle on small DAGs: one scheme per case gets a
    // profiled sim run whose achieved path must land between the
    // analytical bound and the simulated cycles.
    bool small_dag =
        loop.iterations() * loop.body.size() <=
        opts.smallDagMaxInstances;
    // Never gate the renaming scheme: it eliminates anti and
    // output dependences outright, so the dependence-graph critical
    // path is not a lower bound on its runs (a loop whose only
    // cross-iteration arc is an anti dependence finishes below the
    // "bound").
    sync::SchemeKind gate_kind = kinds[index % kinds.size()];
    if (gate_kind == sync::SchemeKind::instanceBased)
        gate_kind = sync::SchemeKind::processImproved;

    // Service-mode leg: one persistent service per case, shared
    // across schemes (the plan cache keys on scheme + config).
    std::unique_ptr<serve::DoacrossService> service;
    if (opts.serveMode) {
        serve::ServeConfig scfg;
        scfg.gangs = 1;
        scfg.gangSize = ccfg.nativeThreads;
        scfg.native.timingSeed = ccfg.timingSeed;
        scfg.verifySampleEvery = 1; // verify every served request
        scfg.requestTimeoutMs = opts.nativeTimeoutMs;
        service =
            std::make_unique<serve::DoacrossService>(scfg);
    }

    for (sync::SchemeKind kind : kinds) {
        const char *name = sync::schemeKindName(kind);
        bool is_instance =
            kind == sync::SchemeKind::instanceBased;
        if (is_instance && out.guarded) {
            // The scheme rejects branch-guarded bodies by design.
            out.instanceSkipped = true;
            continue;
        }
        std::size_t scheme_failures = out.failures.size();

        Image sim_memory[2];
        bool sim_deadlocked[2] = {false, false};
        for (int p = 0; p < 2; ++p) {
            bool passes_on = p == 1;
            std::string tag =
                std::string(name) +
                (passes_on ? "[passes=on]" : "[passes=off]");
            core::RunConfig cfg =
                runConfigFor(ccfg, kind, passes_on);

            // Verifier acceptance, without the planner's abort.
            {
                sim::Machine planning(cfg.machine);
                core::PlannedDoacross planned = core::planDoacross(
                    loop, kind, cfg, planning.fabric());
                sim::SyncFabric &fabric = planning.fabric();
                std::vector<std::string> errors =
                    ir::verifyPrograms(
                        planned.programs,
                        [&fabric](sim::SyncVarId var) {
                            return fabric.peek(var);
                        });
                if (!errors.empty()) {
                    fail(tag + "[verify]: " + errors.front());
                    continue;
                }
            }

            core::ValueTrace values;
            cfg.extraSink = &values;
            core::TraceRecorder recorder;
            bool gated = small_dag && kind == gate_kind &&
                         !passes_on;
            if (gated)
                cfg.tracer = &recorder;

            core::DoacrossResult r =
                core::runDoacross(loop, kind, cfg);
            ++out.schemeRuns;
            out.cyclesDigest = fnv1aStr(out.cyclesDigest, tag);
            out.cyclesDigest =
                fnv1a(out.cyclesDigest, r.run.cycles);

            if (!r.run.completed) {
                sim_deadlocked[p] = true;
                fail(tag + "[sim]: deadlock (tick limit)");
                continue;
            }
            if (!r.violations.empty()) {
                fail(tag + "[sim]: trace violation: " +
                     r.violations.front());
                continue;
            }
            if (values.reads() != seq.reads)
                fail(tag + "[sim]: read values diverge from "
                           "sequential replay: " +
                     firstDelta(values.reads(), seq.reads));
            // Instance-based writes land in the renamed copy
            // region, so its image is compared backend-to-backend
            // below instead of against the sequential image.
            if (!is_instance && values.memory() != seq.memory)
                fail(tag + "[sim]: memory image diverges from "
                           "sequential replay: " +
                     firstDelta(values.memory(), seq.memory));
            sim_memory[p] = values.memory();

            if (gated) {
                core::CriticalPathCosts costs =
                    core::CriticalPathCosts::fromMachine(
                        cfg.machine);
                dep::DepGraph graph(loop, false);
                core::CriticalPath dp =
                    core::criticalPath(graph, costs);
                core::CriticalPath an =
                    core::analyticalCriticalPath(loop, costs);
                out.analyticalGated = true;
                if (an.cycles != dp.cycles ||
                    an.totalWork != dp.totalWork) {
                    fail(tag +
                         "[analytical]: closed-form path " +
                         std::to_string(an.cycles) + "/work " +
                         std::to_string(an.totalWork) +
                         " != DP path " +
                         std::to_string(dp.cycles) + "/work " +
                         std::to_string(dp.totalWork));
                } else {
                    sim::Tick bound =
                        an.achievableBound(ccfg.procs);
                    core::CriticalPathProfile profile =
                        core::buildCriticalPathProfile(
                            recorder, r.run.cycles, bound);
                    sim::Tick achieved = profile.achievedCycles;
                    if (achieved < bound ||
                        achieved > r.run.cycles)
                        fail(tag +
                             "[analytical]: achieved path " +
                             std::to_string(achieved) +
                             " outside [analytical bound " +
                             std::to_string(bound) +
                             ", cycles " +
                             std::to_string(r.run.cycles) + "]");
                }
            }
        }

        // Fabric-rotation leg: the same planned Doacross on a
        // rotated sync fabric must compute the same values (fabrics
        // change timing, never results). Rotation picks one
        // alternate fabric per (case, scheme) so a campaign covers
        // every kind without quadrupling each case. Skipped when
        // the scheme already diverged above — a fabric leg would
        // only restate the scheme bug under a different name.
        if (opts.fabricMode &&
            out.failures.size() == scheme_failures &&
            !sim_deadlocked[1]) {
            const sim::FabricKind rotation[] = {
                sim::FabricKind::memory,
                sim::FabricKind::registers,
                sim::FabricKind::combining,
                sim::FabricKind::hierarchical,
            };
            core::RunConfig cfg = runConfigFor(ccfg, kind, true);
            std::size_t pick =
                (index + static_cast<std::size_t>(kind)) % 4;
            if (rotation[pick] == cfg.machine.fabric)
                pick = (pick + 1) % 4;
            cfg.machine.fabric = rotation[pick];
            cfg.machine.numClusters = 2;
            std::string tag =
                std::string(name) + "[fabric=" +
                sim::fabricKindName(rotation[pick]) + "]";

            core::ValueTrace values;
            cfg.extraSink = &values;
            core::DoacrossResult r =
                core::runDoacross(loop, kind, cfg);
            ++out.schemeRuns;
            out.cyclesDigest = fnv1aStr(out.cyclesDigest, tag);
            out.cyclesDigest =
                fnv1a(out.cyclesDigest, r.run.cycles);

            if (!r.run.completed) {
                fail(tag + ": deadlock (tick limit)");
            } else if (!r.violations.empty()) {
                fail(tag + ": trace violation: " +
                     r.violations.front());
            } else {
                if (values.reads() != seq.reads)
                    fail(tag + ": read values diverge from "
                               "sequential replay: " +
                         firstDelta(values.reads(), seq.reads));
                if (!is_instance &&
                    values.memory() != seq.memory)
                    fail(tag + ": memory image diverges from "
                               "sequential replay: " +
                         firstDelta(values.memory(), seq.memory));
                if (is_instance &&
                    values.memory() != sim_memory[1])
                    fail(tag + ": renamed image differs from "
                               "default-fabric run: " +
                         firstDelta(values.memory(),
                                    sim_memory[1]));
            }
        }

        // The pass pipeline must not change what is computed.
        if (is_instance && sim_memory[0] != sim_memory[1])
            fail(std::string(name) +
                 "[sim]: renamed image differs between passes "
                 "off/on: " +
                 firstDelta(sim_memory[1], sim_memory[0]));

        for (int p = 0; p < 2; ++p) {
            bool passes_on = p == 1;
            std::string tag =
                std::string(name) +
                (passes_on ? "[passes=on]" : "[passes=off]") +
                "[native]";
            if (sim_deadlocked[p]) {
                // The simulator already proved this scheme
                // deadlocks on this program (deterministically);
                // the native run would only rediscover that by
                // burning its whole wall-clock deadline, which
                // makes shrinking such cases take hours.
                continue;
            }
            core::RunConfig cfg =
                runConfigFor(ccfg, kind, passes_on);
            native::NativeConfig ncfg;
            ncfg.numThreads = ccfg.nativeThreads;
            ncfg.timingSeed =
                ccfg.timingSeed ^ static_cast<std::uint64_t>(p);
            ncfg.timeoutMs = opts.nativeTimeoutMs;
            native::NativeDoacrossResult nat =
                native::runDoacrossNative(loop, kind, cfg, ncfg);
            ++out.schemeRuns;

            if (!nat.run.completed) {
                fail(tag + ": did not complete (deadline abort)");
                continue;
            }
            if (!nat.run.errors.empty()) {
                fail(tag + ": executor error: " +
                     nat.run.errors.front());
                continue;
            }
            if (!nat.violations.empty()) {
                fail(tag + ": trace violation: " +
                     nat.violations.front());
                continue;
            }
            if (!nat.valueMismatches.empty()) {
                fail(tag + ": value mismatch: " +
                     nat.valueMismatches.front());
                continue;
            }
            if (nat.reads != seq.reads)
                fail(tag + ": read values diverge from "
                           "sequential replay: " +
                     firstDelta(nat.reads, seq.reads));
            const Image &want_memory =
                is_instance ? sim_memory[p] : seq.memory;
            if (nat.memory != want_memory)
                fail(tag + ": memory image diverges from " +
                     (is_instance ? "simulated renamed image: "
                                  : "sequential replay: ") +
                     firstDelta(nat.memory, want_memory));
        }

        // Serve leg: plan through the service's cache, tie the
        // cached reference image to the sequential oracle, then
        // submit the same plan three times so epoch reuse (not
        // just the first fresh epoch) is what gets verified.
        // Skipped when the scheme already diverged or deadlocked
        // above — the service would only rediscover that by
        // burning its watchdog deadline.
        if (service && out.failures.size() == scheme_failures &&
            !sim_deadlocked[0] && !sim_deadlocked[1]) {
            std::string tag = std::string(name) + "[serve]";
            core::RunConfig cfg = runConfigFor(ccfg, kind, true);
            std::shared_ptr<const core::CachedPlan> plan =
                service->plan(loop, kind, cfg);
            if (plan->hasReference) {
                if (plan->refReads != seq.reads)
                    fail(tag + ": reference read values diverge "
                               "from sequential replay: " +
                         firstDelta(plan->refReads, seq.reads));
                if (!is_instance && plan->refMemory != seq.memory)
                    fail(tag + ": reference memory image diverges "
                               "from sequential replay: " +
                         firstDelta(plan->refMemory, seq.memory));
            }
            for (int r = 0; r < 3; ++r)
                service->submitPlan(plan);
            service->waitIdle();
            for (const serve::Completion &c :
                 service->takeCompletions()) {
                ++out.schemeRuns;
                if (!c.completed) {
                    fail(tag + ": " +
                         (c.problems.empty()
                              ? std::string("did not complete")
                              : c.problems.front()));
                } else if (!c.verifyOk) {
                    fail(tag + ": " + c.problems.front());
                }
            }
        }
    }
    return out;
}

// ---- shrinking --------------------------------------------------

namespace {

/** All one-step reductions of `loop`, structural-first. */
std::vector<dep::Loop>
shrinkCandidates(const dep::Loop &loop)
{
    std::vector<dep::Loop> out;

    if (loop.outer.count() >= 2) {
        dep::Loop c = loop;
        c.outer.hi = c.outer.lo + (loop.outer.count() / 2) - 1;
        out.push_back(std::move(c));
    }
    if (loop.depth == 2) {
        dep::Loop c = loop;
        c.depth = 1;
        c.inner = dep::Bounds{1, 1};
        for (dep::Statement &stmt : c.body)
            for (dep::ArrayRef &ref : stmt.refs)
                ref.subs.resize(1);
        out.push_back(std::move(c));
        if (loop.inner.count() >= 2) {
            dep::Loop h = loop;
            h.inner.hi = h.inner.lo + (loop.inner.count() / 2) - 1;
            out.push_back(std::move(h));
        }
    }
    if (loop.body.size() >= 2) {
        for (size_t s = 0; s < loop.body.size(); ++s) {
            dep::Loop c = loop;
            c.body.erase(c.body.begin() +
                         static_cast<long>(s));
            out.push_back(std::move(c));
        }
    }
    for (size_t s = 0; s < loop.body.size(); ++s) {
        for (size_t r = 0; r < loop.body[s].refs.size(); ++r) {
            dep::Loop c = loop;
            c.body[s].refs.erase(c.body[s].refs.begin() +
                                 static_cast<long>(r));
            out.push_back(std::move(c));
        }
    }
    for (size_t s = 0; s < loop.body.size(); ++s) {
        if (loop.body[s].guard.conditional()) {
            dep::Loop c = loop;
            c.body[s].guard = dep::Guard{};
            out.push_back(std::move(c));
        }
        if (loop.body[s].cost > 1) {
            dep::Loop c = loop;
            c.body[s].cost = 1;
            out.push_back(std::move(c));
        }
    }
    return out;
}

/**
 * Greedy delta debugging: keep applying the first one-step
 * reduction that still fails, until none does or the evaluation
 * budget runs out.
 */
dep::Loop
shrinkLoop(const dep::Loop &loop, const FuzzCaseConfig &ccfg,
           const FuzzOptions &opts, std::uint64_t index)
{
    dep::Loop best = loop;
    std::uint64_t evals = 0;
    bool progress = true;
    while (progress && evals < opts.shrinkBudget) {
        progress = false;
        for (dep::Loop &cand : shrinkCandidates(best)) {
            if (evals >= opts.shrinkBudget)
                break;
            ++evals;
            if (!runFuzzCase(cand, ccfg, opts, index).ok()) {
                best = std::move(cand);
                progress = true;
                break;
            }
        }
    }
    return best;
}

} // namespace

core::json::Value
FuzzDivergence::toBundle(const FuzzOptions &opts,
                         const FuzzCaseConfig &ccfg) const
{
    core::json::Value doc = core::json::object();
    doc.set("kind", "fuzz-repro");
    doc.set("schema_version", kTrajectorySchemaVersion);
    doc.set("seed", hex64(opts.seed));
    doc.set("case", index);
    core::json::Value cfg = core::json::object();
    cfg.set("procs", ccfg.procs);
    cfg.set("schedule", core::schedulePolicyName(ccfg.schedule));
    cfg.set("chunk_size", ccfg.chunkSize);
    cfg.set("num_pcs", ccfg.numPcs);
    cfg.set("native_threads", ccfg.nativeThreads);
    cfg.set("timing_seed", hex64(ccfg.timingSeed));
    doc.set("config", std::move(cfg));
    doc.set("canonical", canonical);
    doc.set("original_canonical", originalCanonical);
    core::json::Value fails = core::json::array();
    for (const std::string &f : failures)
        fails.push(f);
    doc.set("failures", std::move(fails));
    return doc;
}

core::json::Value
FuzzCampaignResult::toJson() const
{
    core::json::Value rec = core::json::object();
    rec.set("scenario",
            "fuzz/s" + std::to_string(seed) + "-n" +
                std::to_string(programs));
    rec.set("kind", "fuzz");
    rec.set("schema_version", kTrajectorySchemaVersion);
    rec.set("seed", hex64(seed));
    rec.set("programs", programs);
    rec.set("scheme_runs", schemeRuns);
    core::json::Value shapes = core::json::object();
    shapes.set("depth2", depth2);
    shapes.set("depth1", programs - depth2);
    shapes.set("guarded", guarded);
    shapes.set("instance_skipped", instanceSkipped);
    rec.set("shapes", std::move(shapes));
    rec.set("analytical_gated", analyticalGated);
    // Schema v9, conditional: campaigns without rotation stay
    // byte-identical to v8 fuzz records.
    if (fabricMode)
        rec.set("fabric_rotation", true);
    rec.set("divergences",
            static_cast<std::uint64_t>(divergences.size()));
    rec.set("case_digest", hex64(caseDigest));
    return rec;
}

FuzzCampaignResult
runFuzzCampaign(const FuzzOptions &opts)
{
    FuzzCampaignResult result;
    result.seed = opts.seed;
    result.programs = opts.count;
    result.fabricMode = opts.fabricMode;

    std::vector<FuzzCaseOutcome> outcomes(opts.count);
    auto run_one = [&](std::uint64_t i) {
        dep::Loop loop =
            workloads::makeFuzzLoop(opts.seed, i, opts.limits);
        outcomes[i] =
            runFuzzCase(loop, fuzzCaseConfig(opts.seed, i), opts,
                        i);
    };

    unsigned workers = static_cast<unsigned>(std::min<std::uint64_t>(
        opts.jobs ? opts.jobs : 1, opts.count));
    if (workers <= 1) {
        for (std::uint64_t i = 0; i < opts.count; ++i)
            run_one(i);
    } else {
        std::atomic<std::uint64_t> next_index{0};
        std::vector<std::thread> pool;
        pool.reserve(workers);
        for (unsigned w = 0; w < workers; ++w) {
            pool.emplace_back([&]() {
                for (;;) {
                    std::uint64_t i = next_index.fetch_add(1);
                    if (i >= opts.count)
                        return;
                    run_one(i);
                }
            });
        }
        for (std::thread &worker : pool)
            worker.join();
    }

    result.caseDigest = kFnvOffset;
    for (const FuzzCaseOutcome &o : outcomes) {
        result.schemeRuns += o.schemeRuns;
        result.depth2 += o.depth2 ? 1 : 0;
        result.guarded += o.guarded ? 1 : 0;
        result.instanceSkipped += o.instanceSkipped ? 1 : 0;
        result.analyticalGated += o.analyticalGated ? 1 : 0;
        result.caseDigest = fnv1a(result.caseDigest, o.imageDigest);
        result.caseDigest = fnv1a(result.caseDigest, o.cyclesDigest);
        result.caseDigest = fnv1a(
            result.caseDigest,
            static_cast<std::uint64_t>(o.failures.size()));
    }

    // Shrink + bundle divergent cases serially (they are rare, and
    // shrinking re-runs the whole matrix per candidate).
    for (const FuzzCaseOutcome &o : outcomes) {
        if (o.ok())
            continue;
        dep::Loop original =
            workloads::makeFuzzLoop(opts.seed, o.index,
                                    opts.limits);
        FuzzCaseConfig ccfg = fuzzCaseConfig(opts.seed, o.index);
        dep::Loop shrunk =
            opts.shrink
                ? shrinkLoop(original, ccfg, opts, o.index)
                : original;

        FuzzDivergence div;
        div.index = o.index;
        div.originalCanonical = dep::printLoop(original);
        div.canonical = dep::printLoop(shrunk);
        div.failures =
            runFuzzCase(shrunk, ccfg, opts, o.index).failures;
        if (div.failures.empty()) {
            // Shrinking is re-evaluated from scratch; a flaky
            // failure that vanished still ships the original
            // failures so nothing is silently dropped.
            div.failures = o.failures;
            div.canonical = div.originalCanonical;
        }

        if (!opts.reproDir.empty()) {
            std::error_code ec;
            std::filesystem::create_directories(opts.reproDir, ec);
            std::string path =
                opts.reproDir + "/fuzz-s" +
                std::to_string(opts.seed) + "-c" +
                std::to_string(o.index) + ".json";
            std::ofstream os(path);
            if (os) {
                div.toBundle(opts, ccfg).dump(os, 2);
                os << "\n";
                div.bundlePath = path;
            } else {
                std::fprintf(stderr,
                             "fuzz: cannot write bundle %s\n",
                             path.c_str());
            }
        }
        result.divergences.push_back(std::move(div));
    }
    return result;
}

bool
replayFuzzBundle(const core::json::Value &bundle,
                 std::vector<std::string> &failures)
{
    failures.clear();
    auto malformed = [&](const std::string &what) {
        failures.push_back("malformed bundle: " + what);
        return false;
    };

    const core::json::Value *canonical = bundle.find("canonical");
    if (!canonical || !canonical->isString())
        return malformed("missing canonical loop text");
    dep::ParsedLoop parsed = dep::parseLoop(canonical->asString());
    if (!parsed.ok)
        return malformed(parsed.error);

    FuzzCaseConfig ccfg;
    const core::json::Value *cfg = bundle.find("config");
    if (!cfg || !cfg->isObject())
        return malformed("missing config object");
    auto num = [&](const char *key, auto &out) {
        const core::json::Value *v = cfg->find(key);
        if (v && v->isNumber())
            out = static_cast<std::decay_t<decltype(out)>>(
                v->asNumber());
    };
    num("procs", ccfg.procs);
    num("chunk_size", ccfg.chunkSize);
    num("num_pcs", ccfg.numPcs);
    num("native_threads", ccfg.nativeThreads);
    if (const core::json::Value *v = cfg->find("schedule")) {
        bool ok = false;
        if (v->isString())
            ccfg.schedule = policyByName(v->asString(), ok);
        if (!ok)
            return malformed("unknown schedule policy");
    }
    if (const core::json::Value *v = cfg->find("timing_seed")) {
        if (!v->isString() ||
            !parseHex64(v->asString(), ccfg.timingSeed))
            return malformed("bad timing_seed");
    }

    std::uint64_t index = 0;
    if (const core::json::Value *v = bundle.find("case"))
        if (v->isNumber())
            index = static_cast<std::uint64_t>(v->asNumber());

    FuzzOptions opts;
    failures = runFuzzCase(parsed.loop, ccfg, opts, index).failures;
    return true;
}

} // namespace bench
} // namespace psync
