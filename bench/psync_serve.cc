/**
 * @file
 * psync_serve — drive the persistent Doacross runtime service with
 * sustained mixed traffic and record schema-v8 kind:"serve"
 * trajectory records.
 *
 * The default campaign races both fabric wake policies (sharded
 * mutex+condvar vs flat combining) across three traffic mixes
 * (uniform, hotkey, bursty) drawn from the bench registry, with
 * sampled full verification. Exit status is non-zero when any
 * request failed or any verification sample diverged, so CI can
 * gate on it directly.
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "bench/compare.hh"
#include "bench/registry.hh"
#include "bench/serve_bench.hh"

namespace {

using namespace psync;

struct Options
{
    bench::ServeCampaignOptions campaign;
    std::string jsonPath;
    bool smoke = false;
};

void
usage()
{
    std::fprintf(
        stderr,
        "usage: psync_serve [--requests N] [--gangs G]\n"
        "                   [--gang-size S] [--scenarios GLOB]\n"
        "                   [--verify-every N] [--seed S]\n"
        "                   [--timeout-ms MS] [--burst N]\n"
        "                   [--mix uniform|hotkey|bursty]\n"
        "                   [--policy sharded|flat-combining]\n"
        "                   [--json FILE] [--smoke]\n"
        "\n"
        "Runs a mix x wake-policy campaign grid against the\n"
        "persistent runtime service. --mix/--policy (repeatable)\n"
        "restrict the grid. --json merges the cell records and the\n"
        "campaign summary into a trajectory file (schema v8).\n"
        "--smoke shrinks the campaign for CI (few requests, tight\n"
        "verification sampling).\n");
}

bool
parseArgs(int argc, char **argv, Options &opts)
{
    auto need = [&](int &i, const char *what) -> const char * {
        if (i + 1 >= argc) {
            std::fprintf(stderr, "%s needs a value\n", what);
            return nullptr;
        }
        return argv[++i];
    };
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        const char *v = nullptr;
        if (arg == "--requests") {
            if (!(v = need(i, "--requests")))
                return false;
            opts.campaign.requests = std::strtoull(v, nullptr, 10);
        } else if (arg == "--gangs") {
            if (!(v = need(i, "--gangs")))
                return false;
            opts.campaign.gangs =
                static_cast<unsigned>(std::strtoul(v, nullptr, 10));
        } else if (arg == "--gang-size") {
            if (!(v = need(i, "--gang-size")))
                return false;
            opts.campaign.gangSize =
                static_cast<unsigned>(std::strtoul(v, nullptr, 10));
        } else if (arg == "--scenarios") {
            if (!(v = need(i, "--scenarios")))
                return false;
            opts.campaign.scenarioGlob = v;
        } else if (arg == "--verify-every") {
            if (!(v = need(i, "--verify-every")))
                return false;
            opts.campaign.verifySampleEvery =
                static_cast<unsigned>(std::strtoul(v, nullptr, 10));
        } else if (arg == "--seed") {
            if (!(v = need(i, "--seed")))
                return false;
            opts.campaign.seed = std::strtoull(v, nullptr, 10);
        } else if (arg == "--timeout-ms") {
            if (!(v = need(i, "--timeout-ms")))
                return false;
            opts.campaign.requestTimeoutMs =
                std::strtoull(v, nullptr, 10);
        } else if (arg == "--burst") {
            if (!(v = need(i, "--burst")))
                return false;
            opts.campaign.burstSize =
                std::strtoull(v, nullptr, 10);
        } else if (arg == "--mix") {
            if (!(v = need(i, "--mix")))
                return false;
            opts.campaign.mixes.emplace_back(v);
        } else if (arg == "--policy") {
            if (!(v = need(i, "--policy")))
                return false;
            if (std::strcmp(v, "sharded") == 0) {
                opts.campaign.policies.push_back(
                    native::WakePolicy::sharded);
            } else if (std::strcmp(v, "flat-combining") == 0 ||
                       std::strcmp(v, "fc") == 0) {
                opts.campaign.policies.push_back(
                    native::WakePolicy::flatCombining);
            } else {
                std::fprintf(stderr, "unknown policy '%s'\n", v);
                return false;
            }
        } else if (arg == "--json") {
            if (!(v = need(i, "--json")))
                return false;
            opts.jsonPath = v;
        } else if (arg == "--smoke") {
            opts.smoke = true;
        } else if (arg == "--help" || arg == "-h") {
            usage();
            std::exit(0);
        } else {
            std::fprintf(stderr, "unknown argument '%s'\n",
                         arg.c_str());
            return false;
        }
    }
    if (opts.smoke) {
        // CI shape: small but still crossing every code path —
        // both policies, all mixes, tight verification sampling.
        opts.campaign.requests = 60;
        opts.campaign.verifySampleEvery = 4;
        opts.campaign.burstSize = 16;
        if (opts.campaign.scenarioGlob == "fig21-n256/*")
            opts.campaign.scenarioGlob = "fig21-n64/*";
    }
    return true;
}

bool
readJsonFile(const std::string &path, core::json::Value &out)
{
    std::ifstream is(path);
    if (!is)
        return false;
    std::ostringstream text;
    text << is.rdbuf();
    auto parsed = core::json::parse(text.str());
    if (!parsed.ok) {
        std::fprintf(stderr, "%s: %s\n", path.c_str(),
                     parsed.error.c_str());
        return false;
    }
    out = std::move(parsed.value);
    return true;
}

bool
writeJsonFile(const std::string &path,
              const core::json::Value &doc)
{
    std::ofstream os(path);
    if (!os) {
        std::fprintf(stderr, "cannot write %s\n", path.c_str());
        return false;
    }
    doc.dump(os, 2);
    os << "\n";
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opts;
    if (!parseArgs(argc, argv, opts)) {
        usage();
        return 2;
    }

    bench::ServeCampaignResult result =
        bench::runServeCampaign(opts.campaign);

    std::printf(
        "campaign: %llu requests, %llu program executions, "
        "%llu failed, %llu verify failures\n",
        static_cast<unsigned long long>(result.totalRequests),
        static_cast<unsigned long long>(result.totalPrograms),
        static_cast<unsigned long long>(result.totalFailed),
        static_cast<unsigned long long>(
            result.totalVerifyFailures));

    if (!opts.jsonPath.empty()) {
        core::json::Value doc = bench::makeTrajectoryDoc();
        core::json::Value existing;
        if (readJsonFile(opts.jsonPath, existing) &&
            bench::loadTrajectory(existing).ok) {
            doc = std::move(existing);
            doc.set("schema_version",
                    bench::kTrajectorySchemaVersion);
        }
        for (const auto &cell : result.cells)
            bench::mergeRecord(doc, cell.toJson());
        bench::mergeRecord(doc, result.toJson());
        if (!writeJsonFile(opts.jsonPath, doc))
            return 2;
    }

    return result.ok() ? 0 : 1;
}
