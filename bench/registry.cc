#include "bench/registry.hh"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "bench/common.hh"
#include "core/critical_path.hh"
#include "workloads/branches.hh"
#include "workloads/fig21.hh"
#include "workloads/nested.hh"
#include "workloads/relaxation.hh"
#include "workloads/synthetic.hh"

namespace psync {
namespace bench {

namespace {

/** The E3 jitter workload (Fig. 2.1 + occasional long branch). */
dep::Loop
makeJitterLoop()
{
    return workloads::makeFig21JitterLoop(256, 8, 800, 0.15, 1234);
}

/** The E15 dense synthetic loop (many coverable arcs). */
dep::Loop
makeDenseLoop()
{
    workloads::SyntheticSpec spec;
    spec.seed = 42;
    spec.n = 128;
    spec.numStatements = 8;
    spec.numArrays = 1;
    return workloads::makeSyntheticLoop(spec);
}

class Registry
{
  public:
    Registry() { build(); }

    std::vector<Scenario> scenarios;

  private:
    void
    add(std::string group, std::string variant, std::string workload,
        std::string scheme, std::string description,
        sync::SchemeKind kind, std::function<dep::Loop()> loop,
        core::RunConfig config)
    {
        Scenario s;
        s.id = std::move(group) + "/" + std::move(variant);
        s.workload = std::move(workload);
        s.scheme = std::move(scheme);
        s.description = std::move(description);
        s.kind = kind;
        s.loop = std::move(loop);
        s.config = std::move(config);
        scenarios.push_back(std::move(s));
    }

    /** One group entry per scheme, on each scheme's natural fabric. */
    void
    addSchemeSweep(const std::string &group,
                   const std::string &workload,
                   const std::string &description,
                   std::function<dep::Loop()> loop,
                   bool skip_instance = false)
    {
        for (auto kind : sync::allSyncSchemes()) {
            if (skip_instance &&
                kind == sync::SchemeKind::instanceBased)
                continue;
            add(group, sync::schemeKindName(kind), workload,
                sync::schemeKindName(kind), description, kind, loop,
                machineFor(kind));
        }
        auto cedar = memoryMachine();
        cedar.scheme.cedarCombining = true;
        add(group, "reference+cedar", workload, "reference+cedar",
            description + " (memory-side combining)",
            sync::SchemeKind::referenceBased, loop, cedar);
    }

    void
    build()
    {
        // -- smoke: the small, fast subset CI compares against a
        // checked-in baseline (bench/baseline.json).
        for (auto kind : {sync::SchemeKind::processImproved,
                          sync::SchemeKind::statementOriented,
                          sync::SchemeKind::referenceBased}) {
            add("fig21-n64", sync::schemeKindName(kind),
                "fig2.1 (N=64)", sync::schemeKindName(kind),
                "CI smoke subset of the Fig. 2.1 loop",
                kind, [] { return workloads::makeFig21Loop(64); },
                machineFor(kind));
        }

        // -- E11: the scheme taxonomy on the paper's workloads.
        addSchemeSweep("fig21-n256", "fig2.1 (N=256)",
                       "sections 3-6 taxonomy on the running example",
                       [] { return workloads::makeFig21Loop(256); });
        addSchemeSweep("nested-32x32", "nested (32x32)",
                       "Example 2: linearized nest",
                       [] {
                           return workloads::makeNestedLoop(32, 32);
                       });
        addSchemeSweep("branches-n256", "branches (N=256, p=0.5)",
                       "Example 3: sources inside branches",
                       [] {
                           return workloads::makeBranchLoop(256, 0.5);
                       },
                       /*skip_instance=*/true);

        // -- E7: early vs deferred signaling of untaken sources.
        {
            auto cfg = registerMachine();
            cfg.scheme.earlyBranchSignals = false;
            add("branches-n256", "process-improved-deferred",
                "branches (N=256, p=0.5)", "process-improved",
                "Fig. 5.3 counterfactual: defer untaken-source "
                "signals to iteration end",
                sync::SchemeKind::processImproved,
                [] { return workloads::makeBranchLoop(256, 0.5); },
                cfg);
        }

        // -- E3 / Fig. 3.2: statement-counter serialization under
        // jittered iteration delays.
        for (auto kind : {sync::SchemeKind::statementOriented,
                          sync::SchemeKind::processBasic,
                          sync::SchemeKind::processImproved}) {
            add("fig32-jitter", sync::schemeKindName(kind),
                "fig2.1+jitter (N=256, p=0.15, 800cyc)",
                sync::schemeKindName(kind),
                "Fig. 3.2 vs 4.1: a delayed Advance stalls all "
                "later processes under statement counters",
                kind, makeJitterLoop, registerMachine());
        }
        // Same serialization with the counters living in memory
        // modules: the hot statement counter turns into a hot
        // module, which the timeline hot-spot detector and the
        // blame heatmap must both attribute to the same place.
        add("fig32-jitter", "statement-mem",
            "fig2.1+jitter (N=256, p=0.15, 800cyc)",
            "statement",
            "Fig. 3.2 on the memory fabric: the serialized "
            "statement counter becomes a hot memory module",
            sync::SchemeKind::statementOriented, makeJitterLoop,
            memoryMachine());

        // -- E10: where the PCs live.
        {
            auto cached = memoryMachine();
            add("fabric-fig21", "mem-cached", "fig2.1 (N=256)",
                "process-improved",
                "section 6: memory-resident PCs, coherent-cache "
                "spinning",
                sync::SchemeKind::processImproved,
                [] { return workloads::makeFig21Loop(256); },
                cached);
            auto polling = memoryMachine();
            polling.machine.cachedSpinning = false;
            add("fabric-fig21", "mem-polling", "fig2.1 (N=256)",
                "process-improved",
                "section 6: memory-resident PCs, interval polling",
                sync::SchemeKind::processImproved,
                [] { return workloads::makeFig21Loop(256); },
                polling);
        }

        // -- E4: write coalescing on a slow sync bus.
        for (bool coalesce : {true, false}) {
            auto cfg = registerMachine();
            cfg.machine.syncBusCycles = 4;
            cfg.machine.coalesceWrites = coalesce;
            add("coalescing-fig21",
                coalesce ? "on" : "off", "fig2.1 (N=256)",
                "process-improved",
                "section 6: pending-write coalescing on a 4-cycle "
                "sync bus",
                sync::SchemeKind::processImproved,
                [] { return workloads::makeFig21Loop(256); }, cfg);
        }

        // -- E4: primitive sets under heavy PC folding (X=2).
        for (auto kind : {sync::SchemeKind::processBasic,
                          sync::SchemeKind::processImproved}) {
            add("folding-x2", sync::schemeKindName(kind),
                "fig2.1 (N=256, X=2)", sync::schemeKindName(kind),
                "Figs. 4.2/4.3: non-blocking marks pay off when X "
                "is small",
                kind, [] { return workloads::makeFig21Loop(256); },
                registerMachine(8, 2));
        }

        // -- E14: scheduling policies under jitter.
        {
            struct Policy
            {
                const char *name;
                core::SchedulePolicy policy;
            };
            for (auto p : {Policy{"self",
                                  core::SchedulePolicy::selfScheduling},
                           Policy{"static-cyclic",
                                  core::SchedulePolicy::staticCyclic},
                           Policy{"chunked-4",
                                  core::SchedulePolicy::
                                      chunkedSelfScheduling},
                           Policy{"guided",
                                  core::SchedulePolicy::
                                      guidedSelfScheduling}}) {
                auto cfg = registerMachine();
                cfg.schedule = p.policy;
                add("sched-jitter", p.name,
                    "fig2.1+jitter (N=256, p=0.15, 800cyc)",
                    "process-improved",
                    "sections 5-6: dispatch policy vs load balance",
                    sync::SchemeKind::processImproved,
                    makeJitterLoop, cfg);
            }
        }

        // -- E15: covered-arc elimination on a dense loop.
        for (bool eliminate : {true, false}) {
            auto cfg = registerMachine();
            cfg.eliminateCoveredDeps = eliminate;
            add("coverage-dense", eliminate ? "on" : "off",
                "synthetic dense (8 stmts, N=128)",
                "process-improved",
                "section 2: redundant-arc elimination payoff",
                sync::SchemeKind::processImproved, makeDenseLoop,
                cfg);
        }

        // -- E13: machine-class scoping at P=16.
        {
            auto small = registerMachine(16, 32);
            small.machine.memory.numModules = 8;
            add("scale-n1024", "bus-process", "fig2.1 (N=1024)",
                "process-improved",
                "sections 1-3: bus machine + broadcast registers",
                sync::SchemeKind::processImproved,
                [] { return workloads::makeFig21Loop(1024); },
                small);
            auto large = memoryMachine(16);
            large.machine.interconnect = sim::InterconnectKind::omega;
            large.machine.memory.numModules = 16;
            add("scale-n1024", "omega-reference", "fig2.1 (N=1024)",
                "reference",
                "sections 1-3: network machine + per-datum keys",
                sync::SchemeKind::referenceBased,
                [] { return workloads::makeFig21Loop(1024); },
                large);
        }

        // -- E5 (Doacross form): the relaxation loop.
        for (auto kind : {sync::SchemeKind::processImproved,
                          sync::SchemeKind::statementOriented}) {
            add("relax-32x32", sync::schemeKindName(kind),
                "relaxation (32x32)", sync::schemeKindName(kind),
                "Example 1 kernel run as a planned Doacross",
                kind,
                [] { return workloads::makeRelaxationLoop(32); },
                machineFor(kind));
        }

        // -- E16: the 1024-processor scale wall. One serialized
        // statement-counter workload (everyone camps on the same few
        // counters) at P in {256, 1024}, run flat against the two
        // composed fabrics. The flat variants concentrate all sync
        // traffic on one module / one broadcast bus; combining
        // absorbs the reads in the network and the hierarchy keeps
        // them on cluster buses. tickLimit doubles as the CI
        // deadlock watchdog: a fabric bug shows up as an incomplete
        // run, not a hung job.
        for (unsigned procs : {256u, 1024u}) {
            const unsigned n = 2 * procs;
            const std::string p = "p" + std::to_string(procs);
            auto loop = [n] {
                return workloads::makeFig21Loop(n);
            };
            auto watchdog = [](core::RunConfig cfg) {
                cfg.tickLimit = 100000000ull;
                return cfg;
            };
            const std::string workload =
                "fig2.1 (N=" + std::to_string(n) + ")";
            add("scale-1024", p + "-flat-mem", workload,
                "statement",
                "scale wall: flat memory fabric, hot statement "
                "counters on one module",
                sync::SchemeKind::statementOriented, loop,
                watchdog(memoryMachine(procs)));
            add("scale-1024", p + "-flat-reg", workload,
                "statement",
                "scale wall: flat broadcast registers, every "
                "update crosses one sync bus",
                sync::SchemeKind::statementOriented, loop,
                watchdog(registerMachine(procs)));
            add("scale-1024", p + "-combining", workload,
                "statement",
                "scale relief: omega network combines the camped "
                "reads switch by switch",
                sync::SchemeKind::statementOriented, loop,
                watchdog(combiningMachine(procs)));
            add("scale-1024", p + "-hier", workload,
                "statement",
                "scale relief: per-cluster images keep the spin "
                "local, one global stage",
                sync::SchemeKind::statementOriented, loop,
                watchdog(hierarchicalMachine(procs, procs / 32)));
        }
    }
};

const Registry &
registry()
{
    static Registry instance;
    return instance;
}

} // namespace

const std::vector<Scenario> &
allScenarios()
{
    return registry().scenarios;
}

const Scenario *
findScenario(const std::string &id)
{
    for (const auto &s : allScenarios()) {
        if (s.id == id)
            return &s;
    }
    return nullptr;
}

std::vector<const Scenario *>
matchScenarios(const std::string &pattern)
{
    if (const Scenario *exact = findScenario(pattern))
        return {exact};
    std::vector<const Scenario *> matched;
    for (const auto &s : allScenarios()) {
        if (pattern.empty() ||
            s.id.find(pattern) != std::string::npos)
            matched.push_back(&s);
    }
    return matched;
}

bool
globMatch(const std::string &pattern, const std::string &text)
{
    // Classic two-pointer wildcard match: on mismatch past a '*',
    // retry from one character further into the text.
    std::size_t p = 0, t = 0;
    std::size_t star = std::string::npos, mark = 0;
    while (t < text.size()) {
        if (p < pattern.size() &&
            (pattern[p] == '?' || pattern[p] == text[t])) {
            ++p;
            ++t;
        } else if (p < pattern.size() && pattern[p] == '*') {
            star = p++;
            mark = t;
        } else if (star != std::string::npos) {
            p = star + 1;
            t = ++mark;
        } else {
            return false;
        }
    }
    while (p < pattern.size() && pattern[p] == '*')
        ++p;
    return p == pattern.size();
}

std::vector<const Scenario *>
matchScenariosGlob(const std::string &pattern)
{
    if (pattern.find('*') == std::string::npos &&
        pattern.find('?') == std::string::npos)
        return matchScenarios(pattern);
    std::vector<const Scenario *> matched;
    for (const auto &s : allScenarios()) {
        if (globMatch(pattern, s.id))
            matched.push_back(&s);
    }
    return matched;
}

core::json::Value
ScenarioRecord::toJson() const
{
    const core::DoacrossResult &r = result;
    core::json::Value rec = core::json::object();
    rec.set("schema_version", kTrajectorySchemaVersion);
    rec.set("kind", "sim");
    rec.set("scenario", scenario->id);
    rec.set("workload", scenario->workload);
    rec.set("scheme", scenario->scheme);
    rec.set("procs", scenario->config.machine.numProcs);
    rec.set("fabric",
            sim::fabricKindName(scenario->config.machine.fabric));
    rec.set("schedule",
            core::schedulePolicyName(scenario->config.schedule));
    rec.set("cycles", static_cast<std::uint64_t>(r.run.cycles));
    rec.set("init_cycles", static_cast<std::uint64_t>(r.initCycles));
    rec.set("dep_bound_cycles",
            static_cast<std::uint64_t>(depBoundCycles));
    rec.set("bound_cycles", static_cast<std::uint64_t>(boundCycles));
    rec.set("slack_factor",
            boundCycles ? static_cast<double>(r.run.cycles) /
                              static_cast<double>(boundCycles)
                        : 0.0);

    core::json::Value split = core::json::object();
    split.set("compute_cycles",
              static_cast<std::uint64_t>(r.run.computeCycles));
    split.set("spin_cycles",
              static_cast<std::uint64_t>(r.run.spinCycles));
    split.set("sync_overhead_cycles",
              static_cast<std::uint64_t>(r.run.syncOverheadCycles));
    split.set("stall_cycles",
              static_cast<std::uint64_t>(r.run.stallCycles));
    rec.set("cycle_split", std::move(split));

    rec.set("host_ns", hostNanos);
    rec.set("events_executed", r.run.eventsExecuted);
    rec.set("events_per_sec", eventsPerSec());
    rec.set("event_core", r.run.eventCore);
    rec.set("heap_fallback_events", r.run.heapFallbackEvents);

    rec.set("passes", transformsEnabled);
    rec.set("waits_before", r.passStats.waitsBefore);
    rec.set("waits_after", r.passStats.waitsAfter);
    rec.set("waits_eliminated", r.passStats.waitsEliminated);
    rec.set("ops_before", r.passStats.opsBefore);
    rec.set("ops_after", r.passStats.opsAfter);
    rec.set("ops_merged", r.passStats.opsMerged);

    rec.set("sync_vars", r.plan.numSyncVars);
    rec.set("data_bus_utilization", r.run.dataBusUtilization);
    rec.set("sync_bus_utilization", r.run.syncBusUtilization);
    rec.set("hot_spot_ratio", r.run.hotSpotRatio);
    rec.set("module_queue_delay",
            static_cast<std::uint64_t>(r.run.moduleQueueDelay));

    // Schema v5: profiled runs carry the achieved critical path and
    // wait-latency summaries. Absent entirely on unprofiled runs so
    // those records stay byte-comparable with v4 output.
    if (profile) {
        rec.set("critpath_achieved",
                static_cast<std::uint64_t>(profile->achievedCycles));
        rec.set("critpath_gap_pct", profile->gapPct());

        core::json::Value prof = core::json::object();
        core::json::Value phases = core::json::object();
        phases.set("compute",
                   static_cast<std::uint64_t>(profile->computeCycles));
        phases.set("spin",
                   static_cast<std::uint64_t>(profile->spinCycles));
        phases.set("sync_overhead",
                   static_cast<std::uint64_t>(profile->syncCycles));
        phases.set("stall",
                   static_cast<std::uint64_t>(profile->stallCycles));
        phases.set("dispatch",
                   static_cast<std::uint64_t>(
                       profile->dispatchCycles));
        phases.set("propagation",
                   static_cast<std::uint64_t>(
                       profile->propagationCycles));
        phases.set("other",
                   static_cast<std::uint64_t>(profile->otherCycles));
        prof.set("phases", std::move(phases));
        prof.set("truncated", profile->truncated);
        prof.set("segments",
                 static_cast<std::uint64_t>(
                     profile->segments.size()));
        prof.set("wait_latency", profile->waitAll.toJson());
        core::json::Value by_kind = core::json::object();
        for (const auto &kv : profile->waitByKind)
            by_kind.set(kv.first, kv.second.toJson());
        prof.set("wait_by_kind", std::move(by_kind));
        rec.set("profile", std::move(prof));
    }

    // Schema v6: sampled runs carry the timeline summary (peaks +
    // hot spots). Absent entirely on unsampled runs so those stay
    // byte-comparable with v5 output.
    if (timeline)
        rec.set("timeline", timeline->summaryJson());

    // Schema v9: composed-fabric headline numbers at the top level
    // (the full per-stage / per-cluster arrays live in "result").
    // Absent on the flat fabrics so those records stay
    // byte-comparable with v8 output.
    if (!r.run.netStageConflicts.empty())
        rec.set("combine_rate", r.run.netCombineRate);
    if (r.run.numClusters > 0) {
        rec.set("num_clusters", r.run.numClusters);
        rec.set("procs_per_cluster", r.run.procsPerCluster);
    }

    rec.set("result", r.run.toJson());
    return rec;
}

ScenarioRecord
runScenario(const Scenario &scenario, sim::Tracer *tracer,
            const ir::PassConfig *passes, bool profile,
            sim::Tick timeline_interval)
{
    ScenarioRecord record;
    record.scenario = &scenario;

    auto host_start = std::chrono::steady_clock::now();
    dep::Loop loop = scenario.loop();
    dep::DepGraph graph(loop);
    core::CriticalPath cp = core::criticalPath(
        graph, core::CriticalPathCosts::fromMachine(
                   scenario.config.machine));
    record.depBoundCycles = cp.cycles;
    record.boundCycles =
        cp.achievableBound(scenario.config.machine.numProcs);

    core::RunConfig cfg = scenario.config;
    cfg.tracer = tracer;
    if (passes)
        cfg.passes = *passes;
    if (timeline_interval == kTimelineAutoInterval) {
        // ~128 samples across the run, but never finer than 16
        // cycles so tiny scenarios don't sample every event.
        timeline_interval = std::max<sim::Tick>(
            16, record.boundCycles / 128);
    }
    cfg.machine.timelineInterval = timeline_interval;
    record.transformsEnabled = cfg.passes.enabled &&
                               (cfg.passes.eliminateRedundantWaits ||
                                cfg.passes.peephole);
    record.result = core::runDoacross(loop, scenario.kind, cfg);
    record.hostNanos = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - host_start)
            .count());
    require(record.result, scenario.id.c_str());

    if (profile) {
        auto *rec_tracer = dynamic_cast<core::TraceRecorder *>(tracer);
        if (!rec_tracer) {
            std::fprintf(stderr,
                         "FATAL: %s: profiling requires a "
                         "TraceRecorder tracer\n",
                         scenario.id.c_str());
            std::abort();
        }
        record.profile = std::make_shared<core::CriticalPathProfile>(
            core::buildCriticalPathProfile(*rec_tracer,
                                           record.result.run.cycles,
                                           record.boundCycles));
        record.result.run.waitLatency = record.profile->waitAll;
    }

    if (timeline_interval > 0) {
        if (auto *rec_tracer =
                dynamic_cast<core::TraceRecorder *>(tracer)) {
            record.timeline = std::make_shared<core::Timeline>(
                core::buildTimeline(*rec_tracer));
        }
    }
    return record;
}

std::string
NativeScenarioRecord::recordId() const
{
    return scenario->id + "#native-t" + std::to_string(numThreads);
}

core::json::Value
NativeScenarioRecord::toJson() const
{
    const native::NativeRunResult &r = result.run;
    core::json::Value rec = core::json::object();
    rec.set("schema_version", kTrajectorySchemaVersion);
    rec.set("kind", "native");
    rec.set("scenario", recordId());
    rec.set("sim_scenario", scenario->id);
    rec.set("workload", scenario->workload);
    rec.set("scheme", scenario->scheme);
    rec.set("schedule",
            core::schedulePolicyName(scenario->config.schedule));
    rec.set("threads", numThreads);
    rec.set("wall_ns", r.wallNanos);
    rec.set("programs_run", r.programsRun);
    rec.set("programs_per_sec", r.programsPerSec());
    rec.set("sync_ops", r.syncOps);
    rec.set("waits", r.waits);
    rec.set("spins", r.spins);
    rec.set("parks", r.parks);
    rec.set("accesses_logged", r.accessesLogged);
    rec.set("instances_checked", result.instancesChecked);
    rec.set("sync_vars", result.plan.numSyncVars);

    // Schema v5: host-clock latency fields, profiled runs only.
    if (profiled) {
        rec.set("fa_retries", r.faRetries);
        rec.set("wait_ns", r.waitNs.toJson());
        rec.set("park_wake_ns", r.parkWakeNs.toJson());
    }
    return rec;
}

NativeScenarioRecord
runScenarioNative(const Scenario &scenario, unsigned threads,
                  bool profile)
{
    NativeScenarioRecord record;
    record.scenario = &scenario;
    record.numThreads = threads;
    record.profiled = profile;

    dep::Loop loop = scenario.loop();
    native::NativeConfig ncfg;
    ncfg.numThreads = threads;
    ncfg.schedule = scenario.config.schedule;
    ncfg.chunkSize = scenario.config.chunkSize;
    ncfg.profile = profile;
    record.result = native::runDoacrossNative(
        loop, scenario.kind, scenario.config, ncfg);

    if (!record.result.correct()) {
        std::fprintf(stderr, "FATAL: native %s failed:\n",
                     record.recordId().c_str());
        for (const auto &e : record.result.run.errors)
            std::fprintf(stderr, "  error: %s\n", e.c_str());
        for (const auto &v : record.result.violations)
            std::fprintf(stderr, "  violation: %s\n", v.c_str());
        for (const auto &m : record.result.valueMismatches)
            std::fprintf(stderr, "  value: %s\n", m.c_str());
        if (!record.result.run.completed)
            std::fprintf(stderr, "  run did not complete\n");
        std::abort();
    }
    return record;
}

} // namespace bench
} // namespace psync
