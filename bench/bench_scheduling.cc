/**
 * @file
 * E14 — ablation: scheduling policy under the process-oriented
 * scheme. The paper assumes dynamic self-scheduling [23,24] in all
 * its examples because PC folding only needs dispatch order ==
 * iteration order, which every policy here preserves. The ablation
 * quantifies the dispatch-RMW overhead vs the load-balance gain
 * when iteration lengths vary (branch-jittered Fig. 2.1 loop).
 */

#include <cstdio>

#include "bench/common.hh"
#include "workloads/fig21.hh"

using namespace psync;

int
main()
{
    bench::banner(
        "E14: scheduling-policy ablation",
        "sections 5-6 (self-scheduling assumption)",
        "dynamic self-scheduling balances jittered iterations at "
        "the cost of one dispatch fetch&add per claim; the "
        "process-oriented scheme is correct under all "
        "order-preserving policies");

    std::printf("%-10s %-12s %-8s %10s %12s %10s %10s\n", "jitter",
                "policy", "chunk", "cycles", "dispatchRMW", "util",
                "spin-frac");

    for (sim::Tick jitter : {0ull, 400ull}) {
        dep::Loop loop = workloads::makeFig21JitterLoop(
            256, 8, jitter, jitter ? 0.25 : 0.0, 77);
        struct Policy
        {
            core::SchedulePolicy policy;
            std::uint64_t chunk;
        };
        for (const Policy &p :
             {Policy{core::SchedulePolicy::selfScheduling, 1},
              Policy{core::SchedulePolicy::chunkedSelfScheduling, 4},
              Policy{core::SchedulePolicy::chunkedSelfScheduling, 16},
              Policy{core::SchedulePolicy::guidedSelfScheduling, 0},
              Policy{core::SchedulePolicy::staticCyclic, 0}}) {
            auto cfg = bench::registerMachine(8, 16);
            cfg.schedule = p.policy;
            cfg.chunkSize = p.chunk;
            auto r = core::runDoacross(
                loop, sync::SchemeKind::processImproved, cfg);
            bench::require(r, core::schedulePolicyName(p.policy));
            std::printf("%-10llu %-12s %-8llu %10llu %12llu %10.3f "
                        "%10.3f\n",
                        static_cast<unsigned long long>(jitter),
                        core::schedulePolicyName(p.policy),
                        static_cast<unsigned long long>(p.chunk),
                        static_cast<unsigned long long>(r.run.cycles),
                        static_cast<unsigned long long>(
                            r.run.memAccesses),
                        r.run.utilization(), r.run.spinFraction());
        }
        std::printf("\n");
    }

    std::printf("(dispatchRMW column counts all memory accesses; "
                "this workload has no data accesses beyond one per "
                "statement, so differences are dispatch traffic)\n");
    return 0;
}
