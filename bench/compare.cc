#include "bench/compare.hh"

#include <cmath>
#include <iomanip>
#include <map>
#include <sstream>

#include "bench/registry.hh"

namespace psync {
namespace bench {

core::json::Value
makeTrajectoryDoc()
{
    core::json::Value doc = core::json::object();
    doc.set("schema_version", kTrajectorySchemaVersion);
    doc.set("records", core::json::array());
    return doc;
}

void
mergeRecord(core::json::Value &doc, core::json::Value record)
{
    const core::json::Value *id = record.find("scenario");
    for (auto &member : doc.asObject()) {
        if (member.first != "records")
            continue;
        if (id && id->isString()) {
            for (auto &existing : member.second.asArray()) {
                const core::json::Value *existing_id =
                    existing.find("scenario");
                if (existing_id && existing_id->isString() &&
                    existing_id->asString() == id->asString()) {
                    existing = std::move(record);
                    return;
                }
            }
        }
        member.second.push(std::move(record));
        return;
    }
    doc.set("records", core::json::Value(
                           core::json::Array{std::move(record)}));
}

Trajectory
loadTrajectory(const core::json::Value &doc)
{
    Trajectory t;
    const core::json::Value *version = doc.find("schema_version");
    if (!version || !version->isNumber()) {
        t.error = "missing schema_version";
        return t;
    }
    int v = static_cast<int>(version->asNumber());
    if (v < kMinTrajectorySchemaVersion ||
        v > kTrajectorySchemaVersion) {
        t.error = "unsupported schema_version " + std::to_string(v);
        return t;
    }
    const core::json::Value *records = doc.find("records");
    if (!records || !records->isArray()) {
        t.error = "missing records array";
        return t;
    }
    for (const auto &record : records->asArray()) {
        // v3+: records carry a "kind". Only sim records have
        // simulated cycles to compare; skip native (wall-time)
        // records. Pre-v3 records have no kind and are all sim.
        const core::json::Value *kind = record.find("kind");
        if (kind && kind->isString() && kind->asString() != "sim")
            continue;
        const core::json::Value *id = record.find("scenario");
        const core::json::Value *cycles = record.find("cycles");
        if (!id || !id->isString() || !cycles ||
            !cycles->isNumber()) {
            t.error = "record without scenario id or cycles";
            return t;
        }
        t.cycles.emplace_back(
            id->asString(),
            static_cast<std::uint64_t>(cycles->asNumber()));
    }
    t.ok = true;
    return t;
}

CompareResult
compareTrajectories(const core::json::Value &baseline,
                    const core::json::Value &current,
                    const CompareOptions &opts)
{
    CompareResult result;
    auto fail = [&result](const std::string &what) {
        ScenarioDelta delta;
        delta.id = what;
        delta.kind = ScenarioDelta::Kind::regression;
        result.deltas.push_back(std::move(delta));
        ++result.regressions;
        return result;
    };

    Trajectory base = loadTrajectory(baseline);
    if (!base.ok)
        return fail("malformed baseline: " + base.error);
    Trajectory cur = loadTrajectory(current);
    if (!cur.ok)
        return fail("malformed current: " + cur.error);

    std::map<std::string, std::uint64_t> base_cycles(
        base.cycles.begin(), base.cycles.end());

    for (const auto &entry : cur.cycles) {
        ScenarioDelta delta;
        delta.id = entry.first;
        delta.currentCycles = entry.second;
        auto it = base_cycles.find(entry.first);
        if (it == base_cycles.end()) {
            delta.kind = ScenarioDelta::Kind::added;
            ++result.added;
            // An exact comparison demands the same scenario set on
            // both sides.
            if (opts.requireIdentical)
                ++result.regressions;
        } else {
            delta.baselineCycles = it->second;
            base_cycles.erase(it);
            if (delta.baselineCycles != 0) {
                delta.deltaPct =
                    (static_cast<double>(delta.currentCycles) -
                     static_cast<double>(delta.baselineCycles)) *
                    100.0 /
                    static_cast<double>(delta.baselineCycles);
            }
            bool regressed, improved;
            if (opts.requireIdentical) {
                regressed =
                    delta.currentCycles != delta.baselineCycles;
                improved = false;
            } else {
                regressed =
                    delta.deltaPct > opts.regressThresholdPct;
                improved =
                    delta.deltaPct < -opts.regressThresholdPct;
            }
            if (regressed) {
                delta.kind = ScenarioDelta::Kind::regression;
                ++result.regressions;
            } else if (improved) {
                delta.kind = ScenarioDelta::Kind::improvement;
                ++result.improvements;
            } else {
                delta.kind = ScenarioDelta::Kind::unchanged;
                ++result.unchanged;
            }
        }
        result.deltas.push_back(std::move(delta));
    }

    // Whatever is left in the baseline map vanished from the
    // current run — report it, but losing a scenario is a
    // registry-editing decision, not a perf regression.
    for (const auto &entry : base.cycles) {
        auto it = base_cycles.find(entry.first);
        if (it == base_cycles.end())
            continue;
        ScenarioDelta delta;
        delta.id = entry.first;
        delta.baselineCycles = entry.second;
        delta.kind = ScenarioDelta::Kind::removed;
        ++result.removed;
        if (opts.requireIdentical)
            ++result.regressions;
        result.deltas.push_back(std::move(delta));
    }
    return result;
}

namespace {

const char *
deltaKindName(ScenarioDelta::Kind kind)
{
    switch (kind) {
      case ScenarioDelta::Kind::regression:  return "REGRESSION";
      case ScenarioDelta::Kind::improvement: return "improved";
      case ScenarioDelta::Kind::unchanged:   return "unchanged";
      case ScenarioDelta::Kind::added:       return "added";
      case ScenarioDelta::Kind::removed:     return "removed";
    }
    return "?";
}

} // namespace

void
printCompare(std::ostream &os, const CompareResult &result,
             const CompareOptions &opts)
{
    os << std::left << std::setw(40) << "scenario" << std::right
       << std::setw(12) << "baseline" << std::setw(12) << "current"
       << std::setw(9) << "delta" << "  " << "verdict" << "\n";
    for (const auto &delta : result.deltas) {
        os << std::left << std::setw(40) << delta.id << std::right;
        if (delta.kind == ScenarioDelta::Kind::added) {
            os << std::setw(12) << "-" << std::setw(12)
               << delta.currentCycles << std::setw(9) << "-";
        } else if (delta.kind == ScenarioDelta::Kind::removed) {
            os << std::setw(12) << delta.baselineCycles
               << std::setw(12) << "-" << std::setw(9) << "-";
        } else {
            std::ostringstream pct;
            pct << std::showpos << std::fixed
                << std::setprecision(1) << delta.deltaPct << "%";
            os << std::setw(12) << delta.baselineCycles
               << std::setw(12) << delta.currentCycles
               << std::setw(9) << pct.str();
        }
        os << "  " << deltaKindName(delta.kind) << "\n";
    }
    os << (result.ok() ? "OK" : "FAIL") << ": ";
    if (opts.requireIdentical) {
        os << result.regressions
           << " difference(s), exact match required, ";
    } else {
        os << result.regressions << " regression(s) beyond "
           << std::fixed << std::setprecision(1)
           << opts.regressThresholdPct << "%, ";
    }
    os << result.improvements << " improved, " << result.unchanged
       << " unchanged, " << result.added << " added, "
       << result.removed << " removed\n";
}

} // namespace bench
} // namespace psync
