/**
 * @file
 * E15 — ablation: redundant-arc (coverage) elimination. Section 2
 * observes that enforcing S1->S3 and S3->S4 covers S1->S4; this
 * bench measures what eliminating covered arcs is worth per scheme
 * (waits saved, broadcasts saved, cycles saved) on workloads with
 * and without coverable arcs.
 */

#include <cstdio>

#include "bench/common.hh"
#include "workloads/fig21.hh"
#include "workloads/synthetic.hh"

using namespace psync;

namespace {

void
sweep(const char *name, const dep::Loop &loop)
{
    std::printf("workload: %s\n", name);
    std::printf("%-18s %-10s %10s %12s %12s\n", "scheme",
                "coverage", "cycles", "sync-ops", "broadcasts");
    for (auto kind : {sync::SchemeKind::processImproved,
                      sync::SchemeKind::statementOriented}) {
        for (bool eliminate : {true, false}) {
            auto cfg = bench::registerMachine(8, 16);
            cfg.eliminateCoveredDeps = eliminate;
            auto r = core::runDoacross(loop, kind, cfg);
            bench::require(r, sync::schemeKindName(kind));
            std::printf("%-18s %-10s %10llu %12llu %12llu\n",
                        sync::schemeKindName(kind),
                        eliminate ? "on" : "off",
                        static_cast<unsigned long long>(r.run.cycles),
                        static_cast<unsigned long long>(
                            r.run.syncOps),
                        static_cast<unsigned long long>(
                            r.run.syncBusBroadcasts));
        }
    }
    std::printf("\n");
}

} // namespace

int
main()
{
    bench::banner(
        "E15: coverage elimination ablation",
        "section 2 (Fig. 2.1: S1->S4 covered by S1->S3 + S3->S4)",
        "eliminating transitively-enforced arcs removes their waits "
        "(and, for a statement scheme, whole counters) at no "
        "correctness cost — the trace checker still verifies the "
        "covered arcs' ordering");

    sweep("fig2.1 (N=256, 2 coverable arcs)",
          workloads::makeFig21Loop(256));

    workloads::SyntheticSpec spec;
    spec.seed = 42;
    spec.n = 128;
    spec.numStatements = 8;
    spec.numArrays = 1;
    spec.maxOffset = 2;
    spec.writeProb = 0.6;
    sweep("dense synthetic (8 stmts, 1 array)",
          workloads::makeSyntheticLoop(spec));
    return 0;
}
