/**
 * @file
 * E13 — sections 1-3 scoping claim: data-oriented schemes (HEP
 * full/empty bits, Cedar key/data) "are suitable for large scale
 * multiprocessor systems", while the process-oriented scheme is
 * "more suitable for small scale multiprocessor systems such as
 * the Cray X-MP, the Alliant FX/8, the Encore Multimax".
 *
 * We sweep the processor count on both machine classes:
 *  - a bus-based machine with synchronization registers and a
 *    broadcast sync bus (small-scale class), and
 *  - an Omega-network machine with memory-resident keys and
 *    coherent-cache spinning (large-scale class),
 * running the Fig. 2.1 loop under the process-oriented scheme on
 * the former and the reference-based scheme on the latter.
 */

#include <cstdio>

#include "bench/common.hh"
#include "workloads/fig21.hh"

using namespace psync;

int
main()
{
    bench::banner(
        "E13: small-scale bus machine vs large-scale network "
        "machine",
        "sections 1-3 (scheme scoping)",
        "broadcast-register PCs shine on bus machines; per-datum "
        "keys keep scaling on network machines where a single "
        "broadcast bus would saturate");

    const long n = 2048;
    dep::Loop loop = workloads::makeFig21Loop(n);

    bench::Table table{{"P", 4, 'l'},
                       {"machine / scheme", 34, 'l'},
                       {"cycles", 10},
                       {"util", 10},
                       {"speedup", 10}};
    table.header();

    for (unsigned p : {4u, 8u, 16u, 32u, 64u}) {
        // Small-scale: bus + sync registers, process-oriented.
        auto small_cfg = bench::registerMachine(p, 2 * p);
        small_cfg.checkTrace = false;
        small_cfg.machine.memory.numModules = 8;
        sim::Tick seq_small =
            core::sequentialCycles(loop, small_cfg.machine);
        auto small = core::runDoacross(
            loop, sync::SchemeKind::processImproved, small_cfg);

        // Large-scale: omega network, interleaved modules scaled
        // with P, memory-resident keys, reference-based scheme.
        auto large_cfg = bench::memoryMachine(p);
        large_cfg.checkTrace = false;
        large_cfg.machine.interconnect = sim::InterconnectKind::omega;
        large_cfg.machine.memory.numModules = p;
        sim::Tick seq_large =
            core::sequentialCycles(loop, large_cfg.machine);
        auto large = core::runDoacross(
            loop, sync::SchemeKind::referenceBased, large_cfg);

        // Cross case: data-oriented keys forced onto the bus
        // machine — the configuration the paper argues against.
        auto cross_cfg = bench::memoryMachine(p);
        cross_cfg.checkTrace = false;
        cross_cfg.machine.memory.numModules = 8;
        auto cross = core::runDoacross(
            loop, sync::SchemeKind::referenceBased, cross_cfg);

        auto row = [&](const char *label,
                       const core::DoacrossResult &r,
                       sim::Tick seq) {
            table.row({bench::Table::num(p), label,
                       bench::Table::num(r.run.cycles),
                       bench::Table::fixed(r.run.utilization()),
                       bench::Table::fixed(r.run.speedupOver(seq),
                                           2)});
        };
        row("bus+registers / process", small, seq_small);
        row("omega+memory keys / reference", large, seq_large);
        row("bus+memory keys / reference", cross, seq_small);
        std::printf("\n");
    }
    return 0;
}
