/**
 * @file
 * E3 — Fig. 3.2 vs Fig. 4.1 / section 4: "horizontal" sharing of a
 * statement counter serializes consecutive iterations — process i
 * must wait for i-1 to advance each SC, so one delayed process
 * stalls every later one. "Vertical" sharing of a process counter
 * never does. The workload is the Fig. 2.1 loop with an
 * occasional long branch (Sdelay) early in the iteration body.
 */

#include <cstdio>

#include "bench/common.hh"
#include "workloads/fig21.hh"

using namespace psync;

int
main()
{
    bench::banner(
        "E3: statement counters serialize, process counters do not",
        "Fig. 3.2 vs Fig. 4.1, section 4",
        "a process delaying its Advance stalls all later processes "
        "under the statement-oriented scheme; under the "
        "process-oriented scheme only real dependence sinks wait");

    const long n = 256;
    bench::Table table{{"delay-prob", 12, 'l'}, {"delay", 10, 'l'},
                       {"scheme", 18, 'l'},     {"cycles", 10},
                       {"spin-frac", 10},       {"util", 10},
                       {"speedup", 10}};
    table.header();

    for (double prob : {0.0, 0.05, 0.15, 0.30}) {
        for (sim::Tick delay : {200ull, 800ull}) {
            dep::Loop loop = workloads::makeFig21JitterLoop(
                n, 8, delay, prob, 1234);
            auto seq_cfg = bench::registerMachine();
            sim::Tick seq =
                core::sequentialCycles(loop, seq_cfg.machine);

            for (auto kind : {sync::SchemeKind::statementOriented,
                              sync::SchemeKind::processBasic,
                              sync::SchemeKind::processImproved}) {
                auto cfg = bench::registerMachine(8, 16);
                auto r = core::runDoacross(loop, kind, cfg);
                bench::require(r, sync::schemeKindName(kind));
                table.row(
                    {bench::Table::fixed(prob, 2),
                     bench::Table::num(delay),
                     sync::schemeKindName(kind),
                     bench::Table::num(r.run.cycles),
                     bench::Table::fixed(r.run.spinFraction()),
                     bench::Table::fixed(r.run.utilization()),
                     bench::Table::fixed(r.run.speedupOver(seq),
                                         2)});
            }
            std::printf("\n");
        }
    }
    return 0;
}
