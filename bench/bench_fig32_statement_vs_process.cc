/**
 * @file
 * E3 — Fig. 3.2 vs Fig. 4.1 / section 4: "horizontal" sharing of a
 * statement counter serializes consecutive iterations — process i
 * must wait for i-1 to advance each SC, so one delayed process
 * stalls every later one. "Vertical" sharing of a process counter
 * never does. The workload is the Fig. 2.1 loop with an
 * occasional long branch (Sdelay) early in the iteration body.
 */

#include <cstdio>

#include "bench/common.hh"
#include "workloads/fig21.hh"

using namespace psync;

int
main()
{
    bench::banner(
        "E3: statement counters serialize, process counters do not",
        "Fig. 3.2 vs Fig. 4.1, section 4",
        "a process delaying its Advance stalls all later processes "
        "under the statement-oriented scheme; under the "
        "process-oriented scheme only real dependence sinks wait");

    const long n = 256;
    std::printf("%-12s %-10s %-18s %10s %10s %10s %10s\n",
                "delay-prob", "delay", "scheme", "cycles",
                "spin-frac", "util", "speedup");

    for (double prob : {0.0, 0.05, 0.15, 0.30}) {
        for (sim::Tick delay : {200ull, 800ull}) {
            dep::Loop loop = workloads::makeFig21JitterLoop(
                n, 8, delay, prob, 1234);
            auto seq_cfg = bench::registerMachine();
            sim::Tick seq =
                core::sequentialCycles(loop, seq_cfg.machine);

            for (auto kind : {sync::SchemeKind::statementOriented,
                              sync::SchemeKind::processBasic,
                              sync::SchemeKind::processImproved}) {
                auto cfg = bench::registerMachine(8, 16);
                auto r = core::runDoacross(loop, kind, cfg);
                bench::require(r, sync::schemeKindName(kind));
                std::printf(
                    "%-12.2f %-10llu %-18s %10llu %10.3f %10.3f "
                    "%10.2f\n",
                    prob, static_cast<unsigned long long>(delay),
                    sync::schemeKindName(kind),
                    static_cast<unsigned long long>(r.run.cycles),
                    r.run.spinFraction(), r.run.utilization(),
                    r.run.speedupOver(seq));
            }
            std::printf("\n");
        }
    }
    return 0;
}
