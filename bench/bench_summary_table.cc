/**
 * @file
 * E11 — the sections 3-6 comparison in one table: every scheme on
 * every workload, with the axes the paper argues about — sync
 * variables, storage, initialization, execution cycles, busy-wait
 * share and speedup.
 */

#include <algorithm>
#include <cstdio>

#include "bench/common.hh"
#include "core/critical_path.hh"
#include "workloads/branches.hh"
#include "workloads/fig21.hh"
#include "workloads/nested.hh"

using namespace psync;

namespace {

void
sweep(const char *name, const dep::Loop &loop,
      bench::JsonReport &report)
{
    auto seq_cfg = bench::registerMachine();
    sim::Tick seq = core::sequentialCycles(loop, seq_cfg.machine);

    dep::DepGraph graph(loop);
    auto cp = core::criticalPath(
        graph,
        core::CriticalPathCosts::fromMachine(seq_cfg.machine));
    // The achievable floor on P processors: dependence chains or
    // work/P, whichever binds.
    const unsigned p = seq_cfg.machine.numProcs;
    core::CriticalPath bound = cp;
    bound.cycles = std::max<sim::Tick>(
        cp.cycles, (cp.totalWork + p - 1) / p);

    std::printf("workload: %s (%llu iterations, sequential %llu "
                "cycles; dependence-limited bound %llu, "
                "work/P bound %llu, max useful parallelism %.1f)\n",
                name,
                static_cast<unsigned long long>(loop.iterations()),
                static_cast<unsigned long long>(seq),
                static_cast<unsigned long long>(cp.cycles),
                static_cast<unsigned long long>(bound.cycles),
                cp.maxUsefulParallelism());
    bench::Table table{{"scheme", 18, 'l'},     {"sync-vars", 10},
                       {"storage-B", 10},       {"init-cyc", 10},
                       {"cycles", 10},          {"spin-frac", 10},
                       {"speedup", 10},         {"vs-bound", 10}};
    table.header();

    auto row = [&](const char *label,
                   const core::DoacrossResult &r) {
        report.addRun(name, label, r);
        table.row({label, bench::Table::num(r.plan.numSyncVars),
                   bench::Table::num(r.plan.syncStorageBytes +
                                     r.plan.renamedStorageBytes),
                   bench::Table::num(r.initCycles),
                   bench::Table::num(r.run.cycles),
                   bench::Table::fixed(r.run.spinFraction()),
                   bench::Table::fixed(r.run.speedupOver(seq), 2),
                   bench::Table::times(
                       bound.cycles
                           ? static_cast<double>(r.run.cycles) /
                                 bound.cycles
                           : 0.0)});
    };

    for (auto kind : sync::allSyncSchemes()) {
        if (kind == sync::SchemeKind::instanceBased &&
            !loop.branchProb.empty()) {
            table.row({"instance", "(no branch support)"});
            continue;
        }
        auto cfg = bench::machineFor(kind);
        auto r = core::runDoacross(loop, kind, cfg);
        bench::require(r, sync::schemeKindName(kind));
        row(sync::schemeKindName(kind), r);
    }

    // Reference scheme with Cedar memory-side combining ([26]).
    {
        auto cfg = bench::memoryMachine();
        cfg.scheme.cedarCombining = true;
        auto r = core::runDoacross(
            loop, sync::SchemeKind::referenceBased, cfg);
        bench::require(r, "reference+cedar");
        row("reference+cedar", r);
    }
    std::printf("\n");
}

} // namespace

int
main(int argc, char **argv)
{
    bench::JsonReport report(bench::extractJsonPath(argc, argv),
                             "bench_summary_table");
    bench::banner(
        "E11: the scheme taxonomy, quantified",
        "sections 3-6 (summary of advantages, end of section 6)",
        "the process-oriented scheme uses few variables, cheap "
        "initialization, and competitive-or-better execution time "
        "across the paper's workloads");

    sweep("fig2.1 (N=256)", workloads::makeFig21Loop(256), report);
    sweep("nested (32x32)", workloads::makeNestedLoop(32, 32),
          report);
    sweep("branches (N=256, p=0.5)",
          workloads::makeBranchLoop(256, 0.5), report);
    report.write();
    return 0;
}
