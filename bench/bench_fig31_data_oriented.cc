/**
 * @file
 * E2 — Fig. 3.1 / section 3.1: data-oriented schemes tie their
 * synchronization state to the data. Sweeping the trip count N of
 * the Fig. 2.1 loop shows keys, storage and initialization cost
 * growing with the data for the reference- and instance-based
 * schemes, while statement counters and process counters stay
 * constant.
 */

#include <cstdio>

#include "bench/common.hh"
#include "workloads/fig21.hh"

using namespace psync;

int
main()
{
    bench::banner(
        "E2: synchronization state of data-oriented schemes",
        "Fig. 3.1(a)(b), section 3.1",
        "data-oriented schemes need keys (and init writes) "
        "proportional to the data; the process-oriented scheme "
        "needs X counters, period");

    std::printf("%-8s %-18s %10s %10s %12s %12s\n", "N", "scheme",
                "sync-vars", "storage-B", "init-writes",
                "init-cycles");

    for (long n : {64L, 256L, 1024L, 4096L}) {
        dep::Loop loop = workloads::makeFig21Loop(n);
        for (auto kind : sync::allSyncSchemes()) {
            auto cfg = bench::machineFor(kind);
            cfg.checkTrace = n <= 256; // keep big sweeps fast
            auto r = core::runDoacross(loop, kind, cfg);
            if (cfg.checkTrace)
                bench::require(r, sync::schemeKindName(kind));
            std::printf("%-8ld %-18s %10llu %10llu %12llu %12llu\n",
                        n, sync::schemeKindName(kind),
                        static_cast<unsigned long long>(
                            r.plan.numSyncVars),
                        static_cast<unsigned long long>(
                            r.plan.syncStorageBytes +
                            r.plan.renamedStorageBytes),
                        static_cast<unsigned long long>(
                            r.plan.initWrites),
                        static_cast<unsigned long long>(
                            r.initCycles));
        }
        std::printf("\n");
    }
    return 0;
}
