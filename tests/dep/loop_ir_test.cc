/** @file Loop IR: index mapping, branch resolution, data layout. */

#include <gtest/gtest.h>

#include "dep/loop_ir.hh"
#include "workloads/fig21.hh"
#include "workloads/nested.hh"

using namespace psync;

TEST(LoopIrTest, Depth1IndexMapping)
{
    dep::Loop loop = workloads::makeFig21Loop(10);
    EXPECT_EQ(loop.iterations(), 10u);
    long i, j;
    loop.indicesOf(1, i, j);
    EXPECT_EQ(i, 1);
    loop.indicesOf(10, i, j);
    EXPECT_EQ(i, 10);
    EXPECT_EQ(loop.lpidOf(7, 0), 7u);
}

TEST(LoopIrTest, Depth2LinearizationRoundTrip)
{
    dep::Loop loop = workloads::makeNestedLoop(4, 5);
    EXPECT_EQ(loop.iterations(), 20u);
    EXPECT_EQ(loop.innerTrip(), 5);
    std::uint64_t lpid = 1;
    for (long i = 1; i <= 4; ++i) {
        for (long j = 1; j <= 5; ++j, ++lpid) {
            EXPECT_EQ(loop.lpidOf(i, j), lpid);
            long ri, rj;
            loop.indicesOf(lpid, ri, rj);
            EXPECT_EQ(ri, i);
            EXPECT_EQ(rj, j);
        }
    }
}

TEST(LoopIrTest, NonUnitLowerBounds)
{
    dep::Loop loop;
    loop.depth = 2;
    loop.outer = {2, 6};
    loop.inner = {3, 7};
    EXPECT_EQ(loop.iterations(), 25u);
    EXPECT_EQ(loop.lpidOf(2, 3), 1u);
    EXPECT_EQ(loop.lpidOf(2, 7), 5u);
    EXPECT_EQ(loop.lpidOf(3, 3), 6u);
    long i, j;
    loop.indicesOf(25, i, j);
    EXPECT_EQ(i, 6);
    EXPECT_EQ(j, 7);
}

TEST(LoopIrTest, BranchOutcomesDeterministicAndBiased)
{
    dep::Loop loop;
    loop.depth = 1;
    loop.outer = {1, 2000};
    loop.seed = 99;
    loop.branchProb = {0.25};

    int taken = 0;
    for (std::uint64_t it = 1; it <= 2000; ++it) {
        bool t1 = dep::branchTaken(loop, it, 0);
        bool t2 = dep::branchTaken(loop, it, 0);
        EXPECT_EQ(t1, t2);
        taken += t1 ? 1 : 0;
    }
    EXPECT_NEAR(taken / 2000.0, 0.25, 0.05);
}

TEST(LoopIrTest, StmtActiveFollowsGuard)
{
    dep::Loop loop;
    loop.depth = 1;
    loop.outer = {1, 100};
    loop.seed = 5;
    loop.branchProb = {0.5};
    dep::Statement on_taken, on_else, uncond;
    on_taken.guard = dep::Guard{0, true};
    on_else.guard = dep::Guard{0, false};
    loop.body = {uncond, on_taken, on_else};

    for (std::uint64_t it = 1; it <= 100; ++it) {
        EXPECT_TRUE(dep::stmtActive(loop, loop.body[0], it));
        bool a = dep::stmtActive(loop, loop.body[1], it);
        bool b = dep::stmtActive(loop, loop.body[2], it);
        EXPECT_NE(a, b); // exactly one arm executes
    }
}

TEST(LoopIrTest, DataLayoutDistinctElements)
{
    dep::Loop loop = workloads::makeFig21Loop(16);
    dep::DataLayout layout(loop);
    // A[I-1..I+3] over I=1..16 -> elements 0..19 -> 20 elements.
    EXPECT_EQ(layout.totalElements(), 20u);
    EXPECT_EQ(layout.numArrays(), 1u);

    const auto &write3 = loop.body[0].refs[0]; // A[I+3]
    const auto &read1 = loop.body[1].refs[0];  // A[I+1]
    // A[I+3] at iteration i equals A[I+1] at iteration i+2.
    EXPECT_EQ(layout.addrOf(write3, 4, 0), layout.addrOf(read1, 6, 0));
    EXPECT_NE(layout.addrOf(write3, 4, 0), layout.addrOf(read1, 5, 0));
}

TEST(LoopIrTest, DataLayout2DOrdinals)
{
    dep::Loop loop = workloads::makeNestedLoop(3, 4);
    dep::DataLayout layout(loop);
    // Arrays A (with J-1 => extent 3x5), B (3x5 w/ I-1 -> extent
    // 4x5... compute: A: dim0 over I=1..3 offset0 -> lo 1 hi 3;
    // dim1 over J-1..J -> lo 0 hi 4 (5). B: dim0 I-1..I -> 0..3
    // (4); dim1 J-1..J -> 0..4 (5). C: 3x4? C[I,J] -> 3 x 4.
    EXPECT_EQ(layout.numArrays(), 3u);
    EXPECT_GT(layout.totalElements(), 0u);

    // Same element, different refs: A[I,J] written at (2,2) is
    // A[I,J-1] read at (2,3).
    const auto &a_write = loop.body[0].refs[0];
    const auto &a_read = loop.body[1].refs[0];
    EXPECT_EQ(layout.addrOf(a_write, 2, 2), layout.addrOf(a_read, 2, 3));
    EXPECT_EQ(layout.globalOrdinal(a_write, 2, 2),
              layout.globalOrdinal(a_read, 2, 3));
}

TEST(LoopIrTest, DistinctArraysNeverCollide)
{
    dep::Loop loop = workloads::makeNestedLoop(3, 4);
    dep::DataLayout layout(loop);
    const auto &a = loop.body[0].refs[0]; // A[I,J]
    const auto &b = loop.body[1].refs[1]; // B[I,J]
    for (long i = 1; i <= 3; ++i) {
        for (long j = 1; j <= 4; ++j) {
            EXPECT_NE(layout.addrOf(a, i, j), layout.addrOf(b, i, j));
        }
    }
}
