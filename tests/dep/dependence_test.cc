/**
 * @file
 * Dependence analysis must reproduce the paper's Fig. 2.1 graph
 * exactly: flow S1->S2 (d=2), S1->S3 (d=1), S4->S5 (d=1);
 * anti S2->S4 (d=1), S3->S4 (d=2); output S1->S4 (d=3).
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "dep/dependence.hh"
#include "workloads/fig21.hh"
#include "workloads/nested.hh"

using namespace psync;

namespace {

bool
hasDep(const std::vector<dep::Dep> &deps, unsigned src, unsigned dst,
       dep::DepType type, long d1, long d2 = 0)
{
    return std::any_of(deps.begin(), deps.end(),
                       [&](const dep::Dep &d) {
        return d.src == src && d.dst == dst && d.type == type &&
               d.d1 == d1 && d.d2 == d2;
    });
}

} // namespace

TEST(DependenceTest, Fig21GraphMatchesPaper)
{
    dep::Loop loop = workloads::makeFig21Loop(100);
    dep::DepAnalysis analysis = dep::analyze(loop);
    const auto &deps = analysis.deps;

    EXPECT_TRUE(analysis.nonConstantPairs.empty());

    // Statement indices: S1=0, S2=1, S3=2, S4=3, S5=4.
    EXPECT_TRUE(hasDep(deps, 0, 1, dep::DepType::flow, 2));
    EXPECT_TRUE(hasDep(deps, 0, 2, dep::DepType::flow, 1));
    EXPECT_TRUE(hasDep(deps, 3, 4, dep::DepType::flow, 1));
    EXPECT_TRUE(hasDep(deps, 1, 3, dep::DepType::anti, 1));
    EXPECT_TRUE(hasDep(deps, 2, 3, dep::DepType::anti, 2));
    EXPECT_TRUE(hasDep(deps, 0, 3, dep::DepType::output, 3));

    // ... and nothing else crosses iterations except those six
    // plus the S4->S2/S4->S3 and S5 interactions implied by the
    // subscripts. Enumerate and count the exact cross set.
    unsigned cross = 0;
    for (const auto &d : deps) {
        if (d.crossIteration())
            ++cross;
    }
    // A[I+3] also conflicts with A[I+1]/A[I+2]/A[I-1] backwards:
    // S2->S1? No: S1 writes A[I+3], S2 reads A[I+1]; conflict at
    // distance 2 (S1 source). The full cross set additionally
    // contains flow S1->S5 (d=4), anti S5->S4? A[I-1] read at i
    // vs A[I] written at i-1: distance -1 -> source S4, flow
    // S4->S5 d=1 already counted. S2 vs S5 are both reads. So the
    // remaining extras are flow S1->S5 (d=4) and anti
    // S5->S1? A[I-1]@i = A[I+3]@i-4 -> read before write? The
    // write S1@i-4 precedes: flow S1->S5 d=4.
    EXPECT_TRUE(hasDep(deps, 0, 4, dep::DepType::flow, 4));
    // anti S2->S1: A[I+1]@i = A[I+3]@(i-2): S1@(i-2) writes first
    // (flow, counted). The reverse pairing A[I+1]@i vs
    // A[I+3]@(i+?) : i+1+? ... S1@j writes A[j+3]=A[i+1] => j=i-2
    // only. So no extra anti arcs from S2/S3/S5 to S1.
    // anti S5->S4: A[I-1]@i = A[I]@(i-1): S4@(i-1) earlier: flow.
    EXPECT_EQ(cross, 7u);
}

TEST(DependenceTest, Fig21NoIntraIterationArcs)
{
    // All of Fig. 2.1's distances are >= 1.
    dep::Loop loop = workloads::makeFig21Loop(50);
    for (const auto &d : dep::analyze(loop).deps)
        EXPECT_TRUE(d.crossIteration());
}

TEST(DependenceTest, NestedLoopDistanceVectors)
{
    dep::Loop loop = workloads::makeNestedLoop(10, 8);
    dep::DepAnalysis analysis = dep::analyze(loop);
    const auto &deps = analysis.deps;

    EXPECT_TRUE(analysis.nonConstantPairs.empty());
    // S1 writes A[I,J]; S2 reads A[I,J-1]: flow (0,1).
    EXPECT_TRUE(hasDep(deps, 0, 1, dep::DepType::flow, 0, 1));
    // S2 writes B[I,J]; S3 reads B[I-1,J-1]: flow (1,1).
    EXPECT_TRUE(hasDep(deps, 1, 2, dep::DepType::flow, 1, 1));
    EXPECT_EQ(deps.size(), 2u);
}

TEST(DependenceTest, LinearizedDistances)
{
    dep::Loop loop = workloads::makeNestedLoop(10, 8);
    auto deps = dep::analyze(loop).deps;
    for (const auto &d : deps) {
        if (d.src == 0)
            EXPECT_EQ(d.linearDistance(loop.innerTrip()), 1);
        if (d.src == 1)
            EXPECT_EQ(d.linearDistance(loop.innerTrip()), 9);
    }
}

TEST(DependenceTest, ReadsOnlyNoDependence)
{
    dep::Loop loop;
    loop.depth = 1;
    loop.outer = {1, 10};
    dep::Statement s;
    s.label = "S1";
    dep::ArrayRef r;
    r.array = "A";
    r.subs = {dep::Subscript{1, 0, 0}};
    r.isWrite = false;
    s.refs = {r};
    loop.body = {s, s};
    EXPECT_TRUE(dep::analyze(loop).deps.empty());
}

TEST(DependenceTest, DisjointConstantElements)
{
    // X[1] and X[2] never conflict.
    dep::Loop loop;
    loop.depth = 1;
    loop.outer = {1, 10};
    dep::Statement a, b;
    a.label = "S1";
    b.label = "S2";
    dep::ArrayRef w1, w2;
    w1.array = "X";
    w1.subs = {dep::Subscript{0, 0, 1}};
    w1.isWrite = true;
    w2.array = "X";
    w2.subs = {dep::Subscript{0, 0, 2}};
    w2.isWrite = true;
    a.refs = {w1};
    b.refs = {w2};
    loop.body = {a, b};
    EXPECT_TRUE(dep::analyze(loop).deps.empty());
}

TEST(DependenceTest, SameConstantElementEveryIterationIsNonConstant)
{
    // X[5] written every iteration: distance is not constant.
    dep::Loop loop;
    loop.depth = 1;
    loop.outer = {1, 10};
    dep::Statement a;
    a.label = "S1";
    dep::ArrayRef w;
    w.array = "X";
    w.subs = {dep::Subscript{0, 0, 5}};
    w.isWrite = true;
    a.refs = {w};
    loop.body = {a};
    dep::DepAnalysis analysis = dep::analyze(loop);
    EXPECT_TRUE(analysis.deps.empty());
    EXPECT_FALSE(analysis.nonConstantPairs.empty());
}
