/**
 * @file
 * Anti-diagonal dependences: distance vectors like (1,-1) are
 * lexicographically positive, linearize to M-1, and must be
 * enforced like any other arc.
 */

#include <gtest/gtest.h>

#include "core/runtime.hh"
#include "dep/dep_graph.hh"
#include "dep/transform.hh"

using namespace psync;

namespace {

/** A[I,J] = A[I-1,J+1]: skewed recurrence. */
dep::Loop
makeSkewedLoop(long n, long m)
{
    dep::Loop loop;
    loop.name = "skewed";
    loop.depth = 2;
    loop.outer = {1, n};
    loop.inner = {1, m};
    dep::Statement s;
    s.label = "S1";
    s.cost = 4;
    dep::ArrayRef rd, wr;
    rd.array = "A";
    rd.subs = {dep::Subscript{1, 0, -1}, dep::Subscript{0, 1, 1}};
    rd.isWrite = false;
    wr.array = "A";
    wr.subs = {dep::Subscript{1, 0, 0}, dep::Subscript{0, 1, 0}};
    wr.isWrite = true;
    s.refs = {rd, wr};
    loop.body = {s};
    return loop;
}

} // namespace

TEST(NegativeInnerDistanceTest, VectorAndLinearization)
{
    dep::Loop loop = makeSkewedLoop(6, 8);
    dep::DepGraph graph(loop);
    auto enforced = graph.enforced();
    ASSERT_EQ(enforced.size(), 1u);
    EXPECT_EQ(enforced[0].type, dep::DepType::flow);
    EXPECT_EQ(enforced[0].d1, 1);
    EXPECT_EQ(enforced[0].d2, -1);
    EXPECT_EQ(enforced[0].linearDistance(loop.innerTrip()), 7);
}

TEST(NegativeInnerDistanceTest, AllSchemesCorrect)
{
    dep::Loop loop = makeSkewedLoop(6, 8);
    for (auto kind : sync::allSyncSchemes()) {
        core::RunConfig cfg;
        cfg.machine.numProcs = 4;
        cfg.machine.syncRegisters = 1024;
        cfg.machine.fabric =
            (kind == sync::SchemeKind::referenceBased ||
             kind == sync::SchemeKind::instanceBased)
                ? sim::FabricKind::memory
                : sim::FabricKind::registers;
        cfg.tickLimit = 20000000;
        auto r = core::runDoacross(loop, kind, cfg);
        ASSERT_TRUE(r.run.completed) << sync::schemeKindName(kind);
        EXPECT_TRUE(r.correct())
            << sync::schemeKindName(kind) << ": "
            << (r.violations.empty() ? "" : r.violations.front());
        EXPECT_GT(r.instancesChecked, 0u)
            << sync::schemeKindName(kind);
    }
}

TEST(NegativeInnerDistanceTest, BoundaryPredicate)
{
    dep::Loop loop = makeSkewedLoop(6, 8);
    dep::DepGraph graph(loop);
    // enforced() returns by value; keep the vector alive.
    const std::vector<dep::Dep> enforced = graph.enforced();
    const dep::Dep &d = enforced[0];
    // Sink (i, j) has a source iff (i-1, j+1) is in bounds:
    // i >= 2 and j <= 7.
    EXPECT_TRUE(dep::sinkHasSource(loop, d, loop.lpidOf(2, 3)));
    EXPECT_FALSE(dep::sinkHasSource(loop, d, loop.lpidOf(1, 3)));
    EXPECT_FALSE(dep::sinkHasSource(loop, d, loop.lpidOf(3, 8)));
}
