/** @file Coverage elimination must match the paper's Fig. 2.1. */

#include <gtest/gtest.h>

#include <algorithm>

#include "dep/dep_graph.hh"
#include "workloads/fig21.hh"
#include "workloads/nested.hh"

using namespace psync;

namespace {

const dep::Dep *
findDep(const std::vector<dep::Dep> &deps, unsigned src, unsigned dst,
        dep::DepType type)
{
    for (const auto &d : deps) {
        if (d.src == src && d.dst == dst && d.type == type)
            return &d;
    }
    return nullptr;
}

} // namespace

TEST(DepGraphTest, Fig21OutputDepIsCovered)
{
    dep::Loop loop = workloads::makeFig21Loop(64);
    dep::DepGraph graph(loop);

    // "by enforcing dependences S1->S3 and S3->S4, the dependence
    // S1->S4 can be covered."
    const dep::Dep *out = findDep(graph.deps(), 0, 3,
                                  dep::DepType::output);
    ASSERT_NE(out, nullptr);
    EXPECT_TRUE(out->covered);

    // The covering arcs themselves stay enforced.
    const dep::Dep *s1s3 = findDep(graph.deps(), 0, 2,
                                   dep::DepType::flow);
    const dep::Dep *s3s4 = findDep(graph.deps(), 2, 3,
                                   dep::DepType::anti);
    ASSERT_NE(s1s3, nullptr);
    ASSERT_NE(s3s4, nullptr);
    EXPECT_FALSE(s1s3->covered);
    EXPECT_FALSE(s3s4->covered);
}

TEST(DepGraphTest, Fig21EnforcedSetIsMinimal)
{
    dep::Loop loop = workloads::makeFig21Loop(64);
    dep::DepGraph graph(loop);
    auto enforced = graph.enforced();
    // 7 cross-iteration arcs, minus covered output S1->S4 (d3,
    // covered by S1->S3 + S3->S4) and flow S1->S5 (d4, covered by
    // S1->S3/S3->S4/S4->S5 chains with exact sums 1+2+1 = 4).
    for (const auto &d : enforced) {
        EXPECT_FALSE(d.covered);
        EXPECT_TRUE(d.crossIteration());
    }
    EXPECT_EQ(enforced.size(), 5u);
    EXPECT_EQ(graph.numCovered(), 2u);
}

TEST(DepGraphTest, SourceStatementsOfFig21)
{
    dep::Loop loop = workloads::makeFig21Loop(64);
    dep::DepGraph graph(loop);
    auto sources = graph.sourceStatements();
    // S1 (flow), S2/S3 (anti into S4), S4 (flow into S5).
    EXPECT_EQ(sources.size(), 4u);
    EXPECT_TRUE(std::count(sources.begin(), sources.end(), 0u));
    EXPECT_TRUE(std::count(sources.begin(), sources.end(), 1u));
    EXPECT_TRUE(std::count(sources.begin(), sources.end(), 2u));
    EXPECT_TRUE(std::count(sources.begin(), sources.end(), 3u));
}

TEST(DepGraphTest, CoverageDisabledKeepsAllArcs)
{
    dep::Loop loop = workloads::makeFig21Loop(64);
    dep::DepGraph graph(loop, false);
    EXPECT_EQ(graph.numCovered(), 0u);
    EXPECT_EQ(graph.enforced().size(), 7u);
}

TEST(DepGraphTest, NestedLoopNothingCovered)
{
    dep::Loop loop = workloads::makeNestedLoop(8, 8);
    dep::DepGraph graph(loop);
    EXPECT_EQ(graph.numCovered(), 0u);
    EXPECT_EQ(graph.enforced().size(), 2u);
}

TEST(DepGraphTest, ShorterPathDoesNotCover)
{
    // flow S1->S2 d=1 and flow S1->S3 d=3 with S2->S3 absent:
    // nothing covers the d=3 arc even though d=1 < 3.
    dep::Loop loop;
    loop.depth = 1;
    loop.outer = {1, 32};
    auto ref = [](const char *a, long off, bool w) {
        dep::ArrayRef r;
        r.array = a;
        r.subs = {dep::Subscript{1, 0, off}};
        r.isWrite = w;
        return r;
    };
    dep::Statement s1, s2, s3;
    s1.label = "S1";
    s1.refs = {ref("A", 0, true)};
    s2.label = "S2";
    s2.refs = {ref("A", -1, false)};
    s3.label = "S3";
    s3.refs = {ref("A", -3, false)};
    loop.body = {s1, s2, s3};

    dep::DepGraph graph(loop);
    const dep::Dep *far = findDep(graph.deps(), 0, 2,
                                  dep::DepType::flow);
    ASSERT_NE(far, nullptr);
    EXPECT_FALSE(far->covered);
}

TEST(DepGraphTest, ExactChainCovers)
{
    // S1 -> S2 (d=1), S2 -> S3 (d=2), S1 -> S3 (d=3): covered.
    dep::Loop loop;
    loop.depth = 1;
    loop.outer = {1, 32};
    auto ref = [](const char *a, long off, bool w) {
        dep::ArrayRef r;
        r.array = a;
        r.subs = {dep::Subscript{1, 0, off}};
        r.isWrite = w;
        return r;
    };
    dep::Statement s1, s2, s3;
    s1.label = "S1";
    s1.refs = {ref("A", 0, true), ref("C", 0, true)};
    s2.label = "S2";
    s2.refs = {ref("A", -1, false), ref("B", 0, true)};
    s3.label = "S3";
    s3.refs = {ref("B", -2, false), ref("C", -3, false)};
    loop.body = {s1, s2, s3};

    dep::DepGraph graph(loop);
    const dep::Dep *far = findDep(graph.deps(), 0, 2,
                                  dep::DepType::flow);
    ASSERT_NE(far, nullptr);
    EXPECT_TRUE(far->covered) << graph.toString();
}

TEST(DepGraphTest, GuardedIntermediateBlocksCoverage)
{
    // Same chain as ExactChainCovers but S2 is branch-guarded: the
    // path through it is unreliable, so S1->S3 stays enforced.
    dep::Loop loop;
    loop.depth = 1;
    loop.outer = {1, 32};
    loop.branchProb = {0.5};
    auto ref = [](const char *a, long off, bool w) {
        dep::ArrayRef r;
        r.array = a;
        r.subs = {dep::Subscript{1, 0, off}};
        r.isWrite = w;
        return r;
    };
    dep::Statement s1, s2, s3;
    s1.label = "S1";
    s1.refs = {ref("A", 0, true), ref("C", 0, true)};
    s2.label = "S2";
    s2.refs = {ref("A", -1, false), ref("B", 0, true)};
    s2.guard = dep::Guard{0, true};
    s3.label = "S3";
    s3.refs = {ref("B", -2, false), ref("C", -3, false)};
    loop.body = {s1, s2, s3};

    dep::DepGraph graph(loop);
    const dep::Dep *far = findDep(graph.deps(), 0, 2,
                                  dep::DepType::flow);
    ASSERT_NE(far, nullptr);
    EXPECT_FALSE(far->covered) << graph.toString();
}

TEST(DepGraphTest, DotOutputWellFormed)
{
    dep::Loop loop = workloads::makeFig21Loop(16);
    dep::DepGraph graph(loop);
    std::string dot = graph.toDot();
    EXPECT_EQ(dot.find("digraph"), 0u);
    EXPECT_NE(dot.find("\"S1\" -> \"S2\" [label=\"flow (2)\""),
              std::string::npos);
    // Covered arcs render dashed.
    EXPECT_NE(dot.find("style=dashed"), std::string::npos);
    EXPECT_NE(dot.find("}"), std::string::npos);
}

TEST(DepGraphTest, ToStringListsEveryArc)
{
    dep::Loop loop = workloads::makeFig21Loop(16);
    dep::DepGraph graph(loop);
    std::string text = graph.toString();
    EXPECT_NE(text.find("flow S1->S2 d=(2)"), std::string::npos);
    EXPECT_NE(text.find("output S1->S4 d=(3) [covered]"),
              std::string::npos);
}
