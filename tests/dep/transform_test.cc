/** @file Boundary predicates, extra-dep counting, wavefronts. */

#include <gtest/gtest.h>

#include "dep/dep_graph.hh"
#include "dep/transform.hh"
#include "workloads/nested.hh"

using namespace psync;

TEST(TransformTest, SinkHasSourceRespectsInnerBoundary)
{
    dep::Loop loop = workloads::makeNestedLoop(4, 5);
    dep::DepGraph graph(loop);

    // S1->S2 flow with d=(0,1): sinks at J=1 have no source.
    const dep::Dep *d01 = nullptr;
    const dep::Dep *d11 = nullptr;
    for (const auto &d : graph.deps()) {
        if (d.d1 == 0 && d.d2 == 1)
            d01 = &d;
        if (d.d1 == 1 && d.d2 == 1)
            d11 = &d;
    }
    ASSERT_NE(d01, nullptr);
    ASSERT_NE(d11, nullptr);

    EXPECT_FALSE(dep::sinkHasSource(loop, *d01, loop.lpidOf(2, 1)));
    EXPECT_TRUE(dep::sinkHasSource(loop, *d01, loop.lpidOf(2, 2)));

    // S2->S3 with d=(1,1): sinks at J=1 or I=1 have no source.
    EXPECT_FALSE(dep::sinkHasSource(loop, *d11, loop.lpidOf(2, 1)));
    EXPECT_FALSE(dep::sinkHasSource(loop, *d11, loop.lpidOf(1, 3)));
    EXPECT_TRUE(dep::sinkHasSource(loop, *d11, loop.lpidOf(2, 2)));
}

TEST(TransformTest, ExtraDepCountMatchesBoundaryCells)
{
    dep::Loop loop = workloads::makeNestedLoop(4, 5);
    dep::DepGraph graph(loop);
    for (const auto &d : graph.enforced()) {
        std::uint64_t extra = dep::extraDepCount(loop, d);
        if (d.d1 == 0 && d.d2 == 1) {
            // Linear distance 1; sinks J=1 for I=2..4: lpids 6,11,16
            // are > 1 and have no source: 3 extra.
            EXPECT_EQ(extra, 3u);
        } else if (d.d1 == 1 && d.d2 == 1) {
            // Linear distance 6; sinks with lpid > 6 lacking a
            // source: J=1 rows of I=2..4 minus those with lpid<=6.
            EXPECT_EQ(extra, 2u);
        }
    }
}

TEST(TransformTest, WavefrontsCoverSpaceExactlyOnce)
{
    auto fronts = dep::makeWavefronts({2, 6}, {2, 9});
    // (5 x 8) iteration space: 5+8-1 fronts.
    EXPECT_EQ(fronts.size(), 12u);
    size_t cells = 0;
    for (size_t w = 0; w < fronts.size(); ++w) {
        for (auto [i, j] : fronts[w]) {
            EXPECT_EQ(static_cast<size_t>((i - 2) + (j - 2)), w);
            ++cells;
        }
    }
    EXPECT_EQ(cells, 40u);
}

TEST(TransformTest, WavefrontSizesRampUpAndDown)
{
    auto fronts = dep::makeWavefronts({1, 4}, {1, 4});
    ASSERT_EQ(fronts.size(), 7u);
    EXPECT_EQ(fronts[0].size(), 1u);
    EXPECT_EQ(fronts[3].size(), 4u);
    EXPECT_EQ(fronts[6].size(), 1u);
}

TEST(TransformTest, EmptyBoundsGiveNoFronts)
{
    auto fronts = dep::makeWavefronts({3, 2}, {1, 4});
    EXPECT_TRUE(fronts.empty());
}
