/** @file Trajectory merge/load and the regression detector. */

#include <gtest/gtest.h>

#include <sstream>

#include "bench/compare.hh"
#include "bench/registry.hh"

using namespace psync;

namespace {

core::json::Value
record(const std::string &id, std::uint64_t cycles)
{
    core::json::Value r = core::json::object();
    r.set("scenario", id);
    r.set("cycles", cycles);
    return r;
}

core::json::Value
trajectory(
    std::initializer_list<std::pair<const char *, std::uint64_t>>
        entries)
{
    core::json::Value doc = bench::makeTrajectoryDoc();
    for (const auto &entry : entries)
        bench::mergeRecord(doc, record(entry.first, entry.second));
    return doc;
}

const bench::ScenarioDelta &
deltaFor(const bench::CompareResult &result, const std::string &id)
{
    for (const auto &delta : result.deltas) {
        if (delta.id == id)
            return delta;
    }
    static bench::ScenarioDelta missing;
    ADD_FAILURE() << "no delta for " << id;
    return missing;
}

} // namespace

TEST(CompareTest, MergeReplacesSameScenarioId)
{
    core::json::Value doc = bench::makeTrajectoryDoc();
    bench::mergeRecord(doc, record("a/x", 100));
    bench::mergeRecord(doc, record("a/y", 200));
    bench::mergeRecord(doc, record("a/x", 150));

    bench::Trajectory t = bench::loadTrajectory(doc);
    ASSERT_TRUE(t.ok) << t.error;
    ASSERT_EQ(t.cycles.size(), 2u);
    EXPECT_EQ(t.cycles[0].first, "a/x");
    EXPECT_EQ(t.cycles[0].second, 150u);
    EXPECT_EQ(t.cycles[1].first, "a/y");
}

TEST(CompareTest, LoadRejectsMalformedDocuments)
{
    core::json::Value empty = core::json::object();
    EXPECT_FALSE(bench::loadTrajectory(empty).ok);

    core::json::Value wrong_version = core::json::object();
    wrong_version.set("schema_version", 999);
    wrong_version.set("records", core::json::array());
    EXPECT_FALSE(bench::loadTrajectory(wrong_version).ok);

    core::json::Value bad_record = bench::makeTrajectoryDoc();
    core::json::Value no_cycles = core::json::object();
    no_cycles.set("scenario", "a/x");
    bench::mergeRecord(bad_record, std::move(no_cycles));
    EXPECT_FALSE(bench::loadTrajectory(bad_record).ok);

    EXPECT_TRUE(
        bench::loadTrajectory(bench::makeTrajectoryDoc()).ok);
}

TEST(CompareTest, LoadAcceptsOlderSchemaVersions)
{
    // v1 trajectory files (no host-timing fields) predate the
    // current layout and must keep loading — the checked-in
    // baseline history spans both.
    core::json::Value doc = trajectory({{"a/x", 100}});
    doc.set("schema_version", bench::kMinTrajectorySchemaVersion);
    bench::Trajectory t = bench::loadTrajectory(doc);
    ASSERT_TRUE(t.ok) << t.error;
    ASSERT_EQ(t.cycles.size(), 1u);
    EXPECT_EQ(t.cycles[0].second, 100u);
}

TEST(CompareTest, LoadAcceptsEverySchemaVersionInHistory)
{
    // Each schema bump so far only added record kinds/fields; a file
    // stamped with any version from v1 through the current one must
    // load with its sim cycles intact.
    for (int v = bench::kMinTrajectorySchemaVersion;
         v <= bench::kTrajectorySchemaVersion; ++v) {
        core::json::Value doc = trajectory({{"a/x", 100}});
        doc.set("schema_version", v);
        bench::Trajectory t = bench::loadTrajectory(doc);
        ASSERT_TRUE(t.ok) << "schema v" << v << ": " << t.error;
        ASSERT_EQ(t.cycles.size(), 1u) << "schema v" << v;
        EXPECT_EQ(t.cycles[0].second, 100u) << "schema v" << v;
    }
}

TEST(CompareTest, ServeRecordsAreIgnoredByCycleComparison)
{
    // v8 serve records carry wall-time throughput, not simulated
    // cycles — the loader must skip them (like native records), so
    // mixed files still compare on the sim subset alone.
    core::json::Value doc = trajectory({{"a/x", 100}});
    core::json::Value serve = core::json::object();
    serve.set("scenario", "serve/uniform#sharded-g2x4");
    serve.set("kind", "serve");
    serve.set("programs_per_sec", 123456.0);
    bench::mergeRecord(doc, std::move(serve));

    bench::Trajectory t = bench::loadTrajectory(doc);
    ASSERT_TRUE(t.ok) << t.error;
    ASSERT_EQ(t.cycles.size(), 1u);
    EXPECT_EQ(t.cycles[0].first, "a/x");

    // And the regression detector treats two such files as equal.
    bench::CompareOptions exact;
    exact.requireIdentical = true;
    EXPECT_TRUE(bench::compareTrajectories(doc, doc, exact).ok());
}

TEST(CompareTest, ExactModeFlagsAnyCycleDifference)
{
    bench::CompareOptions exact;
    exact.requireIdentical = true;

    // One cycle slower AND one cycle faster both fail; the default
    // 2% threshold would call these unchanged.
    auto base = trajectory({{"a/x", 1000}, {"a/y", 1000}});
    auto cur = trajectory({{"a/x", 1001}, {"a/y", 999}});
    bench::CompareResult result =
        bench::compareTrajectories(base, cur, exact);
    EXPECT_FALSE(result.ok());
    EXPECT_EQ(result.regressions, 2u);
    EXPECT_EQ(deltaFor(result, "a/x").kind,
              bench::ScenarioDelta::Kind::regression);
    EXPECT_EQ(deltaFor(result, "a/y").kind,
              bench::ScenarioDelta::Kind::regression);

    bench::CompareResult loose =
        bench::compareTrajectories(base, cur, {});
    EXPECT_TRUE(loose.ok());
}

TEST(CompareTest, ExactModeRequiresSameScenarioSet)
{
    bench::CompareOptions exact;
    exact.requireIdentical = true;
    auto base = trajectory({{"a/x", 100}, {"a/y", 200}});
    auto cur = trajectory({{"a/x", 100}, {"a/z", 300}});
    bench::CompareResult result =
        bench::compareTrajectories(base, cur, exact);
    EXPECT_FALSE(result.ok());
    EXPECT_EQ(result.added, 1u);
    EXPECT_EQ(result.removed, 1u);
}

TEST(CompareTest, ExactModePassesOnIdenticalTrajectories)
{
    bench::CompareOptions exact;
    exact.requireIdentical = true;
    auto base = trajectory({{"a/x", 100}, {"a/y", 200}});
    auto cur = trajectory({{"a/x", 100}, {"a/y", 200}});
    bench::CompareResult result =
        bench::compareTrajectories(base, cur, exact);
    EXPECT_TRUE(result.ok());
    EXPECT_EQ(result.unchanged, 2u);
}

TEST(CompareTest, ClassifiesRegressionImprovementUnchanged)
{
    auto baseline = trajectory(
        {{"a/slower", 1000}, {"a/faster", 1000}, {"a/same", 1000}});
    auto current = trajectory(
        {{"a/slower", 1100}, {"a/faster", 800}, {"a/same", 1005}});

    bench::CompareOptions opts;
    opts.regressThresholdPct = 2.0;
    auto result =
        bench::compareTrajectories(baseline, current, opts);

    EXPECT_FALSE(result.ok());
    EXPECT_EQ(result.regressions, 1u);
    EXPECT_EQ(result.improvements, 1u);
    EXPECT_EQ(result.unchanged, 1u);
    EXPECT_EQ(deltaFor(result, "a/slower").kind,
              bench::ScenarioDelta::Kind::regression);
    EXPECT_NEAR(deltaFor(result, "a/slower").deltaPct, 10.0, 1e-9);
    EXPECT_EQ(deltaFor(result, "a/faster").kind,
              bench::ScenarioDelta::Kind::improvement);
    EXPECT_EQ(deltaFor(result, "a/same").kind,
              bench::ScenarioDelta::Kind::unchanged);
}

TEST(CompareTest, ThresholdGatesTheVerdict)
{
    auto baseline = trajectory({{"a/x", 1000}});
    auto current = trajectory({{"a/x", 1100}});

    bench::CompareOptions loose;
    loose.regressThresholdPct = 15.0;
    EXPECT_TRUE(
        bench::compareTrajectories(baseline, current, loose).ok());

    bench::CompareOptions tight;
    tight.regressThresholdPct = 5.0;
    EXPECT_FALSE(
        bench::compareTrajectories(baseline, current, tight).ok());
}

TEST(CompareTest, NewAndRemovedScenariosAreNotRegressions)
{
    auto baseline = trajectory({{"a/kept", 1000}, {"a/gone", 500}});
    auto current = trajectory({{"a/kept", 1000}, {"a/new", 700}});

    auto result = bench::compareTrajectories(baseline, current, {});
    EXPECT_TRUE(result.ok());
    EXPECT_EQ(result.added, 1u);
    EXPECT_EQ(result.removed, 1u);
    EXPECT_EQ(deltaFor(result, "a/new").kind,
              bench::ScenarioDelta::Kind::added);
    EXPECT_EQ(deltaFor(result, "a/gone").kind,
              bench::ScenarioDelta::Kind::removed);
}

TEST(CompareTest, MalformedInputFailsSafe)
{
    core::json::Value bogus = core::json::object();
    auto current = trajectory({{"a/x", 100}});
    auto result = bench::compareTrajectories(bogus, current, {});
    EXPECT_FALSE(result.ok());
    ASSERT_EQ(result.deltas.size(), 1u);
    EXPECT_NE(result.deltas[0].id.find("malformed baseline"),
              std::string::npos);
}

TEST(CompareTest, PrintedTableNamesEveryVerdict)
{
    auto baseline = trajectory({{"a/slower", 1000}, {"a/gone", 10}});
    auto current = trajectory({{"a/slower", 2000}, {"a/new", 20}});
    auto result = bench::compareTrajectories(baseline, current, {});

    std::ostringstream os;
    bench::printCompare(os, result, {});
    EXPECT_NE(os.str().find("REGRESSION"), std::string::npos);
    EXPECT_NE(os.str().find("added"), std::string::npos);
    EXPECT_NE(os.str().find("removed"), std::string::npos);
    EXPECT_NE(os.str().find("FAIL"), std::string::npos);
    EXPECT_NE(os.str().find("+100.0%"), std::string::npos);
}
