/** @file Scenario registry: ids, matching, and record contents. */

#include <gtest/gtest.h>

#include <set>

#include "bench/registry.hh"
#include "core/tracing.hh"

using namespace psync;

TEST(RegistryTest, IdsAreUniqueAndGroupSlashVariant)
{
    const auto &scenarios = bench::allScenarios();
    ASSERT_GE(scenarios.size(), 20u);
    std::set<std::string> ids;
    for (const auto &s : scenarios) {
        EXPECT_TRUE(ids.insert(s.id).second)
            << "duplicate id " << s.id;
        EXPECT_NE(s.id.find('/'), std::string::npos) << s.id;
        EXPECT_FALSE(s.workload.empty()) << s.id;
        EXPECT_FALSE(s.scheme.empty()) << s.id;
        EXPECT_TRUE(s.loop != nullptr) << s.id;
    }
}

TEST(RegistryTest, FindAndMatch)
{
    const bench::Scenario *s =
        bench::findScenario("fig21-n64/statement");
    ASSERT_NE(s, nullptr);
    EXPECT_EQ(s->kind, sync::SchemeKind::statementOriented);
    EXPECT_EQ(bench::findScenario("no/such"), nullptr);

    // An exact id match selects just that scenario even though the
    // id is also a substring of nothing else.
    auto exact = bench::matchScenarios("fig21-n64/statement");
    ASSERT_EQ(exact.size(), 1u);
    EXPECT_EQ(exact[0], s);

    // A group prefix matches the whole group.
    auto group = bench::matchScenarios("fig21-n64");
    EXPECT_EQ(group.size(), 3u);

    // Empty pattern matches everything.
    EXPECT_EQ(bench::matchScenarios("").size(),
              bench::allScenarios().size());
    EXPECT_TRUE(bench::matchScenarios("zzz-nothing").empty());
}

TEST(RegistryTest, RunProducesBoundAndSchemaVersionedRecord)
{
    const bench::Scenario *s =
        bench::findScenario("fig21-n64/process-improved");
    ASSERT_NE(s, nullptr);

    bench::ScenarioRecord record = bench::runScenario(*s);
    EXPECT_TRUE(record.result.run.completed);
    EXPECT_GT(record.result.run.cycles, 0u);
    EXPECT_GT(record.depBoundCycles, 0u);
    EXPECT_GE(record.boundCycles, record.depBoundCycles > 0 ? 1u
                                                           : 0u);
    // The run can never beat the dependence-or-work bound.
    EXPECT_GE(record.result.run.cycles, record.boundCycles);

    core::json::Value j = record.toJson();
    const core::json::Value *version = j.find("schema_version");
    ASSERT_NE(version, nullptr);
    EXPECT_EQ(version->asNumber(), bench::kTrajectorySchemaVersion);
    EXPECT_EQ(j.find("scenario")->asString(), s->id);
    EXPECT_EQ(j.find("scheme")->asString(), s->scheme);
    EXPECT_GT(j.find("cycles")->asNumber(), 0);
    EXPECT_GT(j.find("bound_cycles")->asNumber(), 0);
    const core::json::Value *split = j.find("cycle_split");
    ASSERT_NE(split, nullptr);
    ASSERT_TRUE(split->isObject());
    EXPECT_NE(split->find("compute_cycles"), nullptr);
    EXPECT_NE(split->find("spin_cycles"), nullptr);
    EXPECT_NE(split->find("sync_overhead_cycles"), nullptr);
    EXPECT_NE(split->find("stall_cycles"), nullptr);
    ASSERT_NE(j.find("result"), nullptr);
    EXPECT_TRUE(j.find("result")->isObject());
}

TEST(RegistryTest, TracedRunRecordsWaitEdges)
{
    const bench::Scenario *s =
        bench::findScenario("fig21-n64/reference");
    ASSERT_NE(s, nullptr);
    core::TraceRecorder rec;
    bench::ScenarioRecord record = bench::runScenario(*s, &rec);
    EXPECT_TRUE(record.result.run.completed);
    EXPECT_FALSE(rec.waitEdges().empty());
}

TEST(RegistryTest, GlobMatchSemantics)
{
    EXPECT_TRUE(bench::globMatch("fig32-*", "fig32-jitter/statement"));
    EXPECT_TRUE(bench::globMatch("*statement", "fig32-jitter/statement"));
    EXPECT_TRUE(bench::globMatch("*/statement", "fig21-n64/statement"));
    EXPECT_TRUE(bench::globMatch("fig21-n6?/*", "fig21-n64/reference"));
    EXPECT_TRUE(bench::globMatch("*", "anything/at-all"));
    EXPECT_TRUE(bench::globMatch("", ""));

    // Whole-string match, not substring.
    EXPECT_FALSE(bench::globMatch("fig32", "fig32-jitter/statement"));
    EXPECT_FALSE(bench::globMatch("?", "ab"));
    EXPECT_FALSE(bench::globMatch("a*c", "abd"));

    // '*' crosses '/' (scenario ids are flat strings).
    EXPECT_TRUE(bench::globMatch("fig21*reference",
                                 "fig21-n64/reference"));
}

TEST(RegistryTest, MatchScenariosGlobSelectsGroups)
{
    auto group = bench::matchScenariosGlob("fig21-n64/*");
    EXPECT_EQ(group.size(), 3u);
    for (const auto *s : group)
        EXPECT_EQ(s->id.rfind("fig21-n64/", 0), 0u) << s->id;

    auto schemes = bench::matchScenariosGlob("*/statement");
    EXPECT_GE(schemes.size(), 2u);
    for (const auto *s : schemes)
        EXPECT_NE(s->id.find("/statement"), std::string::npos)
            << s->id;

    // Without metacharacters, globs degrade to substring matching
    // so --scenarios accepts the same patterns --run does.
    EXPECT_EQ(bench::matchScenariosGlob("fig21-n64").size(), 3u);
    EXPECT_TRUE(bench::matchScenariosGlob("zzz-*").empty());
}

TEST(RegistryTest, SampledRunAttachesTimelineSummary)
{
    const bench::Scenario *s =
        bench::findScenario("fig21-n64/statement");
    ASSERT_NE(s, nullptr);

    // Unsampled record: no timeline field (byte-comparable with
    // v5 output apart from the version stamp).
    bench::ScenarioRecord plain = bench::runScenario(*s);
    EXPECT_EQ(plain.timeline, nullptr);
    EXPECT_FALSE(plain.toJson().has("timeline"));

    core::TraceRecorder rec;
    bench::ScenarioRecord sampled = bench::runScenario(
        *s, &rec, nullptr, /*profile=*/false,
        bench::kTimelineAutoInterval);

    // Sampling is passive: identical cycles.
    EXPECT_EQ(sampled.result.run.cycles, plain.result.run.cycles);

    ASSERT_NE(sampled.timeline, nullptr);
    EXPECT_FALSE(sampled.timeline->empty());
    EXPECT_EQ(sampled.timeline->boundaries.back(),
              sampled.result.run.cycles);

    core::json::Value j = sampled.toJson();
    EXPECT_EQ(j.find("schema_version")->asNumber(),
              bench::kTrajectorySchemaVersion);
    const core::json::Value *tl = j.find("timeline");
    ASSERT_NE(tl, nullptr);
    ASSERT_TRUE(tl->isObject());
    EXPECT_GT(tl->find("samples")->asNumber(), 1);
    EXPECT_NE(tl->find("peak_bus_occupancy"), nullptr);
    EXPECT_NE(tl->find("hotspots"), nullptr);
}
