/** @file Interleaved modules, queueing, RMW atomicity, hot spots. */

#include <gtest/gtest.h>

#include <vector>

#include "sim/bus.hh"
#include "sim/memory.hh"

using namespace psync::sim;

namespace {

struct Rig
{
    EventQueue eq;
    Bus bus;
    Memory mem;

    explicit Rig(const MemoryConfig &cfg = MemoryConfig{})
        : bus(eq, "data_bus", 1), mem(eq, bus, cfg)
    {}
};

} // namespace

TEST(MemoryTest, ModuleInterleaving)
{
    Rig rig;
    EXPECT_EQ(rig.mem.moduleOf(0), 0u);
    EXPECT_EQ(rig.mem.moduleOf(8), 1u);
    EXPECT_EQ(rig.mem.moduleOf(8 * 8), 0u);
    EXPECT_EQ(rig.mem.moduleOf(8 * 9), 1u);
}

TEST(MemoryTest, ReadReturnsWrittenValue)
{
    Rig rig;
    SyncWord got = 0;
    rig.eq.schedule(0, [&]() {
        rig.mem.write(0, 64, 42, [&]() {
            rig.mem.read(0, 64, [&](SyncWord v) { got = v; });
        });
    });
    rig.eq.run();
    EXPECT_EQ(got, 42u);
}

TEST(MemoryTest, AccessLatencyBusPlusService)
{
    Rig rig;
    Tick done = 0;
    rig.eq.schedule(0, [&]() {
        rig.mem.read(0, 0, [&](SyncWord) { done = rig.eq.now(); });
    });
    rig.eq.run();
    // 1 bus cycle + 4 service cycles.
    EXPECT_EQ(done, 5u);
}

TEST(MemoryTest, SameModuleQueues)
{
    MemoryConfig cfg;
    cfg.numModules = 4;
    cfg.serviceCycles = 10;
    Rig rig(cfg);
    std::vector<Tick> done;
    rig.eq.schedule(0, [&]() {
        // Same module (addr 0 and addr 4*8*... module stride).
        rig.mem.read(0, 0, [&](SyncWord) {
            done.push_back(rig.eq.now());
        });
        rig.mem.read(1, 8 * 4, [&](SyncWord) {
            done.push_back(rig.eq.now());
        });
    });
    rig.eq.run();
    ASSERT_EQ(done.size(), 2u);
    // Second request arrives one bus cycle later but must wait for
    // the module: 1+10=11, then 2+... starts at 11, ends 21.
    EXPECT_EQ(done[0], 11u);
    EXPECT_EQ(done[1], 21u);
    EXPECT_GT(rig.mem.moduleQueueDelay(), 0u);
}

TEST(MemoryTest, DifferentModulesOverlap)
{
    MemoryConfig cfg;
    cfg.numModules = 4;
    cfg.serviceCycles = 10;
    Rig rig(cfg);
    std::vector<Tick> done;
    rig.eq.schedule(0, [&]() {
        rig.mem.read(0, 0, [&](SyncWord) {
            done.push_back(rig.eq.now());
        });
        rig.mem.read(1, 8, [&](SyncWord) {
            done.push_back(rig.eq.now());
        });
    });
    rig.eq.run();
    ASSERT_EQ(done.size(), 2u);
    EXPECT_EQ(done[0], 11u);
    EXPECT_EQ(done[1], 12u); // only bus serialization
}

TEST(MemoryTest, RmwIsAtomicAndReturnsOldValue)
{
    Rig rig;
    std::vector<SyncWord> olds;
    rig.eq.schedule(0, [&]() {
        for (int k = 0; k < 5; ++k) {
            rig.mem.rmw(0, 16,
                        [](SyncWord v) { return v + 1; },
                        [&](SyncWord old_v) { olds.push_back(old_v); });
        }
    });
    rig.eq.run();
    ASSERT_EQ(olds.size(), 5u);
    for (SyncWord k = 0; k < 5; ++k)
        EXPECT_EQ(olds[k], k);
    EXPECT_EQ(rig.mem.peek(16), 5u);
}

TEST(MemoryTest, HotSpotRatioDetectsConcentration)
{
    MemoryConfig cfg;
    cfg.numModules = 8;
    Rig rig(cfg);
    rig.eq.schedule(0, [&]() {
        for (int k = 0; k < 16; ++k)
            rig.mem.read(0, 0, [](SyncWord) {}); // all to module 0
    });
    rig.eq.run();
    EXPECT_DOUBLE_EQ(rig.mem.hotSpotRatio(), 8.0);

    // Uniform traffic has ratio 1.
    Rig uniform(cfg);
    uniform.eq.schedule(0, [&]() {
        for (int k = 0; k < 16; ++k)
            uniform.mem.read(0, static_cast<Addr>(k) * 8,
                             [](SyncWord) {});
    });
    uniform.eq.run();
    EXPECT_DOUBLE_EQ(uniform.mem.hotSpotRatio(), 1.0);
}

TEST(MemoryTest, PokePeekBypassTiming)
{
    Rig rig;
    rig.mem.poke(123 * 8, 77);
    EXPECT_EQ(rig.mem.peek(123 * 8), 77u);
    EXPECT_EQ(rig.mem.totalAccesses(), 0u);
}
