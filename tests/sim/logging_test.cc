/** @file Logging and error-termination helpers. */

#include <gtest/gtest.h>

#include "sim/logging.hh"

using namespace psync::sim;

TEST(LoggingTest, CsprintfFormats)
{
    EXPECT_EQ(csprintf("x=%d y=%s", 7, "ok"), "x=7 y=ok");
    EXPECT_EQ(csprintf("%05u", 42u), "00042");
    EXPECT_EQ(csprintf("plain"), "plain");
}

TEST(LoggingTest, CsprintfLongStrings)
{
    std::string big(5000, 'a');
    std::string out = csprintf("<%s>", big.c_str());
    EXPECT_EQ(out.size(), big.size() + 2);
    EXPECT_EQ(out.front(), '<');
    EXPECT_EQ(out.back(), '>');
}

TEST(LoggingDeathTest, PanicAborts)
{
    EXPECT_DEATH(panic("invariant %d broken", 3),
                 "invariant 3 broken");
}

TEST(LoggingDeathTest, FatalExitsWithOne)
{
    EXPECT_EXIT(fatal("bad config %s", "x"),
                ::testing::ExitedWithCode(1), "bad config x");
}

TEST(LoggingTest, WarnAndInformDoNotTerminate)
{
    warn("just a warning %d", 1);
    inform("just info %d", 2);
    SUCCEED();
}

TEST(DebugFilterTest, SingleComponent)
{
    EXPECT_EQ(parseDebugFilter("sync"), DebugSync);
    EXPECT_EQ(parseDebugFilter("bus"), DebugBus);
    EXPECT_EQ(parseDebugFilter("sched"), DebugSched);
}

TEST(DebugFilterTest, CommaSeparatedList)
{
    EXPECT_EQ(parseDebugFilter("sync,bus"), DebugSync | DebugBus);
    EXPECT_EQ(parseDebugFilter("mem,proc,net"),
              DebugMem | DebugProc | DebugNet);
}

TEST(DebugFilterTest, AllSelectsEverything)
{
    unsigned mask = parseDebugFilter("all");
    EXPECT_EQ(mask, DebugAll);
    EXPECT_TRUE(mask & DebugSync);
    EXPECT_TRUE(mask & DebugCache);
}

TEST(DebugFilterTest, EmptyIsNoComponents)
{
    EXPECT_EQ(parseDebugFilter(""), 0u);
}

TEST(DebugFilterTest, WhitespaceAroundNamesIsIgnored)
{
    EXPECT_EQ(parseDebugFilter(" sync , bus "),
              DebugSync | DebugBus);
}

TEST(DebugFilterTest, UnknownNamesAreSkippedAndReported)
{
    std::string unknown;
    unsigned mask = parseDebugFilter("sync,tubrolift,bus", &unknown);
    EXPECT_EQ(mask, DebugSync | DebugBus);
    EXPECT_EQ(unknown, "tubrolift");
}

TEST(DebugFilterTest, SetDebugMaskControlsDebugEnabled)
{
    unsigned saved = debugMask();
    setDebugMask(DebugBus | DebugSched);
    EXPECT_TRUE(debugEnabled(DebugBus));
    EXPECT_TRUE(debugEnabled(DebugSched));
    EXPECT_FALSE(debugEnabled(DebugSync));
    EXPECT_FALSE(debugEnabled(DebugMem));
    setDebugMask(0);
    EXPECT_FALSE(debugEnabled(DebugBus));
    setDebugMask(saved);
}
