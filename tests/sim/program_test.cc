/** @file Op builders and program disassembly. */

#include <gtest/gtest.h>

#include "sim/program.hh"

using namespace psync::sim;

TEST(ProgramTest, BuildersFillFields)
{
    Op c = Op::mkCompute(12);
    EXPECT_EQ(c.kind, OpKind::compute);
    EXPECT_EQ(c.cycles, 12u);

    Op r = Op::mkData(false, 0x100, 3, 2);
    EXPECT_EQ(r.kind, OpKind::dataRead);
    EXPECT_EQ(r.addr, 0x100u);
    EXPECT_EQ(r.stmt, 3u);
    EXPECT_EQ(r.ref, 2u);

    Op w = Op::mkData(true, 0x200, 1);
    EXPECT_EQ(w.kind, OpKind::dataWrite);

    Op wait = Op::mkWaitGE(7, PcWord::pack(4, 2));
    EXPECT_EQ(wait.kind, OpKind::syncWaitGE);
    EXPECT_EQ(wait.var, 7u);
    EXPECT_EQ(PcWord::owner(wait.value), 4u);

    Op inc = Op::mkFetchInc(9);
    EXPECT_EQ(inc.kind, OpKind::syncFetchInc);

    Op mark = Op::mkPcMark(2, PcWord::pack(6, 1));
    EXPECT_EQ(mark.kind, OpKind::pcMark);

    Op xfer = Op::mkPcTransfer(2, PcWord::pack(10, 0),
                               PcWord::pack(6, 0));
    EXPECT_EQ(xfer.kind, OpKind::pcTransfer);
    EXPECT_EQ(xfer.aux, PcWord::pack(6, 0));

    Op bar = Op::mkCtrBarrier(1, 2, 3, 8);
    EXPECT_EQ(bar.kind, OpKind::ctrBarrier);
    EXPECT_EQ(bar.var, 1u);
    EXPECT_EQ(bar.aux, 2u);
    EXPECT_EQ(bar.value, 3u);
    EXPECT_EQ(bar.cycles, 8u);
}

TEST(ProgramTest, OpKindNamesDistinct)
{
    EXPECT_STREQ(opKindName(OpKind::compute), "compute");
    EXPECT_STREQ(opKindName(OpKind::pcMark), "pc_mark");
    EXPECT_STREQ(opKindName(OpKind::pcTransfer), "pc_transfer");
    EXPECT_STREQ(opKindName(OpKind::ctrBarrier), "ctr_barrier");
    EXPECT_STREQ(opKindName(OpKind::stmtStart), "stmt_start");
}

TEST(ProgramTest, DisassembleShowsOwnerStepPairs)
{
    Program prog;
    prog.iter = 42;
    prog.ops = {Op::mkWaitGE(3, PcWord::pack(40, 2)),
                Op::mkCompute(5),
                Op::mkWrite(3, PcWord::pack(42, 1))};
    std::string text = disassemble(prog);
    EXPECT_NE(text.find("iter 42"), std::string::npos);
    EXPECT_NE(text.find("ge=<40,2>"), std::string::npos);
    EXPECT_NE(text.find("val=<42,1>"), std::string::npos);
    EXPECT_NE(text.find("compute 5"), std::string::npos);
}

TEST(ProgramTest, DisassembleEveryKind)
{
    Program prog;
    prog.iter = 1;
    prog.ops = {Op::mkCompute(1),
                Op::mkData(false, 8, 0),
                Op::mkData(true, 16, 0),
                Op::mkWaitGE(0, 1),
                Op::mkWrite(0, 1),
                Op::mkFetchInc(0),
                Op::mkPcMark(0, 1),
                Op::mkPcTransfer(0, 2, 1),
                Op::mkCtrBarrier(0, 1, 1, 4),
                Op::mkStmtStart(0),
                Op::mkStmtEnd(0)};
    std::string text = disassemble(prog);
    for (const Op &op : prog.ops)
        EXPECT_NE(text.find(opKindName(op.kind)), std::string::npos);
}

TEST(ProgramTest, DefaultTraceSinkIgnoresEverything)
{
    TraceSink sink;
    sink.stmtStart(0, 1, 2);
    sink.stmtEnd(0, 1, 3);
    sink.access(0, 0, 1, 8, true, 2, 3);
    SUCCEED();
}
