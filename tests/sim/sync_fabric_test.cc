/** @file Both fabrics: waits, posted broadcasts, coalescing, RMW. */

#include <gtest/gtest.h>

#include <vector>

#include "sim/sync_fabric.hh"

using namespace psync::sim;

namespace {

struct RegRig
{
    EventQueue eq;
    Bus bus;
    RegisterSyncFabric fab;

    explicit RegRig(unsigned capacity = 32, bool coalesce = true,
                    Tick bus_cycles = 1)
        : bus(eq, "sync_bus", bus_cycles),
          fab(eq, bus, capacity, coalesce)
    {}
};

struct MemRig
{
    EventQueue eq;
    Bus bus;
    Memory mem;
    MemorySyncFabric fab;

    explicit MemRig(Tick poll = 4, bool cached = false)
        : bus(eq, "data_bus", 1), mem(eq, bus, MemoryConfig{}),
          fab(eq, mem, Addr(1) << 40, poll, cached)
    {}
};

} // namespace

TEST(RegisterFabricTest, AllocateInitializes)
{
    RegRig rig;
    SyncVarId base = rig.fab.allocate(4, 7);
    for (unsigned v = 0; v < 4; ++v)
        EXPECT_EQ(rig.fab.peek(base + v), 7u);
    EXPECT_EQ(rig.fab.allocated(), 4u);
}

TEST(RegisterFabricTest, CapacityEnforced)
{
    RegRig rig(4);
    rig.fab.allocate(4, 0);
    EXPECT_EXIT(rig.fab.allocate(1, 0),
                ::testing::ExitedWithCode(1), "out of registers");
}

TEST(RegisterFabricTest, ImmediateWaitWhenSatisfied)
{
    RegRig rig;
    SyncVarId v = rig.fab.allocate(1, 10);
    Tick waited = maxTick;
    rig.eq.schedule(0, [&]() {
        rig.fab.waitGE(0, v, 5, [&](Tick w) { waited = w; });
    });
    rig.eq.run();
    EXPECT_EQ(waited, 0u);
}

TEST(RegisterFabricTest, WaiterWakesOnBroadcast)
{
    RegRig rig;
    SyncVarId v = rig.fab.allocate(1, 0);
    Tick waited = maxTick;
    Tick woke_at = 0;
    rig.eq.schedule(0, [&]() {
        rig.fab.waitGE(1, v, 3, [&](Tick w) {
            waited = w;
            woke_at = rig.eq.now();
        });
    });
    rig.eq.schedule(10, [&]() { rig.fab.write(0, v, 3, []() {}); });
    rig.eq.run();
    // Broadcast commits at 11 (grant 10 + 1 bus cycle).
    EXPECT_EQ(woke_at, 11u);
    EXPECT_EQ(waited, 11u);
    EXPECT_EQ(rig.fab.broadcasts(), 1u);
}

TEST(RegisterFabricTest, WaiterStaysWhenThresholdUnmet)
{
    RegRig rig;
    SyncVarId v = rig.fab.allocate(1, 0);
    bool woke = false;
    rig.eq.schedule(0, [&]() {
        rig.fab.waitGE(1, v, 5, [&](Tick) { woke = true; });
    });
    rig.eq.schedule(10, [&]() { rig.fab.write(0, v, 3, []() {}); });
    // The event queue drains (the waiter is parked, not polling),
    // but the wait never completes.
    EXPECT_TRUE(rig.eq.run(1000));
    EXPECT_FALSE(woke);
}

TEST(RegisterFabricTest, CoalescingCollapsesPendingWrites)
{
    RegRig rig(32, true, 8); // slow bus so writes pile up
    SyncVarId v = rig.fab.allocate(1, 0);
    rig.eq.schedule(0, [&]() {
        rig.fab.write(0, v, 1, []() {});
        rig.fab.write(0, v, 2, []() {});
        rig.fab.write(0, v, 3, []() {});
    });
    rig.eq.run();
    // First write wins the bus immediately; writes 2 and 3 coalesce
    // into one pending broadcast carrying the final value.
    EXPECT_EQ(rig.fab.peek(v), 3u);
    EXPECT_EQ(rig.fab.broadcasts(), 2u);
    EXPECT_EQ(rig.fab.coalescedWrites(), 1u);
}

TEST(RegisterFabricTest, NoCoalescingBroadcastsEverything)
{
    RegRig rig(32, false, 8);
    SyncVarId v = rig.fab.allocate(1, 0);
    rig.eq.schedule(0, [&]() {
        rig.fab.write(0, v, 1, []() {});
        rig.fab.write(0, v, 2, []() {});
        rig.fab.write(0, v, 3, []() {});
    });
    rig.eq.run();
    EXPECT_EQ(rig.fab.peek(v), 3u);
    EXPECT_EQ(rig.fab.broadcasts(), 3u);
    EXPECT_EQ(rig.fab.coalescedWrites(), 0u);
}

TEST(RegisterFabricTest, DifferentProcessorsDoNotCoalesce)
{
    RegRig rig(32, true, 8);
    SyncVarId v = rig.fab.allocate(2, 0);
    rig.eq.schedule(0, [&]() {
        rig.fab.write(0, v, 1, []() {});
        rig.fab.write(1, v, 2, []() {});
    });
    rig.eq.run();
    EXPECT_EQ(rig.fab.broadcasts(), 2u);
    EXPECT_EQ(rig.fab.coalescedWrites(), 0u);
}

TEST(RegisterFabricTest, FetchIncSerializesOnBus)
{
    RegRig rig;
    SyncVarId v = rig.fab.allocate(1, 0);
    std::vector<SyncWord> olds;
    rig.eq.schedule(0, [&]() {
        for (unsigned p = 0; p < 4; ++p) {
            rig.fab.fetchInc(p, v, [&](SyncWord o) {
                olds.push_back(o);
            });
        }
    });
    rig.eq.run();
    ASSERT_EQ(olds.size(), 4u);
    for (SyncWord k = 0; k < 4; ++k)
        EXPECT_EQ(olds[k], k);
}

TEST(MemoryFabricTest, WaitPollsUntilSatisfied)
{
    MemRig rig(4);
    SyncVarId v = rig.fab.allocate(1, 0);
    Tick waited = 0;
    bool woke = false;
    rig.eq.schedule(0, [&]() {
        rig.fab.waitGE(0, v, 1, [&](Tick w) {
            waited = w;
            woke = true;
        });
    });
    rig.eq.schedule(40, [&]() { rig.fab.write(1, v, 1, []() {}); });
    rig.eq.run();
    EXPECT_TRUE(woke);
    EXPECT_GE(waited, 40u);
    EXPECT_GT(rig.fab.polls(), 3u); // several polls = real traffic
}

TEST(MemoryFabricTest, CachedSpinOnlyRefetchesOnInvalidation)
{
    MemRig rig(4, true);
    SyncVarId v = rig.fab.allocate(1, 0);
    bool woke = false;
    rig.eq.schedule(0, [&]() {
        rig.fab.waitGE(0, v, 1, [&](Tick) { woke = true; });
    });
    // Long quiet period: a polling spinner would issue ~25 reads;
    // a cached spinner issues one, parks, and re-fetches once.
    rig.eq.schedule(100, [&]() { rig.fab.write(1, v, 1, []() {}); });
    rig.eq.run();
    EXPECT_TRUE(woke);
    EXPECT_EQ(rig.fab.polls(), 2u);
}

TEST(MemoryFabricTest, CachedSpinStaysParkedOnInsufficientWrite)
{
    MemRig rig(4, true);
    SyncVarId v = rig.fab.allocate(1, 0);
    bool woke = false;
    rig.eq.schedule(0, [&]() {
        rig.fab.waitGE(0, v, 5, [&](Tick) { woke = true; });
    });
    rig.eq.schedule(50, [&]() { rig.fab.write(1, v, 2, []() {}); });
    rig.eq.run();
    EXPECT_FALSE(woke);
    EXPECT_EQ(rig.fab.polls(), 2u); // initial + one refill

    // A later sufficient write releases it.
    rig.eq.schedule(rig.eq.now() + 1, [&]() {
        rig.fab.write(1, v, 7, []() {});
    });
    rig.eq.run();
    EXPECT_TRUE(woke);
}

TEST(MemoryFabricTest, ReleaseBurstQueuesAtHotModule)
{
    MemRig rig(4, true);
    SyncVarId v = rig.fab.allocate(1, 0);
    unsigned woke = 0;
    rig.eq.schedule(0, [&]() {
        for (unsigned p = 0; p < 8; ++p)
            rig.fab.waitGE(p, v, 1, [&](Tick) { ++woke; });
    });
    rig.eq.schedule(60, [&]() { rig.fab.write(8, v, 1, []() {}); });
    rig.eq.run();
    EXPECT_EQ(woke, 8u);
    // The 8 simultaneous refills serialize at the word's module.
    EXPECT_GT(rig.mem.moduleQueueDelay(), 0u);
}

TEST(MemoryFabricTest, ParkedWaitersWakeInParkOrder)
{
    MemRig rig(4, true);
    SyncVarId v = rig.fab.allocate(1, 0);
    std::vector<unsigned> woken;
    rig.eq.schedule(0, [&]() {
        for (unsigned p = 0; p < 8; ++p) {
            rig.fab.waitGE(p, v, 1, [&woken, p](Tick) {
                woken.push_back(p);
            });
        }
    });
    rig.eq.schedule(60, [&]() { rig.fab.write(8, v, 1, []() {}); });
    rig.eq.run();
    // The wait list is FIFO: spinners re-fetch (and so complete) in
    // the order they parked, which is the order they first polled.
    ASSERT_EQ(woken.size(), 8u);
    for (unsigned p = 0; p < 8; ++p)
        EXPECT_EQ(woken[p], p);
}

TEST(MemoryFabricTest, ReparkedWaitersKeepFifoOrder)
{
    MemRig rig(4, true);
    SyncVarId v = rig.fab.allocate(1, 0);
    std::vector<unsigned> woken;
    rig.eq.schedule(0, [&]() {
        for (unsigned p = 0; p < 4; ++p) {
            rig.fab.waitGE(p, v, 5, [&woken, p](Tick) {
                woken.push_back(p);
            });
        }
    });
    // An insufficient write wakes every spinner for a refill; all
    // re-park, and a later sufficient write must still release them
    // in the original order.
    rig.eq.schedule(50, [&]() { rig.fab.write(4, v, 2, []() {}); });
    rig.eq.schedule(200, [&]() { rig.fab.write(4, v, 9, []() {}); });
    rig.eq.run();
    ASSERT_EQ(woken.size(), 4u);
    for (unsigned p = 0; p < 4; ++p)
        EXPECT_EQ(woken[p], p);
}

TEST(MemoryFabricTest, KeyedRetriesWakeInParkOrder)
{
    MemRig rig(4, true);
    SyncVarId key = rig.fab.allocate(1, 0);
    std::vector<unsigned> done;
    rig.eq.schedule(0, [&]() {
        // All six waiters need key >= 1; the key starts at 0, so
        // all park at the module.
        for (unsigned p = 0; p < 6; ++p) {
            rig.fab.keyedAccess(p, key, 1, [&done, p](Tick) {
                done.push_back(p);
            });
        }
    });
    // A releasing access passes immediately (threshold 0) and bumps
    // the key; each retried waiter then passes in FIFO park order,
    // bumping the key again for the next.
    rig.eq.schedule(80, [&]() {
        rig.fab.keyedAccess(6, key, 0, [&done](Tick) {
            done.push_back(99);
        });
    });
    rig.eq.run();
    ASSERT_EQ(done.size(), 7u);
    EXPECT_EQ(done[0], 99u);
    for (unsigned p = 0; p < 6; ++p)
        EXPECT_EQ(done[p + 1], p);
    EXPECT_EQ(rig.fab.peek(key), 7u);
}

TEST(MemoryFabricTest, WriteIsGloballyVisibleAtCompletion)
{
    MemRig rig;
    SyncVarId v = rig.fab.allocate(1, 0);
    SyncWord seen = 123;
    rig.eq.schedule(0, [&]() {
        rig.fab.write(0, v, 9, [&]() { seen = rig.fab.peek(v); });
    });
    rig.eq.run();
    EXPECT_EQ(seen, 9u);
}

TEST(MemoryFabricTest, FetchIncAtomicAcrossProcessors)
{
    MemRig rig;
    SyncVarId v = rig.fab.allocate(1, 0);
    std::vector<SyncWord> olds;
    rig.eq.schedule(0, [&]() {
        for (unsigned p = 0; p < 6; ++p) {
            rig.fab.fetchInc(p, v, [&](SyncWord o) {
                olds.push_back(o);
            });
        }
    });
    rig.eq.run();
    ASSERT_EQ(olds.size(), 6u);
    for (SyncWord k = 0; k < 6; ++k)
        EXPECT_EQ(olds[k], k);
    EXPECT_EQ(rig.fab.peek(v), 6u);
}

TEST(PcWordOrdering, WaitGEUsesPackedLexOrder)
{
    RegRig rig;
    SyncVarId v = rig.fab.allocate(1, PcWord::pack(3, 5));
    Tick waited = maxTick;
    rig.eq.schedule(0, [&]() {
        // <3,5> >= <3,2> holds; <3,5> >= <4,0> does not.
        rig.fab.waitGE(0, v, PcWord::pack(3, 2),
                       [&](Tick w) { waited = w; });
    });
    rig.eq.run();
    EXPECT_EQ(waited, 0u);

    bool woke = false;
    rig.eq.schedule(rig.eq.now(), [&]() {
        rig.fab.waitGE(0, v, PcWord::pack(4, 0),
                       [&](Tick) { woke = true; });
    });
    rig.eq.run(rig.eq.now() + 100);
    EXPECT_FALSE(woke);
}
