/** @file Determinism and distribution sanity of the RNG. */

#include <gtest/gtest.h>

#include "sim/rng.hh"

using namespace psync::sim;

TEST(RngTest, SameSeedSameSequence)
{
    Rng a(42), b(42);
    for (int k = 0; k < 100; ++k)
        EXPECT_EQ(a.next(), b.next());
}

TEST(RngTest, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int k = 0; k < 64; ++k) {
        if (a.next() == b.next())
            ++same;
    }
    EXPECT_LT(same, 2);
}

TEST(RngTest, RangeInclusive)
{
    Rng rng(7);
    bool saw_lo = false, saw_hi = false;
    for (int k = 0; k < 1000; ++k) {
        std::uint64_t v = rng.range(3, 6);
        EXPECT_GE(v, 3u);
        EXPECT_LE(v, 6u);
        saw_lo = saw_lo || v == 3;
        saw_hi = saw_hi || v == 6;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(RngTest, UniformInUnitInterval)
{
    Rng rng(11);
    double sum = 0;
    for (int k = 0; k < 10000; ++k) {
        double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(RngTest, ChanceRespectsBias)
{
    Rng rng(13);
    int hits = 0;
    for (int k = 0; k < 10000; ++k)
        hits += rng.chance(0.25) ? 1 : 0;
    EXPECT_NEAR(hits / 10000.0, 0.25, 0.03);
}
