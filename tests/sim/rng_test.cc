/** @file Determinism and distribution sanity of the RNG. */

#include <gtest/gtest.h>

#include <vector>

#include "sim/rng.hh"

using namespace psync::sim;

TEST(RngTest, SameSeedSameSequence)
{
    Rng a(42), b(42);
    for (int k = 0; k < 100; ++k)
        EXPECT_EQ(a.next(), b.next());
}

TEST(RngTest, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int k = 0; k < 64; ++k) {
        if (a.next() == b.next())
            ++same;
    }
    EXPECT_LT(same, 2);
}

TEST(RngTest, RangeInclusive)
{
    Rng rng(7);
    bool saw_lo = false, saw_hi = false;
    for (int k = 0; k < 1000; ++k) {
        std::uint64_t v = rng.range(3, 6);
        EXPECT_GE(v, 3u);
        EXPECT_LE(v, 6u);
        saw_lo = saw_lo || v == 3;
        saw_hi = saw_hi || v == 6;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(RngTest, BelowStaysInBoundAndHitsEveryValue)
{
    Rng rng(5);
    std::vector<int> counts(7, 0);
    for (int k = 0; k < 7000; ++k) {
        std::uint64_t v = rng.below(7);
        ASSERT_LT(v, 7u);
        ++counts[v];
    }
    // Lemire rejection is exactly uniform; with 1000 expected per
    // residue a 25% band is a loose 8-sigma check.
    for (int v = 0; v < 7; ++v)
        EXPECT_NEAR(counts[v], 1000, 250) << "residue " << v;
}

TEST(RngTest, BelowHandlesExtremeBounds)
{
    Rng rng(17);
    for (int k = 0; k < 100; ++k)
        EXPECT_EQ(rng.below(1), 0u);
    // A bound just past 2^63 forces the rejection path to matter:
    // every accepted draw must still be in range.
    std::uint64_t huge = (1ull << 63) + 12345;
    for (int k = 0; k < 100; ++k)
        EXPECT_LT(rng.below(huge), huge);
}

TEST(RngTest, RangeCoversFullSixtyFourBits)
{
    // hi - lo + 1 wraps to zero here; range() must not divide by it
    // (the old modulo form did) and every value is fair game.
    Rng rng(23);
    bool high_bit = false;
    for (int k = 0; k < 64; ++k) {
        std::uint64_t v = rng.range(0, ~0ull);
        high_bit = high_bit || (v >> 63);
    }
    EXPECT_TRUE(high_bit);
}

TEST(RngTest, SinglePointRange)
{
    Rng rng(29);
    for (int k = 0; k < 10; ++k)
        EXPECT_EQ(rng.range(42, 42), 42u);
}

TEST(RngTest, UniformInUnitInterval)
{
    Rng rng(11);
    double sum = 0;
    for (int k = 0; k < 10000; ++k) {
        double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(RngTest, ChanceRespectsBias)
{
    Rng rng(13);
    int hits = 0;
    for (int k = 0; k < 10000; ++k)
        hits += rng.chance(0.25) ? 1 : 0;
    EXPECT_NEAR(hits / 10000.0, 0.25, 0.03);
}
