/** @file <owner, step> packing and its ordering (section 6). */

#include <gtest/gtest.h>

#include "sim/types.hh"

using namespace psync::sim;

TEST(PcWordTest, PackUnpackRoundTrip)
{
    SyncWord w = PcWord::pack(123456, 789);
    EXPECT_EQ(PcWord::owner(w), 123456u);
    EXPECT_EQ(PcWord::step(w), 789u);
}

TEST(PcWordTest, OrderingMatchesPaperDefinition)
{
    // <w,x> >= <y,z> iff w>y, or w==y and x>=z.
    EXPECT_GT(PcWord::pack(2, 0), PcWord::pack(1, 999));
    EXPECT_GE(PcWord::pack(3, 5), PcWord::pack(3, 5));
    EXPECT_GT(PcWord::pack(3, 6), PcWord::pack(3, 5));
    EXPECT_LT(PcWord::pack(3, 4), PcWord::pack(3, 5));
    EXPECT_LT(PcWord::pack(2, 999999), PcWord::pack(3, 0));
}

TEST(PcWordTest, TransferValueCoversAllSteps)
{
    // transfer_PC writes <i+X, 0>, which must satisfy any waiter on
    // <i, step> for every step.
    SyncWord transferred = PcWord::pack(10 + 4, 0);
    for (std::uint32_t step = 0; step < 100; ++step)
        EXPECT_GE(transferred, PcWord::pack(10, step));
}

TEST(PcWordTest, MonotoneUpdateSequence)
{
    // set_PC(1), set_PC(2), ..., release_PC: strictly increasing.
    SyncWord prev = PcWord::pack(7, 0);
    for (std::uint32_t step = 1; step <= 5; ++step) {
        SyncWord next = PcWord::pack(7, step);
        EXPECT_GT(next, prev);
        prev = next;
    }
    EXPECT_GT(PcWord::pack(7 + 16, 0), prev);
}

TEST(PcWordTest, ZeroIsMinimal)
{
    EXPECT_EQ(PcWord::pack(0, 0), 0u);
}
