/** @file Deterministic ordering and draining of the DES core. */

#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hh"

using namespace psync::sim;

TEST(EventQueueTest, RunsInTickOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(30, [&]() { order.push_back(3); });
    eq.schedule(10, [&]() { order.push_back(1); });
    eq.schedule(20, [&]() { order.push_back(2); });
    EXPECT_TRUE(eq.run());
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 30u);
}

TEST(EventQueueTest, TiesBreakByInsertionOrder)
{
    EventQueue eq;
    std::vector<int> order;
    for (int k = 0; k < 8; ++k)
        eq.schedule(5, [&order, k]() { order.push_back(k); });
    EXPECT_TRUE(eq.run());
    for (int k = 0; k < 8; ++k)
        EXPECT_EQ(order[k], k);
}

TEST(EventQueueTest, HandlersCanScheduleMoreEvents)
{
    EventQueue eq;
    int fired = 0;
    std::function<void()> chain = [&]() {
        ++fired;
        if (fired < 5)
            eq.scheduleIn(2, chain);
    };
    eq.schedule(0, chain);
    EXPECT_TRUE(eq.run());
    EXPECT_EQ(fired, 5);
    EXPECT_EQ(eq.now(), 8u);
}

TEST(EventQueueTest, LimitStopsEarly)
{
    EventQueue eq;
    bool late = false;
    eq.schedule(5, []() {});
    eq.schedule(100, [&]() { late = true; });
    EXPECT_FALSE(eq.run(50));
    EXPECT_FALSE(late);
    EXPECT_EQ(eq.now(), 50u);
}

TEST(EventQueueTest, ZeroDelayRunsAtSameTick)
{
    EventQueue eq;
    Tick seen = maxTick;
    eq.schedule(7, [&]() {
        eq.scheduleIn(0, [&]() { seen = eq.now(); });
    });
    EXPECT_TRUE(eq.run());
    EXPECT_EQ(seen, 7u);
}

TEST(EventQueueTest, CountsExecutedEvents)
{
    EventQueue eq;
    for (int k = 0; k < 10; ++k)
        eq.schedule(k, []() {});
    eq.run();
    EXPECT_EQ(eq.eventsExecuted(), 10u);
}

TEST(EventQueueTest, SchedulingInPastPanics)
{
    EventQueue eq;
    eq.schedule(10, [&eq]() {
        EXPECT_DEATH(eq.schedule(5, []() {}), "past");
    });
    eq.run();
}
