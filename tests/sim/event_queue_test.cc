/** @file Deterministic ordering and draining of the DES core. */

#include <gtest/gtest.h>

#include <array>
#include <memory>
#include <utility>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/rng.hh"

using namespace psync::sim;

TEST(EventQueueTest, RunsInTickOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(30, [&]() { order.push_back(3); });
    eq.schedule(10, [&]() { order.push_back(1); });
    eq.schedule(20, [&]() { order.push_back(2); });
    EXPECT_TRUE(eq.run());
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 30u);
}

TEST(EventQueueTest, TiesBreakByInsertionOrder)
{
    EventQueue eq;
    std::vector<int> order;
    for (int k = 0; k < 8; ++k)
        eq.schedule(5, [&order, k]() { order.push_back(k); });
    EXPECT_TRUE(eq.run());
    for (int k = 0; k < 8; ++k)
        EXPECT_EQ(order[k], k);
}

TEST(EventQueueTest, HandlersCanScheduleMoreEvents)
{
    EventQueue eq;
    int fired = 0;
    std::function<void()> chain = [&]() {
        ++fired;
        if (fired < 5)
            eq.scheduleIn(2, chain);
    };
    eq.schedule(0, chain);
    EXPECT_TRUE(eq.run());
    EXPECT_EQ(fired, 5);
    EXPECT_EQ(eq.now(), 8u);
}

TEST(EventQueueTest, LimitStopsEarly)
{
    EventQueue eq;
    bool late = false;
    eq.schedule(5, []() {});
    eq.schedule(100, [&]() { late = true; });
    EXPECT_FALSE(eq.run(50));
    EXPECT_FALSE(late);
    EXPECT_EQ(eq.now(), 50u);
}

TEST(EventQueueTest, ZeroDelayRunsAtSameTick)
{
    EventQueue eq;
    Tick seen = maxTick;
    eq.schedule(7, [&]() {
        eq.scheduleIn(0, [&]() { seen = eq.now(); });
    });
    EXPECT_TRUE(eq.run());
    EXPECT_EQ(seen, 7u);
}

TEST(EventQueueTest, CountsExecutedEvents)
{
    EventQueue eq;
    for (int k = 0; k < 10; ++k)
        eq.schedule(k, []() {});
    eq.run();
    EXPECT_EQ(eq.eventsExecuted(), 10u);
}

TEST(EventQueueTest, SchedulingInPastPanics)
{
    EventQueue eq;
    eq.schedule(10, [&eq]() {
        EXPECT_DEATH(eq.schedule(5, []() {}), "past");
    });
    eq.run();
}

// -- Calendar-ring specifics: the ring window is 1024 ticks, so
// these schedules force bucket wrap-around and far-heap migration.

TEST(EventQueueTest, FarFutureEventsCrossRingWindow)
{
    EventQueue eq(EventCoreKind::calendar);
    std::vector<Tick> fired;
    for (Tick when : {Tick(1000000), Tick(4096), Tick(1024),
                      Tick(1023), Tick(0)})
        eq.schedule(when, [&fired, &eq]() {
            fired.push_back(eq.now());
        });
    EXPECT_TRUE(eq.run());
    EXPECT_EQ(fired, (std::vector<Tick>{0, 1023, 1024, 4096,
                                        1000000}));
    EXPECT_EQ(eq.eventsExecuted(), 5u);
}

TEST(EventQueueTest, RolloverChainsAcrossManyRingWraps)
{
    EventQueue eq(EventCoreKind::calendar);
    // Steps of 700 wrap the 1024-tick ring every other event and
    // land in every bucket alignment.
    int fired = 0;
    std::function<void()> chain = [&]() {
        ++fired;
        if (fired < 50)
            eq.scheduleIn(700, chain);
    };
    eq.schedule(0, chain);
    EXPECT_TRUE(eq.run());
    EXPECT_EQ(fired, 50);
    EXPECT_EQ(eq.now(), 49u * 700u);
}

TEST(EventQueueTest, SameFarTickPreservesInsertionOrder)
{
    EventQueue eq(EventCoreKind::calendar);
    std::vector<int> order;
    // All beyond the ring window, same tick: the far heap must
    // break the tie by seq, and migration must keep that order.
    for (int k = 0; k < 16; ++k)
        eq.schedule(5000, [&order, k]() { order.push_back(k); });
    EXPECT_TRUE(eq.run());
    for (int k = 0; k < 16; ++k)
        EXPECT_EQ(order[k], k);
}

TEST(EventQueueTest, NearAndFarInsertsAtOneTickKeepSeqOrder)
{
    EventQueue eq(EventCoreKind::calendar);
    std::vector<int> order;
    // The first insert lands in the far heap (delta 2000); the
    // later ones go straight into the ring bucket because now() is
    // close enough by then. The migrated far event was inserted
    // first, so it must still run first.
    eq.schedule(2000, [&order]() { order.push_back(0); });
    eq.schedule(1500, [&eq, &order]() {
        eq.schedule(2000, [&order]() { order.push_back(1); });
        eq.schedule(2000, [&order]() { order.push_back(2); });
    });
    EXPECT_TRUE(eq.run());
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(EventQueueTest, ClearDropsPendingEvents)
{
    EventQueue eq;
    bool ran = false;
    eq.schedule(3, [&ran]() { ran = true; });
    eq.schedule(5000, [&ran]() { ran = true; });
    EXPECT_EQ(eq.pendingEvents(), 2u);
    eq.clear();
    EXPECT_TRUE(eq.empty());
    EXPECT_EQ(eq.pendingEvents(), 0u);
    EXPECT_TRUE(eq.run());
    EXPECT_FALSE(ran);
}

TEST(EventQueueTest, LimitStopThenClearReleasesOwningCaptures)
{
    // A tick-limit stop leaves undrained handlers; clear() (also
    // called by the destructor) must destroy them so owning
    // captures release their memory — ASan fails this test on a
    // leak.
    EventQueue eq;
    auto near_payload = std::make_shared<std::vector<int>>(100, 1);
    auto far_payload = std::make_shared<std::vector<int>>(100, 2);
    eq.schedule(10, []() {});
    eq.schedule(100, [near_payload]() { (void)near_payload; });
    eq.schedule(90000, [far_payload]() { (void)far_payload; });
    EXPECT_FALSE(eq.run(50));
    EXPECT_EQ(eq.pendingEvents(), 2u);
    eq.clear();
    EXPECT_TRUE(eq.empty());
    EXPECT_EQ(near_payload.use_count(), 1);
    EXPECT_EQ(far_payload.use_count(), 1);
}

TEST(EventQueueTest, DestructorReleasesPendingHandlers)
{
    auto payload = std::make_shared<int>(7);
    {
        EventQueue eq;
        eq.schedule(10, []() {});
        eq.schedule(123456, [payload]() { (void)payload; });
        EXPECT_FALSE(eq.run(20));
    }
    EXPECT_EQ(payload.use_count(), 1);
}

TEST(EventQueueTest, CountsHeapFallbackCaptures)
{
    EventQueue eq;
    std::array<char, handlerInlineBytes + 16> big{};
    eq.schedule(1, [big]() { (void)big; });
    eq.schedule(2, []() {});
    EXPECT_TRUE(eq.run());
    EXPECT_EQ(eq.heapFallbackEvents(), 1u);
    EXPECT_EQ(eq.eventsExecuted(), 2u);
}

TEST(EventQueueTest, SimulatorHandlersFitInline)
{
    // The de-nesting rule: every hot-path handler captures at most
    // {this, slot} plus a couple of ticks. A full machine run is
    // asserted allocation-free elsewhere; here, pin the contract
    // that a generous capture still fits.
    struct BigCapture
    {
        void *self;
        std::uint64_t ticks[8];
        std::uint32_t slots[4];
    };
    static_assert(sizeof(BigCapture) <= handlerInlineBytes,
                  "hot-path captures must stay inline");
    EventQueue eq;
    BigCapture c{};
    eq.schedule(1, [c]() { (void)c; });
    eq.run();
    EXPECT_EQ(eq.heapFallbackEvents(), 0u);
}

// -- Core equivalence at the unit level: a randomized schedule must
// execute in the identical (when, seq) order on both cores.

namespace {

struct FiredEvent
{
    Tick when;
    int id;
    bool operator==(const FiredEvent &o) const
    {
        return when == o.when && id == o.id;
    }
};

std::vector<FiredEvent>
runRandomSchedule(EventCoreKind core)
{
    EventQueue eq(core);
    Rng rng(2024);
    std::vector<FiredEvent> fired;
    int next_id = 0;

    // Handlers reschedule with deltas straddling the ring window
    // (0..5000 ticks), plus same-tick ties.
    std::function<void(int)> fire = [&](int depth) {
        fired.push_back({eq.now(), next_id});
        ++next_id;
        if (depth <= 0)
            return;
        unsigned fanout = 1 + rng.below(2);
        for (unsigned k = 0; k < fanout; ++k) {
            Tick delta = rng.below(5000);
            eq.scheduleIn(delta, [&fire, depth]() {
                fire(depth - 1);
            });
        }
    };
    for (int k = 0; k < 20; ++k) {
        Tick when = rng.below(3000);
        eq.schedule(when, [&fire]() { fire(4); });
    }
    EXPECT_TRUE(eq.run());
    return fired;
}

} // namespace

TEST(EventCoreEquivalence, RandomScheduleIdenticalOnBothCores)
{
    auto calendar = runRandomSchedule(EventCoreKind::calendar);
    auto heap = runRandomSchedule(EventCoreKind::heap);
    ASSERT_EQ(calendar.size(), heap.size());
    for (std::size_t i = 0; i < calendar.size(); ++i) {
        EXPECT_EQ(calendar[i].when, heap[i].when) << "at event " << i;
        EXPECT_EQ(calendar[i].id, heap[i].id) << "at event " << i;
    }
}
