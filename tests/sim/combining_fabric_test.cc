/**
 * @file
 * Combining sync fabric semantics: fetch&add decombining hands out
 * the serialized pre-value sequence, parked polls survive until
 * their release, and combining changes timing but never values.
 */

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "sim/combining_fabric.hh"
#include "sim/event_queue.hh"

using namespace psync::sim;

TEST(CombiningFabricTest, FetchIncBurstHandsOutUniquePreValues)
{
    EventQueue eq;
    CombiningSyncFabric fab(eq, 256, 8, 1, 1, 4);
    SyncVarId var = fab.allocate(1, 0);

    std::multiset<SyncWord> pre;
    eq.schedule(0, [&]() {
        for (ProcId p = 0; p < 256; ++p) {
            fab.fetchInc(p, var,
                         [&](SyncWord v) { pre.insert(v); });
        }
    });
    eq.run();

    ASSERT_EQ(pre.size(), 256u);
    SyncWord expect = 0;
    for (SyncWord v : pre)
        EXPECT_EQ(v, expect++);
    EXPECT_EQ(fab.peek(var), 256u);
    // The burst actually combined in the network: far fewer module
    // visits than transactions.
    EXPECT_GT(fab.net().combinedTotal(), 0u);
    EXPECT_LT(fab.moduleOps(fab.moduleOf(var)),
              fab.net().transactions());
}

TEST(CombiningFabricTest, CombiningCollapsesTheSerialBottleneck)
{
    // 256 fetch&adds of one word. Serialized at a 4-cycle module
    // they would cost over 1000 cycles; the combine tree needs one
    // module visit plus the network round trip.
    EventQueue eq;
    CombiningSyncFabric fab(eq, 256, 8, 1, 1, 4);
    SyncVarId var = fab.allocate(1, 0);
    unsigned done = 0;
    eq.schedule(0, [&]() {
        for (ProcId p = 0; p < 256; ++p)
            fab.fetchInc(p, var, [&](SyncWord) { ++done; });
    });
    eq.run();
    EXPECT_EQ(done, 256u);
    EXPECT_LT(eq.now(), 256u * 4u);
}

TEST(CombiningFabricTest, WaitParksUntilReleasingWrite)
{
    EventQueue eq;
    CombiningSyncFabric fab(eq, 4, 2, 1, 1, 2);
    SyncVarId var = fab.allocate(1, 0);

    Tick woken_at = 0;
    Tick waited = 0;
    eq.schedule(0, [&]() {
        fab.waitGE(0, var, 1, [&](Tick w) {
            woken_at = eq.now();
            waited = w;
        });
    });
    bool was_parked = false;
    eq.schedule(20, [&]() { was_parked = fab.isParked(0); });
    eq.schedule(50, [&]() { fab.write(1, var, 1, []() {}); });
    eq.run();

    EXPECT_TRUE(was_parked);
    EXPECT_FALSE(fab.isParked(0));
    EXPECT_GE(woken_at, 50u);
    EXPECT_GT(waited, 0u);
    EXPECT_EQ(fab.parkedWaits(), 1u);
}

TEST(CombiningFabricTest, MassWakeupReleasesEveryWaiter)
{
    EventQueue eq;
    CombiningSyncFabric fab(eq, 512, 8, 1, 1, 4);
    SyncVarId var = fab.allocate(1, 0);

    unsigned woken = 0;
    eq.schedule(0, [&]() {
        for (ProcId p = 1; p < 512; ++p)
            fab.waitGE(p, var, 1, [&](Tick) { ++woken; });
    });
    eq.schedule(100, [&]() { fab.write(0, var, 1, []() {}); });
    eq.run();

    EXPECT_EQ(woken, 511u);
    EXPECT_EQ(fab.parkedWaits(), 511u);
    for (ProcId p = 1; p < 512; ++p)
        EXPECT_FALSE(fab.isParked(p));
}

TEST(CombiningFabricTest, ThresholdsReleaseInOrder)
{
    // Waiters with ascending thresholds wake as successive writes
    // pass them; a write below a threshold must not wake it.
    EventQueue eq;
    CombiningSyncFabric fab(eq, 8, 2, 1, 1, 2);
    SyncVarId var = fab.allocate(1, 0);

    std::vector<unsigned> order;
    eq.schedule(0, [&]() {
        fab.waitGE(1, var, 2, [&](Tick) { order.push_back(2); });
        fab.waitGE(2, var, 1, [&](Tick) { order.push_back(1); });
    });
    eq.schedule(40, [&]() { fab.write(0, var, 1, []() {}); });
    eq.schedule(80, [&]() { fab.write(0, var, 2, []() {}); });
    eq.run();

    ASSERT_EQ(order.size(), 2u);
    EXPECT_EQ(order[0], 1u);
    EXPECT_EQ(order[1], 2u);
}

TEST(CombiningFabricTest, ValuesSurviveCombiningUnderInterleaving)
{
    // Mixed traffic: increments and polls of the same hot word,
    // issued over several cycles so merges chain through held
    // wait-buffer entries. The pre-value sequence must still be
    // exactly 0..N-1.
    EventQueue eq;
    CombiningSyncFabric fab(eq, 64, 4, 1, 1, 3);
    SyncVarId var = fab.allocate(1, 0);

    std::multiset<SyncWord> pre;
    unsigned woken = 0;
    for (unsigned round = 0; round < 4; ++round) {
        eq.schedule(round * 2, [&, round]() {
            for (ProcId p = 0; p < 16; ++p) {
                ProcId who = round * 16 + p;
                fab.fetchInc(who, var,
                             [&](SyncWord v) { pre.insert(v); });
            }
        });
    }
    eq.schedule(1, [&]() {
        fab.waitGE(0, var, 64, [&](Tick) { ++woken; });
    });
    eq.run();

    ASSERT_EQ(pre.size(), 64u);
    SyncWord expect = 0;
    for (SyncWord v : pre)
        EXPECT_EQ(v, expect++);
    EXPECT_EQ(fab.peek(var), 64u);
    EXPECT_EQ(woken, 1u);
}
