/** @file Processor op interpretation and cycle accounting. */

#include <gtest/gtest.h>

#include <vector>

#include "sim/machine.hh"

using namespace psync::sim;

namespace {

/** Dispatch a fixed program list to processor 0, nothing to rest. */
Processor::Dispatch
oneProcDispatch(const std::vector<Program> &programs, size_t &next)
{
    return [&programs, &next](ProcId who,
                              std::function<void(const Program *)> cb) {
        if (who != 0 || next >= programs.size()) {
            cb(nullptr);
            return;
        }
        cb(&programs[next++]);
    };
}

MachineConfig
regConfig(unsigned procs = 2)
{
    MachineConfig cfg;
    cfg.numProcs = procs;
    cfg.fabric = FabricKind::registers;
    cfg.syncRegisters = 64;
    return cfg;
}

} // namespace

TEST(ProcessorTest, ComputeAccumulatesBusyCycles)
{
    Machine m(regConfig(1));
    std::vector<Program> progs(1);
    progs[0].iter = 1;
    progs[0].ops = {Op::mkCompute(10), Op::mkCompute(5)};
    size_t next = 0;
    ASSERT_TRUE(m.run(oneProcDispatch(progs, next)));
    EXPECT_EQ(m.proc(0).computeCycles(), 15u);
    EXPECT_EQ(m.proc(0).programsRun(), 1u);
    EXPECT_EQ(m.completionTick(), 15u);
}

TEST(ProcessorTest, DataAccessCountsStall)
{
    Machine m(regConfig(1));
    std::vector<Program> progs(1);
    progs[0].iter = 1;
    progs[0].ops = {Op::mkData(false, 64, 0),
                    Op::mkData(true, 128, 0)};
    size_t next = 0;
    ASSERT_TRUE(m.run(oneProcDispatch(progs, next)));
    // Each access: 1 bus + 4 service cycles.
    EXPECT_EQ(m.proc(0).stallCycles(), 10u);
    EXPECT_EQ(m.memory().totalAccesses(), 2u);
}

TEST(ProcessorTest, WaitGESpinsUntilSignaled)
{
    Machine m(regConfig(2));
    SyncVarId v = m.fabric().allocate(1, 0);

    std::vector<Program> p0(1), p1(1);
    p0[0].iter = 1;
    p0[0].ops = {Op::mkWaitGE(v, 1), Op::mkCompute(1)};
    p1[0].iter = 2;
    p1[0].ops = {Op::mkCompute(50), Op::mkWrite(v, 1)};

    std::vector<std::vector<Program> *> lists{&p0, &p1};
    std::vector<size_t> next(2, 0);
    auto dispatch = [&](ProcId who,
                        std::function<void(const Program *)> cb) {
        auto &list = *lists[who];
        if (next[who] >= list.size()) {
            cb(nullptr);
            return;
        }
        cb(&list[next[who]++]);
    };
    ASSERT_TRUE(m.run(dispatch));
    EXPECT_GE(m.proc(0).spinCycles(), 48u);
    EXPECT_EQ(m.proc(0).syncOpsIssued(), 1u);
}

TEST(ProcessorTest, PcMarkSkipsWhenNotOwned)
{
    Machine m(regConfig(1));
    SyncVarId v = m.fabric().allocate(1, 0);
    // PC owned by process 1; process 5 marks without owning.
    m.fabric().poke(v, PcWord::pack(1, 0));

    std::vector<Program> progs(1);
    progs[0].iter = 5;
    progs[0].ops = {Op::mkPcMark(v, PcWord::pack(5, 1))};
    size_t next = 0;
    ASSERT_TRUE(m.run(oneProcDispatch(progs, next)));
    EXPECT_EQ(m.proc(0).marksSkipped(), 1u);
    EXPECT_EQ(m.fabric().peek(v), PcWord::pack(1, 0));
}

TEST(ProcessorTest, PcMarkWritesWhenTransferred)
{
    Machine m(regConfig(1));
    SyncVarId v = m.fabric().allocate(1, 0);
    m.fabric().poke(v, PcWord::pack(5, 0)); // transferred to 5

    std::vector<Program> progs(1);
    progs[0].iter = 5;
    progs[0].ops = {Op::mkPcMark(v, PcWord::pack(5, 2)),
                    Op::mkPcMark(v, PcWord::pack(5, 3))};
    size_t next = 0;
    ASSERT_TRUE(m.run(oneProcDispatch(progs, next)));
    EXPECT_EQ(m.proc(0).marksSkipped(), 0u);
    EXPECT_EQ(m.fabric().peek(v), PcWord::pack(5, 3));
}

TEST(ProcessorTest, PcTransferAcquiresThenHandsOff)
{
    Machine m(regConfig(2));
    SyncVarId v = m.fabric().allocate(1, 0);
    m.fabric().poke(v, PcWord::pack(1, 0));

    // Process 1 (proc 0) releases late; process 3 (proc 1, X=2)
    // must wait for ownership before transferring to process 5.
    std::vector<Program> p0(1), p1(1);
    p0[0].iter = 1;
    p0[0].ops = {Op::mkCompute(30),
                 Op::mkPcTransfer(v, PcWord::pack(3, 0),
                                  PcWord::pack(1, 0))};
    p1[0].iter = 3;
    p1[0].ops = {Op::mkPcTransfer(v, PcWord::pack(5, 0),
                                  PcWord::pack(3, 0))};

    std::vector<std::vector<Program> *> lists{&p0, &p1};
    std::vector<size_t> next(2, 0);
    auto dispatch = [&](ProcId who,
                        std::function<void(const Program *)> cb) {
        auto &list = *lists[who];
        if (next[who] >= list.size()) {
            cb(nullptr);
            return;
        }
        cb(&list[next[who]++]);
    };
    ASSERT_TRUE(m.run(dispatch));
    EXPECT_EQ(m.fabric().peek(v), PcWord::pack(5, 0));
    EXPECT_GE(m.proc(1).spinCycles(), 25u);
}

TEST(ProcessorTest, CtrBarrierReleasesAllArrivals)
{
    Machine m(regConfig(4));
    SyncVarId ctr = m.fabric().allocate(1, 0);
    SyncVarId rel = m.fabric().allocate(1, 0);

    std::vector<std::vector<Program>> lists(4,
                                            std::vector<Program>(1));
    for (unsigned p = 0; p < 4; ++p) {
        lists[p][0].iter = p + 1;
        lists[p][0].ops = {Op::mkCompute(p * 10),
                           Op::mkCtrBarrier(ctr, rel, 1, 4),
                           Op::mkCompute(1)};
    }
    std::vector<size_t> next(4, 0);
    auto dispatch = [&](ProcId who,
                        std::function<void(const Program *)> cb) {
        if (next[who] >= lists[who].size()) {
            cb(nullptr);
            return;
        }
        cb(&lists[who][next[who]++]);
    };
    ASSERT_TRUE(m.run(dispatch));
    EXPECT_EQ(m.fabric().peek(ctr), 4u);
    EXPECT_EQ(m.fabric().peek(rel), 1u);
    // Everyone halts after the slowest arrival (30 cycles of work).
    for (unsigned p = 0; p < 4; ++p)
        EXPECT_GE(m.proc(p).haltTick(), 30u);
}

TEST(ProcessorTest, HaltsWhenDispatchReturnsNull)
{
    Machine m(regConfig(2));
    auto dispatch = [](ProcId,
                       std::function<void(const Program *)> cb) {
        cb(nullptr);
    };
    ASSERT_TRUE(m.run(dispatch));
    EXPECT_TRUE(m.proc(0).halted());
    EXPECT_TRUE(m.proc(1).halted());
    EXPECT_EQ(m.completionTick(), 0u);
}
