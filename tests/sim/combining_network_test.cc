/**
 * @file
 * Combining omega network at scale: routing latency, the
 * single-hot-module combine tree, adversarial bit-reversal traffic,
 * per-stage counter accounting, and determinism of the whole model.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/omega_network.hh"

using namespace psync::sim;

namespace {

/** `bits`-wide bit reversal (the classic omega adversary). */
unsigned
bitReverse(unsigned v, unsigned bits)
{
    unsigned r = 0;
    for (unsigned b = 0; b < bits; ++b)
        r |= ((v >> b) & 1u) << (bits - 1 - b);
    return r;
}

} // namespace

TEST(CombiningNetworkTest, SinglePacketCrossesEveryStage)
{
    CombiningOmegaNetwork net("net", 8, 8, 2);
    EXPECT_EQ(net.stages(), 3u);
    EXPECT_EQ(net.switchesPerStage(), 4u);

    auto d = net.inject(3, 5, 0, CombineClass::none, 1, 10);
    EXPECT_FALSE(d.combined);
    EXPECT_EQ(d.arrive, 10u + 3u * 2u);
    EXPECT_EQ(net.transactions(), 1u);
    EXPECT_EQ(net.combinedTotal(), 0u);
    for (unsigned s = 0; s < net.stages(); ++s) {
        EXPECT_EQ(net.stageConflicts(s), 0u);
        EXPECT_EQ(net.stageCombines(s), 0u);
        EXPECT_EQ(net.stageBusyCycles(s), 2u);
    }
}

TEST(CombiningNetworkTest, HotModuleBurstCombinesAsTreeP512)
{
    // 512 same-variable fetch&adds to module 0, all injected in the
    // same cycle. The combine tree halves the survivors at every
    // stage: ports w and w+256 share a stage-0 switch, the stage-1
    // survivors pair (w, w+128), and so on — one packet reaches the
    // module, 511 are absorbed on the way.
    CombiningOmegaNetwork net("net", 512, 512, 1);
    ASSERT_EQ(net.stages(), 9u);

    Tick root_arrival = 0;
    unsigned reached = 0;
    for (ProcId p = 0; p < 512; ++p) {
        auto d = net.inject(p, 0, 7, CombineClass::fetchAdd, p, 0);
        if (!d.combined) {
            ++reached;
            root_arrival = d.arrive;
        }
    }

    EXPECT_EQ(reached, 1u);
    EXPECT_EQ(root_arrival, 9u);
    EXPECT_EQ(net.transactions(), 512u);
    EXPECT_EQ(net.combinedTotal(), 511u);
    // Stage 0 absorbs the 256 second-of-pair ports; each later
    // stage halves what survived the one before.
    EXPECT_EQ(net.stageCombines(0), 256u);
    for (unsigned s = 1; s < 9; ++s)
        EXPECT_EQ(net.stageCombines(s), 256u >> s);
    // Only the root crossed the module-side stage.
    EXPECT_EQ(net.busiestSwitchCycles(8), 1u);
}

TEST(CombiningNetworkTest, UncombinableHotModuleSerializesP512)
{
    // The same burst without combining: every packet funnels into
    // the single module-side switch, which must carry all of them
    // back to back.
    CombiningOmegaNetwork net("net", 512, 512, 1);

    Tick last_arrival = 0;
    for (ProcId p = 0; p < 512; ++p) {
        auto d = net.inject(p, 0, 7, CombineClass::none, p, 0);
        ASSERT_FALSE(d.combined);
        last_arrival = std::max(last_arrival, d.arrive);
    }

    EXPECT_EQ(net.transactions(), 512u);
    EXPECT_EQ(net.combinedTotal(), 0u);
    // Every packet crosses every stage once.
    for (unsigned s = 0; s < 9; ++s)
        EXPECT_EQ(net.stageBusyCycles(s), 512u);
    // The final switch serializes the full burst...
    EXPECT_EQ(net.busiestSwitchCycles(8), 512u);
    // ...so the last delivery cannot beat its throughput.
    EXPECT_GE(last_arrival, 512u);
    // Conflict-cycle accounting covers the whole queueing delay
    // (every port injected exactly once, so no port-side waits).
    Tick conflict_cycles = 0;
    for (unsigned s = 0; s < 9; ++s)
        conflict_cycles += net.stageConflictCycles(s);
    EXPECT_EQ(net.queueDelay(), conflict_cycles);
    EXPECT_GT(conflict_cycles, 0u);
}

TEST(CombiningNetworkTest, BitReversalConflictsAtP1024)
{
    // Bit-reversal is the textbook non-routable permutation for an
    // omega network: distinct destinations, yet packets collide in
    // the interior stages.
    CombiningOmegaNetwork net("net", 1024, 1024, 1);
    ASSERT_EQ(net.stages(), 10u);
    ASSERT_EQ(net.switchesPerStage(), 512u);

    for (ProcId p = 0; p < 1024; ++p) {
        auto d = net.inject(p, bitReverse(p, 10), p,
                            CombineClass::none, p, 0);
        ASSERT_FALSE(d.combined);
    }

    EXPECT_EQ(net.transactions(), 1024u);
    for (unsigned s = 0; s < 10; ++s)
        EXPECT_EQ(net.stageBusyCycles(s), 1024u);
    std::uint64_t conflicts = 0;
    for (unsigned s = 0; s < 10; ++s)
        conflicts += net.stageConflicts(s);
    EXPECT_GT(conflicts, 0u);
}

TEST(CombiningNetworkTest, ModelIsDeterministic)
{
    // Two networks fed the identical injection sequence must agree
    // on every counter — the property the bench's --jobs determinism
    // gate rests on.
    auto drive = [](CombiningOmegaNetwork &net) {
        for (ProcId p = 0; p < 1024; ++p)
            net.inject(p, bitReverse(p, 10), 3,
                       CombineClass::fetchAdd, p, p % 7);
    };
    CombiningOmegaNetwork a("a", 1024, 1024, 1);
    CombiningOmegaNetwork b("b", 1024, 1024, 1);
    drive(a);
    drive(b);
    EXPECT_EQ(a.transactions(), b.transactions());
    EXPECT_EQ(a.combinedTotal(), b.combinedTotal());
    EXPECT_EQ(a.queueDelay(), b.queueDelay());
    for (unsigned s = 0; s < 10; ++s) {
        EXPECT_EQ(a.stageConflicts(s), b.stageConflicts(s));
        EXPECT_EQ(a.stageConflictCycles(s), b.stageConflictCycles(s));
        EXPECT_EQ(a.stageCombines(s), b.stageCombines(s));
        EXPECT_EQ(a.stageBusyCycles(s), b.stageBusyCycles(s));
    }
}

TEST(CombiningNetworkTest, HoldExtendsTheCombiningWindow)
{
    // Without a hold, a packet's wait-buffer entry expires after one
    // stage crossing and a staggered arrival passes by; held until
    // the reply returns, the same arrival merges.
    CombiningOmegaNetwork cold("cold", 8, 8, 1);
    auto r1 = cold.inject(0, 0, 9, CombineClass::fetchAdd, 1, 0);
    ASSERT_FALSE(r1.combined);
    auto r2 = cold.inject(4, 0, 9, CombineClass::fetchAdd, 2, 5);
    EXPECT_FALSE(r2.combined);

    CombiningOmegaNetwork warm("warm", 8, 8, 1);
    auto h1 = warm.inject(0, 0, 9, CombineClass::fetchAdd, 1, 0);
    ASSERT_FALSE(h1.combined);
    warm.holdResidents(0, 0, 9, CombineClass::fetchAdd, 1, 20);
    auto h2 = warm.inject(4, 0, 9, CombineClass::fetchAdd, 2, 5);
    EXPECT_TRUE(h2.combined);
    EXPECT_EQ(h2.mergedWith, 1u);
}
