/** @file Multistage network: latency, port serialization, scaling. */

#include <gtest/gtest.h>

#include <vector>

#include "sim/machine.hh"
#include "sim/omega_network.hh"

using namespace psync::sim;

TEST(OmegaNetworkTest, TraversalLatency)
{
    EventQueue eq;
    OmegaNetwork net(eq, "net", 4, 3, 2);
    Tick done = 0;
    eq.schedule(10, [&]() {
        net.transact(0, [&](Tick grant) {
            EXPECT_EQ(grant, 10u);
            done = eq.now();
        });
    });
    eq.run();
    EXPECT_EQ(done, 16u); // 3 stages x 2 cycles
    EXPECT_EQ(net.traversalCycles(), 6u);
}

TEST(OmegaNetworkTest, DistinctPortsDoNotSerialize)
{
    EventQueue eq;
    OmegaNetwork net(eq, "net", 4, 2, 1);
    std::vector<Tick> done;
    eq.schedule(0, [&]() {
        for (ProcId p = 0; p < 4; ++p)
            net.transact(p, [&](Tick) { done.push_back(eq.now()); });
    });
    eq.run();
    ASSERT_EQ(done.size(), 4u);
    for (Tick t : done)
        EXPECT_EQ(t, 2u); // all in parallel
    EXPECT_EQ(net.queueDelay(), 0u);
}

TEST(OmegaNetworkTest, SamePortSerializesInjection)
{
    EventQueue eq;
    OmegaNetwork net(eq, "net", 2, 2, 1, 3);
    std::vector<Tick> done;
    eq.schedule(0, [&]() {
        net.transact(0, [&](Tick) { done.push_back(eq.now()); });
        net.transact(0, [&](Tick) { done.push_back(eq.now()); });
    });
    eq.run();
    ASSERT_EQ(done.size(), 2u);
    EXPECT_EQ(done[0], 2u);
    EXPECT_EQ(done[1], 5u); // injected 3 cycles later
    EXPECT_EQ(net.queueDelay(), 3u);
}

TEST(OmegaNetworkTest, GrantHookFiresAtInjection)
{
    EventQueue eq;
    OmegaNetwork net(eq, "net", 2, 2, 1, 4);
    std::vector<Tick> grants;
    eq.schedule(0, [&]() {
        net.transact(0, [&](Tick) { grants.push_back(eq.now()); },
                     [](Tick) {});
        net.transact(0, [&](Tick) { grants.push_back(eq.now()); },
                     [](Tick) {});
    });
    eq.run();
    ASSERT_EQ(grants.size(), 2u);
    EXPECT_EQ(grants[0], 0u);
    EXPECT_EQ(grants[1], 4u);
}

TEST(OmegaNetworkTest, MachineBuildsNetworkMachine)
{
    MachineConfig cfg;
    cfg.numProcs = 16;
    cfg.interconnect = InterconnectKind::omega;
    cfg.memory.numModules = 16;
    cfg.fabric = FabricKind::memory;
    Machine m(cfg);
    EXPECT_EQ(m.dataBus(), nullptr);
    EXPECT_GT(m.dataNet().name().size(), 0u);

    // A simple program still runs.
    std::vector<std::vector<Program>> progs(16);
    for (unsigned p = 0; p < 16; ++p) {
        progs[p].resize(1);
        progs[p][0].iter = p + 1;
        progs[p][0].ops = {Op::mkData(false, p * 8, 0),
                           Op::mkCompute(3)};
    }
    std::vector<size_t> next(16, 0);
    auto dispatch = [&](ProcId who,
                        std::function<void(const Program *)> cb) {
        if (next[who] >= progs[who].size()) {
            cb(nullptr);
            return;
        }
        cb(&progs[who][next[who]++]);
    };
    ASSERT_TRUE(m.run(dispatch));
    EXPECT_EQ(m.dataNet().transactions(), 16u);
}

TEST(OmegaNetworkTest, NetworkScalesWhereBusSaturates)
{
    // 32 processors each issuing 8 independent reads to their own
    // module: the bus serializes all 256, the network does not.
    auto run = [](InterconnectKind kind) {
        MachineConfig cfg;
        cfg.numProcs = 32;
        cfg.interconnect = kind;
        cfg.memory.numModules = 32;
        Machine m(cfg);
        std::vector<std::vector<Program>> progs(32);
        for (unsigned p = 0; p < 32; ++p) {
            progs[p].resize(1);
            progs[p][0].iter = p + 1;
            for (int k = 0; k < 8; ++k) {
                progs[p][0].ops.push_back(
                    Op::mkData(false, p * 8, 0));
            }
        }
        std::vector<size_t> next(32, 0);
        auto dispatch =
            [&](ProcId who,
                std::function<void(const Program *)> cb) {
            if (next[who] >= progs[who].size()) {
                cb(nullptr);
                return;
            }
            cb(&progs[who][next[who]++]);
        };
        EXPECT_TRUE(m.run(dispatch));
        return m.completionTick();
    };
    EXPECT_LT(run(InterconnectKind::omega),
              run(InterconnectKind::bus) / 2);
}
