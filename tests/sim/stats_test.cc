/** @file Statistics primitives. */

#include <gtest/gtest.h>

#include <sstream>

#include "sim/stats.hh"

using namespace psync::sim::stats;

TEST(StatsTest, ScalarAccumulates)
{
    Scalar s("s");
    s += 3;
    ++s;
    EXPECT_DOUBLE_EQ(s.value(), 4.0);
    s.reset();
    EXPECT_DOUBLE_EQ(s.value(), 0.0);
}

TEST(StatsTest, VectorAggregates)
{
    Vector v("v", 4);
    v[0] = 1;
    v[1] = 5;
    v[3] = 2;
    EXPECT_DOUBLE_EQ(v.total(), 8.0);
    EXPECT_DOUBLE_EQ(v.maxValue(), 5.0);
    EXPECT_DOUBLE_EQ(v.mean(), 2.0);
}

TEST(StatsTest, DistributionMoments)
{
    Distribution d("d");
    d.sample(2);
    d.sample(4);
    d.sample(6);
    EXPECT_EQ(d.count(), 3u);
    EXPECT_DOUBLE_EQ(d.mean(), 4.0);
    EXPECT_DOUBLE_EQ(d.minValue(), 2.0);
    EXPECT_DOUBLE_EQ(d.maxValue(), 6.0);
    EXPECT_NEAR(d.variance(), 8.0 / 3.0, 1e-9);
}

TEST(StatsTest, DistributionWeightedSamples)
{
    Distribution d("d");
    d.sample(3, 4);
    EXPECT_EQ(d.count(), 4u);
    EXPECT_DOUBLE_EQ(d.sum(), 12.0);
}

TEST(StatsTest, EmptyDistributionIsZero)
{
    Distribution d("d");
    EXPECT_DOUBLE_EQ(d.mean(), 0.0);
    EXPECT_DOUBLE_EQ(d.minValue(), 0.0);
    EXPECT_DOUBLE_EQ(d.maxValue(), 0.0);
}

TEST(StatsTest, DumpContainsNameAndValue)
{
    Scalar s("my.stat");
    s += 42;
    std::ostringstream os;
    dump(os, s);
    EXPECT_NE(os.str().find("my.stat"), std::string::npos);
    EXPECT_NE(os.str().find("42"), std::string::npos);
}
