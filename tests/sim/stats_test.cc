/** @file Statistics primitives. */

#include <gtest/gtest.h>

#include <sstream>

#include "sim/stats.hh"

using namespace psync::sim::stats;

TEST(StatsTest, ScalarAccumulates)
{
    Scalar s("s");
    s += 3;
    ++s;
    EXPECT_DOUBLE_EQ(s.value(), 4.0);
    s.reset();
    EXPECT_DOUBLE_EQ(s.value(), 0.0);
}

TEST(StatsTest, VectorAggregates)
{
    Vector v("v", 4);
    v[0] = 1;
    v[1] = 5;
    v[3] = 2;
    EXPECT_DOUBLE_EQ(v.total(), 8.0);
    EXPECT_DOUBLE_EQ(v.maxValue(), 5.0);
    EXPECT_DOUBLE_EQ(v.mean(), 2.0);
}

TEST(StatsTest, DistributionMoments)
{
    Distribution d("d");
    d.sample(2);
    d.sample(4);
    d.sample(6);
    EXPECT_EQ(d.count(), 3u);
    EXPECT_DOUBLE_EQ(d.mean(), 4.0);
    EXPECT_DOUBLE_EQ(d.minValue(), 2.0);
    EXPECT_DOUBLE_EQ(d.maxValue(), 6.0);
    EXPECT_NEAR(d.variance(), 8.0 / 3.0, 1e-9);
}

TEST(StatsTest, DistributionWeightedSamples)
{
    Distribution d("d");
    d.sample(3, 4);
    EXPECT_EQ(d.count(), 4u);
    EXPECT_DOUBLE_EQ(d.sum(), 12.0);
}

TEST(StatsTest, EmptyDistributionIsZero)
{
    Distribution d("d");
    EXPECT_DOUBLE_EQ(d.mean(), 0.0);
    EXPECT_DOUBLE_EQ(d.minValue(), 0.0);
    EXPECT_DOUBLE_EQ(d.maxValue(), 0.0);
}

TEST(StatsTest, DumpContainsNameAndValue)
{
    Scalar s("my.stat");
    s += 42;
    std::ostringstream os;
    dump(os, s);
    EXPECT_NE(os.str().find("my.stat"), std::string::npos);
    EXPECT_NE(os.str().find("42"), std::string::npos);
}

TEST(StatsTest, ScalarResetAcrossRepeatedRuns)
{
    // Regression for the Scalar/Gauge split: a component reusing a
    // Scalar across runs must see a clean accumulation each time,
    // never a sticky level from the previous run.
    Scalar s("s");
    for (int run = 0; run < 3; ++run) {
        s.reset();
        EXPECT_DOUBLE_EQ(s.value(), 0.0);
        s += 5;
        s += 2;
        EXPECT_DOUBLE_EQ(s.value(), 7.0);
    }
}

TEST(StatsTest, GaugeSetOverwrites)
{
    Gauge g("g");
    g.set(4);
    g.set(2);
    EXPECT_DOUBLE_EQ(g.value(), 2.0);
    g.reset();
    EXPECT_DOUBLE_EQ(g.value(), 0.0);
}

TEST(StatsTest, GaugeUpdateMaxKeepsHighWaterMark)
{
    Gauge g("g");
    g.updateMax(3);
    g.updateMax(7);
    g.updateMax(5);
    EXPECT_DOUBLE_EQ(g.value(), 7.0);
}

TEST(StatsTest, GroupRegistersAndDumps)
{
    Scalar s("grp.scalar");
    s += 11;
    Gauge g("grp.gauge");
    g.set(3);
    Vector v("grp.vector", 2);
    v[0] = 1;
    v[1] = 2;
    Distribution d("grp.dist");
    d.sample(5);

    Group group;
    group.add(s);
    group.add(g);
    group.add(v);
    group.add(d);
    EXPECT_EQ(group.size(), 4u);

    std::ostringstream os;
    group.dump(os);
    EXPECT_NE(os.str().find("grp.scalar"), std::string::npos);
    EXPECT_NE(os.str().find("grp.gauge"), std::string::npos);
    EXPECT_NE(os.str().find("grp.vector"), std::string::npos);
    EXPECT_NE(os.str().find("grp.dist"), std::string::npos);
}

TEST(StatsTest, GroupDumpJsonHasAllNames)
{
    Scalar s("a.count");
    s += 9;
    Gauge g("b.depth");
    g.updateMax(4);
    Vector v("c.per_module", 3);
    v[1] = 6;
    Distribution d("d.delay");
    d.sample(2);
    d.sample(8);

    Group group;
    group.add(s);
    group.add(g);
    group.add(v);
    group.add(d);

    std::ostringstream os;
    group.dumpJson(os);
    std::string text = os.str();
    EXPECT_NE(text.find("\"a.count\""), std::string::npos);
    EXPECT_NE(text.find("\"b.depth\""), std::string::npos);
    EXPECT_NE(text.find("\"c.per_module\""), std::string::npos);
    EXPECT_NE(text.find("\"d.delay\""), std::string::npos);
    EXPECT_NE(text.find("\"total\""), std::string::npos);
    EXPECT_NE(text.find("\"count\""), std::string::npos);
}
