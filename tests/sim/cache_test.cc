/** @file Write-through invalidate data caches. */

#include <gtest/gtest.h>

#include "sim/bus.hh"
#include "sim/cache.hh"

using namespace psync::sim;

namespace {

struct Rig
{
    EventQueue eq;
    Bus bus;
    Memory mem;
    CacheSystem caches;

    explicit Rig(bool enabled = true, unsigned num_procs = 2)
        : bus(eq, "data_bus", 1),
          mem(eq, bus, MemoryConfig{}),
          caches(eq, mem, num_procs, makeConfig(enabled))
    {}

    static CacheConfig
    makeConfig(bool enabled)
    {
        CacheConfig cfg;
        cfg.enabled = enabled;
        cfg.linesPerProc = 8;
        return cfg;
    }
};

} // namespace

TEST(CacheTest, MissThenHitTiming)
{
    Rig rig;
    Tick first_done = 0, second_done = 0, start2 = 0;
    rig.eq.schedule(0, [&]() {
        rig.caches.read(0, 64, [&]() {
            first_done = rig.eq.now();
            start2 = rig.eq.now();
            rig.caches.read(0, 64, [&]() {
                second_done = rig.eq.now();
            });
        });
    });
    rig.eq.run();
    EXPECT_EQ(first_done, 5u);           // bus + module
    EXPECT_EQ(second_done - start2, 1u); // hit
    EXPECT_EQ(rig.caches.hits(), 1u);
    EXPECT_EQ(rig.caches.misses(), 1u);
}

TEST(CacheTest, WriteInvalidatesOtherCopies)
{
    Rig rig;
    bool done = false;
    rig.eq.schedule(0, [&]() {
        // P0 caches addr 64; P1 writes it; P0's next read misses.
        rig.caches.read(0, 64, [&]() {
            rig.caches.write(1, 64, [&]() {
                rig.caches.read(0, 64, [&]() { done = true; });
            });
        });
    });
    rig.eq.run();
    EXPECT_TRUE(done);
    EXPECT_EQ(rig.caches.invalidations(), 1u);
    EXPECT_EQ(rig.caches.misses(), 2u);
    EXPECT_EQ(rig.caches.hits(), 0u);
}

TEST(CacheTest, WriteThroughReachesMemory)
{
    Rig rig;
    rig.eq.schedule(0, [&]() {
        rig.caches.write(0, 128, []() {});
        rig.caches.write(0, 128, []() {});
    });
    rig.eq.run();
    EXPECT_EQ(rig.mem.totalAccesses(), 2u); // both go through
}

TEST(CacheTest, WriterReadsOwnLine)
{
    Rig rig;
    rig.eq.schedule(0, [&]() {
        rig.caches.write(0, 64, [&]() {
            rig.caches.read(0, 64, []() {});
        });
    });
    rig.eq.run();
    EXPECT_EQ(rig.caches.hits(), 1u); // fill on write
}

TEST(CacheTest, ConflictEviction)
{
    Rig rig; // 8 lines, word-indexed: 64 and 64 + 8*8 collide
    rig.eq.schedule(0, [&]() {
        rig.caches.read(0, 64, [&]() {
            rig.caches.read(0, 64 + 8 * 8, [&]() {
                rig.caches.read(0, 64, []() {});
            });
        });
    });
    rig.eq.run();
    EXPECT_EQ(rig.caches.misses(), 3u);
    EXPECT_EQ(rig.caches.hits(), 0u);
}

TEST(CacheTest, DisabledPassesThrough)
{
    Rig rig(false);
    rig.eq.schedule(0, [&]() {
        rig.caches.read(0, 64, [&]() {
            rig.caches.read(0, 64, []() {});
        });
    });
    rig.eq.run();
    EXPECT_EQ(rig.mem.totalAccesses(), 2u);
    EXPECT_EQ(rig.caches.hits(), 0u);
    EXPECT_EQ(rig.caches.misses(), 0u);
    EXPECT_FALSE(rig.caches.enabled());
}

TEST(CacheTest, HitRate)
{
    Rig rig;
    rig.eq.schedule(0, [&]() {
        rig.caches.read(0, 64, [&]() {
            rig.caches.read(0, 64, [&]() {
                rig.caches.read(0, 64, []() {});
            });
        });
    });
    rig.eq.run();
    EXPECT_NEAR(rig.caches.hitRate(), 2.0 / 3.0, 1e-9);
}
