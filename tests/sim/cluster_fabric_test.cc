/**
 * @file
 * Hierarchical cluster fabric semantics: same-cluster wakeups stay
 * on the local bus, cross-cluster writes propagate through the
 * global stage, fetch&add batches decombine to the serialized
 * pre-value sequence, and pending-write coalescing absorbs bursts.
 */

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <vector>

#include "sim/bus.hh"
#include "sim/cluster_fabric.hh"
#include "sim/event_queue.hh"

using namespace psync::sim;

namespace {

/** Test rig owning the buses a fabric needs. */
struct Rig
{
    EventQueue eq;
    std::vector<std::unique_ptr<Bus>> buses;
    std::unique_ptr<Bus> global;
    std::unique_ptr<HierarchicalSyncFabric> fab;

    Rig(unsigned procs, unsigned clusters, unsigned capacity = 64)
    {
        std::vector<Bus *> refs;
        for (unsigned c = 0; c < clusters; ++c) {
            buses.push_back(std::make_unique<Bus>(
                eq, "cluster_bus" + std::to_string(c), 1));
            refs.push_back(buses.back().get());
        }
        global = std::make_unique<Bus>(eq, "global_bus", 1);
        fab = std::make_unique<HierarchicalSyncFabric>(
            eq, refs, *global, procs, capacity);
    }
};

} // namespace

TEST(ClusterFabricTest, ClusterAssignmentSplitsEvenly)
{
    Rig rig(16, 4);
    EXPECT_EQ(rig.fab->numClusters(), 4u);
    EXPECT_EQ(rig.fab->procsPerCluster(), 4u);
    EXPECT_EQ(rig.fab->clusterOf(0), 0u);
    EXPECT_EQ(rig.fab->clusterOf(3), 0u);
    EXPECT_EQ(rig.fab->clusterOf(4), 1u);
    EXPECT_EQ(rig.fab->clusterOf(15), 3u);
}

TEST(ClusterFabricTest, CrossClusterWriteWakesRemoteWaiter)
{
    Rig rig(8, 2);
    SyncVarId var = rig.fab->allocate(1, 0);

    Tick woken_at = 0;
    Tick waited = 0;
    rig.eq.schedule(0, [&]() {
        // Proc 7 lives in cluster 1; the writer in cluster 0.
        rig.fab->waitGE(7, var, 1, [&](Tick w) {
            woken_at = rig.eq.now();
            waited = w;
        });
    });
    rig.eq.schedule(30, [&]() {
        rig.fab->write(0, var, 1, []() {});
    });
    rig.eq.run();

    EXPECT_GE(woken_at, 30u);
    EXPECT_GT(waited, 0u);
    EXPECT_EQ(rig.fab->peek(var), 1u);
    // The commit crossed the global stage to reach cluster 1.
    EXPECT_GE(rig.fab->globalBroadcasts(), 1u);
}

TEST(ClusterFabricTest, SameClusterWakeupUsesLocalBus)
{
    Rig rig(8, 2);
    SyncVarId var = rig.fab->allocate(1, 0);

    unsigned woken = 0;
    rig.eq.schedule(0, [&]() {
        rig.fab->waitGE(1, var, 1, [&](Tick) { ++woken; });
    });
    rig.eq.schedule(10, [&]() {
        rig.fab->write(0, var, 1, []() {});
    });
    rig.eq.run();

    EXPECT_EQ(woken, 1u);
    EXPECT_GE(rig.fab->localBroadcasts(), 1u);
}

TEST(ClusterFabricTest, FetchIncBatchesDecombineToSerialSequence)
{
    // 32 processors over 4 clusters all advancing one counter in
    // the same cycle: pre-values must be exactly 0..31 (each once)
    // and same-cluster increments must have batched.
    Rig rig(32, 4);
    SyncVarId var = rig.fab->allocate(1, 0);

    std::multiset<SyncWord> pre;
    rig.eq.schedule(0, [&]() {
        for (ProcId p = 0; p < 32; ++p)
            rig.fab->fetchInc(p, var,
                              [&](SyncWord v) { pre.insert(v); });
    });
    rig.eq.run();

    ASSERT_EQ(pre.size(), 32u);
    SyncWord expect = 0;
    for (SyncWord v : pre)
        EXPECT_EQ(v, expect++);
    EXPECT_EQ(rig.fab->peek(var), 32u);
    EXPECT_GT(rig.fab->combinedIncs(), 0u);
}

TEST(ClusterFabricTest, HotCounterRoundsStayOrderedAcrossClusters)
{
    // Several staggered rounds: batching must never duplicate or
    // drop a pre-value even when batches from different clusters
    // are in flight at once.
    Rig rig(16, 2);
    SyncVarId var = rig.fab->allocate(1, 0);

    std::multiset<SyncWord> pre;
    for (unsigned round = 0; round < 4; ++round) {
        rig.eq.schedule(round * 3, [&]() {
            for (ProcId p = 0; p < 16; ++p)
                rig.fab->fetchInc(p, var, [&](SyncWord v) {
                    pre.insert(v);
                });
        });
    }
    rig.eq.run();

    ASSERT_EQ(pre.size(), 64u);
    SyncWord expect = 0;
    for (SyncWord v : pre)
        EXPECT_EQ(v, expect++);
    EXPECT_EQ(rig.fab->peek(var), 64u);
}

TEST(ClusterFabricTest, PendingWriteCoalescingAbsorbsBursts)
{
    Rig rig(8, 2);
    SyncVarId var = rig.fab->allocate(1, 0);

    unsigned done = 0;
    rig.eq.schedule(0, [&]() {
        for (SyncWord v = 1; v <= 6; ++v)
            rig.fab->write(0, var, v, [&]() { ++done; });
    });
    rig.eq.run();

    EXPECT_EQ(done, 6u);
    // The burst collapsed into fewer broadcasts than writes.
    EXPECT_GT(rig.fab->coalescedLocal(), 0u);
    // Monotone writes: the last value wins everywhere.
    EXPECT_EQ(rig.fab->peek(var), 6u);
}

TEST(ClusterFabricTest, WaitersAcrossThresholdsReleaseInOrder)
{
    Rig rig(8, 2);
    SyncVarId var = rig.fab->allocate(1, 0);

    std::vector<unsigned> order;
    rig.eq.schedule(0, [&]() {
        rig.fab->waitGE(5, var, 2, [&](Tick) { order.push_back(2); });
        rig.fab->waitGE(2, var, 1, [&](Tick) { order.push_back(1); });
    });
    rig.eq.schedule(20, [&]() {
        rig.fab->write(0, var, 1, []() {});
    });
    rig.eq.schedule(60, [&]() {
        rig.fab->write(7, var, 2, []() {});
    });
    rig.eq.run();

    ASSERT_EQ(order.size(), 2u);
    EXPECT_EQ(order[0], 1u);
    EXPECT_EQ(order[1], 2u);
}
