/** @file FIFO bus arbitration, occupancy and queue statistics. */

#include <gtest/gtest.h>

#include <vector>

#include "sim/bus.hh"

using namespace psync::sim;

TEST(BusTest, SingleTransactionTiming)
{
    EventQueue eq;
    Bus bus(eq, "bus", 3);
    Tick done = 0;
    eq.schedule(10, [&]() {
        bus.transact(0, [&](Tick grant) {
            EXPECT_EQ(grant, 10u);
            done = eq.now();
        });
    });
    eq.run();
    EXPECT_EQ(done, 13u);
    EXPECT_EQ(bus.transactions(), 1u);
    EXPECT_EQ(bus.busyCycles(), 3u);
}

TEST(BusTest, BackToBackSerializes)
{
    EventQueue eq;
    Bus bus(eq, "bus", 2);
    std::vector<Tick> grants;
    eq.schedule(0, [&]() {
        for (int k = 0; k < 4; ++k)
            bus.transact(0, [&](Tick g) { grants.push_back(g); });
    });
    eq.run();
    ASSERT_EQ(grants.size(), 4u);
    EXPECT_EQ(grants[0], 0u);
    EXPECT_EQ(grants[1], 2u);
    EXPECT_EQ(grants[2], 4u);
    EXPECT_EQ(grants[3], 6u);
    EXPECT_EQ(bus.queueDelay(), 0u + 2u + 4u + 6u);
    EXPECT_GE(bus.maxQueueDepth(), 3u);
}

TEST(BusTest, FifoOrderAcrossRequesters)
{
    EventQueue eq;
    Bus bus(eq, "bus", 1);
    std::vector<int> order;
    eq.schedule(0, [&]() {
        bus.transact(2, [&](Tick) { order.push_back(2); });
    });
    eq.schedule(0, [&]() {
        bus.transact(1, [&](Tick) { order.push_back(1); });
    });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{2, 1}));
}

TEST(BusTest, UtilizationFraction)
{
    EventQueue eq;
    Bus bus(eq, "bus", 5);
    eq.schedule(0, [&]() { bus.transact(0, [](Tick) {}); });
    eq.schedule(20, [&]() { bus.transact(0, [](Tick) {}); });
    eq.run();
    EXPECT_DOUBLE_EQ(bus.utilization(25), 10.0 / 25.0);
}

TEST(BusTest, IdleGapThenNewGrant)
{
    EventQueue eq;
    Bus bus(eq, "bus", 2);
    Tick second_done = 0;
    eq.schedule(0, [&]() { bus.transact(0, [](Tick) {}); });
    eq.schedule(50, [&]() {
        bus.transact(0, [&](Tick g) {
            EXPECT_EQ(g, 50u);
            second_done = eq.now();
        });
    });
    eq.run();
    EXPECT_EQ(second_done, 52u);
}
