/** @file Machine assembly, configuration, stats dumping. */

#include <gtest/gtest.h>

#include <sstream>

#include "sim/machine.hh"

using namespace psync::sim;

TEST(MachineTest, BusMachineExposesDataBus)
{
    MachineConfig cfg;
    cfg.numProcs = 4;
    Machine m(cfg);
    EXPECT_NE(m.dataBus(), nullptr);
    EXPECT_EQ(&m.dataNet(), m.dataBus());
    EXPECT_EQ(m.numProcs(), 4u);
}

TEST(MachineTest, OmegaMachineHasNoBus)
{
    MachineConfig cfg;
    cfg.numProcs = 4;
    cfg.interconnect = InterconnectKind::omega;
    Machine m(cfg);
    EXPECT_EQ(m.dataBus(), nullptr);
}

TEST(MachineTest, RegisterFabricHasSyncBus)
{
    MachineConfig cfg;
    cfg.fabric = FabricKind::registers;
    Machine reg(cfg);
    EXPECT_NE(reg.syncBus(), nullptr);
    EXPECT_EQ(reg.fabric().kind(), FabricKind::registers);

    cfg.fabric = FabricKind::memory;
    Machine mem(cfg);
    EXPECT_EQ(mem.syncBus(), nullptr);
    EXPECT_EQ(mem.fabric().kind(), FabricKind::memory);
}

TEST(MachineTest, ZeroProcessorsFatal)
{
    MachineConfig cfg;
    cfg.numProcs = 0;
    EXPECT_EXIT(Machine m(cfg), ::testing::ExitedWithCode(1),
                "at least one processor");
}

TEST(MachineTest, CompletionTickIsLastHalt)
{
    MachineConfig cfg;
    cfg.numProcs = 3;
    Machine m(cfg);
    std::vector<std::vector<Program>> progs(3);
    for (unsigned p = 0; p < 3; ++p) {
        progs[p].resize(1);
        progs[p][0].iter = p + 1;
        progs[p][0].ops = {Op::mkCompute(10 * (p + 1))};
    }
    std::vector<size_t> next(3, 0);
    auto dispatch = [&](ProcId who,
                        std::function<void(const Program *)> cb) {
        if (next[who] >= progs[who].size()) {
            cb(nullptr);
            return;
        }
        cb(&progs[who][next[who]++]);
    };
    ASSERT_TRUE(m.run(dispatch));
    EXPECT_EQ(m.completionTick(), 30u);
}

TEST(MachineTest, DumpStatsMentionsComponents)
{
    MachineConfig cfg;
    cfg.numProcs = 2;
    cfg.cache.enabled = true;
    Machine m(cfg);
    std::vector<std::vector<Program>> progs(2);
    for (unsigned p = 0; p < 2; ++p) {
        progs[p].resize(1);
        progs[p][0].iter = p + 1;
        progs[p][0].ops = {Op::mkData(false, 8 * p, 0)};
    }
    std::vector<size_t> next(2, 0);
    auto dispatch = [&](ProcId who,
                        std::function<void(const Program *)> cb) {
        if (next[who] >= progs[who].size()) {
            cb(nullptr);
            return;
        }
        cb(&progs[who][next[who]++]);
    };
    ASSERT_TRUE(m.run(dispatch));
    std::ostringstream os;
    m.dumpStats(os);
    std::string text = os.str();
    EXPECT_NE(text.find("data_bus"), std::string::npos);
    EXPECT_NE(text.find("memory."), std::string::npos);
    EXPECT_NE(text.find("cache."), std::string::npos);
    EXPECT_NE(text.find("proc0"), std::string::npos);
}

TEST(MachineTest, KindNames)
{
    EXPECT_STREQ(interconnectKindName(InterconnectKind::bus), "bus");
    EXPECT_STREQ(interconnectKindName(InterconnectKind::omega),
                 "omega");
    EXPECT_STREQ(fabricKindName(FabricKind::registers), "registers");
    EXPECT_STREQ(fabricKindName(FabricKind::memory), "memory");
}

TEST(MachineTest, RunReportsBlockedProcessorsAsIncomplete)
{
    MachineConfig cfg;
    cfg.numProcs = 1;
    Machine m(cfg);
    SyncVarId v = m.fabric().allocate(1, 0);
    std::vector<Program> progs(1);
    progs[0].iter = 1;
    progs[0].ops = {Op::mkWaitGE(v, 1)};
    size_t next = 0;
    auto dispatch = [&](ProcId,
                        std::function<void(const Program *)> cb) {
        if (next >= progs.size()) {
            cb(nullptr);
            return;
        }
        cb(&progs[next++]);
    };
    // Register-fabric waiter parks; the queue drains but the
    // processor never halts.
    EXPECT_FALSE(m.run(dispatch, 100000));
}
