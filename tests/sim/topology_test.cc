/**
 * @file
 * Fabric topology layer: Machine assembles its sync fabric from a
 * cluster description, each FabricKind yields the right fabric and
 * bus wiring, and the mapping from MachineConfig is faithful.
 */

#include <gtest/gtest.h>

#include "sim/cluster_fabric.hh"
#include "sim/combining_fabric.hh"
#include "sim/machine.hh"
#include "sim/topology.hh"

using namespace psync::sim;

TEST(TopologyTest, SyncTopologyMapsMachineConfig)
{
    MachineConfig cfg;
    cfg.numProcs = 64;
    cfg.fabric = FabricKind::hierarchical;
    cfg.numClusters = 8;
    cfg.clusterBusCycles = 3;
    cfg.syncBusCycles = 2;
    cfg.memory.numModules = 16;
    cfg.memory.serviceCycles = 6;

    SyncTopology topo = syncTopologyOf(cfg);
    EXPECT_EQ(topo.fabric, FabricKind::hierarchical);
    EXPECT_EQ(topo.numProcs, 64u);
    EXPECT_EQ(topo.numClusters, 8u);
    EXPECT_EQ(topo.clusterBusCycles, 3u);
    EXPECT_EQ(topo.syncBusCycles, 2u);
    EXPECT_EQ(topo.syncModules, 16u);
    EXPECT_EQ(topo.syncServiceCycles, 6u);
    EXPECT_EQ(topo.procsPerCluster(), 8u);
    EXPECT_EQ(topo.clusterOf(0), 0u);
    EXPECT_EQ(topo.clusterOf(63), 7u);
}

TEST(TopologyTest, RegisterMachineKeepsFlatSyncBus)
{
    MachineConfig cfg;
    cfg.numProcs = 8;
    cfg.fabric = FabricKind::registers;
    Machine m(cfg);
    EXPECT_EQ(m.fabric().kind(), FabricKind::registers);
    ASSERT_NE(m.syncBus(), nullptr);
    EXPECT_TRUE(m.clusterBuses().empty());
}

TEST(TopologyTest, MemoryMachineHasNoSyncBus)
{
    MachineConfig cfg;
    cfg.numProcs = 8;
    cfg.fabric = FabricKind::memory;
    Machine m(cfg);
    EXPECT_EQ(m.fabric().kind(), FabricKind::memory);
    EXPECT_EQ(m.syncBus(), nullptr);
    EXPECT_TRUE(m.clusterBuses().empty());
}

TEST(TopologyTest, CombiningMachineBuildsNetworkFabric)
{
    MachineConfig cfg;
    cfg.numProcs = 64;
    cfg.fabric = FabricKind::combining;
    cfg.memory.numModules = 8;
    Machine m(cfg);
    EXPECT_EQ(m.fabric().kind(), FabricKind::combining);
    EXPECT_EQ(m.syncBus(), nullptr);
    EXPECT_TRUE(m.clusterBuses().empty());

    auto *comb = dynamic_cast<CombiningSyncFabric *>(&m.fabric());
    ASSERT_NE(comb, nullptr);
    // Network sized to the processor count (64 ports -> 6 stages).
    EXPECT_EQ(comb->net().stages(), 6u);
}

TEST(TopologyTest, HierarchicalMachineBuildsClusterBuses)
{
    MachineConfig cfg;
    cfg.numProcs = 64;
    cfg.fabric = FabricKind::hierarchical;
    cfg.numClusters = 8;
    Machine m(cfg);
    EXPECT_EQ(m.fabric().kind(), FabricKind::hierarchical);
    ASSERT_NE(m.syncBus(), nullptr); // the global stage
    EXPECT_EQ(m.clusterBuses().size(), 8u);

    auto *hier = dynamic_cast<HierarchicalSyncFabric *>(&m.fabric());
    ASSERT_NE(hier, nullptr);
    EXPECT_EQ(hier->numClusters(), 8u);
    EXPECT_EQ(hier->procsPerCluster(), 8u);
}

TEST(TopologyTest, ComposedFabricsRunPrograms)
{
    // A tiny producer/consumer program must complete on every
    // composed fabric, not just the flat ones.
    for (FabricKind kind :
         {FabricKind::combining, FabricKind::hierarchical}) {
        MachineConfig cfg;
        cfg.numProcs = 4;
        cfg.fabric = kind;
        cfg.numClusters = 2;
        Machine m(cfg);
        SyncVarId var = m.fabric().allocate(1, 0);

        std::vector<std::vector<Program>> progs(4);
        for (unsigned p = 0; p < 4; ++p) {
            progs[p].resize(1);
            progs[p][0].iter = p + 1;
            if (p == 0) {
                progs[p][0].ops = {Op::mkCompute(5),
                                   Op::mkWrite(var, 1)};
            } else {
                progs[p][0].ops = {Op::mkWaitGE(var, 1),
                                   Op::mkCompute(2)};
            }
        }
        std::vector<size_t> next(4, 0);
        auto dispatch = [&](ProcId who,
                            std::function<void(const Program *)>
                                cb) {
            if (next[who] >= progs[who].size()) {
                cb(nullptr);
                return;
            }
            cb(&progs[who][next[who]++]);
        };
        ASSERT_TRUE(m.run(dispatch))
            << "fabric " << fabricKindName(kind);
        EXPECT_EQ(m.fabric().peek(var), 1u)
            << "fabric " << fabricKindName(kind);
    }
}
