/** @file SBO callable wrapper: placement, moves, destruction. */

#include <gtest/gtest.h>

#include <array>
#include <cstddef>
#include <memory>
#include <utility>
#include <vector>

#include "sim/inline_function.hh"

using namespace psync::sim;

namespace {

/** Counts live copies so tests can pin destructor behavior. */
struct Tracked
{
    static int live;
    Tracked() noexcept { ++live; }
    Tracked(const Tracked &) noexcept { ++live; }
    Tracked(Tracked &&) noexcept { ++live; }
    ~Tracked() { --live; }
};

int Tracked::live = 0;

} // namespace

TEST(InlineFunctionTest, SmallCaptureStaysInline)
{
    int x = 41;
    InlineFunction<int()> fn([x]() { return x + 1; });
    EXPECT_TRUE(static_cast<bool>(fn));
    EXPECT_FALSE(fn.onHeap());
    EXPECT_EQ(fn(), 42);
}

TEST(InlineFunctionTest, CapacityBoundaryCapturesStayInline)
{
    // Exactly at capacity: still inline.
    std::array<char, InlineFunction<int()>::capacity()> big{};
    big[0] = 7;
    InlineFunction<int()> fn([big]() { return big[0]; });
    EXPECT_FALSE(fn.onHeap());
    EXPECT_EQ(fn(), 7);
}

TEST(InlineFunctionTest, OversizedCaptureFallsBackToHeap)
{
    std::array<char, handlerInlineBytes + 1> big{};
    big[1] = 9;
    InlineFunction<int()> fn([big]() { return big[1]; });
    EXPECT_TRUE(fn.onHeap());
    EXPECT_EQ(fn(), 9);
}

TEST(InlineFunctionTest, MoveTransfersOwnership)
{
    InlineFunction<int()> a([]() { return 5; });
    InlineFunction<int()> b(std::move(a));
    EXPECT_FALSE(static_cast<bool>(a));
    EXPECT_TRUE(static_cast<bool>(b));
    EXPECT_EQ(b(), 5);

    InlineFunction<int()> c;
    c = std::move(b);
    EXPECT_FALSE(static_cast<bool>(b));
    EXPECT_EQ(c(), 5);
}

TEST(InlineFunctionTest, MoveAssignDestroysPreviousTarget)
{
    {
        InlineFunction<void()> fn([t = Tracked{}]() { (void)t; });
        EXPECT_EQ(Tracked::live, 1);
        fn = InlineFunction<void()>([]() {});
        EXPECT_EQ(Tracked::live, 0);
    }
    EXPECT_EQ(Tracked::live, 0);
}

TEST(InlineFunctionTest, DestructorReleasesInlineAndHeapCaptures)
{
    {
        InlineFunction<void()> small([t = Tracked{}]() { (void)t; });
        std::array<char, handlerInlineBytes> pad{};
        InlineFunction<void()> large(
            [t = Tracked{}, pad]() { (void)t; (void)pad; });
        EXPECT_FALSE(small.onHeap());
        EXPECT_TRUE(large.onHeap());
        EXPECT_EQ(Tracked::live, 2);
    }
    EXPECT_EQ(Tracked::live, 0);
}

TEST(InlineFunctionTest, ResetLeavesEmpty)
{
    InlineFunction<void()> fn([t = Tracked{}]() { (void)t; });
    EXPECT_EQ(Tracked::live, 1);
    fn.reset();
    EXPECT_EQ(Tracked::live, 0);
    EXPECT_FALSE(static_cast<bool>(fn));
}

TEST(InlineFunctionTest, MoveOnlyCapturesWork)
{
    auto p = std::make_unique<int>(77);
    InlineFunction<int()> fn([p = std::move(p)]() { return *p; });
    EXPECT_FALSE(fn.onHeap());
    InlineFunction<int()> moved(std::move(fn));
    EXPECT_EQ(moved(), 77);
}

TEST(InlineFunctionTest, ArgumentsAndReturnValuesFlowThrough)
{
    InlineFunction<int(int, int)> add(
        [](int a, int b) { return a + b; });
    EXPECT_EQ(add(2, 3), 5);

    std::vector<int> sink;
    InlineFunction<void(int)> push(
        [&sink](int v) { sink.push_back(v); });
    push(1);
    push(2);
    EXPECT_EQ(sink, (std::vector<int>{1, 2}));
}

TEST(InlineFunctionTest, MutableCaptureStateSurvivesCalls)
{
    InlineFunction<int()> fn([n = 0]() mutable { return ++n; });
    EXPECT_EQ(fn(), 1);
    EXPECT_EQ(fn(), 2);
    EXPECT_EQ(fn(), 3);
}
