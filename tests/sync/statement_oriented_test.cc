/**
 * @file
 * Statement-oriented Advance/Await codegen (Fig. 3.2) and its
 * hallmark serialization behaviour.
 */

#include <gtest/gtest.h>

#include "core/runtime.hh"
#include "sim/machine.hh"
#include "sync/statement_oriented.hh"
#include "workloads/fig21.hh"

using namespace psync;
using sim::Op;
using sim::OpKind;

namespace {

sim::MachineConfig
regConfig(unsigned procs = 4)
{
    sim::MachineConfig cfg;
    cfg.numProcs = procs;
    cfg.fabric = sim::FabricKind::registers;
    cfg.syncRegisters = 1024;
    return cfg;
}

} // namespace

TEST(StatementOrientedTest, OneCounterPerSourceStatement)
{
    sim::Machine machine(regConfig());
    dep::Loop loop = workloads::makeFig21Loop(32);
    dep::DepGraph graph(loop);
    dep::DataLayout layout(loop);
    sync::StatementOrientedScheme scheme;
    sync::SchemeConfig cfg;
    auto plan = scheme.plan(graph, layout, machine.fabric(), cfg);

    // Sources S1, S2, S3, S4 -> 4 SCs.
    EXPECT_EQ(plan.numSyncVars, 4u);
    EXPECT_TRUE(scheme.isSource(0));
    EXPECT_TRUE(scheme.isSource(1));
    EXPECT_TRUE(scheme.isSource(2));
    EXPECT_TRUE(scheme.isSource(3));
    EXPECT_FALSE(scheme.isSource(4));
}

TEST(StatementOrientedTest, AdvanceIsWaitThenSet)
{
    sim::Machine machine(regConfig());
    dep::Loop loop = workloads::makeFig21Loop(32);
    dep::DepGraph graph(loop);
    dep::DataLayout layout(loop);
    sync::StatementOrientedScheme scheme;
    sync::SchemeConfig cfg;
    scheme.plan(graph, layout, machine.fabric(), cfg);

    sim::Program prog = scheme.emit(10);
    // Every Advance: waitGE(sc, 9) immediately followed by
    // write(sc, 10).
    unsigned advances = 0;
    for (size_t k = 0; k + 1 < prog.ops.size(); ++k) {
        const Op &a = prog.ops[k];
        const Op &b = prog.ops[k + 1];
        if (a.kind == OpKind::syncWaitGE &&
            b.kind == OpKind::syncWrite && a.var == b.var) {
            EXPECT_EQ(a.value, 9u);
            EXPECT_EQ(b.value, 10u);
            ++advances;
        }
    }
    EXPECT_EQ(advances, 4u);
}

TEST(StatementOrientedTest, AwaitThresholds)
{
    sim::Machine machine(regConfig());
    dep::Loop loop = workloads::makeFig21Loop(32);
    dep::DepGraph graph(loop);
    dep::DataLayout layout(loop);
    sync::StatementOrientedScheme scheme;
    sync::SchemeConfig cfg;
    scheme.plan(graph, layout, machine.fabric(), cfg);

    sim::Program prog = scheme.emit(10);
    // S2's Await on S1's counter must be sc[S1] >= 10-2 = 8.
    bool found = false;
    for (const Op &op : prog.ops) {
        if (op.kind == OpKind::syncWaitGE &&
            op.var == scheme.scVarOf(0) && op.value == 8u) {
            found = true;
        }
    }
    EXPECT_TRUE(found);
}

TEST(StatementOrientedTest, TooFewCountersIsFatal)
{
    sim::Machine machine(regConfig());
    dep::Loop loop = workloads::makeFig21Loop(32);
    dep::DepGraph graph(loop);
    dep::DataLayout layout(loop);
    sync::StatementOrientedScheme scheme;
    sync::SchemeConfig cfg;
    cfg.numScs = 2; // needs 4
    EXPECT_EXIT(scheme.plan(graph, layout, machine.fabric(), cfg),
                ::testing::ExitedWithCode(1), "statement counters");
}

TEST(StatementOrientedTest, DelayedProcessStallsSuccessors)
{
    // The section 4 criticism: under SCs, one slow process delays
    // the Advance chain of *every* later process; under PCs only
    // the real dependence sinks wait. A long guarded delay in a
    // few iterations should therefore hurt the statement scheme
    // more than the process scheme.
    dep::Loop loop = workloads::makeFig21JitterLoop(
        96, 4, 400, 0.10, 99);
    core::RunConfig cfg;
    cfg.machine = regConfig(8);
    cfg.tickLimit = 10000000;

    auto sc = core::runDoacross(
        loop, sync::SchemeKind::statementOriented, cfg);
    auto pc = core::runDoacross(
        loop, sync::SchemeKind::processImproved, cfg);
    ASSERT_TRUE(sc.run.completed);
    ASSERT_TRUE(pc.run.completed);
    EXPECT_TRUE(sc.correct());
    EXPECT_TRUE(pc.correct());
    // Process-oriented must not lose; typically it wins clearly.
    EXPECT_LE(pc.run.cycles, sc.run.cycles);
}
