/**
 * @file
 * Reference-based keys: the access-order numbering must reproduce
 * Fig. 3.1a, where both reads of a written value share one order
 * number and may proceed in parallel.
 */

#include <gtest/gtest.h>

#include "sim/machine.hh"
#include "sync/reference_based.hh"
#include "workloads/branches.hh"
#include "workloads/fig21.hh"
#include "workloads/nested.hh"

using namespace psync;
using sim::OpKind;

namespace {

sim::MachineConfig
memConfig()
{
    sim::MachineConfig cfg;
    cfg.numProcs = 4;
    cfg.fabric = sim::FabricKind::memory;
    return cfg;
}

struct Rig
{
    sim::Machine machine;
    dep::Loop loop;
    dep::DepGraph graph;
    dep::DataLayout layout;
    sync::ReferenceBasedScheme scheme;
    sync::SchemePlan plan;

    explicit Rig(dep::Loop l)
        : machine(memConfig()),
          loop(std::move(l)),
          graph(loop),
          layout(loop),
          scheme()
    {
        sync::SchemeConfig cfg;
        plan = scheme.plan(graph, layout, machine.fabric(), cfg);
    }
};

} // namespace

TEST(ReferenceBasedTest, OneKeyPerElement)
{
    Rig rig(workloads::makeFig21Loop(16));
    // A[0..19]: 20 elements, 20 keys.
    EXPECT_EQ(rig.plan.numSyncVars, 20u);
    EXPECT_EQ(rig.plan.initWrites, 20u);
}

TEST(ReferenceBasedTest, Fig31aOrderNumbers)
{
    // Element A[i+3] (deep inside the loop) is accessed in
    // sequential order: S1 write (iter i), S2 read (i+2), S3 read
    // (i+1), S4 write (i+3), S5 read (i+4).
    // Orders: write 0; the two reads both 1 (read run); the second
    // write 3; the final read 4 — exactly the circles in Fig. 3.1a.
    Rig rig(workloads::makeFig21Loop(32));

    std::uint64_t i = 10;
    EXPECT_EQ(rig.scheme.orderOf(i, 0, 0), 0u);        // S1 write
    EXPECT_EQ(rig.scheme.orderOf(i + 2, 1, 0), 1u);    // S2 read
    EXPECT_EQ(rig.scheme.orderOf(i + 1, 2, 0), 1u);    // S3 read
    EXPECT_EQ(rig.scheme.orderOf(i + 3, 3, 0), 3u);    // S4 write
    EXPECT_EQ(rig.scheme.orderOf(i + 4, 4, 0), 4u);    // S5 read
}

TEST(ReferenceBasedTest, SharedReadOrderUsesSameKey)
{
    Rig rig(workloads::makeFig21Loop(32));
    // S2@i+2 and S3@i+1 touch the same element => same key.
    const auto &s2 = rig.loop.body[1].refs[0];
    const auto &s3 = rig.loop.body[2].refs[0];
    EXPECT_EQ(rig.scheme.keyOf(s2, 12, 0), rig.scheme.keyOf(s3, 11, 0));
}

TEST(ReferenceBasedTest, EmissionWaitsAccessesIncrements)
{
    Rig rig(workloads::makeFig21Loop(32));
    sim::Program prog = rig.scheme.emit(10);

    // Each of the 5 refs: wait, access, fetch-inc, in that order.
    unsigned triples = 0;
    for (size_t k = 0; k + 2 < prog.ops.size(); ++k) {
        if (prog.ops[k].kind == OpKind::syncWaitGE &&
            (prog.ops[k + 1].kind == OpKind::dataRead ||
             prog.ops[k + 1].kind == OpKind::dataWrite) &&
            prog.ops[k + 2].kind == OpKind::syncFetchInc) {
            EXPECT_EQ(prog.ops[k].var, prog.ops[k + 2].var);
            ++triples;
        }
    }
    EXPECT_EQ(triples, 5u);
}

TEST(ReferenceBasedTest, BoundaryElementsGetSmallerOrders)
{
    // A[I+3] at the last iterations is never re-accessed: the order
    // numbers per element simply stop growing. First iteration's
    // reads of A[2] (never written): order 0 immediately.
    Rig rig(workloads::makeFig21Loop(8));
    // S3 reads A[I+2]: at I=1 reads A[3]... written by S1@0? No:
    // A[3] < A[1+3]=A[4]; A[3] is written by... I+3=3 -> I=0 (out
    // of range). So first access order is 0.
    EXPECT_EQ(rig.scheme.orderOf(1, 2, 0), 0u);
}

TEST(ReferenceBasedTest, NestedLoopPaysBoundaryCheckCost)
{
    Rig nested(workloads::makeNestedLoop(6, 6));
    sim::Program prog = nested.scheme.emit(8);
    // First op: the O(r*d) boundary-check compute.
    ASSERT_FALSE(prog.ops.empty());
    EXPECT_EQ(prog.ops.front().kind, OpKind::compute);
    // r = 5 refs, d = 2, default cost 2 -> 20 cycles.
    EXPECT_EQ(prog.ops.front().cycles, 20u);

    Rig flat(workloads::makeFig21Loop(16));
    sim::Program flat_prog = flat.scheme.emit(8);
    EXPECT_NE(flat_prog.ops.front().kind, OpKind::compute);
}

TEST(ReferenceBasedTest, GuardedStatementsGetConsistentOrders)
{
    // With branches, order numbers follow the *resolved* execution,
    // so an untaken writer simply doesn't bump its element's count.
    dep::Loop loop = workloads::makeBranchLoop(64, 0.5, 4, 8, 16, 7);
    Rig rig(std::move(loop));
    EXPECT_GT(rig.plan.numSyncVars, 0u);
}
