/** @file Counter and butterfly barriers (Example 4). */

#include <gtest/gtest.h>

#include "core/runtime.hh"
#include "sim/machine.hh"
#include "sync/barrier.hh"
#include "workloads/butterfly.hh"

using namespace psync;

namespace {

sim::MachineConfig
config(unsigned procs, sim::FabricKind fabric)
{
    sim::MachineConfig cfg;
    cfg.numProcs = procs;
    cfg.fabric = fabric;
    cfg.syncRegisters = 256;
    return cfg;
}

} // namespace

TEST(BarrierTest, ButterflyNeedsPowerOfTwo)
{
    sim::Machine m(config(4, sim::FabricKind::registers));
    EXPECT_EXIT(sync::ButterflyBarrier(m.fabric(), 6),
                ::testing::ExitedWithCode(1), "power-of-two");
}

TEST(BarrierTest, ButterflyStagesAreLog2P)
{
    sim::Machine m(config(4, sim::FabricKind::registers));
    sync::ButterflyBarrier b8(m.fabric(), 8);
    EXPECT_EQ(b8.stages(), 3u);
    sync::ButterflyBarrier b2(m.fabric(), 2);
    EXPECT_EQ(b2.stages(), 1u);
}

TEST(BarrierTest, NoArrivalEscapesEarly)
{
    // One processor is 200 cycles slower; nobody's post-barrier
    // work may start before the slow arrival.
    for (bool use_butterfly : {true, false}) {
        sim::Machine m(config(4, sim::FabricKind::registers));
        workloads::BarrierSpec spec;
        spec.numProcs = 4;
        spec.episodes = 1;
        spec.workCost = 10;

        std::vector<std::vector<sim::Program>> progs;
        if (use_butterfly) {
            sync::ButterflyBarrier barrier(m.fabric(), 4);
            progs = workloads::buildButterflyPrograms(barrier, spec);
        } else {
            sync::CounterBarrier barrier(m.fabric(), 4);
            progs = workloads::buildCounterBarrierPrograms(barrier,
                                                           spec);
        }
        // Make processor 2 slow.
        progs[2][0].ops.insert(progs[2][0].ops.begin(),
                               sim::Op::mkCompute(200));
        auto result = core::runPerProcessorPrograms(m, progs);
        ASSERT_TRUE(result.completed);
        for (unsigned p = 0; p < 4; ++p) {
            EXPECT_GE(m.proc(p).haltTick(), 210u)
                << (use_butterfly ? "butterfly" : "counter")
                << " proc " << p;
        }
    }
}

TEST(BarrierTest, RepeatedEpisodesStayInLockstep)
{
    sim::Machine m(config(8, sim::FabricKind::registers));
    sync::ButterflyBarrier barrier(m.fabric(), 8);
    workloads::BarrierSpec spec;
    spec.numProcs = 8;
    spec.episodes = 12;
    spec.workCost = 16;
    spec.workJitter = 48;
    auto progs = workloads::buildButterflyPrograms(barrier, spec);
    auto result = core::runPerProcessorPrograms(m, progs);
    ASSERT_TRUE(result.completed);
    // Total runtime >= sum over episodes of max work (>= 12 * 16).
    EXPECT_GE(result.cycles, 12u * 16u);
}

TEST(BarrierTest, CounterBarrierHammersOneModule)
{
    // On the memory fabric the counter + release flag live in two
    // words; arrivals and spin polls concentrate there.
    sim::MachineConfig cfg = config(8, sim::FabricKind::memory);
    sim::Machine m(cfg);
    sync::CounterBarrier barrier(m.fabric(), 8);
    workloads::BarrierSpec spec;
    spec.numProcs = 8;
    spec.episodes = 8;
    spec.workCost = 8;
    spec.workJitter = 64;
    auto progs = workloads::buildCounterBarrierPrograms(barrier, spec);
    auto result = core::runPerProcessorPrograms(m, progs);
    ASSERT_TRUE(result.completed);
    EXPECT_GT(result.hotSpotRatio, 2.0);
}

TEST(BarrierTest, ButterflySpreadsTrafficOnRegisters)
{
    sim::Machine m(config(8, sim::FabricKind::registers));
    sync::ButterflyBarrier barrier(m.fabric(), 8);
    workloads::BarrierSpec spec;
    spec.numProcs = 8;
    spec.episodes = 8;
    spec.workCost = 8;
    auto progs = workloads::buildButterflyPrograms(barrier, spec);
    auto result = core::runPerProcessorPrograms(m, progs);
    ASSERT_TRUE(result.completed);
    // All barrier traffic is broadcasts; memory stays untouched.
    // Writes that were still queued when the next stage's write
    // arrived coalesce legitimately (the newer step covers the
    // older), so broadcasts + coalesced = one write per stage.
    EXPECT_EQ(result.memAccesses, 0u);
    EXPECT_EQ(result.syncBusBroadcasts + result.coalescedWrites,
              8u * 8u * 3u);
}

TEST(BarrierTest, ButterflyBeatsCounterUnderContention)
{
    // The paper (citing [6]): the butterfly performs better than a
    // counter barrier even on a small bus-based system. Compare on
    // the memory fabric where the hot spot actually costs cycles.
    auto run = [](bool butterfly) {
        sim::MachineConfig cfg = config(16, sim::FabricKind::memory);
        sim::Machine m(cfg);
        workloads::BarrierSpec spec;
        spec.numProcs = 16;
        spec.episodes = 16;
        spec.workCost = 4;
        std::vector<std::vector<sim::Program>> progs;
        if (butterfly) {
            sync::ButterflyBarrier b(m.fabric(), 16);
            progs = workloads::buildButterflyPrograms(b, spec);
        } else {
            sync::CounterBarrier b(m.fabric(), 16);
            progs = workloads::buildCounterBarrierPrograms(b, spec);
        }
        auto r = core::runPerProcessorPrograms(m, progs);
        EXPECT_TRUE(r.completed);
        return r.cycles;
    };
    EXPECT_LT(run(true), run(false));
}
