/** @file Cedar-style combined keyed accesses (section 3.1, [26]). */

#include <gtest/gtest.h>

#include "core/runtime.hh"
#include "sim/machine.hh"
#include "workloads/fig21.hh"
#include "workloads/nested.hh"

using namespace psync;

namespace {

core::RunConfig
memConfig(bool combining, unsigned procs = 4)
{
    core::RunConfig cfg;
    cfg.machine.numProcs = procs;
    cfg.machine.fabric = sim::FabricKind::memory;
    cfg.scheme.cedarCombining = combining;
    cfg.tickLimit = 50000000;
    return cfg;
}

} // namespace

TEST(CedarCombiningTest, CorrectOnFig21)
{
    dep::Loop loop = workloads::makeFig21Loop(64);
    auto r = core::runDoacross(
        loop, sync::SchemeKind::referenceBased, memConfig(true));
    ASSERT_TRUE(r.run.completed);
    EXPECT_TRUE(r.correct())
        << (r.violations.empty() ? "" : r.violations.front());
}

TEST(CedarCombiningTest, CorrectOnNestedAndBranches)
{
    dep::Loop nested = workloads::makeNestedLoop(8, 8);
    auto r1 = core::runDoacross(
        nested, sync::SchemeKind::referenceBased, memConfig(true));
    ASSERT_TRUE(r1.run.completed);
    EXPECT_TRUE(r1.correct());
}

TEST(CedarCombiningTest, OneTransactionPerAccess)
{
    // Split mode: wait polls + access + RMW per reference.
    // Combined mode: one interconnect transaction per reference
    // (plus module-local retries that never touch the bus).
    dep::Loop loop = workloads::makeFig21Loop(64);
    auto split = core::runDoacross(
        loop, sync::SchemeKind::referenceBased, memConfig(false));
    auto combined = core::runDoacross(
        loop, sync::SchemeKind::referenceBased, memConfig(true));
    ASSERT_TRUE(split.run.completed);
    ASSERT_TRUE(combined.run.completed);
    EXPECT_LT(combined.run.dataBusTransactions,
              split.run.dataBusTransactions / 2);
    EXPECT_LT(combined.run.cycles, split.run.cycles);
}

TEST(CedarCombiningTest, KeyedOpsCounted)
{
    dep::Loop loop = workloads::makeFig21Loop(32);
    core::TraceChecker checker;
    auto cfg = memConfig(true);
    sim::Machine machine(cfg.machine, &checker);
    auto *fab = dynamic_cast<sim::MemorySyncFabric *>(
        &machine.fabric());
    ASSERT_NE(fab, nullptr);

    dep::DepGraph graph(loop);
    dep::DataLayout layout(loop);
    auto scheme = sync::makeScheme(sync::SchemeKind::referenceBased);
    scheme->plan(graph, layout, machine.fabric(), cfg.scheme);
    std::vector<sim::Program> programs;
    for (std::uint64_t i = 1; i <= 32; ++i)
        programs.push_back(scheme->emit(i));
    auto r = core::runProgramPool(
        machine, programs, core::SchedulePolicy::selfScheduling);
    ASSERT_TRUE(r.completed);
    // 5 references per iteration.
    EXPECT_EQ(fab->keyedOps(), 5u * 32u);
}

TEST(CedarCombiningTest, RegisterFabricRejectsKeyedOps)
{
    sim::MachineConfig mc;
    mc.numProcs = 1;
    mc.fabric = sim::FabricKind::registers;
    mc.syncRegisters = 16;
    sim::Machine m(mc);
    m.fabric().allocate(1, 0);
    std::vector<sim::Program> progs(1);
    progs[0].iter = 1;
    progs[0].ops = {sim::Op::mkKeyed(false, 0, 0, 8, 0)};
    size_t next = 0;
    auto dispatch = [&](sim::ProcId,
                        std::function<void(const sim::Program *)>
                            cb) {
        if (next >= progs.size()) {
            cb(nullptr);
            return;
        }
        cb(&progs[next++]);
    };
    EXPECT_DEATH(m.run(dispatch), "memory-resident keys");
}

TEST(CedarCombiningTest, ParkedRequestsRetryAtModuleOnly)
{
    // Force parking: a keyed request whose key starts below the
    // threshold, satisfied later by another keyed access.
    core::RunConfig cfg = memConfig(true, 2);
    sim::Machine m(cfg.machine);
    auto *fab = dynamic_cast<sim::MemorySyncFabric *>(&m.fabric());
    ASSERT_NE(fab, nullptr);
    fab->allocate(1, 0);

    std::vector<std::vector<sim::Program>> progs(2);
    progs[0].resize(1);
    progs[0][0].iter = 1;
    progs[0][0].ops = {sim::Op::mkKeyed(false, 0, 1, 8, 0)};
    progs[1].resize(1);
    progs[1][0].iter = 2;
    progs[1][0].ops = {sim::Op::mkCompute(100),
                       sim::Op::mkKeyed(true, 0, 0, 8, 0)};
    auto r = core::runPerProcessorPrograms(m, progs);
    ASSERT_TRUE(r.completed);
    EXPECT_GE(fab->keyedRetries(), 1u);
    EXPECT_EQ(fab->peek(0), 2u); // both accesses incremented
}
