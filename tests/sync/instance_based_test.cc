/**
 * @file
 * Instance-based renaming: copies per reader (Fig. 3.1b), flow-only
 * synchronization, storage accounting.
 */

#include <gtest/gtest.h>

#include "sim/machine.hh"
#include "sync/instance_based.hh"
#include "workloads/branches.hh"
#include "workloads/fig21.hh"

using namespace psync;
using sim::OpKind;

namespace {

sim::MachineConfig
memConfig()
{
    sim::MachineConfig cfg;
    cfg.numProcs = 4;
    cfg.fabric = sim::FabricKind::memory;
    return cfg;
}

} // namespace

TEST(InstanceBasedTest, CopiesMatchFig31b)
{
    sim::Machine machine(memConfig());
    dep::Loop loop = workloads::makeFig21Loop(32);
    dep::DepGraph graph(loop);
    dep::DataLayout layout(loop);
    sync::InstanceBasedScheme scheme;
    sync::SchemeConfig cfg;
    auto plan = scheme.plan(graph, layout, machine.fabric(), cfg);

    // S1's A[I+3] feeds S2 and S3 -> 2 copies (keys Ia, Ib);
    // S4's A[I] feeds S5 -> 1 copy (key Ic).
    EXPECT_EQ(scheme.copiesOfSlot(0), 2u);
    EXPECT_EQ(scheme.copiesOfSlot(1), 1u);

    // 3 keys per iteration.
    EXPECT_EQ(plan.numSyncVars, 3u * 32u);
    // Full/empty bits: one bit per key.
    EXPECT_EQ(plan.syncStorageBytes, (3u * 32u + 7) / 8);
    // 3 renamed copies per iteration, 8 bytes each.
    EXPECT_EQ(plan.renamedStorageBytes, 3u * 32u * 8u);
}

TEST(InstanceBasedTest, OnlyFlowDepsVerified)
{
    sim::Machine machine(memConfig());
    dep::Loop loop = workloads::makeFig21Loop(32);
    dep::DepGraph graph(loop);
    dep::DataLayout layout(loop);
    sync::InstanceBasedScheme scheme;
    sync::SchemeConfig cfg;
    auto plan = scheme.plan(graph, layout, machine.fabric(), cfg);

    for (const auto &d : plan.depsVerified)
        EXPECT_EQ(d.type, dep::DepType::flow);
    // S1->S2, S1->S3, S4->S5 resolved; S1->S5 (d=4) is superseded
    // by the nearer writer S4 (d=1) on the same read.
    EXPECT_EQ(plan.depsVerified.size(), 3u);
}

TEST(InstanceBasedTest, WritersNeverWait)
{
    sim::Machine machine(memConfig());
    dep::Loop loop = workloads::makeFig21Loop(32);
    dep::DepGraph graph(loop);
    dep::DataLayout layout(loop);
    sync::InstanceBasedScheme scheme;
    sync::SchemeConfig cfg;
    scheme.plan(graph, layout, machine.fabric(), cfg);

    sim::Program prog = scheme.emit(10);
    // The only waits are the three reads' full/empty checks
    // (threshold 1); writes are unsynchronized.
    unsigned waits = 0;
    for (const auto &op : prog.ops) {
        if (op.kind == OpKind::syncWaitGE) {
            EXPECT_EQ(op.value, 1u);
            ++waits;
        }
    }
    EXPECT_EQ(waits, 3u);
}

TEST(InstanceBasedTest, MultiReaderWritesAllCopies)
{
    sim::Machine machine(memConfig());
    dep::Loop loop = workloads::makeFig21Loop(32);
    dep::DepGraph graph(loop);
    dep::DataLayout layout(loop);
    sync::InstanceBasedScheme scheme;
    sync::SchemeConfig cfg;
    scheme.plan(graph, layout, machine.fabric(), cfg);

    sim::Program prog = scheme.emit(10);
    unsigned writes = 0, key_sets = 0;
    for (const auto &op : prog.ops) {
        if (op.kind == OpKind::dataWrite)
            ++writes;
        if (op.kind == OpKind::syncWrite)
            ++key_sets;
    }
    // S1 writes 2 copies, S4 writes 1 copy.
    EXPECT_EQ(writes, 3u);
    EXPECT_EQ(key_sets, 3u);
}

TEST(InstanceBasedTest, BoundaryReadsUseOriginalArray)
{
    sim::Machine machine(memConfig());
    dep::Loop loop = workloads::makeFig21Loop(32);
    dep::DepGraph graph(loop);
    dep::DataLayout layout(loop);
    sync::InstanceBasedScheme scheme;
    sync::SchemeConfig cfg;
    scheme.plan(graph, layout, machine.fabric(), cfg);

    // Iteration 1: no producer in range for any read -> no waits.
    sim::Program prog = scheme.emit(1);
    for (const auto &op : prog.ops)
        EXPECT_NE(op.kind, OpKind::syncWaitGE);
}

TEST(InstanceBasedTest, BranchesRejected)
{
    sim::Machine machine(memConfig());
    dep::Loop loop = workloads::makeBranchLoop(16, 0.5);
    dep::DepGraph graph(loop);
    dep::DataLayout layout(loop);
    sync::InstanceBasedScheme scheme;
    sync::SchemeConfig cfg;
    EXPECT_EXIT(scheme.plan(graph, layout, machine.fabric(), cfg),
                ::testing::ExitedWithCode(1), "branch");
}
