/** @file Dissemination barrier — any processor count. */

#include <gtest/gtest.h>

#include "core/runtime.hh"
#include "sim/machine.hh"
#include "sync/barrier.hh"
#include "workloads/butterfly.hh"

using namespace psync;

namespace {

sim::MachineConfig
config(unsigned procs)
{
    sim::MachineConfig cfg;
    cfg.numProcs = procs;
    cfg.fabric = sim::FabricKind::registers;
    cfg.syncRegisters = 2 * procs + 8;
    return cfg;
}

} // namespace

TEST(DisseminationTest, RoundsAreCeilLog2)
{
    auto cfg = config(4);
    cfg.syncRegisters = 64; // four barriers share this fabric
    sim::Machine m(cfg);
    EXPECT_EQ(sync::DisseminationBarrier(m.fabric(), 2).rounds(),
              1u);
    EXPECT_EQ(sync::DisseminationBarrier(m.fabric(), 3).rounds(),
              2u);
    EXPECT_EQ(sync::DisseminationBarrier(m.fabric(), 8).rounds(),
              3u);
    EXPECT_EQ(sync::DisseminationBarrier(m.fabric(), 9).rounds(),
              4u);
}

TEST(DisseminationTest, NonPowerOfTwoProcessorCounts)
{
    for (unsigned p : {2u, 3u, 5u, 6u, 7u, 12u, 13u}) {
        sim::Machine m(config(p));
        sync::DisseminationBarrier barrier(m.fabric(), p);
        workloads::BarrierSpec spec;
        spec.numProcs = p;
        spec.episodes = 5;
        spec.workCost = 10;
        spec.workJitter = 40;
        auto progs =
            workloads::buildDisseminationPrograms(barrier, spec);
        auto r = core::runPerProcessorPrograms(m, progs);
        ASSERT_TRUE(r.completed) << "P=" << p;
    }
}

TEST(DisseminationTest, NoArrivalEscapesEarly)
{
    const unsigned p = 6;
    sim::Machine m(config(p));
    sync::DisseminationBarrier barrier(m.fabric(), p);
    workloads::BarrierSpec spec;
    spec.numProcs = p;
    spec.episodes = 1;
    spec.workCost = 10;
    auto progs = workloads::buildDisseminationPrograms(barrier, spec);
    // Processor 4 is 300 cycles slower than everyone else.
    progs[4][0].ops.insert(progs[4][0].ops.begin(),
                           sim::Op::mkCompute(300));
    auto r = core::runPerProcessorPrograms(m, progs);
    ASSERT_TRUE(r.completed);
    for (unsigned q = 0; q < p; ++q)
        EXPECT_GE(m.proc(q).haltTick(), 310u) << "proc " << q;
}

TEST(DisseminationTest, MatchesButterflyOnPowersOfTwo)
{
    // Same round count and write/wait volume as the butterfly when
    // P is a power of two.
    const unsigned p = 8;
    workloads::BarrierSpec spec;
    spec.numProcs = p;
    spec.episodes = 8;
    spec.workCost = 16;

    sim::Machine md(config(p));
    sync::DisseminationBarrier dis(md.fabric(), p);
    auto rd = core::runPerProcessorPrograms(
        md, workloads::buildDisseminationPrograms(dis, spec));

    sim::Machine mb(config(p));
    sync::ButterflyBarrier bf(mb.fabric(), p);
    auto rb = core::runPerProcessorPrograms(
        mb, workloads::buildButterflyPrograms(bf, spec));

    ASSERT_TRUE(rd.completed);
    ASSERT_TRUE(rb.completed);
    EXPECT_EQ(rd.syncOps, rb.syncOps);
    // Cycle counts may differ slightly (different partner
    // patterns), but stay in the same ballpark.
    EXPECT_NEAR(static_cast<double>(rd.cycles),
                static_cast<double>(rb.cycles),
                0.25 * rb.cycles);
}

TEST(DisseminationTest, SingleProcessorDegenerates)
{
    sim::Machine m(config(1));
    sync::DisseminationBarrier barrier(m.fabric(), 1);
    workloads::BarrierSpec spec;
    spec.numProcs = 1;
    spec.episodes = 3;
    spec.workCost = 5;
    auto progs = workloads::buildDisseminationPrograms(barrier, spec);
    auto r = core::runPerProcessorPrograms(m, progs);
    EXPECT_TRUE(r.completed);
}
