/**
 * @file
 * The process-oriented scheme's codegen must reproduce the
 * transformed loop of Fig. 4.2b, step numbering and all.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/machine.hh"
#include "sync/process_oriented.hh"
#include "workloads/fig21.hh"

using namespace psync;
using sim::Op;
using sim::OpKind;
using sim::PcWord;

namespace {

struct Rig
{
    sim::Machine machine;
    dep::Loop loop;
    dep::DepGraph graph;
    dep::DataLayout layout;
    sync::ProcessOrientedScheme scheme;
    sync::SchemePlan plan;

    explicit Rig(bool improved, unsigned num_pcs = 4, long n = 32)
        : machine(makeConfig()),
          loop(workloads::makeFig21Loop(n)),
          graph(loop),
          layout(loop),
          scheme(improved)
    {
        sync::SchemeConfig cfg;
        cfg.numPcs = num_pcs;
        plan = scheme.plan(graph, layout, machine.fabric(), cfg);
    }

    static sim::MachineConfig
    makeConfig()
    {
        sim::MachineConfig cfg;
        cfg.numProcs = 2;
        cfg.fabric = sim::FabricKind::registers;
        cfg.syncRegisters = 64;
        return cfg;
    }
};

std::vector<OpKind>
kindsOf(const sim::Program &prog)
{
    std::vector<OpKind> kinds;
    for (const auto &op : prog.ops)
        kinds.push_back(op.kind);
    return kinds;
}

std::vector<const Op *>
opsOfKind(const sim::Program &prog, OpKind kind)
{
    std::vector<const Op *> out;
    for (const auto &op : prog.ops) {
        if (op.kind == kind)
            out.push_back(&op);
    }
    return out;
}

} // namespace

TEST(ProcessOrientedTest, StepNumberingFollowsSourceOrder)
{
    Rig rig(true);
    // Sources in Fig. 2.1: S1 (step 1), S2 (step 2), S3 (step 3),
    // S4 (step 4); S5 is never a source.
    EXPECT_EQ(rig.scheme.stepOf(0), 1u);
    EXPECT_EQ(rig.scheme.stepOf(1), 2u);
    EXPECT_EQ(rig.scheme.stepOf(2), 3u);
    EXPECT_EQ(rig.scheme.stepOf(3), 4u);
    EXPECT_EQ(rig.scheme.stepOf(4), 0u);
}

TEST(ProcessOrientedTest, PlanUsesExactlyXCounters)
{
    Rig rig(true, 8);
    EXPECT_EQ(rig.plan.numSyncVars, 8u);
    EXPECT_EQ(rig.plan.syncStorageBytes, 64u);
    EXPECT_EQ(rig.plan.initWrites, 8u);
    EXPECT_EQ(rig.scheme.numPcs(), 8u);
}

TEST(ProcessOrientedTest, InitialOwnership)
{
    Rig rig(true, 4);
    sim::SyncFabric &fab = rig.machine.fabric();
    // PC[1..3] owned by processes 1..3; PC[0] by process 4.
    EXPECT_EQ(fab.peek(rig.scheme.pcVarOf(1)), PcWord::pack(1, 0));
    EXPECT_EQ(fab.peek(rig.scheme.pcVarOf(2)), PcWord::pack(2, 0));
    EXPECT_EQ(fab.peek(rig.scheme.pcVarOf(3)), PcWord::pack(3, 0));
    EXPECT_EQ(fab.peek(rig.scheme.pcVarOf(4)), PcWord::pack(4, 0));
}

TEST(ProcessOrientedTest, BasicEmissionMatchesFig42b)
{
    // Fig. 4.2b for iteration i (deep inside the loop):
    //   S1(i); get_PC; set_PC(1); wait_PC(2,1);
    //   S2(i); set_PC(2); wait_PC(1,1);
    //   S3(i); set_PC(3); wait_PC(1,2); wait_PC(2,3);
    //   S4(i); release_PC; wait_PC(1,4);
    //   S5(i);
    // Our emission puts each statement's waits immediately before
    // its body (sink first), so the same ops appear as:
    //   [S1] get set(1) | wait(2,1) [S2] set(2) | wait(1,1) [S3]
    //   set(3) | wait(1,2) wait(2,3) [S4] release | wait(1,4) [S5]
    Rig rig(false, 4);
    sim::Program prog = rig.scheme.emit(10);

    auto waits = opsOfKind(prog, OpKind::syncWaitGE);
    // get_PC + 5 dependence waits.
    ASSERT_EQ(waits.size(), 6u);
    // get_PC waits for ownership <10, 0> on PC[10 mod 4].
    EXPECT_EQ(waits[0]->var, rig.scheme.pcVarOf(10));
    EXPECT_EQ(waits[0]->value, PcWord::pack(10, 0));
    // S2 waits for source S1 two iterations back at step 1.
    EXPECT_EQ(waits[1]->var, rig.scheme.pcVarOf(8));
    EXPECT_EQ(waits[1]->value, PcWord::pack(8, 1));
    // S3 waits for S1 one back, step 1.
    EXPECT_EQ(waits[2]->value, PcWord::pack(9, 1));
    // S4 waits for S2 one back (step 2) and S3 two back (step 3).
    EXPECT_EQ(waits[3]->value, PcWord::pack(9, 2));
    EXPECT_EQ(waits[4]->value, PcWord::pack(8, 3));
    // S5 waits for S4 one back, step 4.
    EXPECT_EQ(waits[5]->value, PcWord::pack(9, 4));

    auto sets = opsOfKind(prog, OpKind::syncWrite);
    ASSERT_EQ(sets.size(), 4u);
    EXPECT_EQ(sets[0]->value, PcWord::pack(10, 1));
    EXPECT_EQ(sets[1]->value, PcWord::pack(10, 2));
    EXPECT_EQ(sets[2]->value, PcWord::pack(10, 3));
    // release_PC hands the counter to process 14 = 10 + X.
    EXPECT_EQ(sets[3]->value, PcWord::pack(14, 0));
}

TEST(ProcessOrientedTest, ImprovedEmissionUsesMarkAndTransfer)
{
    Rig rig(true, 4);
    sim::Program prog = rig.scheme.emit(10);

    auto marks = opsOfKind(prog, OpKind::pcMark);
    ASSERT_EQ(marks.size(), 3u);
    EXPECT_EQ(marks[0]->value, PcWord::pack(10, 1));
    EXPECT_EQ(marks[2]->value, PcWord::pack(10, 3));

    auto transfers = opsOfKind(prog, OpKind::pcTransfer);
    ASSERT_EQ(transfers.size(), 1u);
    EXPECT_EQ(transfers[0]->value, PcWord::pack(14, 0));
    EXPECT_EQ(transfers[0]->aux, PcWord::pack(10, 0));

    // No blocking get_PC anywhere.
    for (const auto &op : prog.ops) {
        if (op.kind == OpKind::syncWaitGE)
            EXPECT_NE(op.value, PcWord::pack(10, 0));
    }
}

TEST(ProcessOrientedTest, EarlyIterationsSkipOutOfRangeWaits)
{
    Rig rig(true, 4);
    sim::Program first = rig.scheme.emit(1);
    EXPECT_TRUE(opsOfKind(first, OpKind::syncWaitGE).empty());

    // Iteration 2: only distance-1 deps apply.
    sim::Program second = rig.scheme.emit(2);
    auto waits = opsOfKind(second, OpKind::syncWaitGE);
    ASSERT_EQ(waits.size(), 3u); // S1->S3, S2->S4, S4->S5 (d=1)
    for (const auto *w : waits)
        EXPECT_EQ(PcWord::owner(w->value), 1u);
}

TEST(ProcessOrientedTest, SinkBeforeSourceWithinStatement)
{
    // S4 is both sink (of S2, S3) and source (of S5): its waits
    // must precede its body, the set must follow it.
    Rig rig(false, 4);
    sim::Program prog = rig.scheme.emit(10);
    auto kinds = kindsOf(prog);

    // Find S4's stmtStart and check neighborhood.
    size_t s4_start = 0;
    for (size_t k = 0; k < prog.ops.size(); ++k) {
        if (prog.ops[k].kind == OpKind::stmtStart &&
            prog.ops[k].stmt == 3) {
            s4_start = k;
        }
    }
    ASSERT_GT(s4_start, 1u);
    EXPECT_EQ(kinds[s4_start - 1], OpKind::syncWaitGE);
    EXPECT_EQ(kinds[s4_start - 2], OpKind::syncWaitGE);

    // Release comes after S4's stmtEnd.
    size_t s4_end = 0;
    for (size_t k = s4_start; k < prog.ops.size(); ++k) {
        if (prog.ops[k].kind == OpKind::stmtEnd &&
            prog.ops[k].stmt == 3) {
            s4_end = k;
        }
    }
    EXPECT_EQ(kinds[s4_end + 1], OpKind::syncWrite);
}

TEST(ProcessOrientedTest, DoallLoopEmitsNoSyncOps)
{
    // Independent iterations: no sources, no waits, no transfers.
    dep::Loop loop;
    loop.depth = 1;
    loop.outer = {1, 8};
    dep::Statement s;
    s.label = "S1";
    s.cost = 4;
    dep::ArrayRef w;
    w.array = "A";
    w.subs = {dep::Subscript{1, 0, 0}};
    w.isWrite = true;
    s.refs = {w};
    loop.body = {s};

    sim::MachineConfig mc = Rig::makeConfig();
    sim::Machine machine(mc);
    dep::DepGraph graph(loop);
    dep::DataLayout layout(loop);
    sync::ProcessOrientedScheme scheme(true);
    sync::SchemeConfig cfg;
    scheme.plan(graph, layout, machine.fabric(), cfg);

    sim::Program prog = scheme.emit(3);
    for (const auto &op : prog.ops) {
        EXPECT_NE(op.kind, OpKind::syncWaitGE);
        EXPECT_NE(op.kind, OpKind::pcMark);
        EXPECT_NE(op.kind, OpKind::pcTransfer);
        EXPECT_NE(op.kind, OpKind::syncWrite);
    }
}
