/** @file Raw PC-file primitive builders. */

#include <gtest/gtest.h>

#include "sim/machine.hh"
#include "sync/pc_file.hh"

using namespace psync;
using sim::PcWord;

namespace {

sim::MachineConfig
regConfig()
{
    sim::MachineConfig cfg;
    cfg.numProcs = 2;
    cfg.fabric = sim::FabricKind::registers;
    cfg.syncRegisters = 64;
    return cfg;
}

} // namespace

TEST(PcFileTest, InitialOwnershipByResidue)
{
    sim::Machine m(regConfig());
    sync::PcFile pcs(m.fabric(), 4);
    EXPECT_EQ(m.fabric().peek(pcs.varOf(1)), PcWord::pack(1, 0));
    EXPECT_EQ(m.fabric().peek(pcs.varOf(4)), PcWord::pack(4, 0));
    EXPECT_EQ(pcs.varOf(1), pcs.varOf(5));
    EXPECT_EQ(pcs.varOf(4), pcs.varOf(8));
    EXPECT_NE(pcs.varOf(1), pcs.varOf(2));
}

TEST(PcFileTest, OpBuildersEncodeOwnerStep)
{
    sim::Machine m(regConfig());
    sync::PcFile pcs(m.fabric(), 8);

    sim::Op wait = pcs.opWait(10, 2, 5);
    EXPECT_EQ(wait.kind, sim::OpKind::syncWaitGE);
    EXPECT_EQ(wait.var, pcs.varOf(8));
    EXPECT_EQ(wait.value, PcWord::pack(8, 5));

    sim::Op set = pcs.opSet(10, 3);
    EXPECT_EQ(set.kind, sim::OpKind::syncWrite);
    EXPECT_EQ(set.value, PcWord::pack(10, 3));

    sim::Op rel = pcs.opRelease(10);
    EXPECT_EQ(rel.value, PcWord::pack(18, 0));

    sim::Op get = pcs.opGet(10);
    EXPECT_EQ(get.value, PcWord::pack(10, 0));

    sim::Op mark = pcs.opMark(10, 2);
    EXPECT_EQ(mark.kind, sim::OpKind::pcMark);
    EXPECT_EQ(mark.value, PcWord::pack(10, 2));

    sim::Op xfer = pcs.opTransfer(10);
    EXPECT_EQ(xfer.kind, sim::OpKind::pcTransfer);
    EXPECT_EQ(xfer.value, PcWord::pack(18, 0));
    EXPECT_EQ(xfer.aux, PcWord::pack(10, 0));
}

TEST(PcFileTest, OwnershipChainAcrossFolding)
{
    // Processes 1 and 3 share PC[1] with X=2; run 1's transfer then
    // 3's transfer through real processors.
    sim::Machine m(regConfig());
    sync::PcFile pcs(m.fabric(), 2);

    std::vector<sim::Program> p0(1), p1(1);
    p0[0].iter = 1;
    p0[0].ops = {sim::Op::mkCompute(20), pcs.opTransfer(1)};
    p1[0].iter = 3;
    p1[0].ops = {pcs.opMark(3, 1), sim::Op::mkCompute(1),
                 pcs.opTransfer(3)};

    std::vector<size_t> next(2, 0);
    std::vector<std::vector<sim::Program> *> lists{&p0, &p1};
    auto dispatch = [&](sim::ProcId who,
                        std::function<void(const sim::Program *)> cb) {
        if (next[who] >= lists[who]->size()) {
            cb(nullptr);
            return;
        }
        cb(&(*lists[who])[next[who]++]);
    };
    ASSERT_TRUE(m.run(dispatch));
    // After both transfers, PC[1] belongs to process 5.
    EXPECT_EQ(m.fabric().peek(pcs.varOf(1)), PcWord::pack(5, 0));
    // Process 3's early mark was skipped (not yet owner).
    EXPECT_EQ(m.proc(1).marksSkipped(), 1u);
}
