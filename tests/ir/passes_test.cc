/**
 * @file
 * IR pass pipeline unit tests: redundant-wait elimination soundness
 * rules, peephole merging, the structural verifier (including the
 * negative case: a wait with no dominating signal source is
 * rejected at plan time), and runPasses bookkeeping.
 */

#include <gtest/gtest.h>

#include "ir/passes.hh"
#include "ir/program.hh"

using namespace psync;

namespace {

/** Plan-time init values: every variable starts at zero. */
ir::SyncWord
zeroInit(ir::SyncVarId)
{
    return 0;
}

ir::Program
makeProgram(std::uint64_t iter = 1)
{
    ir::Program prog;
    prog.iter = iter;
    return prog;
}

unsigned
countKind(const ir::Program &prog, ir::OpKind kind)
{
    unsigned n = 0;
    for (const auto &op : prog.ops)
        n += op.kind == kind ? 1 : 0;
    return n;
}

} // namespace

TEST(EliminationTest, DropsWaitDominatedByEarlierWrite)
{
    ir::Program prog = makeProgram();
    ir::ProgramBuilder b(prog);
    b.write(3, 5);
    b.waitGE(3, 5);  // dominated: the write established v3 >= 5
    b.waitGE(3, 3);  // dominated: 5 >= 3
    b.waitGE(3, 7);  // NOT dominated: 7 > 5

    EXPECT_EQ(ir::eliminateRedundantWaits(prog), 2u);
    ASSERT_EQ(prog.ops.size(), 2u);
    EXPECT_EQ(prog.ops[1].kind, ir::OpKind::syncWaitGE);
    EXPECT_EQ(prog.ops[1].value, 7u);
}

TEST(EliminationTest, EarlierWaitEstablishesItsThreshold)
{
    ir::Program prog = makeProgram();
    ir::ProgramBuilder b(prog);
    b.waitGE(1, 5);
    b.waitGE(1, 4);  // once v1 >= 5 held, v1 >= 4 holds (monotone)

    EXPECT_EQ(ir::eliminateRedundantWaits(prog), 1u);
    ASSERT_EQ(prog.ops.size(), 1u);
    EXPECT_EQ(prog.ops[0].value, 5u);
}

TEST(EliminationTest, FetchIncBumpsAnEstablishedBound)
{
    ir::Program prog = makeProgram();
    ir::ProgramBuilder b(prog);
    b.write(2, 1);
    b.fetchInc(2);
    b.waitGE(2, 2);  // write made v2 >= 1, the inc made it >= 2

    EXPECT_EQ(ir::eliminateRedundantWaits(prog), 1u);
    EXPECT_EQ(countKind(prog, ir::OpKind::syncWaitGE), 0u);
}

TEST(EliminationTest, FetchIncWithoutBoundEstablishesNothing)
{
    // An increment on a variable with no program-local bound says
    // nothing about its absolute value (another processor may not
    // have signaled yet), so a following wait must stay.
    ir::Program prog = makeProgram();
    ir::ProgramBuilder b(prog);
    b.fetchInc(2);
    b.waitGE(2, 1);

    EXPECT_EQ(ir::eliminateRedundantWaits(prog), 0u);
    EXPECT_EQ(countKind(prog, ir::OpKind::syncWaitGE), 1u);
}

TEST(EliminationTest, PcMarkNeverEstablishesABound)
{
    // mark_PC is conditional: it is skipped when the PC is not yet
    // owned (Fig. 4.3), so it must not license wait deletion.
    ir::Program prog = makeProgram();
    ir::ProgramBuilder b(prog);
    b.pcMark(4, 9);
    b.waitGE(4, 9);

    EXPECT_EQ(ir::eliminateRedundantWaits(prog), 0u);
    EXPECT_EQ(countKind(prog, ir::OpKind::syncWaitGE), 1u);
}

TEST(EliminationTest, PcTransferEstablishesWrittenAndAuxBound)
{
    ir::Program prog = makeProgram();
    ir::ProgramBuilder b(prog);
    b.pcTransfer(5, 10, 7);  // waits v5 >= 7, then writes 10
    b.waitGE(5, 10);

    EXPECT_EQ(ir::eliminateRedundantWaits(prog), 1u);
}

TEST(EliminationTest, BoundsAreProgramLocal)
{
    // Establishing a bound in one program must not delete waits in
    // another: domination only holds within a single instruction
    // stream.
    ir::Program first = makeProgram(1);
    ir::ProgramBuilder b1(first);
    b1.write(6, 3);
    ir::Program second = makeProgram(2);
    ir::ProgramBuilder b2(second);
    b2.waitGE(6, 3);

    EXPECT_EQ(ir::eliminateRedundantWaits(first), 0u);
    EXPECT_EQ(ir::eliminateRedundantWaits(second), 0u);
    EXPECT_EQ(countKind(second, ir::OpKind::syncWaitGE), 1u);
}

TEST(PeepholeTest, MergesAdjacentComputes)
{
    ir::Program prog = makeProgram();
    ir::ProgramBuilder b(prog);
    b.compute(3);
    b.compute(4);
    b.compute(5);

    EXPECT_EQ(ir::peephole(prog), 2u);
    ASSERT_EQ(prog.ops.size(), 1u);
    EXPECT_EQ(prog.ops[0].cycles, 12u);
}

TEST(PeepholeTest, DoesNotMergeComputesAcrossIterTags)
{
    // iterTag drives statement-instance attribution in traces;
    // merging across tags would mis-blame cycles.
    ir::Program prog = makeProgram();
    ir::ProgramBuilder b(prog);
    b.compute(3).iterTag = 1;
    b.compute(4).iterTag = 2;

    EXPECT_EQ(ir::peephole(prog), 0u);
    EXPECT_EQ(prog.ops.size(), 2u);
}

TEST(PeepholeTest, MergesMonotoneAdjacentWritesToOneVar)
{
    ir::Program prog = makeProgram();
    ir::ProgramBuilder b(prog);
    b.write(7, 1);
    b.write(7, 2);  // supersedes: same var, later value >= earlier

    EXPECT_EQ(ir::peephole(prog), 1u);
    ASSERT_EQ(prog.ops.size(), 1u);
    EXPECT_EQ(prog.ops[0].value, 2u);
}

TEST(PeepholeTest, KeepsWritesToDifferentVarsAndNonMonotone)
{
    ir::Program prog = makeProgram();
    ir::ProgramBuilder b(prog);
    b.write(7, 2);
    b.write(8, 1);  // different variable
    ir::Program other = makeProgram();
    ir::ProgramBuilder b2(other);
    b2.write(7, 2);
    b2.write(7, 1);  // dropping either would change final state

    EXPECT_EQ(ir::peephole(prog), 0u);
    EXPECT_EQ(ir::peephole(other), 0u);
}

TEST(VerifierTest, AcceptsCrossProgramSignalAndWait)
{
    ir::Program producer = makeProgram(1);
    ir::ProgramBuilder b1(producer);
    b1.write(1, 1);
    ir::Program consumer = makeProgram(2);
    ir::ProgramBuilder b2(consumer);
    b2.waitGE(1, 1);

    auto errors = ir::verifyPrograms({producer, consumer}, zeroInit);
    EXPECT_TRUE(errors.empty());
}

/**
 * The negative case the pipeline exists to catch (mirroring
 * trace_check_negative_test's role for the runtime checker): a
 * wait whose threshold no combination of initial values, writes
 * and increments anywhere in the plan can reach must be rejected.
 */
TEST(VerifierTest, RejectsWaitWithNoDominatingSignal)
{
    ir::Program producer = makeProgram(1);
    ir::ProgramBuilder b1(producer);
    b1.write(1, 1);
    ir::Program consumer = makeProgram(2);
    ir::ProgramBuilder b2(consumer);
    b2.waitGE(1, 2);  // nobody ever raises v1 past 1: deadlock

    auto errors = ir::verifyPrograms({producer, consumer}, zeroInit);
    ASSERT_EQ(errors.size(), 1u);
    EXPECT_NE(errors[0].find("iter 2"), std::string::npos)
        << errors[0];
    EXPECT_NE(errors[0].find("waits var 1"), std::string::npos)
        << errors[0];
}

TEST(VerifierTest, CountsIncrementsTowardReachability)
{
    ir::Program a = makeProgram(1);
    ir::ProgramBuilder b1(a);
    b1.fetchInc(3);
    ir::Program b = makeProgram(2);
    ir::ProgramBuilder b2(b);
    b2.fetchInc(3);
    b2.waitGE(3, 2);  // two increments from zero reach 2

    EXPECT_TRUE(ir::verifyPrograms({a, b}, zeroInit).empty());

    ir::Program c = makeProgram(3);
    ir::ProgramBuilder b3(c);
    b3.waitGE(3, 3);  // but not 3
    EXPECT_EQ(ir::verifyPrograms({a, b, c}, zeroInit).size(), 1u);
}

TEST(VerifierTest, InitialValuesCountAsSignals)
{
    ir::Program prog = makeProgram();
    ir::ProgramBuilder b(prog);
    b.waitGE(9, 5);

    auto init = [](ir::SyncVarId var) -> ir::SyncWord {
        return var == 9 ? 5 : 0;
    };
    EXPECT_TRUE(ir::verifyPrograms({prog}, init).empty());
}

TEST(RunPassesTest, DisabledPipelineIsByteIdentical)
{
    ir::Program prog = makeProgram();
    ir::ProgramBuilder b(prog);
    b.write(1, 5);
    b.waitGE(1, 5);  // would be eliminated if transforms ran
    b.compute(2);
    b.compute(3);    // would be merged if transforms ran
    std::vector<ir::Program> programs = {prog};

    ir::PassConfig cfg;
    cfg.enabled = false;
    ir::PassStats stats = ir::runPasses(programs, cfg, zeroInit);

    ASSERT_EQ(programs[0].ops.size(), prog.ops.size());
    for (std::size_t i = 0; i < prog.ops.size(); ++i) {
        EXPECT_EQ(programs[0].ops[i].kind, prog.ops[i].kind) << i;
        EXPECT_EQ(programs[0].ops[i].id, prog.ops[i].id) << i;
    }
    EXPECT_EQ(stats.opsBefore, stats.opsAfter);
    EXPECT_EQ(stats.waitsEliminated, 0u);
    EXPECT_FALSE(stats.verified);  // verifier did not run
}

TEST(RunPassesTest, StatsAccountForEliminationAndMerging)
{
    ir::Program prog = makeProgram();
    ir::ProgramBuilder b(prog);
    b.write(1, 5);
    b.waitGE(1, 5);
    b.compute(2);
    b.compute(3);
    std::vector<ir::Program> programs = {prog};

    ir::PassConfig cfg;
    cfg.eliminateRedundantWaits = true;
    cfg.peephole = true;
    ir::PassStats stats = ir::runPasses(programs, cfg, zeroInit);

    EXPECT_EQ(stats.opsBefore, 4u);
    EXPECT_EQ(stats.opsAfter, 2u);
    EXPECT_EQ(stats.waitsBefore, 1u);
    EXPECT_EQ(stats.waitsAfter, 0u);
    EXPECT_EQ(stats.waitsEliminated, 1u);
    EXPECT_EQ(stats.opsMerged, 1u);
    EXPECT_TRUE(stats.verified);
    EXPECT_TRUE(stats.verifierErrors.empty());
}

TEST(ProgramBuilderTest, StampsSequentialIdsAndResumes)
{
    ir::Program prog = makeProgram();
    {
        ir::ProgramBuilder b(prog);
        b.compute(1);
        b.compute(2);
    }
    EXPECT_EQ(prog.ops[0].id, 1u);
    EXPECT_EQ(prog.ops[1].id, 2u);
    {
        // A second builder over the same program resumes numbering
        // instead of reusing ids.
        ir::ProgramBuilder b(prog);
        b.compute(3);
    }
    EXPECT_EQ(prog.ops[2].id, 3u);
}
