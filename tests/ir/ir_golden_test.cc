/**
 * @file
 * Golden snapshots of the lowered IR.
 *
 * Each of the six SchemeKinds lowers the Fig. 2.1 loop (N=4, 4
 * processors) with the pass pipeline disabled, and the disassembly
 * (with stable op ids) must match the checked-in text under
 * tests/ir/golden/. A diff here means the lowering changed — which
 * is sometimes intended (update the snapshot), but never silently:
 * the lowered IR is the contract between the schemes and both
 * executors.
 *
 * Regenerate after an intentional change with:
 *   PSYNC_UPDATE_GOLDEN=1 ./build/tests/ir_golden_test
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "core/runtime.hh"
#include "ir/program.hh"
#include "sim/machine.hh"
#include "workloads/fig21.hh"

using namespace psync;

namespace {

/** Disassemble the raw (passes-disabled) lowering of fig-2.1. */
std::string
lowerFig21(sync::SchemeKind kind)
{
    dep::Loop loop = workloads::makeFig21Loop(4);
    core::RunConfig cfg;
    cfg.machine.numProcs = 4;
    cfg.machine.fabric =
        (kind == sync::SchemeKind::referenceBased ||
         kind == sync::SchemeKind::instanceBased)
            ? sim::FabricKind::memory
            : sim::FabricKind::registers;
    cfg.machine.syncRegisters = 4096;
    cfg.scheme.numPcs = 16;
    cfg.passes.enabled = false;
    sim::Machine machine(cfg.machine);
    core::PlannedDoacross planned =
        core::planDoacross(loop, kind, cfg, machine.fabric());

    std::string text;
    for (const auto &prog : planned.programs)
        text += ir::disassemble(prog, /*with_ids=*/true);
    return text;
}

std::string
goldenPath(sync::SchemeKind kind)
{
    return std::string(PSYNC_IR_GOLDEN_DIR) + "/" +
           sync::schemeKindName(kind) + ".txt";
}

void
checkGolden(sync::SchemeKind kind)
{
    std::string actual = lowerFig21(kind);
    std::string path = goldenPath(kind);

    if (std::getenv("PSYNC_UPDATE_GOLDEN")) {
        std::ofstream os(path);
        ASSERT_TRUE(os.good()) << "cannot write " << path;
        os << actual;
        return;
    }

    std::ifstream is(path);
    ASSERT_TRUE(is.good())
        << "missing golden file " << path
        << " (run with PSYNC_UPDATE_GOLDEN=1 to create it)";
    std::ostringstream expected;
    expected << is.rdbuf();
    EXPECT_EQ(actual, expected.str())
        << "lowered IR for " << sync::schemeKindName(kind)
        << " diverged from " << path
        << " (rerun with PSYNC_UPDATE_GOLDEN=1 if intended)";
}

} // namespace

TEST(IrGoldenTest, None)
{
    checkGolden(sync::SchemeKind::none);
}

TEST(IrGoldenTest, ReferenceBased)
{
    checkGolden(sync::SchemeKind::referenceBased);
}

TEST(IrGoldenTest, InstanceBased)
{
    checkGolden(sync::SchemeKind::instanceBased);
}

TEST(IrGoldenTest, StatementOriented)
{
    checkGolden(sync::SchemeKind::statementOriented);
}

TEST(IrGoldenTest, ProcessBasic)
{
    checkGolden(sync::SchemeKind::processBasic);
}

TEST(IrGoldenTest, ProcessImproved)
{
    checkGolden(sync::SchemeKind::processImproved);
}
