/** @file NativeExecutor: scheduling, values, timeouts, replay. */

#include <gtest/gtest.h>

#include <set>

#include "core/value_rule.hh"
#include "native/executor.hh"

using namespace psync;

namespace {

/**
 * A producer/consumer pair: iteration 1 writes A then signals;
 * iteration 2 awaits the signal and reads A. The pool claims in
 * increasing order, so this is deadlock-free on any thread count.
 */
std::vector<sim::Program>
producerConsumer(sim::SyncVarId v, sim::Addr a)
{
    sim::Program p1;
    p1.iter = 1;
    p1.ops = {sim::Op::mkStmtStart(0),
              sim::Op::mkData(true, a, 0, 0),
              sim::Op::mkStmtEnd(0),
              sim::Op::mkWrite(v, 1)};
    sim::Program p2;
    p2.iter = 2;
    p2.ops = {sim::Op::mkWaitGE(v, 1),
              sim::Op::mkStmtStart(1),
              sim::Op::mkData(false, a, 1, 0),
              sim::Op::mkStmtEnd(1)};
    return {p1, p2};
}

/** N independent programs, each writing its own word. */
std::vector<sim::Program>
independent(std::uint64_t n)
{
    std::vector<sim::Program> programs;
    for (std::uint64_t i = 1; i <= n; ++i) {
        sim::Program p;
        p.iter = i;
        p.ops = {sim::Op::mkCompute(1),
                 sim::Op::mkData(true, 1000 + i * 8, 0, 0)};
        programs.push_back(p);
    }
    return programs;
}

} // namespace

TEST(NativeDataMemoryTest, ScansEveryReferencedAddress)
{
    native::NativeSyncFabric fabric;
    sim::SyncVarId v = fabric.allocate(1, 0);
    auto programs = producerConsumer(v, 640);
    native::NativeDataMemory data(programs);
    EXPECT_EQ(data.size(), 1u); // one distinct address
    EXPECT_EQ(data.word(640).load(), 0u);
}

TEST(NativeExecutorTest, ProducerConsumerObservesWrittenValue)
{
    native::NativeSyncFabric fabric;
    sim::SyncVarId v = fabric.allocate(1, 0);
    auto programs = producerConsumer(v, 640);
    native::NativeDataMemory data(programs);
    native::NativeConfig cfg;
    cfg.numThreads = 2;
    native::NativeExecutor exec(fabric, data, cfg);
    auto result = exec.runPool(programs);
    ASSERT_TRUE(result.completed);
    EXPECT_EQ(result.programsRun, 2u);

    // The read (stmt 1, ref 0, iter 2) must have loaded the value
    // the write (stmt 0, ref 0, iter 1) produced.
    bool saw_read = false;
    for (const auto &rec : exec.log()) {
        if (!rec.isWrite) {
            saw_read = true;
            EXPECT_EQ(rec.value, core::valueOfWrite(0, 0, 1));
        }
    }
    EXPECT_TRUE(saw_read);
    EXPECT_TRUE(exec.verifyValues().empty());
    EXPECT_EQ(data.word(640).load(), core::valueOfWrite(0, 0, 1));
}

TEST(NativeExecutorTest, EveryPolicyRunsEachProgramOnce)
{
    for (auto policy :
         {core::SchedulePolicy::selfScheduling,
          core::SchedulePolicy::chunkedSelfScheduling,
          core::SchedulePolicy::guidedSelfScheduling,
          core::SchedulePolicy::staticCyclic}) {
        native::NativeSyncFabric fabric;
        auto programs = independent(23);
        native::NativeDataMemory data(programs);
        native::NativeConfig cfg;
        cfg.numThreads = 4;
        cfg.schedule = policy;
        native::NativeExecutor exec(fabric, data, cfg);
        auto result = exec.runPool(programs);
        ASSERT_TRUE(result.completed);
        EXPECT_EQ(result.programsRun, 23u);
        // Exactly-once: every word written exactly its own value.
        auto image = data.snapshot();
        EXPECT_EQ(image.size(), 23u);
    }
}

TEST(NativeExecutorTest, LogIsSortedByUniqueEndTickets)
{
    native::NativeSyncFabric fabric;
    auto programs = independent(16);
    native::NativeDataMemory data(programs);
    native::NativeConfig cfg;
    cfg.numThreads = 4;
    native::NativeExecutor exec(fabric, data, cfg);
    ASSERT_TRUE(exec.runPool(programs).completed);
    const auto &log = exec.log();
    ASSERT_EQ(log.size(), 16u);
    std::set<std::uint64_t> ends;
    for (std::size_t i = 0; i < log.size(); ++i) {
        EXPECT_LT(log[i].start, log[i].end);
        if (i) {
            EXPECT_LT(log[i - 1].end, log[i].end);
        }
        ends.insert(log[i].end);
    }
    EXPECT_EQ(ends.size(), log.size());
}

TEST(NativeExecutorTest, PerProcessorBarrierCompletes)
{
    native::NativeSyncFabric fabric;
    sim::SyncVarId counter = fabric.allocate(1, 0);
    sim::SyncVarId release = fabric.allocate(1, 0);
    const unsigned procs = 4;
    std::vector<std::vector<sim::Program>> per_proc(procs);
    for (unsigned p = 0; p < procs; ++p) {
        sim::Program prog;
        prog.iter = p + 1;
        for (sim::SyncWord gen = 1; gen <= 3; ++gen) {
            prog.ops.push_back(
                sim::Op::mkData(true, 4096 + (p * 3 + gen) * 8,
                                p, static_cast<std::uint16_t>(gen)));
            prog.ops.push_back(sim::Op::mkCtrBarrier(
                counter, release, gen, procs));
        }
        per_proc[p] = {prog};
    }
    native::NativeDataMemory data(per_proc);
    native::NativeConfig cfg;
    native::NativeExecutor exec(fabric, data, cfg);
    auto result = exec.runPerProcessor(per_proc);
    ASSERT_TRUE(result.completed);
    EXPECT_EQ(result.numThreads, procs);
    EXPECT_EQ(result.programsRun, procs);
    EXPECT_EQ(fabric.load(counter), 3u * procs);
    EXPECT_EQ(fabric.load(release), 3u);
}

TEST(NativeExecutorTest, JitteredRunsStayCorrect)
{
    for (std::uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
        native::NativeSyncFabric fabric;
        sim::SyncVarId v = fabric.allocate(1, 0);
        auto programs = producerConsumer(v, 640);
        native::NativeDataMemory data(programs);
        native::NativeConfig cfg;
        cfg.numThreads = 2;
        cfg.timingSeed = seed;
        native::NativeExecutor exec(fabric, data, cfg);
        auto result = exec.runPool(programs);
        ASSERT_TRUE(result.completed) << "seed " << seed;
        EXPECT_TRUE(exec.verifyValues().empty()) << "seed " << seed;
        EXPECT_EQ(data.word(640).load(),
                  core::valueOfWrite(0, 0, 1));
    }
}

TEST(NativeExecutorTest, DeadlockTurnsIntoFailureNotHang)
{
    native::NativeSyncFabric fabric;
    sim::SyncVarId v = fabric.allocate(1, 0);
    sim::Program stuck;
    stuck.iter = 1;
    stuck.ops = {sim::Op::mkWaitGE(v, 1)}; // never satisfied
    std::vector<sim::Program> programs = {stuck};
    native::NativeDataMemory data(programs);
    native::NativeConfig cfg;
    cfg.numThreads = 1;
    cfg.timeoutMs = 100;
    native::NativeExecutor exec(fabric, data, cfg);
    auto result = exec.runPool(programs);
    EXPECT_FALSE(result.completed);
    EXPECT_TRUE(fabric.aborted());
}

TEST(NativeExecutorTest, ReplayFeedsEveryRecordToSink)
{
    struct Counter : sim::TraceSink
    {
        unsigned accesses = 0;
        void
        access(std::uint32_t, std::uint16_t, std::uint64_t,
               sim::Addr, bool, sim::Tick, sim::Tick) override
        {
            ++accesses;
        }
    };
    native::NativeSyncFabric fabric;
    auto programs = independent(9);
    native::NativeDataMemory data(programs);
    native::NativeConfig cfg;
    native::NativeExecutor exec(fabric, data, cfg);
    ASSERT_TRUE(exec.runPool(programs).completed);
    Counter sink;
    exec.replayAccesses(sink);
    EXPECT_EQ(sink.accesses, 9u);
}

TEST(NativeExecutorTest, GuidedHandlesFewerProgramsThanThreads)
{
    // (total - old) / (2 * num_threads) rounds to 0 whenever the
    // pool is smaller than the thread count; the std::max clamp to
    // a one-iteration claim is what guarantees progress. Run with
    // far more threads than programs and demand exactly-once.
    native::NativeSyncFabric fabric;
    auto programs = independent(3);
    native::NativeDataMemory data(programs);
    native::NativeConfig cfg;
    cfg.numThreads = 8;
    cfg.schedule = core::SchedulePolicy::guidedSelfScheduling;
    native::NativeExecutor exec(fabric, data, cfg);
    auto result = exec.runPool(programs);
    ASSERT_TRUE(result.completed);
    EXPECT_EQ(result.programsRun, 3u);
    auto image = data.snapshot();
    EXPECT_EQ(image.size(), 3u);
    EXPECT_TRUE(exec.verifyValues().empty());
}
