/** @file NativeSyncFabric: stores, waits, parking, abort. */

#include <gtest/gtest.h>

#include <chrono>
#include <thread>
#include <vector>

#include "native/fabric.hh"
#include "sim/machine.hh"

using namespace psync;
using namespace std::chrono_literals;

namespace {

native::Deadline
soon(std::chrono::milliseconds ms = 5000ms)
{
    return std::chrono::steady_clock::now() + ms;
}

} // namespace

TEST(NativeFabricTest, AllocateLoadStoreFetchAdd)
{
    native::NativeSyncFabric fabric;
    sim::SyncVarId base = fabric.allocate(3, 7);
    EXPECT_EQ(fabric.allocated(), 3u);
    EXPECT_EQ(fabric.load(base + 2), 7u);

    fabric.store(base, 42);
    EXPECT_EQ(fabric.load(base), 42u);

    EXPECT_EQ(fabric.fetchAdd(base + 1, 5), 7u);
    EXPECT_EQ(fabric.load(base + 1), 12u);
}

TEST(NativeFabricTest, MirrorsPlannedSimFabric)
{
    sim::MachineConfig mc;
    mc.numProcs = 4;
    sim::Machine machine(mc);
    sim::SyncVarId a = machine.fabric().allocate(2, 11);
    sim::SyncVarId b = machine.fabric().allocate(1, 0);
    machine.fabric().poke(b, 99);

    native::NativeSyncFabric mirror(machine.fabric());
    ASSERT_EQ(mirror.allocated(), machine.fabric().allocated());
    EXPECT_EQ(mirror.load(a), 11u);
    EXPECT_EQ(mirror.load(a + 1), 11u);
    EXPECT_EQ(mirror.load(b), 99u);
}

TEST(NativeFabricTest, WaitAlreadySatisfiedReturnsImmediately)
{
    native::NativeSyncFabric fabric;
    sim::SyncVarId v = fabric.allocate(1, 10);
    auto outcome = fabric.waitGE(v, 10, soon());
    EXPECT_TRUE(outcome.satisfied);
    EXPECT_EQ(outcome.parks, 0u);
}

TEST(NativeFabricTest, WaiterSeesConcurrentStore)
{
    native::NativeSyncFabric fabric;
    sim::SyncVarId v = fabric.allocate(1, 0);
    std::thread writer([&] {
        std::this_thread::sleep_for(10ms);
        fabric.store(v, 3);
    });
    auto outcome = fabric.waitGE(v, 3, soon());
    writer.join();
    EXPECT_TRUE(outcome.satisfied);
    EXPECT_EQ(fabric.load(v), 3u);
}

TEST(NativeFabricTest, ZeroSpinLimitParksAndStillWakes)
{
    // spin_limit 0 forces the park path on every wait.
    native::NativeSyncFabric fabric(0);
    sim::SyncVarId v = fabric.allocate(1, 0);
    std::thread writer([&] {
        std::this_thread::sleep_for(20ms);
        fabric.store(v, 1);
    });
    auto outcome = fabric.waitGE(v, 1, soon());
    writer.join();
    EXPECT_TRUE(outcome.satisfied);
    EXPECT_GE(outcome.parks, 1u);
    EXPECT_GE(fabric.totalParks(), 1u);
}

TEST(NativeFabricTest, DeadlineAbortsFabric)
{
    native::NativeSyncFabric fabric(4);
    sim::SyncVarId v = fabric.allocate(1, 0);
    auto outcome = fabric.waitGE(v, 1, soon(50ms));
    EXPECT_FALSE(outcome.satisfied);
    EXPECT_TRUE(fabric.aborted());
    // Later waits fail fast once aborted.
    auto after = fabric.waitGE(v, 1, soon());
    EXPECT_FALSE(after.satisfied);
}

TEST(NativeFabricTest, AbortReleasesParkedWaiters)
{
    native::NativeSyncFabric fabric(0);
    sim::SyncVarId v = fabric.allocate(1, 0);
    std::vector<std::thread> waiters;
    std::vector<native::WaitOutcome> outcomes(4);
    for (int i = 0; i < 4; ++i) {
        waiters.emplace_back([&, i] {
            outcomes[i] = fabric.waitGE(v, 100, soon(60s));
        });
    }
    std::this_thread::sleep_for(20ms);
    fabric.abortAll();
    for (auto &t : waiters)
        t.join();
    for (const auto &o : outcomes)
        EXPECT_FALSE(o.satisfied);
}

TEST(NativeFabricTest, ManyWaitersOneVariable)
{
    native::NativeSyncFabric fabric(8);
    sim::SyncVarId v = fabric.allocate(1, 0);
    std::vector<std::thread> waiters;
    std::atomic<unsigned> satisfied{0};
    for (int i = 0; i < 8; ++i) {
        waiters.emplace_back([&] {
            if (fabric.waitGE(v, 5, soon()).satisfied)
                satisfied.fetch_add(1);
        });
    }
    for (sim::SyncWord w = 1; w <= 5; ++w) {
        std::this_thread::sleep_for(2ms);
        fabric.store(v, w);
    }
    for (auto &t : waiters)
        t.join();
    EXPECT_EQ(satisfied.load(), 8u);
}

TEST(NativeFabricTest, FetchAddChainWakesThresholdWaiter)
{
    // Barrier-arrival shape: waiter needs the count to reach N via
    // increments from several threads.
    native::NativeSyncFabric fabric(0);
    sim::SyncVarId v = fabric.allocate(1, 0);
    std::thread waiter_thread;
    native::WaitOutcome outcome;
    waiter_thread = std::thread(
        [&] { outcome = fabric.waitGE(v, 6, soon()); });
    std::vector<std::thread> adders;
    for (int i = 0; i < 3; ++i)
        adders.emplace_back([&] { fabric.fetchAdd(v, 2); });
    for (auto &t : adders)
        t.join();
    waiter_thread.join();
    EXPECT_TRUE(outcome.satisfied);
    EXPECT_EQ(fabric.load(v), 6u);
}

TEST(NativeFabricTest, AbortWakesParkedWaitersOnEveryShard)
{
    // Waiters park on mutex+condvar shards keyed by variable id;
    // abortAll must sweep every shard, not just the one the
    // deadline-hitting thread was parked on. Park one waiter per
    // distinct shard (consecutive ids map to consecutive shards)
    // and require that a single abort releases them all promptly —
    // a missed shard would hold its waiter until the 5 s deadline.
    constexpr unsigned kWaiters = 16;
    native::NativeSyncFabric fabric(0); // no spin: park immediately
    sim::SyncVarId base = fabric.allocate(kWaiters, 0);

    std::vector<std::thread> waiters;
    std::vector<native::WaitOutcome> outcomes(kWaiters);
    std::atomic<unsigned> parked{0};
    for (unsigned i = 0; i < kWaiters; ++i) {
        waiters.emplace_back([&, i] {
            parked.fetch_add(1);
            outcomes[i] = fabric.waitGE(base + i, 1, soon());
        });
    }
    while (parked.load() < kWaiters)
        std::this_thread::yield();
    std::this_thread::sleep_for(20ms); // let the last ones park

    auto t0 = std::chrono::steady_clock::now();
    fabric.abortAll();
    for (auto &t : waiters)
        t.join();
    auto woke = std::chrono::steady_clock::now() - t0;

    for (unsigned i = 0; i < kWaiters; ++i)
        EXPECT_FALSE(outcomes[i].satisfied) << i;
    // Generous for a loaded CI host, but far below the deadline a
    // missed shard would burn.
    EXPECT_LT(woke, 2s);
}
