/**
 * @file
 * Epoch-based sync-variable reuse on the native fabric.
 *
 * The load-bearing property: a fabric that serves N submissions of
 * one cached plan through beginEpoch() (no per-word reinit) must
 * produce N memory/read images bit-identical to N fresh-init runs
 * of the same plan — across every scheme and both wake policies.
 * Plus the recovery path a long-lived fabric needs: a watchdog
 * timeout aborts the fabric, and the next beginEpoch() clears the
 * abort so a clean plan runs to completion on the same arena.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <map>

#include "core/plan_cache.hh"
#include "core/value_trace.hh"
#include "native/executor.hh"
#include "workloads/fig21.hh"

using namespace psync;
using namespace std::chrono_literals;

namespace {

core::RunConfig
configFor(sync::SchemeKind kind)
{
    core::RunConfig cfg;
    cfg.machine.numProcs = 4;
    if (kind == sync::SchemeKind::referenceBased ||
        kind == sync::SchemeKind::instanceBased)
        cfg.machine.fabric = sim::FabricKind::memory;
    else
        cfg.machine.fabric = sim::FabricKind::registers;
    cfg.machine.syncRegisters = 1u << 20;
    cfg.scheme.numPcs = 16;
    cfg.scheme.numScs = 1u << 20;
    return cfg;
}

struct RunImage
{
    std::map<sim::Addr, std::uint64_t> memory;
    std::map<std::uint64_t, std::uint64_t> reads;
    std::map<sim::Addr, std::uint64_t> rawWords;
};

RunImage
imageOf(native::NativeExecutor &exec, native::NativeDataMemory &data)
{
    core::ValueTrace values;
    exec.replayAccesses(values);
    return {values.memory(), values.reads(), data.snapshot()};
}

/**
 * N epoch-reused rounds vs N fresh-init rounds of one cached plan;
 * every round's functional image, read values and raw final data
 * words must be pairwise identical.
 */
void
epochRoundsMatchFresh(sync::SchemeKind kind,
                      native::WakePolicy policy, int rounds)
{
    const char *name = sync::schemeKindName(kind);
    dep::Loop loop = workloads::makeFig21Loop(20);
    core::RunConfig cfg = configFor(kind);

    core::PlanCache cache(4);
    auto plan = cache.get(loop, kind, cfg);
    ASSERT_FALSE(plan->initWords.empty()) << name;

    native::NativeConfig ncfg;
    ncfg.numThreads = 4;

    // The long-lived arena: one fabric, one data memory, one
    // executor; each round pays one epoch bump, never a reinit.
    native::NativeSyncFabric fabric(plan->initWords, ncfg.spinLimit,
                                    policy);
    fabric.enableEpochReuse();
    native::NativeDataMemory data(plan->programs);
    native::NativeExecutor exec(fabric, data, ncfg);

    for (int round = 0; round < rounds; ++round) {
        fabric.beginEpoch();
        data.clearAll();
        auto run = exec.runPool(plan->programs);
        ASSERT_TRUE(run.completed)
            << name << " epoch round " << round;
        ASSERT_TRUE(run.errors.empty()) << name;
        EXPECT_TRUE(exec.verifyValues().empty()) << name;
        RunImage reused = imageOf(exec, data);

        // The throwaway path: fresh fabric, fresh data, fresh
        // executor — what every round would cost without epochs.
        native::NativeSyncFabric fresh_fabric(
            plan->initWords, ncfg.spinLimit, policy);
        native::NativeDataMemory fresh_data(plan->programs);
        native::NativeExecutor fresh_exec(fresh_fabric, fresh_data,
                                          ncfg);
        auto fresh_run = fresh_exec.runPool(plan->programs);
        ASSERT_TRUE(fresh_run.completed)
            << name << " fresh round " << round;
        RunImage fresh = imageOf(fresh_exec, fresh_data);

        EXPECT_EQ(reused.memory, fresh.memory)
            << name << " round " << round
            << ": functional memory image diverged";
        EXPECT_EQ(reused.reads, fresh.reads)
            << name << " round " << round
            << ": observed read values diverged";
        EXPECT_EQ(reused.rawWords, fresh.rawWords)
            << name << " round " << round
            << ": raw data words diverged";
    }
    EXPECT_EQ(fabric.epoch(), static_cast<std::uint64_t>(rounds));
}

} // namespace

TEST(EpochReuseTest, LoadSeesInitImageAfterBeginEpoch)
{
    native::NativeSyncFabric fabric;
    sim::SyncVarId v = fabric.allocate(3, 7);
    fabric.poke(v + 2, 41);
    fabric.enableEpochReuse();

    // Epoch 1: writes land normally.
    fabric.store(v, 100);
    EXPECT_EQ(fabric.load(v), 100u);
    EXPECT_EQ(fabric.load(v + 1), 7u);
    EXPECT_EQ(fabric.load(v + 2), 41u);

    // Epoch 2: every word logically reverts to the init image.
    fabric.beginEpoch();
    EXPECT_EQ(fabric.load(v), 7u);
    EXPECT_EQ(fabric.load(v + 1), 7u);
    EXPECT_EQ(fabric.load(v + 2), 41u);

    // fetchAdd on a stale word starts from the init value.
    EXPECT_EQ(fabric.fetchAdd(v, 5), 7u);
    EXPECT_EQ(fabric.load(v), 12u);
}

TEST(EpochReuseTest, AllSchemesShardedRoundsMatchFresh)
{
    for (sync::SchemeKind kind : sync::allSyncSchemes())
        epochRoundsMatchFresh(kind, native::WakePolicy::sharded, 3);
}

TEST(EpochReuseTest, AllSchemesFlatCombiningRoundsMatchFresh)
{
    for (sync::SchemeKind kind : sync::allSyncSchemes())
        epochRoundsMatchFresh(kind,
                              native::WakePolicy::flatCombining, 3);
}

TEST(EpochReuseTest, TimeoutAbortsThenEpochClearsForCleanRerun)
{
    // A program that waits on a threshold nothing ever writes: the
    // watchdog deadline must turn it into completed=false via
    // abortAll, and beginEpoch() must clear the abort so a healthy
    // program then runs clean on the very same fabric.
    native::NativeSyncFabric fabric(0); // spin_limit 0: park fast
    sim::SyncVarId v = fabric.allocate(1, 0);
    fabric.enableEpochReuse();

    sim::Program stuck;
    stuck.iter = 1;
    stuck.ops = {sim::Op::mkWaitGE(v, 99)};
    sim::Program healthy;
    healthy.iter = 2;
    healthy.ops = {sim::Op::mkWrite(v, 1), sim::Op::mkCompute(1)};

    native::NativeConfig ncfg;
    ncfg.numThreads = 2;
    ncfg.timeoutMs = 200;
    {
        native::NativeDataMemory data({stuck});
        native::NativeExecutor exec(fabric, data, ncfg);
        auto run = exec.runPool({stuck});
        EXPECT_FALSE(run.completed);
        EXPECT_TRUE(fabric.aborted());
    }

    // Without an epoch bump the fabric stays poisoned: an
    // unsatisfied wait bails out aborted instead of blocking.
    // (A satisfied wait still succeeds — the value check runs
    // before the abort check — so probe with an unmet threshold.)
    EXPECT_FALSE(fabric.waitGE(v, 99,
                               std::chrono::steady_clock::now() +
                                   100ms)
                     .satisfied);

    fabric.beginEpoch();
    EXPECT_FALSE(fabric.aborted());
    {
        native::NativeDataMemory data({healthy});
        native::NativeExecutor exec(fabric, data, ncfg);
        auto run = exec.runPool({healthy});
        EXPECT_TRUE(run.completed);
        EXPECT_TRUE(run.errors.empty());
    }
}

TEST(EpochReuseTest, AbortAllReleasesFlatCombiningWaiter)
{
    native::NativeSyncFabric fabric(
        0, native::WakePolicy::flatCombining);
    sim::SyncVarId v = fabric.allocate(1, 0);
    fabric.enableEpochReuse();

    sim::Program stuck;
    stuck.iter = 1;
    stuck.ops = {sim::Op::mkWaitGE(v, 99)};
    native::NativeConfig ncfg;
    ncfg.numThreads = 2;
    ncfg.timeoutMs = 200;
    native::NativeDataMemory data({stuck});
    native::NativeExecutor exec(fabric, data, ncfg);
    auto run = exec.runPool({stuck});
    EXPECT_FALSE(run.completed);
    EXPECT_TRUE(fabric.aborted());

    fabric.beginEpoch();
    EXPECT_EQ(fabric.load(v), 0u);
    fabric.store(v, 3);
    EXPECT_TRUE(fabric
                    .waitGE(v, 3,
                            std::chrono::steady_clock::now() + 1s)
                    .satisfied);
}
