/**
 * @file
 * Backend cross-validation: the same planned (loop, scheme) runs on
 * the simulator and on real threads, and both must compute the same
 * thing.
 *
 * "Same thing" is exact under the value rule: every write stores
 * valueOfWrite(stmt, ref, iter), so the final memory image and the
 * per-read observed values are a pure function of the inter-access
 * ordering the scheme enforced. Identical images means the native
 * backend ordered every dependence the simulator did. On top of
 * that, every native run replays its ticket-stamped log through the
 * same TraceChecker that gates simulator runs.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <iterator>
#include <map>

#include "core/value_trace.hh"
#include "native/runner.hh"
#include "sync/barrier.hh"
#include "workloads/branches.hh"
#include "workloads/butterfly.hh"
#include "workloads/fft.hh"
#include "workloads/fig21.hh"
#include "workloads/nested.hh"
#include "workloads/relaxation.hh"

using namespace psync;

namespace {

/** Sim-side machine shaped like the scheme wants (bench defaults). */
core::RunConfig
configFor(sync::SchemeKind kind, unsigned procs = 4)
{
    core::RunConfig cfg;
    cfg.machine.numProcs = procs;
    if (kind == sync::SchemeKind::referenceBased ||
        kind == sync::SchemeKind::instanceBased)
        cfg.machine.fabric = sim::FabricKind::memory;
    else
        cfg.machine.fabric = sim::FabricKind::registers;
    cfg.machine.syncRegisters = 1u << 20;
    cfg.scheme.numPcs = 16;
    cfg.scheme.numScs = 1u << 20;
    cfg.tickLimit = 2000000000ull;
    // PSYNC_TEST_PASSES=1 runs the whole suite with the IR
    // transform passes enabled, so CI cross-validates both the raw
    // lowering and the optimized programs (both backends execute
    // the same transformed plan either way).
    if (const char *p = std::getenv("PSYNC_TEST_PASSES")) {
        if (p[0] == '1') {
            cfg.passes.eliminateRedundantWaits = true;
            cfg.passes.peephole = true;
        }
    }
    return cfg;
}

struct SimReference
{
    std::map<sim::Addr, std::uint64_t> memory;
    std::map<std::uint64_t, std::uint64_t> reads;
};

/** Run the loop on the simulator, collecting the value image. */
SimReference
simReference(const dep::Loop &loop, sync::SchemeKind kind,
             core::RunConfig cfg)
{
    core::ValueTrace values;
    cfg.extraSink = &values;
    auto r = core::runDoacross(loop, kind, cfg);
    EXPECT_TRUE(r.run.completed);
    EXPECT_TRUE(r.violations.empty());
    return {values.memory(), values.reads()};
}

/** Cross-validate one (loop, scheme) at one native thread count. */
void
crossValidate(const dep::Loop &loop, sync::SchemeKind kind,
              unsigned threads, std::uint64_t timing_seed = 0)
{
    core::RunConfig cfg = configFor(kind);
    SimReference sim_ref = simReference(loop, kind, cfg);

    native::NativeConfig ncfg;
    ncfg.numThreads = threads;
    ncfg.timingSeed = timing_seed;
    auto nat = native::runDoacrossNative(loop, kind, cfg, ncfg);
    const char *name = sync::schemeKindName(kind);
    ASSERT_TRUE(nat.run.completed)
        << name << ": native run did not complete";
    EXPECT_TRUE(nat.run.errors.empty()) << name;
    EXPECT_TRUE(nat.violations.empty())
        << name << ": " << nat.violations.front();
    EXPECT_TRUE(nat.valueMismatches.empty())
        << name << ": " << nat.valueMismatches.front();
    EXPECT_EQ(nat.memory, sim_ref.memory)
        << name << ": final memory images differ";
    EXPECT_EQ(nat.reads, sim_ref.reads)
        << name << ": observed read values differ";
}

const sync::SchemeKind kAllKinds[] = {
    sync::SchemeKind::referenceBased,
    sync::SchemeKind::instanceBased,
    sync::SchemeKind::statementOriented,
    sync::SchemeKind::processBasic,
    sync::SchemeKind::processImproved,
};

} // namespace

TEST(CrossValidationTest, Fig21AllSchemes)
{
    dep::Loop loop = workloads::makeFig21Loop(24);
    for (auto kind : kAllKinds)
        crossValidate(loop, kind, 4);
}

TEST(CrossValidationTest, RelaxationAllSchemes)
{
    dep::Loop loop = workloads::makeRelaxationLoop(16);
    for (auto kind : kAllKinds)
        crossValidate(loop, kind, 4);
}

TEST(CrossValidationTest, NestedAllSchemes)
{
    dep::Loop loop = workloads::makeNestedLoop(4, 5);
    for (auto kind : kAllKinds)
        crossValidate(loop, kind, 4);
}

TEST(CrossValidationTest, BranchesAllSchemes)
{
    dep::Loop loop = workloads::makeBranchLoop(24, 0.4);
    for (auto kind : kAllKinds) {
        // The instance-based scheme rejects branch-guarded
        // statements by design (no reaching definitions across
        // renamed instances).
        if (kind == sync::SchemeKind::instanceBased)
            continue;
        crossValidate(loop, kind, 4);
    }
}

TEST(CrossValidationTest, TwoThreadAndEightThreadPools)
{
    dep::Loop loop = workloads::makeFig21Loop(20);
    for (unsigned threads : {2u, 8u}) {
        crossValidate(loop, sync::SchemeKind::processImproved,
                      threads);
        crossValidate(loop, sync::SchemeKind::statementOriented,
                      threads);
    }
}

/**
 * The randomized-timing axis: >= 100 native repetitions with seeded
 * interleaving jitter, rotating through every scheme. The sim
 * reference for each scheme is computed once; every native rep must
 * reproduce it exactly and pass the trace-checker replay.
 */
TEST(CrossValidationTest, HundredRandomizedTimingRepetitions)
{
    dep::Loop loop = workloads::makeFig21Loop(12);
    constexpr int kReps = 100;

    std::map<int, SimReference> refs;
    for (std::size_t k = 0; k < std::size(kAllKinds); ++k)
        refs[static_cast<int>(k)] = simReference(
            loop, kAllKinds[k], configFor(kAllKinds[k]));

    for (int rep = 0; rep < kReps; ++rep) {
        std::size_t k = static_cast<std::size_t>(rep) %
                        std::size(kAllKinds);
        sync::SchemeKind kind = kAllKinds[k];
        core::RunConfig cfg = configFor(kind);
        native::NativeConfig ncfg;
        ncfg.numThreads = 4;
        ncfg.timingSeed = static_cast<std::uint64_t>(rep) + 1;
        auto nat = native::runDoacrossNative(loop, kind, cfg, ncfg);
        ASSERT_TRUE(nat.run.completed)
            << "rep " << rep << " " << sync::schemeKindName(kind);
        ASSERT_TRUE(nat.violations.empty())
            << "rep " << rep << ": " << nat.violations.front();
        ASSERT_TRUE(nat.valueMismatches.empty())
            << "rep " << rep << ": " << nat.valueMismatches.front();
        const SimReference &ref = refs[static_cast<int>(k)];
        ASSERT_EQ(nat.memory, ref.memory) << "rep " << rep;
        ASSERT_EQ(nat.reads, ref.reads) << "rep " << rep;
    }
}

namespace {

/**
 * Run an FFT sync mode on both backends from one planned program
 * set and compare value images. The native fabric is mirrored
 * before the sim run so both start from the same initialized
 * barrier state.
 */
void
crossValidateFft(workloads::FftSync mode)
{
    workloads::FftSpec spec;
    spec.numProcs = 4;
    spec.rounds = 3;

    sim::MachineConfig mc;
    mc.numProcs = spec.numProcs;
    mc.fabric = sim::FabricKind::registers;
    mc.syncRegisters = 4096;
    core::ValueTrace sim_values;
    sim::Machine machine(mc, &sim_values);

    std::vector<std::vector<sim::Program>> progs;
    switch (mode) {
      case workloads::FftSync::pairwise: {
        sim::SyncVarId base =
            machine.fabric().allocate(spec.numProcs, 0);
        progs = workloads::buildFftPairwise(base, spec);
        break;
      }
      case workloads::FftSync::butterflyBarrier: {
        sync::ButterflyBarrier barrier(machine.fabric(),
                                       spec.numProcs);
        progs = workloads::buildFftButterfly(barrier, spec);
        break;
      }
      case workloads::FftSync::counterBarrier: {
        sync::CounterBarrier barrier(machine.fabric(),
                                     spec.numProcs);
        progs = workloads::buildFftCounter(barrier, spec);
        break;
      }
    }

    // Mirror the fabric before the sim run mutates it.
    native::NativeSyncFabric fabric(machine.fabric());

    auto sim_result = core::runPerProcessorPrograms(machine, progs);
    ASSERT_TRUE(sim_result.completed);

    native::NativeDataMemory data(progs);
    native::NativeConfig ncfg;
    native::NativeExecutor exec(fabric, data, ncfg);
    auto nat = exec.runPerProcessor(progs);
    ASSERT_TRUE(nat.completed);
    EXPECT_TRUE(exec.verifyValues().empty());

    // Every native read must have seen the partner's write — a
    // barrier that failed to order the exchange would read 0.
    for (const auto &rec : exec.log()) {
        if (!rec.isWrite) {
            EXPECT_NE(rec.value, 0u);
        }
    }

    core::ValueTrace nat_values;
    exec.replayAccesses(nat_values);
    EXPECT_EQ(nat_values.memory(), sim_values.memory());
}

} // namespace

TEST(CrossValidationTest, FftPairwiseMatchesSim)
{
    crossValidateFft(workloads::FftSync::pairwise);
}

TEST(CrossValidationTest, FftButterflyBarrierMatchesSim)
{
    crossValidateFft(workloads::FftSync::butterflyBarrier);
}

TEST(CrossValidationTest, FftCounterBarrierMatchesSim)
{
    crossValidateFft(workloads::FftSync::counterBarrier);
}

TEST(CrossValidationTest, ButterflyBarrierEpisodesMatchSim)
{
    const unsigned procs = 4;
    sim::MachineConfig mc;
    mc.numProcs = procs;
    mc.fabric = sim::FabricKind::registers;
    mc.syncRegisters = 4096;
    core::ValueTrace sim_values;
    sim::Machine machine(mc, &sim_values);
    sync::ButterflyBarrier barrier(machine.fabric(), procs);
    workloads::BarrierSpec spec;
    spec.numProcs = procs;
    spec.episodes = 5;
    spec.workCost = 10;
    auto progs = workloads::buildButterflyPrograms(barrier, spec);

    native::NativeSyncFabric fabric(machine.fabric());

    auto sim_result = core::runPerProcessorPrograms(machine, progs);
    ASSERT_TRUE(sim_result.completed);

    native::NativeDataMemory data(progs);
    native::NativeConfig ncfg;
    native::NativeExecutor exec(fabric, data, ncfg);
    auto nat = exec.runPerProcessor(progs);
    ASSERT_TRUE(nat.completed);
    EXPECT_TRUE(exec.verifyValues().empty());

    core::ValueTrace nat_values;
    exec.replayAccesses(nat_values);
    EXPECT_EQ(nat_values.memory(), sim_values.memory());
}
