/**
 * @file
 * Seed corpus of fuzzer-found programs, replayed as deterministic
 * regressions.
 *
 * Every .loop file under tests/fuzz/corpus is a shrunk divergence
 * from a past campaign (the header comment of each file names the
 * bug it flushed out). Each must parse, round-trip through the
 * canonical printer, and run the full differential matrix clean
 * under several case configurations. A second battery replays the
 * original (unshrunk) generator cases by (seed, index), and a
 * negative test pins down what the IR verifier must reject.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <vector>

#include "bench/fuzz.hh"
#include "core/critical_path.hh"
#include "dep/loop_text.hh"
#include "ir/passes.hh"
#include "workloads/fuzz.hh"

using namespace psync;

namespace {

std::vector<std::filesystem::path>
corpusFiles()
{
    std::vector<std::filesystem::path> files;
    for (const auto &entry : std::filesystem::directory_iterator(
             PSYNC_FUZZ_CORPUS_DIR)) {
        if (entry.path().extension() == ".loop")
            files.push_back(entry.path());
    }
    std::sort(files.begin(), files.end());
    return files;
}

std::string
slurp(const std::filesystem::path &p)
{
    std::ifstream in(p);
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

} // namespace

TEST(FuzzCorpusTest, CorpusIsNonEmpty)
{
    EXPECT_GE(corpusFiles().size(), 7u);
}

TEST(FuzzCorpusTest, EveryFileParsesAndRoundTrips)
{
    for (const auto &file : corpusFiles()) {
        dep::ParsedLoop p = dep::parseLoop(slurp(file));
        ASSERT_TRUE(p.ok) << file << ": " << p.error;
        std::string printed = dep::printLoop(p.loop);
        dep::ParsedLoop again = dep::parseLoop(printed);
        ASSERT_TRUE(again.ok) << file << ": " << again.error;
        EXPECT_EQ(dep::printLoop(again.loop), printed) << file;
    }
}

TEST(FuzzCorpusTest, EveryFileRunsTheMatrixClean)
{
    // Three indices pick three different analytical gate schemes
    // and three case configurations; every corpus loop must come
    // through the whole scheme x backend x passes matrix with all
    // oracles agreeing.
    bench::FuzzOptions opts;
    opts.shrink = false;
    for (const auto &file : corpusFiles()) {
        dep::ParsedLoop p = dep::parseLoop(slurp(file));
        ASSERT_TRUE(p.ok) << file << ": " << p.error;
        for (std::uint64_t index : {0ull, 2ull, 4ull}) {
            bench::FuzzCaseConfig cfg =
                bench::fuzzCaseConfig(11, index);
            auto outcome =
                bench::runFuzzCase(p.loop, cfg, opts, index);
            EXPECT_TRUE(outcome.ok())
                << file << " index " << index << ": "
                << (outcome.failures.empty()
                        ? ""
                        : outcome.failures.front());
        }
    }
}

TEST(FuzzCorpusTest, HistoricalGeneratorCasesRunClean)
{
    // The original, unshrunk campaign cases the corpus files were
    // minimized from. Regenerated from (seed, index) — the
    // generator is a pure function of both — and replayed under
    // the exact per-case configuration the campaign used. These
    // campaigns predate strided subscripts, so the grammar's
    // unit-coefficient mode reproduces them byte-identically.
    struct Case { std::uint64_t seed, index; };
    const Case cases[] = {
        {42, 39}, {42, 46}, {42, 49}, // lin<=0 scheme deadlocks
        {42, 66}, {42, 71},           // analytical gate vs renaming
        {1, 60},  {1, 89},            // read-ref dedup
        {1, 110},                     // covering through a guard
        {1, 139},                     // write-ref dedup
        {1, 162},                     // negative-arc covering chain
    };
    bench::FuzzOptions opts;
    opts.shrink = false;
    opts.limits.nonUnitCoeffProb = 0.0;
    for (const Case &c : cases) {
        dep::Loop loop = workloads::makeFuzzLoop(c.seed, c.index,
                                                 opts.limits);
        auto outcome = bench::runFuzzCase(
            loop, bench::fuzzCaseConfig(c.seed, c.index), opts,
            c.index);
        EXPECT_TRUE(outcome.ok())
            << "seed " << c.seed << " case " << c.index << ": "
            << (outcome.failures.empty() ? ""
                                         : outcome.failures.front());
    }
}

TEST(FuzzCorpusTest, GeneratorIsDeterministic)
{
    for (std::uint64_t index : {0ull, 7ull, 123ull}) {
        dep::Loop a = workloads::makeFuzzLoop(99, index);
        dep::Loop b = workloads::makeFuzzLoop(99, index);
        EXPECT_EQ(dep::printLoop(a), dep::printLoop(b));
    }
    // Different indices draw different programs (not a constant).
    EXPECT_NE(dep::printLoop(workloads::makeFuzzLoop(99, 0)),
              dep::printLoop(workloads::makeFuzzLoop(99, 1)));
}

TEST(FuzzCorpusTest, AnalyticalPathMatchesDpOnCorpus)
{
    // The closed-form critical path and the DP bound must agree
    // exactly on every (unguarded) corpus loop — the equality the
    // fuzzer's analytical oracle gates on.
    for (const auto &file : corpusFiles()) {
        dep::ParsedLoop p = dep::parseLoop(slurp(file));
        ASSERT_TRUE(p.ok) << file;
        bool guarded = false;
        for (const auto &stmt : p.loop.body)
            guarded |= stmt.guard.conditional();
        if (guarded)
            continue;
        dep::DepGraph graph(p.loop, false);
        sim::MachineConfig mc;
        mc.numProcs = 4;
        core::CriticalPathCosts costs =
            core::CriticalPathCosts::fromMachine(mc);
        auto cp = core::analyticalCriticalPath(p.loop, costs);
        auto dp = core::criticalPath(graph, costs);
        EXPECT_EQ(cp.cycles, dp.cycles) << file;
    }
}

TEST(FuzzCorpusTest, VerifierRejectsUnsatisfiableWait)
{
    // Negative program: a wait whose threshold no write, RMW or
    // initial value can ever establish. ir::verifyPrograms must
    // name it (planDoacross would abort the process instead, so
    // the fuzzer — and this test — call the verifier directly).
    sim::Program stuck;
    stuck.iter = 1;
    stuck.ops = {sim::Op::mkWaitGE(7, 5),
                 sim::Op::mkCompute(1)};
    auto errs = ir::verifyPrograms(
        {stuck}, [](sim::SyncVarId) { return sim::SyncWord{0}; });
    ASSERT_EQ(errs.size(), 1u);

    // The same wait becomes satisfiable once any program writes
    // the threshold; the verifier must then stay quiet.
    sim::Program writer;
    writer.iter = 2;
    writer.ops = {sim::Op::mkWrite(7, 5)};
    errs = ir::verifyPrograms(
        {stuck, writer},
        [](sim::SyncVarId) { return sim::SyncWord{0}; });
    EXPECT_TRUE(errs.empty())
        << (errs.empty() ? "" : errs.front());
}
