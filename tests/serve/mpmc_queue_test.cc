/**
 * @file
 * MpmcQueue: FIFO under the Vyukov fast path, capacity bounds,
 * blocking push/pop handshakes, close-then-drain semantics, and a
 * multi-producer/multi-consumer stress that must deliver every
 * element exactly once.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <thread>
#include <vector>

#include "serve/mpmc_queue.hh"

using namespace psync;
using namespace std::chrono_literals;

TEST(MpmcQueueTest, FifoSingleThreaded)
{
    serve::MpmcQueue<int> q(4);
    EXPECT_TRUE(q.tryPush(1));
    EXPECT_TRUE(q.tryPush(2));
    EXPECT_TRUE(q.tryPush(3));
    int v = 0;
    EXPECT_TRUE(q.tryPop(v));
    EXPECT_EQ(v, 1);
    EXPECT_TRUE(q.tryPop(v));
    EXPECT_EQ(v, 2);
    EXPECT_TRUE(q.tryPop(v));
    EXPECT_EQ(v, 3);
    EXPECT_FALSE(q.tryPop(v));
}

TEST(MpmcQueueTest, CapacityRoundsUpToPowerOfTwo)
{
    EXPECT_EQ(serve::MpmcQueue<int>(1).capacity(), 2u);
    EXPECT_EQ(serve::MpmcQueue<int>(5).capacity(), 8u);
    EXPECT_EQ(serve::MpmcQueue<int>(8).capacity(), 8u);
}

TEST(MpmcQueueTest, TryPushFailsWhenFullThenFreesUp)
{
    serve::MpmcQueue<int> q(2);
    EXPECT_TRUE(q.tryPush(1));
    EXPECT_TRUE(q.tryPush(2));
    EXPECT_FALSE(q.tryPush(3));
    int v = 0;
    EXPECT_TRUE(q.tryPop(v));
    EXPECT_TRUE(q.tryPush(3));
}

TEST(MpmcQueueTest, PopForTimesOutOnEmpty)
{
    serve::MpmcQueue<int> q(4);
    int v = 0;
    EXPECT_EQ(q.popFor(v, 2ms), 0);
}

TEST(MpmcQueueTest, BlockingPopWakesOnPush)
{
    serve::MpmcQueue<int> q(4);
    int got = 0;
    std::thread consumer([&] {
        int v = 0;
        if (q.pop(v))
            got = v;
    });
    std::this_thread::sleep_for(10ms);
    EXPECT_TRUE(q.tryPush(17));
    consumer.join();
    EXPECT_EQ(got, 17);
}

TEST(MpmcQueueTest, BlockingPushWakesOnPop)
{
    serve::MpmcQueue<int> q(2);
    ASSERT_TRUE(q.tryPush(1));
    ASSERT_TRUE(q.tryPush(2));
    std::atomic<bool> pushed{false};
    std::thread producer([&] {
        if (q.push(3))
            pushed.store(true);
    });
    std::this_thread::sleep_for(10ms);
    int v = 0;
    EXPECT_TRUE(q.tryPop(v));
    producer.join();
    EXPECT_TRUE(pushed.load());
}

TEST(MpmcQueueTest, CloseDrainsThenStops)
{
    serve::MpmcQueue<int> q(8);
    ASSERT_TRUE(q.tryPush(1));
    ASSERT_TRUE(q.tryPush(2));
    q.close();
    EXPECT_FALSE(q.push(3)); // pushes fail once closed
    int v = 0;
    // Remaining elements are still delivered...
    EXPECT_TRUE(q.pop(v));
    EXPECT_EQ(v, 1);
    EXPECT_EQ(q.popFor(v, 1s), 1);
    EXPECT_EQ(v, 2);
    // ...then pop reports closed-and-drained.
    EXPECT_FALSE(q.pop(v));
    EXPECT_EQ(q.popFor(v, 1s), -1);
}

TEST(MpmcQueueTest, CloseWakesBlockedPop)
{
    serve::MpmcQueue<int> q(4);
    std::atomic<bool> returned{false};
    std::thread consumer([&] {
        int v = 0;
        bool ok = q.pop(v);
        EXPECT_FALSE(ok);
        returned.store(true);
    });
    std::this_thread::sleep_for(10ms);
    q.close();
    consumer.join();
    EXPECT_TRUE(returned.load());
}

TEST(MpmcQueueTest, MpmcStressDeliversEachElementOnce)
{
    constexpr unsigned kProducers = 4;
    constexpr unsigned kConsumers = 4;
    constexpr std::uint64_t kPerProducer = 5000;
    serve::MpmcQueue<std::uint64_t> q(64);

    std::atomic<std::uint64_t> sum{0};
    std::atomic<std::uint64_t> count{0};
    std::vector<std::thread> threads;
    for (unsigned c = 0; c < kConsumers; ++c) {
        threads.emplace_back([&] {
            std::uint64_t v = 0;
            while (q.pop(v)) {
                sum.fetch_add(v, std::memory_order_relaxed);
                count.fetch_add(1, std::memory_order_relaxed);
            }
        });
    }
    std::vector<std::thread> producers;
    for (unsigned p = 0; p < kProducers; ++p) {
        producers.emplace_back([&, p] {
            for (std::uint64_t i = 0; i < kPerProducer; ++i)
                ASSERT_TRUE(q.push(p * kPerProducer + i + 1));
        });
    }
    for (auto &t : producers)
        t.join();
    q.close();
    for (auto &t : threads)
        t.join();

    const std::uint64_t n = kProducers * kPerProducer;
    EXPECT_EQ(count.load(), n);
    EXPECT_EQ(sum.load(), n * (n + 1) / 2);
}
