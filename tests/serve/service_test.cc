/**
 * @file
 * DoacrossService end-to-end: persistent gangs serving cached plans
 * with epoch-reused fabrics, sampled verification, watchdog
 * recovery (a deadlocked request fails alone — the next request on
 * the same arena runs clean), and both wake policies.
 */

#include <gtest/gtest.h>

#include <memory>

#include "serve/service.hh"
#include "workloads/fig21.hh"
#include "workloads/relaxation.hh"

using namespace psync;

namespace {

core::RunConfig
configFor(sync::SchemeKind kind)
{
    core::RunConfig cfg;
    cfg.machine.numProcs = 4;
    if (kind == sync::SchemeKind::referenceBased ||
        kind == sync::SchemeKind::instanceBased)
        cfg.machine.fabric = sim::FabricKind::memory;
    else
        cfg.machine.fabric = sim::FabricKind::registers;
    cfg.machine.syncRegisters = 1u << 20;
    cfg.scheme.numPcs = 16;
    cfg.scheme.numScs = 1u << 20;
    return cfg;
}

serve::ServeConfig
smallService(native::WakePolicy policy = native::WakePolicy::sharded)
{
    serve::ServeConfig cfg;
    cfg.gangs = 1;
    cfg.gangSize = 2;
    cfg.wakePolicy = policy;
    cfg.verifySampleEvery = 2;
    cfg.requestTimeoutMs = 10000;
    return cfg;
}

/** A plan whose only program waits on a threshold nothing writes. */
std::shared_ptr<core::CachedPlan>
stuckPlan()
{
    auto plan = std::make_shared<core::CachedPlan>();
    plan->key = "test/stuck-plan";
    plan->loopText = "(handcrafted deadlock)";
    plan->kind = sync::SchemeKind::none;
    plan->initWords = {0};
    sim::Program stuck;
    stuck.iter = 1;
    stuck.ops = {sim::Op::mkWaitGE(0, 99)};
    plan->programs = {stuck};
    return plan;
}

} // namespace

TEST(ServiceTest, ServesRepeatSubmissionsFromOneArena)
{
    serve::DoacrossService service(smallService());
    dep::Loop loop = workloads::makeFig21Loop(16);
    core::RunConfig cfg =
        configFor(sync::SchemeKind::processImproved);

    constexpr int kRequests = 8;
    for (int i = 0; i < kRequests; ++i) {
        EXPECT_NE(service.submit(
                      loop, sync::SchemeKind::processImproved, cfg),
                  0u);
    }
    service.waitIdle();
    auto completions = service.takeCompletions();
    ASSERT_EQ(completions.size(),
              static_cast<std::size_t>(kRequests));
    for (const auto &c : completions) {
        EXPECT_TRUE(c.completed)
            << (c.problems.empty() ? "" : c.problems.front());
        EXPECT_TRUE(c.verifyOk)
            << (c.problems.empty() ? "" : c.problems.front());
        EXPECT_GT(c.latencyNanos, 0u);
        EXPECT_GT(c.programsRun, 0u);
    }

    serve::ServiceStats stats = service.stats();
    EXPECT_EQ(stats.submitted, static_cast<std::uint64_t>(kRequests));
    EXPECT_EQ(stats.completedOk,
              static_cast<std::uint64_t>(kRequests));
    EXPECT_EQ(stats.failed, 0u);
    // One miss (first request plans), then hits.
    EXPECT_EQ(stats.planCacheMisses, 1u);
    EXPECT_EQ(stats.planCacheHits,
              static_cast<std::uint64_t>(kRequests - 1));
    // verifySampleEvery = 2: half the requests were fully verified.
    EXPECT_GE(stats.verifySamples, 2u);
    EXPECT_EQ(stats.verifyFailures, 0u);
    // Every request began a fresh epoch on its arena.
    EXPECT_EQ(stats.epochsBegun,
              static_cast<std::uint64_t>(kRequests));
    EXPECT_EQ(stats.latencyNs.count(),
              static_cast<std::uint64_t>(kRequests));
    service.stop();
}

TEST(ServiceTest, MixedPlansAndSchemesAllVerify)
{
    serve::ServeConfig cfg = smallService();
    cfg.verifySampleEvery = 1; // verify everything
    serve::DoacrossService service(cfg);
    dep::Loop fig21 = workloads::makeFig21Loop(12);
    dep::Loop relax = workloads::makeRelaxationLoop(10);

    for (int round = 0; round < 2; ++round) {
        for (sync::SchemeKind kind : sync::allSyncSchemes()) {
            service.submit(fig21, kind, configFor(kind));
            service.submit(relax, kind, configFor(kind));
        }
    }
    service.waitIdle();
    serve::ServiceStats stats = service.stats();
    EXPECT_EQ(stats.failed, 0u);
    EXPECT_EQ(stats.verifyFailures, 0u);
    EXPECT_EQ(stats.verifySamples, stats.submitted);
    // Round 2 resubmits round 1's (loop, scheme, config) triples.
    EXPECT_GE(stats.planCacheHits, stats.planCacheMisses);
    service.stop();
}

TEST(ServiceTest, FlatCombiningPolicyServesAndVerifies)
{
    serve::ServeConfig cfg =
        smallService(native::WakePolicy::flatCombining);
    cfg.gangSize = 4;
    cfg.verifySampleEvery = 1;
    serve::DoacrossService service(cfg);
    dep::Loop loop = workloads::makeFig21Loop(16);
    for (int i = 0; i < 6; ++i)
        service.submit(loop, sync::SchemeKind::statementOriented,
                       configFor(sync::SchemeKind::statementOriented));
    service.waitIdle();
    serve::ServiceStats stats = service.stats();
    EXPECT_EQ(stats.completedOk, 6u);
    EXPECT_EQ(stats.failed, 0u);
    EXPECT_EQ(stats.verifyFailures, 0u);
    service.stop();
}

TEST(ServiceTest, WatchdogFailsStuckRequestAndArenaRecovers)
{
    serve::ServeConfig cfg = smallService();
    cfg.gangSize = 2;
    cfg.requestTimeoutMs = 300;
    serve::DoacrossService service(cfg);

    // The stuck plan burns its watchdog deadline and must come back
    // as a failed completion — not a hung service.
    auto stuck = stuckPlan();
    std::uint64_t stuck_id = service.submitPlan(stuck);
    EXPECT_NE(stuck_id, 0u);
    service.waitIdle();
    auto completions = service.takeCompletions();
    ASSERT_EQ(completions.size(), 1u);
    EXPECT_EQ(completions[0].requestId, stuck_id);
    EXPECT_FALSE(completions[0].completed);
    ASSERT_FALSE(completions[0].problems.empty());

    // Same gang, new request: the healthy plan must run clean (the
    // arena's epoch bump cleared the abort), and a resubmission of
    // the *stuck plan's own arena* must fail again rather than
    // corrupt anything.
    dep::Loop loop = workloads::makeFig21Loop(12);
    core::RunConfig rcfg =
        configFor(sync::SchemeKind::processImproved);
    service.submit(loop, sync::SchemeKind::processImproved, rcfg);
    service.submitPlan(stuck);
    service.submit(loop, sync::SchemeKind::processImproved, rcfg);
    service.waitIdle();
    completions = service.takeCompletions();
    ASSERT_EQ(completions.size(), 3u);
    int ok = 0, failed = 0;
    for (const auto &c : completions) {
        if (c.completed)
            ++ok;
        else
            ++failed;
    }
    EXPECT_EQ(ok, 2);
    EXPECT_EQ(failed, 1);

    serve::ServiceStats stats = service.stats();
    EXPECT_EQ(stats.failed, 2u);
    EXPECT_EQ(stats.completedOk, 2u);
    service.stop();
}

TEST(ServiceTest, StopIsIdempotentAndRejectsLateSubmissions)
{
    serve::DoacrossService service(smallService());
    dep::Loop loop = workloads::makeFig21Loop(12);
    core::RunConfig cfg =
        configFor(sync::SchemeKind::processImproved);
    EXPECT_NE(service.submit(
                  loop, sync::SchemeKind::processImproved, cfg),
              0u);
    service.waitIdle();
    service.stop();
    service.stop(); // idempotent
    EXPECT_EQ(service.submit(
                  loop, sync::SchemeKind::processImproved, cfg),
              0u);
}

TEST(ServiceTest, MultiGangTrafficSpreadsAndCompletes)
{
    serve::ServeConfig cfg = smallService();
    cfg.gangs = 3;
    cfg.gangSize = 2;
    serve::DoacrossService service(cfg);
    dep::Loop loop = workloads::makeFig21Loop(16);
    core::RunConfig rcfg =
        configFor(sync::SchemeKind::processImproved);
    constexpr int kRequests = 30;
    for (int i = 0; i < kRequests; ++i)
        service.submit(loop, sync::SchemeKind::processImproved,
                       rcfg);
    service.waitIdle();
    serve::ServiceStats stats = service.stats();
    EXPECT_EQ(stats.completedOk,
              static_cast<std::uint64_t>(kRequests));
    EXPECT_EQ(stats.failed, 0u);
    EXPECT_EQ(stats.verifyFailures, 0u);
    service.stop();
}
