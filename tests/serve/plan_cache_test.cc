/**
 * @file
 * PlanCache keying, hit/miss accounting, LRU eviction, and entry
 * immutability. The keying property under test: two (loop, scheme,
 * config) triples that can produce different plans always produce
 * different keys, and the canonical printLoop round-trip text — not
 * the loop object's identity — is what the key carries, so a loop
 * parsed back from its own text hits the cache.
 */

#include <gtest/gtest.h>

#include "core/plan_cache.hh"
#include "dep/loop_text.hh"
#include "workloads/fig21.hh"
#include "workloads/relaxation.hh"

using namespace psync;

namespace {

core::RunConfig
baseConfig()
{
    core::RunConfig cfg;
    cfg.machine.numProcs = 4;
    cfg.machine.fabric = sim::FabricKind::registers;
    cfg.machine.syncRegisters = 1u << 20;
    cfg.scheme.numPcs = 16;
    cfg.scheme.numScs = 1u << 20;
    return cfg;
}

} // namespace

TEST(PlanCacheTest, SecondGetOfSameKeyHits)
{
    core::PlanCache cache(8);
    dep::Loop loop = workloads::makeFig21Loop(12);
    core::RunConfig cfg = baseConfig();

    auto a = cache.get(loop, sync::SchemeKind::processImproved, cfg);
    EXPECT_EQ(cache.misses(), 1u);
    EXPECT_EQ(cache.hits(), 0u);

    auto b = cache.get(loop, sync::SchemeKind::processImproved, cfg);
    EXPECT_EQ(cache.misses(), 1u);
    EXPECT_EQ(cache.hits(), 1u);
    // Same immutable entry, not a replan.
    EXPECT_EQ(a.get(), b.get());
    EXPECT_DOUBLE_EQ(cache.hitRate(), 0.5);
}

TEST(PlanCacheTest, CanonicalLoopTextIsTheKey)
{
    // A loop parsed back from its own canonical text is a different
    // dep::Loop object with the same text — it must hit.
    core::PlanCache cache(8);
    dep::Loop loop = workloads::makeFig21Loop(12);
    dep::ParsedLoop reparsed = dep::parseLoop(dep::printLoop(loop));
    ASSERT_TRUE(reparsed.ok) << reparsed.error;

    core::RunConfig cfg = baseConfig();
    auto a = cache.get(loop, sync::SchemeKind::statementOriented,
                       cfg);
    auto b = cache.get(reparsed.loop,
                       sync::SchemeKind::statementOriented, cfg);
    EXPECT_EQ(a.get(), b.get());
    EXPECT_EQ(cache.hits(), 1u);
    EXPECT_EQ(a->loopText, dep::printLoop(reparsed.loop));
}

TEST(PlanCacheTest, DistinctPlanningInputsNeverCollide)
{
    // Every planning-relevant variation must produce a distinct
    // key. Execution-time knobs (schedule policy, chunk size, tick
    // limit) deliberately do not.
    dep::Loop loop = workloads::makeFig21Loop(12);
    dep::Loop other = workloads::makeRelaxationLoop(12);
    core::RunConfig cfg = baseConfig();

    const std::string base = core::PlanCache::makeKey(
        loop, sync::SchemeKind::processImproved, cfg);

    // Different loop text.
    EXPECT_NE(base,
              core::PlanCache::makeKey(
                  other, sync::SchemeKind::processImproved, cfg));
    // Different scheme.
    EXPECT_NE(base,
              core::PlanCache::makeKey(
                  loop, sync::SchemeKind::statementOriented, cfg));

    // Each planning-relevant config field, varied one at a time.
    auto keyWith = [&](auto mutate) {
        core::RunConfig c = baseConfig();
        mutate(c);
        return core::PlanCache::makeKey(
            loop, sync::SchemeKind::processImproved, c);
    };
    EXPECT_NE(base, keyWith([](core::RunConfig &c) {
                  c.machine.numProcs = 8;
              }));
    EXPECT_NE(base, keyWith([](core::RunConfig &c) {
                  c.machine.fabric = sim::FabricKind::memory;
              }));
    EXPECT_NE(base, keyWith([](core::RunConfig &c) {
                  c.scheme.numPcs = 32;
              }));
    EXPECT_NE(base, keyWith([](core::RunConfig &c) {
                  c.scheme.exactBoundaries = true;
              }));
    EXPECT_NE(base, keyWith([](core::RunConfig &c) {
                  c.scheme.cedarCombining = true;
              }));
    EXPECT_NE(base, keyWith([](core::RunConfig &c) {
                  c.eliminateCoveredDeps = !c.eliminateCoveredDeps;
              }));
    EXPECT_NE(base, keyWith([](core::RunConfig &c) {
                  c.passes.eliminateRedundantWaits = true;
              }));
    EXPECT_NE(base, keyWith([](core::RunConfig &c) {
                  c.passes.peephole = true;
              }));

    // Execution-time knobs share the plan.
    EXPECT_EQ(base, keyWith([](core::RunConfig &c) {
                  c.schedule =
                      core::SchedulePolicy::staticCyclic;
              }));
    EXPECT_EQ(base, keyWith([](core::RunConfig &c) {
                  c.chunkSize = 99;
              }));
    EXPECT_EQ(base, keyWith([](core::RunConfig &c) {
                  c.tickLimit = 123456;
              }));
}

TEST(PlanCacheTest, DistinctConfigsGetDistinctEntries)
{
    core::PlanCache cache(8);
    dep::Loop loop = workloads::makeFig21Loop(12);
    core::RunConfig cfg = baseConfig();
    core::RunConfig wide = baseConfig();
    wide.machine.numProcs = 8;

    auto a = cache.get(loop, sync::SchemeKind::processImproved, cfg);
    auto b = cache.get(loop, sync::SchemeKind::processImproved,
                       wide);
    EXPECT_NE(a.get(), b.get());
    EXPECT_EQ(cache.misses(), 2u);
    EXPECT_EQ(cache.size(), 2u);
}

TEST(PlanCacheTest, LruEvictionKeepsRecentlyUsed)
{
    core::PlanCache cache(2);
    dep::Loop loop = workloads::makeFig21Loop(12);
    core::RunConfig cfg = baseConfig();

    auto a = cache.get(loop, sync::SchemeKind::processImproved, cfg);
    auto b = cache.get(loop, sync::SchemeKind::statementOriented,
                       cfg);
    // Touch A so B is the least recently used entry.
    cache.get(loop, sync::SchemeKind::processImproved, cfg);

    auto c = cache.get(loop, sync::SchemeKind::referenceBased, cfg);
    EXPECT_EQ(cache.size(), 2u);
    EXPECT_EQ(cache.evictions(), 1u);
    EXPECT_TRUE(cache.contains(a->key));
    EXPECT_TRUE(cache.contains(c->key));
    EXPECT_FALSE(cache.contains(b->key));

    // The evicted entry's shared_ptr stays valid — eviction never
    // invalidates a plan a gang is still executing.
    EXPECT_FALSE(b->programs.empty());

    // Re-requesting the evicted key replans (miss, not a hit).
    std::uint64_t misses = cache.misses();
    cache.get(loop, sync::SchemeKind::statementOriented, cfg);
    EXPECT_EQ(cache.misses(), misses + 1);
}

TEST(PlanCacheTest, FinisherRunsOncePerMiss)
{
    core::PlanCache cache(8);
    dep::Loop loop = workloads::makeFig21Loop(12);
    core::RunConfig cfg = baseConfig();

    int calls = 0;
    auto finisher = [&](core::CachedPlan &entry) {
        ++calls;
        entry.hasReference = true;
        entry.refReads[7] = 42;
    };
    auto a = cache.get(loop, sync::SchemeKind::processImproved, cfg,
                       finisher);
    auto b = cache.get(loop, sync::SchemeKind::processImproved, cfg,
                       finisher);
    EXPECT_EQ(calls, 1);
    EXPECT_TRUE(b->hasReference);
    EXPECT_EQ(b->refReads.at(7), 42u);
    EXPECT_EQ(a.get(), b.get());
}

TEST(PlanCacheTest, EntryCarriesInitImageAndVerifiedPlan)
{
    core::PlanCache cache(8);
    dep::Loop loop = workloads::makeFig21Loop(12);
    auto plan = cache.get(loop, sync::SchemeKind::processImproved,
                          baseConfig());
    EXPECT_FALSE(plan->programs.empty());
    EXPECT_FALSE(plan->initWords.empty());
    EXPECT_FALSE(plan->plan.depsVerified.empty());
    // In-place schemes carry the sequential oracle as reference.
    EXPECT_TRUE(plan->hasReference);
    EXPECT_FALSE(plan->refMemory.empty());
}
