/** @file The dependence verifier itself: catches real violations. */

#include <gtest/gtest.h>

#include "core/trace_check.hh"
#include "dep/dep_graph.hh"
#include "workloads/fig21.hh"

using namespace psync;

namespace {

/** Record one access (start, end) for (stmt, ref, iter). */
void
record(core::TraceChecker &checker, std::uint32_t stmt,
       std::uint16_t ref, std::uint64_t iter, sim::Tick start,
       sim::Tick end)
{
    checker.access(stmt, ref, iter, 0, false, start, end);
}

dep::Dep
flowDep(unsigned src, unsigned dst, long d)
{
    dep::Dep dep;
    dep.src = src;
    dep.dst = dst;
    dep.type = dep::DepType::flow;
    dep.d1 = d;
    return dep;
}

dep::Loop
twoStmtLoop(long n)
{
    dep::Loop loop;
    loop.depth = 1;
    loop.outer = {1, n};
    dep::Statement s1, s2;
    s1.label = "S1";
    s2.label = "S2";
    dep::ArrayRef w, r;
    w.array = "A";
    w.subs = {dep::Subscript{1, 0, 0}};
    w.isWrite = true;
    r.array = "A";
    r.subs = {dep::Subscript{1, 0, -1}};
    r.isWrite = false;
    s1.refs = {w};
    s2.refs = {r};
    loop.body = {s1, s2};
    return loop;
}

} // namespace

TEST(TraceCheckTest, CleanTracePasses)
{
    dep::Loop loop = twoStmtLoop(4);
    core::TraceChecker checker;
    // src S1@i ends before sink S2@i+1 starts.
    for (std::uint64_t i = 1; i <= 4; ++i) {
        record(checker, 0, 0, i, i * 10, i * 10 + 2);
        record(checker, 1, 0, i, i * 10 + 5, i * 10 + 6);
    }
    auto violations = checker.verify(loop, {flowDep(0, 1, 1)});
    EXPECT_TRUE(violations.empty());
    EXPECT_EQ(checker.instancesChecked(), 3u);
}

TEST(TraceCheckTest, ViolationDetected)
{
    dep::Loop loop = twoStmtLoop(3);
    core::TraceChecker checker;
    record(checker, 0, 0, 1, 100, 120); // S1@1 ends at 120
    record(checker, 1, 0, 1, 0, 1);
    record(checker, 0, 0, 2, 10, 12);
    record(checker, 1, 0, 2, 50, 60);   // S2@2 starts at 50 < 120
    record(checker, 0, 0, 3, 20, 22);
    record(checker, 1, 0, 3, 200, 210);
    auto violations = checker.verify(loop, {flowDep(0, 1, 1)});
    ASSERT_EQ(violations.size(), 1u);
    EXPECT_NE(violations[0].find("violated"), std::string::npos);
}

TEST(TraceCheckTest, EqualTicksAllowed)
{
    dep::Loop loop = twoStmtLoop(2);
    core::TraceChecker checker;
    record(checker, 0, 0, 1, 0, 50);
    record(checker, 1, 0, 1, 0, 1);
    record(checker, 0, 0, 2, 0, 10);
    record(checker, 1, 0, 2, 50, 60); // starts exactly at src end
    EXPECT_TRUE(checker.verify(loop, {flowDep(0, 1, 1)}).empty());
}

TEST(TraceCheckTest, MissingRecordReported)
{
    dep::Loop loop = twoStmtLoop(3);
    core::TraceChecker checker;
    record(checker, 0, 0, 1, 0, 1);
    // sink S2@2 never recorded.
    record(checker, 0, 0, 2, 0, 1);
    record(checker, 1, 0, 3, 10, 11);
    auto violations = checker.verify(loop, {flowDep(0, 1, 1)});
    EXPECT_FALSE(violations.empty());
    EXPECT_NE(violations[0].find("missing"), std::string::npos);
}

TEST(TraceCheckTest, BoundarySinksSkipped)
{
    dep::Loop loop = twoStmtLoop(3);
    core::TraceChecker checker;
    // Only iterations 2,3 have in-range sources for d=2... with
    // d=2 sinks start at lpid 3.
    record(checker, 0, 0, 1, 0, 1);
    record(checker, 1, 0, 3, 10, 11);
    auto violations = checker.verify(loop, {flowDep(0, 1, 2)});
    EXPECT_TRUE(violations.empty());
    EXPECT_EQ(checker.instancesChecked(), 1u);
}

TEST(TraceCheckTest, CopiesMergeIntoWorstCaseWindow)
{
    dep::Loop loop = twoStmtLoop(2);
    core::TraceChecker checker;
    // Two copy-writes of S1@1: latest end 30 governs.
    record(checker, 0, 0, 1, 0, 10);
    record(checker, 0, 0, 1, 20, 30);
    record(checker, 1, 0, 2, 25, 26); // starts before copy 2 ends
    auto violations = checker.verify(loop, {flowDep(0, 1, 1)});
    EXPECT_EQ(violations.size(), 1u);
}

TEST(TraceCheckTest, ClearResetsRecords)
{
    core::TraceChecker checker;
    record(checker, 0, 0, 1, 0, 1);
    EXPECT_EQ(checker.numRecords(), 1u);
    checker.clear();
    EXPECT_EQ(checker.numRecords(), 0u);
}
