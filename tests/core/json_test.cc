/** @file JSON value type, parser and serializer. */

#include <gtest/gtest.h>

#include <clocale>
#include <cmath>
#include <limits>

#include "core/json.hh"

using namespace psync::core::json;

TEST(JsonTest, DumpScalars)
{
    EXPECT_EQ(Value(nullptr).dump(), "null");
    EXPECT_EQ(Value(true).dump(), "true");
    EXPECT_EQ(Value(false).dump(), "false");
    EXPECT_EQ(Value(42).dump(), "42");
    EXPECT_EQ(Value(-7).dump(), "-7");
    EXPECT_EQ(Value(1.5).dump(), "1.5");
    EXPECT_EQ(Value("hi").dump(), "\"hi\"");
}

TEST(JsonTest, LargeIntegersStayExact)
{
    std::uint64_t tick = 123456789012345ull;
    Value v(tick);
    EXPECT_EQ(v.dump(), "123456789012345");
}

TEST(JsonTest, StringEscaping)
{
    EXPECT_EQ(Value("a\"b").dump(), "\"a\\\"b\"");
    EXPECT_EQ(Value("a\\b").dump(), "\"a\\\\b\"");
    EXPECT_EQ(Value("a\nb").dump(), "\"a\\nb\"");
    EXPECT_EQ(Value("a\tb").dump(), "\"a\\tb\"");
}

TEST(JsonTest, ObjectPreservesInsertionOrder)
{
    Value obj = object();
    obj.set("zebra", 1);
    obj.set("apple", 2);
    obj.set("mango", 3);
    EXPECT_EQ(obj.dump(), "{\"zebra\":1,\"apple\":2,\"mango\":3}");
}

TEST(JsonTest, FindLooksUpMembers)
{
    Value obj = object();
    obj.set("x", 10);
    obj.set("y", "s");
    ASSERT_NE(obj.find("x"), nullptr);
    EXPECT_DOUBLE_EQ(obj.find("x")->asNumber(), 10.0);
    EXPECT_EQ(obj.find("y")->asString(), "s");
    EXPECT_EQ(obj.find("z"), nullptr);
    EXPECT_TRUE(obj.has("x"));
    EXPECT_FALSE(obj.has("z"));
}

TEST(JsonTest, ParseScalars)
{
    EXPECT_TRUE(parse("null").value.isNull());
    EXPECT_TRUE(parse("true").value.asBool());
    EXPECT_FALSE(parse("false").value.asBool());
    EXPECT_DOUBLE_EQ(parse("3.25").value.asNumber(), 3.25);
    EXPECT_DOUBLE_EQ(parse("-17").value.asNumber(), -17.0);
    EXPECT_DOUBLE_EQ(parse("1e3").value.asNumber(), 1000.0);
    EXPECT_EQ(parse("\"abc\"").value.asString(), "abc");
}

TEST(JsonTest, ParseNestedStructure)
{
    auto r = parse("{\"a\": [1, 2, {\"b\": true}], \"c\": null}");
    ASSERT_TRUE(r.ok) << r.error;
    const Value *a = r.value.find("a");
    ASSERT_NE(a, nullptr);
    ASSERT_TRUE(a->isArray());
    ASSERT_EQ(a->asArray().size(), 3u);
    EXPECT_DOUBLE_EQ(a->asArray()[0].asNumber(), 1.0);
    EXPECT_TRUE(a->asArray()[2].find("b")->asBool());
    EXPECT_TRUE(r.value.find("c")->isNull());
}

TEST(JsonTest, ParseStringEscapes)
{
    auto r = parse("\"a\\n\\t\\\"\\\\b\\u0041\"");
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_EQ(r.value.asString(), "a\n\t\"\\bA");
}

TEST(JsonTest, ParseRejectsMalformedInput)
{
    EXPECT_FALSE(parse("").ok);
    EXPECT_FALSE(parse("{").ok);
    EXPECT_FALSE(parse("[1,]").ok);
    EXPECT_FALSE(parse("{\"a\":}").ok);
    EXPECT_FALSE(parse("{a: 1}").ok);
    EXPECT_FALSE(parse("1 2").ok);
    EXPECT_FALSE(parse("\"unterminated").ok);
}

TEST(JsonTest, RoundTripThroughDumpAndParse)
{
    Value obj = object();
    obj.set("name", "run");
    obj.set("cycles", std::uint64_t{987654321});
    obj.set("ratio", 0.375);
    obj.set("ok", true);
    Value arr = array();
    arr.push(1);
    arr.push("two");
    arr.push(nullptr);
    obj.set("items", std::move(arr));

    auto r = parse(obj.dump());
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_EQ(r.value.find("name")->asString(), "run");
    EXPECT_DOUBLE_EQ(r.value.find("cycles")->asNumber(), 987654321.0);
    EXPECT_DOUBLE_EQ(r.value.find("ratio")->asNumber(), 0.375);
    EXPECT_TRUE(r.value.find("ok")->asBool());
    EXPECT_EQ(r.value.find("items")->asArray().size(), 3u);
}

TEST(JsonTest, PrettyPrintParsesBack)
{
    Value obj = object();
    obj.set("a", 1);
    Value inner = object();
    inner.set("b", array());
    obj.set("nested", std::move(inner));
    std::string pretty = obj.dump(2);
    EXPECT_NE(pretty.find('\n'), std::string::npos);
    auto r = parse(pretty);
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_DOUBLE_EQ(r.value.find("a")->asNumber(), 1.0);
}

TEST(JsonTest, NonFiniteNumbersEmitNullAndRoundTrip)
{
    // JSON has no NaN/Infinity literals; rates over empty or
    // zero-cycle runs produce them. The dumper must emit null so
    // the document stays parseable by any strict reader —
    // including our own.
    double nan = std::numeric_limits<double>::quiet_NaN();
    double inf = std::numeric_limits<double>::infinity();

    EXPECT_EQ(Value(nan).dump(), "null");
    EXPECT_EQ(Value(inf).dump(), "null");
    EXPECT_EQ(Value(-inf).dump(), "null");

    Value obj = object();
    obj.set("rate", nan);
    obj.set("peak", inf);
    obj.set("fine", 2.5);
    Value arr = array();
    arr.push(nan);
    arr.push(1);
    obj.set("mixed", std::move(arr));

    auto r = parse(obj.dump());
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_TRUE(r.value.find("rate")->isNull());
    EXPECT_TRUE(r.value.find("peak")->isNull());
    EXPECT_DOUBLE_EQ(r.value.find("fine")->asNumber(), 2.5);
    const auto &mixed = r.value.find("mixed")->asArray();
    ASSERT_EQ(mixed.size(), 2u);
    EXPECT_TRUE(mixed[0].isNull());
    EXPECT_DOUBLE_EQ(mixed[1].asNumber(), 1.0);
}

TEST(JsonTest, NumbersAreLocaleIndependent)
{
    // Under a comma-decimal locale, "%.17g" prints "0,5" and
    // std::stod refuses "0.5" — either corrupts every persisted
    // trajectory record. The dumper and parser must speak JSON's
    // dot form no matter what the process locale says.
    const char *old = std::setlocale(LC_ALL, nullptr);
    std::string saved = old ? old : "C";
    static const char *commaLocales[] = {
        "de_DE.UTF-8", "de_DE.utf8", "de_DE", "fr_FR.UTF-8",
        "da_DK.UTF-8",
    };
    bool switched = false;
    for (const char *name : commaLocales) {
        if (std::setlocale(LC_ALL, name) != nullptr) {
            switched = true;
            break;
        }
    }

    EXPECT_EQ(Value(0.5).dump(), "0.5");
    EXPECT_EQ(Value(-12.25).dump(), "-12.25");
    EXPECT_EQ(Value(0.5).dump().find(','), std::string::npos);

    auto r = parse("{\"rate\": 0.5, \"big\": 1.5e300}");
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_DOUBLE_EQ(r.value.find("rate")->asNumber(), 0.5);
    EXPECT_DOUBLE_EQ(r.value.find("big")->asNumber(), 1.5e300);

    // Full round trip of a non-integral value.
    Value obj = object();
    obj.set("pi", 3.141592653589793);
    auto rt = parse(obj.dump());
    ASSERT_TRUE(rt.ok) << rt.error;
    EXPECT_DOUBLE_EQ(rt.value.find("pi")->asNumber(),
                     3.141592653589793);

    std::setlocale(LC_ALL, saved.c_str());
    if (!switched) {
        // No comma-decimal locale installed here; the assertions
        // above still pin the dot form, they just could not watch
        // it survive a hostile locale.
        SUCCEED() << "no comma-decimal locale available";
    }
}
