/** @file The dependence-limited lower bound. */

#include <gtest/gtest.h>

#include "core/critical_path.hh"
#include "core/runtime.hh"
#include "workloads/fig21.hh"
#include "workloads/nested.hh"
#include "workloads/relaxation.hh"

using namespace psync;

namespace {

core::CriticalPathCosts
unitCosts(sim::Tick access = 5)
{
    core::CriticalPathCosts c;
    c.accessCycles = access;
    return c;
}

} // namespace

TEST(CriticalPathTest, DoallIsOneIteration)
{
    dep::Loop loop;
    loop.depth = 1;
    loop.outer = {1, 100};
    dep::Statement s;
    s.label = "S1";
    s.cost = 7;
    dep::ArrayRef w;
    w.array = "A";
    w.subs = {dep::Subscript{1, 0, 0}};
    w.isWrite = true;
    s.refs = {w};
    loop.body = {s};

    dep::DepGraph graph(loop);
    auto cp = core::criticalPath(graph, unitCosts());
    EXPECT_EQ(cp.cycles, 12u); // 7 + one access
    EXPECT_EQ(cp.totalWork, 1200u);
    EXPECT_DOUBLE_EQ(cp.maxUsefulParallelism(), 100.0);
}

TEST(CriticalPathTest, PureRecurrenceIsSequential)
{
    dep::Loop loop;
    loop.depth = 1;
    loop.outer = {1, 50};
    dep::Statement s;
    s.label = "S1";
    s.cost = 3;
    dep::ArrayRef rd, wr;
    rd.array = "A";
    rd.subs = {dep::Subscript{1, 0, -1}};
    rd.isWrite = false;
    wr.array = "A";
    wr.subs = {dep::Subscript{1, 0, 0}};
    wr.isWrite = true;
    s.refs = {rd, wr};
    loop.body = {s};

    dep::DepGraph graph(loop);
    auto cp = core::criticalPath(graph, unitCosts());
    // Every instance chains: 50 * (3 + 2*5).
    EXPECT_EQ(cp.cycles, 50u * 13u);
    EXPECT_NEAR(cp.maxUsefulParallelism(), 1.0, 1e-9);
}

TEST(CriticalPathTest, DistanceStretchesParallelism)
{
    // A[I] = A[I-4]: chains of length N/4 -> parallelism ~4.
    dep::Loop loop;
    loop.depth = 1;
    loop.outer = {1, 40};
    dep::Statement s;
    s.label = "S1";
    s.cost = 3;
    dep::ArrayRef rd, wr;
    rd.array = "A";
    rd.subs = {dep::Subscript{1, 0, -4}};
    rd.isWrite = false;
    wr.array = "A";
    wr.subs = {dep::Subscript{1, 0, 0}};
    wr.isWrite = true;
    s.refs = {rd, wr};
    loop.body = {s};

    dep::DepGraph graph(loop);
    auto cp = core::criticalPath(graph, unitCosts());
    EXPECT_EQ(cp.cycles, 10u * 13u);
    EXPECT_NEAR(cp.maxUsefulParallelism(), 4.0, 1e-9);
}

TEST(CriticalPathTest, SimulationNeverBeatsTheBound)
{
    for (long n : {16L, 64L}) {
        dep::Loop loop = workloads::makeFig21Loop(n);
        dep::DepGraph graph(loop);

        core::RunConfig cfg;
        cfg.machine.numProcs = 16;
        cfg.machine.fabric = sim::FabricKind::registers;
        cfg.machine.syncRegisters = 1024;
        auto bound = core::criticalPath(
            graph,
            core::CriticalPathCosts::fromMachine(cfg.machine));
        auto r = core::runDoacross(
            loop, sync::SchemeKind::processImproved, cfg);
        ASSERT_TRUE(r.run.completed);
        EXPECT_GE(r.run.cycles, bound.cycles) << "N=" << n;
    }
}

TEST(CriticalPathTest, RelaxationBoundMatchesWavefrontDepth)
{
    // The 2-D relaxation's chain is the (N-1)+(N-1)-step staircase
    // through the corner: 2(N-1) - 1 instances.
    long n = 10;
    dep::Loop loop = workloads::makeRelaxationLoop(n, 4);
    dep::DepGraph graph(loop);
    auto cp = core::criticalPath(graph, unitCosts(0));
    sim::Tick per_instance = 4; // cost only, free accesses
    EXPECT_EQ(cp.cycles, per_instance * (2 * (n - 1) - 1));
}

TEST(CriticalPathTest, BranchGuardsShortenChains)
{
    // The same loop with the expensive statement guarded off most
    // of the time has a shorter critical path.
    dep::Loop always = workloads::makeFig21JitterLoop(
        64, 4, 100, 1.0, 5);
    dep::Loop never = workloads::makeFig21JitterLoop(
        64, 4, 100, 0.0, 5);
    dep::DepGraph g_always(always);
    dep::DepGraph g_never(never);
    auto cp_always = core::criticalPath(g_always, unitCosts());
    auto cp_never = core::criticalPath(g_never, unitCosts());
    EXPECT_GT(cp_always.totalWork, cp_never.totalWork);
}
