/**
 * @file
 * Negative verification: a deliberately under-synchronized "scheme"
 * must produce a reported dependence violation on BOTH backends.
 *
 * The stub mimics a broken signal-before-write compiler bug: the
 * producer posts its synchronization variable *before* performing
 * the guarded write (with work in between), so the consumer's
 * awaited read can start while the write is still pending. The
 * simulator makes the race deterministic (the producer's delay is
 * simulated time, so the read always lands inside the window); the
 * native run makes it probable and is retried across seeds until
 * observed. If the TraceChecker ever stops catching this, these
 * tests fail — the checker, not luck, is the correctness gate.
 */

#include <gtest/gtest.h>

#include "core/runtime.hh"
#include "core/trace_check.hh"
#include "native/executor.hh"
#include "sim/machine.hh"

using namespace psync;

namespace {

constexpr sim::Addr kAddr = 8192;

/**
 * The under-synchronized pair. Producer (iter 1): signal, THEN a
 * long delay, THEN the write the signal was supposed to order.
 * Consumer (iter 2): await the signal, read. A correct scheme
 * emits the signal after the write; this stub has them swapped.
 */
std::vector<sim::Program>
brokenPrograms(sim::SyncVarId v, sim::Tick producer_delay)
{
    sim::Program producer;
    producer.iter = 1;
    producer.ops = {sim::Op::mkWrite(v, 1), // bug: signal first
                    sim::Op::mkCompute(producer_delay),
                    sim::Op::mkStmtStart(0),
                    sim::Op::mkData(true, kAddr, 0, 0),
                    sim::Op::mkStmtEnd(0)};
    sim::Program consumer;
    consumer.iter = 2;
    consumer.ops = {sim::Op::mkWaitGE(v, 1),
                    sim::Op::mkStmtStart(1),
                    sim::Op::mkData(false, kAddr, 1, 0),
                    sim::Op::mkStmtEnd(1)};
    return {producer, consumer};
}

/** Loop shape matching the stub: S0 writes A[i], S1 reads A[i-1]. */
dep::Loop
brokenLoop()
{
    dep::Loop loop;
    loop.depth = 1;
    loop.outer = {1, 2};
    dep::Statement s0, s1;
    s0.label = "S0";
    s1.label = "S1";
    dep::ArrayRef w, r;
    w.array = "A";
    w.subs = {dep::Subscript{1, 0, 0}};
    w.isWrite = true;
    r.array = "A";
    r.subs = {dep::Subscript{1, 0, -1}};
    r.isWrite = false;
    s0.refs = {w};
    s1.refs = {r};
    loop.body = {s0, s1};
    return loop;
}

dep::Dep
flowDep()
{
    dep::Dep dep;
    dep.src = 0;
    dep.dst = 1;
    dep.type = dep::DepType::flow;
    dep.d1 = 1;
    return dep;
}

} // namespace

TEST(TraceCheckNegativeTest, SimBackendReportsViolation)
{
    sim::MachineConfig mc;
    mc.numProcs = 2;
    mc.fabric = sim::FabricKind::registers;
    mc.syncRegisters = 64;
    core::TraceChecker checker;
    sim::Machine machine(mc, &checker);
    sim::SyncVarId v = machine.fabric().allocate(1, 0);

    // 500 simulated cycles between signal and write: the awaited
    // read deterministically lands inside the window.
    auto programs = brokenPrograms(v, 500);
    auto result = core::runProgramPool(
        machine, programs, core::SchedulePolicy::staticCyclic);
    ASSERT_TRUE(result.completed);

    auto violations = checker.verify(brokenLoop(), {flowDep()});
    ASSERT_FALSE(violations.empty())
        << "under-synchronized stub passed the sim checker";
    EXPECT_NE(violations[0].find("violated"), std::string::npos);
}

TEST(TraceCheckNegativeTest, NativeBackendReportsViolation)
{
    // The native window is real time, so one rep may get lucky;
    // retry across seeds. The compute op is a forced yield point
    // between signal and write, which makes the interleaving in
    // which the consumer's read overtakes the producer's write
    // overwhelmingly likely per rep.
    bool caught = false;
    for (std::uint64_t seed = 1; seed <= 50 && !caught; ++seed) {
        native::NativeSyncFabric fabric;
        sim::SyncVarId v = fabric.allocate(1, 0);
        auto programs = brokenPrograms(v, 500);
        native::NativeDataMemory data(programs);
        native::NativeConfig cfg;
        cfg.numThreads = 2;
        cfg.schedule = core::SchedulePolicy::staticCyclic;
        cfg.timingSeed = seed;
        native::NativeExecutor exec(fabric, data, cfg);
        auto result = exec.runPool(programs);
        ASSERT_TRUE(result.completed) << "seed " << seed;

        core::TraceChecker checker;
        exec.replayAccesses(checker);
        auto violations = checker.verify(brokenLoop(), {flowDep()});
        if (!violations.empty()) {
            EXPECT_NE(violations[0].find("violated"),
                      std::string::npos);
            caught = true;
        }
    }
    EXPECT_TRUE(caught)
        << "under-synchronized stub never tripped the native "
           "checker in 50 seeded repetitions";
}
