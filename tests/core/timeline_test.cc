/** @file Timeline assembly, hot-spot detection, sampling edges. */

#include <gtest/gtest.h>

#include <functional>
#include <sstream>
#include <vector>

#include "core/timeline.hh"
#include "core/tracing.hh"
#include "sim/machine.hh"

using namespace psync;

namespace {

/** Emit one boundary's worth of the event-core streams. */
void
coreBatch(core::TraceRecorder &rec, sim::Tick at, double executed)
{
    rec.sample(sim::SampleStream::eventsExecuted, 0, at, executed);
    rec.sample(sim::SampleStream::pendingEvents, 0, at, 1);
}

/**
 * Run `progs[p]` per processor on a fresh machine, optionally
 * sampled, and return the completion tick.
 */
sim::Tick
runMachine(const std::vector<std::vector<sim::Program>> &progs,
           sim::Tracer *tracer, sim::Tick interval)
{
    sim::MachineConfig cfg;
    cfg.numProcs = static_cast<unsigned>(progs.size());
    cfg.timelineInterval = interval;
    sim::Machine m(cfg, nullptr, tracer);
    std::vector<std::size_t> next(progs.size(), 0);
    auto dispatch =
        [&](sim::ProcId who,
            std::function<void(const sim::Program *)> cb) {
            if (next[who] >= progs[who].size()) {
                cb(nullptr);
                return;
            }
            cb(&progs[who][next[who]++]);
        };
    EXPECT_TRUE(m.run(dispatch));
    return m.completionTick();
}

/** One compute-only program of `cycles` cycles. */
std::vector<sim::Program>
computeProgram(std::uint64_t iter, sim::Tick cycles)
{
    std::vector<sim::Program> progs(1);
    progs[0].iter = iter;
    progs[0].ops = {sim::Op::mkCompute(cycles)};
    return progs;
}

} // namespace

TEST(TimelineTest, EmptyRecorderYieldsEmptyTimeline)
{
    core::TraceRecorder rec;
    core::Timeline tl = core::buildTimeline(rec);
    EXPECT_TRUE(tl.empty());
    EXPECT_EQ(tl.numSamples(), 0u);
    EXPECT_EQ(tl.interval, 0u);
    EXPECT_TRUE(tl.hotspots.empty());

    std::ostringstream os;
    tl.writeText(os);
    EXPECT_NE(os.str().find("no samples"), std::string::npos);
}

TEST(TimelineTest, DifferencesCumulativeStreams)
{
    core::TraceRecorder rec;
    // Running totals 0 / 40 / 90 over boundaries 0 / 100 / 200.
    for (auto [at, busy, executed] :
         {std::tuple<sim::Tick, double, double>{0, 0, 0},
          {100, 40, 12},
          {200, 90, 30}}) {
        rec.sample(sim::SampleStream::busBusyCycles, 0, at, busy);
        coreBatch(rec, at, executed);
    }

    core::Timeline tl = core::buildTimeline(rec);
    ASSERT_EQ(tl.boundaries.size(), 3u);
    EXPECT_EQ(tl.interval, 100u);

    ASSERT_EQ(tl.busOccupancy.size(), 1u);
    const auto &occ = tl.busOccupancy[0].values;
    ASSERT_EQ(occ.size(), 3u);
    // Interval k covers (b[k-1], b[k]]; index 0 is the baseline.
    EXPECT_DOUBLE_EQ(occ[0], 0.0);
    EXPECT_DOUBLE_EQ(occ[1], 0.4);
    EXPECT_DOUBLE_EQ(occ[2], 0.5);

    const auto &ev = tl.eventsPerInterval.values;
    ASSERT_EQ(ev.size(), 3u);
    EXPECT_DOUBLE_EQ(ev[1], 12.0);
    EXPECT_DOUBLE_EQ(ev[2], 18.0);
}

TEST(TimelineTest, SparseWaiterStreamDefaultsToZero)
{
    core::TraceRecorder rec;
    rec.nameSyncVar(5, "pc[5]");
    coreBatch(rec, 0, 0);
    coreBatch(rec, 50, 10);
    coreBatch(rec, 100, 20);
    // Var 5 reported only at the middle boundary (sparse stream:
    // missing means zero waiters).
    rec.sample(sim::SampleStream::syncVarWaiters, 5, 50, 3);

    core::Timeline tl = core::buildTimeline(rec);
    ASSERT_EQ(tl.varWaiters.size(), 1u);
    EXPECT_EQ(tl.varWaiters[0].first, 5u);
    const auto &w = tl.varWaiters[0].second;
    EXPECT_NE(w.name.find("pc[5]"), std::string::npos);
    ASSERT_EQ(w.values.size(), 3u);
    EXPECT_DOUBLE_EQ(w.values[0], 0.0);
    EXPECT_DOUBLE_EQ(w.values[1], 3.0);
    EXPECT_DOUBLE_EQ(w.values[2], 0.0);
    EXPECT_DOUBLE_EQ(w.peak(), 3.0);
    EXPECT_EQ(w.peakIndex(), 1u);
}

TEST(TimelineTest, MergeSeriesToleratesRaggedLengths)
{
    core::TimelineSeries a{"a", {1, 2, 3}};
    core::TimelineSeries b{"b", {10, 20}};
    core::TimelineSeries sum = core::mergeSeries("sum", {&a, &b});
    ASSERT_EQ(sum.values.size(), 3u);
    EXPECT_DOUBLE_EQ(sum.values[0], 11.0);
    EXPECT_DOUBLE_EQ(sum.values[1], 22.0);
    EXPECT_DOUBLE_EQ(sum.values[2], 3.0);
    EXPECT_DOUBLE_EQ(sum.total(), 36.0);
}

TEST(TimelineTest, SparklineMapsZeroToSpaceAndPeakToFullBlock)
{
    // No pooling: 4 values into 4 columns.
    std::string s = core::sparkline({0, 1, 2, 4}, 4);
    EXPECT_EQ(s, " ▂▄█");

    // Max-pooling: 4 values into 2 columns keeps each half's max.
    EXPECT_EQ(core::sparkline({0, 4, 1, 2}, 2), "█▄");

    // Degenerate inputs.
    EXPECT_EQ(core::sparkline({}, 8), "");
    EXPECT_EQ(core::sparkline({0, 0}, 2), "  ");
}

TEST(TimelineTest, HotSpotDetectorFindsSustainedWindow)
{
    core::TraceRecorder rec;
    // 6 boundaries, 100 cycles apart. Module 0 absorbs ~80% of
    // traffic in intervals 2..4, then cools off.
    double m0 = 0, m1 = 0;
    for (int k = 0; k <= 5; ++k) {
        sim::Tick at = static_cast<sim::Tick>(k) * 100;
        // Interval k's traffic (lands in the running totals).
        if (k >= 2 && k <= 4) {
            m0 += 16;
            m1 += 4;
        } else if (k > 0) {
            // Background: module 0 stays under the 50% share bar.
            m0 += 4;
            m1 += 6;
        }
        rec.sample(sim::SampleStream::moduleAccesses, 0, at, m0);
        rec.sample(sim::SampleStream::moduleAccesses, 1, at, m1);
        coreBatch(rec, at, (m0 + m1));
    }

    core::TimelineConfig cfg;
    cfg.hotShare = 0.5;
    cfg.hotMinIntervals = 3;
    cfg.minEventsPerInterval = 8;
    core::Timeline tl = core::buildTimeline(rec, cfg);

    ASSERT_EQ(tl.hotspots.size(), 1u);
    const core::HotSpot &h = tl.hotspots[0];
    EXPECT_EQ(h.kind, "module");
    EXPECT_EQ(h.index, 0u);
    // Window is intervals 2..4, i.e. (100, 400].
    EXPECT_EQ(h.onset, 100u);
    EXPECT_EQ(h.duration, 300u);
    EXPECT_DOUBLE_EQ(h.peakShare, 0.8);
    EXPECT_DOUBLE_EQ(h.events, 48.0);

    core::json::Value j = h.toJson();
    EXPECT_EQ(j.find("kind")->asString(), "module");
    EXPECT_DOUBLE_EQ(j.find("peak_share")->asNumber(), 0.8);
}

TEST(TimelineTest, HotSpotIgnoresShortBurstsAndQuietIntervals)
{
    core::TraceRecorder rec;
    double m0 = 0, m1 = 0;
    for (int k = 0; k <= 5; ++k) {
        sim::Tick at = static_cast<sim::Tick>(k) * 100;
        if (k == 2 || k == 3) {
            // Dominant but only 2 intervals: below hotMinIntervals.
            m0 += 16;
            m1 += 2;
        } else if (k == 5) {
            // 100% share but under minEventsPerInterval.
            m0 += 3;
        } else if (k > 0) {
            // Module 0 under the 50% bar; module 1 over it, but
            // its hot intervals (k=1, k=4) are not consecutive.
            m0 += 4;
            m1 += 6;
        }
        rec.sample(sim::SampleStream::moduleAccesses, 0, at, m0);
        rec.sample(sim::SampleStream::moduleAccesses, 1, at, m1);
        coreBatch(rec, at, m0 + m1);
    }

    core::TimelineConfig cfg;
    cfg.hotShare = 0.5;
    cfg.hotMinIntervals = 3;
    cfg.minEventsPerInterval = 8;
    core::Timeline tl = core::buildTimeline(rec, cfg);
    EXPECT_TRUE(tl.hotspots.empty());
}

TEST(TimelineTest, IntervalLongerThanRunSamplesEndpoints)
{
    core::TraceRecorder rec;
    sim::Tick done = runMachine({computeProgram(1, 25)}, &rec,
                                /*interval=*/100000);
    EXPECT_FALSE(rec.samples().empty());

    core::Timeline tl = core::buildTimeline(rec);
    // One baseline batch at 0 and one final batch at completion.
    ASSERT_EQ(tl.boundaries.size(), 2u);
    EXPECT_EQ(tl.boundaries.front(), 0u);
    EXPECT_EQ(tl.boundaries.back(), done);
    // All events land in the single real interval.
    EXPECT_DOUBLE_EQ(tl.eventsPerInterval.values[0], 0.0);
    EXPECT_GT(tl.eventsPerInterval.values[1], 0.0);
}

TEST(TimelineTest, ZeroCycleRunSamplesOnce)
{
    // All processors dispatch null immediately: the run completes
    // at tick 0, producing exactly one sample batch.
    core::TraceRecorder rec;
    sim::Tick done =
        runMachine({{}, {}}, &rec, /*interval=*/16);
    EXPECT_EQ(done, 0u);

    core::Timeline tl = core::buildTimeline(rec);
    ASSERT_EQ(tl.boundaries.size(), 1u);
    EXPECT_EQ(tl.boundaries[0], 0u);
    EXPECT_EQ(tl.interval, 0u);
    EXPECT_TRUE(tl.hotspots.empty());

    std::ostringstream os;
    tl.writeText(os);
    EXPECT_NE(os.str().find("1 samples"), std::string::npos);
}

TEST(TimelineTest, AlignedBoundariesAreStrictlyIncreasing)
{
    // Run length is an exact multiple of the interval: the final
    // drain tick coincides with the last boundary and must not be
    // sampled twice.
    core::TraceRecorder rec;
    sim::Tick done = runMachine({computeProgram(1, 30)}, &rec,
                                /*interval=*/10);
    EXPECT_EQ(done % 10, 0u) << "fixture drifted";

    core::Timeline tl = core::buildTimeline(rec);
    for (std::size_t k = 1; k < tl.boundaries.size(); ++k)
        EXPECT_LT(tl.boundaries[k - 1], tl.boundaries[k]);
    EXPECT_EQ(tl.boundaries.back(), done);

    // One eventsExecuted sample per boundary — no duplicates.
    std::size_t executed_samples = 0;
    for (const auto &s : rec.samples()) {
        if (s.stream == sim::SampleStream::eventsExecuted)
            ++executed_samples;
    }
    EXPECT_EQ(executed_samples, tl.boundaries.size());
}

TEST(TimelineTest, SampledRunMatchesUnsampledCycles)
{
    // Sampling chunks the event-queue run at every boundary; the
    // (when, seq) execution order — and thus the cycle count — must
    // be identical to the unchunked run, including with a ragged
    // interval that does not divide the run length.
    std::vector<std::vector<sim::Program>> progs;
    for (unsigned p = 0; p < 3; ++p)
        progs.push_back(computeProgram(p + 1, 17 * (p + 1)));

    sim::Tick plain = runMachine(progs, nullptr, 0);
    core::TraceRecorder rec;
    sim::Tick sampled = runMachine(progs, &rec, 7);
    EXPECT_EQ(plain, sampled);
    EXPECT_FALSE(rec.samples().empty());
}

TEST(TimelineTest, SummaryJsonCarriesPeaksAndHotspots)
{
    core::TraceRecorder rec;
    double m0 = 0;
    for (int k = 0; k <= 4; ++k) {
        sim::Tick at = static_cast<sim::Tick>(k) * 100;
        if (k > 0)
            m0 += 20;
        rec.sample(sim::SampleStream::moduleAccesses, 0, at, m0);
        rec.sample(sim::SampleStream::busBusyCycles, 0, at,
                   static_cast<double>(at) / 2);
        rec.sample(sim::SampleStream::busQueueDepth, 0, at, k);
        coreBatch(rec, at, m0);
    }

    core::Timeline tl = core::buildTimeline(rec);
    core::json::Value sum = tl.summaryJson();
    EXPECT_EQ(sum.find("interval")->asNumber(), 100);
    EXPECT_EQ(sum.find("samples")->asNumber(), 5);
    EXPECT_DOUBLE_EQ(
        sum.find("peak_bus_occupancy")->find("data_bus")->asNumber(),
        0.5);
    EXPECT_DOUBLE_EQ(sum.find("peak_bus_queue")->asNumber(), 4.0);
    const core::json::Value *hot = sum.find("hotspots");
    ASSERT_NE(hot, nullptr);
    // One module with 100% share of every interval.
    ASSERT_TRUE(hot->isArray());
    ASSERT_FALSE(hot->asArray().empty());
    EXPECT_EQ(hot->asArray()[0].find("kind")->asString(), "module");

    // The full document round-trips through the JSON printer.
    auto parsed = core::json::parse(tl.toJson().dump());
    ASSERT_TRUE(parsed.ok) << parsed.error;
    EXPECT_TRUE(parsed.value.find("series")->isObject());
}
