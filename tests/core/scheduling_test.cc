/** @file Chunked and guided self-scheduling policies. */

#include <gtest/gtest.h>

#include "core/runtime.hh"
#include "workloads/fig21.hh"
#include "workloads/synthetic.hh"

using namespace psync;

namespace {

core::RunConfig
config(core::SchedulePolicy policy, std::uint64_t chunk = 4)
{
    core::RunConfig cfg;
    cfg.machine.numProcs = 4;
    cfg.machine.fabric = sim::FabricKind::registers;
    cfg.machine.syncRegisters = 1024;
    cfg.schedule = policy;
    cfg.chunkSize = chunk;
    cfg.tickLimit = 50000000;
    return cfg;
}

} // namespace

class SchedulingPolicyTest
    : public ::testing::TestWithParam<core::SchedulePolicy>
{
};

TEST_P(SchedulingPolicyTest, CorrectAndComplete)
{
    dep::Loop loop = workloads::makeFig21Loop(64);
    for (auto kind : {sync::SchemeKind::processBasic,
                      sync::SchemeKind::processImproved,
                      sync::SchemeKind::statementOriented}) {
        auto r = core::runDoacross(loop, kind, config(GetParam()));
        ASSERT_TRUE(r.run.completed)
            << sync::schemeKindName(kind);
        EXPECT_EQ(r.run.programsRun, 64u);
        EXPECT_TRUE(r.correct())
            << sync::schemeKindName(kind) << ": "
            << (r.violations.empty() ? "" : r.violations.front());
    }
}

TEST_P(SchedulingPolicyTest, RandomLoopsCorrect)
{
    for (std::uint64_t seed : {11ull, 12ull, 13ull}) {
        workloads::SyntheticSpec spec;
        spec.seed = seed;
        spec.n = 40;
        dep::Loop loop = workloads::makeSyntheticLoop(spec);
        auto r = core::runDoacross(
            loop, sync::SchemeKind::processImproved,
            config(GetParam()));
        ASSERT_TRUE(r.run.completed) << "seed=" << seed;
        EXPECT_TRUE(r.correct()) << "seed=" << seed;
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, SchedulingPolicyTest,
    ::testing::Values(core::SchedulePolicy::selfScheduling,
                      core::SchedulePolicy::chunkedSelfScheduling,
                      core::SchedulePolicy::guidedSelfScheduling,
                      core::SchedulePolicy::staticCyclic),
    [](const ::testing::TestParamInfo<core::SchedulePolicy> &info) {
        return core::schedulePolicyName(info.param);
    });

TEST(SchedulingTest, ChunkingCutsDispatchTraffic)
{
    dep::Loop loop = workloads::makeFig21Loop(128);
    auto fine = core::runDoacross(
        loop, sync::SchemeKind::processImproved,
        config(core::SchedulePolicy::selfScheduling));
    auto chunked = core::runDoacross(
        loop, sync::SchemeKind::processImproved,
        config(core::SchedulePolicy::chunkedSelfScheduling, 8));
    ASSERT_TRUE(fine.run.completed);
    ASSERT_TRUE(chunked.run.completed);
    // One RMW per chunk of 8 instead of per iteration.
    EXPECT_LT(chunked.run.memAccesses + 100, fine.run.memAccesses);
}

TEST(SchedulingTest, ChunkSizeOneEqualsSelfScheduling)
{
    dep::Loop loop = workloads::makeFig21Loop(48);
    auto a = core::runDoacross(
        loop, sync::SchemeKind::processImproved,
        config(core::SchedulePolicy::selfScheduling));
    auto b = core::runDoacross(
        loop, sync::SchemeKind::processImproved,
        config(core::SchedulePolicy::chunkedSelfScheduling, 1));
    ASSERT_TRUE(a.run.completed);
    ASSERT_TRUE(b.run.completed);
    EXPECT_EQ(a.run.cycles, b.run.cycles);
    EXPECT_EQ(a.run.memAccesses, b.run.memAccesses);
}

TEST(SchedulingTest, GuidedClaimsShrink)
{
    // Guided scheduling finishes a Doall-style loop with fewer
    // dispatch RMWs than per-iteration self-scheduling.
    workloads::SyntheticSpec spec;
    spec.seed = 9;
    spec.n = 200;
    spec.writeProb = 0.0; // reads only -> few deps
    dep::Loop loop = workloads::makeSyntheticLoop(spec);

    auto fine = core::runDoacross(
        loop, sync::SchemeKind::processImproved,
        config(core::SchedulePolicy::selfScheduling));
    auto guided = core::runDoacross(
        loop, sync::SchemeKind::processImproved,
        config(core::SchedulePolicy::guidedSelfScheduling));
    ASSERT_TRUE(fine.run.completed);
    ASSERT_TRUE(guided.run.completed);
    EXPECT_LT(guided.run.memAccesses, fine.run.memAccesses);
    EXPECT_EQ(guided.run.programsRun, 200u);
}

TEST(SchedulingTest, GuidedHandlesFewerIterationsThanProcs)
{
    // remaining / (2 * p) is 0 for every claim when total < procs;
    // the claim-size clamp to 1 is what keeps dispatch moving. Each
    // of the 3 iterations must still run exactly once on 8 procs.
    dep::Loop loop = workloads::makeFig21Loop(3);
    core::RunConfig cfg =
        config(core::SchedulePolicy::guidedSelfScheduling);
    cfg.machine.numProcs = 8;
    auto r = core::runDoacross(
        loop, sync::SchemeKind::processImproved, cfg);
    ASSERT_TRUE(r.run.completed);
    EXPECT_EQ(r.run.programsRun, 3u);
    EXPECT_TRUE(r.correct())
        << (r.violations.empty() ? "" : r.violations.front());
}

TEST(SchedulingTest, GuidedHandlesSingleIteration)
{
    dep::Loop loop = workloads::makeFig21Loop(1);
    core::RunConfig cfg =
        config(core::SchedulePolicy::guidedSelfScheduling);
    cfg.machine.numProcs = 4;
    auto r = core::runDoacross(
        loop, sync::SchemeKind::processImproved, cfg);
    ASSERT_TRUE(r.run.completed);
    EXPECT_EQ(r.run.programsRun, 1u);
    EXPECT_TRUE(r.correct());
}
