/**
 * @file
 * Causal critical-path reconstruction (core/profile).
 *
 * The core case is a hand-built three-op trace whose critical path
 * is known by construction, so every segment boundary, the fabric
 * propagation charge and the histogram contents can be asserted
 * exactly. Real-run tests then pin the tiling invariant (achieved
 * path == run cycles, never below the analytical bound) on actual
 * scheme executions.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "core/critical_path.hh"
#include "core/profile.hh"
#include "core/runtime.hh"
#include "core/tracing.hh"
#include "dep/dep_graph.hh"
#include "workloads/fig21.hh"
#include "workloads/nested.hh"

using namespace psync;

using Profile = core::CriticalPathProfile;
using SegKind = core::CriticalPathProfile::SegmentKind;

namespace {

/**
 * Two processors, one dependence:
 *
 *   p0: compute op1 [0,100)   syncWrite op2 var7 [100,110)
 *       (value commits on the fabric at 110)
 *   p1: waitGE   op3 var7 [50,130)  -- blocked 55..130
 *       compute  op4 [130,230)
 *
 * Run length 230. The achieved path must be: op1, op2, a 20-cycle
 * propagation gap on var7 (writer committed at 110, waiter woke at
 * 130), then op4 — tiling [0, 230) exactly.
 */
core::TraceRecorder
makeHandBuiltTrace()
{
    core::TraceRecorder rec;
    rec.nameSyncVar(7, "pc[7]");

    rec.opSpan(0, 1, 1, ir::OpKind::compute, 0, 0, 100);
    rec.opSpan(0, 1, 2, ir::OpKind::syncWrite, 7, 100, 110);
    rec.syncVarOp(7, "write", 0, 110);

    rec.opSpan(1, 2, 3, ir::OpKind::syncWaitGE, 7, 50, 130);
    rec.waitEdge(7, 1, 55, 130);
    rec.waitEdgeOp(7, 1, 3, 55, 130);
    rec.opSpan(1, 2, 4, ir::OpKind::compute, 0, 130, 230);
    return rec;
}

sim::Tick
segmentTotal(const Profile &prof)
{
    sim::Tick total = 0;
    for (const auto &s : prof.segments)
        total += s.cycles();
    return total;
}

} // namespace

TEST(ProfileTest, EmptyTraceYieldsEmptyProfile)
{
    core::TraceRecorder rec;
    Profile prof = core::buildCriticalPathProfile(rec, 0, 0);
    EXPECT_TRUE(prof.segments.empty());
    EXPECT_EQ(prof.achievedCycles, 0u);
    EXPECT_EQ(prof.waitAll.count(), 0u);
    EXPECT_DOUBLE_EQ(prof.gapPct(), 0.0);
}

TEST(ProfileTest, HandBuiltPathReconstructsExactly)
{
    core::TraceRecorder rec = makeHandBuiltTrace();
    Profile prof = core::buildCriticalPathProfile(rec, 230, 200);

    EXPECT_EQ(prof.achievedCycles, 230u);
    EXPECT_EQ(segmentTotal(prof), 230u);
    EXPECT_FALSE(prof.truncated);
    EXPECT_EQ(prof.boundCycles, 200u);
    EXPECT_NEAR(prof.gapPct(), 15.0, 1e-9);

    ASSERT_EQ(prof.segments.size(), 4u);

    const auto &s0 = prof.segments[0];
    EXPECT_EQ(s0.kind, SegKind::op);
    EXPECT_EQ(s0.proc, 0u);
    EXPECT_EQ(s0.opId, 1u);
    EXPECT_EQ(s0.opKind, ir::OpKind::compute);
    EXPECT_EQ(s0.start, 0u);
    EXPECT_EQ(s0.end, 100u);

    const auto &s1 = prof.segments[1];
    EXPECT_EQ(s1.kind, SegKind::op);
    EXPECT_EQ(s1.proc, 0u);
    EXPECT_EQ(s1.opId, 2u);
    EXPECT_EQ(s1.opKind, ir::OpKind::syncWrite);
    EXPECT_TRUE(s1.hasVar);
    EXPECT_EQ(s1.var, 7u);
    EXPECT_EQ(s1.start, 100u);
    EXPECT_EQ(s1.end, 110u);

    const auto &s2 = prof.segments[2];
    EXPECT_EQ(s2.kind, SegKind::wait);
    EXPECT_EQ(s2.proc, 1u);
    EXPECT_TRUE(s2.hasVar);
    EXPECT_EQ(s2.var, 7u);
    EXPECT_EQ(s2.start, 110u);
    EXPECT_EQ(s2.end, 130u);

    const auto &s3 = prof.segments[3];
    EXPECT_EQ(s3.kind, SegKind::op);
    EXPECT_EQ(s3.proc, 1u);
    EXPECT_EQ(s3.opId, 4u);
    EXPECT_EQ(s3.start, 130u);
    EXPECT_EQ(s3.end, 230u);

    // The 20 propagation cycles land on var7, labeled at plan time.
    EXPECT_EQ(prof.propagationCycles, 20u);
    ASSERT_EQ(prof.varShares.size(), 1u);
    EXPECT_EQ(prof.varShares[0].var, 7u);
    EXPECT_EQ(prof.varShares[0].label, "pc[7]");
    EXPECT_EQ(prof.varShares[0].cycles, 20u);

    // On-path execution cycles per processor.
    ASSERT_EQ(prof.procShares.size(), 2u);
    EXPECT_EQ(prof.procShares[0].proc, 0u);
    EXPECT_EQ(prof.procShares[0].cycles, 110u);
    EXPECT_EQ(prof.procShares[1].proc, 1u);
    EXPECT_EQ(prof.procShares[1].cycles, 100u);
}

TEST(ProfileTest, HandBuiltHistogramsSeeTheOneWait)
{
    core::TraceRecorder rec = makeHandBuiltTrace();
    Profile prof = core::buildCriticalPathProfile(rec, 230, 200);

    EXPECT_EQ(prof.waitAll.count(), 1u);
    EXPECT_EQ(prof.waitAll.min(), 75u);
    EXPECT_EQ(prof.waitAll.max(), 75u);

    ASSERT_EQ(prof.waitByVar.count(7), 1u);
    EXPECT_EQ(prof.waitByVar.at(7).count(), 1u);
    EXPECT_EQ(prof.waitByVar.at(7).percentile(0.5), 75u);

    // The site edge joins back to the blocking op's kind.
    ASSERT_EQ(prof.waitByKind.count("sync_wait_ge"), 1u);
    EXPECT_EQ(prof.waitByKind.at("sync_wait_ge").count(), 1u);
}

TEST(ProfileTest, HandBuiltJsonAndTextAgree)
{
    core::TraceRecorder rec = makeHandBuiltTrace();
    Profile prof = core::buildCriticalPathProfile(rec, 230, 200);

    core::json::Value v = prof.toJson();
    ASSERT_NE(v.find("achieved_cycles"), nullptr);
    EXPECT_EQ(v.find("achieved_cycles")->asNumber(), 230);
    EXPECT_EQ(v.find("bound_cycles")->asNumber(), 200);
    EXPECT_NEAR(v.find("gap_pct")->asNumber(), 15.0, 1e-9);
    ASSERT_NE(v.find("segments"), nullptr);
    EXPECT_EQ(v.find("segments")->asArray().size(), 4u);

    std::ostringstream os;
    prof.writeText(os, "hand-built");
    EXPECT_NE(os.str().find("hand-built"), std::string::npos);
    EXPECT_NE(os.str().find("achieved 230"), std::string::npos);
    EXPECT_NE(os.str().find("pc[7]"), std::string::npos);

    // One Perfetto event per segment plus the track metadata.
    core::json::Value events = prof.perfettoEvents();
    EXPECT_EQ(events.asArray().size(), prof.segments.size() + 1);
}

// The tiling invariant on real runs: achieved == run cycles, and
// never below the machine-aware analytical bound (the same
// invariant psync_bench --profile gates on).
TEST(ProfileTest, RealRunsTileExactly)
{
    struct Case
    {
        const char *name;
        dep::Loop loop;
        sync::SchemeKind kind;
    };
    std::vector<Case> cases;
    cases.push_back({"fig21", workloads::makeFig21Loop(64),
                     sync::SchemeKind::processImproved});
    cases.push_back({"nested", workloads::makeNestedLoop(16, 16),
                     sync::SchemeKind::statementOriented});

    for (auto &c : cases) {
        core::RunConfig cfg;
        cfg.machine.numProcs = 8;
        cfg.machine.fabric = sim::FabricKind::registers;
        core::TraceRecorder recorder;
        cfg.tracer = &recorder;

        auto r = core::runDoacross(c.loop, c.kind, cfg);
        ASSERT_TRUE(r.run.completed) << c.name;

        dep::DepGraph graph(c.loop);
        core::CriticalPath cp = core::criticalPath(
            graph,
            core::CriticalPathCosts::fromMachine(cfg.machine));
        sim::Tick bound =
            cp.achievableBound(cfg.machine.numProcs);

        Profile prof = core::buildCriticalPathProfile(
            recorder, r.run.cycles, bound);
        EXPECT_EQ(prof.achievedCycles, r.run.cycles) << c.name;
        EXPECT_EQ(segmentTotal(prof), r.run.cycles) << c.name;
        EXPECT_GE(prof.achievedCycles, bound) << c.name;
        EXPECT_FALSE(prof.truncated) << c.name;

        // Phase totals tile too: every path cycle is attributed.
        sim::Tick phase_total =
            prof.computeCycles + prof.spinCycles +
            prof.syncCycles + prof.stallCycles +
            prof.dispatchCycles + prof.propagationCycles +
            prof.otherCycles;
        EXPECT_EQ(phase_total, prof.achievedCycles) << c.name;
    }
}
