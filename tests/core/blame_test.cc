/** @file Blame reducer: wait-chain attribution from trace events. */

#include <gtest/gtest.h>

#include <sstream>

#include "core/blame.hh"
#include "core/runtime.hh"
#include "core/tracing.hh"
#include "workloads/fig21.hh"

using namespace psync;

namespace {

/** Recorder pre-loaded with a known wait/heat pattern. */
core::TraceRecorder
handBuiltTrace()
{
    core::TraceRecorder rec;
    rec.nameSyncVar(3, "pc[0]");
    rec.nameSyncVar(7, "sc[2]");

    // var 3: proc 1 blocked twice (30 + 10), proc 2 once (60).
    rec.waitEdge(3, 1, 100, 130);
    rec.waitEdge(3, 1, 200, 210);
    rec.waitEdge(3, 2, 100, 160);
    // var 7: one short wait.
    rec.waitEdge(7, 0, 50, 55);
    // var 9: unlabeled.
    rec.waitEdge(9, 3, 10, 12);

    rec.resourceBusy("memory.module", 0, 1, 0, 40);
    rec.resourceBusy("memory.module", 0, 2, 40, 60);
    rec.resourceBusy("memory.module", 5, 1, 0, 10);
    // Non-module resources must not leak into the heatmap.
    rec.resourceBusy("bus.data", 0, 1, 0, 500);
    return rec;
}

} // namespace

TEST(BlameTest, AttributesWaitEdgesPerVariable)
{
    core::TraceRecorder rec = handBuiltTrace();
    core::RunResult run;
    run.numProcs = 4;
    run.cycles = 250;
    run.spinCycles = 30 + 10 + 60 + 5 + 2;

    core::BlameReport report =
        core::buildBlameReport(rec, run, 200);

    ASSERT_EQ(report.vars.size(), 3u);
    // Sorted by descending blocked cycles: var 3 (100) first.
    EXPECT_EQ(report.vars[0].var, 3u);
    EXPECT_EQ(report.vars[0].name(), "pc[0]");
    EXPECT_EQ(report.vars[0].waits, 3u);
    EXPECT_EQ(report.vars[0].blockedCycles, 100u);
    EXPECT_EQ(report.vars[0].maxWait, 60u);
    ASSERT_EQ(report.vars[0].perProc.size(), 2u);
    EXPECT_EQ(report.vars[0].perProc.at(1), 40u);
    EXPECT_EQ(report.vars[0].perProc.at(2), 60u);

    EXPECT_EQ(report.vars[1].var, 7u);
    EXPECT_EQ(report.vars[1].name(), "sc[2]");
    EXPECT_EQ(report.vars[1].blockedCycles, 5u);

    EXPECT_EQ(report.vars[2].var, 9u);
    EXPECT_EQ(report.vars[2].name(), "v9");
    EXPECT_EQ(report.vars[2].blockedCycles, 2u);

    // Every spin cycle in the hand-built run is covered.
    EXPECT_EQ(report.attributedSpinCycles, 107u);
    EXPECT_EQ(report.totalSpinCycles, run.spinCycles);
    EXPECT_DOUBLE_EQ(report.spinCoverage(), 1.0);
    EXPECT_DOUBLE_EQ(report.slackFactor(), 250.0 / 200.0);
}

TEST(BlameTest, ModuleHeatmapCountsOnlyMemoryModules)
{
    core::TraceRecorder rec = handBuiltTrace();
    core::RunResult run;
    run.numProcs = 4;
    run.cycles = 250;

    core::BlameReport report = core::buildBlameReport(rec, run);

    ASSERT_EQ(report.modules.size(), 2u);
    EXPECT_EQ(report.modules[0].module, 0u);
    EXPECT_EQ(report.modules[0].busyCycles, 60u);
    EXPECT_EQ(report.modules[0].accesses, 2u);
    EXPECT_EQ(report.modules[1].module, 5u);
    EXPECT_EQ(report.modules[1].busyCycles, 10u);
    // bound = 0 disables the slack factor.
    EXPECT_DOUBLE_EQ(report.slackFactor(), 0.0);
}

TEST(BlameTest, JsonAndTextCarryTheAttribution)
{
    core::TraceRecorder rec = handBuiltTrace();
    core::RunResult run;
    run.numProcs = 4;
    run.cycles = 250;
    run.spinCycles = 107;

    core::BlameReport report =
        core::buildBlameReport(rec, run, 200);

    core::json::Value j = report.toJson();
    const core::json::Value *vars = j.find("vars");
    ASSERT_NE(vars, nullptr);
    ASSERT_TRUE(vars->isArray());
    ASSERT_EQ(vars->asArray().size(), 3u);
    const core::json::Value &top = vars->asArray()[0];
    EXPECT_EQ(top.find("label")->asString(), "pc[0]");
    EXPECT_EQ(top.find("blocked_cycles")->asNumber(), 100);
    const core::json::Value *coverage = j.find("spin_coverage");
    ASSERT_NE(coverage, nullptr);
    EXPECT_DOUBLE_EQ(coverage->asNumber(), 1.0);

    std::ostringstream os;
    report.writeText(os);
    EXPECT_NE(os.str().find("contention blame"), std::string::npos);
    EXPECT_NE(os.str().find("pc[0]"), std::string::npos);
    EXPECT_NE(os.str().find("memory-module heat"),
              std::string::npos);
}

// End-to-end guarantee behind `psync_bench --report`: on the
// Fig. 3.2 jitter workload, the fabric wait edges must account for
// at least 95% of the processors' accumulated spin cycles.
TEST(BlameTest, SpinCoverageOnFig32JitterRun)
{
    dep::Loop loop =
        workloads::makeFig21JitterLoop(256, 8, 800, 0.15, 1234);
    core::TraceRecorder rec;
    core::RunConfig cfg;
    cfg.machine.numProcs = 8;
    cfg.machine.fabric = sim::FabricKind::registers;
    cfg.machine.syncRegisters = 1u << 22;
    cfg.scheme.numPcs = 16;
    cfg.tracer = &rec;

    auto r = core::runDoacross(
        loop, sync::SchemeKind::statementOriented, cfg);
    ASSERT_TRUE(r.run.completed);
    ASSERT_GT(r.run.spinCycles, 0u);

    core::BlameReport report =
        core::buildBlameReport(rec, r.run);
    EXPECT_GE(report.spinCoverage(), 0.95);
    EXPECT_LE(report.spinCoverage(), 1.0 + 1e-9);
    EXPECT_FALSE(report.vars.empty());
}
