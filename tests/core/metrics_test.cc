/** @file RunResult aggregation and derived ratios. */

#include <gtest/gtest.h>

#include <sstream>

#include "core/json.hh"
#include "core/metrics.hh"
#include "core/runtime.hh"
#include "workloads/fig21.hh"

using namespace psync;

TEST(MetricsTest, AggregatesAcrossProcessors)
{
    sim::MachineConfig mc;
    mc.numProcs = 3;
    mc.fabric = sim::FabricKind::registers;
    sim::Machine machine(mc);

    std::vector<std::vector<sim::Program>> progs(3);
    for (unsigned p = 0; p < 3; ++p) {
        progs[p].resize(1);
        progs[p][0].iter = p + 1;
        progs[p][0].ops = {sim::Op::mkCompute(10 * (p + 1))};
    }
    auto r = core::runPerProcessorPrograms(machine, progs);
    ASSERT_TRUE(r.completed);
    EXPECT_EQ(r.numProcs, 3u);
    EXPECT_EQ(r.computeCycles, 60u);
    EXPECT_EQ(r.cycles, 30u);
    EXPECT_DOUBLE_EQ(r.utilization(), 60.0 / 90.0);
}

TEST(MetricsTest, SpeedupOverSequential)
{
    core::RunResult r;
    r.cycles = 100;
    EXPECT_DOUBLE_EQ(r.speedupOver(400), 4.0);
    core::RunResult zero;
    EXPECT_DOUBLE_EQ(zero.speedupOver(400), 0.0);
}

TEST(MetricsTest, FabricCountersLandInResult)
{
    dep::Loop loop = workloads::makeFig21Loop(32);
    core::RunConfig cfg;
    cfg.machine.numProcs = 4;
    cfg.machine.fabric = sim::FabricKind::registers;

    auto reg = core::runDoacross(
        loop, sync::SchemeKind::processImproved, cfg);
    ASSERT_TRUE(reg.run.completed);
    EXPECT_GT(reg.run.syncBusBroadcasts, 0u);
    EXPECT_EQ(reg.run.syncMemPolls, 0u);

    cfg.machine.fabric = sim::FabricKind::memory;
    auto mem = core::runDoacross(
        loop, sync::SchemeKind::processImproved, cfg);
    ASSERT_TRUE(mem.run.completed);
    EXPECT_EQ(mem.run.syncBusBroadcasts, 0u);
    EXPECT_GT(mem.run.syncMemPolls, 0u);
}

TEST(MetricsTest, PrintResultEmitsRow)
{
    core::RunResult r;
    r.cycles = 1234;
    r.numProcs = 4;
    r.computeCycles = 2000;
    std::ostringstream os;
    core::printResult(os, "test-row", r);
    EXPECT_NE(os.str().find("test-row"), std::string::npos);
    EXPECT_NE(os.str().find("1234"), std::string::npos);
}

TEST(MetricsTest, IncompleteRunFlagged)
{
    core::RunResult r;
    r.completed = false;
    std::ostringstream os;
    core::printResult(os, "dead", r);
    EXPECT_NE(os.str().find("DEADLOCK"), std::string::npos);
}

// toJson() -> dump -> parse reproduces every field. Each field gets
// a distinct value so a key typo or a copy-paste of the wrong
// member cannot cancel out.
TEST(MetricsTest, JsonRoundTripsEveryField)
{
    core::RunResult r;
    r.completed = true;
    r.cycles = 101;
    r.numProcs = 7;
    r.computeCycles = 103;
    r.spinCycles = 104;
    r.syncOverheadCycles = 105;
    r.stallCycles = 106;
    r.syncOps = 107;
    r.marksSkipped = 108;
    r.programsRun = 109;
    r.eventsExecuted = 124;
    r.heapFallbackEvents = 125;
    r.eventCore = "calendar";
    r.dataBusTransactions = 110;
    r.dataBusQueueDelay = 111;
    r.dataBusUtilization = 0.25;
    r.syncBusBroadcasts = 113;
    r.coalescedWrites = 114;
    r.syncBusUtilization = 0.5;
    r.memAccesses = 116;
    r.hottestModuleAccesses = 117;
    r.hotSpotRatio = 1.75;
    r.moduleQueueDelay = 119;
    r.syncMemPolls = 120;
    r.cacheHits = 121;
    r.cacheMisses = 122;
    r.cacheInvalidations = 123;

    std::ostringstream os;
    r.toJson().dump(os, 2);
    auto parsed = core::json::parse(os.str());
    ASSERT_TRUE(parsed.ok) << parsed.error;
    const core::json::Value &v = parsed.value;

    auto num = [&v](const char *key) {
        const core::json::Value *m = v.find(key);
        EXPECT_NE(m, nullptr) << key;
        EXPECT_TRUE(m && m->isNumber()) << key;
        return m && m->isNumber() ? m->asNumber() : -1.0;
    };
    const core::json::Value *completed = v.find("completed");
    ASSERT_NE(completed, nullptr);
    ASSERT_TRUE(completed->isBool());
    EXPECT_TRUE(completed->asBool());
    EXPECT_EQ(num("cycles"), 101);
    EXPECT_EQ(num("num_procs"), 7);
    EXPECT_EQ(num("compute_cycles"), 103);
    EXPECT_EQ(num("spin_cycles"), 104);
    EXPECT_EQ(num("sync_overhead_cycles"), 105);
    EXPECT_EQ(num("stall_cycles"), 106);
    EXPECT_DOUBLE_EQ(num("utilization"), r.utilization());
    EXPECT_DOUBLE_EQ(num("spin_fraction"), r.spinFraction());
    EXPECT_EQ(num("sync_ops"), 107);
    EXPECT_EQ(num("marks_skipped"), 108);
    EXPECT_EQ(num("programs_run"), 109);
    EXPECT_EQ(num("events_executed"), 124);
    EXPECT_EQ(num("heap_fallback_events"), 125);
    const core::json::Value *event_core = v.find("event_core");
    ASSERT_NE(event_core, nullptr);
    ASSERT_TRUE(event_core->isString());
    EXPECT_EQ(event_core->asString(), "calendar");
    EXPECT_EQ(num("data_bus_transactions"), 110);
    EXPECT_EQ(num("data_bus_queue_delay"), 111);
    EXPECT_DOUBLE_EQ(num("data_bus_utilization"), 0.25);
    EXPECT_EQ(num("sync_bus_broadcasts"), 113);
    EXPECT_EQ(num("coalesced_writes"), 114);
    EXPECT_DOUBLE_EQ(num("sync_bus_utilization"), 0.5);
    EXPECT_EQ(num("mem_accesses"), 116);
    EXPECT_EQ(num("hottest_module_accesses"), 117);
    EXPECT_DOUBLE_EQ(num("hot_spot_ratio"), 1.75);
    EXPECT_EQ(num("module_queue_delay"), 119);
    EXPECT_EQ(num("sync_mem_polls"), 120);
    EXPECT_EQ(num("cache_hits"), 121);
    EXPECT_EQ(num("cache_misses"), 122);
    EXPECT_EQ(num("cache_invalidations"), 123);

    // wait_latency only appears on profiled runs (satellite key
    // order stays stable for unprofiled records).
    EXPECT_EQ(v.find("wait_latency"), nullptr);
}

TEST(MetricsTest, WaitLatencyEmittedWhenRecorded)
{
    core::RunResult r;
    r.waitLatency.record(7);
    r.waitLatency.record(9);
    std::ostringstream os;
    r.toJson().dump(os, 2);
    auto parsed = core::json::parse(os.str());
    ASSERT_TRUE(parsed.ok) << parsed.error;
    const core::json::Value *w = parsed.value.find("wait_latency");
    ASSERT_NE(w, nullptr);
    ASSERT_NE(w->find("count"), nullptr);
    EXPECT_EQ(w->find("count")->asNumber(), 2);
    EXPECT_EQ(w->find("sum")->asNumber(), 16);
    EXPECT_EQ(w->find("min")->asNumber(), 7);
    EXPECT_EQ(w->find("max")->asNumber(), 9);
}

TEST(LogHistogramTest, EmptyReportsZeros)
{
    core::LogHistogram h;
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.sum(), 0u);
    EXPECT_EQ(h.min(), 0u);
    EXPECT_EQ(h.max(), 0u);
    EXPECT_EQ(h.percentile(0.5), 0u);
    EXPECT_EQ(h.percentile(1.0), 0u);
    for (unsigned b = 0; b < core::LogHistogram::kBuckets; ++b)
        EXPECT_EQ(h.bucketCount(b), 0u) << b;
}

TEST(LogHistogramTest, SingleSampleClampsEveryQuantile)
{
    core::LogHistogram h;
    h.record(100);
    EXPECT_EQ(h.count(), 1u);
    EXPECT_EQ(h.sum(), 100u);
    EXPECT_EQ(h.min(), 100u);
    EXPECT_EQ(h.max(), 100u);
    // Bucket upper bound is 127, but quantiles clamp to observed.
    EXPECT_EQ(h.percentile(0.5), 100u);
    EXPECT_EQ(h.percentile(0.99), 100u);
    EXPECT_EQ(h.percentile(1.0), 100u);
}

TEST(LogHistogramTest, BucketingSchemeIsPinned)
{
    using H = core::LogHistogram;
    EXPECT_EQ(H::bucketOf(0), 0u);
    EXPECT_EQ(H::bucketOf(1), 1u);
    EXPECT_EQ(H::bucketOf(2), 2u);
    EXPECT_EQ(H::bucketOf(3), 2u);
    EXPECT_EQ(H::bucketOf(4), 3u);
    EXPECT_EQ(H::bucketOf(7), 3u);
    EXPECT_EQ(H::bucketOf((std::uint64_t{1} << 47) - 1),
              H::kBuckets - 2);
    // Everything at or above 2^47 lands in the overflow bucket.
    EXPECT_EQ(H::bucketOf(std::uint64_t{1} << 47), H::kBuckets - 1);
    EXPECT_EQ(H::bucketOf(~std::uint64_t{0}), H::kBuckets - 1);
}

TEST(LogHistogramTest, OverflowBucketNeverDropsSamples)
{
    core::LogHistogram h;
    h.record(std::uint64_t{1} << 47);
    h.record(std::uint64_t{1} << 60);
    h.record(~std::uint64_t{0});
    EXPECT_EQ(h.count(), 3u);
    EXPECT_EQ(h.bucketCount(core::LogHistogram::kBuckets - 1), 3u);
    EXPECT_EQ(h.max(), ~std::uint64_t{0});
    EXPECT_EQ(h.min(), std::uint64_t{1} << 47);
    // The overflow bucket has no finite upper bound of its own;
    // every rank inside it reports the observed max.
    EXPECT_EQ(h.percentile(1.0), ~std::uint64_t{0});
    EXPECT_EQ(h.percentile(0.01), ~std::uint64_t{0});
}

TEST(LogHistogramTest, PercentileHitsBucketUpperBound)
{
    core::LogHistogram h;
    for (int i = 0; i < 100; ++i)
        h.record(10); // bucket 4: [8, 15]
    h.record(1000); // bucket 10: [512, 1023]
    EXPECT_EQ(h.percentile(0.5), 15u);
    EXPECT_EQ(h.percentile(0.95), 15u);
    // Rank 101 falls in the 1000-sample's bucket, clamped to max.
    EXPECT_EQ(h.percentile(1.0), 1000u);
}

TEST(LogHistogramTest, MergeCombinesCountsAndExtremes)
{
    core::LogHistogram a, b, empty;
    a.record(3);
    a.record(100);
    b.record(1);
    b.record(50000);
    a.merge(b);
    EXPECT_EQ(a.count(), 4u);
    EXPECT_EQ(a.sum(), 3u + 100u + 1u + 50000u);
    EXPECT_EQ(a.min(), 1u);
    EXPECT_EQ(a.max(), 50000u);
    EXPECT_EQ(a.bucketCount(core::LogHistogram::bucketOf(3)), 1u);
    EXPECT_EQ(a.bucketCount(core::LogHistogram::bucketOf(1)), 1u);

    // Merging an empty histogram changes nothing, either way.
    a.merge(empty);
    EXPECT_EQ(a.count(), 4u);
    EXPECT_EQ(a.min(), 1u);
    empty.merge(b);
    EXPECT_EQ(empty.count(), 2u);
    EXPECT_EQ(empty.min(), 1u);
    EXPECT_EQ(empty.max(), 50000u);
}
