/** @file RunResult aggregation and derived ratios. */

#include <gtest/gtest.h>

#include <sstream>

#include "core/metrics.hh"
#include "core/runtime.hh"
#include "workloads/fig21.hh"

using namespace psync;

TEST(MetricsTest, AggregatesAcrossProcessors)
{
    sim::MachineConfig mc;
    mc.numProcs = 3;
    mc.fabric = sim::FabricKind::registers;
    sim::Machine machine(mc);

    std::vector<std::vector<sim::Program>> progs(3);
    for (unsigned p = 0; p < 3; ++p) {
        progs[p].resize(1);
        progs[p][0].iter = p + 1;
        progs[p][0].ops = {sim::Op::mkCompute(10 * (p + 1))};
    }
    auto r = core::runPerProcessorPrograms(machine, progs);
    ASSERT_TRUE(r.completed);
    EXPECT_EQ(r.numProcs, 3u);
    EXPECT_EQ(r.computeCycles, 60u);
    EXPECT_EQ(r.cycles, 30u);
    EXPECT_DOUBLE_EQ(r.utilization(), 60.0 / 90.0);
}

TEST(MetricsTest, SpeedupOverSequential)
{
    core::RunResult r;
    r.cycles = 100;
    EXPECT_DOUBLE_EQ(r.speedupOver(400), 4.0);
    core::RunResult zero;
    EXPECT_DOUBLE_EQ(zero.speedupOver(400), 0.0);
}

TEST(MetricsTest, FabricCountersLandInResult)
{
    dep::Loop loop = workloads::makeFig21Loop(32);
    core::RunConfig cfg;
    cfg.machine.numProcs = 4;
    cfg.machine.fabric = sim::FabricKind::registers;

    auto reg = core::runDoacross(
        loop, sync::SchemeKind::processImproved, cfg);
    ASSERT_TRUE(reg.run.completed);
    EXPECT_GT(reg.run.syncBusBroadcasts, 0u);
    EXPECT_EQ(reg.run.syncMemPolls, 0u);

    cfg.machine.fabric = sim::FabricKind::memory;
    auto mem = core::runDoacross(
        loop, sync::SchemeKind::processImproved, cfg);
    ASSERT_TRUE(mem.run.completed);
    EXPECT_EQ(mem.run.syncBusBroadcasts, 0u);
    EXPECT_GT(mem.run.syncMemPolls, 0u);
}

TEST(MetricsTest, PrintResultEmitsRow)
{
    core::RunResult r;
    r.cycles = 1234;
    r.numProcs = 4;
    r.computeCycles = 2000;
    std::ostringstream os;
    core::printResult(os, "test-row", r);
    EXPECT_NE(os.str().find("test-row"), std::string::npos);
    EXPECT_NE(os.str().find("1234"), std::string::npos);
}

TEST(MetricsTest, IncompleteRunFlagged)
{
    core::RunResult r;
    r.completed = false;
    std::ostringstream os;
    core::printResult(os, "dead", r);
    EXPECT_NE(os.str().find("DEADLOCK"), std::string::npos);
}
