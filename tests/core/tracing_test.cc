/**
 * @file
 * Trace recorder, Chrome trace-event export, and the passive-tracer
 * invariant: a traced run and an untraced run of the same
 * configuration produce identical statistics.
 */

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <sstream>
#include <vector>

#include "core/json.hh"
#include "core/runtime.hh"
#include "core/tracing.hh"
#include "sync/pc_file.hh"
#include "workloads/fig21.hh"
#include "workloads/relaxation.hh"

using namespace psync;

namespace {

constexpr unsigned kProcs = 4;

sim::MachineConfig
machineConfig()
{
    sim::MachineConfig cfg;
    cfg.numProcs = kProcs;
    cfg.fabric = sim::FabricKind::registers;
    cfg.syncRegisters = 1024;
    return cfg;
}

/**
 * The acceptance scenario: the paper's Example 1 relaxation loop
 * run as an asynchronously pipelined Doacross (the
 * relaxation_pipeline example), with an optional tracer attached.
 */
core::RunResult
runRelaxationPipeline(sim::Tracer *tracer)
{
    workloads::RelaxationSpec spec;
    spec.n = 16;

    dep::Loop loop =
        workloads::makeRelaxationLoop(spec.n, spec.stmtCost);
    dep::DataLayout layout(loop);

    sim::Machine machine(machineConfig(), nullptr, tracer);
    sync::PcFile pcs(machine.fabric(), 2 * kProcs);
    auto programs =
        workloads::buildPipelinedPrograms(pcs, loop, layout, spec);
    return core::runProgramPool(machine, programs,
                                core::SchedulePolicy::selfScheduling);
}

} // namespace

TEST(TracingTest, ChromeTraceIsWellFormedJson)
{
    core::TraceRecorder recorder;
    core::RunResult result = runRelaxationPipeline(&recorder);
    ASSERT_TRUE(result.completed);
    ASSERT_GT(recorder.eventCount(), 0u);

    std::ostringstream os;
    recorder.writeChromeTrace(os);
    auto parsed = core::json::parse(os.str());
    ASSERT_TRUE(parsed.ok) << parsed.error;

    const core::json::Value *events =
        parsed.value.find("traceEvents");
    ASSERT_NE(events, nullptr);
    ASSERT_TRUE(events->isArray());
    ASSERT_FALSE(events->asArray().empty());

    // Every event carries the required trace-event keys.
    for (const auto &ev : events->asArray()) {
        ASSERT_TRUE(ev.isObject());
        ASSERT_TRUE(ev.has("ph"));
        ASSERT_TRUE(ev.has("pid"));
        const std::string &ph = ev.find("ph")->asString();
        if (ph == "X") {
            ASSERT_TRUE(ev.has("ts"));
            ASSERT_TRUE(ev.has("dur"));
            ASSERT_TRUE(ev.has("name"));
            EXPECT_GE(ev.find("dur")->asNumber(), 0.0);
        }
    }
}

TEST(TracingTest, TraceHasOneTrackPerProcessor)
{
    core::TraceRecorder recorder;
    ASSERT_TRUE(runRelaxationPipeline(&recorder).completed);

    auto doc = recorder.chromeTrace();
    const core::json::Value *events = doc.find("traceEvents");
    ASSERT_NE(events, nullptr);

    // Processor tracks live in pid 0; count distinct tids that have
    // phase ("X") events and thread_name metadata.
    std::set<int> phase_tids;
    std::set<int> named_tids;
    for (const auto &ev : events->asArray()) {
        if (ev.find("pid")->asNumber() != 0)
            continue;
        const std::string &ph = ev.find("ph")->asString();
        if (ph == "X")
            phase_tids.insert(
                static_cast<int>(ev.find("tid")->asNumber()));
        if (ph == "M" &&
            ev.find("name")->asString() == "thread_name")
            named_tids.insert(
                static_cast<int>(ev.find("tid")->asNumber()));
    }
    EXPECT_GE(phase_tids.size(), kProcs);
    EXPECT_GE(named_tids.size(), kProcs);
}

TEST(TracingTest, PhaseIntervalsDoNotOverlapPerProcessor)
{
    core::TraceRecorder recorder;
    ASSERT_TRUE(runRelaxationPipeline(&recorder).completed);

    // The modeled cores are in-order with one operation
    // outstanding: intervals of one processor must tile without
    // overlap (touching endpoints are fine).
    std::map<sim::ProcId,
             std::vector<std::pair<sim::Tick, sim::Tick>>> per_proc;
    bool saw_compute = false;
    bool saw_spin = false;
    for (const auto &e : recorder.phases()) {
        ASSERT_LT(e.start, e.end);
        per_proc[e.who].emplace_back(e.start, e.end);
        if (e.phase == sim::TracePhase::compute)
            saw_compute = true;
        if (e.phase == sim::TracePhase::spin)
            saw_spin = true;
    }
    EXPECT_TRUE(saw_compute);
    EXPECT_TRUE(saw_spin);
    EXPECT_GE(per_proc.size(), kProcs);

    for (auto &entry : per_proc) {
        auto &ivs = entry.second;
        std::sort(ivs.begin(), ivs.end());
        for (size_t i = 1; i < ivs.size(); ++i) {
            EXPECT_GE(ivs[i].first, ivs[i - 1].second)
                << "proc " << entry.first << " intervals ["
                << ivs[i - 1].first << ", " << ivs[i - 1].second
                << ") and [" << ivs[i].first << ", "
                << ivs[i].second << ") overlap";
        }
    }
}

TEST(TracingTest, NullTracerMatchesRecordedRunStatistics)
{
    core::RunResult untraced = runRelaxationPipeline(nullptr);
    core::TraceRecorder recorder;
    core::RunResult traced = runRelaxationPipeline(&recorder);

    // Tracing is passive: it must not perturb the simulation.
    EXPECT_EQ(untraced.completed, traced.completed);
    EXPECT_EQ(untraced.cycles, traced.cycles);
    EXPECT_EQ(untraced.computeCycles, traced.computeCycles);
    EXPECT_EQ(untraced.spinCycles, traced.spinCycles);
    EXPECT_EQ(untraced.syncOverheadCycles,
              traced.syncOverheadCycles);
    EXPECT_EQ(untraced.stallCycles, traced.stallCycles);
    EXPECT_EQ(untraced.syncOps, traced.syncOps);
    EXPECT_EQ(untraced.syncBusBroadcasts, traced.syncBusBroadcasts);
    EXPECT_EQ(untraced.coalescedWrites, traced.coalescedWrites);
    EXPECT_EQ(untraced.dataBusTransactions,
              traced.dataBusTransactions);
    EXPECT_EQ(untraced.memAccesses, traced.memAccesses);
}

TEST(TracingTest, RepeatedRunsAreIdentical)
{
    core::RunResult first = runRelaxationPipeline(nullptr);
    core::RunResult second = runRelaxationPipeline(nullptr);
    EXPECT_EQ(first.cycles, second.cycles);
    EXPECT_EQ(first.spinCycles, second.spinCycles);
    EXPECT_EQ(first.syncOps, second.syncOps);
    EXPECT_EQ(first.syncBusBroadcasts, second.syncBusBroadcasts);
}

TEST(TracingTest, ResourceAndBroadcastEventsAreRecorded)
{
    core::TraceRecorder recorder;
    ASSERT_TRUE(runRelaxationPipeline(&recorder).completed);

    // The register fabric broadcasts over the sync bus; the data
    // accesses occupy the data bus and memory modules.
    bool saw_sync_bus = false;
    bool saw_memory = false;
    for (const auto &e : recorder.resources()) {
        ASSERT_LE(e.start, e.end);
        if (e.resource == "sync_bus")
            saw_sync_bus = true;
        if (e.resource == "memory.module")
            saw_memory = true;
    }
    EXPECT_TRUE(saw_sync_bus);
    EXPECT_TRUE(saw_memory);

    bool saw_broadcast = false;
    for (const auto &e : recorder.instants()) {
        if (e.name == "sync_broadcast")
            saw_broadcast = true;
    }
    EXPECT_TRUE(saw_broadcast);
}

TEST(TracingTest, SyncVarOpsAreCountedAndLabeled)
{
    core::TraceRecorder recorder;

    dep::Loop loop = workloads::makeFig21Loop(32);
    core::RunConfig cfg;
    cfg.machine = machineConfig();
    cfg.tracer = &recorder;
    auto r = core::runDoacross(
        loop, sync::SchemeKind::processImproved, cfg);
    ASSERT_TRUE(r.run.completed);
    ASSERT_TRUE(r.correct());

    ASSERT_FALSE(recorder.syncVars().empty());
    bool saw_pc_label = false;
    std::uint64_t total_ops = 0;
    for (const auto &entry : recorder.syncVars()) {
        total_ops += entry.second.total;
        if (entry.second.label.rfind("pc[", 0) == 0)
            saw_pc_label = true;
    }
    EXPECT_TRUE(saw_pc_label);
    EXPECT_GT(total_ops, 0u);

    auto summary = recorder.syncVarSummary();
    ASSERT_TRUE(summary.isArray());
    ASSERT_FALSE(summary.asArray().empty());
    // Sorted by descending total.
    double prev = summary.asArray()[0].find("total")->asNumber();
    for (const auto &var : summary.asArray()) {
        double t = var.find("total")->asNumber();
        EXPECT_LE(t, prev);
        prev = t;
        EXPECT_TRUE(var.has("var"));
        EXPECT_TRUE(var.has("ops"));
    }
}

TEST(TracingTest, ClearDropsAllEvents)
{
    core::TraceRecorder recorder;
    ASSERT_TRUE(runRelaxationPipeline(&recorder).completed);
    ASSERT_GT(recorder.eventCount(), 0u);
    recorder.clear();
    EXPECT_EQ(recorder.eventCount(), 0u);
    EXPECT_TRUE(recorder.syncVars().empty());
}

TEST(TracingTest, RunResultToJsonRoundTrips)
{
    core::RunResult result = runRelaxationPipeline(nullptr);
    auto parsed = core::json::parse(result.toJson().dump());
    ASSERT_TRUE(parsed.ok) << parsed.error;

    // Every quantity printResult() prints must be present.
    for (const char *key :
         {"cycles", "utilization", "spin_fraction", "sync_ops",
          "sync_bus_broadcasts", "coalesced_writes",
          "sync_mem_polls", "hot_spot_ratio", "completed"}) {
        EXPECT_TRUE(parsed.value.has(key)) << key;
    }
    EXPECT_DOUBLE_EQ(parsed.value.find("cycles")->asNumber(),
                     static_cast<double>(result.cycles));
    EXPECT_DOUBLE_EQ(parsed.value.find("utilization")->asNumber(),
                     result.utilization());
    EXPECT_DOUBLE_EQ(parsed.value.find("spin_fraction")->asNumber(),
                     result.spinFraction());
    EXPECT_EQ(parsed.value.find("completed")->asBool(),
              result.completed);
    EXPECT_DOUBLE_EQ(parsed.value.find("sync_ops")->asNumber(),
                     static_cast<double>(result.syncOps));
}

TEST(TracingTest, MachineStatsGroupDumpsJson)
{
    core::TraceRecorder recorder;
    workloads::RelaxationSpec spec;
    spec.n = 8;
    dep::Loop loop =
        workloads::makeRelaxationLoop(spec.n, spec.stmtCost);
    dep::DataLayout layout(loop);

    sim::Machine machine(machineConfig(), nullptr, &recorder);
    sync::PcFile pcs(machine.fabric(), 2 * kProcs);
    auto programs =
        workloads::buildPipelinedPrograms(pcs, loop, layout, spec);
    auto result = core::runProgramPool(
        machine, programs, core::SchedulePolicy::selfScheduling);
    ASSERT_TRUE(result.completed);

    sim::stats::Group group;
    machine.registerStats(group);
    ASSERT_GT(group.size(), 0u);

    std::ostringstream os;
    group.dumpJson(os);
    auto parsed = core::json::parse(os.str());
    ASSERT_TRUE(parsed.ok) << parsed.error;
    ASSERT_TRUE(parsed.value.isObject());
    EXPECT_EQ(parsed.value.asObject().size(), group.size());
}
