/** @file Scheduling policies, baselines, init-cost accounting. */

#include <gtest/gtest.h>

#include "core/runtime.hh"
#include "workloads/fig21.hh"

using namespace psync;

namespace {

core::RunConfig
regConfig(unsigned procs = 4)
{
    core::RunConfig cfg;
    cfg.machine.numProcs = procs;
    cfg.machine.fabric = sim::FabricKind::registers;
    cfg.machine.syncRegisters = 1024;
    cfg.tickLimit = 20000000;
    return cfg;
}

} // namespace

TEST(RuntimeTest, SequentialBaselineMatchesHandCount)
{
    // 4 iterations x 5 statements x (cost 8 + one access of 1 bus +
    // 4 service cycles) = 4 * 5 * 13 = 260, plus dispatch RMWs.
    dep::Loop loop = workloads::makeFig21Loop(4);
    sim::MachineConfig mc = regConfig(1).machine;
    sim::Tick seq = core::sequentialCycles(loop, mc);
    EXPECT_GE(seq, 260u);
    EXPECT_LE(seq, 300u);
}

TEST(RuntimeTest, SelfSchedulingGeneratesDispatchTraffic)
{
    dep::Loop loop = workloads::makeFig21Loop(32);
    auto dynamic_cfg = regConfig();
    auto static_cfg = regConfig();
    static_cfg.schedule = core::SchedulePolicy::staticCyclic;

    auto dyn = core::runDoacross(
        loop, sync::SchemeKind::processImproved, dynamic_cfg);
    auto sta = core::runDoacross(
        loop, sync::SchemeKind::processImproved, static_cfg);
    ASSERT_TRUE(dyn.run.completed);
    ASSERT_TRUE(sta.run.completed);
    // Dynamic scheduling pays one shared-counter RMW per program
    // (plus final empty fetches).
    EXPECT_GE(dyn.run.memAccesses,
              sta.run.memAccesses + loop.iterations());
}

TEST(RuntimeTest, EveryIterationRunsExactlyOnce)
{
    dep::Loop loop = workloads::makeFig21Loop(40);
    for (auto policy : {core::SchedulePolicy::selfScheduling,
                        core::SchedulePolicy::staticCyclic}) {
        auto cfg = regConfig(3);
        cfg.schedule = policy;
        auto r = core::runDoacross(
            loop, sync::SchemeKind::processImproved, cfg);
        ASSERT_TRUE(r.run.completed);
        EXPECT_EQ(r.run.programsRun, 40u);
    }
}

TEST(RuntimeTest, InitCostScalesWithSyncVars)
{
    dep::Loop loop = workloads::makeFig21Loop(128);
    auto cfg = regConfig(4);
    cfg.scheme.numPcs = 8;
    auto process = core::runDoacross(
        loop, sync::SchemeKind::processImproved, cfg);

    auto mem_cfg = regConfig(4);
    mem_cfg.machine.fabric = sim::FabricKind::memory;
    auto reference = core::runDoacross(
        loop, sync::SchemeKind::referenceBased, mem_cfg);

    EXPECT_LT(process.initCycles, 20u);
    // One key per element (131): init dwarfs the PC scheme's.
    EXPECT_GT(reference.initCycles, 100u);
    EXPECT_GT(reference.totalWithInit(), reference.run.cycles);
}

TEST(RuntimeTest, DeadlockReportsIncomplete)
{
    // A machine with one processor and a loop with a genuine
    // cross-iteration dependence chain cannot deadlock; instead
    // build an artificial wait-on-nothing via per-processor
    // programs.
    sim::MachineConfig mc = regConfig(2).machine;
    sim::Machine machine(mc);
    sim::SyncVarId v = machine.fabric().allocate(1, 0);
    std::vector<std::vector<sim::Program>> progs(2);
    progs[0].resize(1);
    progs[0][0].iter = 1;
    progs[0][0].ops = {sim::Op::mkWaitGE(v, 1)};
    progs[1].resize(1);
    progs[1][0].iter = 2;
    progs[1][0].ops = {sim::Op::mkCompute(5)};
    auto r = core::runPerProcessorPrograms(machine, progs, 10000);
    EXPECT_FALSE(r.completed);
}

TEST(RuntimeTest, MoreProcessorsDoNotSlowDown)
{
    dep::Loop loop = workloads::makeFig21Loop(64);
    sim::Tick prev = sim::maxTick;
    for (unsigned p : {1u, 2u, 4u, 8u}) {
        auto cfg = regConfig(p);
        auto r = core::runDoacross(
            loop, sync::SchemeKind::processImproved, cfg);
        ASSERT_TRUE(r.run.completed);
        EXPECT_LE(r.run.cycles, prev + prev / 10)
            << "P=" << p;
        prev = r.run.cycles;
    }
}

TEST(RuntimeTest, UtilizationBounded)
{
    dep::Loop loop = workloads::makeFig21Loop(64);
    auto r = core::runDoacross(loop,
                               sync::SchemeKind::processImproved,
                               regConfig(4));
    ASSERT_TRUE(r.run.completed);
    EXPECT_GT(r.run.utilization(), 0.0);
    EXPECT_LE(r.run.utilization(), 1.0);
    EXPECT_LE(r.run.spinFraction(), 1.0);
}
