/**
 * @file
 * Example 1 end-to-end: asynchronous pipelining vs wavefront, the
 * G-grouping tradeoff, and statement-counter degradation — all
 * trace-verified against the relaxation loop's dependences.
 */

#include <gtest/gtest.h>

#include "core/runtime.hh"
#include "core/trace_check.hh"
#include "dep/dep_graph.hh"
#include "workloads/relaxation.hh"

using namespace psync;

namespace {

sim::MachineConfig
regConfig(unsigned procs)
{
    sim::MachineConfig cfg;
    cfg.numProcs = procs;
    cfg.fabric = sim::FabricKind::registers;
    cfg.syncRegisters = 256;
    return cfg;
}

struct PipelineRun
{
    core::RunResult result;
    std::vector<std::string> violations;
};

PipelineRun
runPipelined(const workloads::RelaxationSpec &spec, unsigned procs,
             unsigned num_pcs)
{
    core::TraceChecker checker;
    sim::Machine machine(regConfig(procs), &checker);
    sync::PcFile pcs(machine.fabric(), num_pcs);
    dep::Loop loop = workloads::makeRelaxationLoop(spec.n,
                                                   spec.stmtCost);
    dep::DataLayout layout(loop);
    auto programs = workloads::buildPipelinedPrograms(pcs, loop,
                                                      layout, spec);
    PipelineRun out;
    out.result = core::runProgramPool(
        machine, programs, core::SchedulePolicy::selfScheduling);
    dep::DepGraph graph(loop);
    out.violations = checker.verify(loop, graph.crossIteration());
    return out;
}

} // namespace

TEST(RelaxationTest, PipelinedCorrectAndParallel)
{
    workloads::RelaxationSpec spec;
    spec.n = 16;
    spec.group = 1;
    auto run = runPipelined(spec, 4, 16);
    ASSERT_TRUE(run.result.completed);
    EXPECT_TRUE(run.violations.empty())
        << (run.violations.empty() ? "" : run.violations.front());
    EXPECT_EQ(run.result.programsRun, 15u);
}

TEST(RelaxationTest, BasicPrimitivesAlsoCorrect)
{
    workloads::RelaxationSpec spec;
    spec.n = 12;
    spec.group = 2;
    spec.improved = false;
    auto run = runPipelined(spec, 4, 8);
    ASSERT_TRUE(run.result.completed);
    EXPECT_TRUE(run.violations.empty());
}

TEST(RelaxationTest, GroupingReducesSyncOps)
{
    workloads::RelaxationSpec fine, coarse;
    fine.n = coarse.n = 24;
    fine.group = 1;
    coarse.group = 6;
    auto fine_run = runPipelined(fine, 4, 16);
    auto coarse_run = runPipelined(coarse, 4, 16);
    ASSERT_TRUE(fine_run.result.completed);
    ASSERT_TRUE(coarse_run.result.completed);
    EXPECT_TRUE(fine_run.violations.empty());
    EXPECT_TRUE(coarse_run.violations.empty());
    EXPECT_LT(coarse_run.result.syncOps, fine_run.result.syncOps);
}

TEST(RelaxationTest, FoldedPcsStillCorrect)
{
    workloads::RelaxationSpec spec;
    spec.n = 20;
    for (unsigned x : {2u, 3u, 8u}) {
        auto run = runPipelined(spec, 4, x);
        ASSERT_TRUE(run.result.completed) << "X=" << x;
        EXPECT_TRUE(run.violations.empty()) << "X=" << x;
    }
}

TEST(RelaxationTest, WavefrontCorrect)
{
    workloads::RelaxationSpec spec;
    spec.n = 12;
    core::TraceChecker checker;
    sim::Machine machine(regConfig(4), &checker);
    sync::ButterflyBarrier barrier(machine.fabric(), 4);
    dep::Loop loop = workloads::makeRelaxationLoop(spec.n,
                                                   spec.stmtCost);
    dep::DataLayout layout(loop);
    auto programs = workloads::buildWavefrontPrograms(
        barrier, 4, loop, layout, spec);
    auto result = core::runPerProcessorPrograms(machine, programs);
    ASSERT_TRUE(result.completed);
    dep::DepGraph graph(loop);
    auto violations = checker.verify(loop, graph.crossIteration());
    EXPECT_TRUE(violations.empty())
        << (violations.empty() ? "" : violations.front());
}

TEST(RelaxationTest, PipelinedBeatsWavefront)
{
    // Same parallel steps, but no global barrier stalls: the
    // asynchronous pipeline should finish no later (Fig. 5.1).
    workloads::RelaxationSpec spec;
    spec.n = 32;
    spec.stmtCost = 8;

    auto pipe = runPipelined(spec, 8, 32);
    ASSERT_TRUE(pipe.result.completed);

    sim::Machine machine(regConfig(8));
    sync::ButterflyBarrier barrier(machine.fabric(), 8);
    dep::Loop loop = workloads::makeRelaxationLoop(spec.n,
                                                   spec.stmtCost);
    dep::DataLayout layout(loop);
    auto programs = workloads::buildWavefrontPrograms(
        barrier, 8, loop, layout, spec);
    auto wave = core::runPerProcessorPrograms(machine, programs);
    ASSERT_TRUE(wave.completed);

    EXPECT_LT(pipe.result.cycles, wave.cycles);
}

TEST(RelaxationTest, ScPipelineNeedsManyCounters)
{
    workloads::RelaxationSpec spec;
    spec.n = 33; // 32 inner sync points
    EXPECT_EQ(workloads::requiredScs(spec, 64), 32u);
    EXPECT_EQ(workloads::effectiveScGroup(spec, 64), 1);
    // With only 4 SCs the group is forced to 8.
    EXPECT_EQ(workloads::effectiveScGroup(spec, 4), 8);
    EXPECT_EQ(workloads::requiredScs(spec, 4), 4u);
}

TEST(RelaxationTest, ScPipelineCorrectAndSlowerWhenStarved)
{
    workloads::RelaxationSpec spec;
    spec.n = 25; // 24 sync points
    spec.stmtCost = 8;

    auto run_sc = [&](unsigned scs) {
        core::TraceChecker checker;
        sim::Machine machine(regConfig(4), &checker);
        unsigned used = workloads::requiredScs(spec, scs);
        sim::SyncVarId base = machine.fabric().allocate(used, 0);
        dep::Loop loop = workloads::makeRelaxationLoop(spec.n,
                                                       spec.stmtCost);
        dep::DataLayout layout(loop);
        auto programs = workloads::buildScPipelinedPrograms(
            base, scs, loop, layout, spec);
        auto result = core::runProgramPool(
            machine, programs, core::SchedulePolicy::selfScheduling);
        EXPECT_TRUE(result.completed);
        dep::DepGraph graph(loop);
        auto violations = checker.verify(loop, graph.crossIteration());
        EXPECT_TRUE(violations.empty())
            << "SCs=" << scs << " "
            << (violations.empty() ? "" : violations.front());
        return result.cycles;
    };

    sim::Tick rich = run_sc(64); // full fine-grain pipeline
    sim::Tick poor = run_sc(2);  // starved: giant groups
    EXPECT_LT(rich, poor);
}
