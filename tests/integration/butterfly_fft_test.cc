/** @file Examples 4 & 5 end-to-end: barriers and FFT phases. */

#include <gtest/gtest.h>

#include "core/runtime.hh"
#include "workloads/butterfly.hh"
#include "workloads/fft.hh"

using namespace psync;

namespace {

sim::MachineConfig
config(unsigned procs, sim::FabricKind fabric)
{
    sim::MachineConfig cfg;
    cfg.numProcs = procs;
    cfg.fabric = fabric;
    cfg.syncRegisters = 512;
    return cfg;
}

core::RunResult
runFft(workloads::FftSync mode, const workloads::FftSpec &spec,
       sim::FabricKind fabric)
{
    sim::Machine machine(config(spec.numProcs, fabric));
    std::vector<std::vector<sim::Program>> progs;
    switch (mode) {
      case workloads::FftSync::pairwise: {
        sim::SyncVarId base =
            machine.fabric().allocate(spec.numProcs, 0);
        progs = workloads::buildFftPairwise(base, spec);
        break;
      }
      case workloads::FftSync::butterflyBarrier: {
        sync::ButterflyBarrier barrier(machine.fabric(),
                                       spec.numProcs);
        progs = workloads::buildFftButterfly(barrier, spec);
        break;
      }
      case workloads::FftSync::counterBarrier: {
        sync::CounterBarrier barrier(machine.fabric(),
                                     spec.numProcs);
        progs = workloads::buildFftCounter(barrier, spec);
        break;
      }
    }
    return core::runPerProcessorPrograms(machine, progs);
}

} // namespace

TEST(FftTest, AllSyncModesComplete)
{
    workloads::FftSpec spec;
    spec.numProcs = 8;
    spec.rounds = 3;
    for (auto mode : {workloads::FftSync::pairwise,
                      workloads::FftSync::butterflyBarrier,
                      workloads::FftSync::counterBarrier}) {
        auto r = runFft(mode, spec, sim::FabricKind::registers);
        EXPECT_TRUE(r.completed);
        EXPECT_GT(r.cycles, 0u);
    }
}

TEST(FftTest, PairwiseNeverSlowerThanGlobalBarrier)
{
    workloads::FftSpec spec;
    spec.numProcs = 16;
    spec.rounds = 4;
    spec.stageJitter = 40;
    auto pairwise = runFft(workloads::FftSync::pairwise, spec,
                           sim::FabricKind::registers);
    auto butterfly = runFft(workloads::FftSync::butterflyBarrier,
                            spec, sim::FabricKind::registers);
    auto counter = runFft(workloads::FftSync::counterBarrier, spec,
                          sim::FabricKind::registers);
    ASSERT_TRUE(pairwise.completed);
    ASSERT_TRUE(butterfly.completed);
    ASSERT_TRUE(counter.completed);
    EXPECT_LE(pairwise.cycles, butterfly.cycles);
    EXPECT_LE(pairwise.cycles, counter.cycles);
}

TEST(FftTest, PairwiseIssuesFewerSyncOps)
{
    workloads::FftSpec spec;
    spec.numProcs = 16;
    spec.rounds = 2;
    auto pairwise = runFft(workloads::FftSync::pairwise, spec,
                           sim::FabricKind::registers);
    auto butterfly = runFft(workloads::FftSync::butterflyBarrier,
                            spec, sim::FabricKind::registers);
    // Pairwise: 1 write + 1 wait per stage. Butterfly barrier:
    // log2(P) write/wait pairs per stage.
    EXPECT_LT(pairwise.syncOps, butterfly.syncOps);
}

TEST(FftTest, StageCountIsLog2)
{
    EXPECT_EQ(workloads::fftStages(2), 1u);
    EXPECT_EQ(workloads::fftStages(16), 4u);
    EXPECT_EXIT(workloads::fftStages(12),
                ::testing::ExitedWithCode(1), "power-of-two");
}

TEST(FftTest, PartnerExchangeIsVisible)
{
    // Data written per stage lands in memory: 2 words out + 2 in,
    // per processor per stage per round.
    workloads::FftSpec spec;
    spec.numProcs = 4;
    spec.rounds = 1;
    spec.exchangeWords = 2;
    auto r = runFft(workloads::FftSync::pairwise, spec,
                    sim::FabricKind::registers);
    ASSERT_TRUE(r.completed);
    // 4 procs x 2 stages x (2 writes + 2 reads).
    EXPECT_EQ(r.memAccesses, 4u * 2u * 4u);
}

TEST(ButterflyTest, LockstepUnderJitter)
{
    for (unsigned p : {2u, 4u, 8u, 16u}) {
        sim::Machine m(config(p, sim::FabricKind::registers));
        sync::ButterflyBarrier barrier(m.fabric(), p);
        workloads::BarrierSpec spec;
        spec.numProcs = p;
        spec.episodes = 6;
        spec.workCost = 10;
        spec.workJitter = 30;
        auto progs = workloads::buildButterflyPrograms(barrier, spec);
        auto r = core::runPerProcessorPrograms(m, progs);
        ASSERT_TRUE(r.completed) << "P=" << p;
    }
}
