/**
 * @file
 * Heap vs calendar event cores must produce bit-identical
 * simulations: the calendar ring is a performance change, not a
 * semantic one. Whole RunResults (every cycle counter, bus stat and
 * event count) are compared as JSON across representative machines:
 * register and memory fabrics, bus and omega interconnects, and the
 * butterfly-barrier FFT workload.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "core/runtime.hh"
#include "sync/barrier.hh"
#include "workloads/fft.hh"
#include "workloads/fig21.hh"

using namespace psync;

namespace {

std::string
dumped(const core::RunResult &r)
{
    std::ostringstream os;
    r.toJson().dump(os, 2);
    std::string text = os.str();
    // The event_core label names the core that ran — the one field
    // that legitimately differs between the two runs under
    // comparison. Neutralize it; everything else must be identical.
    std::size_t key = text.find("\"event_core\": ");
    if (key != std::string::npos) {
        std::size_t value_end = text.find('\n', key);
        text.erase(key, value_end - key);
    }
    return text;
}

core::RunResult
runLoop(const dep::Loop &loop, sync::SchemeKind kind,
        core::RunConfig cfg, sim::EventCoreKind core)
{
    cfg.machine.eventCore = core;
    auto result = core::runDoacross(loop, kind, cfg);
    EXPECT_TRUE(result.run.completed);
    EXPECT_TRUE(result.correct());
    return result.run;
}

void
expectCoresAgree(const dep::Loop &loop, sync::SchemeKind kind,
                 const core::RunConfig &cfg, const char *what)
{
    core::RunResult calendar =
        runLoop(loop, kind, cfg, sim::EventCoreKind::calendar);
    core::RunResult heap =
        runLoop(loop, kind, cfg, sim::EventCoreKind::heap);
    EXPECT_EQ(calendar.cycles, heap.cycles) << what;
    EXPECT_EQ(calendar.eventsExecuted, heap.eventsExecuted) << what;
    EXPECT_EQ(dumped(calendar), dumped(heap)) << what;
}

core::RunConfig
registerConfig(unsigned procs)
{
    core::RunConfig cfg;
    cfg.machine.numProcs = procs;
    cfg.machine.fabric = sim::FabricKind::registers;
    cfg.machine.syncRegisters = 1u << 20;
    cfg.scheme.numScs = 1u << 18;
    return cfg;
}

core::RunConfig
memoryConfig(unsigned procs)
{
    core::RunConfig cfg = registerConfig(procs);
    cfg.machine.fabric = sim::FabricKind::memory;
    return cfg;
}

} // namespace

TEST(EventCoreEquivalenceTest, Fig21OnRegisterFabric)
{
    dep::Loop loop = workloads::makeFig21Loop(64);
    expectCoresAgree(loop, sync::SchemeKind::processImproved,
                     registerConfig(8), "fig21/process-improved");
    expectCoresAgree(loop, sync::SchemeKind::statementOriented,
                     registerConfig(8), "fig21/statement");
}

TEST(EventCoreEquivalenceTest, Fig32JitterStatementCounters)
{
    dep::Loop loop =
        workloads::makeFig21JitterLoop(128, 8, 800, 0.15, 1234);
    expectCoresAgree(loop, sync::SchemeKind::statementOriented,
                     registerConfig(8), "fig32-jitter/statement");
}

TEST(EventCoreEquivalenceTest, MemoryFabricCachedAndPollingSpin)
{
    dep::Loop loop = workloads::makeFig21Loop(64);
    core::RunConfig cached = memoryConfig(8);
    expectCoresAgree(loop, sync::SchemeKind::referenceBased, cached,
                     "fig21/reference cached-spin");
    core::RunConfig polling = memoryConfig(8);
    polling.machine.cachedSpinning = false;
    expectCoresAgree(loop, sync::SchemeKind::referenceBased, polling,
                     "fig21/reference polling");
}

TEST(EventCoreEquivalenceTest, OmegaNetworkMachine)
{
    dep::Loop loop = workloads::makeFig21Loop(128);
    core::RunConfig cfg = memoryConfig(16);
    cfg.machine.interconnect = sim::InterconnectKind::omega;
    cfg.machine.memory.numModules = 16;
    expectCoresAgree(loop, sync::SchemeKind::referenceBased, cfg,
                     "fig21-omega/reference");
}

TEST(EventCoreEquivalenceTest, ButterflyBarrierFft)
{
    workloads::FftSpec spec;
    spec.numProcs = 8;
    spec.rounds = 3;
    spec.stageJitter = 40;

    std::string dumps[2];
    int i = 0;
    for (auto core : {sim::EventCoreKind::calendar,
                      sim::EventCoreKind::heap}) {
        sim::MachineConfig mcfg;
        mcfg.numProcs = spec.numProcs;
        mcfg.fabric = sim::FabricKind::registers;
        mcfg.syncRegisters = 512;
        mcfg.eventCore = core;
        sim::Machine machine(mcfg);
        sync::ButterflyBarrier barrier(machine.fabric(),
                                       spec.numProcs);
        auto progs = workloads::buildFftButterfly(barrier, spec);
        core::RunResult r =
            core::runPerProcessorPrograms(machine, progs);
        EXPECT_TRUE(r.completed);
        dumps[i++] = dumped(r);
    }
    EXPECT_EQ(dumps[0], dumps[1]);
}

TEST(EventCoreEquivalenceTest, SteadyStateHasNoHeapFallbacks)
{
    // The point of the inline-handler migration: a full simulation
    // schedules zero heap-spilled handler captures.
    workloads::FftSpec spec;
    spec.numProcs = 8;
    spec.rounds = 3;
    sim::MachineConfig mcfg;
    mcfg.numProcs = spec.numProcs;
    mcfg.fabric = sim::FabricKind::registers;
    mcfg.syncRegisters = 512;
    sim::Machine machine(mcfg);
    sync::ButterflyBarrier barrier(machine.fabric(), spec.numProcs);
    auto progs = workloads::buildFftButterfly(barrier, spec);
    core::RunResult r = core::runPerProcessorPrograms(machine, progs);
    EXPECT_TRUE(r.completed);
    EXPECT_GT(machine.eventq().eventsExecuted(), 0u);
    EXPECT_EQ(machine.eventq().heapFallbackEvents(), 0u);
}
