/**
 * @file
 * Example 2 end-to-end: implicit coalescing under the process
 * scheme vs exact boundary handling under data-oriented schemes.
 */

#include <gtest/gtest.h>

#include "core/runtime.hh"
#include "dep/dep_graph.hh"
#include "dep/transform.hh"
#include "workloads/nested.hh"

using namespace psync;

namespace {

core::RunConfig
config(sim::FabricKind fabric, unsigned procs = 4)
{
    core::RunConfig cfg;
    cfg.machine.numProcs = procs;
    cfg.machine.fabric = fabric;
    cfg.machine.syncRegisters = 1024;
    cfg.tickLimit = 50000000;
    return cfg;
}

} // namespace

TEST(NestedTest, AllSchemesCorrectOnNestedLoop)
{
    dep::Loop loop = workloads::makeNestedLoop(8, 6);
    for (auto kind : sync::allSyncSchemes()) {
        auto fabric = (kind == sync::SchemeKind::referenceBased ||
                       kind == sync::SchemeKind::instanceBased)
                          ? sim::FabricKind::memory
                          : sim::FabricKind::registers;
        auto r = core::runDoacross(loop, kind, config(fabric));
        ASSERT_TRUE(r.run.completed) << sync::schemeKindName(kind);
        EXPECT_TRUE(r.correct())
            << sync::schemeKindName(kind) << ": "
            << (r.violations.empty() ? "" : r.violations.front());
        EXPECT_EQ(r.run.programsRun, 48u)
            << sync::schemeKindName(kind);
    }
}

TEST(NestedTest, LinearizationIntroducesExtraDeps)
{
    dep::Loop loop = workloads::makeNestedLoop(6, 5);
    dep::DepGraph graph(loop);
    std::uint64_t extras = 0;
    for (const auto &d : graph.enforced())
        extras += dep::extraDepCount(loop, d);
    EXPECT_GT(extras, 0u);
}

TEST(NestedTest, ProcessSchemeAvoidsBoundaryCost)
{
    // Data-oriented schemes pay O(r*d) boundary-check compute per
    // iteration; the process scheme's compute is just the bodies.
    dep::Loop loop = workloads::makeNestedLoop(8, 8);
    auto process = core::runDoacross(
        loop, sync::SchemeKind::processImproved,
        config(sim::FabricKind::registers, 1));
    auto reference = core::runDoacross(
        loop, sync::SchemeKind::referenceBased,
        config(sim::FabricKind::memory, 1));
    ASSERT_TRUE(process.run.completed);
    ASSERT_TRUE(reference.run.completed);
    // 64 iterations x 20 boundary cycles.
    EXPECT_GE(reference.run.computeCycles,
              process.run.computeCycles + 64 * 20);
}

TEST(NestedTest, ProcessSchemeKeepsVariableCountFlat)
{
    for (long size : {4L, 8L, 16L}) {
        dep::Loop loop = workloads::makeNestedLoop(size, size);
        auto cfg = config(sim::FabricKind::registers);
        cfg.scheme.numPcs = 16;
        auto r = core::runDoacross(
            loop, sync::SchemeKind::processImproved, cfg);
        ASSERT_TRUE(r.run.completed);
        EXPECT_EQ(r.plan.numSyncVars, 16u) << "size=" << size;
    }
    // Whereas the reference scheme's keys grow with the data.
    dep::Loop small = workloads::makeNestedLoop(4, 4);
    dep::Loop big = workloads::makeNestedLoop(16, 16);
    auto cfg = config(sim::FabricKind::memory);
    auto r_small = core::runDoacross(
        small, sync::SchemeKind::referenceBased, cfg);
    auto r_big = core::runDoacross(
        big, sync::SchemeKind::referenceBased, cfg);
    EXPECT_GT(r_big.plan.numSyncVars, 10 * r_small.plan.numSyncVars);
}

TEST(NestedTest, RectangularShapes)
{
    for (auto [n, m] : {std::pair<long, long>{2, 12},
                        {12, 2},
                        {1, 8},
                        {8, 1}}) {
        dep::Loop loop = workloads::makeNestedLoop(n, m);
        auto r = core::runDoacross(
            loop, sync::SchemeKind::processImproved,
            config(sim::FabricKind::registers));
        ASSERT_TRUE(r.run.completed) << n << "x" << m;
        EXPECT_TRUE(r.correct()) << n << "x" << m;
    }
}
