/** @file Structural properties of the workload builders. */

#include <gtest/gtest.h>

#include <set>

#include "dep/dep_graph.hh"
#include "sim/machine.hh"
#include "workloads/branches.hh"
#include "workloads/fft.hh"
#include "workloads/fig21.hh"
#include "workloads/nested.hh"
#include "workloads/relaxation.hh"
#include "workloads/synthetic.hh"

using namespace psync;

TEST(WorkloadsTest, Fig21Shape)
{
    dep::Loop loop = workloads::makeFig21Loop(100, 6);
    EXPECT_EQ(loop.body.size(), 5u);
    EXPECT_EQ(loop.iterations(), 100u);
    for (const auto &stmt : loop.body) {
        EXPECT_EQ(stmt.cost, 6u);
        EXPECT_EQ(stmt.refs.size(), 1u);
        EXPECT_FALSE(stmt.guard.conditional());
    }
    EXPECT_TRUE(loop.body[0].refs[0].isWrite);  // S1
    EXPECT_FALSE(loop.body[1].refs[0].isWrite); // S2
    EXPECT_TRUE(loop.body[3].refs[0].isWrite);  // S4
}

TEST(WorkloadsTest, JitterLoopKeepsFig21Deps)
{
    dep::Loop plain = workloads::makeFig21Loop(50);
    dep::Loop jitter = workloads::makeFig21JitterLoop(50, 8, 100,
                                                      0.3, 3);
    dep::DepGraph g_plain(plain);
    dep::DepGraph g_jitter(jitter);
    // The delay statement carries no references, so the enforced
    // dependence structure is unchanged.
    EXPECT_EQ(g_plain.enforced().size(), g_jitter.enforced().size());
    EXPECT_EQ(jitter.body.size(), 6u);
    EXPECT_TRUE(jitter.body[1].guard.conditional());
    EXPECT_TRUE(jitter.body[1].refs.empty());
}

TEST(WorkloadsTest, RelaxationDeps)
{
    dep::Loop loop = workloads::makeRelaxationLoop(16);
    dep::DepGraph graph(loop);
    // Exactly the two flow arcs (1,0) and (0,1); the (1,0) arc is
    // covered by chains of (0,1) in the linearized space.
    unsigned flow = 0;
    for (const auto &d : graph.crossIteration()) {
        EXPECT_EQ(d.type, dep::DepType::flow);
        ++flow;
    }
    EXPECT_EQ(flow, 2u);
}

TEST(WorkloadsTest, BranchLoopArmsAreExclusive)
{
    dep::Loop loop = workloads::makeBranchLoop(200, 0.4);
    unsigned taken_arm = 0, else_arm = 0;
    for (std::uint64_t i = 1; i <= 200; ++i) {
        bool s4 = dep::stmtActive(loop, loop.body[3], i);
        bool s5 = dep::stmtActive(loop, loop.body[4], i);
        EXPECT_NE(s4, s5) << "iteration " << i;
        taken_arm += s4;
        else_arm += s5;
    }
    EXPECT_EQ(taken_arm + else_arm, 200u);
    EXPECT_NEAR(taken_arm / 200.0, 0.4, 0.12);
}

TEST(WorkloadsTest, SyntheticAlwaysHasAWrite)
{
    for (std::uint64_t seed = 1; seed <= 30; ++seed) {
        workloads::SyntheticSpec spec;
        spec.seed = seed;
        spec.writeProb = 0.05; // writes rare: forcing path matters
        dep::Loop loop = workloads::makeSyntheticLoop(spec);
        bool any_write = false;
        for (const auto &stmt : loop.body) {
            for (const auto &ref : stmt.refs)
                any_write = any_write || ref.isWrite;
        }
        EXPECT_TRUE(any_write) << "seed " << seed;
    }
}

TEST(WorkloadsTest, SyntheticRespectsSpecBounds)
{
    workloads::SyntheticSpec spec;
    spec.seed = 4;
    spec.n = 77;
    spec.numStatements = 6;
    spec.numArrays = 3;
    spec.maxOffset = 2;
    spec.minCost = 5;
    spec.maxCost = 9;
    dep::Loop loop = workloads::makeSyntheticLoop(spec);
    EXPECT_EQ(loop.body.size(), 6u);
    EXPECT_EQ(loop.iterations(), 77u);
    for (const auto &stmt : loop.body) {
        EXPECT_GE(stmt.cost, 5u);
        EXPECT_LE(stmt.cost, 9u);
        for (const auto &ref : stmt.refs) {
            EXPECT_LE(std::abs(ref.subs[0].offset), 2);
            EXPECT_EQ(ref.subs[0].coeffI, 1);
        }
    }
}

TEST(WorkloadsTest, FftOutboxesAreDisjoint)
{
    // Different (pid, step) pairs must never share outbox words.
    workloads::FftSpec spec;
    spec.numProcs = 8;
    spec.rounds = 3;
    sim::MachineConfig mc;
    mc.numProcs = 8;
    mc.syncRegisters = 64;
    sim::Machine m(mc);
    sim::SyncVarId base = m.fabric().allocate(8, 0);
    auto progs = workloads::buildFftPairwise(base, spec);

    std::set<sim::Addr> writes;
    for (const auto &list : progs) {
        for (const auto &prog : list) {
            for (const auto &op : prog.ops) {
                if (op.kind == sim::OpKind::dataWrite) {
                    EXPECT_TRUE(writes.insert(op.addr).second)
                        << "duplicate outbox word";
                }
            }
        }
    }
}
