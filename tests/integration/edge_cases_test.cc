/** @file Degenerate shapes every layer must survive. */

#include <gtest/gtest.h>

#include "core/runtime.hh"
#include "workloads/fig21.hh"
#include "workloads/nested.hh"

using namespace psync;

namespace {

core::RunConfig
config(unsigned procs = 4, unsigned num_pcs = 4)
{
    core::RunConfig cfg;
    cfg.machine.numProcs = procs;
    cfg.machine.fabric = sim::FabricKind::registers;
    cfg.machine.syncRegisters = 4096;
    cfg.scheme.numPcs = num_pcs;
    cfg.tickLimit = 20000000;
    return cfg;
}

} // namespace

TEST(EdgeCasesTest, SingleIterationLoop)
{
    dep::Loop loop = workloads::makeFig21Loop(1);
    for (auto kind : sync::allSyncSchemes()) {
        auto cfg = config();
        if (kind == sync::SchemeKind::referenceBased ||
            kind == sync::SchemeKind::instanceBased) {
            cfg.machine.fabric = sim::FabricKind::memory;
        }
        auto r = core::runDoacross(loop, kind, cfg);
        ASSERT_TRUE(r.run.completed) << sync::schemeKindName(kind);
        EXPECT_EQ(r.run.programsRun, 1u);
        EXPECT_TRUE(r.correct());
    }
}

TEST(EdgeCasesTest, DistancesExceedTripCount)
{
    // N=3 with distances up to 4: most waits fall off the front.
    dep::Loop loop = workloads::makeFig21Loop(3);
    auto r = core::runDoacross(
        loop, sync::SchemeKind::processImproved, config());
    ASSERT_TRUE(r.run.completed);
    EXPECT_TRUE(r.correct());
}

TEST(EdgeCasesTest, MorePcsThanIterations)
{
    dep::Loop loop = workloads::makeFig21Loop(4);
    auto r = core::runDoacross(
        loop, sync::SchemeKind::processImproved, config(4, 64));
    ASSERT_TRUE(r.run.completed);
    EXPECT_TRUE(r.correct());
    EXPECT_EQ(r.plan.numSyncVars, 64u);
}

TEST(EdgeCasesTest, SinglePc)
{
    // X=1: every process shares one PC — fully serialized
    // ownership, still correct.
    dep::Loop loop = workloads::makeFig21Loop(24);
    for (bool improved : {false, true}) {
        auto r = core::runDoacross(
            loop,
            improved ? sync::SchemeKind::processImproved
                     : sync::SchemeKind::processBasic,
            config(4, 1));
        ASSERT_TRUE(r.run.completed) << improved;
        EXPECT_TRUE(r.correct()) << improved;
    }
}

TEST(EdgeCasesTest, SelfDependentSingleStatement)
{
    // A[I] = A[I-1]: a pure recurrence; parallel execution cannot
    // beat sequential but must stay correct.
    dep::Loop loop;
    loop.name = "recurrence";
    loop.depth = 1;
    loop.outer = {1, 32};
    dep::Statement s;
    s.label = "S1";
    s.cost = 4;
    dep::ArrayRef rd, wr;
    rd.array = "A";
    rd.subs = {dep::Subscript{1, 0, -1}};
    rd.isWrite = false;
    wr.array = "A";
    wr.subs = {dep::Subscript{1, 0, 0}};
    wr.isWrite = true;
    s.refs = {rd, wr};
    loop.body = {s};

    for (auto kind : sync::allSyncSchemes()) {
        auto cfg = config();
        if (kind == sync::SchemeKind::referenceBased ||
            kind == sync::SchemeKind::instanceBased) {
            cfg.machine.fabric = sim::FabricKind::memory;
        }
        auto r = core::runDoacross(loop, kind, cfg);
        ASSERT_TRUE(r.run.completed) << sync::schemeKindName(kind);
        EXPECT_TRUE(r.correct()) << sync::schemeKindName(kind);
    }
}

TEST(EdgeCasesTest, ProcessorsExceedIterations)
{
    dep::Loop loop = workloads::makeFig21Loop(3);
    auto r = core::runDoacross(
        loop, sync::SchemeKind::processImproved, config(16, 16));
    ASSERT_TRUE(r.run.completed);
    EXPECT_EQ(r.run.programsRun, 3u);
    EXPECT_TRUE(r.correct());
}

TEST(EdgeCasesTest, CachesPreserveCorrectness)
{
    dep::Loop loop = workloads::makeNestedLoop(8, 8);
    auto cfg = config(8, 16);
    cfg.machine.cache.enabled = true;
    cfg.machine.cache.linesPerProc = 64;
    auto r = core::runDoacross(
        loop, sync::SchemeKind::processImproved, cfg);
    ASSERT_TRUE(r.run.completed);
    EXPECT_TRUE(r.correct())
        << (r.violations.empty() ? "" : r.violations.front());
    EXPECT_GT(r.run.cacheHits + r.run.cacheMisses, 0u);
}

TEST(EdgeCasesTest, CachesCaptureSameProcessorReuse)
{
    // On one processor, every element of the Fig. 2.1 loop is
    // touched five times; with caches on, the four re-reads of
    // each value hit locally and bus traffic drops.
    dep::Loop loop = workloads::makeFig21Loop(32);
    auto off = config(1, 16);
    auto on = config(1, 16);
    off.schedule = on.schedule = core::SchedulePolicy::staticCyclic;
    on.machine.cache.enabled = true;
    auto r_off = core::runDoacross(
        loop, sync::SchemeKind::processImproved, off);
    auto r_on = core::runDoacross(
        loop, sync::SchemeKind::processImproved, on);
    ASSERT_TRUE(r_off.run.completed);
    ASSERT_TRUE(r_on.run.completed);
    EXPECT_LE(r_on.run.cycles, r_off.run.cycles);
    EXPECT_LT(r_on.run.dataBusTransactions,
              r_off.run.dataBusTransactions);
    EXPECT_GT(r_on.run.cacheHits, 0u);
}

TEST(EdgeCasesTest, OmegaMachineRunsDoacross)
{
    dep::Loop loop = workloads::makeFig21Loop(64);
    auto cfg = config(8, 16);
    cfg.machine.interconnect = sim::InterconnectKind::omega;
    cfg.machine.fabric = sim::FabricKind::memory;
    auto r = core::runDoacross(
        loop, sync::SchemeKind::referenceBased, cfg);
    ASSERT_TRUE(r.run.completed);
    EXPECT_TRUE(r.correct());
}

TEST(EdgeCasesTest, CoverageAblationCorrectBothWays)
{
    dep::Loop loop = workloads::makeFig21Loop(48);
    for (bool eliminate : {true, false}) {
        auto cfg = config();
        cfg.eliminateCoveredDeps = eliminate;
        auto r = core::runDoacross(
            loop, sync::SchemeKind::processImproved, cfg);
        ASSERT_TRUE(r.run.completed) << eliminate;
        EXPECT_TRUE(r.correct()) << eliminate;
    }
}

TEST(EdgeCasesTest, ZeroCostStatements)
{
    dep::Loop loop = workloads::makeFig21Loop(16, 0);
    auto r = core::runDoacross(
        loop, sync::SchemeKind::processImproved, config());
    ASSERT_TRUE(r.run.completed);
    EXPECT_TRUE(r.correct());
}
