/**
 * @file
 * Example 3 end-to-end: sources in branches synchronize correctly
 * under every branch-capable scheme and both signal placements.
 */

#include <gtest/gtest.h>

#include "core/runtime.hh"
#include "workloads/branches.hh"

using namespace psync;

namespace {

core::RunConfig
config(bool early, unsigned procs = 4)
{
    core::RunConfig cfg;
    cfg.machine.numProcs = procs;
    cfg.machine.fabric = sim::FabricKind::registers;
    cfg.machine.syncRegisters = 1024;
    cfg.scheme.earlyBranchSignals = early;
    cfg.tickLimit = 50000000;
    return cfg;
}

} // namespace

TEST(BranchesTest, CorrectAcrossTakenProbabilities)
{
    for (double p : {0.0, 0.25, 0.5, 0.75, 1.0}) {
        dep::Loop loop = workloads::makeBranchLoop(48, p);
        for (auto kind : {sync::SchemeKind::processBasic,
                          sync::SchemeKind::processImproved,
                          sync::SchemeKind::statementOriented,
                          sync::SchemeKind::referenceBased}) {
            auto cfg = config(true);
            if (kind == sync::SchemeKind::referenceBased)
                cfg.machine.fabric = sim::FabricKind::memory;
            auto r = core::runDoacross(loop, kind, cfg);
            ASSERT_TRUE(r.run.completed)
                << sync::schemeKindName(kind) << " p=" << p;
            EXPECT_TRUE(r.correct())
                << sync::schemeKindName(kind) << " p=" << p << ": "
                << (r.violations.empty() ? "" : r.violations.front());
        }
    }
}

TEST(BranchesTest, LateSignalsAlsoCorrect)
{
    dep::Loop loop = workloads::makeBranchLoop(48, 0.5);
    for (auto kind : {sync::SchemeKind::processBasic,
                      sync::SchemeKind::processImproved,
                      sync::SchemeKind::statementOriented}) {
        auto r = core::runDoacross(loop, kind, config(false));
        ASSERT_TRUE(r.run.completed) << sync::schemeKindName(kind);
        EXPECT_TRUE(r.correct()) << sync::schemeKindName(kind);
    }
}

TEST(BranchesTest, EarlySignalsReduceWaiting)
{
    // With long branch arms, marking the untaken source's step at
    // its position (instead of only at transfer time) lets sinks
    // proceed sooner — the Fig. 5.3 optimization.
    dep::Loop loop = workloads::makeBranchLoop(96, 0.5, 4, 120, 96, 7);
    auto early = core::runDoacross(
        loop, sync::SchemeKind::processImproved, config(true, 8));
    auto late = core::runDoacross(
        loop, sync::SchemeKind::processImproved, config(false, 8));
    ASSERT_TRUE(early.run.completed);
    ASSERT_TRUE(late.run.completed);
    EXPECT_TRUE(early.correct());
    EXPECT_TRUE(late.correct());
    EXPECT_LE(early.run.spinCycles, late.run.spinCycles);
}

TEST(BranchesTest, DegenerateProbabilitiesMatchUnconditional)
{
    // p = 1: the taken arm always runs; the untaken one never does.
    dep::Loop loop = workloads::makeBranchLoop(32, 1.0);
    auto r = core::runDoacross(
        loop, sync::SchemeKind::processImproved, config(true));
    ASSERT_TRUE(r.run.completed);
    EXPECT_TRUE(r.correct());
    EXPECT_GT(r.instancesChecked, 0u);
}
