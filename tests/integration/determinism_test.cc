/** @file Bit-for-bit reproducibility of whole simulations. */

#include <gtest/gtest.h>

#include "core/runtime.hh"
#include "workloads/fig21.hh"
#include "workloads/synthetic.hh"

using namespace psync;

namespace {

core::RunConfig
config()
{
    core::RunConfig cfg;
    cfg.machine.numProcs = 6;
    cfg.machine.fabric = sim::FabricKind::registers;
    cfg.machine.syncRegisters = 1024;
    cfg.tickLimit = 50000000;
    return cfg;
}

} // namespace

TEST(DeterminismTest, IdenticalRunsIdenticalResults)
{
    dep::Loop loop = workloads::makeFig21Loop(64);
    auto a = core::runDoacross(loop,
                               sync::SchemeKind::processImproved,
                               config());
    auto b = core::runDoacross(loop,
                               sync::SchemeKind::processImproved,
                               config());
    EXPECT_EQ(a.run.cycles, b.run.cycles);
    EXPECT_EQ(a.run.computeCycles, b.run.computeCycles);
    EXPECT_EQ(a.run.spinCycles, b.run.spinCycles);
    EXPECT_EQ(a.run.syncOps, b.run.syncOps);
    EXPECT_EQ(a.run.syncBusBroadcasts, b.run.syncBusBroadcasts);
    EXPECT_EQ(a.run.coalescedWrites, b.run.coalescedWrites);
    EXPECT_EQ(a.run.memAccesses, b.run.memAccesses);
}

TEST(DeterminismTest, AllSchemesDeterministic)
{
    workloads::SyntheticSpec spec;
    spec.seed = 3;
    spec.n = 32;
    dep::Loop loop = workloads::makeSyntheticLoop(spec);
    for (auto kind : sync::allSyncSchemes()) {
        auto cfg = config();
        if (kind == sync::SchemeKind::referenceBased ||
            kind == sync::SchemeKind::instanceBased) {
            cfg.machine.fabric = sim::FabricKind::memory;
        }
        auto a = core::runDoacross(loop, kind, cfg);
        auto b = core::runDoacross(loop, kind, cfg);
        EXPECT_EQ(a.run.cycles, b.run.cycles)
            << sync::schemeKindName(kind);
        EXPECT_EQ(a.run.syncOps, b.run.syncOps)
            << sync::schemeKindName(kind);
    }
}

TEST(DeterminismTest, SeedChangesWorkload)
{
    workloads::SyntheticSpec s1, s2;
    s1.seed = 5;
    s2.seed = 6;
    dep::Loop l1 = workloads::makeSyntheticLoop(s1);
    dep::Loop l2 = workloads::makeSyntheticLoop(s2);
    auto a = core::runDoacross(l1,
                               sync::SchemeKind::processImproved,
                               config());
    auto b = core::runDoacross(l2,
                               sync::SchemeKind::processImproved,
                               config());
    EXPECT_NE(a.run.cycles, b.run.cycles);
}
