/**
 * @file
 * Exact-boundary codegen: skip linearization-only waits in nested
 * loops at the price of the O(r*d) boundary check — the design
 * point Example 2 weighs against implicit coalescing.
 */

#include <gtest/gtest.h>

#include "core/runtime.hh"
#include "workloads/nested.hh"
#include "workloads/relaxation.hh"

using namespace psync;

namespace {

core::RunConfig
config(bool exact, unsigned procs = 8)
{
    core::RunConfig cfg;
    cfg.machine.numProcs = procs;
    cfg.machine.fabric = sim::FabricKind::registers;
    cfg.machine.syncRegisters = 1024;
    cfg.scheme.exactBoundaries = exact;
    cfg.scheme.numPcs = 2 * procs;
    cfg.tickLimit = 50000000;
    return cfg;
}

} // namespace

TEST(ExactBoundariesTest, CorrectOnNestedLoop)
{
    dep::Loop loop = workloads::makeNestedLoop(10, 10);
    for (auto kind : {sync::SchemeKind::processBasic,
                      sync::SchemeKind::processImproved,
                      sync::SchemeKind::statementOriented}) {
        auto r = core::runDoacross(loop, kind, config(true));
        ASSERT_TRUE(r.run.completed) << sync::schemeKindName(kind);
        EXPECT_TRUE(r.correct())
            << sync::schemeKindName(kind) << ": "
            << (r.violations.empty() ? "" : r.violations.front());
    }
}

TEST(ExactBoundariesTest, CorrectOnRelaxationPseudoLoop)
{
    // The relaxation loop's covered (1,0) arc is the case where a
    // covering chain crosses a row boundary: exact mode must
    // disable coverage elimination to stay correct.
    dep::Loop loop = workloads::makeRelaxationLoop(12, 6);
    auto r = core::runDoacross(
        loop, sync::SchemeKind::processImproved, config(true));
    ASSERT_TRUE(r.run.completed);
    EXPECT_TRUE(r.correct())
        << (r.violations.empty() ? "" : r.violations.front());
}

TEST(ExactBoundariesTest, SkipsBoundaryWaits)
{
    dep::Loop loop = workloads::makeNestedLoop(10, 10);
    auto coalesced = core::runDoacross(
        loop, sync::SchemeKind::processImproved, config(false));
    auto exact = core::runDoacross(
        loop, sync::SchemeKind::processImproved, config(true));
    ASSERT_TRUE(coalesced.run.completed);
    ASSERT_TRUE(exact.run.completed);
    EXPECT_TRUE(coalesced.correct());
    EXPECT_TRUE(exact.correct());
    // Fewer waits issued...
    EXPECT_LT(exact.run.syncOps, coalesced.run.syncOps);
    // ...but more compute: the boundary checks.
    EXPECT_GT(exact.run.computeCycles,
              coalesced.run.computeCycles);
}

TEST(ExactBoundariesTest, NoEffectOnDepthOneLoops)
{
    dep::Loop loop;
    loop.depth = 1;
    loop.outer = {1, 32};
    dep::Statement s;
    s.label = "S1";
    s.cost = 4;
    dep::ArrayRef rd, wr;
    rd.array = "A";
    rd.subs = {dep::Subscript{1, 0, -1}};
    rd.isWrite = false;
    wr.array = "A";
    wr.subs = {dep::Subscript{1, 0, 0}};
    wr.isWrite = true;
    s.refs = {rd, wr};
    loop.body = {s};

    auto off = core::runDoacross(
        loop, sync::SchemeKind::processImproved, config(false));
    auto on = core::runDoacross(
        loop, sync::SchemeKind::processImproved, config(true));
    ASSERT_TRUE(off.run.completed);
    ASSERT_TRUE(on.run.completed);
    EXPECT_EQ(off.run.computeCycles, on.run.computeCycles);
}
