/**
 * @file
 * End-to-end: the Fig. 2.1 loop runs under every scheme, on both
 * fabrics where meaningful, with the execution trace verified
 * against the dependences each scheme claims to enforce.
 */

#include <gtest/gtest.h>

#include "core/runtime.hh"
#include "workloads/fig21.hh"

using namespace psync;

namespace {

core::RunConfig
baseConfig(sim::FabricKind fabric, unsigned procs = 4)
{
    core::RunConfig cfg;
    cfg.machine.numProcs = procs;
    cfg.machine.fabric = fabric;
    cfg.machine.syncRegisters = 4096;
    cfg.tickLimit = 50000000;
    return cfg;
}

} // namespace

class Fig21SchemeTest
    : public ::testing::TestWithParam<sync::SchemeKind>
{
};

TEST_P(Fig21SchemeTest, RegisterFabricCorrect)
{
    dep::Loop loop = workloads::makeFig21Loop(64);
    core::DoacrossResult r = core::runDoacross(
        loop, GetParam(), baseConfig(sim::FabricKind::registers));
    EXPECT_TRUE(r.run.completed) << "deadlock under "
        << sync::schemeKindName(GetParam());
    EXPECT_TRUE(r.correct())
        << (r.violations.empty() ? "" : r.violations.front());
    EXPECT_GT(r.instancesChecked, 0u);
    EXPECT_EQ(r.run.programsRun, 64u);
}

TEST_P(Fig21SchemeTest, MemoryFabricCorrect)
{
    dep::Loop loop = workloads::makeFig21Loop(48);
    core::DoacrossResult r = core::runDoacross(
        loop, GetParam(), baseConfig(sim::FabricKind::memory));
    EXPECT_TRUE(r.run.completed);
    EXPECT_TRUE(r.correct())
        << (r.violations.empty() ? "" : r.violations.front());
    EXPECT_GT(r.instancesChecked, 0u);
}

TEST_P(Fig21SchemeTest, StaticSchedulingCorrect)
{
    dep::Loop loop = workloads::makeFig21Loop(48);
    core::RunConfig cfg = baseConfig(sim::FabricKind::registers);
    cfg.schedule = core::SchedulePolicy::staticCyclic;
    core::DoacrossResult r = core::runDoacross(loop, GetParam(), cfg);
    EXPECT_TRUE(r.run.completed);
    EXPECT_TRUE(r.correct())
        << (r.violations.empty() ? "" : r.violations.front());
}

INSTANTIATE_TEST_SUITE_P(
    AllSchemes, Fig21SchemeTest,
    ::testing::Values(sync::SchemeKind::referenceBased,
                      sync::SchemeKind::instanceBased,
                      sync::SchemeKind::statementOriented,
                      sync::SchemeKind::processBasic,
                      sync::SchemeKind::processImproved),
    [](const ::testing::TestParamInfo<sync::SchemeKind> &info) {
        std::string name = sync::schemeKindName(info.param);
        for (char &c : name) {
            if (c == '-')
                c = '_';
        }
        return name;
    });

TEST(Fig21Integration, ParallelBeatsSequential)
{
    dep::Loop loop = workloads::makeFig21Loop(64);
    core::RunConfig cfg = baseConfig(sim::FabricKind::registers, 8);
    sim::Tick seq = core::sequentialCycles(loop, cfg.machine);
    core::DoacrossResult r = core::runDoacross(
        loop, sync::SchemeKind::processImproved, cfg);
    ASSERT_TRUE(r.run.completed);
    EXPECT_GT(r.run.speedupOver(seq), 1.5)
        << "seq=" << seq << " par=" << r.run.cycles;
}

TEST(Fig21Integration, ImprovedNoSlowerThanBasic)
{
    dep::Loop loop = workloads::makeFig21Loop(96);
    auto cfg = baseConfig(sim::FabricKind::registers, 8);
    auto basic = core::runDoacross(
        loop, sync::SchemeKind::processBasic, cfg);
    auto improved = core::runDoacross(
        loop, sync::SchemeKind::processImproved, cfg);
    ASSERT_TRUE(basic.run.completed);
    ASSERT_TRUE(improved.run.completed);
    EXPECT_LE(improved.run.cycles, basic.run.cycles + 64);
}

TEST(Fig21Integration, ProcessSchemeUsesFewVariables)
{
    dep::Loop loop = workloads::makeFig21Loop(256);
    auto cfg = baseConfig(sim::FabricKind::memory, 8);
    cfg.scheme.numPcs = 16;

    auto process = core::runDoacross(
        loop, sync::SchemeKind::processImproved, cfg);
    auto reference = core::runDoacross(
        loop, sync::SchemeKind::referenceBased, cfg);
    auto instance = core::runDoacross(
        loop, sync::SchemeKind::instanceBased, cfg);

    EXPECT_EQ(process.plan.numSyncVars, 16u);
    // One key per element of A[ (1-1)..(256+3) ].
    EXPECT_GE(reference.plan.numSyncVars, 256u);
    // One key per reader of every written instance.
    EXPECT_GE(instance.plan.numSyncVars, 3 * 256u - 16);
    EXPECT_LT(process.plan.numSyncVars,
              reference.plan.numSyncVars / 4);
}

TEST(Fig21Integration, FoldingAcrossManyPcCounts)
{
    dep::Loop loop = workloads::makeFig21Loop(64);
    for (unsigned x : {1u, 2u, 3u, 5u, 8u, 64u, 128u}) {
        auto cfg = baseConfig(sim::FabricKind::registers, 4);
        cfg.scheme.numPcs = x;
        auto r = core::runDoacross(
            loop, sync::SchemeKind::processImproved, cfg);
        EXPECT_TRUE(r.run.completed) << "X=" << x;
        EXPECT_TRUE(r.correct())
            << "X=" << x << ": "
            << (r.violations.empty() ? "" : r.violations.front());
    }
}
