/**
 * @file
 * Property tests: for randomly generated Doacross loops, every
 * scheme on every fabric must (a) terminate, (b) run each
 * iteration exactly once, and (c) leave a trace in which every
 * dependence it claims to enforce actually holds.
 */

#include <gtest/gtest.h>

#include "core/runtime.hh"
#include "workloads/synthetic.hh"

using namespace psync;

namespace {

struct Combo
{
    std::uint64_t seed;
    sync::SchemeKind kind;
    sim::FabricKind fabric;
    unsigned procs;
    unsigned numPcs;
};

std::string
comboName(const ::testing::TestParamInfo<Combo> &info)
{
    std::string name = sync::schemeKindName(info.param.kind);
    for (char &c : name) {
        if (c == '-')
            c = '_';
    }
    return name + "_" +
           sim::fabricKindName(info.param.fabric) + "_s" +
           std::to_string(info.param.seed) + "_p" +
           std::to_string(info.param.procs) + "_x" +
           std::to_string(info.param.numPcs);
}

std::vector<Combo>
makeCombos()
{
    std::vector<Combo> combos;
    std::vector<sync::SchemeKind> kinds = sync::allSyncSchemes();
    unsigned k = 0;
    for (std::uint64_t seed = 1; seed <= 10; ++seed) {
        for (auto kind : kinds) {
            Combo c;
            c.seed = seed;
            c.kind = kind;
            c.fabric = (k % 2 == 0) ? sim::FabricKind::registers
                                    : sim::FabricKind::memory;
            if (kind == sync::SchemeKind::referenceBased ||
                kind == sync::SchemeKind::instanceBased) {
                c.fabric = sim::FabricKind::memory;
            }
            c.procs = 1 + (k % 8);
            c.numPcs = 1 + (k % 5) * 3;
            combos.push_back(c);
            ++k;
        }
    }
    return combos;
}

} // namespace

class RandomLoopProperty : public ::testing::TestWithParam<Combo>
{
};

TEST_P(RandomLoopProperty, SchemeEnforcesItsDependences)
{
    const Combo &combo = GetParam();

    workloads::SyntheticSpec spec;
    spec.seed = combo.seed;
    spec.n = 48;
    spec.numStatements = 3 + combo.seed % 4;
    spec.numArrays = 1 + combo.seed % 3;
    spec.maxOffset = 1 + combo.seed % 4;
    // Instance-based rejects guarded statements.
    spec.guardProb =
        combo.kind == sync::SchemeKind::instanceBased ? 0.0 : 0.3;
    dep::Loop loop = workloads::makeSyntheticLoop(spec);

    core::RunConfig cfg;
    cfg.machine.numProcs = combo.procs;
    cfg.machine.fabric = combo.fabric;
    cfg.machine.syncRegisters = 4096;
    cfg.scheme.numPcs = combo.numPcs;
    cfg.scheme.numScs = 256;
    cfg.tickLimit = 100000000;

    // Derive further machine axes from the seed so the sweep also
    // covers caches, uncached spinning, coalescing-off, Cedar
    // combining and chunked dispatch.
    cfg.machine.cache.enabled = combo.seed % 2 == 0;
    cfg.machine.cachedSpinning = combo.seed % 3 != 0;
    cfg.machine.coalesceWrites = combo.seed % 5 != 0;
    cfg.scheme.cedarCombining = combo.seed % 4 == 0;
    if (combo.seed % 7 == 0) {
        cfg.schedule = core::SchedulePolicy::chunkedSelfScheduling;
        cfg.chunkSize = 3;
    }

    auto r = core::runDoacross(loop, combo.kind, cfg);
    ASSERT_TRUE(r.run.completed) << "deadlock";
    EXPECT_EQ(r.run.programsRun, loop.iterations());
    EXPECT_TRUE(r.correct())
        << (r.violations.empty() ? "" : r.violations.front());
}

INSTANTIATE_TEST_SUITE_P(Sweep, RandomLoopProperty,
                         ::testing::ValuesIn(makeCombos()),
                         comboName);

TEST(RandomLoopProperty2, DenseDependenceLoops)
{
    // Many statements, small offsets: dependence-heavy loops.
    for (std::uint64_t seed = 100; seed < 105; ++seed) {
        workloads::SyntheticSpec spec;
        spec.seed = seed;
        spec.n = 32;
        spec.numStatements = 8;
        spec.numArrays = 1;
        spec.maxOffset = 2;
        spec.writeProb = 0.6;
        dep::Loop loop = workloads::makeSyntheticLoop(spec);

        core::RunConfig cfg;
        cfg.machine.numProcs = 4;
        cfg.machine.fabric = sim::FabricKind::registers;
        cfg.machine.syncRegisters = 64;
        cfg.scheme.numPcs = 4;
        cfg.tickLimit = 100000000;

        for (auto kind : {sync::SchemeKind::processBasic,
                          sync::SchemeKind::processImproved,
                          sync::SchemeKind::statementOriented}) {
            auto r = core::runDoacross(loop, kind, cfg);
            ASSERT_TRUE(r.run.completed)
                << "seed=" << seed << " "
                << sync::schemeKindName(kind);
            EXPECT_TRUE(r.correct())
                << "seed=" << seed << " "
                << sync::schemeKindName(kind) << ": "
                << (r.violations.empty() ? ""
                                         : r.violations.front());
        }
    }
}

TEST(RandomLoopProperty2, SingleProcessorAlwaysCorrect)
{
    // P=1 degenerates to sequential execution; any scheme must
    // still satisfy its dependences trivially.
    workloads::SyntheticSpec spec;
    spec.seed = 7;
    spec.n = 24;
    dep::Loop loop = workloads::makeSyntheticLoop(spec);
    core::RunConfig cfg;
    cfg.machine.numProcs = 1;
    cfg.machine.fabric = sim::FabricKind::registers;
    cfg.machine.syncRegisters = 4096;
    cfg.tickLimit = 100000000;
    for (auto kind : sync::allSyncSchemes()) {
        if (kind == sync::SchemeKind::instanceBased ||
            kind == sync::SchemeKind::referenceBased) {
            cfg.machine.fabric = sim::FabricKind::memory;
        } else {
            cfg.machine.fabric = sim::FabricKind::registers;
        }
        auto r = core::runDoacross(loop, kind, cfg);
        ASSERT_TRUE(r.run.completed);
        EXPECT_TRUE(r.correct()) << sync::schemeKindName(kind);
    }
}
