file(REMOVE_RECURSE
  "CMakeFiles/exact_boundaries_test.dir/integration/exact_boundaries_test.cc.o"
  "CMakeFiles/exact_boundaries_test.dir/integration/exact_boundaries_test.cc.o.d"
  "exact_boundaries_test"
  "exact_boundaries_test.pdb"
  "exact_boundaries_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exact_boundaries_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
