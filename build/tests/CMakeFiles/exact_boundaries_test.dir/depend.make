# Empty dependencies file for exact_boundaries_test.
# This may be replaced when dependencies are built.
