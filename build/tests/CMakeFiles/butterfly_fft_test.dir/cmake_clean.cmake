file(REMOVE_RECURSE
  "CMakeFiles/butterfly_fft_test.dir/integration/butterfly_fft_test.cc.o"
  "CMakeFiles/butterfly_fft_test.dir/integration/butterfly_fft_test.cc.o.d"
  "butterfly_fft_test"
  "butterfly_fft_test.pdb"
  "butterfly_fft_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/butterfly_fft_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
