# Empty compiler generated dependencies file for butterfly_fft_test.
# This may be replaced when dependencies are built.
