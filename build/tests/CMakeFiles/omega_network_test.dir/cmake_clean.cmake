file(REMOVE_RECURSE
  "CMakeFiles/omega_network_test.dir/sim/omega_network_test.cc.o"
  "CMakeFiles/omega_network_test.dir/sim/omega_network_test.cc.o.d"
  "omega_network_test"
  "omega_network_test.pdb"
  "omega_network_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/omega_network_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
