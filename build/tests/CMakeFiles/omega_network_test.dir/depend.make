# Empty dependencies file for omega_network_test.
# This may be replaced when dependencies are built.
