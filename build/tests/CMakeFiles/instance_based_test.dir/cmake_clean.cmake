file(REMOVE_RECURSE
  "CMakeFiles/instance_based_test.dir/sync/instance_based_test.cc.o"
  "CMakeFiles/instance_based_test.dir/sync/instance_based_test.cc.o.d"
  "instance_based_test"
  "instance_based_test.pdb"
  "instance_based_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/instance_based_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
