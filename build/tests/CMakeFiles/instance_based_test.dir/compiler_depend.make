# Empty compiler generated dependencies file for instance_based_test.
# This may be replaced when dependencies are built.
