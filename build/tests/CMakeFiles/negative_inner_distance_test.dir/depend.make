# Empty dependencies file for negative_inner_distance_test.
# This may be replaced when dependencies are built.
