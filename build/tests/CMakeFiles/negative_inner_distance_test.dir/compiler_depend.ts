# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for negative_inner_distance_test.
