file(REMOVE_RECURSE
  "CMakeFiles/negative_inner_distance_test.dir/dep/negative_inner_distance_test.cc.o"
  "CMakeFiles/negative_inner_distance_test.dir/dep/negative_inner_distance_test.cc.o.d"
  "negative_inner_distance_test"
  "negative_inner_distance_test.pdb"
  "negative_inner_distance_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/negative_inner_distance_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
