file(REMOVE_RECURSE
  "CMakeFiles/fig21_integration_test.dir/integration/fig21_integration_test.cc.o"
  "CMakeFiles/fig21_integration_test.dir/integration/fig21_integration_test.cc.o.d"
  "fig21_integration_test"
  "fig21_integration_test.pdb"
  "fig21_integration_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig21_integration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
