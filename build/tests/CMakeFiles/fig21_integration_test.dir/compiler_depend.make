# Empty compiler generated dependencies file for fig21_integration_test.
# This may be replaced when dependencies are built.
