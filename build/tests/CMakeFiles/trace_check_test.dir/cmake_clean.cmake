file(REMOVE_RECURSE
  "CMakeFiles/trace_check_test.dir/core/trace_check_test.cc.o"
  "CMakeFiles/trace_check_test.dir/core/trace_check_test.cc.o.d"
  "trace_check_test"
  "trace_check_test.pdb"
  "trace_check_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trace_check_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
