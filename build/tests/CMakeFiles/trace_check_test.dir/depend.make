# Empty dependencies file for trace_check_test.
# This may be replaced when dependencies are built.
