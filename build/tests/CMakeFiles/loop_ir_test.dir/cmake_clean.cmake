file(REMOVE_RECURSE
  "CMakeFiles/loop_ir_test.dir/dep/loop_ir_test.cc.o"
  "CMakeFiles/loop_ir_test.dir/dep/loop_ir_test.cc.o.d"
  "loop_ir_test"
  "loop_ir_test.pdb"
  "loop_ir_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/loop_ir_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
