# Empty dependencies file for loop_ir_test.
# This may be replaced when dependencies are built.
