# Empty compiler generated dependencies file for process_oriented_test.
# This may be replaced when dependencies are built.
