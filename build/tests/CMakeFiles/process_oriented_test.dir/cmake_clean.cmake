file(REMOVE_RECURSE
  "CMakeFiles/process_oriented_test.dir/sync/process_oriented_test.cc.o"
  "CMakeFiles/process_oriented_test.dir/sync/process_oriented_test.cc.o.d"
  "process_oriented_test"
  "process_oriented_test.pdb"
  "process_oriented_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/process_oriented_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
