file(REMOVE_RECURSE
  "CMakeFiles/pc_word_test.dir/sim/pc_word_test.cc.o"
  "CMakeFiles/pc_word_test.dir/sim/pc_word_test.cc.o.d"
  "pc_word_test"
  "pc_word_test.pdb"
  "pc_word_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pc_word_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
