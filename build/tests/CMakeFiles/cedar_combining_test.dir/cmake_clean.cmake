file(REMOVE_RECURSE
  "CMakeFiles/cedar_combining_test.dir/sync/cedar_combining_test.cc.o"
  "CMakeFiles/cedar_combining_test.dir/sync/cedar_combining_test.cc.o.d"
  "cedar_combining_test"
  "cedar_combining_test.pdb"
  "cedar_combining_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cedar_combining_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
