# Empty compiler generated dependencies file for cedar_combining_test.
# This may be replaced when dependencies are built.
