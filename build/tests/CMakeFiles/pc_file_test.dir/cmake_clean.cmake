file(REMOVE_RECURSE
  "CMakeFiles/pc_file_test.dir/sync/pc_file_test.cc.o"
  "CMakeFiles/pc_file_test.dir/sync/pc_file_test.cc.o.d"
  "pc_file_test"
  "pc_file_test.pdb"
  "pc_file_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pc_file_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
