file(REMOVE_RECURSE
  "CMakeFiles/sync_fabric_test.dir/sim/sync_fabric_test.cc.o"
  "CMakeFiles/sync_fabric_test.dir/sim/sync_fabric_test.cc.o.d"
  "sync_fabric_test"
  "sync_fabric_test.pdb"
  "sync_fabric_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sync_fabric_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
