# Empty compiler generated dependencies file for sync_fabric_test.
# This may be replaced when dependencies are built.
