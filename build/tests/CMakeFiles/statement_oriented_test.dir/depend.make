# Empty dependencies file for statement_oriented_test.
# This may be replaced when dependencies are built.
