file(REMOVE_RECURSE
  "CMakeFiles/statement_oriented_test.dir/sync/statement_oriented_test.cc.o"
  "CMakeFiles/statement_oriented_test.dir/sync/statement_oriented_test.cc.o.d"
  "statement_oriented_test"
  "statement_oriented_test.pdb"
  "statement_oriented_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/statement_oriented_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
