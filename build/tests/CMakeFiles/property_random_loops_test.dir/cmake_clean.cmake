file(REMOVE_RECURSE
  "CMakeFiles/property_random_loops_test.dir/integration/property_random_loops_test.cc.o"
  "CMakeFiles/property_random_loops_test.dir/integration/property_random_loops_test.cc.o.d"
  "property_random_loops_test"
  "property_random_loops_test.pdb"
  "property_random_loops_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/property_random_loops_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
