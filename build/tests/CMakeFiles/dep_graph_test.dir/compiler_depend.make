# Empty compiler generated dependencies file for dep_graph_test.
# This may be replaced when dependencies are built.
