file(REMOVE_RECURSE
  "CMakeFiles/dep_graph_test.dir/dep/dep_graph_test.cc.o"
  "CMakeFiles/dep_graph_test.dir/dep/dep_graph_test.cc.o.d"
  "dep_graph_test"
  "dep_graph_test.pdb"
  "dep_graph_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dep_graph_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
