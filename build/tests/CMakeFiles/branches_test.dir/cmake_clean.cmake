file(REMOVE_RECURSE
  "CMakeFiles/branches_test.dir/integration/branches_test.cc.o"
  "CMakeFiles/branches_test.dir/integration/branches_test.cc.o.d"
  "branches_test"
  "branches_test.pdb"
  "branches_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/branches_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
