# Empty dependencies file for branches_test.
# This may be replaced when dependencies are built.
