file(REMOVE_RECURSE
  "CMakeFiles/reference_based_test.dir/sync/reference_based_test.cc.o"
  "CMakeFiles/reference_based_test.dir/sync/reference_based_test.cc.o.d"
  "reference_based_test"
  "reference_based_test.pdb"
  "reference_based_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reference_based_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
