# Empty dependencies file for reference_based_test.
# This may be replaced when dependencies are built.
