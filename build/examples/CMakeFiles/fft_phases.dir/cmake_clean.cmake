file(REMOVE_RECURSE
  "CMakeFiles/fft_phases.dir/fft_phases.cpp.o"
  "CMakeFiles/fft_phases.dir/fft_phases.cpp.o.d"
  "fft_phases"
  "fft_phases.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fft_phases.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
