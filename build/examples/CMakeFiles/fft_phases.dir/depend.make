# Empty dependencies file for fft_phases.
# This may be replaced when dependencies are built.
