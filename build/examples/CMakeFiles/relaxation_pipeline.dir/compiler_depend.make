# Empty compiler generated dependencies file for relaxation_pipeline.
# This may be replaced when dependencies are built.
