file(REMOVE_RECURSE
  "CMakeFiles/relaxation_pipeline.dir/relaxation_pipeline.cpp.o"
  "CMakeFiles/relaxation_pipeline.dir/relaxation_pipeline.cpp.o.d"
  "relaxation_pipeline"
  "relaxation_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/relaxation_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
