file(REMOVE_RECURSE
  "CMakeFiles/nested_doacross.dir/nested_doacross.cpp.o"
  "CMakeFiles/nested_doacross.dir/nested_doacross.cpp.o.d"
  "nested_doacross"
  "nested_doacross.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nested_doacross.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
