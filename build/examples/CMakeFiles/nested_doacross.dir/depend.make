# Empty dependencies file for nested_doacross.
# This may be replaced when dependencies are built.
