# Empty compiler generated dependencies file for barrier_comparison.
# This may be replaced when dependencies are built.
