file(REMOVE_RECURSE
  "CMakeFiles/barrier_comparison.dir/barrier_comparison.cpp.o"
  "CMakeFiles/barrier_comparison.dir/barrier_comparison.cpp.o.d"
  "barrier_comparison"
  "barrier_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/barrier_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
