# Empty dependencies file for bench_ex3_branches.
# This may be replaced when dependencies are built.
