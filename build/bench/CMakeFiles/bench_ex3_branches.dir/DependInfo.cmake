
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_ex3_branches.cc" "bench/CMakeFiles/bench_ex3_branches.dir/bench_ex3_branches.cc.o" "gcc" "bench/CMakeFiles/bench_ex3_branches.dir/bench_ex3_branches.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workloads/CMakeFiles/psync_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/psync_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sync/CMakeFiles/psync_sync.dir/DependInfo.cmake"
  "/root/repo/build/src/dep/CMakeFiles/psync_dep.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/psync_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
