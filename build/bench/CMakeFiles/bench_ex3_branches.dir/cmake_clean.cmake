file(REMOVE_RECURSE
  "CMakeFiles/bench_ex3_branches.dir/bench_ex3_branches.cc.o"
  "CMakeFiles/bench_ex3_branches.dir/bench_ex3_branches.cc.o.d"
  "bench_ex3_branches"
  "bench_ex3_branches.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ex3_branches.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
