file(REMOVE_RECURSE
  "CMakeFiles/bench_ex1_relaxation.dir/bench_ex1_relaxation.cc.o"
  "CMakeFiles/bench_ex1_relaxation.dir/bench_ex1_relaxation.cc.o.d"
  "bench_ex1_relaxation"
  "bench_ex1_relaxation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ex1_relaxation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
