# Empty dependencies file for bench_fig31_data_oriented.
# This may be replaced when dependencies are built.
