file(REMOVE_RECURSE
  "CMakeFiles/bench_fig31_data_oriented.dir/bench_fig31_data_oriented.cc.o"
  "CMakeFiles/bench_fig31_data_oriented.dir/bench_fig31_data_oriented.cc.o.d"
  "bench_fig31_data_oriented"
  "bench_fig31_data_oriented.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig31_data_oriented.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
