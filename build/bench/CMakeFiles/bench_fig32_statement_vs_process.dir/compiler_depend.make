# Empty compiler generated dependencies file for bench_fig32_statement_vs_process.
# This may be replaced when dependencies are built.
