file(REMOVE_RECURSE
  "CMakeFiles/bench_ex4_butterfly.dir/bench_ex4_butterfly.cc.o"
  "CMakeFiles/bench_ex4_butterfly.dir/bench_ex4_butterfly.cc.o.d"
  "bench_ex4_butterfly"
  "bench_ex4_butterfly.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ex4_butterfly.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
