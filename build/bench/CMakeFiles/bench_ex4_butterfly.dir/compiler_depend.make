# Empty compiler generated dependencies file for bench_ex4_butterfly.
# This may be replaced when dependencies are built.
