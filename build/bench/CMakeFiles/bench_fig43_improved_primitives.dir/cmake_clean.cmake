file(REMOVE_RECURSE
  "CMakeFiles/bench_fig43_improved_primitives.dir/bench_fig43_improved_primitives.cc.o"
  "CMakeFiles/bench_fig43_improved_primitives.dir/bench_fig43_improved_primitives.cc.o.d"
  "bench_fig43_improved_primitives"
  "bench_fig43_improved_primitives.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig43_improved_primitives.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
