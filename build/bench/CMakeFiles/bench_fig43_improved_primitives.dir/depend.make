# Empty dependencies file for bench_fig43_improved_primitives.
# This may be replaced when dependencies are built.
