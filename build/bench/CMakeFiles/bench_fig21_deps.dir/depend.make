# Empty dependencies file for bench_fig21_deps.
# This may be replaced when dependencies are built.
