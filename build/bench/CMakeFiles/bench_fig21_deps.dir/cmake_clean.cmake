file(REMOVE_RECURSE
  "CMakeFiles/bench_fig21_deps.dir/bench_fig21_deps.cc.o"
  "CMakeFiles/bench_fig21_deps.dir/bench_fig21_deps.cc.o.d"
  "bench_fig21_deps"
  "bench_fig21_deps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig21_deps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
