file(REMOVE_RECURSE
  "CMakeFiles/bench_ex2_nested.dir/bench_ex2_nested.cc.o"
  "CMakeFiles/bench_ex2_nested.dir/bench_ex2_nested.cc.o.d"
  "bench_ex2_nested"
  "bench_ex2_nested.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ex2_nested.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
