# Empty dependencies file for bench_ex2_nested.
# This may be replaced when dependencies are built.
