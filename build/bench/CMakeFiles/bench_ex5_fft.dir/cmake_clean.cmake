file(REMOVE_RECURSE
  "CMakeFiles/bench_ex5_fft.dir/bench_ex5_fft.cc.o"
  "CMakeFiles/bench_ex5_fft.dir/bench_ex5_fft.cc.o.d"
  "bench_ex5_fft"
  "bench_ex5_fft.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ex5_fft.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
