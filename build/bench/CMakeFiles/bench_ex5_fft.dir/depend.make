# Empty dependencies file for bench_ex5_fft.
# This may be replaced when dependencies are built.
