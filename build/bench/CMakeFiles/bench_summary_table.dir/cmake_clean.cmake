file(REMOVE_RECURSE
  "CMakeFiles/bench_summary_table.dir/bench_summary_table.cc.o"
  "CMakeFiles/bench_summary_table.dir/bench_summary_table.cc.o.d"
  "bench_summary_table"
  "bench_summary_table.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_summary_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
