file(REMOVE_RECURSE
  "CMakeFiles/bench_hw_fabric.dir/bench_hw_fabric.cc.o"
  "CMakeFiles/bench_hw_fabric.dir/bench_hw_fabric.cc.o.d"
  "bench_hw_fabric"
  "bench_hw_fabric.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_hw_fabric.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
