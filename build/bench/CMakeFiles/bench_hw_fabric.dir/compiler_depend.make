# Empty compiler generated dependencies file for bench_hw_fabric.
# This may be replaced when dependencies are built.
