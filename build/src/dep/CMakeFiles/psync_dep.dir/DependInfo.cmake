
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dep/dep_graph.cc" "src/dep/CMakeFiles/psync_dep.dir/dep_graph.cc.o" "gcc" "src/dep/CMakeFiles/psync_dep.dir/dep_graph.cc.o.d"
  "/root/repo/src/dep/dependence.cc" "src/dep/CMakeFiles/psync_dep.dir/dependence.cc.o" "gcc" "src/dep/CMakeFiles/psync_dep.dir/dependence.cc.o.d"
  "/root/repo/src/dep/loop_ir.cc" "src/dep/CMakeFiles/psync_dep.dir/loop_ir.cc.o" "gcc" "src/dep/CMakeFiles/psync_dep.dir/loop_ir.cc.o.d"
  "/root/repo/src/dep/transform.cc" "src/dep/CMakeFiles/psync_dep.dir/transform.cc.o" "gcc" "src/dep/CMakeFiles/psync_dep.dir/transform.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/psync_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
