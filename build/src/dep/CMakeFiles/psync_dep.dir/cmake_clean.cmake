file(REMOVE_RECURSE
  "CMakeFiles/psync_dep.dir/dep_graph.cc.o"
  "CMakeFiles/psync_dep.dir/dep_graph.cc.o.d"
  "CMakeFiles/psync_dep.dir/dependence.cc.o"
  "CMakeFiles/psync_dep.dir/dependence.cc.o.d"
  "CMakeFiles/psync_dep.dir/loop_ir.cc.o"
  "CMakeFiles/psync_dep.dir/loop_ir.cc.o.d"
  "CMakeFiles/psync_dep.dir/transform.cc.o"
  "CMakeFiles/psync_dep.dir/transform.cc.o.d"
  "libpsync_dep.a"
  "libpsync_dep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/psync_dep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
