# Empty compiler generated dependencies file for psync_dep.
# This may be replaced when dependencies are built.
