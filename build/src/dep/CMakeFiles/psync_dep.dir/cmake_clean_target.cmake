file(REMOVE_RECURSE
  "libpsync_dep.a"
)
