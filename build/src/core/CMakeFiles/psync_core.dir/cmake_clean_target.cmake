file(REMOVE_RECURSE
  "libpsync_core.a"
)
