file(REMOVE_RECURSE
  "CMakeFiles/psync_core.dir/critical_path.cc.o"
  "CMakeFiles/psync_core.dir/critical_path.cc.o.d"
  "CMakeFiles/psync_core.dir/metrics.cc.o"
  "CMakeFiles/psync_core.dir/metrics.cc.o.d"
  "CMakeFiles/psync_core.dir/runtime.cc.o"
  "CMakeFiles/psync_core.dir/runtime.cc.o.d"
  "CMakeFiles/psync_core.dir/trace_check.cc.o"
  "CMakeFiles/psync_core.dir/trace_check.cc.o.d"
  "libpsync_core.a"
  "libpsync_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/psync_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
