# Empty compiler generated dependencies file for psync_core.
# This may be replaced when dependencies are built.
