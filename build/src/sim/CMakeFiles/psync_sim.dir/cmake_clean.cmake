file(REMOVE_RECURSE
  "CMakeFiles/psync_sim.dir/bus.cc.o"
  "CMakeFiles/psync_sim.dir/bus.cc.o.d"
  "CMakeFiles/psync_sim.dir/cache.cc.o"
  "CMakeFiles/psync_sim.dir/cache.cc.o.d"
  "CMakeFiles/psync_sim.dir/event_queue.cc.o"
  "CMakeFiles/psync_sim.dir/event_queue.cc.o.d"
  "CMakeFiles/psync_sim.dir/logging.cc.o"
  "CMakeFiles/psync_sim.dir/logging.cc.o.d"
  "CMakeFiles/psync_sim.dir/machine.cc.o"
  "CMakeFiles/psync_sim.dir/machine.cc.o.d"
  "CMakeFiles/psync_sim.dir/memory.cc.o"
  "CMakeFiles/psync_sim.dir/memory.cc.o.d"
  "CMakeFiles/psync_sim.dir/omega_network.cc.o"
  "CMakeFiles/psync_sim.dir/omega_network.cc.o.d"
  "CMakeFiles/psync_sim.dir/processor.cc.o"
  "CMakeFiles/psync_sim.dir/processor.cc.o.d"
  "CMakeFiles/psync_sim.dir/program.cc.o"
  "CMakeFiles/psync_sim.dir/program.cc.o.d"
  "CMakeFiles/psync_sim.dir/stats.cc.o"
  "CMakeFiles/psync_sim.dir/stats.cc.o.d"
  "CMakeFiles/psync_sim.dir/sync_fabric.cc.o"
  "CMakeFiles/psync_sim.dir/sync_fabric.cc.o.d"
  "libpsync_sim.a"
  "libpsync_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/psync_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
