
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/bus.cc" "src/sim/CMakeFiles/psync_sim.dir/bus.cc.o" "gcc" "src/sim/CMakeFiles/psync_sim.dir/bus.cc.o.d"
  "/root/repo/src/sim/cache.cc" "src/sim/CMakeFiles/psync_sim.dir/cache.cc.o" "gcc" "src/sim/CMakeFiles/psync_sim.dir/cache.cc.o.d"
  "/root/repo/src/sim/event_queue.cc" "src/sim/CMakeFiles/psync_sim.dir/event_queue.cc.o" "gcc" "src/sim/CMakeFiles/psync_sim.dir/event_queue.cc.o.d"
  "/root/repo/src/sim/logging.cc" "src/sim/CMakeFiles/psync_sim.dir/logging.cc.o" "gcc" "src/sim/CMakeFiles/psync_sim.dir/logging.cc.o.d"
  "/root/repo/src/sim/machine.cc" "src/sim/CMakeFiles/psync_sim.dir/machine.cc.o" "gcc" "src/sim/CMakeFiles/psync_sim.dir/machine.cc.o.d"
  "/root/repo/src/sim/memory.cc" "src/sim/CMakeFiles/psync_sim.dir/memory.cc.o" "gcc" "src/sim/CMakeFiles/psync_sim.dir/memory.cc.o.d"
  "/root/repo/src/sim/omega_network.cc" "src/sim/CMakeFiles/psync_sim.dir/omega_network.cc.o" "gcc" "src/sim/CMakeFiles/psync_sim.dir/omega_network.cc.o.d"
  "/root/repo/src/sim/processor.cc" "src/sim/CMakeFiles/psync_sim.dir/processor.cc.o" "gcc" "src/sim/CMakeFiles/psync_sim.dir/processor.cc.o.d"
  "/root/repo/src/sim/program.cc" "src/sim/CMakeFiles/psync_sim.dir/program.cc.o" "gcc" "src/sim/CMakeFiles/psync_sim.dir/program.cc.o.d"
  "/root/repo/src/sim/stats.cc" "src/sim/CMakeFiles/psync_sim.dir/stats.cc.o" "gcc" "src/sim/CMakeFiles/psync_sim.dir/stats.cc.o.d"
  "/root/repo/src/sim/sync_fabric.cc" "src/sim/CMakeFiles/psync_sim.dir/sync_fabric.cc.o" "gcc" "src/sim/CMakeFiles/psync_sim.dir/sync_fabric.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
