# Empty dependencies file for psync_sim.
# This may be replaced when dependencies are built.
