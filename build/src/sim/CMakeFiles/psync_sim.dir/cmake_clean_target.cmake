file(REMOVE_RECURSE
  "libpsync_sim.a"
)
