# Empty dependencies file for psync_sync.
# This may be replaced when dependencies are built.
