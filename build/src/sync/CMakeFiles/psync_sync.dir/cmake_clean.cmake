file(REMOVE_RECURSE
  "CMakeFiles/psync_sync.dir/barrier.cc.o"
  "CMakeFiles/psync_sync.dir/barrier.cc.o.d"
  "CMakeFiles/psync_sync.dir/instance_based.cc.o"
  "CMakeFiles/psync_sync.dir/instance_based.cc.o.d"
  "CMakeFiles/psync_sync.dir/pc_file.cc.o"
  "CMakeFiles/psync_sync.dir/pc_file.cc.o.d"
  "CMakeFiles/psync_sync.dir/process_oriented.cc.o"
  "CMakeFiles/psync_sync.dir/process_oriented.cc.o.d"
  "CMakeFiles/psync_sync.dir/reference_based.cc.o"
  "CMakeFiles/psync_sync.dir/reference_based.cc.o.d"
  "CMakeFiles/psync_sync.dir/scheme.cc.o"
  "CMakeFiles/psync_sync.dir/scheme.cc.o.d"
  "CMakeFiles/psync_sync.dir/statement_oriented.cc.o"
  "CMakeFiles/psync_sync.dir/statement_oriented.cc.o.d"
  "libpsync_sync.a"
  "libpsync_sync.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/psync_sync.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
