file(REMOVE_RECURSE
  "libpsync_sync.a"
)
