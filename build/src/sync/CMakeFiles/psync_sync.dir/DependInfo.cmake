
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sync/barrier.cc" "src/sync/CMakeFiles/psync_sync.dir/barrier.cc.o" "gcc" "src/sync/CMakeFiles/psync_sync.dir/barrier.cc.o.d"
  "/root/repo/src/sync/instance_based.cc" "src/sync/CMakeFiles/psync_sync.dir/instance_based.cc.o" "gcc" "src/sync/CMakeFiles/psync_sync.dir/instance_based.cc.o.d"
  "/root/repo/src/sync/pc_file.cc" "src/sync/CMakeFiles/psync_sync.dir/pc_file.cc.o" "gcc" "src/sync/CMakeFiles/psync_sync.dir/pc_file.cc.o.d"
  "/root/repo/src/sync/process_oriented.cc" "src/sync/CMakeFiles/psync_sync.dir/process_oriented.cc.o" "gcc" "src/sync/CMakeFiles/psync_sync.dir/process_oriented.cc.o.d"
  "/root/repo/src/sync/reference_based.cc" "src/sync/CMakeFiles/psync_sync.dir/reference_based.cc.o" "gcc" "src/sync/CMakeFiles/psync_sync.dir/reference_based.cc.o.d"
  "/root/repo/src/sync/scheme.cc" "src/sync/CMakeFiles/psync_sync.dir/scheme.cc.o" "gcc" "src/sync/CMakeFiles/psync_sync.dir/scheme.cc.o.d"
  "/root/repo/src/sync/statement_oriented.cc" "src/sync/CMakeFiles/psync_sync.dir/statement_oriented.cc.o" "gcc" "src/sync/CMakeFiles/psync_sync.dir/statement_oriented.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dep/CMakeFiles/psync_dep.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/psync_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
