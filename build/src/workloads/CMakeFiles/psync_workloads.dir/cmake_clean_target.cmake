file(REMOVE_RECURSE
  "libpsync_workloads.a"
)
