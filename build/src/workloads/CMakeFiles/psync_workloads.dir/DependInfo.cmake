
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/branches.cc" "src/workloads/CMakeFiles/psync_workloads.dir/branches.cc.o" "gcc" "src/workloads/CMakeFiles/psync_workloads.dir/branches.cc.o.d"
  "/root/repo/src/workloads/butterfly.cc" "src/workloads/CMakeFiles/psync_workloads.dir/butterfly.cc.o" "gcc" "src/workloads/CMakeFiles/psync_workloads.dir/butterfly.cc.o.d"
  "/root/repo/src/workloads/fft.cc" "src/workloads/CMakeFiles/psync_workloads.dir/fft.cc.o" "gcc" "src/workloads/CMakeFiles/psync_workloads.dir/fft.cc.o.d"
  "/root/repo/src/workloads/fig21.cc" "src/workloads/CMakeFiles/psync_workloads.dir/fig21.cc.o" "gcc" "src/workloads/CMakeFiles/psync_workloads.dir/fig21.cc.o.d"
  "/root/repo/src/workloads/nested.cc" "src/workloads/CMakeFiles/psync_workloads.dir/nested.cc.o" "gcc" "src/workloads/CMakeFiles/psync_workloads.dir/nested.cc.o.d"
  "/root/repo/src/workloads/relaxation.cc" "src/workloads/CMakeFiles/psync_workloads.dir/relaxation.cc.o" "gcc" "src/workloads/CMakeFiles/psync_workloads.dir/relaxation.cc.o.d"
  "/root/repo/src/workloads/synthetic.cc" "src/workloads/CMakeFiles/psync_workloads.dir/synthetic.cc.o" "gcc" "src/workloads/CMakeFiles/psync_workloads.dir/synthetic.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sync/CMakeFiles/psync_sync.dir/DependInfo.cmake"
  "/root/repo/build/src/dep/CMakeFiles/psync_dep.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/psync_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
