file(REMOVE_RECURSE
  "CMakeFiles/psync_workloads.dir/branches.cc.o"
  "CMakeFiles/psync_workloads.dir/branches.cc.o.d"
  "CMakeFiles/psync_workloads.dir/butterfly.cc.o"
  "CMakeFiles/psync_workloads.dir/butterfly.cc.o.d"
  "CMakeFiles/psync_workloads.dir/fft.cc.o"
  "CMakeFiles/psync_workloads.dir/fft.cc.o.d"
  "CMakeFiles/psync_workloads.dir/fig21.cc.o"
  "CMakeFiles/psync_workloads.dir/fig21.cc.o.d"
  "CMakeFiles/psync_workloads.dir/nested.cc.o"
  "CMakeFiles/psync_workloads.dir/nested.cc.o.d"
  "CMakeFiles/psync_workloads.dir/relaxation.cc.o"
  "CMakeFiles/psync_workloads.dir/relaxation.cc.o.d"
  "CMakeFiles/psync_workloads.dir/synthetic.cc.o"
  "CMakeFiles/psync_workloads.dir/synthetic.cc.o.d"
  "libpsync_workloads.a"
  "libpsync_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/psync_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
