# Empty compiler generated dependencies file for psync_workloads.
# This may be replaced when dependencies are built.
