/**
 * @file
 * Scheme explorer: generate a random Doacross loop from a seed,
 * print its dependence graph, then run it under every
 * synchronization scheme on its natural fabric and compare. Handy
 * for building intuition about when each scheme wins — and a
 * quick check that an arbitrary constant-distance loop is handled
 * correctly end to end (every run is trace-verified).
 *
 * Usage: scheme_explorer [seed] [N] [statements] [P]
 */

#include <cstdlib>
#include <iostream>

#include "core/runtime.hh"
#include "dep/dep_graph.hh"
#include "workloads/synthetic.hh"

using namespace psync;

int
main(int argc, char **argv)
{
    workloads::SyntheticSpec spec;
    spec.seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 1;
    spec.n = argc > 2 ? std::atol(argv[2]) : 128;
    spec.numStatements = argc > 3 ? std::atoi(argv[3]) : 5;
    unsigned procs = argc > 4 ? std::atoi(argv[4]) : 8;
    spec.numArrays = 2;
    spec.maxOffset = 3;

    dep::Loop loop = workloads::makeSyntheticLoop(spec);
    dep::DepGraph graph(loop);
    std::cout << graph.toString() << "\n"
              << "enforced arcs: " << graph.enforced().size()
              << ", covered: " << graph.numCovered() << "\n\n";

    sim::MachineConfig base;
    base.numProcs = procs;
    sim::Tick seq = core::sequentialCycles(loop, base);
    std::cout << "sequential: " << seq << " cycles\n\n";

    std::cout << "scheme             cycles    speedup  spin-frac  "
                 "sync-vars  verified\n";
    for (auto kind : sync::allSyncSchemes()) {
        core::RunConfig cfg;
        cfg.machine.numProcs = procs;
        cfg.machine.syncRegisters = 4096;
        cfg.machine.fabric =
            (kind == sync::SchemeKind::referenceBased ||
             kind == sync::SchemeKind::instanceBased)
                ? sim::FabricKind::memory
                : sim::FabricKind::registers;
        auto r = core::runDoacross(loop, kind, cfg);
        if (!r.run.completed) {
            std::cout << sync::schemeKindName(kind)
                      << "  DEADLOCK\n";
            continue;
        }
        std::cout << sync::schemeKindName(kind) << "  "
                  << r.run.cycles << "  "
                  << r.run.speedupOver(seq) << "  "
                  << r.run.spinFraction() << "  "
                  << r.plan.numSyncVars << "  "
                  << (r.correct() ? "ok" : "VIOLATION") << " ("
                  << r.instancesChecked << " instances)\n";
        if (!r.correct())
            return 1;
    }
    return 0;
}
