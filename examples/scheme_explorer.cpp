/**
 * @file
 * Scheme explorer: generate a random Doacross loop from a seed,
 * print its dependence graph, then run it under every
 * synchronization scheme on its natural fabric and compare. Handy
 * for building intuition about when each scheme wins — and a
 * quick check that an arbitrary constant-distance loop is handled
 * correctly end to end (every run is trace-verified).
 *
 * With --native, each scheme additionally runs on the native
 * multithreaded backend (real host threads, C++11 atomics) and the
 * two backends' value-rule memory images are compared side by side:
 * "match" means the native execution enforced exactly the orderings
 * the simulator did.
 *
 * With --dump-ir, each scheme's lowered program for the first two
 * iterations is disassembled one op per line (with stable op ids)
 * both before and after the transform passes (redundant-wait
 * elimination + peephole), so the effect of the pipeline is
 * directly readable.
 *
 * With --profile, each scheme's run is traced and its achieved
 * critical path reconstructed; a side-by-side composition table
 * (compute / spin / sync / stall / dispatch / propagation share of
 * the path, gap over the analytical bound, hottest sync variable)
 * is printed after the sweep, so where each scheme loses its
 * cycles is directly comparable.
 *
 * With --timeline, each scheme's run is sampled at a fixed
 * interval and a sparkline report (bus occupancy, module traffic,
 * waiter counts, processor state mix, detected hot spots) is
 * printed per scheme. Sampling is passive; cycle counts are
 * identical with it on or off.
 *
 * Usage: scheme_explorer [--native] [--dump-ir] [--profile]
 *                        [--timeline]
 *                        [seed] [N] [statements] [P]
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "core/critical_path.hh"
#include "core/profile.hh"
#include "core/runtime.hh"
#include "core/timeline.hh"
#include "core/tracing.hh"
#include "core/value_trace.hh"
#include "dep/dep_graph.hh"
#include "native/runner.hh"
#include "workloads/synthetic.hh"

using namespace psync;

int
main(int argc, char **argv)
{
    bool with_native = false;
    bool dump_ir = false;
    bool with_profile = false;
    bool with_timeline = false;
    std::vector<const char *> positional;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--native") == 0)
            with_native = true;
        else if (std::strcmp(argv[i], "--dump-ir") == 0)
            dump_ir = true;
        else if (std::strcmp(argv[i], "--profile") == 0)
            with_profile = true;
        else if (std::strcmp(argv[i], "--timeline") == 0)
            with_timeline = true;
        else
            positional.push_back(argv[i]);
    }

    workloads::SyntheticSpec spec;
    spec.seed = positional.size() > 0
                    ? std::strtoull(positional[0], nullptr, 10)
                    : 1;
    spec.n = positional.size() > 1 ? std::atol(positional[1]) : 128;
    spec.numStatements =
        positional.size() > 2 ? std::atoi(positional[2]) : 5;
    unsigned procs =
        positional.size() > 3 ? std::atoi(positional[3]) : 8;
    spec.numArrays = 2;
    spec.maxOffset = 3;

    dep::Loop loop = workloads::makeSyntheticLoop(spec);
    dep::DepGraph graph(loop);
    std::cout << graph.toString() << "\n"
              << "enforced arcs: " << graph.enforced().size()
              << ", covered: " << graph.numCovered() << "\n\n";

    sim::MachineConfig base;
    base.numProcs = procs;
    sim::Tick seq = core::sequentialCycles(loop, base);
    std::cout << "sequential: " << seq << " cycles\n\n";

    struct ProfileRow
    {
        std::string scheme;
        core::CriticalPathProfile prof;
    };
    std::vector<ProfileRow> profile_rows;

    struct TimelineRow
    {
        std::string scheme;
        core::Timeline timeline;
    };
    std::vector<TimelineRow> timeline_rows;
    // ~128 samples across an ideally-parallel run; floor of 16
    // cycles so tiny loops don't sample every event.
    sim::Tick timeline_interval = std::max<sim::Tick>(
        16, seq / (static_cast<sim::Tick>(procs) * 128));

    std::cout << "scheme             cycles    speedup  spin-frac  "
                 "sync-vars  verified";
    if (with_native)
        std::cout << "  | native-ms  progs/s  image";
    std::cout << "\n";
    for (auto kind : sync::allSyncSchemes()) {
        core::RunConfig cfg;
        cfg.machine.numProcs = procs;
        cfg.machine.syncRegisters = 4096;
        cfg.machine.fabric =
            (kind == sync::SchemeKind::referenceBased ||
             kind == sync::SchemeKind::instanceBased)
                ? sim::FabricKind::memory
                : sim::FabricKind::registers;
        core::ValueTrace sim_values;
        if (with_native)
            cfg.extraSink = &sim_values;
        core::TraceRecorder recorder;
        if (with_profile || with_timeline)
            cfg.tracer = &recorder;
        if (with_timeline)
            cfg.machine.timelineInterval = timeline_interval;

        if (dump_ir) {
            // Plan twice against throwaway machines: once with the
            // pipeline disabled (raw lowering) and once with the
            // transforms on, and disassemble the first iterations
            // of each so the passes' effect is readable.
            std::cout << "---- " << sync::schemeKindName(kind)
                      << ": lowered IR ----\n";
            for (bool transformed : {false, true}) {
                core::RunConfig pcfg = cfg;
                pcfg.passes.enabled = transformed;
                pcfg.passes.eliminateRedundantWaits = transformed;
                pcfg.passes.peephole = transformed;
                sim::Machine scratch(pcfg.machine);
                auto planned = core::planDoacross(
                    loop, kind, pcfg, scratch.fabric());
                std::cout << (transformed ? "after passes"
                                          : "before passes")
                          << " (" << planned.passStats.opsAfter
                          << " ops, " << planned.passStats.waitsAfter
                          << " waits):\n";
                std::size_t shown = 0;
                for (const auto &prog : planned.programs) {
                    if (shown++ == 2) {
                        std::cout << "  ... "
                                  << planned.programs.size() - 2
                                  << " more programs\n";
                        break;
                    }
                    std::cout << ir::disassemble(
                        prog, /*with_ids=*/true);
                }
            }
            std::cout << "\n";
        }

        auto r = core::runDoacross(loop, kind, cfg);
        if (!r.run.completed) {
            std::cout << sync::schemeKindName(kind)
                      << "  DEADLOCK\n";
            continue;
        }
        std::cout << sync::schemeKindName(kind) << "  "
                  << r.run.cycles << "  "
                  << r.run.speedupOver(seq) << "  "
                  << r.run.spinFraction() << "  "
                  << r.plan.numSyncVars << "  "
                  << (r.correct() ? "ok" : "VIOLATION") << " ("
                  << r.instancesChecked << " instances)";
        if (!r.correct()) {
            std::cout << "\n";
            return 1;
        }

        if (with_profile) {
            core::CriticalPath cp = core::criticalPath(
                graph,
                core::CriticalPathCosts::fromMachine(cfg.machine));
            profile_rows.push_back(
                {sync::schemeKindName(kind),
                 core::buildCriticalPathProfile(
                     recorder, r.run.cycles,
                     cp.achievableBound(procs))});
        }

        if (with_timeline) {
            timeline_rows.push_back({sync::schemeKindName(kind),
                                     core::buildTimeline(recorder)});
        }

        if (with_native) {
            native::NativeConfig ncfg;
            ncfg.numThreads = procs;
            auto nat =
                native::runDoacrossNative(loop, kind, cfg, ncfg);
            bool match = nat.correct() &&
                         nat.memory == sim_values.memory() &&
                         nat.reads == sim_values.reads();
            std::cout << "  | "
                      << static_cast<double>(nat.run.wallNanos) /
                             1e6
                      << "  " << nat.run.programsPerSec() << "  "
                      << (match ? "match" : "MISMATCH");
            if (!match) {
                std::cout << "\n";
                for (const auto &m : nat.violations)
                    std::cout << "  violation: " << m << "\n";
                for (const auto &m : nat.valueMismatches)
                    std::cout << "  value: " << m << "\n";
                return 1;
            }
        }
        std::cout << "\n";
    }

    if (!profile_rows.empty()) {
        std::cout << "\npath composition (% of achieved critical "
                     "path):\n";
        std::printf("%-18s %8s %6s %6s %6s %6s %6s %6s %6s  %s\n",
                    "scheme", "cycles", "gap%", "comp", "spin",
                    "sync", "stall", "disp", "prop", "hottest var");
        for (const auto &row : profile_rows) {
            const core::CriticalPathProfile &p = row.prof;
            auto pct = [&](sim::Tick part) {
                return p.achievedCycles
                           ? 100.0 * static_cast<double>(part) /
                                 static_cast<double>(p.achievedCycles)
                           : 0.0;
            };
            std::string hottest = "-";
            if (!p.varShares.empty()) {
                const auto &v = p.varShares.front();
                hottest = (v.label.empty()
                               ? "var" + std::to_string(v.var)
                               : v.label) +
                          " (" + std::to_string(v.cycles) + "cyc)";
            }
            std::printf(
                "%-18s %8llu %6.1f %6.1f %6.1f %6.1f %6.1f %6.1f "
                "%6.1f  %s\n",
                row.scheme.c_str(),
                static_cast<unsigned long long>(p.achievedCycles),
                p.gapPct(), pct(p.computeCycles), pct(p.spinCycles),
                pct(p.syncCycles), pct(p.stallCycles),
                pct(p.dispatchCycles), pct(p.propagationCycles),
                hottest.c_str());
        }
    }

    for (const auto &row : timeline_rows) {
        std::cout << "\n== " << row.scheme << " timeline ==\n";
        row.timeline.writeText(std::cout);
    }
    return 0;
}
