/**
 * @file
 * Example 2 of the paper: a doubly nested Doacross executed by
 * implicit coalescing (lpid = (i-1)*M + j) under the
 * process-oriented scheme, contrasted with the reference-based
 * data-oriented scheme that handles loop boundaries exactly but
 * pays per-element keys, key initialization, and O(r*d)
 * boundary-check cycles per iteration.
 *
 * Usage: nested_doacross [N] [M] [P]
 */

#include <cstdlib>
#include <iostream>

#include "core/runtime.hh"
#include "dep/dep_graph.hh"
#include "dep/transform.hh"
#include "workloads/nested.hh"

using namespace psync;

int
main(int argc, char **argv)
{
    long n = argc > 1 ? std::atol(argv[1]) : 24;
    long m = argc > 2 ? std::atol(argv[2]) : 24;
    unsigned procs = argc > 3 ? std::atoi(argv[3]) : 8;

    dep::Loop loop = workloads::makeNestedLoop(n, m);
    dep::DepGraph graph(loop);
    std::cout << graph.toString() << "\n";

    std::uint64_t extras = 0;
    for (const auto &d : graph.enforced())
        extras += dep::extraDepCount(loop, d);
    std::cout << "linearization adds " << extras
              << " boundary arcs the process scheme enforces "
                 "anyway\n\n";

    core::RunConfig pc_cfg;
    pc_cfg.machine.numProcs = procs;
    pc_cfg.machine.fabric = sim::FabricKind::registers;
    pc_cfg.scheme.numPcs = 2 * procs;

    core::RunConfig key_cfg;
    key_cfg.machine.numProcs = procs;
    key_cfg.machine.fabric = sim::FabricKind::memory;

    auto process = core::runDoacross(
        loop, sync::SchemeKind::processImproved, pc_cfg);
    auto reference = core::runDoacross(
        loop, sync::SchemeKind::referenceBased, key_cfg);

    if (!process.run.completed || !reference.run.completed) {
        std::cerr << "a run hit the tick limit\n";
        return 1;
    }
    if (!process.correct() || !reference.correct()) {
        std::cerr << "dependence violations detected\n";
        return 1;
    }

    std::cout << "scheme            cycles  +init     sync-vars  "
                 "storage-B\n";
    auto row = [](const char *name, const core::DoacrossResult &r) {
        std::cout << name << "  " << r.run.cycles << "  "
                  << r.totalWithInit() << "  " << r.plan.numSyncVars
                  << "  "
                  << r.plan.syncStorageBytes +
                         r.plan.renamedStorageBytes
                  << "\n";
    };
    row("process-improved", process);
    row("reference-based ", reference);

    std::cout << "\nprocess scheme: " << process.plan.numSyncVars
              << " PCs regardless of " << n << "x" << m
              << " iteration space; reference scheme keys grow "
                 "with the data and pay "
              << 5 * 2 * 2
              << " boundary-check cycles per iteration.\n";
    return 0;
}
