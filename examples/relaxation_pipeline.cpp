/**
 * @file
 * Example 1 of the paper: the four-point relaxation loop run as an
 * asynchronously pipelined Doacross (wait_PC/mark_PC around groups
 * of G inner iterations) versus the wavefront method with a
 * barrier between anti-diagonal fronts.
 *
 * Usage: relaxation_pipeline [N] [P] [G] [--trace out.json]
 *
 * With --trace, the pipelined run's cycle-level event trace is
 * written as Chrome trace-event JSON (open in Perfetto or
 * chrome://tracing).
 */

#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "core/runtime.hh"
#include "core/trace_check.hh"
#include "core/tracing.hh"
#include "dep/dep_graph.hh"
#include "workloads/relaxation.hh"

using namespace psync;

namespace {

sim::MachineConfig
machineConfig(unsigned procs)
{
    sim::MachineConfig cfg;
    cfg.numProcs = procs;
    cfg.fabric = sim::FabricKind::registers;
    cfg.syncRegisters = 1024;
    return cfg;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string trace_path;
    {
        int out = 1;
        for (int in = 1; in < argc; ++in) {
            if (std::strcmp(argv[in], "--trace") == 0 &&
                in + 1 < argc) {
                trace_path = argv[++in];
                continue;
            }
            argv[out++] = argv[in];
        }
        argc = out;
    }

    workloads::RelaxationSpec spec;
    spec.n = argc > 1 ? std::atol(argv[1]) : 64;
    unsigned procs = argc > 2 ? std::atoi(argv[2]) : 8;
    spec.group = argc > 3 ? std::atol(argv[3]) : 1;

    dep::Loop loop = workloads::makeRelaxationLoop(spec.n,
                                                   spec.stmtCost);
    dep::DataLayout layout(loop);
    dep::DepGraph graph(loop);

    core::TraceRecorder recorder;
    core::TraceRecorder *tracer =
        trace_path.empty() ? nullptr : &recorder;

    // Asynchronous pipelining (Fig. 5.1d).
    core::TraceChecker pipe_checker;
    sim::Machine pipe_machine(machineConfig(procs), &pipe_checker,
                              tracer);
    sync::PcFile pcs(pipe_machine.fabric(), 2 * procs);
    auto pipe_programs = workloads::buildPipelinedPrograms(
        pcs, loop, layout, spec);
    auto pipe = core::runProgramPool(
        pipe_machine, pipe_programs,
        core::SchedulePolicy::selfScheduling);
    auto pipe_violations =
        pipe_checker.verify(loop, graph.crossIteration());

    // Wavefront with butterfly barrier (Fig. 5.1c).
    core::TraceChecker wave_checker;
    sim::Machine wave_machine(machineConfig(procs), &wave_checker);
    sync::ButterflyBarrier barrier(wave_machine.fabric(), procs);
    auto wave_programs = workloads::buildWavefrontPrograms(
        barrier, procs, loop, layout, spec);
    auto wave =
        core::runPerProcessorPrograms(wave_machine, wave_programs);
    auto wave_violations =
        wave_checker.verify(loop, graph.crossIteration());

    if (!pipe.completed || !wave.completed) {
        std::cerr << "a run hit the tick limit\n";
        return 1;
    }
    if (!pipe_violations.empty() || !wave_violations.empty()) {
        std::cerr << "dependence violations detected\n";
        return 1;
    }

    std::cout << "relaxation " << spec.n << "x" << spec.n << ", P="
              << procs << ", G=" << spec.group << "\n\n";
    std::cout << "method        cycles   utilization  spin-frac  "
                 "sync-ops\n";
    auto row = [](const char *name, const core::RunResult &r) {
        std::cout << name << "  " << r.cycles << "   "
                  << r.utilization() << "    " << r.spinFraction()
                  << "   " << r.syncOps << "\n";
    };
    row("pipelined ", pipe);
    row("wavefront ", wave);
    std::cout << "\npipelined speedup over wavefront: "
              << static_cast<double>(wave.cycles) / pipe.cycles
              << "x\n";

    if (tracer) {
        std::ofstream os(trace_path);
        if (!os) {
            std::cerr << "cannot write " << trace_path << "\n";
            return 1;
        }
        recorder.writeChromeTrace(os);
        std::cout << "\nwrote " << recorder.eventCount()
                  << " trace events to " << trace_path
                  << " (open in Perfetto / chrome://tracing)\n";
    }
    return 0;
}
