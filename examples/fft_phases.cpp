/**
 * @file
 * Example 5 of the paper: FFT computation phases with local
 * communication. After each BASIC_FFT stage a processor exchanges
 * data with exactly one partner, so it synchronizes with that
 * partner alone (mark_PC + spin on the partner's PC) instead of
 * joining a global barrier. Under per-stage jitter the pairwise
 * scheme lets fast pairs run ahead.
 *
 * Usage: fft_phases [P] [rounds] [stage_cost] [jitter]
 */

#include <cstdlib>
#include <iostream>

#include "core/runtime.hh"
#include "workloads/fft.hh"

using namespace psync;

namespace {

core::RunResult
runMode(workloads::FftSync mode, const workloads::FftSpec &spec)
{
    sim::MachineConfig cfg;
    cfg.numProcs = spec.numProcs;
    cfg.fabric = sim::FabricKind::registers;
    cfg.syncRegisters = 2 * spec.numProcs + 8;
    sim::Machine machine(cfg);

    std::vector<std::vector<sim::Program>> progs;
    switch (mode) {
      case workloads::FftSync::pairwise: {
        sim::SyncVarId base =
            machine.fabric().allocate(spec.numProcs, 0);
        progs = workloads::buildFftPairwise(base, spec);
        break;
      }
      case workloads::FftSync::butterflyBarrier: {
        sync::ButterflyBarrier barrier(machine.fabric(),
                                       spec.numProcs);
        progs = workloads::buildFftButterfly(barrier, spec);
        break;
      }
      case workloads::FftSync::counterBarrier: {
        sync::CounterBarrier barrier(machine.fabric(),
                                     spec.numProcs);
        progs = workloads::buildFftCounter(barrier, spec);
        break;
      }
    }
    return core::runPerProcessorPrograms(machine, progs);
}

} // namespace

int
main(int argc, char **argv)
{
    workloads::FftSpec spec;
    spec.numProcs = argc > 1 ? std::atoi(argv[1]) : 16;
    spec.rounds = argc > 2 ? std::atoi(argv[2]) : 8;
    spec.stageCost = argc > 3 ? std::atol(argv[3]) : 64;
    spec.stageJitter = argc > 4 ? std::atol(argv[4]) : 32;

    std::cout << "FFT: P=" << spec.numProcs << " ("
              << workloads::fftStages(spec.numProcs)
              << " stages), rounds=" << spec.rounds << ", stage="
              << spec.stageCost << "+-" << spec.stageJitter
              << " cycles\n\n";

    auto pairwise = runMode(workloads::FftSync::pairwise, spec);
    auto butterfly =
        runMode(workloads::FftSync::butterflyBarrier, spec);
    auto counter = runMode(workloads::FftSync::counterBarrier, spec);
    if (!pairwise.completed || !butterfly.completed ||
        !counter.completed) {
        std::cerr << "tick limit hit\n";
        return 1;
    }

    std::cout << "sync per stage       cycles    sync-ops   "
                 "spin-frac\n";
    auto row = [](const char *name, const core::RunResult &r) {
        std::cout << name << "  " << r.cycles << "   " << r.syncOps
                  << "   " << r.spinFraction() << "\n";
    };
    row("pairwise (paper) ", pairwise);
    row("butterfly barrier", butterfly);
    row("counter barrier  ", counter);

    std::cout << "\npairwise sync advantage over a global counter "
                 "barrier: "
              << static_cast<double>(counter.cycles) /
                     pairwise.cycles
              << "x\n";
    return 0;
}
