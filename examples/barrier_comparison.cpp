/**
 * @file
 * Example 4 of the paper: the butterfly barrier built from
 * process-counter primitives versus the classic fetch&add counter
 * barrier, across processor counts, on both hardware
 * organizations. The counter barrier funnels every arrival and
 * every spin poll through one memory module — the hot spot the
 * butterfly avoids.
 *
 * Usage: barrier_comparison [episodes] [work] [jitter]
 */

#include <cstdlib>
#include <iostream>

#include "core/runtime.hh"
#include "workloads/butterfly.hh"

using namespace psync;

namespace {

core::RunResult
runBarrier(bool butterfly, unsigned procs, sim::FabricKind fabric,
           const workloads::BarrierSpec &spec)
{
    sim::MachineConfig cfg;
    cfg.numProcs = procs;
    cfg.fabric = fabric;
    cfg.syncRegisters = 2 * procs + 8;
    sim::Machine machine(cfg);

    std::vector<std::vector<sim::Program>> progs;
    if (butterfly) {
        sync::ButterflyBarrier barrier(machine.fabric(), procs);
        progs = workloads::buildButterflyPrograms(barrier, spec);
    } else {
        sync::CounterBarrier barrier(machine.fabric(), procs);
        progs = workloads::buildCounterBarrierPrograms(barrier, spec);
    }
    return core::runPerProcessorPrograms(machine, progs);
}

} // namespace

int
main(int argc, char **argv)
{
    workloads::BarrierSpec spec;
    spec.episodes = argc > 1 ? std::atoi(argv[1]) : 32;
    spec.workCost = argc > 2 ? std::atol(argv[2]) : 32;
    spec.workJitter = argc > 3 ? std::atol(argv[3]) : 32;

    std::cout << "episodes=" << spec.episodes << " work="
              << spec.workCost << "+-" << spec.workJitter << "\n\n";
    std::cout << "P    fabric     butterfly   counter    hot-spot"
                 "(ctr)\n";

    for (unsigned p : {2u, 4u, 8u, 16u, 32u}) {
        spec.numProcs = p;
        for (auto fabric : {sim::FabricKind::registers,
                            sim::FabricKind::memory}) {
            auto bf = runBarrier(true, p, fabric, spec);
            auto ctr = runBarrier(false, p, fabric, spec);
            if (!bf.completed || !ctr.completed) {
                std::cerr << "tick limit hit\n";
                return 1;
            }
            std::cout << p << "  " << sim::fabricKindName(fabric)
                      << "  " << bf.cycles << "  " << ctr.cycles
                      << "  " << ctr.hotSpotRatio << "\n";
        }
    }
    std::cout << "\nbutterfly needs no atomic fetch&add and no "
                 "single release flag; cycles stay flat in P per "
                 "episode (log P stages).\n";
    return 0;
}
