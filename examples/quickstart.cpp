/**
 * @file
 * Quickstart: take the paper's Fig. 2.1 loop from source form to a
 * synchronized parallel execution in five steps —
 *
 *   1. describe the loop (statements + affine array references);
 *   2. analyze its data dependences and eliminate covered arcs;
 *   3. pick a machine (processors, sync fabric);
 *   4. run it as a Doacross under a synchronization scheme;
 *   5. inspect the verified result.
 *
 * Usage: quickstart [N] [P] [X]
 *   N = trip count (default 256), P = processors (default 8),
 *   X = hardware process counters (default 16).
 */

#include <cstdlib>
#include <iostream>

#include "core/runtime.hh"
#include "dep/dep_graph.hh"
#include "workloads/fig21.hh"

using namespace psync;

int
main(int argc, char **argv)
{
    long n = argc > 1 ? std::atol(argv[1]) : 256;
    unsigned procs = argc > 2 ? std::atoi(argv[2]) : 8;
    unsigned num_pcs = argc > 3 ? std::atoi(argv[3]) : 16;

    // 1. The loop of Fig. 2.1.
    dep::Loop loop = workloads::makeFig21Loop(n);

    // 2. Its dependence graph, with coverage elimination.
    dep::DepGraph graph(loop);
    std::cout << graph.toString() << "\n";

    // 3. A small bus-based multiprocessor with synchronization
    //    registers and a broadcast sync bus (section 6 hardware).
    core::RunConfig cfg;
    cfg.machine.numProcs = procs;
    cfg.machine.fabric = sim::FabricKind::registers;
    cfg.scheme.numPcs = num_pcs;

    // 4. Sequential baseline, then the process-oriented Doacross.
    sim::Tick seq = core::sequentialCycles(loop, cfg.machine);
    core::DoacrossResult r = core::runDoacross(
        loop, sync::SchemeKind::processImproved, cfg);

    // 5. Results — the trace checker has already verified every
    //    cross-iteration dependence instance.
    if (!r.run.completed) {
        std::cerr << "simulation hit the tick limit (deadlock?)\n";
        return 1;
    }
    if (!r.correct()) {
        std::cerr << "dependence violations:\n";
        for (const auto &v : r.violations)
            std::cerr << "  " << v << "\n";
        return 1;
    }

    std::cout << "machine: P=" << procs << ", X=" << num_pcs
              << " process counters, register fabric\n"
              << "iterations:        " << n << "\n"
              << "sequential cycles: " << seq << "\n"
              << "parallel cycles:   " << r.run.cycles << "\n"
              << "speedup:           " << r.run.speedupOver(seq)
              << "\n"
              << "utilization:       " << r.run.utilization() << "\n"
              << "sync variables:    " << r.plan.numSyncVars
              << " (vs " << n + 4 << " keys for a data-oriented "
              << "scheme)\n"
              << "sync ops issued:   " << r.run.syncOps << "\n"
              << "sync-bus broadcasts " << r.run.syncBusBroadcasts
              << ", coalesced " << r.run.coalescedWrites << "\n"
              << "dependence instances verified: "
              << r.instancesChecked << "\n";
    return 0;
}
