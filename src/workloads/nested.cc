#include "workloads/nested.hh"

#include "workloads/common.hh"

namespace psync {
namespace workloads {

dep::Loop
makeNestedLoop(long n, long m, sim::Tick stmt_cost)
{
    dep::Loop loop;
    loop.name = "nested";
    loop.depth = 2;
    loop.outer = {1, n};
    loop.inner = {1, m};

    dep::Statement s1;
    s1.label = "S1";
    s1.cost = stmt_cost;
    s1.refs = {ref2d("A", 1, 0, 1, 0, true)};
    loop.body.push_back(s1);

    dep::Statement s2;
    s2.label = "S2";
    s2.cost = stmt_cost;
    s2.refs = {ref2d("A", 1, 0, 1, -1, false),
               ref2d("B", 1, 0, 1, 0, true)};
    loop.body.push_back(s2);

    dep::Statement s3;
    s3.label = "S3";
    s3.cost = stmt_cost;
    s3.refs = {ref2d("B", 1, -1, 1, -1, false),
               ref2d("C", 1, 0, 1, 0, true)};
    loop.body.push_back(s3);

    return loop;
}

} // namespace workloads
} // namespace psync
