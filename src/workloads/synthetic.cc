#include "workloads/synthetic.hh"

#include "sim/rng.hh"
#include "workloads/common.hh"

namespace psync {
namespace workloads {

dep::Loop
makeSyntheticLoop(const SyntheticSpec &spec)
{
    sim::Rng rng(spec.seed);

    dep::Loop loop;
    loop.name = "synthetic";
    loop.depth = 1;
    loop.outer = {1, spec.n};
    loop.seed = spec.seed * 1315423911ull + 7;

    unsigned num_branches = 0;
    bool any_write = false;

    for (unsigned s = 0; s < spec.numStatements; ++s) {
        dep::Statement stmt;
        stmt.label = "S" + std::to_string(s + 1);
        stmt.cost = static_cast<sim::Tick>(
            rng.range(spec.minCost, spec.maxCost));

        unsigned num_refs = 1 + static_cast<unsigned>(rng.below(3));
        for (unsigned r = 0; r < num_refs; ++r) {
            std::string array =
                "X" + std::to_string(rng.below(spec.numArrays));
            long offset =
                static_cast<long>(rng.below(2 * spec.maxOffset + 1)) -
                spec.maxOffset;
            dep::ArrayRef ref = ref1d(array.c_str(), offset,
                                      rng.chance(spec.writeProb));
            any_write = any_write || ref.isWrite;
            stmt.refs.push_back(ref);
        }

        if (spec.guardProb > 0 && rng.chance(spec.guardProb)) {
            stmt.guard = dep::Guard{
                static_cast<int>(num_branches),
                rng.chance(0.5)};
            ++num_branches;
            loop.branchProb.push_back(spec.takenProb);
        }
        loop.body.push_back(stmt);
    }

    // Guarantee at least one cross-iteration dependence source so
    // the loop is a genuine Doacross.
    if (!any_write && !loop.body.empty()) {
        loop.body.front().refs.front().isWrite = true;
        loop.body.front().guard = dep::Guard{};
    }
    return loop;
}

} // namespace workloads
} // namespace psync
