/**
 * @file
 * Example 2: a multiply-nested Doacross loop.
 *
 *   DO I = 1, N
 *     DO J = 1, M
 *       S1: A[I,J] = ...
 *       S2: B[I,J] = A[I,J-1] ...
 *       S3: C[I,J] = B[I-1,J-1] ...
 *
 * Flow dependences: S1->S2 with distance (0,1) and S2->S3 with
 * distance (1,1); after implicit coalescing (lpid = (i-1)*M + j)
 * the linearized distances are 1 and M+1, and the J-boundary
 * instances become the "extra dependences" (dashed in Fig. 5.2c)
 * the process-oriented scheme enforces but data-oriented schemes
 * do not need.
 */

#ifndef PSYNC_WORKLOADS_NESTED_HH
#define PSYNC_WORKLOADS_NESTED_HH

#include "dep/loop_ir.hh"

namespace psync {
namespace workloads {

/** Build the Example 2 loop. */
dep::Loop makeNestedLoop(long n, long m, sim::Tick stmt_cost = 8);

} // namespace workloads
} // namespace psync

#endif // PSYNC_WORKLOADS_NESTED_HH
