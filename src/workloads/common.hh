/**
 * @file
 * Shared builder helpers for the workload generators.
 *
 * Every workload used to hand-roll its own dep::ArrayRef
 * construction (`ref1` in branches, `refA` in fig21, `ref2` in
 * nested, verbose inline aggregates in relaxation/synthetic) and the
 * bulk-synchronous ones duplicated the per-(pid, step) jittered-cost
 * idiom. These helpers are the single home for both, so the affine
 * subscript convention (Subscript{iCoef, jCoef, offset}) is written
 * in one place.
 */

#ifndef PSYNC_WORKLOADS_COMMON_HH
#define PSYNC_WORKLOADS_COMMON_HH

#include <cstdint>

#include "dep/dependence.hh"
#include "sim/rng.hh"
#include "sim/types.hh"

namespace psync {
namespace workloads {

/** 1-D reference `array[I + offset]` (subscript coefficient 1). */
inline dep::ArrayRef
ref1d(const char *array, long offset, bool is_write)
{
    dep::ArrayRef ref;
    ref.array = array;
    ref.subs = {dep::Subscript{1, 0, offset}};
    ref.isWrite = is_write;
    return ref;
}

/**
 * 2-D reference `array[ci*I + oi, cj*J + oj]` — first subscript
 * runs over the outer index, second over the inner.
 */
inline dep::ArrayRef
ref2d(const char *array, int ci, long oi, int cj, long oj,
      bool is_write)
{
    dep::ArrayRef ref;
    ref.array = array;
    ref.subs = {dep::Subscript{ci, 0, oi}, dep::Subscript{0, cj, oj}};
    ref.isWrite = is_write;
    return ref;
}

/**
 * Deterministic per-(pid, step) work cost: `base`, or
 * `base + jitter` with probability 1/2. Seeding is a pure function
 * of (seed, pid, step) so a run is reproducible regardless of the
 * order programs are built or executed in.
 */
inline sim::Tick
jitteredCost(sim::Tick base, sim::Tick jitter, std::uint64_t seed,
             unsigned pid, unsigned step)
{
    if (jitter == 0)
        return base;
    sim::Rng rng(seed + pid * 7919u + step * 104729u);
    return base + (rng.chance(0.5) ? jitter : 0);
}

} // namespace workloads
} // namespace psync

#endif // PSYNC_WORKLOADS_COMMON_HH
