#include "workloads/relaxation.hh"

#include <algorithm>

#include "dep/transform.hh"
#include "sim/logging.hh"
#include "workloads/common.hh"

namespace psync {
namespace workloads {

dep::Loop
makeRelaxationLoop(long n, sim::Tick stmt_cost)
{
    dep::Loop loop;
    loop.name = "relaxation";
    loop.depth = 2;
    loop.outer = {2, n};
    loop.inner = {2, n};

    dep::Statement s1;
    s1.label = "S1";
    s1.cost = stmt_cost;
    s1.refs = {ref2d("A", 1, -1, 1, 0, false),  // A[I-1, J]
               ref2d("A", 1, 0, 1, -1, false),  // A[I, J-1]
               ref2d("A", 1, 0, 1, 0, true)};   // A[I, J]
    loop.body.push_back(s1);
    return loop;
}

namespace {

/** Emit one relaxation cell, tagged with its pseudo-loop lpid. */
void
emitCell(const dep::Loop &loop, const dep::DataLayout &layout, long i,
         long j, sim::Tick cost, sim::Program &prog)
{
    const dep::Statement &stmt = loop.body[0];
    std::uint64_t tag = loop.lpidOf(i, j);

    sim::Op start = sim::Op::mkStmtStart(0);
    start.iterTag = tag;
    prog.ops.push_back(start);
    for (unsigned r = 0; r < stmt.refs.size(); ++r) {
        if (stmt.refs[r].isWrite)
            continue;
        sim::Op op = sim::Op::mkData(
            false, layout.addrOf(stmt.refs[r], i, j), 0,
            static_cast<std::uint16_t>(r));
        op.iterTag = tag;
        prog.ops.push_back(op);
    }
    if (cost > 0)
        prog.ops.push_back(sim::Op::mkCompute(cost));
    for (unsigned r = 0; r < stmt.refs.size(); ++r) {
        if (!stmt.refs[r].isWrite)
            continue;
        sim::Op op = sim::Op::mkData(
            true, layout.addrOf(stmt.refs[r], i, j), 0,
            static_cast<std::uint16_t>(r));
        op.iterTag = tag;
        prog.ops.push_back(op);
    }
    sim::Op end = sim::Op::mkStmtEnd(0);
    end.iterTag = tag;
    prog.ops.push_back(end);
}

} // namespace

std::vector<sim::Program>
buildPipelinedPrograms(const sync::PcFile &pcs, const dep::Loop &loop,
                       const dep::DataLayout &layout,
                       const RelaxationSpec &spec)
{
    std::vector<sim::Program> programs;
    const long num_procs_outer = loop.outer.count();
    const long j_lo = loop.inner.lo;
    const long j_hi = loop.inner.hi;
    const long g = std::max<long>(1, spec.group);

    for (long p = 1; p <= num_procs_outer; ++p) {
        long i = loop.outer.lo + (p - 1);
        sim::Program prog;
        prog.iter = static_cast<std::uint64_t>(p);
        bool acquired = false;

        for (long k = j_lo; k <= j_hi; k += g) {
            long k_end = std::min(k + g - 1, j_hi);
            // wait_PC(1, k): until process i-1 completes group k.
            if (p > 1) {
                prog.ops.push_back(pcs.opWait(
                    static_cast<std::uint64_t>(p), 1,
                    static_cast<std::uint32_t>(k)));
            }
            for (long j = k; j <= k_end; ++j)
                emitCell(loop, layout, i, j, spec.stmtCost, prog);
            if (k_end < j_hi) {
                // mark_PC(k) — not the last group.
                if (spec.improved) {
                    prog.ops.push_back(pcs.opMark(
                        static_cast<std::uint64_t>(p),
                        static_cast<std::uint32_t>(k)));
                } else {
                    if (!acquired) {
                        prog.ops.push_back(pcs.opGet(
                            static_cast<std::uint64_t>(p)));
                        acquired = true;
                    }
                    prog.ops.push_back(pcs.opSet(
                        static_cast<std::uint64_t>(p),
                        static_cast<std::uint32_t>(k)));
                }
            }
        }
        // transfer_PC / release_PC after the last group; the
        // <p+X, 0> value covers every remaining step.
        if (spec.improved) {
            prog.ops.push_back(
                pcs.opTransfer(static_cast<std::uint64_t>(p)));
        } else {
            if (!acquired) {
                prog.ops.push_back(
                    pcs.opGet(static_cast<std::uint64_t>(p)));
            }
            prog.ops.push_back(
                pcs.opRelease(static_cast<std::uint64_t>(p)));
        }
        programs.push_back(std::move(prog));
    }
    return programs;
}

long
effectiveScGroup(const RelaxationSpec &spec, unsigned avail_scs)
{
    long inner = spec.n - 1; // inner.count()
    long g = std::max<long>(1, spec.group);
    long groups = (inner + g - 1) / g;
    if (groups <= static_cast<long>(avail_scs))
        return g;
    return (inner + avail_scs - 1) / avail_scs;
}

unsigned
requiredScs(const RelaxationSpec &spec, unsigned avail_scs)
{
    long inner = spec.n - 1;
    long g = effectiveScGroup(spec, avail_scs);
    return static_cast<unsigned>((inner + g - 1) / g);
}

std::vector<sim::Program>
buildScPipelinedPrograms(sim::SyncVarId sc_base, unsigned avail_scs,
                         const dep::Loop &loop,
                         const dep::DataLayout &layout,
                         const RelaxationSpec &spec)
{
    std::vector<sim::Program> programs;
    const long num_procs_outer = loop.outer.count();
    const long j_lo = loop.inner.lo;
    const long j_hi = loop.inner.hi;
    const long g = effectiveScGroup(spec, avail_scs);

    for (long p = 1; p <= num_procs_outer; ++p) {
        long i = loop.outer.lo + (p - 1);
        sim::Program prog;
        prog.iter = static_cast<std::uint64_t>(p);

        unsigned group_idx = 0;
        for (long k = j_lo; k <= j_hi; k += g, ++group_idx) {
            long k_end = std::min(k + g - 1, j_hi);
            sim::SyncVarId sc = sc_base + group_idx;
            // Await(1, group): SC[group] >= p-1.
            if (p > 1) {
                prog.ops.push_back(sim::Op::mkWaitGE(
                    sc, static_cast<sim::SyncWord>(p - 1)));
            }
            for (long j = k; j <= k_end; ++j)
                emitCell(loop, layout, i, j, spec.stmtCost, prog);
            // Advance(group): wait SC == p-1, then set to p.
            prog.ops.push_back(sim::Op::mkWaitGE(
                sc, static_cast<sim::SyncWord>(p - 1)));
            prog.ops.push_back(sim::Op::mkWrite(
                sc, static_cast<sim::SyncWord>(p)));
        }
        programs.push_back(std::move(prog));
    }
    return programs;
}

namespace {

template <typename EmitBarrier>
std::vector<std::vector<sim::Program>>
buildWavefrontCommon(unsigned num_procs, const dep::Loop &loop,
                     const dep::DataLayout &layout,
                     const RelaxationSpec &spec,
                     EmitBarrier emit_barrier)
{
    auto fronts = dep::makeWavefronts(loop.outer, loop.inner);
    std::vector<std::vector<sim::Program>> per_proc(num_procs);

    for (unsigned pid = 0; pid < num_procs; ++pid) {
        sim::Program prog;
        prog.iter = pid + 1;
        for (size_t w = 0; w < fronts.size(); ++w) {
            const auto &cells = fronts[w];
            for (size_t c = pid; c < cells.size(); c += num_procs) {
                emitCell(loop, layout, cells[c].first,
                         cells[c].second, spec.stmtCost, prog);
            }
            emit_barrier(prog, pid, static_cast<unsigned>(w) + 1);
        }
        per_proc[pid].push_back(std::move(prog));
    }
    return per_proc;
}

} // namespace

std::vector<std::vector<sim::Program>>
buildWavefrontPrograms(const sync::ButterflyBarrier &barrier,
                       unsigned num_procs, const dep::Loop &loop,
                       const dep::DataLayout &layout,
                       const RelaxationSpec &spec)
{
    return buildWavefrontCommon(
        num_procs, loop, layout, spec,
        [&barrier](sim::Program &prog, unsigned pid,
                   unsigned episode) {
            barrier.emit(prog, pid, episode);
        });
}

std::vector<std::vector<sim::Program>>
buildWavefrontProgramsCtr(const sync::CounterBarrier &barrier,
                          unsigned num_procs, const dep::Loop &loop,
                          const dep::DataLayout &layout,
                          const RelaxationSpec &spec)
{
    return buildWavefrontCommon(
        num_procs, loop, layout, spec,
        [&barrier](sim::Program &prog, unsigned pid,
                   unsigned episode) {
            (void)pid;
            barrier.emit(prog, episode);
        });
}

} // namespace workloads
} // namespace psync
