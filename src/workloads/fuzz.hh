/**
 * @file
 * Seeded random Doacross generator for the differential fuzzer.
 *
 * Unlike workloads/synthetic (depth-1 only, tuned for scaling
 * benches), this generator draws from the full size-bounded grammar
 * of dep/loop_text: depth 1 or 2 nests, mixed read/write affine
 * references with random constant dependence distances, branch
 * guards with random taken probabilities, and jittered statement
 * costs. Every loop is a pure function of (campaignSeed, caseIndex),
 * so a fuzz campaign replays identically on any host, and every
 * generated loop prints through dep::printLoop for repro bundles.
 *
 * Generated subscripts keep every reference pair at a constant
 * dependence distance, so dep::analyze never bails to
 * nonConstantPairs and every scheme can synchronize the loop
 * exactly — divergence between backends is then always a bug, never
 * an artifact of non-constant distances. Coefficients need not be
 * unit, though: each (array, dimension) draws one coefficient
 * (non-unit with probability nonUnitCoeffProb) shared by every
 * reference to that array, and offsets are drawn as multiples of
 * it, so strided subscripts like X[3i-3] vs X[3i+6] exercise the
 * analyzer's coefficient division and the strided address paths
 * while the distance stays the integer constant (offset delta /
 * coefficient).
 */

#ifndef PSYNC_WORKLOADS_FUZZ_HH
#define PSYNC_WORKLOADS_FUZZ_HH

#include <cstdint>

#include "dep/loop_ir.hh"

namespace psync {
namespace workloads {

/** Size bounds on the grammar the fuzzer draws from. */
struct FuzzLimits
{
    long maxOuterTrip = 16;
    long maxInnerTrip = 6;
    /** Probability the nest is depth 2. */
    double depth2Prob = 0.4;
    unsigned maxStatements = 6;
    unsigned maxArrays = 3;
    unsigned maxRefsPerStmt = 3;
    /**
     * Subscript offsets drawn from [-maxOffset, +maxOffset] scaled
     * by the dimension's coefficient (so distances stay integral).
     */
    int maxOffset = 3;
    /**
     * Probability a given (array, dimension) uses a non-unit
     * subscript coefficient; the coefficient is shared by every
     * reference to that array so distances remain constant.
     */
    double nonUnitCoeffProb = 0.35;
    /** Coefficients drawn from [2, maxCoeff] when non-unit. */
    int maxCoeff = 3;
    double writeProb = 0.45;
    /** Probability a statement sits under a branch guard. */
    double guardProb = 0.3;
    sim::Tick minCost = 1;
    sim::Tick maxCost = 12;
};

/**
 * Generate fuzz case `index` of the campaign `seed`. The same
 * (seed, index, limits) always yields the same loop.
 */
dep::Loop makeFuzzLoop(std::uint64_t seed, std::uint64_t index,
                       const FuzzLimits &limits = FuzzLimits{});

} // namespace workloads
} // namespace psync

#endif // PSYNC_WORKLOADS_FUZZ_HH
