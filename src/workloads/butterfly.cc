#include "workloads/butterfly.hh"

#include "workloads/common.hh"

namespace psync {
namespace workloads {

namespace {

sim::Tick
episodeWork(const BarrierSpec &spec, unsigned pid, unsigned episode)
{
    return jitteredCost(spec.workCost, spec.workJitter, spec.seed,
                        pid, episode);
}

template <typename EmitBarrier>
std::vector<std::vector<sim::Program>>
buildCommon(const BarrierSpec &spec, EmitBarrier emit_barrier)
{
    std::vector<std::vector<sim::Program>> per_proc(spec.numProcs);
    for (unsigned pid = 0; pid < spec.numProcs; ++pid) {
        sim::Program prog;
        prog.iter = pid + 1;
        for (unsigned e = 1; e <= spec.episodes; ++e) {
            prog.ops.push_back(
                sim::Op::mkCompute(episodeWork(spec, pid, e)));
            emit_barrier(prog, pid, e);
        }
        per_proc[pid].push_back(std::move(prog));
    }
    return per_proc;
}

} // namespace

std::vector<std::vector<sim::Program>>
buildButterflyPrograms(const sync::ButterflyBarrier &barrier,
                       const BarrierSpec &spec)
{
    return buildCommon(spec, [&barrier](sim::Program &prog,
                                        unsigned pid,
                                        unsigned episode) {
        barrier.emit(prog, pid, episode);
    });
}

std::vector<std::vector<sim::Program>>
buildCounterBarrierPrograms(const sync::CounterBarrier &barrier,
                            const BarrierSpec &spec)
{
    return buildCommon(spec, [&barrier](sim::Program &prog,
                                        unsigned pid,
                                        unsigned episode) {
        (void)pid;
        barrier.emit(prog, episode);
    });
}

std::vector<std::vector<sim::Program>>
buildDisseminationPrograms(const sync::DisseminationBarrier &barrier,
                           const BarrierSpec &spec)
{
    return buildCommon(spec, [&barrier](sim::Program &prog,
                                        unsigned pid,
                                        unsigned episode) {
        barrier.emit(prog, pid, episode);
    });
}

} // namespace workloads
} // namespace psync
