/**
 * @file
 * Example 4: barrier workloads — repeated barrier episodes with
 * optional per-processor work jitter between them, comparing the
 * butterfly barrier on process counters against the counter-based
 * hot-spot barrier.
 */

#ifndef PSYNC_WORKLOADS_BUTTERFLY_HH
#define PSYNC_WORKLOADS_BUTTERFLY_HH

#include <vector>

#include "sim/program.hh"
#include "sync/barrier.hh"

namespace psync {
namespace workloads {

/** Parameters of a barrier stress workload. */
struct BarrierSpec
{
    unsigned numProcs = 8;
    unsigned episodes = 16;
    /** Compute cycles between consecutive barriers. */
    sim::Tick workCost = 32;
    /** Extra cycles added with probability 1/2, per episode. */
    sim::Tick workJitter = 0;
    std::uint64_t seed = 31;
};

/** Per-processor programs using the butterfly barrier. */
std::vector<std::vector<sim::Program>>
buildButterflyPrograms(const sync::ButterflyBarrier &barrier,
                       const BarrierSpec &spec);

/** Per-processor programs using the counter barrier. */
std::vector<std::vector<sim::Program>>
buildCounterBarrierPrograms(const sync::CounterBarrier &barrier,
                            const BarrierSpec &spec);

/** Per-processor programs using the dissemination barrier. */
std::vector<std::vector<sim::Program>>
buildDisseminationPrograms(const sync::DisseminationBarrier &barrier,
                           const BarrierSpec &spec);

} // namespace workloads
} // namespace psync

#endif // PSYNC_WORKLOADS_BUTTERFLY_HH
