#include "workloads/branches.hh"

#include "workloads/common.hh"

namespace psync {
namespace workloads {

dep::Loop
makeBranchLoop(long n, double taken_prob, sim::Tick stmt_cost,
               sim::Tick arm_cost, sim::Tick tail_cost,
               std::uint64_t seed)
{
    dep::Loop loop;
    loop.name = "branches";
    loop.depth = 1;
    loop.outer = {1, n};
    loop.branchProb = {taken_prob};
    loop.seed = seed;

    // Sinks come first so they reach their waits quickly; the
    // guarded sources sit mid-body; a heavy unguarded statement
    // separates them from the last source, so a deferred signal
    // (covered only by the final transfer) keeps sinks waiting
    // through the tail, while the early placement releases them at
    // the branch.
    dep::Statement s1; // sink of the taken-arm source, d = 2
    s1.label = "S1";
    s1.cost = stmt_cost;
    s1.refs = {ref1d("B", -2, false)};
    loop.body.push_back(s1);

    dep::Statement s2; // sink of the untaken-arm source, d = 3
    s2.label = "S2";
    s2.cost = stmt_cost;
    s2.refs = {ref1d("C", -3, false)};
    loop.body.push_back(s2);

    dep::Statement s3; // unconditional source+sink: A[I] = A[I-1]
    s3.label = "S3";
    s3.cost = stmt_cost;
    s3.refs = {ref1d("A", -1, false), ref1d("A", 0, true)};
    loop.body.push_back(s3);

    dep::Statement s4; // taken arm: B[I] = ...
    s4.label = "S4";
    s4.cost = arm_cost;
    s4.refs = {ref1d("B", 0, true)};
    s4.guard = dep::Guard{0, true};
    loop.body.push_back(s4);

    dep::Statement s5; // else arm: C[I] = ...
    s5.label = "S5";
    s5.cost = arm_cost;
    s5.refs = {ref1d("C", 0, true)};
    s5.guard = dep::Guard{0, false};
    loop.body.push_back(s5);

    dep::Statement s6; // heavy tail between the arms and the last
                       // source
    s6.label = "S6";
    s6.cost = tail_cost;
    loop.body.push_back(s6);

    dep::Statement s7; // last source: E[I] = E[I-1] ...
    s7.label = "S7";
    s7.cost = stmt_cost;
    s7.refs = {ref1d("E", -1, false), ref1d("E", 0, true)};
    loop.body.push_back(s7);

    return loop;
}

} // namespace workloads
} // namespace psync
