#include "workloads/fuzz.hh"

#include <string>

#include "sim/rng.hh"

namespace psync {
namespace workloads {

namespace {

/** Decorrelate campaign seed and case index into one Rng stream. */
std::uint64_t
caseStream(std::uint64_t seed, std::uint64_t index)
{
    std::uint64_t z = seed ^ (index * 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

} // namespace

dep::Loop
makeFuzzLoop(std::uint64_t seed, std::uint64_t index,
             const FuzzLimits &limits)
{
    sim::Rng rng(caseStream(seed, index));

    dep::Loop loop;
    loop.name = "fuzz-s" + std::to_string(seed) + "-c" +
                std::to_string(index);
    loop.depth = rng.chance(limits.depth2Prob) ? 2 : 1;
    loop.outer = {1, static_cast<long>(rng.range(
                         2, static_cast<std::uint64_t>(
                                limits.maxOuterTrip)))};
    if (loop.depth == 2)
        loop.inner = {1, static_cast<long>(rng.range(
                             2, static_cast<std::uint64_t>(
                                    limits.maxInnerTrip)))};
    loop.seed = rng.next() | 1;

    unsigned num_stmts = static_cast<unsigned>(
        rng.range(1, limits.maxStatements));
    unsigned num_arrays = static_cast<unsigned>(
        rng.range(1, limits.maxArrays));

    // One coefficient per (array, dimension), shared by every
    // reference to that array: matching coefficients plus
    // coefficient-multiple offsets keep every pair at a constant
    // integer distance (delta / coeff), so non-unit strides never
    // push the analyzer into nonConstantPairs. Coefficients come
    // from their own decorrelated stream so nonUnitCoeffProb = 0
    // regenerates pre-stride campaigns byte-identically (the main
    // stream never sees the coefficient draws).
    sim::Rng coeff_rng(
        caseStream(seed ^ 0xa0761d6478bd642full, index));
    auto draw_coeff = [&]() {
        if (limits.maxCoeff < 2 ||
            !coeff_rng.chance(limits.nonUnitCoeffProb))
            return 1;
        return 2 + static_cast<int>(
                       coeff_rng.below(static_cast<std::uint64_t>(
                           limits.maxCoeff - 1)));
    };
    std::vector<int> coeff_i(num_arrays), coeff_j(num_arrays);
    for (unsigned a = 0; a < num_arrays; ++a) {
        coeff_i[a] = draw_coeff();
        coeff_j[a] = loop.depth == 2 ? draw_coeff() : 1;
    }

    auto draw_offset = [&](int coeff) {
        return coeff *
               (static_cast<long>(
                    rng.below(2 * limits.maxOffset + 1)) -
                limits.maxOffset);
    };

    bool any_plain_write = false;
    for (unsigned s = 0; s < num_stmts; ++s) {
        dep::Statement stmt;
        stmt.label = "S" + std::to_string(s + 1);
        stmt.cost = static_cast<sim::Tick>(
            rng.range(limits.minCost, limits.maxCost));

        unsigned num_refs = static_cast<unsigned>(
            rng.range(1, limits.maxRefsPerStmt));
        for (unsigned r = 0; r < num_refs; ++r) {
            dep::ArrayRef ref;
            unsigned array = static_cast<unsigned>(
                rng.below(num_arrays));
            ref.array = "X" + std::to_string(array);
            ref.isWrite = rng.chance(limits.writeProb);
            ref.subs.push_back(dep::Subscript{
                coeff_i[array], 0,
                draw_offset(coeff_i[array])});
            if (loop.depth == 2)
                ref.subs.push_back(dep::Subscript{
                    0, coeff_j[array],
                    draw_offset(coeff_j[array])});
            stmt.refs.push_back(ref);
        }

        if (rng.chance(limits.guardProb)) {
            stmt.guard = dep::Guard{
                static_cast<int>(loop.branchProb.size()),
                rng.chance(0.5)};
            loop.branchProb.push_back(
                static_cast<double>(1 + rng.below(9)) / 10.0);
        } else {
            any_plain_write =
                any_plain_write ||
                [&] {
                    for (const dep::ArrayRef &ref : stmt.refs)
                        if (ref.isWrite)
                            return true;
                    return false;
                }();
        }
        loop.body.push_back(stmt);
    }

    // Guarantee at least one unconditional write so the loop always
    // has a cross-iteration dependence source and a genuine memory
    // image (and instance-based renaming has something to rename).
    if (!any_plain_write) {
        loop.body.front().refs.front().isWrite = true;
        loop.body.front().guard = dep::Guard{};
    }
    return loop;
}

} // namespace workloads
} // namespace psync
