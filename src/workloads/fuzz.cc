#include "workloads/fuzz.hh"

#include <string>

#include "sim/rng.hh"

namespace psync {
namespace workloads {

namespace {

/** Decorrelate campaign seed and case index into one Rng stream. */
std::uint64_t
caseStream(std::uint64_t seed, std::uint64_t index)
{
    std::uint64_t z = seed ^ (index * 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

} // namespace

dep::Loop
makeFuzzLoop(std::uint64_t seed, std::uint64_t index,
             const FuzzLimits &limits)
{
    sim::Rng rng(caseStream(seed, index));

    dep::Loop loop;
    loop.name = "fuzz-s" + std::to_string(seed) + "-c" +
                std::to_string(index);
    loop.depth = rng.chance(limits.depth2Prob) ? 2 : 1;
    loop.outer = {1, static_cast<long>(rng.range(
                         2, static_cast<std::uint64_t>(
                                limits.maxOuterTrip)))};
    if (loop.depth == 2)
        loop.inner = {1, static_cast<long>(rng.range(
                             2, static_cast<std::uint64_t>(
                                    limits.maxInnerTrip)))};
    loop.seed = rng.next() | 1;

    unsigned num_stmts = static_cast<unsigned>(
        rng.range(1, limits.maxStatements));
    unsigned num_arrays = static_cast<unsigned>(
        rng.range(1, limits.maxArrays));

    auto draw_offset = [&]() {
        return static_cast<long>(
                   rng.below(2 * limits.maxOffset + 1)) -
               limits.maxOffset;
    };

    bool any_plain_write = false;
    for (unsigned s = 0; s < num_stmts; ++s) {
        dep::Statement stmt;
        stmt.label = "S" + std::to_string(s + 1);
        stmt.cost = static_cast<sim::Tick>(
            rng.range(limits.minCost, limits.maxCost));

        unsigned num_refs = static_cast<unsigned>(
            rng.range(1, limits.maxRefsPerStmt));
        for (unsigned r = 0; r < num_refs; ++r) {
            dep::ArrayRef ref;
            ref.array = "X" + std::to_string(rng.below(num_arrays));
            ref.isWrite = rng.chance(limits.writeProb);
            // Unit coefficients per dimension keep every reference
            // pair at a constant dependence distance, so the
            // analyzer never bails to nonConstantPairs and every
            // scheme can cover the loop.
            ref.subs.push_back(dep::Subscript{1, 0, draw_offset()});
            if (loop.depth == 2)
                ref.subs.push_back(
                    dep::Subscript{0, 1, draw_offset()});
            stmt.refs.push_back(ref);
        }

        if (rng.chance(limits.guardProb)) {
            stmt.guard = dep::Guard{
                static_cast<int>(loop.branchProb.size()),
                rng.chance(0.5)};
            loop.branchProb.push_back(
                static_cast<double>(1 + rng.below(9)) / 10.0);
        } else {
            any_plain_write =
                any_plain_write ||
                [&] {
                    for (const dep::ArrayRef &ref : stmt.refs)
                        if (ref.isWrite)
                            return true;
                    return false;
                }();
        }
        loop.body.push_back(stmt);
    }

    // Guarantee at least one unconditional write so the loop always
    // has a cross-iteration dependence source and a genuine memory
    // image (and instance-based renaming has something to rename).
    if (!any_plain_write) {
        loop.body.front().refs.front().isWrite = true;
        loop.body.front().guard = dep::Guard{};
    }
    return loop;
}

} // namespace workloads
} // namespace psync
