/**
 * @file
 * The paper's running example: the Fig. 2.1 loop.
 *
 *   DO I = 1, N
 *     S1: A[I+3] = ...
 *     S2: ...    = A[I+1]
 *     S3: ...    = A[I+2]
 *     S4: A[I]   = ...
 *     S5: ...    = A[I-1]
 *   END DO
 *
 * Its dependence graph (Fig. 2.1b) has flow S1->S2 (d=2),
 * S1->S3 (d=1), S4->S5 (d=1); anti S2->S4 (d=1), S3->S4 (d=2);
 * output S1->S4 (d=3), which is covered by S1->S3 and S3->S4.
 */

#ifndef PSYNC_WORKLOADS_FIG21_HH
#define PSYNC_WORKLOADS_FIG21_HH

#include "dep/loop_ir.hh"

namespace psync {
namespace workloads {

/**
 * Build the Fig. 2.1 loop.
 * @param n          trip count
 * @param stmt_cost  compute cycles per statement
 */
dep::Loop makeFig21Loop(long n, sim::Tick stmt_cost = 8);

/**
 * A jittered variant: statement costs vary pseudo-randomly per
 * statement instance by up to `jitter` extra cycles, modeled as a
 * per-iteration guard-free cost perturbation. Used to expose the
 * statement-oriented scheme's serialization when one process is
 * delayed (section 4).
 *
 * Implementation note: per-instance cost variation is expressed by
 * splitting each statement's cost between a fixed part and a
 * branch-guarded extra-cost statement with no references.
 */
dep::Loop makeFig21JitterLoop(long n, sim::Tick stmt_cost,
                              sim::Tick jitter_cost,
                              double jitter_prob,
                              std::uint64_t seed = 17);

} // namespace workloads
} // namespace psync

#endif // PSYNC_WORKLOADS_FIG21_HH
