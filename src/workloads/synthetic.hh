/**
 * @file
 * Synthetic Doacross loops: randomly generated statement lists
 * with constant-distance array references, used by the property
 * tests (every scheme must synchronize every generated loop
 * correctly) and by scaling benches.
 */

#ifndef PSYNC_WORKLOADS_SYNTHETIC_HH
#define PSYNC_WORKLOADS_SYNTHETIC_HH

#include "dep/loop_ir.hh"

namespace psync {
namespace workloads {

/** Shape of a generated loop. */
struct SyntheticSpec
{
    long n = 64;
    unsigned numStatements = 4;
    unsigned numArrays = 2;
    /** Subscript offsets drawn from [-maxOffset, +maxOffset]. */
    int maxOffset = 3;
    /** Probability each reference is a write. */
    double writeProb = 0.4;
    sim::Tick minCost = 2;
    sim::Tick maxCost = 12;
    /** Probability a statement is guarded by a branch. */
    double guardProb = 0.0;
    /** Taken probability of each branch. */
    double takenProb = 0.5;
    std::uint64_t seed = 1;
};

/** Generate a random depth-1 Doacross loop. */
dep::Loop makeSyntheticLoop(const SyntheticSpec &spec);

} // namespace workloads
} // namespace psync

#endif // PSYNC_WORKLOADS_SYNTHETIC_HH
