/**
 * @file
 * Example 1: a Doacross loop enclosing a serial loop — the
 * four-point relaxation kernel
 *
 *   DO I = 2, N
 *     DO J = 2, N
 *       S1: A[I,J] = A[I-1,J] + A[I,J-1]
 *
 * executed three ways:
 *  - asynchronous pipelining (Fig. 5.1d): the outer loop is a
 *    Doacross, the inner loop runs serially inside each process
 *    with a wait_PC/mark_PC pair per group of G inner iterations;
 *  - the wavefront method (Fig. 5.1c): anti-diagonal fronts with a
 *    barrier between consecutive fronts;
 *  - a statement-counter pipeline, which needs one SC per inner
 *    sync point ((N-1)/G of them) and so degrades when the SC file
 *    is small.
 */

#ifndef PSYNC_WORKLOADS_RELAXATION_HH
#define PSYNC_WORKLOADS_RELAXATION_HH

#include <vector>

#include "dep/loop_ir.hh"
#include "sim/program.hh"
#include "sim/sync_fabric.hh"
#include "sync/barrier.hh"
#include "sync/pc_file.hh"

namespace psync {
namespace workloads {

/** The relaxation loop as analyzable IR (for deps and layout). */
dep::Loop makeRelaxationLoop(long n, sim::Tick stmt_cost = 8);

/** Parameters shared by the relaxation program builders. */
struct RelaxationSpec
{
    long n = 32;
    sim::Tick stmtCost = 8;
    /** Inner iterations per synchronization (G of Fig. 5.1b). */
    long group = 1;
    /** Improved (mark/transfer) vs basic (set/release) primitives. */
    bool improved = true;
};

/**
 * Asynchronous pipelined programs, one per outer iteration
 * (process p = i-1, 1-based). Access tags use the lpids of
 * makeRelaxationLoop for trace checking.
 */
std::vector<sim::Program>
buildPipelinedPrograms(const sync::PcFile &pcs, const dep::Loop &loop,
                       const dep::DataLayout &layout,
                       const RelaxationSpec &spec);

/**
 * Statement-counter pipelined programs: one SC per group of inner
 * iterations, at most `avail_scs` of them (the group size grows to
 * fit — the paper's "performs poorly when the number of SC's is
 * limited"). `sc_base` must point at ceil((N-1)/group') counters
 * allocated by the caller via requiredScs().
 */
std::vector<sim::Program>
buildScPipelinedPrograms(sim::SyncVarId sc_base, unsigned avail_scs,
                         const dep::Loop &loop,
                         const dep::DataLayout &layout,
                         const RelaxationSpec &spec);

/** Statement counters the SC pipeline will use for a given spec. */
unsigned requiredScs(const RelaxationSpec &spec, unsigned avail_scs);

/** Effective group size the SC pipeline is forced to. */
long effectiveScGroup(const RelaxationSpec &spec, unsigned avail_scs);

/**
 * Wavefront programs, one list per processor: each front's cells
 * are dealt round-robin over P processors and a barrier episode
 * separates consecutive fronts.
 */
std::vector<std::vector<sim::Program>>
buildWavefrontPrograms(const sync::ButterflyBarrier &barrier,
                       unsigned num_procs, const dep::Loop &loop,
                       const dep::DataLayout &layout,
                       const RelaxationSpec &spec);

/** Wavefront with the hot-spot counter barrier instead. */
std::vector<std::vector<sim::Program>>
buildWavefrontProgramsCtr(const sync::CounterBarrier &barrier,
                          unsigned num_procs, const dep::Loop &loop,
                          const dep::DataLayout &layout,
                          const RelaxationSpec &spec);

} // namespace workloads
} // namespace psync

#endif // PSYNC_WORKLOADS_RELAXATION_HH
