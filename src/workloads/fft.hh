/**
 * @file
 * Example 5: phases of computation with local communication — an
 * FFT whose data is partitioned into one chunk per processor. Each
 * of the log2(P) stages performs BASIC_FFT on the local chunk and
 * exchanges data with exactly one partner (pid xor 2^(stage-1)),
 * so after each stage a processor need only synchronize with that
 * partner instead of joining a global barrier:
 *
 *   fft(pid, P):
 *     load_index(pid)
 *     do i = 1, log(P)
 *       BASIC_FFT(pid, i, P)
 *       mark_PC(i)
 *       while (PC[pid xor 2^(i-1)].step < i);
 */

#ifndef PSYNC_WORKLOADS_FFT_HH
#define PSYNC_WORKLOADS_FFT_HH

#include <vector>

#include "sim/program.hh"
#include "sim/sync_fabric.hh"
#include "sync/barrier.hh"

namespace psync {
namespace workloads {

/** Parameters of the FFT phase workload. */
struct FftSpec
{
    /** Power of two. */
    unsigned numProcs = 8;
    /** Compute cycles of BASIC_FFT per stage. */
    sim::Tick stageCost = 64;
    /** Extra cycles added with probability 1/2, per stage. */
    sim::Tick stageJitter = 0;
    /** Independent FFTs run back to back. */
    unsigned rounds = 4;
    /** Shared-memory words exchanged with the partner per stage. */
    unsigned exchangeWords = 2;
    std::uint64_t seed = 41;
};

/** How stage completion is synchronized. */
enum class FftSync
{
    pairwise,        ///< partner-only PC sync (the paper's way)
    butterflyBarrier,///< full butterfly barrier per stage
    counterBarrier,  ///< global counter barrier per stage
};

/**
 * Build the per-processor FFT programs.
 *
 * For `pairwise`, `pc_base` must point at `numProcs` fabric
 * variables initialized to 0 (one PC per processor; processes equal
 * processors, so no folding and no ownership transfer is needed).
 * For the barrier variants pass the corresponding barrier object.
 */
std::vector<std::vector<sim::Program>>
buildFftPairwise(sim::SyncVarId pc_base, const FftSpec &spec);

std::vector<std::vector<sim::Program>>
buildFftButterfly(const sync::ButterflyBarrier &barrier,
                  const FftSpec &spec);

std::vector<std::vector<sim::Program>>
buildFftCounter(const sync::CounterBarrier &barrier,
                const FftSpec &spec);

/** log2 of the (power-of-two) processor count. */
unsigned fftStages(unsigned num_procs);

} // namespace workloads
} // namespace psync

#endif // PSYNC_WORKLOADS_FFT_HH
