/**
 * @file
 * Example 3: dependence sources inside branches.
 *
 *   DO I = 1, N
 *     S1: ... = B[I-2]               (sink of the taken-arm source)
 *     S2: ... = C[I-3]               (sink of the else-arm source)
 *     S3: A[I] = A[I-1]              (unconditional source+sink)
 *     IF (cond(I)) THEN
 *       S4: B[I] = ...               (source on the taken arm)
 *     ELSE
 *       S5: C[I] = ...               (source on the else arm)
 *     END IF
 *     S6: heavy unguarded work
 *     S7: E[I] = E[I-1]              (last source)
 *
 * Whichever arm executes, the synchronization state of *both*
 * guarded sources must advance so the sinks two and three
 * iterations later can proceed. The paper's point (Fig. 5.3) is
 * that the untaken source's step should be marked as early as
 * possible: deferring it until the final transfer (after the heavy
 * S6) keeps the sinks spinning through work that has nothing to do
 * with them.
 */

#ifndef PSYNC_WORKLOADS_BRANCHES_HH
#define PSYNC_WORKLOADS_BRANCHES_HH

#include "dep/loop_ir.hh"

namespace psync {
namespace workloads {

/**
 * Build the branch workload.
 * @param n           trip count
 * @param taken_prob  probability the S4 arm is taken
 * @param stmt_cost   compute cycles of the plain statements
 * @param arm_cost    compute cycles of each guarded statement
 * @param tail_cost   compute cycles of the unguarded tail S6
 */
dep::Loop makeBranchLoop(long n, double taken_prob,
                         sim::Tick stmt_cost = 6,
                         sim::Tick arm_cost = 24,
                         sim::Tick tail_cost = 48,
                         std::uint64_t seed = 23);

} // namespace workloads
} // namespace psync

#endif // PSYNC_WORKLOADS_BRANCHES_HH
