#include "workloads/fft.hh"

#include "sim/logging.hh"
#include "workloads/common.hh"

namespace psync {
namespace workloads {

unsigned
fftStages(unsigned num_procs)
{
    if (num_procs == 0 || (num_procs & (num_procs - 1)) != 0)
        sim::fatal("FFT workload needs a power-of-two processor "
                   "count, got %u", num_procs);
    unsigned stages = 0;
    for (unsigned p = num_procs; p > 1; p >>= 1)
        ++stages;
    return stages;
}

namespace {

constexpr sim::Addr chunkRegion = sim::Addr(1) << 34;

sim::Tick
stageWork(const FftSpec &spec, unsigned pid, unsigned step)
{
    return jitteredCost(spec.stageCost, spec.stageJitter, spec.seed,
                        pid, step);
}

/** Outbox address of (pid, global step, word). */
sim::Addr
outboxAddr(const FftSpec &spec, unsigned stages, unsigned pid,
           unsigned step, unsigned word)
{
    return chunkRegion +
           ((static_cast<sim::Addr>(pid) * (spec.rounds * stages + 1) +
             step) *
                spec.exchangeWords +
            word) *
               8;
}

/**
 * Emit one FFT stage for `pid`: BASIC_FFT, publish the outbox,
 * synchronize (callback), then read the partner's outbox.
 */
template <typename EmitSync>
void
emitStage(const FftSpec &spec, unsigned stages, sim::Program &prog,
          unsigned pid, unsigned round, unsigned stage,
          EmitSync emit_sync)
{
    unsigned step = (round - 1) * stages + stage;
    unsigned partner = pid ^ (1u << (stage - 1));

    prog.ops.push_back(
        sim::Op::mkCompute(stageWork(spec, pid, step)));
    for (unsigned w = 0; w < spec.exchangeWords; ++w) {
        prog.ops.push_back(sim::Op::mkData(
            true, outboxAddr(spec, stages, pid, step, w), 0));
    }
    emit_sync(prog, pid, step);
    for (unsigned w = 0; w < spec.exchangeWords; ++w) {
        prog.ops.push_back(sim::Op::mkData(
            false, outboxAddr(spec, stages, partner, step, w), 0));
    }
}

template <typename EmitSync>
std::vector<std::vector<sim::Program>>
buildCommon(const FftSpec &spec, EmitSync emit_sync)
{
    unsigned stages = fftStages(spec.numProcs);
    std::vector<std::vector<sim::Program>> per_proc(spec.numProcs);
    for (unsigned pid = 0; pid < spec.numProcs; ++pid) {
        sim::Program prog;
        prog.iter = pid + 1;
        for (unsigned round = 1; round <= spec.rounds; ++round) {
            for (unsigned stage = 1; stage <= stages; ++stage) {
                emitStage(spec, stages, prog, pid, round, stage,
                          emit_sync);
            }
        }
        per_proc[pid].push_back(std::move(prog));
    }
    return per_proc;
}

} // namespace

std::vector<std::vector<sim::Program>>
buildFftPairwise(sim::SyncVarId pc_base, const FftSpec &spec)
{
    unsigned stages = fftStages(spec.numProcs);
    return buildCommon(spec, [pc_base, stages](sim::Program &prog,
                                               unsigned pid,
                                               unsigned step) {
        // mark_PC(step), then spin on the stage partner only.
        unsigned stage = (step - 1) % stages + 1;
        unsigned partner = pid ^ (1u << (stage - 1));
        prog.ops.push_back(sim::Op::mkWrite(pc_base + pid, step));
        prog.ops.push_back(
            sim::Op::mkWaitGE(pc_base + partner, step));
    });
}

std::vector<std::vector<sim::Program>>
buildFftButterfly(const sync::ButterflyBarrier &barrier,
                  const FftSpec &spec)
{
    return buildCommon(spec, [&barrier](sim::Program &prog,
                                        unsigned pid, unsigned step) {
        barrier.emit(prog, pid, step);
    });
}

std::vector<std::vector<sim::Program>>
buildFftCounter(const sync::CounterBarrier &barrier,
                const FftSpec &spec)
{
    return buildCommon(spec, [&barrier](sim::Program &prog,
                                        unsigned pid, unsigned step) {
        (void)pid;
        barrier.emit(prog, step);
    });
}

} // namespace workloads
} // namespace psync
