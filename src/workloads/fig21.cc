#include "workloads/fig21.hh"

#include "workloads/common.hh"

namespace psync {
namespace workloads {

namespace {

dep::ArrayRef
refA(long offset, bool is_write)
{
    return ref1d("A", offset, is_write);
}

} // namespace

dep::Loop
makeFig21Loop(long n, sim::Tick stmt_cost)
{
    dep::Loop loop;
    loop.name = "fig2.1";
    loop.depth = 1;
    loop.outer = {1, n};

    dep::Statement s1;
    s1.label = "S1";
    s1.cost = stmt_cost;
    s1.refs.push_back(refA(+3, true));
    loop.body.push_back(s1);

    dep::Statement s2;
    s2.label = "S2";
    s2.cost = stmt_cost;
    s2.refs.push_back(refA(+1, false));
    loop.body.push_back(s2);

    dep::Statement s3;
    s3.label = "S3";
    s3.cost = stmt_cost;
    s3.refs.push_back(refA(+2, false));
    loop.body.push_back(s3);

    dep::Statement s4;
    s4.label = "S4";
    s4.cost = stmt_cost;
    s4.refs.push_back(refA(0, true));
    loop.body.push_back(s4);

    dep::Statement s5;
    s5.label = "S5";
    s5.cost = stmt_cost;
    s5.refs.push_back(refA(-1, false));
    loop.body.push_back(s5);

    return loop;
}

dep::Loop
makeFig21JitterLoop(long n, sim::Tick stmt_cost, sim::Tick jitter_cost,
                    double jitter_prob, std::uint64_t seed)
{
    dep::Loop loop = makeFig21Loop(n, stmt_cost);
    loop.name = "fig2.1-jitter";
    loop.seed = seed;
    loop.branchProb = {jitter_prob};

    // A guarded, reference-free statement between S1 and S2 models
    // an occasionally longer execution path in the early part of
    // the iteration — the "one process delays its release" scenario
    // of section 4.
    dep::Statement delay;
    delay.label = "Sdelay";
    delay.cost = jitter_cost;
    delay.guard = dep::Guard{0, true};
    loop.body.insert(loop.body.begin() + 1, delay);
    return loop;
}

} // namespace workloads
} // namespace psync
