/**
 * @file
 * Statement-oriented scheme (section 3.2): one statement counter
 * (SC) per source statement, shared "horizontally" by all
 * instances of that statement across iterations.
 *
 * Advance(N): after process i completes source statement N, it
 * waits until SC[N] == i-1, then sets SC[N] = i — which serializes
 * the updates of each SC in iteration order; a process delayed in
 * one iteration stalls every later iteration's Advance.
 * Await(d, N): a sink waits until SC[N] >= i - d.
 *
 * This is the Alliant FX/8 concurrency-control-bus discipline the
 * paper contrasts the process-oriented scheme against.
 */

#ifndef PSYNC_SYNC_STATEMENT_ORIENTED_HH
#define PSYNC_SYNC_STATEMENT_ORIENTED_HH

#include <vector>

#include "sync/scheme.hh"

namespace psync {
namespace sync {

/** Advance/Await statement-counter scheme. */
class StatementOrientedScheme : public Scheme
{
  public:
    SchemeKind
    kind() const override
    {
        return SchemeKind::statementOriented;
    }

    SchemePlan plan(const dep::DepGraph &graph,
                    const dep::DataLayout &layout,
                    sim::SyncFabric &fabric,
                    const SchemeConfig &cfg) override;

    sim::Program emit(std::uint64_t lpid) const override;

    /** Statement counters required by the loop. */
    unsigned numScs() const { return numScs_; }

    /** Fabric variable of statement `stmt_idx`'s counter. */
    sim::SyncVarId
    scVarOf(unsigned stmt_idx) const
    {
        return scBase_ +
               static_cast<sim::SyncVarId>(scIndexOf_[stmt_idx]);
    }

    /** True if `stmt_idx` is a source statement. */
    bool
    isSource(unsigned stmt_idx) const
    {
        return scIndexOf_[stmt_idx] >= 0;
    }

  private:
    const dep::DepGraph *graph_ = nullptr;
    const dep::DataLayout *layout_ = nullptr;
    SchemeConfig cfg_;

    sim::SyncVarId scBase_ = 0;
    unsigned numScs_ = 0;
    /** SC index per statement; -1 when not a source. */
    std::vector<int> scIndexOf_;
    std::vector<std::vector<dep::Dep>> sinkDeps_;
};

} // namespace sync
} // namespace psync

#endif // PSYNC_SYNC_STATEMENT_ORIENTED_HH
