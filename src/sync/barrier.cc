#include "sync/barrier.hh"

#include "sim/logging.hh"

namespace psync {
namespace sync {

CounterBarrier::CounterBarrier(sim::SyncFabric &fabric,
                               unsigned num_procs)
    : numProcs_(num_procs)
{
    counter_ = fabric.allocate(1, 0);
    release_ = fabric.allocate(1, 0);
}

void
CounterBarrier::emit(sim::Program &prog, unsigned generation) const
{
    ir::ProgramBuilder b(prog);
    b.ctrBarrier(counter_, release_, generation, numProcs_);
}

DisseminationBarrier::DisseminationBarrier(sim::SyncFabric &fabric,
                                           unsigned num_procs)
    : numProcs_(num_procs)
{
    if (num_procs == 0)
        sim::fatal("dissemination barrier needs processors");
    rounds_ = 0;
    while ((1u << rounds_) < num_procs)
        ++rounds_;
    if (rounds_ == 0)
        rounds_ = 1; // P == 1 still advances its counter
    base_ = fabric.allocate(num_procs, 0);
}

void
DisseminationBarrier::emit(sim::Program &prog, sim::ProcId pid,
                           unsigned episode) const
{
    ir::ProgramBuilder b(prog);
    for (unsigned k = 1; k <= rounds_; ++k) {
        sim::SyncWord step =
            static_cast<sim::SyncWord>(episode - 1) * rounds_ + k;
        unsigned dist = 1u << (k - 1);
        // Signal my own counter, wait for the processor `dist`
        // behind me (mod P) to have signalled this round.
        sim::ProcId behind =
            (pid + numProcs_ - (dist % numProcs_)) % numProcs_;
        b.write(pcVarOf(pid), step);
        b.waitGE(pcVarOf(behind), step);
    }
}

ButterflyBarrier::ButterflyBarrier(sim::SyncFabric &fabric,
                                   unsigned num_procs)
    : numProcs_(num_procs)
{
    if (num_procs == 0 || (num_procs & (num_procs - 1)) != 0)
        sim::fatal("butterfly barrier needs a power-of-two processor "
                   "count, got %u", num_procs);
    stages_ = 0;
    for (unsigned p = num_procs; p > 1; p >>= 1)
        ++stages_;
    base_ = fabric.allocate(num_procs, 0);
}

void
ButterflyBarrier::emit(sim::Program &prog, sim::ProcId pid,
                       unsigned episode) const
{
    ir::ProgramBuilder b(prog);
    for (unsigned i = 1; i <= stages_; ++i) {
        sim::SyncWord step =
            static_cast<sim::SyncWord>(episode - 1) * stages_ + i;
        // set_PC(step) on my own counter, then wait for my partner
        // in this stage: while (PC[pid xor 2^(i-1)].step < step).
        b.write(pcVarOf(pid), step);
        sim::ProcId partner = pid ^ (1u << (i - 1));
        b.waitGE(pcVarOf(partner), step);
    }
}

} // namespace sync
} // namespace psync
