#include "sync/pc_file.hh"

#include "sim/logging.hh"

namespace psync {
namespace sync {

PcFile::PcFile(sim::SyncFabric &fabric, unsigned num_pcs)
    : numPcs_(num_pcs)
{
    if (num_pcs == 0)
        sim::fatal("PC file needs at least one counter");
    base_ = fabric.allocate(num_pcs, 0);
    for (unsigned v = 0; v < num_pcs; ++v) {
        std::uint32_t first_owner = (v == 0) ? num_pcs : v;
        fabric.poke(base_ + v, sim::PcWord::pack(first_owner, 0));
    }
}

} // namespace sync
} // namespace psync
