#include "sync/scheme.hh"

#include "sim/logging.hh"
#include "sync/instance_based.hh"
#include "sync/process_oriented.hh"
#include "sync/reference_based.hh"
#include "sync/statement_oriented.hh"

namespace psync {
namespace sync {

const char *
schemeKindName(SchemeKind kind)
{
    switch (kind) {
      case SchemeKind::none:              return "none";
      case SchemeKind::referenceBased:    return "reference";
      case SchemeKind::instanceBased:     return "instance";
      case SchemeKind::statementOriented: return "statement";
      case SchemeKind::processBasic:      return "process-basic";
      case SchemeKind::processImproved:   return "process-improved";
    }
    return "unknown";
}

namespace {

/** Baseline: no cross-iteration synchronization at all. */
class NoneScheme : public Scheme
{
  public:
    SchemeKind kind() const override { return SchemeKind::none; }

    SchemePlan
    plan(const dep::DepGraph &graph, const dep::DataLayout &layout,
         sim::SyncFabric &fabric, const SchemeConfig &cfg) override
    {
        (void)fabric;
        (void)cfg;
        graph_ = &graph;
        layout_ = &layout;
        return SchemePlan{};
    }

    sim::Program
    emit(std::uint64_t lpid) const override
    {
        const dep::Loop &loop = graph_->loop();
        sim::Program prog;
        prog.iter = lpid;
        ir::ProgramBuilder b(prog);
        long i = 0, j = 0;
        loop.indicesOf(lpid, i, j);
        for (unsigned s = 0; s < loop.body.size(); ++s) {
            if (!dep::stmtActive(loop, loop.body[s], lpid))
                continue;
            emitStatementBody(loop, s, i, j, *layout_, b);
        }
        return prog;
    }

  private:
    const dep::DepGraph *graph_ = nullptr;
    const dep::DataLayout *layout_ = nullptr;
};

} // namespace

std::unique_ptr<Scheme>
makeScheme(SchemeKind kind)
{
    switch (kind) {
      case SchemeKind::none:
        return std::make_unique<NoneScheme>();
      case SchemeKind::referenceBased:
        return std::make_unique<ReferenceBasedScheme>();
      case SchemeKind::instanceBased:
        return std::make_unique<InstanceBasedScheme>();
      case SchemeKind::statementOriented:
        return std::make_unique<StatementOrientedScheme>();
      case SchemeKind::processBasic:
        return std::make_unique<ProcessOrientedScheme>(false);
      case SchemeKind::processImproved:
        return std::make_unique<ProcessOrientedScheme>(true);
    }
    sim::panic("unknown scheme kind");
}

std::vector<SchemeKind>
allSyncSchemes()
{
    return {SchemeKind::referenceBased, SchemeKind::instanceBased,
            SchemeKind::statementOriented, SchemeKind::processBasic,
            SchemeKind::processImproved};
}

void
emitStatementBody(const dep::Loop &loop, unsigned stmt_idx, long i,
                  long j, const dep::DataLayout &layout,
                  ir::ProgramBuilder &out)
{
    const dep::Statement &stmt = loop.body[stmt_idx];
    out.stmtStart(stmt_idx);
    for (unsigned r = 0; r < stmt.refs.size(); ++r) {
        const dep::ArrayRef &ref = stmt.refs[r];
        if (!ref.isWrite) {
            out.data(false, layout.addrOf(ref, i, j), stmt_idx,
                     static_cast<std::uint16_t>(r));
        }
    }
    if (stmt.cost > 0)
        out.compute(stmt.cost);
    for (unsigned r = 0; r < stmt.refs.size(); ++r) {
        const dep::ArrayRef &ref = stmt.refs[r];
        if (ref.isWrite) {
            out.data(true, layout.addrOf(ref, i, j), stmt_idx,
                     static_cast<std::uint16_t>(r));
        }
    }
    out.stmtEnd(stmt_idx);
}

} // namespace sync
} // namespace psync
