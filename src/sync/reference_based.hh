/**
 * @file
 * Data-oriented, reference-based scheme (section 3.1, Fig. 3.1a).
 *
 * Every array element on which an access order must be enforced
 * carries a dedicated key, stored with the datum (so key traffic is
 * memory traffic). Each access is compiled with its order number N
 * in the element's sequential access sequence: it waits until
 * key >= N, performs the access, and increments the key. Runs of
 * consecutive reads share one order number so independent fetches
 * may proceed in parallel — the property Fig. 3.1a illustrates with
 * S2 and S3.
 *
 * The scheme is exact at loop boundaries of nested loops (an
 * element accessed fewer times simply has smaller order numbers),
 * but pays the paper's O(r*d)-per-iteration boundary-checking
 * overhead to achieve that, plus one key per element and the
 * initialization sweep over all keys.
 */

#ifndef PSYNC_SYNC_REFERENCE_BASED_HH
#define PSYNC_SYNC_REFERENCE_BASED_HH

#include <unordered_map>
#include <vector>

#include "sync/scheme.hh"

namespace psync {
namespace sync {

/** Key-per-datum scheme with access order numbers. */
class ReferenceBasedScheme : public Scheme
{
  public:
    SchemeKind
    kind() const override
    {
        return SchemeKind::referenceBased;
    }

    SchemePlan plan(const dep::DepGraph &graph,
                    const dep::DataLayout &layout,
                    sim::SyncFabric &fabric,
                    const SchemeConfig &cfg) override;

    sim::Program emit(std::uint64_t lpid) const override;

    /** Order number of (iteration, statement, ref); tests only. */
    sim::SyncWord orderOf(std::uint64_t lpid, unsigned stmt_idx,
                          unsigned ref_idx) const;

    /** Key variable of the element `ref` touches at (i, j). */
    sim::SyncVarId
    keyOf(const dep::ArrayRef &ref, long i, long j) const
    {
        return keyBase_ + static_cast<sim::SyncVarId>(
            layout_->globalOrdinal(ref, i, j));
    }

  private:
    const dep::DepGraph *graph_ = nullptr;
    const dep::DataLayout *layout_ = nullptr;
    SchemeConfig cfg_;

    sim::SyncVarId keyBase_ = 0;

    /**
     * Order numbers, indexed [lpid-1], one entry per (stmt, ref)
     * in static order (inactive statements get entries too, unused).
     */
    std::vector<std::vector<sim::SyncWord>> orders_;
    /** Flat (stmt, ref) slot of a reference. */
    std::vector<std::vector<unsigned>> refSlot_;
    unsigned slotsPerIter_ = 0;

    /** Extra per-iteration compute for boundary checks. */
    sim::Tick boundaryCost_ = 0;
};

} // namespace sync
} // namespace psync

#endif // PSYNC_SYNC_REFERENCE_BASED_HH
