#include "sync/reference_based.hh"

#include "sim/logging.hh"

namespace psync {
namespace sync {

SchemePlan
ReferenceBasedScheme::plan(const dep::DepGraph &graph,
                           const dep::DataLayout &layout,
                           sim::SyncFabric &fabric,
                           const SchemeConfig &cfg)
{
    graph_ = &graph;
    layout_ = &layout;
    cfg_ = cfg;

    const dep::Loop &loop = graph.loop();
    std::uint64_t iterations = loop.iterations();

    // Flat slot numbering for (stmt, ref).
    refSlot_.assign(loop.body.size(), {});
    slotsPerIter_ = 0;
    unsigned total_refs = 0;
    for (unsigned s = 0; s < loop.body.size(); ++s) {
        refSlot_[s].resize(loop.body[s].refs.size());
        for (unsigned r = 0; r < loop.body[s].refs.size(); ++r)
            refSlot_[s][r] = slotsPerIter_++;
        total_refs += loop.body[s].refs.size();
    }

    // One key per element of every referenced array.
    std::uint64_t num_keys = layout.totalElements();
    keyBase_ = fabric.allocate(
        static_cast<unsigned>(num_keys), 0);
    for (std::uint64_t v = 0; v < num_keys; ++v) {
        PSYNC_TRACE(cfg.tracer,
                    nameSyncVar(keyBase_ + v,
                                "key[" + std::to_string(v) + "]"));
    }

    // Assign order numbers by replaying the loop sequentially with
    // branches resolved exactly as execution will resolve them.
    // Writes order after every prior access; a run of consecutive
    // reads shares the order number of the run's start.
    struct ElemState
    {
        sim::SyncWord count = 0;
        sim::SyncWord runStart = 0;
        bool lastWasRead = false;
    };
    std::unordered_map<std::uint64_t, ElemState> state;

    orders_.assign(iterations, {});
    for (std::uint64_t lpid = 1; lpid <= iterations; ++lpid) {
        auto &row = orders_[lpid - 1];
        row.assign(slotsPerIter_, 0);
        long i = 0, j = 0;
        loop.indicesOf(lpid, i, j);
        for (unsigned s = 0; s < loop.body.size(); ++s) {
            const dep::Statement &stmt = loop.body[s];
            if (!dep::stmtActive(loop, stmt, lpid))
                continue;
            // Replay in *emission* order — reads before writes
            // within a statement (see emit() and
            // emitStatementBody) — so a statement that writes and
            // then reads the same element gets consistent order
            // numbers and cannot deadlock on itself.
            auto visit = [&](unsigned r) {
                const dep::ArrayRef &ref = stmt.refs[r];
                ElemState &es =
                    state[layout.globalOrdinal(ref, i, j)];
                sim::SyncWord order;
                if (!ref.isWrite && es.lastWasRead) {
                    order = es.runStart;
                } else {
                    order = es.count;
                    es.runStart = es.count;
                }
                es.lastWasRead = !ref.isWrite;
                ++es.count;
                row[refSlot_[s][r]] = order;
            };
            for (unsigned r = 0; r < stmt.refs.size(); ++r) {
                if (!stmt.refs[r].isWrite)
                    visit(r);
            }
            for (unsigned r = 0; r < stmt.refs.size(); ++r) {
                if (stmt.refs[r].isWrite)
                    visit(r);
            }
        }
    }

    // O(r*d) boundary-testing overhead per iteration for nested
    // loops (section 5, Example 2).
    boundaryCost_ = loop.depth >= 2
        ? static_cast<sim::Tick>(total_refs) * loop.depth *
              cfg.boundaryCheckCost
        : 0;

    SchemePlan result;
    result.numSyncVars = num_keys;
    // Cedar-style keys are a word of order state per element; we
    // charge 4 bytes each.
    result.syncStorageBytes = num_keys * 4;
    result.initWrites = num_keys;
    result.depsVerified = graph.crossIteration();
    return result;
}

sim::SyncWord
ReferenceBasedScheme::orderOf(std::uint64_t lpid, unsigned stmt_idx,
                              unsigned ref_idx) const
{
    return orders_[lpid - 1][refSlot_[stmt_idx][ref_idx]];
}

sim::Program
ReferenceBasedScheme::emit(std::uint64_t lpid) const
{
    const dep::Loop &loop = graph_->loop();
    sim::Program prog;
    prog.iter = lpid;
    ir::ProgramBuilder b(prog);
    long i = 0, j = 0;
    loop.indicesOf(lpid, i, j);

    if (boundaryCost_ > 0)
        b.compute(boundaryCost_);

    for (unsigned s = 0; s < loop.body.size(); ++s) {
        const dep::Statement &stmt = loop.body[s];
        if (!dep::stmtActive(loop, stmt, lpid))
            continue;

        b.stmtStart(s);
        // One synchronized access per reference. Combined (Cedar)
        // mode sends a single keyed request; split mode issues the
        // Fig. 3.1a triple: wait key >= N, access, ++key.
        auto emit_access = [&](unsigned r, bool is_write) {
            const dep::ArrayRef &ref = stmt.refs[r];
            sim::SyncVarId key = keyOf(ref, i, j);
            sim::SyncWord order = orderOf(lpid, s, r);
            sim::Addr addr = layout_->addrOf(ref, i, j);
            if (cfg_.cedarCombining) {
                b.keyed(is_write, key, order, addr, s,
                        static_cast<std::uint16_t>(r));
            } else {
                b.waitGE(key, order);
                b.data(is_write, addr, s,
                       static_cast<std::uint16_t>(r));
                b.fetchInc(key);
            }
        };
        for (unsigned r = 0; r < stmt.refs.size(); ++r) {
            if (!stmt.refs[r].isWrite)
                emit_access(r, false);
        }
        if (stmt.cost > 0)
            b.compute(stmt.cost);
        for (unsigned r = 0; r < stmt.refs.size(); ++r) {
            if (stmt.refs[r].isWrite)
                emit_access(r, true);
        }
        b.stmtEnd(s);
    }
    return prog;
}

} // namespace sync
} // namespace psync
