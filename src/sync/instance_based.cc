#include "sync/instance_based.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace psync {
namespace sync {

SchemePlan
InstanceBasedScheme::plan(const dep::DepGraph &graph,
                          const dep::DataLayout &layout,
                          sim::SyncFabric &fabric,
                          const SchemeConfig &cfg)
{
    graph_ = &graph;
    layout_ = &layout;
    cfg_ = cfg;

    const dep::Loop &loop = graph.loop();
    for (const dep::Statement &stmt : loop.body) {
        if (stmt.guard.conditional()) {
            sim::fatal("instance-based scheme does not support "
                       "branch-guarded statements (needs reaching "
                       "definitions across renamed instances)");
        }
    }

    const long m = loop.innerTrip();
    std::uint64_t iterations = loop.iterations();

    // Enumerate write slots.
    slotOf_.assign(loop.body.size(), {});
    readSrc_.assign(loop.body.size(), {});
    for (unsigned s = 0; s < loop.body.size(); ++s) {
        slotOf_[s].assign(loop.body[s].refs.size(), -1);
        readSrc_[s].assign(loop.body[s].refs.size(), ReadSource{});
        for (unsigned r = 0; r < loop.body[s].refs.size(); ++r) {
            if (loop.body[s].refs[r].isWrite) {
                slotOf_[s][r] = static_cast<int>(writeSlots_.size());
                WriteSlot slot;
                slot.stmt = s;
                slot.ref = r;
                writeSlots_.push_back(slot);
            }
        }
    }

    // Flow dependences (covered ones included: renaming gives each
    // value its own key, there is no transitive covering here).
    // Attach each to its producing write slot and consuming read.
    for (const dep::Dep &d : graph.crossIteration()) {
        if (d.type != dep::DepType::flow)
            continue;
        int slot = slotOf_[d.src][d.srcRef];
        if (slot < 0)
            sim::panic("flow dep source ref is not a write");
        ReadSource &rs = readSrc_[d.dst][d.dstRef];
        long dist = d.linearDistance(m);
        if (rs.hasDep && rs.distance <= dist) {
            // Keep the nearest preceding writer: it is the one
            // whose value actually reaches this read. Farther flow
            // arcs to the same read are artifacts of the
            // conservative pairwise analysis and need no ordering
            // once the value is renamed.
            continue;
        }
        rs.hasDep = true;
        rs.distance = dist;
        rs.slot = static_cast<unsigned>(slot);
        rs.dep = d;
    }

    // Second pass: register each resolved read with its slot.
    for (unsigned s = 0; s < loop.body.size(); ++s) {
        for (unsigned r = 0; r < loop.body[s].refs.size(); ++r) {
            ReadSource &rs = readSrc_[s][r];
            if (!rs.hasDep)
                continue;
            WriteSlot &slot = writeSlots_[rs.slot];
            rs.readerIndex =
                static_cast<unsigned>(slot.readers.size());
            slot.readers.push_back(rs.dep);
        }
    }

    // Lay out keys and copies per iteration.
    keysPerIter_ = 0;
    copiesPerIter_ = 0;
    for (WriteSlot &slot : writeSlots_) {
        slot.keys = static_cast<unsigned>(slot.readers.size());
        slot.copies = std::max(1u, slot.keys);
        slot.keyOffset = keysPerIter_;
        slot.copyOffset = copiesPerIter_;
        keysPerIter_ += slot.keys;
        copiesPerIter_ += slot.copies;
    }

    std::uint64_t num_keys = keysPerIter_ * iterations;
    keyBase_ = fabric.allocate(static_cast<unsigned>(num_keys), 0);
    for (std::uint64_t v = 0; v < num_keys; ++v) {
        PSYNC_TRACE(cfg.tracer,
                    nameSyncVar(keyBase_ + v,
                                "ikey[" + std::to_string(v) + "]"));
    }

    // Renamed copies live in their own region above the arrays.
    copyRegionBase_ = sim::Addr(1) << 36;

    SchemePlan result;
    result.numSyncVars = num_keys;
    // Full/empty bits: one bit per key.
    result.syncStorageBytes = (num_keys + 7) / 8;
    result.renamedStorageBytes = copiesPerIter_ * iterations * 8;
    result.initWrites = num_keys;
    // Only the resolved flow dependences are guaranteed; farther
    // flow arcs to an already-resolved read carry no value and no
    // ordering after renaming.
    std::vector<dep::Dep> verified;
    for (const WriteSlot &slot : writeSlots_) {
        for (const dep::Dep &d : slot.readers)
            verified.push_back(d);
    }
    result.depsVerified = std::move(verified);
    return result;
}

sim::SyncVarId
InstanceBasedScheme::keyVarOf(std::uint64_t writer_lpid, unsigned slot,
                              unsigned reader_index) const
{
    return keyBase_ + static_cast<sim::SyncVarId>(
        (writer_lpid - 1) * keysPerIter_ +
        writeSlots_[slot].keyOffset + reader_index);
}

sim::Addr
InstanceBasedScheme::copyAddrOf(std::uint64_t writer_lpid,
                                unsigned slot,
                                unsigned reader_index) const
{
    unsigned copy_index =
        std::min(reader_index, writeSlots_[slot].copies - 1);
    return copyRegionBase_ +
           ((writer_lpid - 1) * copiesPerIter_ +
            writeSlots_[slot].copyOffset + copy_index) * 8;
}

sim::Program
InstanceBasedScheme::emit(std::uint64_t lpid) const
{
    const dep::Loop &loop = graph_->loop();
    sim::Program prog;
    prog.iter = lpid;
    ir::ProgramBuilder b(prog);
    long i = 0, j = 0;
    loop.indicesOf(lpid, i, j);

    for (unsigned s = 0; s < loop.body.size(); ++s) {
        const dep::Statement &stmt = loop.body[s];
        b.stmtStart(s);

        // Reads: wait full on the renamed copy, or read the
        // original element when no in-bounds producer exists
        // (loop boundaries come out naturally).
        for (unsigned r = 0; r < stmt.refs.size(); ++r) {
            const dep::ArrayRef &ref = stmt.refs[r];
            if (ref.isWrite)
                continue;
            const ReadSource &rs = readSrc_[s][r];
            bool has_producer =
                rs.hasDep &&
                static_cast<std::uint64_t>(rs.distance) < lpid;
            if (has_producer) {
                std::uint64_t w = lpid - rs.distance;
                b.waitGE(keyVarOf(w, rs.slot, rs.readerIndex), 1);
                b.data(false,
                       copyAddrOf(w, rs.slot, rs.readerIndex), s,
                       static_cast<std::uint16_t>(r));
            } else {
                b.data(false, layout_->addrOf(ref, i, j), s,
                       static_cast<std::uint16_t>(r));
            }
        }

        if (stmt.cost > 0)
            b.compute(stmt.cost);

        // Writes: store every copy of the renamed instance; no
        // waiting — anti and output dependences are gone.
        for (unsigned r = 0; r < stmt.refs.size(); ++r) {
            if (!stmt.refs[r].isWrite)
                continue;
            unsigned slot = static_cast<unsigned>(slotOf_[s][r]);
            for (unsigned c = 0; c < writeSlots_[slot].copies; ++c) {
                b.data(true, copyAddrOf(lpid, slot, c), s,
                       static_cast<std::uint16_t>(r));
            }
        }
        b.stmtEnd(s);

        // Signals: set every reader's key to full.
        for (unsigned r = 0; r < stmt.refs.size(); ++r) {
            if (!stmt.refs[r].isWrite)
                continue;
            unsigned slot = static_cast<unsigned>(slotOf_[s][r]);
            for (unsigned k = 0; k < writeSlots_[slot].keys; ++k) {
                b.write(keyVarOf(lpid, slot, k), 1);
            }
        }
    }
    return prog;
}

} // namespace sync
} // namespace psync
