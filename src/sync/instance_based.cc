#include "sync/instance_based.hh"

#include <algorithm>
#include <array>

#include "dep/transform.hh"
#include "sim/logging.hh"

namespace psync {
namespace sync {

SchemePlan
InstanceBasedScheme::plan(const dep::DepGraph &graph,
                          const dep::DataLayout &layout,
                          sim::SyncFabric &fabric,
                          const SchemeConfig &cfg)
{
    graph_ = &graph;
    layout_ = &layout;
    cfg_ = cfg;

    const dep::Loop &loop = graph.loop();
    for (const dep::Statement &stmt : loop.body) {
        if (stmt.guard.conditional()) {
            sim::fatal("instance-based scheme does not support "
                       "branch-guarded statements (needs reaching "
                       "definitions across renamed instances)");
        }
    }

    const long m = loop.innerTrip();
    std::uint64_t iterations = loop.iterations();

    // Enumerate write slots.
    slotOf_.assign(loop.body.size(), {});
    readSrc_.assign(loop.body.size(), {});
    for (unsigned s = 0; s < loop.body.size(); ++s) {
        slotOf_[s].assign(loop.body[s].refs.size(), -1);
        readSrc_[s].assign(loop.body[s].refs.size(), {});
        for (unsigned r = 0; r < loop.body[s].refs.size(); ++r) {
            if (loop.body[s].refs[r].isWrite) {
                slotOf_[s][r] = static_cast<int>(writeSlots_.size());
                WriteSlot slot;
                slot.stmt = s;
                slot.ref = r;
                writeSlots_.push_back(slot);
            }
        }
    }

    // Flow dependences (covered ones included: renaming gives each
    // value its own key, there is no transitive covering here).
    // Collect every candidate producer per read — including the
    // loop-independent (same-iteration) writes, which never appear
    // in crossIteration() but still reach reads only through the
    // renamed copies once every write is renamed.
    for (const dep::Dep &d : graph.deps()) {
        if (d.type != dep::DepType::flow)
            continue;
        bool same_iter = (d.d1 == 0 && d.d2 == 0);
        long dist = d.linearDistance(m);
        if (!same_iter && dist <= 0) {
            // Non-positive linearized distance with a non-zero
            // distance vector: the source indices fall outside the
            // iteration space for every sink, so no instance of
            // this arc ever reaches a read.
            continue;
        }
        int slot = slotOf_[d.src][d.srcRef];
        if (slot < 0)
            sim::panic("flow dep source ref is not a write");
        ReadSource rs;
        rs.distance = dist;
        rs.slot = static_cast<unsigned>(slot);
        rs.dep = d;
        readSrc_[d.dst][d.dstRef].push_back(rs);
    }

    // Order each read's candidates by reaching-definition priority:
    // nearest distance first (the latest preceding write), ties to
    // the textually later statement and reference (the one executed
    // last within the instance). A same-iteration candidate always
    // has in-bounds source indices, so anything behind it can never
    // be selected — drop it. Then register each surviving candidate
    // with its slot so it gets a key and a copy.
    for (unsigned s = 0; s < loop.body.size(); ++s) {
        for (unsigned r = 0; r < loop.body[s].refs.size(); ++r) {
            std::vector<ReadSource> &cands = readSrc_[s][r];
            std::stable_sort(
                cands.begin(), cands.end(),
                [](const ReadSource &a, const ReadSource &b) {
                    if (a.distance != b.distance)
                        return a.distance < b.distance;
                    if (a.dep.src != b.dep.src)
                        return a.dep.src > b.dep.src;
                    return a.dep.srcRef > b.dep.srcRef;
                });
            for (size_t k = 0; k < cands.size(); ++k) {
                if (cands[k].dep.d1 == 0 && cands[k].dep.d2 == 0) {
                    cands.resize(k + 1);
                    break;
                }
            }
            // Drop dominated candidates: emit picks the first
            // candidate whose source indices are in bounds, so one
            // whose in-bounds region is contained in an earlier
            // candidate's region is never selected and must not cost
            // a key and a copy. (In a singly nested loop the regions
            // are nested suffixes, leaving only the nearest
            // producer — Fig. 3.1b's copy counts; in a doubly nested
            // loop the inner-index windows can be disjoint, which is
            // what keeps genuine boundary fallbacks alive.)
            auto region = [&](const dep::Dep &d) {
                std::array<long, 4> rg;
                rg[0] = loop.outer.lo + std::max(0L, d.d1);
                rg[1] = loop.outer.hi + std::min(0L, d.d1);
                if (loop.depth == 2) {
                    rg[2] = loop.inner.lo + std::max(0L, d.d2);
                    rg[3] = loop.inner.hi + std::min(0L, d.d2);
                } else {
                    rg[2] = rg[3] = 0;
                }
                return rg;
            };
            std::vector<ReadSource> kept;
            for (const ReadSource &cand : cands) {
                std::array<long, 4> rc = region(cand.dep);
                bool dominated = false;
                for (const ReadSource &prev : kept) {
                    std::array<long, 4> rp = region(prev.dep);
                    if (rp[0] <= rc[0] && rp[1] >= rc[1] &&
                        rp[2] <= rc[2] && rp[3] >= rc[3]) {
                        dominated = true;
                        break;
                    }
                }
                if (!dominated)
                    kept.push_back(cand);
            }
            cands = std::move(kept);
            for (ReadSource &rs : cands) {
                WriteSlot &slot = writeSlots_[rs.slot];
                rs.readerIndex =
                    static_cast<unsigned>(slot.readers.size());
                slot.readers.push_back(rs.dep);
            }
        }
    }

    // Lay out keys and copies per iteration.
    keysPerIter_ = 0;
    copiesPerIter_ = 0;
    for (WriteSlot &slot : writeSlots_) {
        slot.keys = static_cast<unsigned>(slot.readers.size());
        slot.copies = std::max(1u, slot.keys);
        slot.keyOffset = keysPerIter_;
        slot.copyOffset = copiesPerIter_;
        keysPerIter_ += slot.keys;
        copiesPerIter_ += slot.copies;
    }

    std::uint64_t num_keys = keysPerIter_ * iterations;
    keyBase_ = fabric.allocate(static_cast<unsigned>(num_keys), 0);
    for (std::uint64_t v = 0; v < num_keys; ++v) {
        PSYNC_TRACE(cfg.tracer,
                    nameSyncVar(keyBase_ + v,
                                "ikey[" + std::to_string(v) + "]"));
    }

    // Renamed copies live in their own region above the arrays.
    copyRegionBase_ = sim::Addr(1) << 36;

    SchemePlan result;
    result.numSyncVars = num_keys;
    // Full/empty bits: one bit per key.
    result.syncStorageBytes = (num_keys + 7) / 8;
    result.renamedStorageBytes = copiesPerIter_ * iterations * 8;
    result.initWrites = num_keys;
    // Only each read's top-priority candidate is guaranteed at
    // every instance where its source is in bounds (whenever it is
    // in bounds, it is the one selected). Farther candidates are
    // enforced only at the boundary instances that select them, so
    // advertising them would make the trace checker demand
    // orderings renaming never promises.
    std::vector<dep::Dep> verified;
    for (const auto &per_stmt : readSrc_) {
        for (const auto &cands : per_stmt) {
            if (!cands.empty())
                verified.push_back(cands.front().dep);
        }
    }
    result.depsVerified = std::move(verified);
    return result;
}

sim::SyncVarId
InstanceBasedScheme::keyVarOf(std::uint64_t writer_lpid, unsigned slot,
                              unsigned reader_index) const
{
    return keyBase_ + static_cast<sim::SyncVarId>(
        (writer_lpid - 1) * keysPerIter_ +
        writeSlots_[slot].keyOffset + reader_index);
}

sim::Addr
InstanceBasedScheme::copyAddrOf(std::uint64_t writer_lpid,
                                unsigned slot,
                                unsigned reader_index) const
{
    unsigned copy_index =
        std::min(reader_index, writeSlots_[slot].copies - 1);
    return copyRegionBase_ +
           ((writer_lpid - 1) * copiesPerIter_ +
            writeSlots_[slot].copyOffset + copy_index) * 8;
}

sim::Program
InstanceBasedScheme::emit(std::uint64_t lpid) const
{
    const dep::Loop &loop = graph_->loop();
    sim::Program prog;
    prog.iter = lpid;
    ir::ProgramBuilder b(prog);
    long i = 0, j = 0;
    loop.indicesOf(lpid, i, j);

    for (unsigned s = 0; s < loop.body.size(); ++s) {
        const dep::Statement &stmt = loop.body[s];
        b.stmtStart(s);

        // Reads: wait full on the reaching producer's renamed copy,
        // or read the original element when no candidate has
        // in-bounds source indices here. The linearized distance
        // alone cannot decide this: at linearization boundaries
        // (Fig. 5.2) a nearer arc's source leaves the iteration
        // space while a farther arc's source is still inside it, so
        // each instance re-selects the first in-bounds candidate.
        for (unsigned r = 0; r < stmt.refs.size(); ++r) {
            const dep::ArrayRef &ref = stmt.refs[r];
            if (ref.isWrite)
                continue;
            const ReadSource *rs = nullptr;
            for (const ReadSource &cand : readSrc_[s][r]) {
                if (dep::sinkHasSource(loop, cand.dep, lpid)) {
                    rs = &cand;
                    break;
                }
            }
            if (rs != nullptr) {
                // In-bounds source indices imply a valid source
                // instance, so w >= 1; a same-iteration producer
                // (distance 0) has already set its key earlier in
                // this very program.
                std::uint64_t w =
                    lpid - static_cast<std::uint64_t>(rs->distance);
                b.waitGE(keyVarOf(w, rs->slot, rs->readerIndex), 1);
                b.data(false,
                       copyAddrOf(w, rs->slot, rs->readerIndex), s,
                       static_cast<std::uint16_t>(r));
            } else {
                b.data(false, layout_->addrOf(ref, i, j), s,
                       static_cast<std::uint16_t>(r));
            }
        }

        if (stmt.cost > 0)
            b.compute(stmt.cost);

        // Writes: store every copy of the renamed instance; no
        // waiting — anti and output dependences are gone.
        for (unsigned r = 0; r < stmt.refs.size(); ++r) {
            if (!stmt.refs[r].isWrite)
                continue;
            unsigned slot = static_cast<unsigned>(slotOf_[s][r]);
            for (unsigned c = 0; c < writeSlots_[slot].copies; ++c) {
                b.data(true, copyAddrOf(lpid, slot, c), s,
                       static_cast<std::uint16_t>(r));
            }
        }
        b.stmtEnd(s);

        // Signals: set every reader's key to full.
        for (unsigned r = 0; r < stmt.refs.size(); ++r) {
            if (!stmt.refs[r].isWrite)
                continue;
            unsigned slot = static_cast<unsigned>(slotOf_[s][r]);
            for (unsigned k = 0; k < writeSlots_[slot].keys; ++k) {
                b.write(keyVarOf(lpid, slot, k), 1);
            }
        }
    }
    return prog;
}

} // namespace sync
} // namespace psync
