#include "sync/statement_oriented.hh"

#include "dep/transform.hh"
#include "sim/logging.hh"

namespace psync {
namespace sync {

SchemePlan
StatementOrientedScheme::plan(const dep::DepGraph &graph,
                              const dep::DataLayout &layout,
                              sim::SyncFabric &fabric,
                              const SchemeConfig &cfg)
{
    graph_ = &graph;
    layout_ = &layout;
    cfg_ = cfg;

    const dep::Loop &loop = graph.loop();
    scIndexOf_.assign(loop.body.size(), -1);
    sinkDeps_.assign(loop.body.size(), {});

    for (const dep::Dep &d : graph.enforced()) {
        sinkDeps_[d.dst].push_back(d);
        scIndexOf_[d.src] = 0; // provisional
    }
    numScs_ = 0;
    for (unsigned s = 0; s < loop.body.size(); ++s) {
        if (scIndexOf_[s] == 0)
            scIndexOf_[s] = static_cast<int>(numScs_++);
        else
            scIndexOf_[s] = -1;
    }

    if (numScs_ > cfg.numScs) {
        sim::fatal("statement-oriented scheme needs %u statement "
                   "counters but only %u are available; the scheme "
                   "cannot fold SCs (their index must be a constant, "
                   "section 6)", numScs_, cfg.numScs);
    }

    // SC[N] holds the last iteration whose instance of N finished;
    // initialized to k-1 = 0 for 1-based iterations.
    scBase_ = fabric.allocate(numScs_, 0);
    for (unsigned v = 0; v < numScs_; ++v) {
        PSYNC_TRACE(cfg.tracer,
                    nameSyncVar(scBase_ + v,
                                "sc[" + std::to_string(v) + "]"));
    }

    SchemePlan result;
    result.numSyncVars = numScs_;
    result.syncStorageBytes = static_cast<std::uint64_t>(numScs_) * 8;
    result.initWrites = numScs_;
    result.depsVerified = graph.crossIteration();
    return result;
}

sim::Program
StatementOrientedScheme::emit(std::uint64_t lpid) const
{
    const dep::Loop &loop = graph_->loop();
    sim::Program prog;
    prog.iter = lpid;
    ir::ProgramBuilder b(prog);
    long i = 0, j = 0;
    loop.indicesOf(lpid, i, j);
    const long m = loop.innerTrip();

    if (cfg_.exactBoundaries && loop.depth >= 2) {
        unsigned total_refs = 0;
        for (const dep::Statement &stmt : loop.body)
            total_refs += stmt.refs.size();
        sim::Tick check = static_cast<sim::Tick>(total_refs) *
                          loop.depth * cfg_.boundaryCheckCost;
        if (check > 0)
            b.compute(check);
    }

    auto advance = [&](unsigned s) {
        // Advance(N): wait SC == lpid-1, then set SC = lpid. The
        // wait uses >= — the counter never overshoots because this
        // process is the only one allowed to write lpid.
        sim::SyncVarId sc = scVarOf(s);
        b.waitGE(sc, lpid - 1);
        b.write(sc, lpid);
    };

    for (unsigned s = 0; s < loop.body.size(); ++s) {
        bool active = dep::stmtActive(loop, loop.body[s], lpid);

        if (active) {
            for (const dep::Dep &d : sinkDeps_[s]) {
                long dist = d.linearDistance(m);
                if (dist <= 0) {
                    // A 2-D distance folded to <= 0 by
                    // linearization never has an in-bounds source
                    // (in-bounds implies lex order, which the
                    // linearization preserves, i.e. dist >= 1).
                    // Waiting would target this very iteration's
                    // SC — against a textually later source that
                    // is a same-program deadlock.
                    continue;
                }
                if (static_cast<std::uint64_t>(dist) >= lpid)
                    continue;
                if (cfg_.exactBoundaries &&
                    !dep::sinkHasSource(loop, d, lpid)) {
                    continue; // a linearization-only arc
                }
                // Await(d, N): wait SC[N] >= lpid - d.
                b.waitGE(scVarOf(d.src), lpid - dist);
            }
            emitStatementBody(loop, s, i, j, *layout_, b);
        }

        if (scIndexOf_[s] < 0)
            continue;
        if (active || cfg_.earlyBranchSignals)
            advance(s);
        else
            continue; // deferred below
    }

    // Late placement: untaken-branch sources still must advance
    // their SCs (on all paths), just at the end of the iteration.
    if (!cfg_.earlyBranchSignals) {
        for (unsigned s = 0; s < loop.body.size(); ++s) {
            if (scIndexOf_[s] >= 0 &&
                !dep::stmtActive(loop, loop.body[s], lpid)) {
                advance(s);
            }
        }
    }
    return prog;
}

} // namespace sync
} // namespace psync
