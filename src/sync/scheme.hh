/**
 * @file
 * Common interface of the data-synchronization schemes.
 *
 * The paper classifies schemes by how synchronization variables are
 * used (section 3) and proposes the process-oriented scheme
 * (section 4):
 *
 *  - data-oriented / reference-based: one key per datum, access
 *    order numbers checked against the key (Cedar style);
 *  - data-oriented / instance-based: one full/empty key (and one
 *    storage location) per *value instance* after renaming (HEP
 *    style);
 *  - statement-oriented: one statement counter per source
 *    statement, Advance/Await (Alliant FX/8 style);
 *  - process-oriented: one process counter per iteration, folded
 *    onto X hardware counters — the paper's contribution, in both
 *    the basic (Fig. 4.2) and improved (Fig. 4.3) primitive sets.
 *
 * A scheme is planned once for a (loop, dependence graph, machine)
 * triple — allocating its synchronization variables on the
 * machine's fabric and precomputing whatever order numbers it needs
 * — and then emits one straight-line Program per iteration.
 */

#ifndef PSYNC_SYNC_SCHEME_HH
#define PSYNC_SYNC_SCHEME_HH

#include <memory>
#include <string>
#include <vector>

#include "dep/dep_graph.hh"
#include "dep/loop_ir.hh"
#include "sim/program.hh"
#include "sim/sync_fabric.hh"

namespace psync {
namespace sync {

/** The scheme taxonomy of sections 3 and 4. */
enum class SchemeKind
{
    /** No synchronization: sequential or Doall baseline. */
    none,
    /** Data-oriented, reference-based (keys, Fig. 3.1a). */
    referenceBased,
    /** Data-oriented, instance-based (full/empty, Fig. 3.1b). */
    instanceBased,
    /** Statement counters, Advance/Await (Fig. 3.2). */
    statementOriented,
    /** Process counters, basic primitives (Fig. 4.2). */
    processBasic,
    /** Process counters, improved primitives (Fig. 4.3). */
    processImproved,
};

/** Short printable name of a scheme kind. */
const char *schemeKindName(SchemeKind kind);

/** Tunables shared by the schemes. */
struct SchemeConfig
{
    /** X: hardware process counters for folding (section 4). */
    unsigned numPcs = 16;

    /** Statement counters available (Alliant had a small file). */
    unsigned numScs = 256;

    /**
     * Per-reference, per-nest-depth compute cycles data-oriented
     * schemes spend testing loop boundaries in nested loops
     * (the O(r*d) overhead of section 5, Example 2).
     */
    sim::Tick boundaryCheckCost = 2;

    /**
     * Process/statement schemes on nested loops: test loop
     * boundaries in software and skip the waits linearization
     * manufactures (Fig. 5.2, dashed arcs), paying the same
     * O(r*d)-per-iteration check the data-oriented schemes pay.
     * Off (the paper's choice) enforces the extra arcs instead:
     * "some parallelism may be lost from these extra dependences,
     * but the complexity of detecting boundaries is avoided."
     */
    bool exactBoundaries = false;

    /**
     * Reference-based scheme only: combine the key test, data
     * access and key increment into one memory-module request
     * serviced by a Cedar-style synchronization processor
     * (section 3.1, [26]) instead of a wait / access / increment
     * transaction triple.
     */
    bool cedarCombining = false;

    /**
     * Emit signals of branch-untaken sources as early as possible
     * (the Fig. 5.3 placement); when false they are deferred to
     * the end of the iteration, the naive placement E7 compares
     * against.
     */
    bool earlyBranchSignals = true;

    /**
     * Optional event tracer: schemes label the synchronization
     * variables they allocate ("pc[i]", "sc[i]", "key[i]") so trace
     * summaries read in source terms. Not owned.
     */
    sim::Tracer *tracer = nullptr;
};

/** Static characteristics of a planned scheme (benches report). */
struct SchemePlan
{
    /** Synchronization variables allocated. */
    std::uint64_t numSyncVars = 0;

    /** Bytes of synchronization state (keys, counters). */
    std::uint64_t syncStorageBytes = 0;

    /** Extra data storage for renamed instances (instance-based). */
    std::uint64_t renamedStorageBytes = 0;

    /** Writes needed to initialize the synchronization state. */
    std::uint64_t initWrites = 0;

    /**
     * Dependences the scheme guarantees; the trace checker
     * verifies exactly these after a run.
     */
    std::vector<dep::Dep> depsVerified;
};

/** A data-synchronization scheme (strategy object). */
class Scheme
{
  public:
    virtual ~Scheme() = default;

    virtual SchemeKind kind() const = 0;

    /** Short name for tables ("process-basic", "reference", ...). */
    std::string name() const { return schemeKindName(kind()); }

    /**
     * Allocate synchronization variables on `fabric` and precompute
     * per-iteration emission state for `graph`'s loop.
     * Must be called exactly once per scheme instance.
     */
    virtual SchemePlan plan(const dep::DepGraph &graph,
                            const dep::DataLayout &layout,
                            sim::SyncFabric &fabric,
                            const SchemeConfig &cfg) = 0;

    /** Emit the transformed program of iteration `lpid` (1-based). */
    virtual sim::Program emit(std::uint64_t lpid) const = 0;
};

/** Factory over the taxonomy. */
std::unique_ptr<Scheme> makeScheme(SchemeKind kind);

/** All kinds that actually synchronize (for sweeps). */
std::vector<SchemeKind> allSyncSchemes();

/**
 * Shared emission helper: append the body of statement `stmt_idx`
 * of `loop` at iteration (i, j) — reads, compute, writes — wrapped
 * in stmtStart/stmtEnd markers. Used by every scheme. Emits through
 * the IR builder so every op carries a stable id.
 */
void emitStatementBody(const dep::Loop &loop, unsigned stmt_idx,
                       long i, long j, const dep::DataLayout &layout,
                       ir::ProgramBuilder &out);

} // namespace sync
} // namespace psync

#endif // PSYNC_SYNC_SCHEME_HH
