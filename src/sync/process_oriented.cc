#include "sync/process_oriented.hh"

#include <algorithm>

#include "dep/transform.hh"
#include "sim/logging.hh"

namespace psync {
namespace sync {

SchemePlan
ProcessOrientedScheme::plan(const dep::DepGraph &graph,
                            const dep::DataLayout &layout,
                            sim::SyncFabric &fabric,
                            const SchemeConfig &cfg)
{
    graph_ = &graph;
    layout_ = &layout;
    cfg_ = cfg;

    const dep::Loop &loop = graph.loop();
    if (cfg.numPcs == 0)
        sim::fatal("process-oriented scheme needs at least one PC");
    numPcs_ = cfg.numPcs;

    // Number the source statements 1..m in program order; the step
    // of a PC after a source completes is that source's number.
    stepOf_.assign(loop.body.size(), 0);
    sinkDeps_.assign(loop.body.size(), {});
    unsigned step = 0;
    for (const dep::Dep &d : graph.enforced()) {
        sinkDeps_[d.dst].push_back(d);
        if (stepOf_[d.src] == 0)
            stepOf_[d.src] = 1; // provisional; renumbered below
    }
    for (unsigned s = 0; s < loop.body.size(); ++s) {
        if (stepOf_[s] != 0) {
            stepOf_[s] = ++step;
            lastSource_ = s;
            hasSources_ = true;
        }
    }

    // One PC per process, folded onto X counters. PC[i] starts
    // owned by the first process that maps to it: <i, 0> (or <X, 0>
    // for counter 0 with 1-based pids).
    pcBase_ = fabric.allocate(numPcs_, 0);
    for (unsigned v = 0; v < numPcs_; ++v) {
        std::uint32_t first_owner = (v == 0) ? numPcs_ : v;
        fabric.poke(pcBase_ + v, sim::PcWord::pack(first_owner, 0));
        PSYNC_TRACE(cfg.tracer,
                    nameSyncVar(pcBase_ + v,
                                "pc[" + std::to_string(v) + "]"));
    }

    SchemePlan result;
    result.numSyncVars = numPcs_;
    result.syncStorageBytes = static_cast<std::uint64_t>(numPcs_) * 8;
    result.initWrites = numPcs_;
    result.depsVerified = graph.crossIteration();
    return result;
}

sim::Program
ProcessOrientedScheme::emit(std::uint64_t lpid) const
{
    const dep::Loop &loop = graph_->loop();
    sim::Program prog;
    prog.iter = lpid;
    ir::ProgramBuilder b(prog);
    long i = 0, j = 0;
    loop.indicesOf(lpid, i, j);
    const long m = loop.innerTrip();

    sim::SyncVarId my_pc = pcVarOf(lpid);
    std::uint32_t pid = static_cast<std::uint32_t>(lpid);
    bool acquired = false; // basic primitives: get_PC emitted yet?

    // Exact-boundary mode charges the O(r*d) test once per
    // iteration, like the data-oriented schemes (Example 2).
    if (cfg_.exactBoundaries && loop.depth >= 2) {
        unsigned total_refs = 0;
        for (const dep::Statement &stmt : loop.body)
            total_refs += stmt.refs.size();
        sim::Tick check = static_cast<sim::Tick>(total_refs) *
                          loop.depth * cfg_.boundaryCheckCost;
        if (check > 0)
            b.compute(check);
    }

    auto emit_get = [&]() {
        if (!improved_ && !acquired) {
            b.waitGE(my_pc, sim::PcWord::pack(pid, 0));
            acquired = true;
        }
    };

    for (unsigned s = 0; s < loop.body.size(); ++s) {
        bool active = dep::stmtActive(loop, loop.body[s], lpid);

        if (active) {
            // Sink first: wait for every enforced source instance.
            for (const dep::Dep &d : sinkDeps_[s]) {
                long dist = d.linearDistance(m);
                if (dist <= 0) {
                    // Folded to <= 0 by linearization: no instance
                    // of this arc has an in-bounds source, and a
                    // zero distance would make this process wait
                    // on its own PC reaching a later source's step
                    // — a same-program deadlock.
                    continue;
                }
                if (static_cast<std::uint64_t>(dist) >= lpid)
                    continue; // source before the first iteration
                if (cfg_.exactBoundaries &&
                    !dep::sinkHasSource(loop, d, lpid)) {
                    continue; // a linearization-only arc
                }
                std::uint64_t src_lpid = lpid - dist;
                b.waitGE(pcVarOf(src_lpid),
                         sim::PcWord::pack(
                             static_cast<std::uint32_t>(src_lpid),
                             stepOf_[d.src]));
            }
            emitStatementBody(loop, s, i, j, *layout_, b);
        }

        if (stepOf_[s] == 0)
            continue; // not a source

        if (s == lastSource_) {
            // Completion of the last source statement transfers the
            // PC to process lpid + X — on every path (Example 3).
            sim::SyncWord next =
                sim::PcWord::pack(pid + numPcs_, 0);
            if (improved_) {
                b.pcTransfer(my_pc, next,
                             sim::PcWord::pack(pid, 0));
            } else {
                emit_get();
                b.write(my_pc, next);
            }
        } else if (active || cfg_.earlyBranchSignals) {
            // set_PC / mark_PC after a completed source. When the
            // source sits on an untaken branch arm, the early
            // placement signals it here anyway (Fig. 5.3); the late
            // placement omits it — the final transfer covers it,
            // at the cost of delayed sinks.
            sim::SyncWord val = sim::PcWord::pack(pid, stepOf_[s]);
            if (improved_) {
                b.pcMark(my_pc, val);
            } else {
                emit_get();
                b.write(my_pc, val);
            }
        }
    }
    return prog;
}

} // namespace sync
} // namespace psync
