/**
 * @file
 * Data-oriented, instance-based scheme (section 3.1, Fig. 3.1b).
 *
 * Every updated value is renamed to a fresh location guarded by a
 * full/empty key, as on the Denelcor HEP: the program becomes
 * single-assignment, so anti- and output dependences vanish and
 * only flow dependences synchronize. A value consumed by N readers
 * is written as N copies with N keys ("write N copies of data; set
 * all keys to full") so reads proceed fully in parallel.
 *
 * The price is the paper's criticism of the class: storage and
 * key-initialization cost proportional to the *dynamic* number of
 * updates, not to the loop's variable count.
 *
 * Renamed copies are never copied back to the original arrays; the
 * reproduction measures synchronization behaviour, not final
 * memory images. Branch-guarded loops are rejected: resolving
 * which renamed instance reaches a conditional read requires the
 * reaching-definitions machinery of a full functional-language
 * compiler, which the paper does not claim for this class.
 */

#ifndef PSYNC_SYNC_INSTANCE_BASED_HH
#define PSYNC_SYNC_INSTANCE_BASED_HH

#include <vector>

#include "sync/scheme.hh"

namespace psync {
namespace sync {

/** Full/empty-bit scheme over renamed single-assignment storage. */
class InstanceBasedScheme : public Scheme
{
  public:
    SchemeKind kind() const override
    {
        return SchemeKind::instanceBased;
    }

    SchemePlan plan(const dep::DepGraph &graph,
                    const dep::DataLayout &layout,
                    sim::SyncFabric &fabric,
                    const SchemeConfig &cfg) override;

    sim::Program emit(std::uint64_t lpid) const override;

    /** Copies written per instance of write slot `slot`. */
    unsigned copiesOfSlot(unsigned slot) const
    {
        return writeSlots_[slot].copies;
    }

  private:
    /** A static write reference: one renamed instance per iter. */
    struct WriteSlot
    {
        unsigned stmt = 0;
        unsigned ref = 0;
        /** Flow deps consuming this slot's value, reader order. */
        std::vector<dep::Dep> readers;
        /** Data copies written (max(1, #readers)). */
        unsigned copies = 1;
        /** Keys (one per reader). */
        unsigned keys = 0;
        /** Offset of this slot's first key within an iteration. */
        unsigned keyOffset = 0;
        /** Offset of this slot's first copy within an iteration. */
        unsigned copyOffset = 0;
    };

    /**
     * One candidate producer of a read, in reaching-definition
     * priority order (nearest distance first; on ties the textually
     * later write). The producer that actually reaches a given
     * instance is the first candidate whose source indices are in
     * bounds there (dep::sinkHasSource) — at loop boundaries the
     * nearest arc can fall outside the iteration space while a
     * farther one still lands inside it.
     */
    struct ReadSource
    {
        long distance = 0;       ///< linearized
        unsigned slot = 0;       ///< producing write slot
        unsigned readerIndex = 0;///< which key/copy of the slot
        dep::Dep dep;            ///< the candidate flow dependence
    };

    sim::SyncVarId keyVarOf(std::uint64_t writer_lpid, unsigned slot,
                            unsigned reader_index) const;
    sim::Addr copyAddrOf(std::uint64_t writer_lpid, unsigned slot,
                         unsigned reader_index) const;

    const dep::DepGraph *graph_ = nullptr;
    const dep::DataLayout *layout_ = nullptr;
    SchemeConfig cfg_;

    std::vector<WriteSlot> writeSlots_;
    /** Write slot of (stmt, ref); -1 when not a write. */
    std::vector<std::vector<int>> slotOf_;
    /** Producer candidates of read (stmt, ref), priority order. */
    std::vector<std::vector<std::vector<ReadSource>>> readSrc_;

    sim::SyncVarId keyBase_ = 0;
    unsigned keysPerIter_ = 0;
    unsigned copiesPerIter_ = 0;
    sim::Addr copyRegionBase_ = 0;
};

} // namespace sync
} // namespace psync

#endif // PSYNC_SYNC_INSTANCE_BASED_HH
