/**
 * @file
 * A raw file of process counters for hand-transformed loops.
 *
 * The section 5 examples (pipelined relaxation, nested loops, FFT
 * phases) use the process-oriented primitives directly on X folded
 * PCs rather than going through the generic Doacross codegen. This
 * helper owns the allocation and initialization of the PC block and
 * builds the primitive ops with the right <owner, step> encodings.
 */

#ifndef PSYNC_SYNC_PC_FILE_HH
#define PSYNC_SYNC_PC_FILE_HH

#include "sim/program.hh"
#include "sim/sync_fabric.hh"

namespace psync {
namespace sync {

/** X folded process counters plus primitive-op builders. */
class PcFile
{
  public:
    /**
     * Allocate and initialize X PCs on `fabric`: PC[i mod X] starts
     * owned by process i for the first X processes (1-based pids).
     */
    PcFile(sim::SyncFabric &fabric, unsigned num_pcs);

    unsigned numPcs() const { return numPcs_; }

    sim::SyncVarId
    varOf(std::uint64_t lpid) const
    {
        return base_ + static_cast<sim::SyncVarId>(lpid % numPcs_);
    }

    /** wait_PC(dist, step) issued by process `lpid`. */
    sim::Op
    opWait(std::uint64_t lpid, std::uint64_t dist,
           std::uint32_t step) const
    {
        std::uint64_t src = lpid - dist;
        return sim::Op::mkWaitGE(
            varOf(src),
            sim::PcWord::pack(static_cast<std::uint32_t>(src), step));
    }

    /** get_PC() for process `lpid` (basic primitives). */
    sim::Op
    opGet(std::uint64_t lpid) const
    {
        return sim::Op::mkWaitGE(
            varOf(lpid),
            sim::PcWord::pack(static_cast<std::uint32_t>(lpid), 0));
    }

    /** set_PC(step) for process `lpid` (basic primitives). */
    sim::Op
    opSet(std::uint64_t lpid, std::uint32_t step) const
    {
        return sim::Op::mkWrite(
            varOf(lpid),
            sim::PcWord::pack(static_cast<std::uint32_t>(lpid), step));
    }

    /** release_PC() for process `lpid` (basic primitives). */
    sim::Op
    opRelease(std::uint64_t lpid) const
    {
        return sim::Op::mkWrite(
            varOf(lpid),
            sim::PcWord::pack(
                static_cast<std::uint32_t>(lpid + numPcs_), 0));
    }

    /** mark_PC(step) for process `lpid` (improved primitives). */
    sim::Op
    opMark(std::uint64_t lpid, std::uint32_t step) const
    {
        return sim::Op::mkPcMark(
            varOf(lpid),
            sim::PcWord::pack(static_cast<std::uint32_t>(lpid), step));
    }

    /** transfer_PC() for process `lpid` (improved primitives). */
    sim::Op
    opTransfer(std::uint64_t lpid) const
    {
        return sim::Op::mkPcTransfer(
            varOf(lpid),
            sim::PcWord::pack(
                static_cast<std::uint32_t>(lpid + numPcs_), 0),
            sim::PcWord::pack(static_cast<std::uint32_t>(lpid), 0));
    }

  private:
    sim::SyncVarId base_;
    unsigned numPcs_;
};

} // namespace sync
} // namespace psync

#endif // PSYNC_SYNC_PC_FILE_HH
