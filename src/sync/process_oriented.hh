/**
 * @file
 * The process-oriented synchronization scheme — the paper's
 * contribution (section 4).
 *
 * Each iteration (process) owns one process counter PC =
 * <owner, step>, folded onto X hardware counters so that processes
 * i, X+i, 2X+i, ... share PC[i mod X]. The step advances after each
 * completed source statement; sinks spin on the source process's
 * PC. Two primitive sets are provided:
 *
 *  - basic (Fig. 4.2): get_PC / set_PC / release_PC / wait_PC —
 *    a process must acquire its PC before the first set;
 *  - improved (Fig. 4.3): load_index / mark_PC / transfer_PC — a
 *    mark proceeds without waiting when the PC has not been
 *    transferred yet; only the final transfer may block.
 */

#ifndef PSYNC_SYNC_PROCESS_ORIENTED_HH
#define PSYNC_SYNC_PROCESS_ORIENTED_HH

#include <vector>

#include "sync/scheme.hh"

namespace psync {
namespace sync {

/** Process-counter scheme, basic or improved primitives. */
class ProcessOrientedScheme : public Scheme
{
  public:
    explicit ProcessOrientedScheme(bool improved)
        : improved_(improved)
    {}

    SchemeKind
    kind() const override
    {
        return improved_ ? SchemeKind::processImproved
                         : SchemeKind::processBasic;
    }

    SchemePlan plan(const dep::DepGraph &graph,
                    const dep::DataLayout &layout,
                    sim::SyncFabric &fabric,
                    const SchemeConfig &cfg) override;

    sim::Program emit(std::uint64_t lpid) const override;

    /** X, the number of hardware PCs in use. */
    unsigned numPcs() const { return numPcs_; }

    /** First fabric variable of the PC block. */
    sim::SyncVarId pcBase() const { return pcBase_; }

    /** Step number of a source statement (0 = not a source). */
    unsigned stepOf(unsigned stmt_idx) const
    {
        return stepOf_[stmt_idx];
    }

    /** Fabric variable holding the PC of process `lpid`. */
    sim::SyncVarId
    pcVarOf(std::uint64_t lpid) const
    {
        return pcBase_ + static_cast<sim::SyncVarId>(lpid % numPcs_);
    }

  private:
    bool improved_;
    const dep::DepGraph *graph_ = nullptr;
    const dep::DataLayout *layout_ = nullptr;
    SchemeConfig cfg_;

    sim::SyncVarId pcBase_ = 0;
    unsigned numPcs_ = 1;
    /** Step per statement; 0 when the statement is not a source. */
    std::vector<unsigned> stepOf_;
    /** Index of the last source statement (owns release/transfer). */
    unsigned lastSource_ = 0;
    bool hasSources_ = false;
    /** Enforced incoming deps per sink statement. */
    std::vector<std::vector<dep::Dep>> sinkDeps_;
};

} // namespace sync
} // namespace psync

#endif // PSYNC_SYNC_PROCESS_ORIENTED_HH
