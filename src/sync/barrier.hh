/**
 * @file
 * Barrier synchronization built two ways (section 5, Example 4).
 *
 * The counter barrier funnels every arrival through one atomically
 * incremented word and one release flag — the hot-spot pattern the
 * paper wants to avoid. The butterfly barrier is expressed with
 * process-counter primitives: processor pid at stage i marks its
 * own PC and spins on the PC of pid xor 2^(i-1); no atomic
 * operation is needed and no single location is hammered.
 *
 * Both emit op sequences for repeated episodes (generations), as
 * the wavefront and FFT workloads require.
 */

#ifndef PSYNC_SYNC_BARRIER_HH
#define PSYNC_SYNC_BARRIER_HH

#include "sim/program.hh"
#include "sim/sync_fabric.hh"

namespace psync {
namespace sync {

/** Classic fetch&add counter barrier with a release flag. */
class CounterBarrier
{
  public:
    /** Allocates the counter and release variables on `fabric`. */
    CounterBarrier(sim::SyncFabric &fabric, unsigned num_procs);

    /** Append one barrier episode; generations are 1-based. */
    void emit(sim::Program &prog, unsigned generation) const;

    unsigned numProcs() const { return numProcs_; }
    sim::SyncVarId counterVar() const { return counter_; }
    sim::SyncVarId releaseVar() const { return release_; }

  private:
    sim::SyncVarId counter_;
    sim::SyncVarId release_;
    unsigned numProcs_;
};

/**
 * Dissemination barrier on process counters.
 *
 * The paper notes that "with a minor modification, b_barrier() can
 * work even when P is not a power of 2 [11]" — the reference is
 * Hensgen, Finkel & Manber's dissemination barrier: ceil(log2 P)
 * rounds in which processor pid signals (pid + 2^(k-1)) mod P and
 * waits for (pid - 2^(k-1)) mod P. Like the butterfly it needs one
 * PC per processor, plain writes, and no atomic operations, but it
 * accepts any processor count.
 */
class DisseminationBarrier
{
  public:
    /** Allocates one PC per processor; any P >= 1. */
    DisseminationBarrier(sim::SyncFabric &fabric,
                         unsigned num_procs);

    /** Append one barrier episode for processor `pid` (1-based). */
    void emit(sim::Program &prog, sim::ProcId pid,
              unsigned episode) const;

    /** ceil(log2(P)) rounds per episode. */
    unsigned rounds() const { return rounds_; }

    sim::SyncVarId pcVarOf(sim::ProcId pid) const
    {
        return base_ + pid;
    }

  private:
    sim::SyncVarId base_;
    unsigned numProcs_;
    unsigned rounds_;
};

/** Butterfly barrier on process counters (Fig. 5.4). */
class ButterflyBarrier
{
  public:
    /**
     * Allocates one PC per processor. `num_procs` must be a power
     * of two, as in the paper ("with a minor modification,
     * b_barrier() can work even when P is not a power of 2" — the
     * modification is not reproduced here).
     */
    ButterflyBarrier(sim::SyncFabric &fabric, unsigned num_procs);

    /**
     * Append one barrier episode for processor `pid`; the steps of
     * episode e occupy [(e-1)*stages+1, e*stages].
     */
    void emit(sim::Program &prog, sim::ProcId pid,
              unsigned episode) const;

    /** log2(P) stages per episode. */
    unsigned stages() const { return stages_; }

    sim::SyncVarId pcVarOf(sim::ProcId pid) const
    {
        return base_ + pid;
    }

  private:
    sim::SyncVarId base_;
    unsigned numProcs_;
    unsigned stages_;
};

} // namespace sync
} // namespace psync

#endif // PSYNC_SYNC_BARRIER_HH
