/**
 * @file
 * Native multithreaded executor for planned iteration programs.
 *
 * Runs the same straight-line Programs the simulator's processors
 * interpret, on real host threads against a NativeSyncFabric and a
 * word-granular atomic data memory. Work distribution mirrors
 * core::SchedulePolicy: a shared fetch&add counter claims
 * iterations (plain, chunked, or guided block sizes) exactly like
 * the paper's self-scheduling dispatcher, or static cyclic
 * assignment with no shared state.
 *
 * Every tagged data access is logged with start/end *tickets* drawn
 * from one global relaxed fetch&add clock. A ticket order is
 * consistent with happens-before: if access A happens-before access
 * B through the fabric's release/acquire chains, A's end ticket was
 * drawn before B's start ticket (RMW coherence on the clock word),
 * so A.end < B.start. Replaying the log into core::TraceChecker
 * therefore verifies real-concurrency runs against the same
 * dependence arcs the simulator enforces: a scheme that fails to
 * order an arc can produce src.end > dst.start, which the checker
 * reports.
 *
 * Data words are relaxed atomics holding core::valueOfWrite values.
 * Relaxed keeps even deliberately broken schemes free of C++ data
 * races (undefined behavior would make their executions
 * meaningless and would drown TSan in expected reports); ordering
 * violations surface as checker/value mismatches instead, while
 * TSan stays pointed at the fabric and executor themselves.
 */

#ifndef PSYNC_NATIVE_EXECUTOR_HH
#define PSYNC_NATIVE_EXECUTOR_HH

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/metrics.hh"
#include "core/runtime.hh"
#include "native/fabric.hh"
#include "sim/program.hh"

namespace psync {
namespace native {

/** Knobs of one native execution. */
struct NativeConfig
{
    unsigned numThreads = 4;
    core::SchedulePolicy schedule =
        core::SchedulePolicy::selfScheduling;
    /** Iterations per claim under chunkedSelfScheduling. */
    std::uint64_t chunkSize = 4;
    /** Spin polls before a waiter parks. */
    unsigned spinLimit = 64;
    /**
     * Nonzero: perturb thread interleavings with seeded per-thread
     * jitter (short pause bursts and forced yields between ops).
     * The randomized-timing axis of the cross-validation suite;
     * 0 runs ops back to back.
     */
    std::uint64_t timingSeed = 0;
    /** Host-time budget before the run aborts as deadlocked. */
    std::uint64_t timeoutMs = 20000;
    /** Record tagged data accesses for replay/verification. */
    bool recordAccesses = true;
    /**
     * Host-clock latency instrumentation: time each blocking wait
     * (spin-vs-park split, park wakeup latency) into per-thread
     * log2 histograms and count fetch&add CAS retries. Off by
     * default — the untimed hot path never reads the clock.
     */
    bool profile = false;
};

/** One logged data access (tickets, not simulated ticks). */
struct AccessRecord
{
    std::uint64_t start = 0;
    std::uint64_t end = 0;
    sim::Addr addr = 0;
    std::uint64_t iter = 0;
    /** Value written (functional) or actually loaded. */
    std::uint64_t value = 0;
    std::uint32_t stmt = 0;
    std::uint16_t ref = 0;
    bool isWrite = false;
};

/** Aggregate outcome of one native execution. */
struct NativeRunResult
{
    /** False: deadline hit, fabric aborted, or protocol error. */
    bool completed = false;
    std::uint64_t wallNanos = 0;
    unsigned numThreads = 0;
    std::uint64_t programsRun = 0;
    std::uint64_t syncOps = 0;
    std::uint64_t waits = 0;
    std::uint64_t spins = 0;
    std::uint64_t parks = 0;
    std::uint64_t marksSkipped = 0;
    std::uint64_t accessesLogged = 0;
    /** Fatal protocol errors (PC owned past a process, ...). */
    std::vector<std::string> errors;

    /** fetch&add CAS retries (profiling runs only). */
    std::uint64_t faRetries = 0;
    /** Blocking-wait durations in ns (profiling runs only). */
    core::LogHistogram waitNs;
    /** Final-park-slice durations in ns (profiling runs only). */
    core::LogHistogram parkWakeNs;

    double
    programsPerSec() const
    {
        if (wallNanos == 0)
            return 0.0;
        return static_cast<double>(programsRun) * 1e9 /
               static_cast<double>(wallNanos);
    }
};

/**
 * Word-granular shared data memory: one relaxed atomic per address
 * that appears in any program's data or keyed access. Built once
 * before the threads start; lookups during the run are read-only.
 */
class NativeDataMemory
{
  public:
    /** Scan programs and materialize every referenced address. */
    explicit NativeDataMemory(
        const std::vector<sim::Program> &programs);
    explicit NativeDataMemory(
        const std::vector<std::vector<sim::Program>> &per_proc);

    std::atomic<std::uint64_t> &
    word(sim::Addr addr)
    {
        return words_[index_.at(addr)];
    }

    std::size_t size() const { return words_.size(); }

    /**
     * Final contents of every written word (zero means "never
     * written" under the value rule and is skipped). Call after the
     * threads have joined.
     */
    std::map<sim::Addr, std::uint64_t> snapshot() const;

    /**
     * Zero every word, restoring the never-written state. Data
     * words are per-request payload in the runtime service (only
     * sync variables are epoch-reused), so each resubmission of a
     * cached plan starts from the same blank image a fresh
     * NativeDataMemory would. Quiescent only.
     */
    void clearAll();

  private:
    void scan(const sim::Program &program);

    std::unordered_map<sim::Addr, std::size_t> index_;
    std::deque<std::atomic<std::uint64_t>> words_;
};

/** Executes program pools / per-thread program lists natively. */
class NativeExecutor
{
  public:
    NativeExecutor(NativeSyncFabric &fabric, NativeDataMemory &data,
                   const NativeConfig &cfg);

    /**
     * Pool mode: `cfg.numThreads` threads claim programs in pool
     * order per the schedule policy (the native runDoacross path).
     */
    NativeRunResult runPool(const std::vector<sim::Program> &programs);

    /**
     * Per-processor mode: thread t executes per_proc[t] in order
     * (barrier / FFT workloads); thread count = per_proc.size().
     */
    NativeRunResult
    runPerProcessor(const std::vector<std::vector<sim::Program>> &per_proc);

    /**
     * Gang mode — the runtime service's spawn-free path. The
     * convenience run*() entry points above spawn threads per call;
     * a service instead keeps a persistent gang and drives the same
     * machinery directly:
     *
     *   executor.beginRun(lanes, record);     // leader, quiescent
     *   ok[t] = executor.runLane(programs, t, deadline); // each lane
     *   result = executor.finishRun(wall);    // leader, after all
     *                                         // lanes returned
     *
     * beginRun resets all per-run state (claim counter, ticket
     * clock, lane states, errors) and fixes the lane count the
     * schedule policy partitions over; `record` overrides
     * cfg.recordAccesses for this run, letting a service sample
     * verification every Nth request without paying for logging on
     * the rest. One executor can host any number of sequential
     * begin/lanes/finish rounds. The begin and finish calls must be
     * quiescent (no lane still running); lanes synchronize with
     * beginRun through the caller's dispatch handshake.
     */
    void beginRun(unsigned lanes, bool record_accesses);

    /**
     * Execute lane `lane`'s share of the program pool under the
     * configured schedule policy. Thread-safe across lanes of one
     * round. @return false when this lane failed or aborted.
     */
    bool runLane(const std::vector<sim::Program> &programs,
                 unsigned lane, Deadline deadline);

    /** Merge lane states into the round's result. */
    NativeRunResult finishRun(std::uint64_t wall_nanos);

    /**
     * The merged access log, sorted by end ticket (unique). Valid
     * after a run*() call returns.
     */
    const std::vector<AccessRecord> &log() const { return log_; }

    /** Replay the log into a trace sink (e.g. core::TraceChecker). */
    void replayAccesses(sim::TraceSink &sink) const;

    /**
     * Check every logged read against a functional replay of the
     * log: the value a read actually loaded must equal the value
     * the last ticket-ordered write to its address produced, and
     * the final atomic words must equal the replayed image. A
     * mismatch means real hardware visibility diverged from the
     * logged order. @return human-readable mismatches; empty = ok.
     */
    std::vector<std::string> verifyValues(size_t max_messages = 16);

  private:
    struct ThreadState
    {
        unsigned id = 0;
        std::uint64_t programsRun = 0;
        std::uint64_t syncOps = 0;
        std::uint64_t waits = 0;
        std::uint64_t spins = 0;
        std::uint64_t parks = 0;
        std::uint64_t marksSkipped = 0;
        std::vector<AccessRecord> accessLog;
        std::uint64_t jitterState = 0;
        bool failed = false;

        /** Profiling-run instrumentation (cfg.profile). */
        std::uint64_t faRetries = 0;
        core::LogHistogram waitNs;
        core::LogHistogram parkWakeNs;
    };

    std::uint64_t
    ticket()
    {
        return clock_.fetch_add(1, std::memory_order_relaxed);
    }

    void maybeJitter(ThreadState &ts);
    bool runProgram(const sim::Program &program, ThreadState &ts,
                    Deadline deadline);
    bool claimRange(std::uint64_t total, std::uint64_t &begin,
                    std::uint64_t &end);
    NativeRunResult
    collect(std::vector<ThreadState> &states,
            std::uint64_t wall_nanos, bool all_ran);
    void fail(ThreadState &ts, std::string message);

    NativeSyncFabric &fabric_;
    NativeDataMemory &data_;
    NativeConfig cfg_;
    std::atomic<std::uint64_t> clock_{1};
    std::atomic<std::uint64_t> nextClaim_{0};
    std::mutex errorsMutex_;
    std::vector<std::string> errors_;
    std::vector<AccessRecord> log_;

    /** Per-round gang state (beginRun .. finishRun). */
    std::vector<ThreadState> states_;
    unsigned laneCount_ = 0;
    bool recordAccesses_ = true;
    std::atomic<bool> anyFailed_{false};
};

} // namespace native
} // namespace psync

#endif // PSYNC_NATIVE_EXECUTOR_HH
