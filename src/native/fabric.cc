#include "native/fabric.hh"

#include <thread>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#endif

namespace psync {
namespace native {

namespace {

/** Polite spin-loop hint; falls back to nothing off x86. */
inline void
cpuRelax()
{
#if defined(__x86_64__) || defined(__i386__)
    _mm_pause();
#endif
}

/**
 * Cap on one parked sleep. Bounds the cost of the (already
 * unlikely) lost-wakeup window and keeps deadline checks live even
 * if a writer dies without notifying.
 */
constexpr auto kParkSlice = std::chrono::microseconds(500);

} // namespace

NativeSyncFabric::NativeSyncFabric(unsigned spin_limit)
    : spinLimit_(spin_limit)
{
}

NativeSyncFabric::NativeSyncFabric(const sim::SyncFabric &planned,
                                   unsigned spin_limit)
    : spinLimit_(spin_limit)
{
    unsigned count = planned.allocated();
    for (unsigned v = 0; v < count; ++v)
        words_.emplace_back(planned.peek(v));
}

sim::SyncVarId
NativeSyncFabric::allocate(unsigned count, sim::SyncWord init)
{
    auto first = static_cast<sim::SyncVarId>(words_.size());
    for (unsigned i = 0; i < count; ++i)
        words_.emplace_back(init);
    return first;
}

void
NativeSyncFabric::store(sim::SyncVarId var, sim::SyncWord value)
{
    words_[var].store(value, std::memory_order_release);
    wake(var);
}

sim::SyncWord
NativeSyncFabric::fetchAdd(sim::SyncVarId var, sim::SyncWord delta)
{
    sim::SyncWord old =
        words_[var].fetch_add(delta, std::memory_order_acq_rel);
    wake(var);
    return old;
}

sim::SyncWord
NativeSyncFabric::fetchAddCounted(sim::SyncVarId var,
                                  sim::SyncWord delta,
                                  std::uint64_t &retries)
{
    std::atomic<sim::SyncWord> &word = words_[var];
    sim::SyncWord cur = word.load(std::memory_order_relaxed);
    while (!word.compare_exchange_weak(cur, cur + delta,
                                       std::memory_order_acq_rel,
                                       std::memory_order_relaxed)) {
        ++retries;
        cpuRelax();
    }
    wake(var);
    return cur;
}

void
NativeSyncFabric::wake(sim::SyncVarId var)
{
    Shard &shard = shardOf(var);
    // seq_cst pairs with the parker's seq_cst increment: either we
    // see the waiter count and notify, or the parker's subsequent
    // value re-check sees our store and never sleeps.
    if (shard.waiters.load(std::memory_order_seq_cst) == 0)
        return;
    {
        // Empty critical section: a parker between its last check
        // and cv.wait() holds the mutex, so this bracket orders the
        // notify after it reaches the wait.
        std::lock_guard<std::mutex> lk(shard.m);
    }
    shard.cv.notify_all();
    totalWakeups_.fetch_add(1, std::memory_order_relaxed);
}

WaitOutcome
NativeSyncFabric::waitGE(sim::SyncVarId var, sim::SyncWord threshold,
                         Deadline deadline, bool timed)
{
    WaitOutcome out;
    const std::atomic<sim::SyncWord> &word = words_[var];
    using Clock = std::chrono::steady_clock;
    using std::chrono::nanoseconds;
    Clock::time_point t0;
    if (timed)
        t0 = Clock::now();
    auto nanos_since = [](Clock::time_point from) {
        return static_cast<std::uint64_t>(
            std::chrono::duration_cast<nanoseconds>(Clock::now() -
                                                    from)
                .count());
    };

    for (unsigned i = 0; i < spinLimit_; ++i) {
        if (word.load(std::memory_order_acquire) >= threshold) {
            out.satisfied = true;
            if (timed && out.spins) {
                out.waitNanos = nanos_since(t0);
                out.spinNanos = out.waitNanos;
            }
            return out;
        }
        if (aborted())
            return out;
        ++out.spins;
        cpuRelax();
        // On an oversubscribed host the writer may need our core.
        if ((i & 15u) == 15u)
            std::this_thread::yield();
    }
    if (timed)
        out.spinNanos = nanos_since(t0);

    Shard &shard = shardOf(var);
    std::unique_lock<std::mutex> lk(shard.m);
    shard.waiters.fetch_add(1, std::memory_order_seq_cst);
    Clock::time_point slice_start;
    bool slept = false;
    for (;;) {
        if (word.load(std::memory_order_seq_cst) >= threshold) {
            out.satisfied = true;
            if (timed && slept)
                out.parkWakeNanos = nanos_since(slice_start);
            break;
        }
        if (aborted())
            break;
        if (Clock::now() >= deadline) {
            lk.unlock();
            abortAll();
            lk.lock();
            break;
        }
        ++out.parks;
        totalParks_.fetch_add(1, std::memory_order_relaxed);
        if (timed) {
            slice_start = Clock::now();
            slept = true;
        }
        shard.cv.wait_for(lk, kParkSlice);
    }
    shard.waiters.fetch_sub(1, std::memory_order_seq_cst);
    if (timed)
        out.waitNanos = nanos_since(t0);
    return out;
}

void
NativeSyncFabric::abortAll()
{
    aborted_.store(true, std::memory_order_release);
    for (unsigned s = 0; s < kNumShards; ++s) {
        {
            std::lock_guard<std::mutex> lk(shards_[s].m);
        }
        shards_[s].cv.notify_all();
    }
}

} // namespace native
} // namespace psync
