#include "native/fabric.hh"

#include <algorithm>
#include <thread>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#endif

namespace psync {
namespace native {

namespace {

/** Polite spin-loop hint; falls back to nothing off x86. */
inline void
cpuRelax()
{
#if defined(__x86_64__) || defined(__i386__)
    _mm_pause();
#endif
}

/**
 * Cap on one parked sleep. Bounds the cost of the (already
 * unlikely) lost-wakeup window and keeps deadline checks live even
 * if a writer dies without notifying.
 */
constexpr auto kParkSlice = std::chrono::microseconds(500);

} // namespace

const char *
wakePolicyName(WakePolicy policy)
{
    switch (policy) {
      case WakePolicy::sharded:
        return "sharded";
      case WakePolicy::flatCombining:
        return "flat-combining";
    }
    return "?";
}

NativeSyncFabric::NativeSyncFabric(unsigned spin_limit,
                                   WakePolicy policy)
    : spinLimit_(spin_limit), policy_(policy)
{
}

NativeSyncFabric::NativeSyncFabric(const sim::SyncFabric &planned,
                                   unsigned spin_limit,
                                   WakePolicy policy)
    : spinLimit_(spin_limit), policy_(policy)
{
    unsigned count = planned.allocated();
    for (unsigned v = 0; v < count; ++v)
        words_.emplace_back(planned.peek(v));
}

NativeSyncFabric::NativeSyncFabric(
    const std::vector<sim::SyncWord> &init_words, unsigned spin_limit,
    WakePolicy policy)
    : spinLimit_(spin_limit), policy_(policy)
{
    for (sim::SyncWord w : init_words)
        words_.emplace_back(w);
}

sim::SyncVarId
NativeSyncFabric::allocate(unsigned count, sim::SyncWord init)
{
    auto first = static_cast<sim::SyncVarId>(words_.size());
    for (unsigned i = 0; i < count; ++i) {
        words_.emplace_back(init);
        if (epochEnabled_) {
            // A zero tag is stale for every epoch (epochs start at
            // 1), so reads of the new word resolve to its init
            // value — which is also what the word itself holds.
            init_.push_back(init);
            tags_.emplace_back(0);
        }
    }
    return first;
}

void
NativeSyncFabric::enableEpochReuse()
{
    init_.resize(words_.size());
    for (std::size_t v = 0; v < words_.size(); ++v)
        init_[v] = words_[v].load(std::memory_order_relaxed);
    while (tags_.size() < words_.size())
        tags_.emplace_back(0);
    epochEnabled_ = true;
}

void
NativeSyncFabric::beginEpoch()
{
    // Quiescent by contract: no concurrent accessors, and the
    // caller publishes the bump with its own happens-before edge
    // (the service's gang-dispatch handshake), so relaxed is enough.
    epoch_.fetch_add(1, std::memory_order_relaxed);
    aborted_.store(false, std::memory_order_release);
}

bool
NativeSyncFabric::claimWord(sim::SyncVarId var, std::uint64_t epoch)
{
    std::atomic<std::uint64_t> &tag = tags_[var];
    std::uint64_t cur = tag.load(std::memory_order_acquire);
    for (;;) {
        if (cur == epoch)
            return false;
        if (cur == (epoch | kClaimBit)) {
            // Another writer is initializing right now; wait for
            // the tag to land, then the word is current.
            cpuRelax();
            cur = tag.load(std::memory_order_acquire);
            continue;
        }
        if (tag.compare_exchange_weak(cur, epoch | kClaimBit,
                                      std::memory_order_acq_rel,
                                      std::memory_order_acquire))
            return true;
    }
}

/**
 * Make `var`'s word physically current for this epoch before a
 * write touches it: the claim winner rewrites the init value and
 * publishes the epoch tag; everyone else returns once the tag is
 * current. No-op when epoch reuse is off.
 */
void
NativeSyncFabric::ensureCurrent(sim::SyncVarId var)
{
    if (!epochEnabled_)
        return;
    std::uint64_t e = epoch_.load(std::memory_order_relaxed);
    if (tags_[var].load(std::memory_order_acquire) == e)
        return;
    if (claimWord(var, e)) {
        words_[var].store(init_[var], std::memory_order_relaxed);
        publishTag(var, e);
    }
}

void
NativeSyncFabric::store(sim::SyncVarId var, sim::SyncWord value)
{
    ensureCurrent(var);
    words_[var].store(value, std::memory_order_release);
    wake(var);
}

sim::SyncWord
NativeSyncFabric::fetchAdd(sim::SyncVarId var, sim::SyncWord delta)
{
    ensureCurrent(var);
    sim::SyncWord old =
        words_[var].fetch_add(delta, std::memory_order_acq_rel);
    wake(var);
    return old;
}

sim::SyncWord
NativeSyncFabric::fetchAddCounted(sim::SyncVarId var,
                                  sim::SyncWord delta,
                                  std::uint64_t &retries)
{
    ensureCurrent(var);
    std::atomic<sim::SyncWord> &word = words_[var];
    sim::SyncWord cur = word.load(std::memory_order_relaxed);
    while (!word.compare_exchange_weak(cur, cur + delta,
                                       std::memory_order_acq_rel,
                                       std::memory_order_relaxed)) {
        ++retries;
        cpuRelax();
    }
    wake(var);
    return cur;
}

void
NativeSyncFabric::wake(sim::SyncVarId var)
{
    if (policy_ == WakePolicy::flatCombining)
        wakeFlatCombining();
    else
        wakeSharded(var);
}

void
NativeSyncFabric::wakeSharded(sim::SyncVarId var)
{
    Shard &shard = shardOf(var);
    // seq_cst pairs with the parker's seq_cst increment: either we
    // see the waiter count and notify, or the parker's subsequent
    // value re-check sees our store and never sleeps.
    if (shard.waiters.load(std::memory_order_seq_cst) == 0)
        return;
    {
        // Empty critical section: a parker between its last check
        // and cv.wait() holds the mutex, so this bracket orders the
        // notify after it reaches the wait.
        std::lock_guard<std::mutex> lk(shard.m);
    }
    shard.cv.notify_all();
    totalWakeups_.fetch_add(1, std::memory_order_relaxed);
}

void
NativeSyncFabric::wakeFlatCombining()
{
    // seq_cst pairs with the parker's seq_cst registration count,
    // exactly like the sharded waiter-count handshake.
    if (fcRegistered_.load(std::memory_order_seq_cst) == 0)
        return;
    // Publish the combining request *before* trying the lock: a
    // holder that is about to release must observe it and drain on
    // our behalf.
    fcDirty_.store(true, std::memory_order_seq_cst);
    if (fcMutex_.try_lock()) {
        fcDrainLocked();
        fcMutex_.unlock();
    }
    // try_lock failed: the current holder drains while fcDirty_ is
    // set before unlocking, so our wake is delivered without this
    // writer ever blocking. The bounded park slice covers the
    // razor-thin window where the holder cleared dirty just before
    // our store yet its final value scan predates our write.
}

void
NativeSyncFabric::fcDrainLocked()
{
    while (fcDirty_.exchange(false, std::memory_order_seq_cst)) {
        bool abort_all = aborted();
        for (auto it = fcWaiters_.begin(); it != fcWaiters_.end();) {
            FcNode *node = *it;
            bool fire =
                abort_all ||
                loadValue(node->var, std::memory_order_seq_cst) >=
                    node->threshold;
            if (!fire) {
                ++it;
                continue;
            }
            if (!abort_all)
                node->satisfied.store(true,
                                      std::memory_order_release);
            {
                // Same empty-bracket discipline as the sharded
                // wake: a parker between its satisfied check and
                // cv.wait() holds the node mutex.
                std::lock_guard<std::mutex> g(node->m);
            }
            node->cv.notify_one();
            it = fcWaiters_.erase(it);
            fcRegistered_.fetch_sub(1, std::memory_order_seq_cst);
            totalWakeups_.fetch_add(1, std::memory_order_relaxed);
        }
    }
}

WaitOutcome
NativeSyncFabric::waitGE(sim::SyncVarId var, sim::SyncWord threshold,
                         Deadline deadline, bool timed)
{
    WaitOutcome out;
    using Clock = std::chrono::steady_clock;
    using std::chrono::nanoseconds;
    Clock::time_point t0;
    if (timed)
        t0 = Clock::now();
    auto nanos_since = [](Clock::time_point from) {
        return static_cast<std::uint64_t>(
            std::chrono::duration_cast<nanoseconds>(Clock::now() -
                                                    from)
                .count());
    };

    for (unsigned i = 0; i < spinLimit_; ++i) {
        if (loadValue(var, std::memory_order_acquire) >= threshold) {
            out.satisfied = true;
            if (timed && out.spins) {
                out.waitNanos = nanos_since(t0);
                out.spinNanos = out.waitNanos;
            }
            return out;
        }
        if (aborted())
            return out;
        ++out.spins;
        cpuRelax();
        // On an oversubscribed host the writer may need our core.
        if ((i & 15u) == 15u)
            std::this_thread::yield();
    }
    if (timed)
        out.spinNanos = nanos_since(t0);

    if (policy_ == WakePolicy::flatCombining)
        out = waitParkFlatCombining(var, threshold, deadline, timed,
                                    out);
    else
        out = waitParkSharded(var, threshold, deadline, timed, out);
    if (timed)
        out.waitNanos = nanos_since(t0);
    return out;
}

WaitOutcome
NativeSyncFabric::waitParkSharded(sim::SyncVarId var,
                                  sim::SyncWord threshold,
                                  Deadline deadline, bool timed,
                                  WaitOutcome out)
{
    using Clock = std::chrono::steady_clock;
    using std::chrono::nanoseconds;
    auto nanos_since = [](Clock::time_point from) {
        return static_cast<std::uint64_t>(
            std::chrono::duration_cast<nanoseconds>(Clock::now() -
                                                    from)
                .count());
    };

    Shard &shard = shardOf(var);
    std::unique_lock<std::mutex> lk(shard.m);
    shard.waiters.fetch_add(1, std::memory_order_seq_cst);
    Clock::time_point slice_start;
    bool slept = false;
    for (;;) {
        if (loadValue(var, std::memory_order_seq_cst) >= threshold) {
            out.satisfied = true;
            if (timed && slept)
                out.parkWakeNanos = nanos_since(slice_start);
            break;
        }
        if (aborted())
            break;
        if (Clock::now() >= deadline) {
            lk.unlock();
            abortAll();
            lk.lock();
            break;
        }
        ++out.parks;
        totalParks_.fetch_add(1, std::memory_order_relaxed);
        if (timed) {
            slice_start = Clock::now();
            slept = true;
        }
        shard.cv.wait_for(lk, kParkSlice);
    }
    shard.waiters.fetch_sub(1, std::memory_order_seq_cst);
    return out;
}

WaitOutcome
NativeSyncFabric::waitParkFlatCombining(sim::SyncVarId var,
                                        sim::SyncWord threshold,
                                        Deadline deadline, bool timed,
                                        WaitOutcome out)
{
    using Clock = std::chrono::steady_clock;
    using std::chrono::nanoseconds;
    auto nanos_since = [](Clock::time_point from) {
        return static_cast<std::uint64_t>(
            std::chrono::duration_cast<nanoseconds>(Clock::now() -
                                                    from)
                .count());
    };

    FcNode node;
    node.var = var;
    node.threshold = threshold;

    // Register under the combiner lock. Re-checking the value while
    // holding it closes the publication race: any writer that
    // committed before we appear on the list is visible here, and
    // any later writer either drains us or hands its dirty flag to
    // the holder that will.
    {
        std::lock_guard<std::mutex> lk(fcMutex_);
        if (loadValue(var, std::memory_order_seq_cst) >= threshold) {
            out.satisfied = true;
            return out;
        }
        if (aborted())
            return out;
        fcWaiters_.push_back(&node);
        fcRegistered_.fetch_add(1, std::memory_order_seq_cst);
        // While we hold the lock anyway, honor pending requests —
        // the combining role falls to whoever has the lock.
        fcDrainLocked();
    }

    Clock::time_point slice_start;
    bool slept = false;
    {
        std::unique_lock<std::mutex> nlk(node.m);
        for (;;) {
            if (node.satisfied.load(std::memory_order_acquire) ||
                loadValue(var, std::memory_order_seq_cst) >=
                    threshold) {
                out.satisfied = true;
                if (timed && slept)
                    out.parkWakeNanos = nanos_since(slice_start);
                break;
            }
            if (aborted())
                break;
            if (Clock::now() >= deadline) {
                nlk.unlock();
                abortAll();
                nlk.lock();
                break;
            }
            ++out.parks;
            totalParks_.fetch_add(1, std::memory_order_relaxed);
            if (timed) {
                slice_start = Clock::now();
                slept = true;
            }
            node.cv.wait_for(nlk, kParkSlice);
        }
    }

    // Deregister. The node is stack-local: it must leave the list
    // before this frame unwinds, and combiners only touch nodes
    // while holding fcMutex_, so after the erase (or after finding
    // a combiner already erased us) nobody can reach it.
    {
        std::lock_guard<std::mutex> lk(fcMutex_);
        auto it =
            std::find(fcWaiters_.begin(), fcWaiters_.end(), &node);
        if (it != fcWaiters_.end()) {
            fcWaiters_.erase(it);
            fcRegistered_.fetch_sub(1, std::memory_order_seq_cst);
        }
    }
    return out;
}

void
NativeSyncFabric::abortAll()
{
    aborted_.store(true, std::memory_order_release);
    for (unsigned s = 0; s < kNumShards; ++s) {
        {
            std::lock_guard<std::mutex> lk(shards_[s].m);
        }
        shards_[s].cv.notify_all();
    }
    if (policy_ == WakePolicy::flatCombining) {
        fcDirty_.store(true, std::memory_order_seq_cst);
        std::lock_guard<std::mutex> lk(fcMutex_);
        fcDrainLocked();
    }
}

} // namespace native
} // namespace psync
