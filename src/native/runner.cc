#include "native/runner.hh"

#include "core/value_rule.hh"
#include "core/value_trace.hh"
#include "sim/machine.hh"

namespace psync {
namespace native {

NativeDoacrossResult
runDoacrossNative(const dep::Loop &loop, sync::SchemeKind kind,
                  const core::RunConfig &cfg,
                  const NativeConfig &ncfg)
{
    NativeDoacrossResult result;

    // Planning-only machine: schemes allocate and initialize their
    // sync variables against its fabric; nothing is simulated.
    sim::Machine planning(cfg.machine);
    core::PlannedDoacross planned =
        core::planDoacross(loop, kind, cfg, planning.fabric());
    result.plan = std::move(planned.plan);

    NativeSyncFabric fabric(planning.fabric(), ncfg.spinLimit);
    NativeDataMemory data(planned.programs);
    NativeExecutor executor(fabric, data, ncfg);
    result.run = executor.runPool(planned.programs);

    if (cfg.checkTrace && ncfg.recordAccesses) {
        core::TraceChecker checker;
        executor.replayAccesses(checker);
        result.violations =
            checker.verify(loop, result.plan.depsVerified);
        result.instancesChecked = checker.instancesChecked();
        result.valueMismatches = executor.verifyValues();

        core::ValueTrace values;
        executor.replayAccesses(values);
        result.memory = values.memory();
        result.reads = values.reads();
    }
    return result;
}

} // namespace native
} // namespace psync
