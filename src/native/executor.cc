#include "native/executor.hh"

#include <algorithm>
#include <chrono>
#include <thread>

#include "core/value_rule.hh"
#include "sim/logging.hh"

namespace psync {
namespace native {

namespace {

/** Burn a few cycles without touching shared state. */
inline void
pauseSpin(unsigned n)
{
    for (unsigned i = 0; i < n; ++i) {
        // Compiler-only fence: keeps the loop from being elided
        // without generating any synchronization.
        std::atomic_signal_fence(std::memory_order_seq_cst);
    }
}

} // namespace

NativeDataMemory::NativeDataMemory(
    const std::vector<sim::Program> &programs)
{
    for (const auto &program : programs)
        scan(program);
}

NativeDataMemory::NativeDataMemory(
    const std::vector<std::vector<sim::Program>> &per_proc)
{
    for (const auto &list : per_proc)
        for (const auto &program : list)
            scan(program);
}

void
NativeDataMemory::scan(const sim::Program &program)
{
    for (const auto &op : program.ops) {
        switch (op.kind) {
          case sim::OpKind::dataRead:
          case sim::OpKind::dataWrite:
          case sim::OpKind::keyedRead:
          case sim::OpKind::keyedWrite:
            if (index_.emplace(op.addr, words_.size()).second)
                words_.emplace_back(0);
            break;
          default:
            break;
        }
    }
}

std::map<sim::Addr, std::uint64_t>
NativeDataMemory::snapshot() const
{
    std::map<sim::Addr, std::uint64_t> image;
    for (const auto &entry : index_) {
        std::uint64_t value =
            words_[entry.second].load(std::memory_order_acquire);
        if (value != 0)
            image[entry.first] = value;
    }
    return image;
}

void
NativeDataMemory::clearAll()
{
    for (auto &word : words_)
        word.store(0, std::memory_order_relaxed);
}

NativeExecutor::NativeExecutor(NativeSyncFabric &fabric,
                               NativeDataMemory &data,
                               const NativeConfig &cfg)
    : fabric_(fabric), data_(data), cfg_(cfg),
      recordAccesses_(cfg.recordAccesses)
{
}

void
NativeExecutor::fail(ThreadState &ts, std::string message)
{
    ts.failed = true;
    {
        std::lock_guard<std::mutex> lk(errorsMutex_);
        errors_.push_back(std::move(message));
    }
    fabric_.abortAll();
}

void
NativeExecutor::maybeJitter(ThreadState &ts)
{
    if (cfg_.timingSeed == 0)
        return;
    std::uint64_t r = core::mix64(ts.jitterState++);
    if ((r & 7u) == 0)
        std::this_thread::yield();
    else
        pauseSpin(static_cast<unsigned>(r & 31u));
}

bool
NativeExecutor::runProgram(const sim::Program &program,
                           ThreadState &ts, Deadline deadline)
{
    bool owned_pc = false;
    ++ts.programsRun;

    auto wait_ge = [&](sim::SyncVarId var, sim::SyncWord threshold) {
        ++ts.waits;
        WaitOutcome out =
            fabric_.waitGE(var, threshold, deadline, cfg_.profile);
        ts.spins += out.spins;
        ts.parks += out.parks;
        if (cfg_.profile && (out.spins || out.parks)) {
            // Instantly satisfied waits never blocked; recording
            // them would drown the distribution in zeros, mirroring
            // the simulator's "no edge for instant waits" rule.
            ts.waitNs.record(out.waitNanos);
            if (out.parkWakeNanos)
                ts.parkWakeNs.record(out.parkWakeNanos);
        }
        return out.satisfied;
    };

    auto fetch_add = [&](sim::SyncVarId var) {
        if (cfg_.profile)
            return fabric_.fetchAddCounted(var, 1, ts.faRetries);
        return fabric_.fetchAdd(var, 1);
    };

    for (const auto &op : program.ops) {
        if (fabric_.aborted())
            return false;
        maybeJitter(ts);
        std::uint64_t iter =
            op.iterTag ? op.iterTag : program.iter;
        switch (op.kind) {
          case sim::OpKind::stmtStart:
          case sim::OpKind::stmtEnd:
            break;
          case sim::OpKind::compute:
            // No time model natively; a compute phase is a
            // scheduling point, which on few-core hosts is what
            // actually diversifies interleavings.
            std::this_thread::yield();
            break;
          case sim::OpKind::dataRead:
          case sim::OpKind::dataWrite: {
            bool is_write = op.kind == sim::OpKind::dataWrite;
            auto &word = data_.word(op.addr);
            std::uint64_t start = ticket();
            std::uint64_t value;
            if (is_write) {
                value = core::valueOfWrite(op.stmt, op.ref, iter);
                word.store(value, std::memory_order_relaxed);
            } else {
                value = word.load(std::memory_order_relaxed);
            }
            std::uint64_t end = ticket();
            if (recordAccesses_) {
                ts.accessLog.push_back({start, end, op.addr, iter,
                                        value, op.stmt, op.ref,
                                        is_write});
            }
            break;
          }
          case sim::OpKind::syncWaitGE:
            ++ts.syncOps;
            if (!wait_ge(op.var, op.value))
                return false;
            break;
          case sim::OpKind::syncWrite:
            ++ts.syncOps;
            fabric_.store(op.var, op.value);
            break;
          case sim::OpKind::syncFetchInc:
            ++ts.syncOps;
            fetch_add(op.var);
            break;
          case sim::OpKind::pcMark: {
            ++ts.syncOps;
            if (owned_pc) {
                fabric_.store(op.var, op.value);
                break;
            }
            sim::SyncWord cur = fabric_.load(op.var);
            std::uint32_t cur_owner = sim::PcWord::owner(cur);
            std::uint32_t my_owner = sim::PcWord::owner(op.value);
            if (cur_owner < my_owner) {
                // Ownership not transferred yet; skip without
                // waiting (Fig. 4.3). Only the owner writes a PC,
                // so the load-check-store below cannot race.
                ++ts.marksSkipped;
                break;
            }
            if (cur_owner > my_owner) {
                fail(ts, sim::csprintf(
                            "PC %u owned by %u past process %u: "
                            "ownership protocol violated",
                            op.var, cur_owner, my_owner));
                return false;
            }
            owned_pc = true;
            fabric_.store(op.var, op.value);
            break;
          }
          case sim::OpKind::pcTransfer:
            ++ts.syncOps;
            if (!owned_pc) {
                if (!wait_ge(op.var, op.aux))
                    return false;
                owned_pc = true;
            }
            fabric_.store(op.var, op.value);
            break;
          case sim::OpKind::ctrBarrier: {
            ++ts.syncOps;
            std::uint64_t num_procs = op.cycles;
            sim::SyncWord old = fetch_add(op.var);
            if (old + 1 == op.value * num_procs)
                fabric_.store(op.aux, op.value);
            if (!wait_ge(op.aux, op.value))
                return false;
            break;
          }
          case sim::OpKind::keyedRead:
          case sim::OpKind::keyedWrite: {
            // The Cedar module's atomic test-access-increment,
            // unrolled: the exact-threshold key protocol admits at
            // most the accessors of one order number at a time, and
            // the acq_rel increment's release sequence orders their
            // accesses before any later-threshold accessor.
            ++ts.syncOps;
            bool is_write = op.kind == sim::OpKind::keyedWrite;
            if (!wait_ge(op.var, op.value))
                return false;
            auto &word = data_.word(op.addr);
            std::uint64_t start = ticket();
            std::uint64_t value;
            if (is_write) {
                value = core::valueOfWrite(op.stmt, op.ref, iter);
                word.store(value, std::memory_order_relaxed);
            } else {
                value = word.load(std::memory_order_relaxed);
            }
            std::uint64_t end = ticket();
            if (recordAccesses_) {
                ts.accessLog.push_back({start, end, op.addr, iter,
                                        value, op.stmt, op.ref,
                                        is_write});
            }
            fetch_add(op.var);
            break;
          }
        }
    }
    return true;
}

void
NativeExecutor::beginRun(unsigned lanes, bool record_accesses)
{
    laneCount_ = std::max(1u, lanes);
    recordAccesses_ = record_accesses;
    states_.clear();
    states_.resize(laneCount_);
    errors_.clear();
    log_.clear();
    nextClaim_.store(0, std::memory_order_relaxed);
    clock_.store(1, std::memory_order_relaxed);
    anyFailed_.store(false, std::memory_order_relaxed);
}

bool
NativeExecutor::claimRange(std::uint64_t total, std::uint64_t &begin,
                           std::uint64_t &end)
{
    switch (cfg_.schedule) {
      case core::SchedulePolicy::chunkedSelfScheduling: {
        std::uint64_t chunk =
            std::max<std::uint64_t>(1, cfg_.chunkSize);
        std::uint64_t old =
            nextClaim_.fetch_add(chunk, std::memory_order_relaxed);
        begin = old;
        end = std::min(total, old + chunk);
        return old < total;
      }
      case core::SchedulePolicy::guidedSelfScheduling: {
        std::uint64_t old =
            nextClaim_.load(std::memory_order_relaxed);
        for (;;) {
            if (old >= total)
                return false;
            std::uint64_t size = std::max<std::uint64_t>(
                1, (total - old) / (2 * laneCount_));
            if (nextClaim_.compare_exchange_weak(
                    old, old + size, std::memory_order_relaxed)) {
                begin = old;
                end = std::min(total, old + size);
                return true;
            }
        }
      }
      default: {
        std::uint64_t old =
            nextClaim_.fetch_add(1, std::memory_order_relaxed);
        begin = old;
        end = old + 1;
        return old < total;
      }
    }
}

bool
NativeExecutor::runLane(const std::vector<sim::Program> &programs,
                        unsigned lane, Deadline deadline)
{
    const std::uint64_t total = programs.size();
    ThreadState &ts = states_[lane];
    ts.id = lane;
    ts.jitterState =
        cfg_.timingSeed ? core::mix64(cfg_.timingSeed + lane) : 0;
    bool ok = true;
    if (cfg_.schedule == core::SchedulePolicy::staticCyclic) {
        for (std::uint64_t i = lane; ok && i < total;
             i += laneCount_)
            ok = runProgram(programs[i], ts, deadline);
    } else {
        std::uint64_t begin = 0, end = 0;
        while (ok && claimRange(total, begin, end)) {
            for (std::uint64_t i = begin; ok && i < end; ++i)
                ok = runProgram(programs[i], ts, deadline);
        }
    }
    if (!ok)
        anyFailed_.store(true, std::memory_order_release);
    return ok;
}

NativeRunResult
NativeExecutor::finishRun(std::uint64_t wall_nanos)
{
    return collect(states_, wall_nanos,
                   !anyFailed_.load(std::memory_order_acquire));
}

NativeRunResult
NativeExecutor::runPool(const std::vector<sim::Program> &programs)
{
    const unsigned num_threads = std::max(1u, cfg_.numThreads);
    const Deadline deadline =
        std::chrono::steady_clock::now() +
        std::chrono::milliseconds(cfg_.timeoutMs);

    beginRun(num_threads, cfg_.recordAccesses);

    auto wall_start = std::chrono::steady_clock::now();
    std::vector<std::thread> pool;
    pool.reserve(num_threads);
    for (unsigned t = 0; t < num_threads; ++t)
        pool.emplace_back(
            [&, t] { runLane(programs, t, deadline); });
    for (auto &thread : pool)
        thread.join();
    auto wall_nanos = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - wall_start)
            .count());

    return finishRun(wall_nanos);
}

NativeRunResult
NativeExecutor::runPerProcessor(
    const std::vector<std::vector<sim::Program>> &per_proc)
{
    const unsigned num_threads =
        static_cast<unsigned>(per_proc.size());
    const Deadline deadline =
        std::chrono::steady_clock::now() +
        std::chrono::milliseconds(cfg_.timeoutMs);

    beginRun(num_threads, cfg_.recordAccesses);

    auto worker = [&](unsigned tid) {
        ThreadState &ts = states_[tid];
        ts.id = tid;
        ts.jitterState =
            cfg_.timingSeed
                ? core::mix64(cfg_.timingSeed + tid)
                : 0;
        bool ok = true;
        for (const auto &program : per_proc[tid]) {
            ok = runProgram(program, ts, deadline);
            if (!ok)
                break;
        }
        if (!ok)
            anyFailed_.store(true, std::memory_order_release);
    };

    auto wall_start = std::chrono::steady_clock::now();
    std::vector<std::thread> pool;
    pool.reserve(num_threads);
    for (unsigned t = 0; t < num_threads; ++t)
        pool.emplace_back(worker, t);
    for (auto &thread : pool)
        thread.join();
    auto wall_nanos = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - wall_start)
            .count());

    return finishRun(wall_nanos);
}

NativeRunResult
NativeExecutor::collect(std::vector<ThreadState> &states,
                        std::uint64_t wall_nanos, bool all_ran)
{
    NativeRunResult r;
    r.wallNanos = wall_nanos;
    r.numThreads = static_cast<unsigned>(states.size());

    std::size_t log_size = 0;
    for (const auto &ts : states) {
        r.programsRun += ts.programsRun;
        r.syncOps += ts.syncOps;
        r.waits += ts.waits;
        r.spins += ts.spins;
        r.parks += ts.parks;
        r.marksSkipped += ts.marksSkipped;
        r.faRetries += ts.faRetries;
        r.waitNs.merge(ts.waitNs);
        r.parkWakeNs.merge(ts.parkWakeNs);
        log_size += ts.accessLog.size();
    }

    log_.clear();
    log_.reserve(log_size);
    for (auto &ts : states) {
        log_.insert(log_.end(), ts.accessLog.begin(),
                    ts.accessLog.end());
        ts.accessLog.clear();
    }
    // End tickets are globally unique, so this order is total and
    // consistent with happens-before.
    std::sort(log_.begin(), log_.end(),
              [](const AccessRecord &a, const AccessRecord &b) {
                  return a.end < b.end;
              });
    r.accessesLogged = log_.size();

    r.errors = errors_;
    r.completed =
        all_ran && !fabric_.aborted() && errors_.empty();
    return r;
}

void
NativeExecutor::replayAccesses(sim::TraceSink &sink) const
{
    for (const auto &rec : log_) {
        sink.access(rec.stmt, rec.ref, rec.iter, rec.addr,
                    rec.isWrite, rec.start, rec.end);
    }
}

std::vector<std::string>
NativeExecutor::verifyValues(size_t max_messages)
{
    std::vector<std::string> mismatches;
    if (!recordAccesses_)
        return mismatches; // nothing logged to check against
    auto report = [&](std::string msg) {
        if (mismatches.size() < max_messages)
            mismatches.push_back(std::move(msg));
    };

    std::map<sim::Addr, std::uint64_t> image;
    for (const auto &rec : log_) {
        if (rec.isWrite) {
            image[rec.addr] = rec.value;
            continue;
        }
        auto it = image.find(rec.addr);
        std::uint64_t expected = it == image.end() ? 0 : it->second;
        if (rec.value != expected) {
            report(sim::csprintf(
                "read s%u/r%u@%llu addr %llu loaded %llx, "
                "ticket-ordered replay expected %llx",
                rec.stmt, rec.ref,
                static_cast<unsigned long long>(rec.iter),
                static_cast<unsigned long long>(rec.addr),
                static_cast<unsigned long long>(rec.value),
                static_cast<unsigned long long>(expected)));
        }
    }

    std::map<sim::Addr, std::uint64_t> final_words =
        data_.snapshot();
    if (final_words != image) {
        report(sim::csprintf(
            "final memory image (%zu written words) differs from "
            "ticket-ordered replay (%zu)",
            final_words.size(), image.size()));
    }
    return mismatches;
}

} // namespace native
} // namespace psync
