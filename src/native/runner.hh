/**
 * @file
 * Native Doacross runner: the native backend's counterpart of
 * core::runDoacross.
 *
 * Planning is byte-identical to the simulator path — the same
 * core::planDoacross produces the scheme plan and per-iteration
 * programs against a planning-only sim fabric — then the variables
 * are mirrored onto a NativeSyncFabric and the programs execute on
 * real threads. Afterwards the timestamped access log is replayed
 * into the same core::TraceChecker the simulator uses, and every
 * read value is checked against a functional replay, so a native
 * run is held to exactly the dependences the scheme claims.
 */

#ifndef PSYNC_NATIVE_RUNNER_HH
#define PSYNC_NATIVE_RUNNER_HH

#include <map>
#include <string>
#include <vector>

#include "core/runtime.hh"
#include "native/executor.hh"
#include "sync/scheme.hh"

namespace psync {
namespace native {

/** Outcome of one native Doacross run. */
struct NativeDoacrossResult
{
    sync::SchemePlan plan;
    NativeRunResult run;
    /** TraceChecker violations on the native log (empty = clean). */
    std::vector<std::string> violations;
    std::uint64_t instancesChecked = 0;
    /** Read-value divergences from the ticket-ordered replay. */
    std::vector<std::string> valueMismatches;
    /**
     * Final written-memory image under the value rule; compare
     * against the ValueTrace image of a simulated run of the same
     * loop+scheme for backend cross-validation.
     */
    std::map<sim::Addr, std::uint64_t> memory;
    /** Per-read observed values keyed by core::accessKey. */
    std::map<std::uint64_t, std::uint64_t> reads;

    bool
    correct() const
    {
        return run.completed && run.errors.empty() &&
               violations.empty() && valueMismatches.empty();
    }
};

/**
 * Plan `kind` for `loop` (same rules and machine shape as
 * core::runDoacross under `cfg`), execute natively under `ncfg`,
 * verify, and report. `cfg.checkTrace` gates the checker replay the
 * same way it gates simulator trace checking.
 */
NativeDoacrossResult runDoacrossNative(const dep::Loop &loop,
                                       sync::SchemeKind kind,
                                       const core::RunConfig &cfg,
                                       const NativeConfig &ncfg);

} // namespace native
} // namespace psync

#endif // PSYNC_NATIVE_RUNNER_HH
