/**
 * @file
 * Native synchronization-variable fabric: the paper's primitives on
 * real C++11 atomics.
 *
 * Where the simulator's SyncFabric models the *cost* of get_PC /
 * set_PC / Advance / Await / full-empty keys / barrier counters,
 * this fabric implements their *semantics* on host shared memory so
 * the same planned programs run on real threads:
 *
 *   paper primitive        here                     memory order
 *   ---------------------  -----------------------  ---------------
 *   set_PC / release_PC /  store()                  release
 *     Advance / set key
 *   get_PC / read key      load()                   acquire
 *   wait_PC / Await /      waitGE()                 acquire (spin-
 *     key test                                      then-park)
 *   fetch&add (barrier     fetchAdd()               acq_rel
 *     arrival, dispatch)
 *
 * Every release-store/RMW that satisfies an acquire waitGE creates
 * the happens-before edge the scheme's dependence arc requires;
 * chained barrier arrivals stay ordered through the RMW release
 * sequence.
 *
 * Waiting is spin-then-park. After a bounded spin of acquire loads
 * (with a CPU relax hint) the waiter parks under one of two
 * interchangeable wake policies:
 *
 *  - WakePolicy::sharded (default): 64 mutex+condvar shards keyed
 *    by variable id. Writers wake a shard only when its waiter
 *    count says someone may be parked; the count handshake uses
 *    seq_cst so a parker that checked the old value cannot miss
 *    the notify (Dekker-style store/load pairs).
 *
 *  - WakePolicy::flatCombining: waiters publish (var, threshold)
 *    nodes on one combiner-locked list and park on a private
 *    condvar each. Writers never block on the wake path: they set
 *    a dirty flag and try-lock the combiner; whoever holds the
 *    lock drains all pending wakes before releasing it (HSynch-
 *    style delegation). One writer's lock acquisition thus batches
 *    the wakeups every concurrent writer requested.
 *
 * Both policies time-bound each parked sleep, so even a lost
 * notify race costs microseconds, not a hang. waitGE takes a
 * deadline past which the whole fabric aborts — a deadlocked
 * scheme turns into completed=false instead of a stuck process.
 *
 * Epoch-based reuse (the runtime service's init-cost amortization,
 * paper section 4): enableEpochReuse() snapshots the current
 * variable values as the fabric's *init image*; beginEpoch() then
 * logically restores that image in O(1) by bumping an epoch
 * counter instead of rewriting every word. Each word carries an
 * epoch tag; an access whose tag is stale sees the init value, and
 * the first write of an epoch claims the tag before publishing.
 * beginEpoch() must be called at a quiescent point (no concurrent
 * accessors) and also clears a pending abort, which is what makes
 * timeout -> abortAll -> resubmit-clean possible on a long-lived
 * fabric.
 */

#ifndef PSYNC_NATIVE_FABRIC_HH
#define PSYNC_NATIVE_FABRIC_HH

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <vector>

#include "sim/sync_fabric.hh"
#include "sim/types.hh"

namespace psync {
namespace native {

/** Host-time point used for wait deadlines. */
using Deadline = std::chrono::steady_clock::time_point;

/** How writers wake parked waitGE callers. */
enum class WakePolicy
{
    /** 64 mutex+condvar shards keyed by variable id. */
    sharded,
    /** One combiner-locked waiter list; writers delegate wakes. */
    flatCombining,
};

/** Printable wake-policy name ("sharded" / "flat-combining"). */
const char *wakePolicyName(WakePolicy policy);

/** Spin/park counters of one waitGE call. */
struct WaitOutcome
{
    /** Spin-loop polls before satisfaction (or park). */
    std::uint64_t spins = 0;
    /** Times the waiter parked on a condition variable. */
    std::uint64_t parks = 0;
    /** False: the fabric aborted (deadline or external abort). */
    bool satisfied = false;

    /**
     * Host-clock instrumentation, filled only when waitGE is called
     * with `timed == true` (profiling runs; the untimed hot path
     * never reads the clock). All in nanoseconds.
     */
    /** Total blocked time, first poll through satisfaction. */
    std::uint64_t waitNanos = 0;
    /** Portion spent in the bounded spin phase. */
    std::uint64_t spinNanos = 0;
    /**
     * Duration of the final park slice — the sleep that ended with
     * the threshold satisfied. Upper-bounds the notify-to-running
     * wakeup latency (the slice also covers time before the writer
     * committed). Zero when the wait never parked.
     */
    std::uint64_t parkWakeNanos = 0;
};

/** Synchronization variables on host atomics. */
class NativeSyncFabric
{
  public:
    explicit NativeSyncFabric(unsigned spin_limit = 64,
                              WakePolicy policy = WakePolicy::sharded);

    /**
     * Mirror a planned simulator fabric: allocate the same number
     * of variables and copy each one's current (initialized) value,
     * so programs emitted against the sim fabric's variable ids run
     * unchanged.
     */
    NativeSyncFabric(const sim::SyncFabric &planned,
                     unsigned spin_limit = 64,
                     WakePolicy policy = WakePolicy::sharded);

    /**
     * Build from a saved init image (a cached plan's snapshot of
     * the planning fabric), ready for enableEpochReuse().
     */
    NativeSyncFabric(const std::vector<sim::SyncWord> &init_words,
                     unsigned spin_limit = 64,
                     WakePolicy policy = WakePolicy::sharded);

    NativeSyncFabric(const NativeSyncFabric &) = delete;
    NativeSyncFabric &operator=(const NativeSyncFabric &) = delete;

    /** Allocate `count` variables initialized to `init`. Not
     * thread-safe; setup only. */
    sim::SyncVarId allocate(unsigned count, sim::SyncWord init);

    unsigned allocated() const
    {
        return static_cast<unsigned>(words_.size());
    }

    WakePolicy wakePolicy() const { return policy_; }

    /** Acquire-load the current value. */
    sim::SyncWord
    load(sim::SyncVarId var) const
    {
        return loadValue(var, std::memory_order_acquire);
    }

    /** Release-store a value and wake parked waiters. */
    void store(sim::SyncVarId var, sim::SyncWord value);

    /** Atomic acq_rel add; returns the pre-add value; wakes. */
    sim::SyncWord fetchAdd(sim::SyncVarId var, sim::SyncWord delta);

    /**
     * fetchAdd by CAS loop, counting retries into `retries` —
     * the contention signal a hardware fetch&add would hide.
     * Profiling-only: the uncontended path costs one extra load, so
     * the executor calls it only when profiling is enabled.
     */
    sim::SyncWord fetchAddCounted(sim::SyncVarId var,
                                  sim::SyncWord delta,
                                  std::uint64_t &retries);

    /**
     * Block until value(var) >= threshold (same unsigned order the
     * packed PC words use). Returns outcome.satisfied == false when
     * the fabric aborted or `deadline` passed (which itself aborts
     * the fabric, releasing every other waiter too). With `timed`
     * the outcome carries host-clock wait/spin/park-wake durations;
     * untimed calls never read the clock on the spin path.
     */
    WaitOutcome waitGE(sim::SyncVarId var, sim::SyncWord threshold,
                       Deadline deadline, bool timed = false);

    /** Wake everything and make all pending/future waits fail. */
    void abortAll();

    bool aborted() const
    {
        return aborted_.load(std::memory_order_acquire);
    }

    /** Non-atomic setup-time override (mirrors sim poke()). */
    void
    poke(sim::SyncVarId var, sim::SyncWord value)
    {
        words_[var].store(value, std::memory_order_release);
    }

    /**
     * Snapshot the current values as the fabric's init image and
     * switch every accessor to the epoch-tag protocol. Setup only
     * (no concurrent accessors); call once, after allocation and
     * any poke() overrides.
     */
    void enableEpochReuse();

    bool epochReuseEnabled() const { return epochEnabled_; }

    /**
     * Start a fresh execution epoch: every variable logically
     * reverts to its init-image value without any per-word write,
     * and a pending abort is cleared so an aborted (timed-out)
     * fabric is clean for the next submission. Quiescent only: the
     * caller must guarantee no concurrent accessors, and must
     * publish the bump to the next epoch's threads with a
     * happens-before edge (the service's dispatch handshake does).
     */
    void beginEpoch();

    /** Epochs started since enableEpochReuse(). */
    std::uint64_t epoch() const
    {
        return epoch_.load(std::memory_order_relaxed) - 1;
    }

    std::uint64_t
    totalParks() const
    {
        return totalParks_.load(std::memory_order_relaxed);
    }

    std::uint64_t
    totalWakeups() const
    {
        return totalWakeups_.load(std::memory_order_relaxed);
    }

  private:
    struct Shard
    {
        std::mutex m;
        std::condition_variable cv;
        /**
         * Waiters that published intent to park. seq_cst on both
         * sides of the handshake: parker increments then re-checks
         * the variable; writer stores then reads the count.
         */
        std::atomic<unsigned> waiters{0};
    };

    /** One parked flat-combining waiter (stack-allocated). */
    struct FcNode
    {
        sim::SyncVarId var = 0;
        sim::SyncWord threshold = 0;
        std::atomic<bool> satisfied{false};
        std::mutex m;
        std::condition_variable cv;
    };

    static constexpr unsigned kNumShards = 64;

    /** Tag bit marking a word mid-claim by its epoch's first writer. */
    static constexpr std::uint64_t kClaimBit = 1ull << 63;

    Shard &
    shardOf(sim::SyncVarId var) const
    {
        return shards_[var % kNumShards];
    }

    /**
     * Epoch-aware value read: a stale (or mid-claim) tag means the
     * word has not been written this epoch yet, so its logical
     * value is the init image's.
     */
    sim::SyncWord
    loadValue(sim::SyncVarId var, std::memory_order order) const
    {
        if (!epochEnabled_)
            return words_[var].load(order);
        std::uint64_t e = epoch_.load(std::memory_order_relaxed);
        if (tags_[var].load(std::memory_order_acquire) != e)
            return init_[var];
        return words_[var].load(order);
    }

    /**
     * Claim a stale word for the current epoch before its first
     * write: CAS the tag to the claim sentinel, making this thread
     * the word's exclusive initializer; everyone else spins on the
     * tag (or reads the init value) until the epoch tag lands.
     * Returns true when this caller won the claim (and must publish
     * the tag after writing); false when the tag is already current.
     */
    bool claimWord(sim::SyncVarId var, std::uint64_t epoch);

    /** Pre-write hook: lazily reinit a stale word for this epoch. */
    void ensureCurrent(sim::SyncVarId var);

    void publishTag(sim::SyncVarId var, std::uint64_t epoch)
    {
        tags_[var].store(epoch, std::memory_order_release);
    }

    void wake(sim::SyncVarId var);
    void wakeSharded(sim::SyncVarId var);
    void wakeFlatCombining();

    /** Drain pending FC wakes; call with fcMutex_ held. Every
     * holder of fcMutex_ drains before unlocking, so a writer whose
     * try_lock failed still gets its wake delivered. */
    void fcDrainLocked();

    WaitOutcome waitParkSharded(sim::SyncVarId var,
                                sim::SyncWord threshold,
                                Deadline deadline, bool timed,
                                WaitOutcome out);
    WaitOutcome waitParkFlatCombining(sim::SyncVarId var,
                                      sim::SyncWord threshold,
                                      Deadline deadline, bool timed,
                                      WaitOutcome out);

    /**
     * deque keeps element addresses stable across setup-time
     * allocate() growth (atomics are neither movable nor copyable).
     */
    std::deque<std::atomic<sim::SyncWord>> words_;
    /** Per-word epoch tags (epoch reuse only; parallel to words_). */
    std::deque<std::atomic<std::uint64_t>> tags_;
    /** Init image restored (logically) by each beginEpoch(). */
    std::vector<sim::SyncWord> init_;
    mutable Shard shards_[kNumShards];
    unsigned spinLimit_;
    WakePolicy policy_;
    bool epochEnabled_ = false;
    /** Current epoch number; tags start stale at 0, epochs at 1. */
    std::atomic<std::uint64_t> epoch_{1};
    std::atomic<bool> aborted_{false};
    std::atomic<std::uint64_t> totalParks_{0};
    std::atomic<std::uint64_t> totalWakeups_{0};

    /** Flat-combining state (policy_ == flatCombining). */
    std::mutex fcMutex_;
    std::vector<FcNode *> fcWaiters_;
    std::atomic<bool> fcDirty_{false};
    std::atomic<unsigned> fcRegistered_{0};
};

} // namespace native
} // namespace psync

#endif // PSYNC_NATIVE_FABRIC_HH
