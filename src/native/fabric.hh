/**
 * @file
 * Native synchronization-variable fabric: the paper's primitives on
 * real C++11 atomics.
 *
 * Where the simulator's SyncFabric models the *cost* of get_PC /
 * set_PC / Advance / Await / full-empty keys / barrier counters,
 * this fabric implements their *semantics* on host shared memory so
 * the same planned programs run on real threads:
 *
 *   paper primitive        here                     memory order
 *   ---------------------  -----------------------  ---------------
 *   set_PC / release_PC /  store()                  release
 *     Advance / set key
 *   get_PC / read key      load()                   acquire
 *   wait_PC / Await /      waitGE()                 acquire (spin-
 *     key test                                      then-park)
 *   fetch&add (barrier     fetchAdd()               acq_rel
 *     arrival, dispatch)
 *
 * Every release-store/RMW that satisfies an acquire waitGE creates
 * the happens-before edge the scheme's dependence arc requires;
 * chained barrier arrivals stay ordered through the RMW release
 * sequence.
 *
 * Waiting is spin-then-park: a bounded spin of acquire loads (with
 * a CPU relax hint), then parking on one of a small set of sharded
 * mutex+condvar pairs keyed by variable id. Writers wake a shard
 * only when its waiter count says someone may be parked; the
 * waiter count handshake uses seq_cst so a parker that checked the
 * old value cannot miss the notify (Dekker-style store/load pairs),
 * and parked waits additionally time-bound each sleep so even a
 * lost race costs microseconds, not a hang. waitGE takes a deadline
 * past which the whole fabric aborts — a deadlocked scheme turns
 * into completed=false instead of a stuck process.
 */

#ifndef PSYNC_NATIVE_FABRIC_HH
#define PSYNC_NATIVE_FABRIC_HH

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>

#include "sim/sync_fabric.hh"
#include "sim/types.hh"

namespace psync {
namespace native {

/** Host-time point used for wait deadlines. */
using Deadline = std::chrono::steady_clock::time_point;

/** Spin/park counters of one waitGE call. */
struct WaitOutcome
{
    /** Spin-loop polls before satisfaction (or park). */
    std::uint64_t spins = 0;
    /** Times the waiter parked on a condition variable. */
    std::uint64_t parks = 0;
    /** False: the fabric aborted (deadline or external abort). */
    bool satisfied = false;

    /**
     * Host-clock instrumentation, filled only when waitGE is called
     * with `timed == true` (profiling runs; the untimed hot path
     * never reads the clock). All in nanoseconds.
     */
    /** Total blocked time, first poll through satisfaction. */
    std::uint64_t waitNanos = 0;
    /** Portion spent in the bounded spin phase. */
    std::uint64_t spinNanos = 0;
    /**
     * Duration of the final park slice — the sleep that ended with
     * the threshold satisfied. Upper-bounds the notify-to-running
     * wakeup latency (the slice also covers time before the writer
     * committed). Zero when the wait never parked.
     */
    std::uint64_t parkWakeNanos = 0;
};

/** Synchronization variables on host atomics. */
class NativeSyncFabric
{
  public:
    explicit NativeSyncFabric(unsigned spin_limit = 64);

    /**
     * Mirror a planned simulator fabric: allocate the same number
     * of variables and copy each one's current (initialized) value,
     * so programs emitted against the sim fabric's variable ids run
     * unchanged.
     */
    NativeSyncFabric(const sim::SyncFabric &planned,
                     unsigned spin_limit = 64);

    NativeSyncFabric(const NativeSyncFabric &) = delete;
    NativeSyncFabric &operator=(const NativeSyncFabric &) = delete;

    /** Allocate `count` variables initialized to `init`. Not
     * thread-safe; setup only. */
    sim::SyncVarId allocate(unsigned count, sim::SyncWord init);

    unsigned allocated() const
    {
        return static_cast<unsigned>(words_.size());
    }

    /** Acquire-load the current value. */
    sim::SyncWord
    load(sim::SyncVarId var) const
    {
        return words_[var].load(std::memory_order_acquire);
    }

    /** Release-store a value and wake parked waiters. */
    void store(sim::SyncVarId var, sim::SyncWord value);

    /** Atomic acq_rel add; returns the pre-add value; wakes. */
    sim::SyncWord fetchAdd(sim::SyncVarId var, sim::SyncWord delta);

    /**
     * fetchAdd by CAS loop, counting retries into `retries` —
     * the contention signal a hardware fetch&add would hide.
     * Profiling-only: the uncontended path costs one extra load, so
     * the executor calls it only when profiling is enabled.
     */
    sim::SyncWord fetchAddCounted(sim::SyncVarId var,
                                  sim::SyncWord delta,
                                  std::uint64_t &retries);

    /**
     * Block until value(var) >= threshold (same unsigned order the
     * packed PC words use). Returns outcome.satisfied == false when
     * the fabric aborted or `deadline` passed (which itself aborts
     * the fabric, releasing every other waiter too). With `timed`
     * the outcome carries host-clock wait/spin/park-wake durations;
     * untimed calls never read the clock on the spin path.
     */
    WaitOutcome waitGE(sim::SyncVarId var, sim::SyncWord threshold,
                       Deadline deadline, bool timed = false);

    /** Wake everything and make all pending/future waits fail. */
    void abortAll();

    bool aborted() const
    {
        return aborted_.load(std::memory_order_acquire);
    }

    /** Non-atomic setup-time override (mirrors sim poke()). */
    void
    poke(sim::SyncVarId var, sim::SyncWord value)
    {
        words_[var].store(value, std::memory_order_release);
    }

    std::uint64_t
    totalParks() const
    {
        return totalParks_.load(std::memory_order_relaxed);
    }

    std::uint64_t
    totalWakeups() const
    {
        return totalWakeups_.load(std::memory_order_relaxed);
    }

  private:
    struct Shard
    {
        std::mutex m;
        std::condition_variable cv;
        /**
         * Waiters that published intent to park. seq_cst on both
         * sides of the handshake: parker increments then re-checks
         * the variable; writer stores then reads the count.
         */
        std::atomic<unsigned> waiters{0};
    };

    static constexpr unsigned kNumShards = 64;

    Shard &
    shardOf(sim::SyncVarId var) const
    {
        return shards_[var % kNumShards];
    }

    void wake(sim::SyncVarId var);

    /**
     * deque keeps element addresses stable across setup-time
     * allocate() growth (atomics are neither movable nor copyable).
     */
    std::deque<std::atomic<sim::SyncWord>> words_;
    mutable Shard shards_[kNumShards];
    unsigned spinLimit_;
    std::atomic<bool> aborted_{false};
    std::atomic<std::uint64_t> totalParks_{0};
    std::atomic<std::uint64_t> totalWakeups_{0};
};

} // namespace native
} // namespace psync

#endif // PSYNC_NATIVE_FABRIC_HH
