/**
 * @file
 * Pass pipeline over lowered synchronization IR.
 *
 * Schemes lower a (dep::Loop, DepGraph) pair into ir::Programs;
 * before either executor consumes them, core::planDoacross runs
 * this pipeline:
 *
 *  1. redundant-wait elimination (opt-in): delete sync_wait_ge ops
 *     whose threshold is already established by an earlier op of
 *     the *same* program — the IR-level image of transitive
 *     reduction over cross-iteration dependence arcs, including
 *     the arcs manufactured by linearizing nested loops (Fig. 5.2
 *     dashed arcs).
 *  2. peephole (opt-in): merge adjacent compute delays and adjacent
 *     monotone set_PC/release writes to the same variable.
 *  3. verifier (on by default): every wait-like op must have a
 *     dominating signal source — some combination of initial
 *     values, writes and increments across the whole plan that can
 *     reach its threshold. A scheme bug that emits a wait nobody
 *     can satisfy is rejected at plan time instead of deadlocking
 *     the run.
 *
 * Soundness of elimination rests on two global invariants every
 * scheme maintains: synchronization variables are monotone
 * non-decreasing, and waits use >= semantics. An earlier op in the
 * same program that establishes var >= T' >= T therefore implies
 * the deleted wait would complete instantly AND the happens-before
 * edge it enforced is already enforced (the establishing op could
 * itself only complete after the signal source ran). pc_mark is a
 * conditional write (skipped when the PC is not yet owned), so it
 * never establishes a bound.
 *
 * With PassConfig::enabled == false the pipeline is a no-op and
 * the lowered IR reaches the executors byte-identical to the
 * scheme's raw emission — the bit-exactness baseline every
 * equivalence and cross-validation suite pins.
 */

#ifndef PSYNC_IR_PASSES_HH
#define PSYNC_IR_PASSES_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "ir/program.hh"

namespace psync {
namespace ir {

/** Which passes run in core::planDoacross. */
struct PassConfig
{
    /** Master switch; false = lowered IR passes through untouched. */
    bool enabled = true;
    /** Structural verifier (plan aborts on a failure upstream). */
    bool verify = true;
    /** Delete waits dominated by earlier same-program ops. */
    bool eliminateRedundantWaits = false;
    /** Merge adjacent computes / monotone writes to one variable. */
    bool peephole = false;
};

/** Aggregate effect of one pipeline run (bench schema v4 fields). */
struct PassStats
{
    std::uint64_t opsBefore = 0;
    std::uint64_t opsAfter = 0;
    /** sync_wait_ge ops across all programs, before/after. */
    std::uint64_t waitsBefore = 0;
    std::uint64_t waitsAfter = 0;
    std::uint64_t waitsEliminated = 0;
    std::uint64_t opsMerged = 0;
    /** True iff the verifier ran and found no errors. */
    bool verified = false;
    std::vector<std::string> verifierErrors;
};

/**
 * Initial value of a sync variable at plan time (the fabric's
 * instantaneous peek, after the scheme's init writes).
 */
using InitValueFn = std::function<SyncWord(SyncVarId)>;

/**
 * Check that every wait-like op (sync_wait_ge threshold,
 * pc_transfer ownership threshold, keyed-access key threshold) can
 * be satisfied by the plan as a whole: for each variable the
 * maximum reachable value is max(initial value, any written value)
 * plus the number of increments (fetch&inc, keyed accesses,
 * barrier arrivals) any program performs on it. Returns one
 * human-readable error per unsatisfiable wait (empty = verified).
 */
std::vector<std::string>
verifyPrograms(const std::vector<Program> &programs,
               const InitValueFn &init_value);

/**
 * Delete sync_wait_ge ops whose threshold is already established
 * by earlier ops of the same program (see file comment for the
 * soundness argument). Returns the number of ops deleted.
 */
std::uint64_t eliminateRedundantWaits(Program &program);

/**
 * Merge adjacent compute ops (exact: compute is a pure delay) and
 * adjacent sync_write ops to the same variable when the later
 * value supersedes the earlier (monotone release coalescing).
 * Returns the number of ops merged away.
 */
std::uint64_t peephole(Program &program);

/** Count sync_wait_ge ops across a program set. */
std::uint64_t countWaits(const std::vector<Program> &programs);

/** Count all ops across a program set. */
std::uint64_t countOps(const std::vector<Program> &programs);

/**
 * Run the configured pipeline in place over a lowered program set.
 * Transforms run first, then the verifier checks the transformed
 * programs. Callers decide how to surface verifierErrors (the
 * planner treats any as fatal).
 */
PassStats runPasses(std::vector<Program> &programs,
                    const PassConfig &config,
                    const InitValueFn &init_value);

} // namespace ir
} // namespace psync

#endif // PSYNC_IR_PASSES_HH
