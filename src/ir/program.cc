#include "ir/program.hh"

#include <sstream>

namespace psync {
namespace ir {

const char *
opKindName(OpKind kind)
{
    switch (kind) {
      case OpKind::compute:      return "compute";
      case OpKind::dataRead:     return "data_read";
      case OpKind::dataWrite:    return "data_write";
      case OpKind::syncWaitGE:   return "sync_wait_ge";
      case OpKind::syncWrite:    return "sync_write";
      case OpKind::syncFetchInc: return "sync_fetch_inc";
      case OpKind::pcMark:       return "pc_mark";
      case OpKind::pcTransfer:   return "pc_transfer";
      case OpKind::ctrBarrier:   return "ctr_barrier";
      case OpKind::keyedRead:    return "keyed_read";
      case OpKind::keyedWrite:   return "keyed_write";
      case OpKind::stmtStart:    return "stmt_start";
      case OpKind::stmtEnd:      return "stmt_end";
    }
    return "unknown";
}

std::string
disassemble(const Program &program, bool with_ids)
{
    using sim::PcWord;
    std::ostringstream os;
    os << "iter " << program.iter << ":\n";
    for (const Op &op : program.ops) {
        os << "  ";
        if (with_ids)
            os << "[" << op.id << "] ";
        os << opKindName(op.kind);
        switch (op.kind) {
          case OpKind::compute:
            os << " " << op.cycles;
            break;
          case OpKind::dataRead:
          case OpKind::dataWrite:
            os << " addr=" << op.addr << " stmt=" << op.stmt;
            break;
          case OpKind::syncWaitGE:
            os << " var=" << op.var << " ge=<"
               << PcWord::owner(op.value) << ","
               << PcWord::step(op.value) << ">";
            break;
          case OpKind::syncWrite:
          case OpKind::pcMark:
            os << " var=" << op.var << " val=<"
               << PcWord::owner(op.value) << ","
               << PcWord::step(op.value) << ">";
            break;
          case OpKind::pcTransfer:
            os << " var=" << op.var << " val=<"
               << PcWord::owner(op.value) << ","
               << PcWord::step(op.value) << "> own_ge=<"
               << PcWord::owner(op.aux) << ","
               << PcWord::step(op.aux) << ">";
            break;
          case OpKind::syncFetchInc:
            os << " var=" << op.var;
            break;
          case OpKind::ctrBarrier:
            os << " ctr=" << op.var << " rel=" << op.aux
               << " gen=" << op.value;
            break;
          case OpKind::keyedRead:
          case OpKind::keyedWrite:
            os << " key=" << op.var << " ge=" << op.value
               << " addr=" << op.addr << " stmt=" << op.stmt;
            break;
          case OpKind::stmtStart:
          case OpKind::stmtEnd:
            os << " stmt=" << op.stmt;
            break;
        }
        os << "\n";
    }
    return os.str();
}

} // namespace ir
} // namespace psync
