#include "ir/passes.hh"

#include <algorithm>
#include <sstream>
#include <unordered_map>

namespace psync {
namespace ir {

namespace {

/** Signal capability of one sync variable across the whole plan. */
struct VarReach
{
    SyncWord maxWritten = 0;
    bool written = false;
    std::uint64_t increments = 0;
};

std::string
renderWord(SyncWord w)
{
    std::ostringstream os;
    os << w;
    // PC-packed words are easier to read as <owner,step>; plain
    // counters have owner 0, where the packed form adds nothing.
    if (sim::PcWord::owner(w) != 0)
        os << " <" << sim::PcWord::owner(w) << ","
           << sim::PcWord::step(w) << ">";
    return os.str();
}

} // namespace

std::vector<std::string>
verifyPrograms(const std::vector<Program> &programs,
               const InitValueFn &init_value)
{
    std::unordered_map<SyncVarId, VarReach> reach;
    for (const Program &program : programs) {
        for (const Op &op : program.ops) {
            switch (op.kind) {
              case OpKind::syncWrite:
              case OpKind::pcMark:
              case OpKind::pcTransfer: {
                VarReach &r = reach[op.var];
                r.maxWritten = std::max(r.maxWritten, op.value);
                r.written = true;
                break;
              }
              case OpKind::syncFetchInc:
                reach[op.var].increments += 1;
                break;
              case OpKind::keyedRead:
              case OpKind::keyedWrite:
                reach[op.var].increments += 1;
                break;
              case OpKind::ctrBarrier: {
                reach[op.var].increments += 1;
                VarReach &rel = reach[op.aux];
                rel.maxWritten = std::max(rel.maxWritten, op.value);
                rel.written = true;
                break;
              }
              default:
                break;
            }
        }
    }

    auto reachable = [&](SyncVarId var) -> SyncWord {
        SyncWord base = init_value ? init_value(var) : 0;
        auto it = reach.find(var);
        if (it == reach.end())
            return base;
        if (it->second.written)
            base = std::max(base, it->second.maxWritten);
        return base + it->second.increments;
    };

    std::vector<std::string> errors;
    auto complain = [&](const Program &program, const Op &op,
                        SyncVarId var, SyncWord need) {
        std::ostringstream os;
        os << "iter " << program.iter << " op " << op.id << " ("
           << opKindName(op.kind) << "): waits var " << var
           << " >= " << renderWord(need)
           << " but max reachable value is "
           << renderWord(reachable(var));
        errors.push_back(os.str());
    };

    for (const Program &program : programs) {
        for (const Op &op : program.ops) {
            switch (op.kind) {
              case OpKind::syncWaitGE:
                if (reachable(op.var) < op.value)
                    complain(program, op, op.var, op.value);
                break;
              case OpKind::pcTransfer:
                if (reachable(op.var) < op.aux)
                    complain(program, op, op.var, op.aux);
                break;
              case OpKind::keyedRead:
              case OpKind::keyedWrite:
                if (reachable(op.var) < op.value)
                    complain(program, op, op.var, op.value);
                break;
              case OpKind::ctrBarrier:
                if (reachable(op.aux) < op.value)
                    complain(program, op, op.aux, op.value);
                break;
              default:
                break;
            }
        }
    }
    return errors;
}

std::uint64_t
eliminateRedundantWaits(Program &program)
{
    // Known lower bound on each variable's value at the current
    // point of this program, established by earlier ops.
    std::unordered_map<SyncVarId, SyncWord> bound;
    std::vector<Op> kept;
    kept.reserve(program.ops.size());
    std::uint64_t removed = 0;
    for (const Op &op : program.ops) {
        switch (op.kind) {
          case OpKind::syncWaitGE: {
            auto it = bound.find(op.var);
            if (it != bound.end() && it->second >= op.value) {
                ++removed;
                continue; // dominated: drop the wait
            }
            SyncWord &b = bound[op.var];
            b = std::max(b, op.value);
            break;
          }
          case OpKind::syncWrite: {
            SyncWord &b = bound[op.var];
            b = std::max(b, op.value);
            break;
          }
          case OpKind::pcTransfer: {
            // Waits var >= aux, then writes value.
            SyncWord &b = bound[op.var];
            b = std::max(b, std::max(op.aux, op.value));
            break;
          }
          case OpKind::syncFetchInc: {
            auto it = bound.find(op.var);
            if (it != bound.end())
                it->second += 1; // own increment; var is monotone
            break;
          }
          case OpKind::keyedRead:
          case OpKind::keyedWrite: {
            // Waits key >= value, then the module increments it.
            SyncWord &b = bound[op.var];
            b = std::max(b, op.value) + 1;
            break;
          }
          case OpKind::ctrBarrier: {
            SyncWord &rel = bound[op.aux];
            rel = std::max(rel, op.value);
            auto it = bound.find(op.var);
            if (it != bound.end())
                it->second += 1;
            break;
          }
          case OpKind::pcMark:
            // Conditional write (skipped while unowned): does NOT
            // establish var >= value.
            break;
          default:
            break;
        }
        kept.push_back(op);
    }
    if (removed)
        program.ops = std::move(kept);
    return removed;
}

std::uint64_t
peephole(Program &program)
{
    std::vector<Op> out;
    out.reserve(program.ops.size());
    std::uint64_t merged = 0;
    for (const Op &op : program.ops) {
        if (!out.empty()) {
            Op &prev = out.back();
            if (op.kind == OpKind::compute &&
                prev.kind == OpKind::compute &&
                op.iterTag == prev.iterTag) {
                prev.cycles += op.cycles;
                ++merged;
                continue;
            }
            // Adjacent monotone releases to one variable: the later
            // write supersedes the earlier (waiters only ever see
            // the final, larger value — released later, never
            // earlier, which preserves every enforced ordering).
            if (op.kind == OpKind::syncWrite &&
                prev.kind == OpKind::syncWrite &&
                op.var == prev.var && op.value >= prev.value) {
                prev = op;
                ++merged;
                continue;
            }
        }
        out.push_back(op);
    }
    if (merged)
        program.ops = std::move(out);
    return merged;
}

std::uint64_t
countWaits(const std::vector<Program> &programs)
{
    std::uint64_t n = 0;
    for (const Program &program : programs)
        for (const Op &op : program.ops)
            if (op.kind == OpKind::syncWaitGE)
                ++n;
    return n;
}

std::uint64_t
countOps(const std::vector<Program> &programs)
{
    std::uint64_t n = 0;
    for (const Program &program : programs)
        n += program.ops.size();
    return n;
}

PassStats
runPasses(std::vector<Program> &programs, const PassConfig &config,
          const InitValueFn &init_value)
{
    PassStats stats;
    stats.opsBefore = countOps(programs);
    stats.waitsBefore = countWaits(programs);
    if (config.enabled) {
        if (config.eliminateRedundantWaits)
            for (Program &program : programs)
                stats.waitsEliminated +=
                    eliminateRedundantWaits(program);
        if (config.peephole)
            for (Program &program : programs)
                stats.opsMerged += peephole(program);
        if (config.verify) {
            stats.verifierErrors =
                verifyPrograms(programs, init_value);
            stats.verified = stats.verifierErrors.empty();
        }
    }
    stats.opsAfter = countOps(programs);
    stats.waitsAfter = countWaits(programs);
    return stats;
}

} // namespace ir
} // namespace psync
