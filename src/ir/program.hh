/**
 * @file
 * Backend-neutral synchronization IR: the op vocabulary shared by
 * the cycle-level simulator (src/sim) and the native multithreaded
 * backend (src/native).
 *
 * A Doacross iteration is compiled (sync schemes via
 * ir::ProgramBuilder) into a Program: a straight-line sequence of
 * ops — compute delays, shared-memory data accesses, and
 * synchronization operations. Branches are resolved at codegen time
 * (deterministically seeded), so programs need no control flow; the
 * synchronization placement rules for branches (Example 3) are
 * reflected in which ops each resolved path contains.
 *
 * The IR is deliberately executor-agnostic: nothing in this module
 * depends on the event queue, the sync fabrics, or pthreads. Both
 * executors interpret the same lowered programs, and the pass
 * pipeline (ir/passes) transforms them before either backend sees
 * them.
 */

#ifndef PSYNC_IR_PROGRAM_HH
#define PSYNC_IR_PROGRAM_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace psync {
namespace ir {

using sim::Addr;
using sim::SyncVarId;
using sim::SyncWord;
using sim::Tick;

/** Kinds of operations an executor can interpret. */
enum class OpKind : std::uint8_t
{
    /** Spend `cycles` of pure computation. */
    compute,
    /** Read a shared-memory word at `addr`. */
    dataRead,
    /** Write a shared-memory word at `addr`. */
    dataWrite,
    /** Spin until sync var `var` >= `value`. */
    syncWaitGE,
    /** Write `value` to sync var `var`. */
    syncWrite,
    /** Atomically increment sync var `var` (value ignored). */
    syncFetchInc,
    /**
     * Improved-primitive mark_PC (Fig. 4.3): write `value` to
     * `var` only if this process already owns the PC or ownership
     * has been transferred; otherwise skip without waiting.
     * The owner field of `value` is the process id.
     */
    pcMark,
    /**
     * Improved-primitive transfer_PC (Fig. 4.3): if the PC is not
     * yet owned, spin until it is (value >= `aux`), then write
     * `value` (= <pid+X, 0>) to hand it to the next owner.
     */
    pcTransfer,
    /**
     * Cedar-style combined keyed read: one request to the module
     * holding key `var` and the datum at `addr`; the module tests
     * key >= `value`, performs the access, and increments the key
     * (section 3.1, [26]). Requires the memory sync fabric.
     */
    keyedRead,
    /** Combined keyed write (same protocol as keyedRead). */
    keyedWrite,
    /**
     * Counter-based barrier episode: atomically increment `var`;
     * the arrival that brings the count to generation * P writes
     * the generation number to release variable `aux`; everyone
     * then spins until the release variable reaches the
     * generation. The canonical hot-spot barrier Example 4
     * compares the butterfly barrier against.
     */
    ctrBarrier,
    /** Zero-time marker: statement instance `stmt` begins. */
    stmtStart,
    /** Zero-time marker: statement instance `stmt` ends. */
    stmtEnd,
};

/** Printable op kind name (tests and debug dumps). */
const char *opKindName(OpKind kind);

/** One operation of an iteration program. */
struct Op
{
    OpKind kind = OpKind::compute;
    /** Compute duration, for OpKind::compute. */
    Tick cycles = 0;
    /** Target address, for data accesses. */
    Addr addr = 0;
    /** Target variable, for sync ops. */
    SyncVarId var = 0;
    /** Write value or wait threshold. */
    SyncWord value = 0;
    /** Secondary operand (pcTransfer ownership threshold). */
    SyncWord aux = 0;
    /** Statement id for markers and tagged accesses. */
    std::uint32_t stmt = 0;
    /** Reference index within the statement, for tagged accesses. */
    std::uint16_t ref = 0;
    /**
     * Stable op identity within its program, assigned by
     * ProgramBuilder at lowering time (1-based; 0 means "unset",
     * e.g. hand-built test programs). Passes that delete or merge
     * ops never renumber, so trace/blame records keyed by op id
     * keep pointing at the op the scheme emitted.
     */
    std::uint32_t id = 0;
    /**
     * Iteration tag override for trace records; 0 means "use the
     * program's iter". Hand-built programs that execute many cells
     * of a pseudo-loop in one program tag each cell's accesses
     * with that cell's lpid.
     */
    std::uint64_t iterTag = 0;

    static Op
    mkCompute(Tick cycles)
    {
        Op op;
        op.kind = OpKind::compute;
        op.cycles = cycles;
        return op;
    }

    static Op
    mkData(bool is_write, Addr addr, std::uint32_t stmt,
           std::uint16_t ref = 0)
    {
        Op op;
        op.kind = is_write ? OpKind::dataWrite : OpKind::dataRead;
        op.addr = addr;
        op.stmt = stmt;
        op.ref = ref;
        return op;
    }

    static Op
    mkKeyed(bool is_write, SyncVarId key, SyncWord threshold,
            Addr addr, std::uint32_t stmt, std::uint16_t ref = 0)
    {
        Op op;
        op.kind = is_write ? OpKind::keyedWrite : OpKind::keyedRead;
        op.var = key;
        op.value = threshold;
        op.addr = addr;
        op.stmt = stmt;
        op.ref = ref;
        return op;
    }

    static Op
    mkCtrBarrier(SyncVarId counter, SyncVarId release,
                 SyncWord generation, Tick num_procs)
    {
        Op op;
        op.kind = OpKind::ctrBarrier;
        op.var = counter;
        op.aux = release;
        op.value = generation;
        op.cycles = num_procs;
        return op;
    }

    static Op
    mkWaitGE(SyncVarId var, SyncWord threshold)
    {
        Op op;
        op.kind = OpKind::syncWaitGE;
        op.var = var;
        op.value = threshold;
        return op;
    }

    static Op
    mkWrite(SyncVarId var, SyncWord value)
    {
        Op op;
        op.kind = OpKind::syncWrite;
        op.var = var;
        op.value = value;
        return op;
    }

    static Op
    mkFetchInc(SyncVarId var)
    {
        Op op;
        op.kind = OpKind::syncFetchInc;
        op.var = var;
        return op;
    }

    static Op
    mkPcMark(SyncVarId var, SyncWord value)
    {
        Op op;
        op.kind = OpKind::pcMark;
        op.var = var;
        op.value = value;
        return op;
    }

    static Op
    mkPcTransfer(SyncVarId var, SyncWord next_value,
                 SyncWord own_threshold)
    {
        Op op;
        op.kind = OpKind::pcTransfer;
        op.var = var;
        op.value = next_value;
        op.aux = own_threshold;
        return op;
    }

    static Op
    mkStmtStart(std::uint32_t stmt)
    {
        Op op;
        op.kind = OpKind::stmtStart;
        op.stmt = stmt;
        return op;
    }

    static Op
    mkStmtEnd(std::uint32_t stmt)
    {
        Op op;
        op.kind = OpKind::stmtEnd;
        op.stmt = stmt;
        return op;
    }
};

/** One schedulable unit of work (a Doacross iteration / process). */
struct Program
{
    /** Linearized process id (1-based, as in the paper). */
    std::uint64_t iter = 0;
    std::vector<Op> ops;
};

/**
 * Render a program as one op per line (tests, debugging). With
 * `with_ids`, each line is prefixed by the op's stable id
 * (`[7] sync_wait_ge ...`) — used by --dump-ir so pass output can
 * be correlated with blame records.
 */
std::string disassemble(const Program &program,
                        bool with_ids = false);

/**
 * Append-only builder over a Program that assigns stable op ids at
 * lowering time. All sync schemes emit through this; hand-built
 * test programs may still aggregate raw Ops (id 0).
 */
class ProgramBuilder
{
  public:
    explicit ProgramBuilder(Program &program) : program_(program)
    {
        // Resume numbering if the program already holds ops (e.g.
        // a scheme appending to a partially-built body).
        for (const Op &op : program_.ops)
            if (op.id >= nextId_)
                nextId_ = op.id + 1;
    }

    /** Append any op, stamping the next sequential id. */
    Op &
    push(Op op)
    {
        op.id = nextId_++;
        program_.ops.push_back(op);
        return program_.ops.back();
    }

    Op &compute(Tick cycles) { return push(Op::mkCompute(cycles)); }

    Op &
    data(bool is_write, Addr addr, std::uint32_t stmt,
         std::uint16_t ref = 0)
    {
        return push(Op::mkData(is_write, addr, stmt, ref));
    }

    Op &
    keyed(bool is_write, SyncVarId key, SyncWord threshold,
          Addr addr, std::uint32_t stmt, std::uint16_t ref = 0)
    {
        return push(
            Op::mkKeyed(is_write, key, threshold, addr, stmt, ref));
    }

    Op &
    ctrBarrier(SyncVarId counter, SyncVarId release,
               SyncWord generation, Tick num_procs)
    {
        return push(
            Op::mkCtrBarrier(counter, release, generation,
                             num_procs));
    }

    Op &
    waitGE(SyncVarId var, SyncWord threshold)
    {
        return push(Op::mkWaitGE(var, threshold));
    }

    Op &
    write(SyncVarId var, SyncWord value)
    {
        return push(Op::mkWrite(var, value));
    }

    Op &fetchInc(SyncVarId var) { return push(Op::mkFetchInc(var)); }

    Op &
    pcMark(SyncVarId var, SyncWord value)
    {
        return push(Op::mkPcMark(var, value));
    }

    Op &
    pcTransfer(SyncVarId var, SyncWord next_value,
               SyncWord own_threshold)
    {
        return push(
            Op::mkPcTransfer(var, next_value, own_threshold));
    }

    Op &
    stmtStart(std::uint32_t stmt)
    {
        return push(Op::mkStmtStart(stmt));
    }

    Op &stmtEnd(std::uint32_t stmt) { return push(Op::mkStmtEnd(stmt)); }

    Program &program() { return program_; }

  private:
    Program &program_;
    std::uint32_t nextId_ = 1;
};

} // namespace ir
} // namespace psync

#endif // PSYNC_IR_PROGRAM_HH
