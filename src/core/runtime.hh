/**
 * @file
 * Doacross runtime: plans a scheme for a loop on a machine, emits
 * the transformed iteration programs, schedules them on processors
 * (processor self-scheduling by default, as the paper assumes for
 * all its examples), runs the simulation, and verifies the
 * execution trace against the dependences the scheme claims.
 */

#ifndef PSYNC_CORE_RUNTIME_HH
#define PSYNC_CORE_RUNTIME_HH

#include <string>
#include <vector>

#include "core/metrics.hh"
#include "core/trace_check.hh"
#include "dep/dep_graph.hh"
#include "ir/passes.hh"
#include "sim/machine.hh"
#include "sync/scheme.hh"

namespace psync {
namespace core {

/** How iterations are handed to processors. */
enum class SchedulePolicy
{
    /**
     * Shared iteration counter advanced by fetch&add in memory —
     * the dynamic self-scheduling of [Tang, Yew & Zhu], assumed by
     * all the paper's examples. Dispatch order equals iteration
     * order, which the PC-folding ownership chain relies on.
     */
    selfScheduling,
    /**
     * Self-scheduling, but each fetch&add claims a fixed block of
     * `chunkSize` consecutive iterations: one dispatch RMW per
     * chunk instead of per iteration, at the price of coarser load
     * balancing and chunk-serialized pipelining.
     */
    chunkedSelfScheduling,
    /**
     * Guided self-scheduling: each claim takes
     * max(1, remaining / (2P)) iterations — large chunks early,
     * single iterations near the end.
     */
    guidedSelfScheduling,
    /** Iteration k runs on processor (k-1) mod P, no shared state. */
    staticCyclic,
};

/** Printable schedule-policy name. */
const char *schedulePolicyName(SchedulePolicy policy);

/** Everything configuring one Doacross run. */
struct RunConfig
{
    sim::MachineConfig machine;
    sync::SchemeConfig scheme;
    SchedulePolicy schedule = SchedulePolicy::selfScheduling;
    /** Iterations per claim under chunkedSelfScheduling. */
    std::uint64_t chunkSize = 4;
    /**
     * Run redundant-arc (coverage) elimination on the dependence
     * graph before planning. Off = synchronize every arc, the
     * ablation baseline for the Fig. 2.1 observation.
     */
    bool eliminateCoveredDeps = true;
    /**
     * IR pass pipeline run over the lowered programs inside
     * planDoacross (see ir/passes.hh). Defaults keep the verifier
     * on and every transform off, so lowered programs reach the
     * executors byte-identical to the schemes' raw emission.
     */
    ir::PassConfig passes;
    /** Verify the trace after the run (costs host time only). */
    bool checkTrace = true;
    /** Abort threshold for deadlocked synchronization. */
    sim::Tick tickLimit = 1000000000ull;
    /**
     * Optional event tracer attached to the machine (and handed to
     * the scheme for sync-variable labeling). Null — the default —
     * records nothing and costs one branch per hook site. Not owned.
     */
    sim::Tracer *tracer = nullptr;
    /**
     * Optional extra trace sink fed the same access stream as the
     * trace checker (e.g. a ValueTrace computing the functional
     * memory image for sim-vs-native comparison). Pure observer:
     * attaching one never changes simulated cycles. Not owned.
     */
    sim::TraceSink *extraSink = nullptr;
};

/** Outcome of one Doacross run. */
struct DoacrossResult
{
    RunResult run;
    sync::SchemePlan plan;
    /** Dependence violations found in the trace (empty = correct). */
    std::vector<std::string> violations;
    /** Dependence instances the checker examined. */
    std::uint64_t instancesChecked = 0;
    /**
     * Analytic cost of initializing the scheme's synchronization
     * variables (the paper's initialization-overhead axis): the
     * writes serialize on the relevant bus, spread over P
     * processors for the module-service part.
     */
    sim::Tick initCycles = 0;
    /** Effect of the IR pass pipeline on the lowered programs. */
    ir::PassStats passStats;

    sim::Tick totalWithInit() const { return run.cycles + initCycles; }
    bool correct() const { return violations.empty(); }
};

/** Plan + emit + schedule + run + verify one Doacross loop. */
DoacrossResult runDoacross(const dep::Loop &loop,
                           sync::SchemeKind kind,
                           const RunConfig &cfg);

/**
 * A planned loop before execution: the scheme's plan (with its
 * synchronization variables allocated and initialized on the given
 * fabric) and the emitted per-iteration programs. Shared by the
 * simulator runtime and the native execution backend, so both run
 * exactly the same transformed programs.
 */
struct PlannedDoacross
{
    sync::SchemePlan plan;
    std::vector<sim::Program> programs;
    /** Effect of the IR pass pipeline on the lowered programs. */
    ir::PassStats passStats;
};

/**
 * Plan `kind` for `loop`, emit all iteration programs against
 * `fabric` (applies the same covered-arc elimination rule
 * runDoacross uses), and run the configured IR pass pipeline over
 * the lowered programs. An IR verifier failure is fatal: a wait no
 * signal can satisfy means the plan would deadlock.
 */
PlannedDoacross planDoacross(const dep::Loop &loop,
                             sync::SchemeKind kind,
                             const RunConfig &cfg,
                             sim::SyncFabric &fabric);

/**
 * Cycles of the loop executed sequentially on one processor of the
 * same machine (speedup baseline).
 */
sim::Tick sequentialCycles(const dep::Loop &loop,
                           const sim::MachineConfig &machine_cfg);

/**
 * Run a shared pool of programs on an already-built machine:
 * processors pull programs in pool order, either through the
 * simulated self-scheduling counter or by static cyclic
 * assignment. Used by runDoacross and by the hand-transformed
 * section 5 workloads (whose schemes allocate fabric variables
 * before emission).
 */
RunResult runProgramPool(sim::Machine &machine,
                         const std::vector<sim::Program> &programs,
                         SchedulePolicy policy,
                         sim::Tick tick_limit = 1000000000ull,
                         std::uint64_t chunk_size = 4);

/**
 * Run hand-built per-processor program lists (barrier, FFT and
 * wavefront workloads): processor p executes perProc[p] in order.
 */
RunResult runPerProcessorPrograms(
    sim::Machine &machine,
    const std::vector<std::vector<sim::Program>> &per_proc,
    sim::Tick tick_limit = 1000000000ull);

} // namespace core
} // namespace psync

#endif // PSYNC_CORE_RUNTIME_HH
