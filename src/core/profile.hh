/**
 * @file
 * Causal critical-path profiler.
 *
 * Replays one run's recorded trace — per-op execution spans, wait
 * edges and sync-variable access events (core/tracing) — into the
 * *achieved* critical path: the longest weighted chain of actually
 * executed op instances through per-processor program order plus
 * the observed cross-processor wait edges. The reconstruction walks
 * backward from the op that finished last; whenever the current op
 * was gated by a satisfied wait, the path hops to the producing op
 * on the writer's processor, charging the gap between the
 * producer's completion and the waiter's wake-up to the sync
 * variable (fabric propagation). The resulting segments tile
 * [0, cycles) exactly, so the achieved path length equals total
 * cycles and every cycle of the run is attributed to an op, a wait
 * on a named sync variable, or dispatch.
 *
 * Alongside the path, the profiler reduces the wait edges into
 * fixed-bucket log2 latency histograms (core/metrics): overall, per
 * sync variable, and per emitting op kind. Both views answer the
 * question the analytical bound (core/critical_path) cannot: not
 * just *how far* a scheme is from its floor, but *which ops* and
 * *which variables* the lost cycles sit on.
 */

#ifndef PSYNC_CORE_PROFILE_HH
#define PSYNC_CORE_PROFILE_HH

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "core/json.hh"
#include "core/metrics.hh"
#include "core/tracing.hh"

namespace psync {
namespace core {

/** Achieved critical path plus latency distributions of one run. */
struct CriticalPathProfile
{
    enum class SegmentKind
    {
        /** An executed op instance on the path. */
        op,
        /** Fabric propagation: producer completion to waiter wake. */
        wait,
        /** Scheduler dispatch / between-program gap. */
        dispatch,
        /** Lead-in before the first op of the path's first proc. */
        start,
    };

    /** One tile of the achieved path; segments cover [0, cycles). */
    struct Segment
    {
        SegmentKind kind = SegmentKind::op;
        /** Executing processor (waiter, for wait segments). */
        sim::ProcId proc = 0;
        /** Stable IR op id (0 = hand-built program). */
        std::uint32_t opId = 0;
        ir::OpKind opKind = ir::OpKind::compute;
        std::uint64_t iter = 0;
        /** Sync variable charged (wait segments and sync ops). */
        sim::SyncVarId var = 0;
        bool hasVar = false;
        sim::Tick start = 0;
        sim::Tick end = 0;

        /** Phase decomposition of [start, end) on `proc`. */
        sim::Tick compute = 0;
        sim::Tick spin = 0;
        sim::Tick sync = 0;
        sim::Tick stall = 0;
        sim::Tick dispatch = 0;
        sim::Tick other = 0;

        sim::Tick cycles() const { return end - start; }
    };

    struct VarShare
    {
        sim::SyncVarId var = 0;
        std::string label;
        sim::Tick cycles = 0;
    };

    struct ProcShare
    {
        sim::ProcId proc = 0;
        sim::Tick cycles = 0;
    };

    struct ModuleShare
    {
        unsigned module = 0;
        sim::Tick cycles = 0;
    };

    /** Path tiles in ascending time order. */
    std::vector<Segment> segments;

    /** Sum of segment lengths == run cycles when fully tiled. */
    sim::Tick achievedCycles = 0;

    /** Analytical floor the gap is measured against. */
    sim::Tick boundCycles = 0;

    /** Walk hit its step cap; the early prefix is unattributed. */
    bool truncated = false;

    /** Path-cycle totals by phase (sum == achievedCycles). */
    sim::Tick computeCycles = 0;
    sim::Tick spinCycles = 0;
    sim::Tick syncCycles = 0;
    sim::Tick stallCycles = 0;
    sim::Tick dispatchCycles = 0;
    /** Wait-segment cycles: value propagation through the fabric. */
    sim::Tick propagationCycles = 0;
    sim::Tick otherCycles = 0;

    /** Propagation cycles charged per sync var, descending. */
    std::vector<VarShare> varShares;
    /** On-path execution cycles per processor, descending. */
    std::vector<ProcShare> procShares;
    /** Memory-module busy time overlapping path op segments. */
    std::vector<ModuleShare> moduleShares;

    /** All satisfied waits (cycles), regardless of path. */
    LogHistogram waitAll;
    /** Wait durations keyed by the blocking op's kind name. */
    std::map<std::string, LogHistogram> waitByKind;
    /** Wait durations per sync variable. */
    std::map<sim::SyncVarId, LogHistogram> waitByVar;

    /** Achieved overshoot vs. the bound, in percent (0 at floor). */
    double
    gapPct() const
    {
        if (boundCycles == 0)
            return 0.0;
        return 100.0 *
               (static_cast<double>(achievedCycles) -
                static_cast<double>(boundCycles)) /
               static_cast<double>(boundCycles);
    }

    /**
     * Full machine-readable profile: achieved/bound/gap, phase
     * composition, top shares, histogram summaries and the whole
     * segment list. Key order is fixed.
     */
    json::Value toJson() const;

    /**
     * Human-readable report: path summary, composition, hottest
     * variables/processors/modules, latency percentiles and the
     * first segments of the path (capped; the cap is printed).
     */
    void writeText(std::ostream &os, const std::string &label) const;

    /**
     * Chrome trace events for a "critical path" track (pid 2):
     * one complete event per segment. Append to a TraceRecorder
     * chromeTrace() document's "traceEvents" array to view the
     * path against the per-processor phase tracks in Perfetto.
     */
    json::Value perfettoEvents() const;
};

/**
 * Reconstruct the achieved critical path of a recorded run.
 * `bound_cycles` is the analytical floor (CriticalPath::
 * achievableBound) used for gap reporting; pass 0 when unknown.
 * Requires the run to have been traced with op spans (any run
 * recorded through TraceRecorder); returns an empty profile when
 * the trace has no spans.
 */
CriticalPathProfile
buildCriticalPathProfile(const TraceRecorder &recorder,
                         sim::Tick run_cycles,
                         sim::Tick bound_cycles);

} // namespace core
} // namespace psync

#endif // PSYNC_CORE_PROFILE_HH
