#include "core/value_trace.hh"

#include "core/value_rule.hh"

namespace psync {
namespace core {

void
ValueTrace::access(std::uint32_t stmt, std::uint16_t ref,
                   std::uint64_t iter, sim::Addr addr, bool is_write,
                   sim::Tick start, sim::Tick end)
{
    (void)start;
    (void)end;
    if (is_write) {
        memory_[addr] = valueOfWrite(stmt, ref, iter);
        ++writesApplied_;
    } else {
        auto it = memory_.find(addr);
        reads_[accessKey(stmt, ref, iter)] =
            it == memory_.end() ? 0 : it->second;
        ++readsRecorded_;
    }
}

SequentialImage
sequentialImage(const dep::Loop &loop, sim::Addr word_bytes)
{
    dep::DataLayout layout(loop, word_bytes);
    SequentialImage image;

    const std::uint64_t total = loop.iterations();
    for (std::uint64_t lpid = 1; lpid <= total; ++lpid) {
        long i, j;
        loop.indicesOf(lpid, i, j);
        for (size_t s = 0; s < loop.body.size(); ++s) {
            const dep::Statement &stmt = loop.body[s];
            if (!dep::stmtActive(loop, stmt, lpid))
                continue;
            for (size_t r = 0; r < stmt.refs.size(); ++r) {
                const dep::ArrayRef &ref = stmt.refs[r];
                if (ref.isWrite)
                    continue;
                sim::Addr addr = layout.addrOf(ref, i, j);
                auto it = image.memory.find(addr);
                image.reads[accessKey(
                    static_cast<std::uint32_t>(s),
                    static_cast<std::uint16_t>(r), lpid)] =
                    it == image.memory.end() ? 0 : it->second;
            }
            for (size_t r = 0; r < stmt.refs.size(); ++r) {
                const dep::ArrayRef &ref = stmt.refs[r];
                if (!ref.isWrite)
                    continue;
                image.memory[layout.addrOf(ref, i, j)] =
                    valueOfWrite(static_cast<std::uint32_t>(s),
                                 static_cast<std::uint16_t>(r),
                                 lpid);
            }
        }
    }
    return image;
}

} // namespace core
} // namespace psync
