#include "core/value_trace.hh"

#include "core/value_rule.hh"

namespace psync {
namespace core {

void
ValueTrace::access(std::uint32_t stmt, std::uint16_t ref,
                   std::uint64_t iter, sim::Addr addr, bool is_write,
                   sim::Tick start, sim::Tick end)
{
    (void)start;
    (void)end;
    if (is_write) {
        memory_[addr] = valueOfWrite(stmt, ref, iter);
        ++writesApplied_;
    } else {
        auto it = memory_.find(addr);
        reads_[accessKey(stmt, ref, iter)] =
            it == memory_.end() ? 0 : it->second;
        ++readsRecorded_;
    }
}

} // namespace core
} // namespace psync
