#include "core/blame.hh"

#include <algorithm>
#include <iomanip>
#include <map>
#include <sstream>

namespace psync {
namespace core {

namespace {

/** Resource name the memory model reports its modules under. */
const char *const kModuleResource = "memory.module";

} // namespace

std::string
BlameReport::VarBlame::name() const
{
    if (!label.empty())
        return label;
    return "v" + std::to_string(var);
}

std::string
BlameReport::SiteBlame::name() const
{
    std::string base =
        label.empty() ? "v" + std::to_string(var) : label;
    return base + "@op" + std::to_string(opId);
}

BlameReport
buildBlameReport(const TraceRecorder &recorder, const RunResult &run,
                 sim::Tick bound)
{
    BlameReport report;
    report.run = run;
    report.totalSpinCycles = run.spinCycles;
    report.achievedCycles = run.cycles;
    report.boundCycles = bound;

    std::map<sim::SyncVarId, BlameReport::VarBlame> by_var;
    for (const auto &edge : recorder.waitEdges()) {
        BlameReport::VarBlame &blame = by_var[edge.var];
        blame.var = edge.var;
        ++blame.waits;
        blame.blockedCycles += edge.cycles();
        blame.maxWait = std::max(blame.maxWait, edge.cycles());
        blame.perProc[edge.who] += edge.cycles();
        report.attributedSpinCycles += edge.cycles();
    }
    for (auto &entry : by_var) {
        auto it = recorder.syncVars().find(entry.first);
        if (it != recorder.syncVars().end())
            entry.second.label = it->second.label;
        report.vars.push_back(std::move(entry.second));
    }
    std::stable_sort(report.vars.begin(), report.vars.end(),
                     [](const auto &a, const auto &b) {
                         return a.blockedCycles > b.blockedCycles;
                     });

    std::map<std::pair<sim::SyncVarId, std::uint32_t>,
             BlameReport::SiteBlame>
        by_site;
    for (const auto &edge : recorder.waitSiteEdges()) {
        BlameReport::SiteBlame &site =
            by_site[{edge.var, edge.opId}];
        site.var = edge.var;
        site.opId = edge.opId;
        ++site.waits;
        site.blockedCycles += edge.cycles();
        site.maxWait = std::max(site.maxWait, edge.cycles());
    }
    for (auto &entry : by_site) {
        auto it = recorder.syncVars().find(entry.first.first);
        if (it != recorder.syncVars().end())
            entry.second.label = it->second.label;
        report.sites.push_back(std::move(entry.second));
    }
    std::stable_sort(report.sites.begin(), report.sites.end(),
                     [](const auto &a, const auto &b) {
                         return a.blockedCycles > b.blockedCycles;
                     });

    std::map<unsigned, BlameReport::ModuleHeat> by_module;
    for (const auto &event : recorder.resources()) {
        if (event.resource != kModuleResource)
            continue;
        BlameReport::ModuleHeat &heat = by_module[event.index];
        heat.module = event.index;
        heat.busyCycles += event.end - event.start;
        ++heat.accesses;
    }
    for (auto &entry : by_module)
        report.modules.push_back(entry.second);

    // Topology heat rides on the run's collected aggregates rather
    // than the trace: the per-stage / per-cluster counters are
    // whole-run sums the fabric keeps anyway.
    for (std::size_t s = 0; s < run.netStageConflicts.size(); ++s) {
        BlameReport::StageHeat heat;
        heat.stage = static_cast<unsigned>(s);
        heat.conflicts = run.netStageConflicts[s];
        heat.conflictCycles = run.netStageConflictCycles[s];
        heat.combines = run.netStageCombines[s];
        heat.utilization = run.netStageUtilization[s];
        report.netStages.push_back(heat);
    }
    for (std::size_t c = 0; c < run.clusterBusUtilization.size();
         ++c) {
        BlameReport::ClusterHeat heat;
        heat.cluster = static_cast<unsigned>(c);
        heat.busUtilization = run.clusterBusUtilization[c];
        report.clusters.push_back(heat);
    }

    return report;
}

json::Value
BlameReport::toJson() const
{
    json::Value doc = json::object();

    json::Value vars_json = json::array();
    for (const auto &blame : vars) {
        json::Value v = json::object();
        v.set("var", static_cast<std::uint64_t>(blame.var));
        if (!blame.label.empty())
            v.set("label", blame.label);
        v.set("waits", blame.waits);
        v.set("blocked_cycles",
              static_cast<std::uint64_t>(blame.blockedCycles));
        v.set("max_wait", static_cast<std::uint64_t>(blame.maxWait));
        json::Value per_proc = json::object();
        for (const auto &entry : blame.perProc) {
            per_proc.set(std::to_string(entry.first),
                         static_cast<std::uint64_t>(entry.second));
        }
        v.set("blocked_cycles_by_proc", std::move(per_proc));
        vars_json.push(std::move(v));
    }
    doc.set("vars", std::move(vars_json));

    json::Value sites_json = json::array();
    for (const auto &site : sites) {
        json::Value s = json::object();
        s.set("var", static_cast<std::uint64_t>(site.var));
        s.set("op_id", static_cast<std::uint64_t>(site.opId));
        if (!site.label.empty())
            s.set("label", site.label);
        s.set("waits", site.waits);
        s.set("blocked_cycles",
              static_cast<std::uint64_t>(site.blockedCycles));
        s.set("max_wait", static_cast<std::uint64_t>(site.maxWait));
        sites_json.push(std::move(s));
    }
    doc.set("wait_sites", std::move(sites_json));

    json::Value modules_json = json::array();
    for (const auto &heat : modules) {
        json::Value m = json::object();
        m.set("module", heat.module);
        m.set("busy_cycles",
              static_cast<std::uint64_t>(heat.busyCycles));
        m.set("accesses", heat.accesses);
        modules_json.push(std::move(m));
    }
    doc.set("modules", std::move(modules_json));

    if (!netStages.empty()) {
        json::Value stages_json = json::array();
        for (const auto &heat : netStages) {
            json::Value s = json::object();
            s.set("stage", heat.stage);
            s.set("conflicts", heat.conflicts);
            s.set("conflict_cycles",
                  static_cast<std::uint64_t>(heat.conflictCycles));
            s.set("combines", heat.combines);
            s.set("utilization", heat.utilization);
            stages_json.push(std::move(s));
        }
        doc.set("net_stages", std::move(stages_json));
    }

    if (!clusters.empty()) {
        json::Value clusters_json = json::array();
        for (const auto &heat : clusters) {
            json::Value c = json::object();
            c.set("cluster", heat.cluster);
            c.set("bus_utilization", heat.busUtilization);
            clusters_json.push(std::move(c));
        }
        doc.set("clusters", std::move(clusters_json));
    }

    doc.set("attributed_spin_cycles",
            static_cast<std::uint64_t>(attributedSpinCycles));
    doc.set("total_spin_cycles",
            static_cast<std::uint64_t>(totalSpinCycles));
    doc.set("spin_coverage", spinCoverage());
    doc.set("achieved_cycles",
            static_cast<std::uint64_t>(achievedCycles));
    doc.set("bound_cycles", static_cast<std::uint64_t>(boundCycles));
    doc.set("slack_factor", slackFactor());

    json::Value split = json::object();
    split.set("compute_cycles",
              static_cast<std::uint64_t>(run.computeCycles));
    split.set("spin_cycles",
              static_cast<std::uint64_t>(run.spinCycles));
    split.set("sync_overhead_cycles",
              static_cast<std::uint64_t>(run.syncOverheadCycles));
    split.set("stall_cycles",
              static_cast<std::uint64_t>(run.stallCycles));
    doc.set("cycle_split", std::move(split));
    return doc;
}

void
BlameReport::writeText(std::ostream &os) const
{
    auto pct = [](double fraction) {
        std::ostringstream s;
        s << std::fixed << std::setprecision(1) << fraction * 100.0
          << "%";
        return s.str();
    };

    os << "-- contention blame "
       << "--------------------------------------------\n";
    os << "spin cycles attributed: " << attributedSpinCycles << " / "
       << totalSpinCycles << " (" << pct(spinCoverage()) << ")\n";
    os << std::left << std::setw(16) << "variable" << std::right
       << std::setw(8) << "waits" << std::setw(13) << "blocked-cyc"
       << std::setw(8) << "share" << std::setw(10) << "max-wait"
       << std::setw(7) << "procs" << "\n";
    for (const auto &blame : vars) {
        double share =
            totalSpinCycles
                ? static_cast<double>(blame.blockedCycles) /
                      static_cast<double>(totalSpinCycles)
                : 0.0;
        os << std::left << std::setw(16) << blame.name()
           << std::right << std::setw(8) << blame.waits
           << std::setw(13) << blame.blockedCycles << std::setw(8)
           << pct(share) << std::setw(10) << blame.maxWait
           << std::setw(7) << blame.perProc.size() << "\n";
    }
    if (vars.empty())
        os << "(no blocking waits recorded)\n";

    os << "-- wait sites (variable @ IR op id) "
       << "----------------------------\n";
    if (sites.empty()) {
        os << "(no per-op wait edges recorded)\n";
    } else {
        os << std::left << std::setw(20) << "site" << std::right
           << std::setw(8) << "waits" << std::setw(13)
           << "blocked-cyc" << std::setw(10) << "max-wait" << "\n";
        for (const auto &site : sites) {
            os << std::left << std::setw(20) << site.name()
               << std::right << std::setw(8) << site.waits
               << std::setw(13) << site.blockedCycles
               << std::setw(10) << site.maxWait << "\n";
        }
    }

    os << "-- memory-module heat "
       << "------------------------------------------\n";
    if (modules.empty()) {
        os << "(no module activity recorded)\n";
    } else {
        sim::Tick max_busy = 0;
        sim::Tick total_busy = 0;
        for (const auto &heat : modules) {
            max_busy = std::max(max_busy, heat.busyCycles);
            total_busy += heat.busyCycles;
        }
        os << std::left << std::setw(8) << "module" << std::right
           << std::setw(10) << "accesses" << std::setw(11)
           << "busy-cyc" << std::setw(8) << "share" << "  \n";
        for (const auto &heat : modules) {
            double share =
                total_busy ? static_cast<double>(heat.busyCycles) /
                                 static_cast<double>(total_busy)
                           : 0.0;
            unsigned bar =
                max_busy ? static_cast<unsigned>(
                               (heat.busyCycles * 24) / max_busy)
                         : 0;
            os << std::left << std::setw(8) << heat.module
               << std::right << std::setw(10) << heat.accesses
               << std::setw(11) << heat.busyCycles << std::setw(8)
               << pct(share) << "  "
               << std::string(bar, '#') << "\n";
        }
    }

    if (!netStages.empty()) {
        os << "-- combining-network stage heat "
           << "--------------------------------\n";
        sim::Tick max_wait = 0;
        for (const auto &heat : netStages)
            max_wait = std::max(max_wait, heat.conflictCycles);
        os << std::left << std::setw(7) << "stage" << std::right
           << std::setw(11) << "conflicts" << std::setw(13)
           << "wait-cyc" << std::setw(11) << "combines"
           << std::setw(8) << "util" << "  \n";
        for (const auto &heat : netStages) {
            unsigned bar =
                max_wait ? static_cast<unsigned>(
                               (heat.conflictCycles * 24) / max_wait)
                         : 0;
            os << std::left << std::setw(7) << heat.stage
               << std::right << std::setw(11) << heat.conflicts
               << std::setw(13) << heat.conflictCycles
               << std::setw(11) << heat.combines << std::setw(8)
               << pct(heat.utilization) << "  "
               << std::string(bar, '#') << "\n";
        }
    }

    if (!clusters.empty()) {
        os << "-- cluster-bus heat "
           << "--------------------------------------------\n";
        double max_util = 0.0;
        for (const auto &heat : clusters)
            max_util = std::max(max_util, heat.busUtilization);
        os << std::left << std::setw(9) << "cluster" << std::right
           << std::setw(8) << "util" << "  \n";
        for (const auto &heat : clusters) {
            unsigned bar =
                max_util > 0.0
                    ? static_cast<unsigned>(heat.busUtilization /
                                            max_util * 24.0)
                    : 0;
            os << std::left << std::setw(9) << heat.cluster
               << std::right << std::setw(8)
               << pct(heat.busUtilization) << "  "
               << std::string(bar, '#') << "\n";
        }
    }

    os << "-- achieved vs bound "
       << "-------------------------------------------\n";
    os << "achieved " << achievedCycles << " cycles";
    if (boundCycles) {
        os << " vs bound " << boundCycles << " (" << std::fixed
           << std::setprecision(2) << slackFactor() << "x)";
    }
    os << "\n";
    sim::Tick proc_cycles =
        static_cast<sim::Tick>(run.cycles) * run.numProcs;
    if (proc_cycles) {
        sim::Tick accounted = run.computeCycles + run.spinCycles +
                              run.syncOverheadCycles +
                              run.stallCycles;
        sim::Tick idle =
            proc_cycles > accounted ? proc_cycles - accounted : 0;
        auto line = [&](const char *what, sim::Tick cycles) {
            os << "  " << std::left << std::setw(9) << what
               << std::right << std::setw(7)
               << pct(static_cast<double>(cycles) /
                      static_cast<double>(proc_cycles))
               << std::setw(13) << cycles << "\n";
        };
        os << "cycle split (" << run.numProcs << " procs x "
           << run.cycles << " = " << proc_cycles
           << " proc-cycles):\n";
        line("compute", run.computeCycles);
        line("spin", run.spinCycles);
        line("sync", run.syncOverheadCycles);
        line("stall", run.stallCycles);
        line("idle", idle);
    }
}

} // namespace core
} // namespace psync
