#include "core/tracing.hh"

#include <algorithm>

namespace psync {
namespace core {

void
TraceRecorder::phaseInterval(sim::ProcId who, sim::TracePhase phase,
                             sim::Tick start, sim::Tick end)
{
    phases_.push_back({who, phase, start, end});
}

void
TraceRecorder::resourceBusy(const std::string &resource,
                            unsigned index, sim::ProcId who,
                            sim::Tick start, sim::Tick end)
{
    resources_.push_back({resource, index, who, start, end});
}

void
TraceRecorder::counterSample(const std::string &counter, sim::Tick at,
                             double value)
{
    counters_.push_back({counter, at, value});
}

void
TraceRecorder::instant(const std::string &name, sim::ProcId who,
                       sim::Tick at)
{
    instants_.push_back({name, who, at});
}

void
TraceRecorder::syncVarOp(sim::SyncVarId var, const char *op,
                         sim::ProcId who, sim::Tick at)
{
    syncOpEvents_.push_back({var, who, at, op});
    SyncVarStats &stats = syncVars_[var];
    ++stats.opCounts[op];
    ++stats.total;
}

void
TraceRecorder::waitEdge(sim::SyncVarId var, sim::ProcId who,
                        sim::Tick start, sim::Tick end)
{
    waitEdges_.push_back({var, who, start, end});
    syncVars_[var].waitCycles += end - start;
}

void
TraceRecorder::waitEdgeOp(sim::SyncVarId var, sim::ProcId who,
                          std::uint32_t op_id, sim::Tick start,
                          sim::Tick end)
{
    waitSiteEdges_.push_back({var, who, op_id, start, end});
}

void
TraceRecorder::opSpan(sim::ProcId who, std::uint64_t iter,
                      std::uint32_t op_id, ir::OpKind kind,
                      sim::SyncVarId var, sim::Tick start,
                      sim::Tick end)
{
    opSpans_.push_back({who, iter, op_id, kind, var, start, end});
}

void
TraceRecorder::sample(sim::SampleStream stream, std::uint32_t index,
                      sim::Tick at, double value)
{
    samples_.push_back({stream, index, at, value});
}

void
TraceRecorder::nameSyncVar(sim::SyncVarId var,
                           const std::string &label)
{
    syncVars_[var].label = label;
}

void
TraceRecorder::clear()
{
    phases_.clear();
    resources_.clear();
    counters_.clear();
    instants_.clear();
    waitEdges_.clear();
    waitSiteEdges_.clear();
    opSpans_.clear();
    syncOpEvents_.clear();
    samples_.clear();
    syncVars_.clear();
}

namespace {

// Trace-event pids: processors on one track group, hardware
// resources on another, so Perfetto shows them as two processes.
constexpr int pidProcs = 0;
constexpr int pidResources = 1;

json::Value
metadataEvent(int pid, int tid, const char *what,
              const std::string &name)
{
    json::Value ev = json::object();
    ev.set("name", what);
    ev.set("ph", "M");
    ev.set("pid", pid);
    ev.set("tid", tid);
    json::Value args = json::object();
    args.set("name", name);
    ev.set("args", std::move(args));
    return ev;
}

} // namespace

json::Value
TraceRecorder::chromeTrace() const
{
    json::Value events = json::array();

    events.push(metadataEvent(pidProcs, 0, "process_name",
                              "processors"));
    events.push(metadataEvent(pidResources, 0, "process_name",
                              "resources"));

    // Name one thread per processor that shows up anywhere.
    std::vector<sim::ProcId> procs;
    for (const auto &e : phases_)
        procs.push_back(e.who);
    for (const auto &e : instants_)
        procs.push_back(e.who);
    std::sort(procs.begin(), procs.end());
    procs.erase(std::unique(procs.begin(), procs.end()),
                procs.end());
    for (sim::ProcId p : procs) {
        events.push(metadataEvent(pidProcs, static_cast<int>(p),
                                  "thread_name",
                                  "proc " + std::to_string(p)));
    }

    // Name one thread per distinct resource (bus index 0, memory
    // module k, ...). Assign tids in first-appearance order.
    std::vector<std::pair<std::string, unsigned>> resourceIds;
    auto resourceTid = [&](const std::string &resource,
                           unsigned index) {
        auto key = std::make_pair(resource, index);
        auto it = std::find(resourceIds.begin(), resourceIds.end(),
                            key);
        if (it == resourceIds.end()) {
            resourceIds.push_back(key);
            return static_cast<int>(resourceIds.size() - 1);
        }
        return static_cast<int>(it - resourceIds.begin());
    };
    for (const auto &e : resources_)
        resourceTid(e.resource, e.index);
    for (size_t i = 0; i < resourceIds.size(); ++i) {
        std::string label = resourceIds[i].first;
        if (resourceIds[i].second ||
            label.find("module") != std::string::npos)
            label += "[" + std::to_string(resourceIds[i].second) +
                     "]";
        events.push(metadataEvent(pidResources, static_cast<int>(i),
                                  "thread_name", label));
    }

    // Phase intervals: complete events, ts/dur in trace µs == ticks.
    for (const auto &e : phases_) {
        json::Value ev = json::object();
        ev.set("name", sim::tracePhaseName(e.phase));
        ev.set("cat", "phase");
        ev.set("ph", "X");
        ev.set("ts", e.start);
        ev.set("dur", e.end - e.start);
        ev.set("pid", pidProcs);
        ev.set("tid", static_cast<int>(e.who));
        events.push(std::move(ev));
    }

    for (const auto &e : instants_) {
        json::Value ev = json::object();
        ev.set("name", e.name);
        ev.set("cat", "instant");
        ev.set("ph", "i");
        ev.set("s", "t");
        ev.set("ts", e.at);
        ev.set("pid", pidProcs);
        ev.set("tid", static_cast<int>(e.who));
        events.push(std::move(ev));
    }

    for (const auto &e : resources_) {
        json::Value ev = json::object();
        ev.set("name", "busy");
        ev.set("cat", "resource");
        ev.set("ph", "X");
        ev.set("ts", e.start);
        ev.set("dur", e.end - e.start);
        ev.set("pid", pidResources);
        ev.set("tid", resourceTid(e.resource, e.index));
        json::Value args = json::object();
        args.set("proc", e.who);
        ev.set("args", std::move(args));
        events.push(std::move(ev));
    }

    for (const auto &e : counters_) {
        json::Value ev = json::object();
        ev.set("name", e.counter);
        ev.set("cat", "counter");
        ev.set("ph", "C");
        ev.set("ts", e.at);
        ev.set("pid", pidResources);
        json::Value args = json::object();
        args.set("value", e.value);
        ev.set("args", std::move(args));
        events.push(std::move(ev));
    }

    // Timeline sample streams as counter tracks. Cumulative
    // streams are differenced between consecutive samples so
    // Perfetto shows per-interval rates instead of running totals;
    // the activity-code stream is skipped (the phase track already
    // shows processor state as spans).
    std::map<std::pair<int, std::uint32_t>, double> lastCumulative;
    for (const auto &s : samples_) {
        if (s.stream == sim::SampleStream::procActivity)
            continue;
        double value = s.value;
        if (sim::sampleStreamCumulative(s.stream)) {
            auto key = std::make_pair(static_cast<int>(s.stream),
                                      s.index);
            auto it = lastCumulative.find(key);
            value = s.value -
                    (it == lastCumulative.end() ? 0.0 : it->second);
            lastCumulative[key] = s.value;
        }
        std::string name =
            std::string("timeline.") + sim::sampleStreamName(s.stream);
        if (sim::sampleStreamIndexed(s.stream))
            name += "[" + std::to_string(s.index) + "]";
        json::Value ev = json::object();
        ev.set("name", std::move(name));
        ev.set("cat", "timeline");
        ev.set("ph", "C");
        ev.set("ts", s.at);
        ev.set("pid", pidResources);
        json::Value args = json::object();
        args.set("value", value);
        ev.set("args", std::move(args));
        events.push(std::move(ev));
    }

    json::Value doc = json::object();
    doc.set("traceEvents", std::move(events));
    doc.set("displayTimeUnit", "ns");
    return doc;
}

void
TraceRecorder::writeChromeTrace(std::ostream &os) const
{
    chromeTrace().dump(os, 0);
    os << "\n";
}

json::Value
TraceRecorder::syncVarSummary() const
{
    std::vector<const std::pair<const sim::SyncVarId,
                                SyncVarStats> *> order;
    order.reserve(syncVars_.size());
    for (const auto &entry : syncVars_)
        order.push_back(&entry);
    std::stable_sort(order.begin(), order.end(),
                     [](const auto *a, const auto *b) {
                         return a->second.total > b->second.total;
                     });

    json::Value arr = json::array();
    for (const auto *entry : order) {
        json::Value var = json::object();
        var.set("var", static_cast<std::uint64_t>(entry->first));
        if (!entry->second.label.empty())
            var.set("label", entry->second.label);
        var.set("total", entry->second.total);
        var.set("wait_cycles", static_cast<std::uint64_t>(
                                   entry->second.waitCycles));
        json::Value ops = json::object();
        for (const auto &op : entry->second.opCounts)
            ops.set(op.first, op.second);
        var.set("ops", std::move(ops));
        arr.push(std::move(var));
    }
    return arr;
}

} // namespace core
} // namespace psync
