#include "core/json.hh"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <sstream>
#include <system_error>

namespace psync {
namespace core {
namespace json {

const Value *
Value::find(const std::string &key) const
{
    if (type_ != Type::object)
        return nullptr;
    for (const auto &member : obj_) {
        if (member.first == key)
            return &member.second;
    }
    return nullptr;
}

std::string
quote(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    out += '"';
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned char>(c));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    out += '"';
    return out;
}

namespace {

void
dumpNumber(std::ostream &os, double d)
{
    // JSON has no NaN/Infinity literals; rates computed over empty
    // or zero-cycle runs produce them, and "%.17g" would emit
    // "nan"/"inf" that no parser accepts. Emit null instead.
    if (!std::isfinite(d)) {
        os << "null";
        return;
    }
    // Integers (the common case: ticks and counts) print without a
    // fraction; doubles use enough digits to round-trip.
    if (d == std::floor(d) && std::fabs(d) < 9.007199254740992e15) {
        os << static_cast<long long>(d);
        return;
    }
    // to_chars: shortest round-tripping form, and immune to the
    // process locale ("%.17g" under a comma-decimal locale would
    // write "0,5", which no JSON parser accepts).
    char buf[64];
    auto res = std::to_chars(buf, buf + sizeof(buf), d);
    os.write(buf, res.ptr - buf);
}

} // namespace

void
Value::dumpImpl(std::ostream &os, int indent, int depth) const
{
    auto newline = [&](int level) {
        if (indent > 0) {
            os << '\n';
            for (int i = 0; i < indent * level; ++i)
                os << ' ';
        }
    };

    switch (type_) {
      case Type::null:
        os << "null";
        break;
      case Type::boolean:
        os << (bool_ ? "true" : "false");
        break;
      case Type::number:
        dumpNumber(os, num_);
        break;
      case Type::string:
        os << quote(str_);
        break;
      case Type::array:
        os << '[';
        for (size_t i = 0; i < arr_.size(); ++i) {
            if (i)
                os << ',';
            newline(depth + 1);
            arr_[i].dumpImpl(os, indent, depth + 1);
        }
        if (!arr_.empty())
            newline(depth);
        os << ']';
        break;
      case Type::object:
        os << '{';
        for (size_t i = 0; i < obj_.size(); ++i) {
            if (i)
                os << ',';
            newline(depth + 1);
            os << quote(obj_[i].first) << ':';
            if (indent > 0)
                os << ' ';
            obj_[i].second.dumpImpl(os, indent, depth + 1);
        }
        if (!obj_.empty())
            newline(depth);
        os << '}';
        break;
    }
}

void
Value::dump(std::ostream &os, int indent) const
{
    dumpImpl(os, indent, 0);
}

std::string
Value::dump(int indent) const
{
    std::ostringstream os;
    dump(os, indent);
    return os.str();
}

namespace {

/** Recursive-descent parser over a string. */
class Parser
{
  public:
    explicit Parser(const std::string &text) : text_(text) {}

    ParseResult
    run()
    {
        ParseResult result;
        skipWs();
        if (!parseValue(result.value)) {
            result.error = error_;
            return result;
        }
        skipWs();
        if (pos_ != text_.size()) {
            result.error = "trailing characters at offset " +
                           std::to_string(pos_);
            return result;
        }
        result.ok = true;
        return result;
    }

  private:
    bool
    fail(const std::string &msg)
    {
        if (error_.empty())
            error_ = msg + " at offset " + std::to_string(pos_);
        return false;
    }

    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r'))
            ++pos_;
    }

    bool
    literal(const char *word, Value v, Value &out)
    {
        size_t len = std::string(word).size();
        if (text_.compare(pos_, len, word) != 0)
            return fail(std::string("expected '") + word + "'");
        pos_ += len;
        out = std::move(v);
        return true;
    }

    bool
    parseValue(Value &out)
    {
        if (pos_ >= text_.size())
            return fail("unexpected end of input");
        char c = text_[pos_];
        switch (c) {
          case 'n':
            return literal("null", Value(nullptr), out);
          case 't':
            return literal("true", Value(true), out);
          case 'f':
            return literal("false", Value(false), out);
          case '"':
            return parseString(out);
          case '[':
            return parseArray(out);
          case '{':
            return parseObject(out);
          default:
            if (c == '-' || (c >= '0' && c <= '9'))
                return parseNumber(out);
            return fail("unexpected character");
        }
    }

    bool
    parseString(Value &out)
    {
        std::string s;
        if (!parseRawString(s))
            return false;
        out = Value(std::move(s));
        return true;
    }

    bool
    parseRawString(std::string &out)
    {
        if (text_[pos_] != '"')
            return fail("expected string");
        ++pos_;
        while (pos_ < text_.size()) {
            char c = text_[pos_++];
            if (c == '"')
                return true;
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= text_.size())
                return fail("unterminated escape");
            char esc = text_[pos_++];
            switch (esc) {
              case '"':
                out += '"';
                break;
              case '\\':
                out += '\\';
                break;
              case '/':
                out += '/';
                break;
              case 'b':
                out += '\b';
                break;
              case 'f':
                out += '\f';
                break;
              case 'n':
                out += '\n';
                break;
              case 'r':
                out += '\r';
                break;
              case 't':
                out += '\t';
                break;
              case 'u': {
                if (pos_ + 4 > text_.size())
                    return fail("truncated \\u escape");
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    char h = text_[pos_++];
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code |= h - '0';
                    else if (h >= 'a' && h <= 'f')
                        code |= h - 'a' + 10;
                    else if (h >= 'A' && h <= 'F')
                        code |= h - 'A' + 10;
                    else
                        return fail("bad \\u escape");
                }
                // Encode the code point as UTF-8 (BMP only — the
                // sinks never emit surrogate pairs).
                if (code < 0x80) {
                    out += static_cast<char>(code);
                } else if (code < 0x800) {
                    out += static_cast<char>(0xc0 | (code >> 6));
                    out += static_cast<char>(0x80 | (code & 0x3f));
                } else {
                    out += static_cast<char>(0xe0 | (code >> 12));
                    out += static_cast<char>(0x80 |
                                             ((code >> 6) & 0x3f));
                    out += static_cast<char>(0x80 | (code & 0x3f));
                }
                break;
              }
              default:
                return fail("unknown escape");
            }
        }
        return fail("unterminated string");
    }

    bool
    parseNumber(Value &out)
    {
        size_t start = pos_;
        if (pos_ < text_.size() && text_[pos_] == '-')
            ++pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E' || text_[pos_] == '+' ||
                text_[pos_] == '-'))
            ++pos_;
        // from_chars always parses the C locale's "1.5" form;
        // std::stod honors the process locale and would reject the
        // dot (expecting a comma) under e.g. de_DE, corrupting every
        // reloaded trajectory record.
        const char *first = text_.data() + start;
        const char *last = text_.data() + pos_;
        double d = 0.0;
        auto res = std::from_chars(first, last, d);
        if (res.ec != std::errc() || res.ptr != last)
            return fail("bad number");
        out = Value(d);
        return true;
    }

    bool
    parseArray(Value &out)
    {
        ++pos_; // '['
        Array arr;
        skipWs();
        if (pos_ < text_.size() && text_[pos_] == ']') {
            ++pos_;
            out = Value(std::move(arr));
            return true;
        }
        while (true) {
            Value element;
            skipWs();
            if (!parseValue(element))
                return false;
            arr.push_back(std::move(element));
            skipWs();
            if (pos_ >= text_.size())
                return fail("unterminated array");
            if (text_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (text_[pos_] == ']') {
                ++pos_;
                out = Value(std::move(arr));
                return true;
            }
            return fail("expected ',' or ']'");
        }
    }

    bool
    parseObject(Value &out)
    {
        ++pos_; // '{'
        Object obj;
        skipWs();
        if (pos_ < text_.size() && text_[pos_] == '}') {
            ++pos_;
            out = Value(std::move(obj));
            return true;
        }
        while (true) {
            skipWs();
            std::string key;
            if (pos_ >= text_.size() || text_[pos_] != '"')
                return fail("expected object key");
            if (!parseRawString(key))
                return false;
            skipWs();
            if (pos_ >= text_.size() || text_[pos_] != ':')
                return fail("expected ':'");
            ++pos_;
            skipWs();
            Value val;
            if (!parseValue(val))
                return false;
            obj.emplace_back(std::move(key), std::move(val));
            skipWs();
            if (pos_ >= text_.size())
                return fail("unterminated object");
            if (text_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (text_[pos_] == '}') {
                ++pos_;
                out = Value(std::move(obj));
                return true;
            }
            return fail("expected ',' or '}'");
        }
    }

    const std::string &text_;
    size_t pos_ = 0;
    std::string error_;
};

} // namespace

ParseResult
parse(const std::string &text)
{
    return Parser(text).run();
}

} // namespace json
} // namespace core
} // namespace psync
