#include "core/runtime.hh"

#include <memory>

#include "core/value_trace.hh"
#include "sim/logging.hh"

namespace psync {
namespace core {

namespace {

/** Shared-memory word used by the self-scheduling dispatcher. */
constexpr sim::Addr dispatchCounterAddr = sim::Addr(1) << 39;

/** Analytic initialization cost of a scheme's sync variables. */
sim::Tick
initCost(const sync::SchemePlan &plan, const sim::MachineConfig &mc)
{
    if (plan.initWrites == 0)
        return 0;
    if (mc.fabric == sim::FabricKind::registers)
        return plan.initWrites * mc.syncBusCycles;
    // Hierarchical: init writes serialize on at least their local
    // cluster bus (worst case all from one cluster is more, so this
    // stays a lower bound).
    if (mc.fabric == sim::FabricKind::hierarchical)
        return plan.initWrites * mc.clusterBusCycles;
    // Combining fabric: writes from one port serialize at the
    // injection port and the slowest one still crosses a stage.
    if (mc.fabric == sim::FabricKind::combining)
        return plan.initWrites * mc.netPortCycles + mc.netStageCycles;
    // Memory-resident variables: the writes serialize on the data
    // bus; module service overlaps across interleaved modules.
    return plan.initWrites * mc.dataBusCycles + mc.memory.serviceCycles;
}

} // namespace

PlannedDoacross
planDoacross(const dep::Loop &loop, sync::SchemeKind kind,
             const RunConfig &cfg, sim::SyncFabric &fabric)
{
    PlannedDoacross planned;

    // Coverage elimination justifies dropped arcs by chains that
    // may pass through linearization-only boundary arcs; exact-
    // boundary codegen skips those waits, so the two cannot be
    // combined.
    bool eliminate_covered =
        cfg.eliminateCoveredDeps && !cfg.scheme.exactBoundaries;
    dep::DepGraph graph(loop, eliminate_covered);
    dep::DataLayout layout(loop, cfg.machine.memory.wordBytes);

    std::unique_ptr<sync::Scheme> scheme = sync::makeScheme(kind);
    sync::SchemeConfig scheme_cfg = cfg.scheme;
    if (scheme_cfg.tracer == nullptr)
        scheme_cfg.tracer = cfg.tracer;
    planned.plan = scheme->plan(graph, layout, fabric, scheme_cfg);

    const std::uint64_t total = loop.iterations();
    planned.programs.reserve(total);
    for (std::uint64_t lpid = 1; lpid <= total; ++lpid)
        planned.programs.push_back(scheme->emit(lpid));

    planned.passStats = ir::runPasses(
        planned.programs, cfg.passes,
        [&fabric](sim::SyncVarId var) { return fabric.peek(var); });
    if (cfg.passes.enabled && cfg.passes.verify &&
        !planned.passStats.verified) {
        sim::fatal("IR verifier rejected the %s plan for %s: %s%s",
                   sync::schemeKindName(kind), loop.name.c_str(),
                   planned.passStats.verifierErrors[0].c_str(),
                   planned.passStats.verifierErrors.size() > 1
                       ? " (more errors follow)"
                       : "");
    }
    return planned;
}

DoacrossResult
runDoacross(const dep::Loop &loop, sync::SchemeKind kind,
            const RunConfig &cfg)
{
    DoacrossResult result;

    TraceChecker checker;
    TeeSink tee(&checker, cfg.extraSink);
    sim::TraceSink *sink = nullptr;
    if (cfg.checkTrace)
        sink = cfg.extraSink ? static_cast<sim::TraceSink *>(&tee)
                             : &checker;
    else
        sink = cfg.extraSink;
    sim::Machine machine(cfg.machine, sink, cfg.tracer);

    PlannedDoacross planned =
        planDoacross(loop, kind, cfg, machine.fabric());
    result.plan = std::move(planned.plan);
    result.passStats = planned.passStats;
    result.initCycles = initCost(result.plan, cfg.machine);

    result.run = runProgramPool(machine, planned.programs,
                                cfg.schedule, cfg.tickLimit,
                                cfg.chunkSize);
    if (cfg.checkTrace) {
        result.violations =
            checker.verify(loop, result.plan.depsVerified);
        result.instancesChecked = checker.instancesChecked();
    }
    return result;
}

const char *
schedulePolicyName(SchedulePolicy policy)
{
    switch (policy) {
      case SchedulePolicy::selfScheduling:
        return "self";
      case SchedulePolicy::chunkedSelfScheduling:
        return "chunked";
      case SchedulePolicy::guidedSelfScheduling:
        return "guided";
      case SchedulePolicy::staticCyclic:
        return "static";
    }
    return "unknown";
}

RunResult
runProgramPool(sim::Machine &machine,
               const std::vector<sim::Program> &programs,
               SchedulePolicy policy, sim::Tick tick_limit,
               std::uint64_t chunk_size)
{
    const std::uint64_t total = programs.size();
    bool completed = false;

    if (policy == SchedulePolicy::selfScheduling ||
        policy == SchedulePolicy::chunkedSelfScheduling ||
        policy == SchedulePolicy::guidedSelfScheduling) {
        sim::Memory &mem = machine.memory();
        const unsigned p = machine.numProcs();

        // Size of the block one fetch&add claims, given the old
        // counter value.
        auto claim_size = [policy, chunk_size, total,
                           p](sim::SyncWord old_value) {
            switch (policy) {
              case SchedulePolicy::chunkedSelfScheduling:
                return std::max<std::uint64_t>(1, chunk_size);
              case SchedulePolicy::guidedSelfScheduling: {
                std::uint64_t remaining =
                    old_value < total ? total - old_value : 0;
                return std::max<std::uint64_t>(1,
                                               remaining / (2 * p));
              }
              default:
                return std::uint64_t{1};
            }
        };

        // Iterations already claimed but not yet run, per proc.
        auto local = std::make_shared<
            std::vector<std::pair<std::uint64_t, std::uint64_t>>>(
            p, std::pair<std::uint64_t, std::uint64_t>{0, 0});

        sim::EventQueue &eq = machine.eventq();
        auto dispatch =
            [&mem, &eq, &programs, total, claim_size,
             local](sim::ProcId who,
                    std::function<void(const sim::Program *)> cb) {
            (void)eq;
            auto &range = (*local)[who];
            if (range.first < range.second) {
                cb(&programs[range.first++]);
                return;
            }
            mem.rmw(who, dispatchCounterAddr,
                    [claim_size](sim::SyncWord old_value) {
                        return old_value + claim_size(old_value);
                    },
                    [&eq, &programs, total, claim_size, local, who,
                     cb = std::move(cb)](sim::SyncWord old_value) {
                        (void)eq;
                        if (old_value >= total) {
                            cb(nullptr);
                            return;
                        }
                        std::uint64_t end = std::min(
                            total,
                            old_value + claim_size(old_value));
                        PSYNC_DPRINTF(eq, Sched,
                                      "proc %u claims iters "
                                      "[%llu, %llu]",
                                      who,
                                      static_cast<unsigned long long>(
                                          old_value + 1),
                                      static_cast<unsigned long long>(
                                          end));
                        (*local)[who] = {old_value + 1, end};
                        cb(&programs[old_value]);
                    });
        };
        completed = machine.run(dispatch, tick_limit);
    } else {
        unsigned p = machine.numProcs();
        sim::EventQueue &eq = machine.eventq();
        std::vector<std::uint64_t> next(p);
        for (unsigned q = 0; q < p; ++q)
            next[q] = q;
        auto dispatch =
            [&next, &eq, &programs, total,
             p](sim::ProcId who,
                std::function<void(const sim::Program *)> cb) {
            (void)eq;
            std::uint64_t idx = next[who];
            if (idx >= total) {
                cb(nullptr);
                return;
            }
            PSYNC_DPRINTF(eq, Sched, "proc %u takes iter %llu",
                          who,
                          static_cast<unsigned long long>(idx + 1));
            next[who] += p;
            cb(&programs[idx]);
        };
        completed = machine.run(dispatch, tick_limit);
    }
    return collectResult(machine, completed);
}

sim::Tick
sequentialCycles(const dep::Loop &loop,
                 const sim::MachineConfig &machine_cfg)
{
    RunConfig cfg;
    cfg.machine = machine_cfg;
    cfg.machine.numProcs = 1;
    cfg.schedule = SchedulePolicy::staticCyclic;
    cfg.checkTrace = false;
    DoacrossResult r = runDoacross(loop, sync::SchemeKind::none, cfg);
    if (!r.run.completed)
        sim::panic("sequential run hit the tick limit");
    return r.run.cycles;
}

RunResult
runPerProcessorPrograms(
    sim::Machine &machine,
    const std::vector<std::vector<sim::Program>> &per_proc,
    sim::Tick tick_limit)
{
    if (per_proc.size() != machine.numProcs())
        sim::fatal("program lists (%zu) != processors (%u)",
                   per_proc.size(), machine.numProcs());

    std::vector<size_t> next(per_proc.size(), 0);
    auto dispatch = [&per_proc, &next](
                        sim::ProcId who,
                        std::function<void(const sim::Program *)> cb) {
        size_t idx = next[who];
        if (idx >= per_proc[who].size()) {
            cb(nullptr);
            return;
        }
        ++next[who];
        cb(&per_proc[who][idx]);
    };
    bool completed = machine.run(dispatch, tick_limit);
    return collectResult(machine, completed);
}

} // namespace core
} // namespace psync
