/**
 * @file
 * Plan cache: planDoacross once, execute millions of times.
 *
 * The runtime service's traffic is dominated by resubmissions of
 * the same loops: planning (dependence analysis, scheme planning,
 * lowering, the IR pass pipeline, verification) costs orders of
 * magnitude more than one native execution of the resulting
 * programs. The cache keys a fully planned-and-verified program set
 * on exactly the inputs planning consumes — the canonical loop text
 * plus every planning-relevant RunConfig field — so a hit is
 * guaranteed to be the byte-identical plan a fresh planDoacross
 * would produce, and execution-time knobs (schedule policy, chunk
 * size, tick limit, tracers) deliberately stay out of the key.
 *
 * A cached entry also carries what a long-lived executor needs to
 * rerun the plan without replanning:
 *  - the planning fabric's initialized sync-variable image (the
 *    seed for NativeSyncFabric epoch reuse), and
 *  - a reference memory/read image for sampled verification
 *    (the sequential oracle for in-place schemes; a finisher
 *    callback supplies it for renamed-storage schemes, keeping
 *    core free of a dependency on the native backend).
 *
 * Entries are immutable after insertion and handed out as
 * shared_ptr<const CachedPlan>, so eviction never invalidates a
 * plan some gang is still executing. Eviction is LRU.
 */

#ifndef PSYNC_CORE_PLAN_CACHE_HH
#define PSYNC_CORE_PLAN_CACHE_HH

#include <atomic>
#include <cstdint>
#include <functional>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/runtime.hh"
#include "dep/loop_ir.hh"
#include "sim/program.hh"
#include "sim/types.hh"

namespace psync {
namespace core {

/** One planned, verified, immutable program set. */
struct CachedPlan
{
    /** Full cache key this entry was planned under. */
    std::string key;
    /** Canonical loop text (dep::printLoop round-trip form). */
    std::string loopText;
    dep::Loop loop;
    sync::SchemeKind kind = sync::SchemeKind::none;
    sync::SchemePlan plan;
    std::vector<sim::Program> programs;
    ir::PassStats passStats;

    /**
     * The planning fabric's sync-variable values after the scheme's
     * init writes — the image every execution must (logically)
     * start from; NativeSyncFabric's epoch protocol restores it
     * in O(1) per run.
     */
    std::vector<sim::SyncWord> initWords;

    /**
     * Expected functional memory image / read values for sampled
     * verification. In-place schemes must reproduce the sequential
     * oracle; renamed-storage (instance-based) plans get theirs
     * from the finisher, and hasReference stays false if no one
     * supplied one (verification then skips image comparison).
     */
    bool hasReference = false;
    std::map<sim::Addr, std::uint64_t> refMemory;
    std::map<std::uint64_t, std::uint64_t> refReads;
};

/**
 * Called once per cache miss with the freshly planned entry, before
 * insertion: the hook that lets a caller attach backend-specific
 * reference data (e.g. run the plan natively once to capture the
 * renamed-storage image) without core linking that backend.
 */
using PlanFinisher = std::function<void(CachedPlan &)>;

/** Thread-safe LRU cache of planned Doacross programs. */
class PlanCache
{
  public:
    explicit PlanCache(std::size_t capacity = 64);

    /**
     * The canonical key: printLoop(loop) round-trip text plus every
     * planning-relevant field of (kind, cfg). Two configs that can
     * produce different plans always produce different keys.
     */
    static std::string makeKey(const dep::Loop &loop,
                               sync::SchemeKind kind,
                               const RunConfig &cfg);

    /**
     * Look up or plan-and-insert. On a miss this plans under the
     * cache lock (a concurrent second requester of the same key
     * waits and then hits). An IR verifier failure in planDoacross
     * is fatal, exactly as on the uncached path, so every entry
     * that exists is verified.
     */
    std::shared_ptr<const CachedPlan>
    get(const dep::Loop &loop, sync::SchemeKind kind,
        const RunConfig &cfg, const PlanFinisher &finisher = {});

    /** Non-inserting probe (tests / introspection). */
    bool contains(const std::string &key) const;

    std::size_t capacity() const { return capacity_; }
    std::size_t size() const;
    std::uint64_t hits() const { return hits_.load(); }
    std::uint64_t misses() const { return misses_.load(); }
    std::uint64_t evictions() const { return evictions_.load(); }

    double
    hitRate() const
    {
        std::uint64_t h = hits(), m = misses();
        return h + m ? static_cast<double>(h) / (h + m) : 0.0;
    }

  private:
    using Entry = std::shared_ptr<const CachedPlan>;

    std::size_t capacity_;
    mutable std::mutex mutex_;
    /** Most-recently-used at the front. */
    std::list<Entry> lru_;
    std::unordered_map<std::string, std::list<Entry>::iterator>
        index_;
    std::atomic<std::uint64_t> hits_{0};
    std::atomic<std::uint64_t> misses_{0};
    std::atomic<std::uint64_t> evictions_{0};
};

} // namespace core
} // namespace psync

#endif // PSYNC_CORE_PLAN_CACHE_HH
