/**
 * @file
 * Concrete trace recorder and exporters.
 *
 * TraceRecorder implements sim::Tracer by buffering every reported
 * event in memory; after the run it can be exported as Chrome
 * trace-event JSON (load in Perfetto / chrome://tracing) or reduced
 * to a per-synchronization-variable contention summary. Recording is
 * append-only and passive — it never touches the event queue — so a
 * traced run produces statistics identical to an untraced one.
 */

#ifndef PSYNC_CORE_TRACING_HH
#define PSYNC_CORE_TRACING_HH

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "core/json.hh"
#include "sim/tracing.hh"

namespace psync {
namespace core {

/** In-memory recording of one run's trace events. */
class TraceRecorder : public sim::Tracer
{
  public:
    struct PhaseEvent
    {
        sim::ProcId who;
        sim::TracePhase phase;
        sim::Tick start;
        sim::Tick end;
    };

    struct ResourceEvent
    {
        std::string resource;
        unsigned index;
        sim::ProcId who;
        sim::Tick start;
        sim::Tick end;
    };

    struct CounterEvent
    {
        std::string counter;
        sim::Tick at;
        double value;
    };

    struct InstantEvent
    {
        std::string name;
        sim::ProcId who;
        sim::Tick at;
    };

    /** One satisfied wait: `who` blocked on `var` over [start, end). */
    struct WaitEdge
    {
        sim::SyncVarId var;
        sim::ProcId who;
        sim::Tick start;
        sim::Tick end;

        sim::Tick cycles() const { return end - start; }
    };

    /**
     * One satisfied program-op wait, keyed by the emitting op's
     * stable IR id (0 = hand-built program). Aggregating these by
     * (var, opId) attributes blocking to the wait *site* the
     * scheme emitted, across iterations.
     */
    struct WaitSiteEdge
    {
        sim::SyncVarId var;
        sim::ProcId who;
        std::uint32_t opId;
        sim::Tick start;
        sim::Tick end;

        sim::Tick cycles() const { return end - start; }
    };

    /**
     * One executed program op: issue through completion on one
     * processor, stamped with the op's stable IR id, kind, sync
     * variable (0 = none) and iteration. Spans of one processor
     * never overlap and arrive in completion order; together with
     * the wait edges they are the profiler's (core/profile) input.
     */
    struct OpSpan
    {
        sim::ProcId who;
        std::uint64_t iter;
        std::uint32_t opId;
        ir::OpKind kind;
        sim::SyncVarId var;
        sim::Tick start;
        sim::Tick end;

        sim::Tick cycles() const { return end - start; }
    };

    /**
     * One sync-variable access event with its actor and time
     * ("write", "broadcast", "rmw", "keyed", ...). The profiler
     * scans these to find which processor's operation satisfied a
     * blocked wait.
     */
    struct SyncOpEvent
    {
        sim::SyncVarId var;
        sim::ProcId who;
        sim::Tick at;
        std::string op;
    };

    /**
     * One timeline sample: `stream[index]` had `value` at tick
     * `at`. Samples of one stream arrive in non-decreasing tick
     * order (the machine emits one batch per interval boundary).
     */
    struct TimelineSample
    {
        sim::SampleStream stream;
        std::uint32_t index;
        sim::Tick at;
        double value;
    };

    struct SyncVarStats
    {
        std::string label;
        /** op name -> count ("write", "poll", "wait", ...). */
        std::map<std::string, std::uint64_t> opCounts;
        std::uint64_t total = 0;
        /** Cycles processors spent blocked on this variable. */
        sim::Tick waitCycles = 0;
    };

    void phaseInterval(sim::ProcId who, sim::TracePhase phase,
                       sim::Tick start, sim::Tick end) override;
    void resourceBusy(const std::string &resource, unsigned index,
                      sim::ProcId who, sim::Tick start,
                      sim::Tick end) override;
    void counterSample(const std::string &counter, sim::Tick at,
                       double value) override;
    void instant(const std::string &name, sim::ProcId who,
                 sim::Tick at) override;
    void syncVarOp(sim::SyncVarId var, const char *op,
                   sim::ProcId who, sim::Tick at) override;
    void waitEdge(sim::SyncVarId var, sim::ProcId who,
                  sim::Tick start, sim::Tick end) override;
    void waitEdgeOp(sim::SyncVarId var, sim::ProcId who,
                    std::uint32_t op_id, sim::Tick start,
                    sim::Tick end) override;
    void opSpan(sim::ProcId who, std::uint64_t iter,
                std::uint32_t op_id, ir::OpKind kind,
                sim::SyncVarId var, sim::Tick start,
                sim::Tick end) override;
    void sample(sim::SampleStream stream, std::uint32_t index,
                sim::Tick at, double value) override;
    void nameSyncVar(sim::SyncVarId var,
                     const std::string &label) override;

    const std::vector<PhaseEvent> &phases() const { return phases_; }
    const std::vector<ResourceEvent> &resources() const
    {
        return resources_;
    }
    const std::vector<CounterEvent> &counters() const
    {
        return counters_;
    }
    const std::vector<InstantEvent> &instants() const
    {
        return instants_;
    }
    const std::map<sim::SyncVarId, SyncVarStats> &syncVars() const
    {
        return syncVars_;
    }
    const std::vector<WaitEdge> &waitEdges() const
    {
        return waitEdges_;
    }
    const std::vector<WaitSiteEdge> &waitSiteEdges() const
    {
        return waitSiteEdges_;
    }
    const std::vector<OpSpan> &opSpans() const { return opSpans_; }
    const std::vector<TimelineSample> &samples() const
    {
        return samples_;
    }
    const std::vector<SyncOpEvent> &syncOpEvents() const
    {
        return syncOpEvents_;
    }

    std::size_t
    eventCount() const
    {
        return phases_.size() + resources_.size() +
               counters_.size() + instants_.size() +
               waitEdges_.size() + opSpans_.size();
    }

    /** Drop everything recorded so far (reuse across runs). */
    void clear();

    /**
     * Export as a Chrome trace-event JSON document:
     * `{"traceEvents": [...], "displayTimeUnit": "ns"}`. One tick
     * maps to one microsecond of trace time. Process 0 holds one
     * thread per simulated processor (phase intervals as complete
     * "X" events, instants as "i"); process 1 holds one thread per
     * hardware resource (bus, memory modules) plus counter "C"
     * tracks for the sampled queue depths.
     */
    void writeChromeTrace(std::ostream &os) const;

    /** Chrome trace as a json::Value (tests introspect this). */
    json::Value chromeTrace() const;

    /**
     * Per-sync-variable contention summary:
     * `[{"var": id, "label": ..., "total": n, "wait_cycles": w,
     * "ops": {...}}, ...]`
     * sorted by descending total so the hottest variable is first.
     */
    json::Value syncVarSummary() const;

  private:
    std::vector<PhaseEvent> phases_;
    std::vector<ResourceEvent> resources_;
    std::vector<CounterEvent> counters_;
    std::vector<InstantEvent> instants_;
    std::vector<WaitEdge> waitEdges_;
    std::vector<WaitSiteEdge> waitSiteEdges_;
    std::vector<OpSpan> opSpans_;
    std::vector<SyncOpEvent> syncOpEvents_;
    std::vector<TimelineSample> samples_;
    std::map<sim::SyncVarId, SyncVarStats> syncVars_;
};

} // namespace core
} // namespace psync

#endif // PSYNC_CORE_TRACING_HH
