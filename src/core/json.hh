/**
 * @file
 * Minimal JSON value type with a parser and a serializer.
 *
 * The observability sinks (Chrome trace export, machine-readable
 * stats dumps) emit JSON, and the tests must parse those emissions
 * back to validate them. Rather than take an external dependency
 * the repo carries this small, strict implementation: UTF-8 pass
 * through, objects preserve insertion order so dumps are
 * deterministic and diffable.
 */

#ifndef PSYNC_CORE_JSON_HH
#define PSYNC_CORE_JSON_HH

#include <cstdint>
#include <memory>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

namespace psync {
namespace core {
namespace json {

class Value;

/** Ordered key/value storage — insertion order is emission order. */
using Object = std::vector<std::pair<std::string, Value>>;
using Array = std::vector<Value>;

enum class Type
{
    null,
    boolean,
    number,
    string,
    array,
    object,
};

/** One JSON value of any type. */
class Value
{
  public:
    Value() : type_(Type::null) {}
    Value(std::nullptr_t) : type_(Type::null) {}
    Value(bool b) : type_(Type::boolean), bool_(b) {}
    Value(double d) : type_(Type::number), num_(d) {}
    Value(int i) : type_(Type::number), num_(i) {}
    Value(unsigned u) : type_(Type::number), num_(u) {}
    Value(std::int64_t i)
        : type_(Type::number), num_(static_cast<double>(i)) {}
    Value(std::uint64_t u)
        : type_(Type::number), num_(static_cast<double>(u)) {}
    Value(const char *s) : type_(Type::string), str_(s) {}
    Value(std::string s) : type_(Type::string), str_(std::move(s)) {}
    Value(Array a) : type_(Type::array), arr_(std::move(a)) {}
    Value(Object o) : type_(Type::object), obj_(std::move(o)) {}

    Type type() const { return type_; }
    bool isNull() const { return type_ == Type::null; }
    bool isBool() const { return type_ == Type::boolean; }
    bool isNumber() const { return type_ == Type::number; }
    bool isString() const { return type_ == Type::string; }
    bool isArray() const { return type_ == Type::array; }
    bool isObject() const { return type_ == Type::object; }

    bool asBool() const { return bool_; }
    double asNumber() const { return num_; }
    const std::string &asString() const { return str_; }
    const Array &asArray() const { return arr_; }
    Array &asArray() { return arr_; }
    const Object &asObject() const { return obj_; }
    Object &asObject() { return obj_; }

    /** Object lookup; nullptr when absent or not an object. */
    const Value *find(const std::string &key) const;

    /** True when the object has `key`. */
    bool has(const std::string &key) const { return find(key); }

    /** Append a member to an object value. */
    void
    set(std::string key, Value value)
    {
        type_ = Type::object;
        obj_.emplace_back(std::move(key), std::move(value));
    }

    /** Append an element to an array value. */
    void
    push(Value value)
    {
        type_ = Type::array;
        arr_.push_back(std::move(value));
    }

    /** Serialize; indent > 0 pretty-prints with that step. */
    void dump(std::ostream &os, int indent = 0) const;
    std::string dump(int indent = 0) const;

  private:
    void dumpImpl(std::ostream &os, int indent, int depth) const;

    Type type_;
    bool bool_ = false;
    double num_ = 0.0;
    std::string str_;
    Array arr_;
    Object obj_;
};

/** Build an object value (convenience for call sites). */
inline Value
object()
{
    return Value(Object{});
}

/** Build an array value. */
inline Value
array()
{
    return Value(Array{});
}

/**
 * Parse one JSON document. Strict: trailing garbage, trailing
 * commas, and unquoted keys are errors.
 * @param error receives a message on failure when non-null.
 * @return the parsed value, or nullopt-like null value with
 *         `ok == false`.
 */
struct ParseResult
{
    bool ok = false;
    Value value;
    std::string error;
};

ParseResult parse(const std::string &text);

/** Escape and quote a string for JSON emission. */
std::string quote(const std::string &s);

} // namespace json
} // namespace core
} // namespace psync

#endif // PSYNC_CORE_JSON_HH
