#include "core/critical_path.hh"

#include <algorithm>
#include <vector>

#include "dep/transform.hh"

namespace psync {
namespace core {

CriticalPath
criticalPath(const dep::DepGraph &graph,
             const CriticalPathCosts &costs)
{
    const dep::Loop &loop = graph.loop();
    const long m = loop.innerTrip();
    const std::uint64_t total = loop.iterations();
    const size_t num_stmts = loop.body.size();

    // Incoming arcs per sink statement — covered arcs included:
    // coverage elimination drops them from the *transformed
    // program* because linearized chains (extra boundary arcs
    // included) imply them, but the semantic bound filters those
    // extra arcs below, so every real constraint must appear
    // directly.
    std::vector<std::vector<dep::Dep>> incoming(num_stmts);
    for (const dep::Dep &d : graph.crossIteration())
        incoming[d.dst].push_back(d);

    // Duration of one instance of each statement.
    std::vector<sim::Tick> duration(num_stmts, 0);
    for (size_t s = 0; s < num_stmts; ++s) {
        duration[s] = loop.body[s].cost +
                      loop.body[s].refs.size() * costs.accessCycles;
    }

    CriticalPath result;

    // end[(i-1) * num_stmts + s] = completion time of instance
    // (s, i); 0 for inactive instances.
    std::vector<sim::Tick> end(total * num_stmts, 0);

    for (std::uint64_t lpid = 1; lpid <= total; ++lpid) {
        sim::Tick prev_in_iter = 0;
        for (size_t s = 0; s < num_stmts; ++s) {
            if (!dep::stmtActive(loop, loop.body[s], lpid)) {
                // Skipped instances take no time; program order
                // flows through them unchanged.
                end[(lpid - 1) * num_stmts + s] = prev_in_iter;
                continue;
            }
            sim::Tick start = prev_in_iter;
            for (const dep::Dep &d : incoming[s]) {
                long dist = d.linearDistance(m);
                if (dist <= 0 ||
                    static_cast<std::uint64_t>(dist) >= lpid) {
                    continue;
                }
                // The bound reflects the loop's semantics: arcs
                // that linearization merely manufactures at inner
                // boundaries (Fig. 5.2, dashed) do not constrain
                // it.
                if (!dep::sinkHasSource(loop, d, lpid))
                    continue;
                std::uint64_t src_lpid = lpid - dist;
                // A cross-processor arc pays the sync-fabric hop on
                // top of the producer's completion: the consumer
                // cannot observe the value before it crosses the
                // fabric (0 on memory-resident schemes).
                sim::Tick src_end =
                    end[(src_lpid - 1) * num_stmts + d.src];
                start = std::max(start,
                                 src_end + costs.syncHopCycles);
            }
            sim::Tick finish = start + duration[s];
            end[(lpid - 1) * num_stmts + s] = finish;
            prev_in_iter = finish;
            result.totalWork += duration[s];
            result.cycles = std::max(result.cycles, finish);
        }
    }
    return result;
}

CriticalPath
analyticalCriticalPath(const dep::Loop &loop,
                       const CriticalPathCosts &costs)
{
    const long m = loop.innerTrip();
    const std::uint64_t total = loop.iterations();
    const size_t num_stmts = loop.body.size();

    // Straight from the analyzer: duplicates and covered arcs are
    // all kept (max is idempotent), so this shares no arc plumbing
    // with DepGraph. Non-constant pairs carry no distance and are
    // outside the bound either way.
    dep::DepAnalysis analysis = dep::analyze(loop);
    std::vector<std::vector<dep::Dep>> incoming(num_stmts);
    for (const dep::Dep &d : analysis.deps)
        incoming[d.dst].push_back(d);

    std::vector<sim::Tick> duration(num_stmts, 0);
    for (size_t s = 0; s < num_stmts; ++s)
        duration[s] = loop.body[s].cost +
                      loop.body[s].refs.size() * costs.accessCycles;

    CriticalPath result;

    // F(v) per instance node, solved lazily by an explicit-stack
    // DFS (chains can be as long as the whole instance space, so no
    // native recursion).
    auto idOf = [num_stmts](size_t s, std::uint64_t lpid) {
        return (lpid - 1) * num_stmts + s;
    };
    std::vector<sim::Tick> finish(total * num_stmts, 0);
    std::vector<char> solved(total * num_stmts, 0);

    // Predecessors of (s, lpid) under F's recurrence: serial
    // program order within the iteration, plus — for active
    // instances only — every semantically real incoming arc.
    auto eachPred = [&](size_t s, std::uint64_t lpid, auto &&fn) {
        if (s > 0)
            fn(s - 1, lpid, static_cast<sim::Tick>(0));
        if (!dep::stmtActive(loop, loop.body[s], lpid))
            return;
        for (const dep::Dep &d : incoming[s]) {
            long dist = d.linearDistance(m);
            if (dist <= 0 ||
                static_cast<std::uint64_t>(dist) >= lpid)
                continue;
            if (!dep::sinkHasSource(loop, d, lpid))
                continue;
            fn(d.src, lpid - dist, costs.syncHopCycles);
        }
    };

    std::vector<std::uint64_t> stack;
    for (std::uint64_t lpid = 1; lpid <= total; ++lpid) {
        for (size_t s = 0; s < num_stmts; ++s) {
            if (solved[idOf(s, lpid)])
                continue;
            stack.push_back(idOf(s, lpid));
            while (!stack.empty()) {
                std::uint64_t node = stack.back();
                if (solved[node]) {
                    stack.pop_back();
                    continue;
                }
                size_t ns = node % num_stmts;
                std::uint64_t np = node / num_stmts + 1;
                bool ready = true;
                eachPred(ns, np,
                         [&](size_t ps, std::uint64_t pp,
                             sim::Tick) {
                             if (!solved[idOf(ps, pp)]) {
                                 stack.push_back(idOf(ps, pp));
                                 ready = false;
                             }
                         });
                if (!ready)
                    continue;
                stack.pop_back();
                bool active =
                    dep::stmtActive(loop, loop.body[ns], np);
                sim::Tick start = 0;
                eachPred(ns, np,
                         [&](size_t ps, std::uint64_t pp,
                             sim::Tick hop) {
                             start = std::max(
                                 start,
                                 finish[idOf(ps, pp)] + hop);
                         });
                // Inactive instances take no time; program order
                // flows through unchanged — identical to the DP.
                finish[node] = active ? start + duration[ns] : start;
                solved[node] = 1;
            }
            if (dep::stmtActive(loop, loop.body[s], lpid))
                result.totalWork += duration[s];
            result.cycles =
                std::max(result.cycles, finish[idOf(s, lpid)]);
        }
    }
    return result;
}

} // namespace core
} // namespace psync
