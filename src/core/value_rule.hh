/**
 * @file
 * Stateless data-value rule shared by the simulator and the native
 * execution backend.
 *
 * The simulator models data accesses as timed bus/memory traffic
 * without materializing values. To cross-validate a native run
 * against a simulated one we still need *comparable array
 * contents*, so both backends agree on one rule: the value written
 * by reference `ref` of statement `stmt` at iteration `iter` is a
 * pure hash of that (stmt, ref, iter) triple. Final memory contents
 * are then a function of which write to each address was ordered
 * last — exactly the property the synchronization schemes must
 * enforce — and any two executions that respect the dependence
 * graph produce bit-identical memory images, regardless of timing,
 * backend, or thread count.
 */

#ifndef PSYNC_CORE_VALUE_RULE_HH
#define PSYNC_CORE_VALUE_RULE_HH

#include <cstdint>

namespace psync {
namespace core {

/**
 * Pack an access identity into one word: iterations < 2^40,
 * statements < 2^12, refs < 2^12. The same packing TraceChecker
 * keys its records with.
 */
constexpr std::uint64_t
accessKey(std::uint32_t stmt, std::uint16_t ref, std::uint64_t iter)
{
    return (iter << 24) | (static_cast<std::uint64_t>(stmt) << 12) |
           ref;
}

/** SplitMix64 finalizer (same constants as sim::Rng). */
constexpr std::uint64_t
mix64(std::uint64_t z)
{
    z += 0x9e3779b97f4a7c15ull;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

/**
 * The value reference `ref` of statement `stmt` writes at iteration
 * `iter`. Never zero in practice (a mix64 output of 0 has
 * probability 2^-64), so zero doubles as "never written".
 */
constexpr std::uint64_t
valueOfWrite(std::uint32_t stmt, std::uint16_t ref,
             std::uint64_t iter)
{
    return mix64(accessKey(stmt, ref, iter));
}

} // namespace core
} // namespace psync

#endif // PSYNC_CORE_VALUE_RULE_HH
