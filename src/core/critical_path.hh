/**
 * @file
 * Dependence-limited lower bound on parallel execution time.
 *
 * With one processor per iteration, free synchronization and an
 * uncontended memory system, the best possible Doacross finish
 * time is the longest chain through the statement-instance graph:
 * program order within an iteration plus every cross-iteration
 * dependence arc. Benches report achieved time against this bound,
 * which also equals the "number of parallel steps" argument the
 * paper makes for Example 1 (pipelined and wavefront executions
 * share the same bound).
 */

#ifndef PSYNC_CORE_CRITICAL_PATH_HH
#define PSYNC_CORE_CRITICAL_PATH_HH

#include "dep/dep_graph.hh"
#include "sim/machine.hh"

namespace psync {
namespace core {

/** Per-access cost assumptions for the bound. */
struct CriticalPathCosts
{
    /** Cycles per uncontended memory access (bus + service). */
    sim::Tick accessCycles = 5;

    /**
     * Minimum cycles for a produced value to cross the sync fabric
     * to a waiting consumer, charged once per cross-iteration arc.
     * On the register fabric a posted write cannot wake a waiter
     * before the next sync-bus broadcast slot, so even with free
     * synchronization ops the dependence hop costs syncBusCycles.
     * Memory-resident schemes poll (or combine the key test into
     * the charged data access), so no separate floor applies and
     * this stays 0 — keeping the bound a true lower bound there.
     */
    sim::Tick syncHopCycles = 0;

    /** Derive from a machine configuration. */
    static CriticalPathCosts
    fromMachine(const sim::MachineConfig &mc)
    {
        CriticalPathCosts c;
        c.accessCycles =
            mc.dataBusCycles + mc.memory.serviceCycles;
        if (mc.fabric == sim::FabricKind::registers) {
            c.syncHopCycles = mc.syncBusCycles;
        } else if (mc.fabric == sim::FabricKind::hierarchical) {
            // Even a same-cluster consumer cannot wake before the
            // producer's local-bus broadcast slot.
            c.syncHopCycles = mc.clusterBusCycles;
        } else if (mc.fabric == sim::FabricKind::combining) {
            // The raising write crosses at least one switch stage
            // before any parked waiter can be released.
            c.syncHopCycles = mc.netStageCycles;
        }
        return c;
    }
};

/** Result of the longest-path analysis. */
struct CriticalPath
{
    /** The dependence-limited lower bound, in cycles. */
    sim::Tick cycles = 0;

    /** Total work (sum over all active statement instances). */
    sim::Tick totalWork = 0;

    /** totalWork / cycles: processors the bound can keep busy. */
    double
    maxUsefulParallelism() const
    {
        return cycles ? static_cast<double>(totalWork) / cycles
                      : 0.0;
    }

    /**
     * The achievable floor on `procs` processors: dependence
     * chains or work/P, whichever binds.
     */
    sim::Tick
    achievableBound(unsigned procs) const
    {
        if (procs == 0)
            return cycles;
        sim::Tick work_bound = (totalWork + procs - 1) / procs;
        return cycles > work_bound ? cycles : work_bound;
    }
};

/**
 * Longest chain through the instance graph of `graph`'s loop.
 * Branch guards are resolved exactly as execution resolves them;
 * covered arcs contribute nothing extra (their chains are already
 * present). O(iterations x statements x arcs).
 */
CriticalPath criticalPath(const dep::DepGraph &graph,
                          const CriticalPathCosts &costs);

/**
 * Independent analytical recomputation of the critical path, in the
 * closed-form style of the barrier-combinatorics analysis: the
 * expected completion time of a synchronization DAG is the maximum
 * over sink instances of the recurrence
 *
 *   F(v) = d(v) + max over predecessors u of (F(u) + hop(u, v))
 *
 * evaluated here by memoized top-down recursion straight over the
 * raw dependence set of `dep::analyze` (duplicates, covered arcs
 * and all) rather than the DepGraph arc lists and forward DP that
 * `criticalPath` uses. Costs are deterministic (jittered statement
 * costs are already resolved in the loop), so expectation equals
 * value and the two computations must agree exactly — the fuzzer
 * gates `analytical == criticalPath().cycles` and
 * `analytical <= achieved <= simulated cycles` on every small DAG.
 */
CriticalPath analyticalCriticalPath(const dep::Loop &loop,
                                    const CriticalPathCosts &costs);

} // namespace core
} // namespace psync

#endif // PSYNC_CORE_CRITICAL_PATH_HH
