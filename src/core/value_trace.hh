/**
 * @file
 * Functional value replay over an access trace.
 *
 * A ValueTrace consumes the same access stream a TraceChecker does
 * (it can forward to one, so a single machine sink feeds both) and
 * applies the value_rule to it in arrival order: every write stores
 * valueOfWrite(stmt, ref, iter) at its address, every read records
 * the value currently there. The result is the memory image and
 * per-access read values that a real execution honoring the
 * observed order would have produced — the comparison artifact of
 * the sim-vs-native cross-validation suite.
 *
 * Both backends deliver accesses in completion order (the simulator
 * through event order, the native executor through a post-run
 * replay sorted by logical-clock tickets), so two traces that order
 * every dependence identically yield identical images even when
 * their interleavings differ elsewhere.
 */

#ifndef PSYNC_CORE_VALUE_TRACE_HH
#define PSYNC_CORE_VALUE_TRACE_HH

#include <cstdint>
#include <map>

#include "dep/loop_ir.hh"
#include "sim/program.hh"

namespace psync {
namespace core {

/** Forward one access stream to two sinks (checker + values). */
class TeeSink : public sim::TraceSink
{
  public:
    TeeSink(sim::TraceSink *first, sim::TraceSink *second)
        : first_(first), second_(second)
    {
    }

    void
    stmtStart(std::uint32_t stmt, std::uint64_t iter,
              sim::Tick when) override
    {
        if (first_)
            first_->stmtStart(stmt, iter, when);
        if (second_)
            second_->stmtStart(stmt, iter, when);
    }

    void
    stmtEnd(std::uint32_t stmt, std::uint64_t iter,
            sim::Tick when) override
    {
        if (first_)
            first_->stmtEnd(stmt, iter, when);
        if (second_)
            second_->stmtEnd(stmt, iter, when);
    }

    void
    access(std::uint32_t stmt, std::uint16_t ref, std::uint64_t iter,
           sim::Addr addr, bool is_write, sim::Tick start,
           sim::Tick end) override
    {
        if (first_)
            first_->access(stmt, ref, iter, addr, is_write, start,
                           end);
        if (second_)
            second_->access(stmt, ref, iter, addr, is_write, start,
                            end);
    }

  private:
    sim::TraceSink *first_;
    sim::TraceSink *second_;
};

/** Applies the value rule to an access stream in arrival order. */
class ValueTrace : public sim::TraceSink
{
  public:
    void access(std::uint32_t stmt, std::uint16_t ref,
                std::uint64_t iter, sim::Addr addr, bool is_write,
                sim::Tick start, sim::Tick end) override;

    /**
     * Final memory image: address -> last value written. Addresses
     * never written are absent (reads alone leave no trace here).
     */
    const std::map<sim::Addr, std::uint64_t> &
    memory() const
    {
        return memory_;
    }

    /**
     * Value each tagged read observed, keyed by accessKey. A read
     * of a never-written address records 0.
     */
    const std::map<std::uint64_t, std::uint64_t> &
    reads() const
    {
        return reads_;
    }

    std::uint64_t writesApplied() const { return writesApplied_; }
    std::uint64_t readsRecorded() const { return readsRecorded_; }

    void
    clear()
    {
        memory_.clear();
        reads_.clear();
        writesApplied_ = 0;
        readsRecorded_ = 0;
    }

  private:
    std::map<sim::Addr, std::uint64_t> memory_;
    std::map<std::uint64_t, std::uint64_t> reads_;
    std::uint64_t writesApplied_ = 0;
    std::uint64_t readsRecorded_ = 0;
};

/** Memory image and read values of a sequential execution. */
struct SequentialImage
{
    /** Address -> last value written, value-rule semantics. */
    std::map<sim::Addr, std::uint64_t> memory;
    /** accessKey -> value each read observed (0 = never written). */
    std::map<std::uint64_t, std::uint64_t> reads;
};

/**
 * Replay `loop` in strict sequential order (iterations ascending;
 * within an active statement all reads observe memory before any of
 * the statement's own writes land, matching the schemes' emission
 * order) and apply the value rule. No simulator, scheme, or trace
 * is involved, so the result is a backend-independent reference
 * oracle: every synchronization scheme on every backend must
 * reproduce these read values, and every scheme that writes arrays
 * in place must reproduce this memory image bit for bit.
 */
SequentialImage sequentialImage(const dep::Loop &loop,
                                sim::Addr word_bytes = 8);

} // namespace core
} // namespace psync

#endif // PSYNC_CORE_VALUE_TRACE_HH
