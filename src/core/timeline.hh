/**
 * @file
 * Time-series telemetry built from fixed-interval timeline samples.
 *
 * The machine emits one batch of sim::Tracer::sample calls per
 * sampling boundary (MachineConfig::timelineInterval); the
 * TraceRecorder buffers them. buildTimeline turns that buffer into
 * per-interval series — bus occupancy, per-module traffic and
 * backlog, per-sync-var waiter counts and traffic, the
 * processor-state mix, and the event core's self-metrics — and runs
 * a hot-spot detector over the traffic series: sustained windows
 * where one module or variable absorbs a disproportionate share of
 * its family's traffic, reported with onset cycle, duration and
 * peak share. The result exports as JSON (full series or the
 * compact trajectory summary) and as a terminal sparkline report.
 */

#ifndef PSYNC_CORE_TIMELINE_HH
#define PSYNC_CORE_TIMELINE_HH

#include <array>
#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "core/json.hh"
#include "core/tracing.hh"
#include "sim/tracing.hh"
#include "sim/types.hh"

namespace psync {
namespace core {

/** Hot-spot detector tuning. */
struct TimelineConfig
{
    /**
     * Minimum share of one interval's family traffic a single
     * entity must absorb for the interval to count as hot.
     */
    double hotShare = 0.5;

    /** Consecutive hot intervals required to report a hot spot. */
    unsigned hotMinIntervals = 3;

    /**
     * Intervals with less family traffic than this are never hot
     * (a lone request trivially has 100% share).
     */
    double minEventsPerInterval = 8;
};

/**
 * One per-boundary series. values[k] belongs to sampling boundary
 * boundaries[k] of the owning Timeline: instantaneous streams hold
 * the state at that boundary, differenced streams hold the activity
 * inside the interval ending at that boundary (values[0] is then 0,
 * the zero-width baseline).
 */
struct TimelineSeries
{
    std::string name;
    std::vector<double> values;

    double peak() const;
    /** Index of the first peak value (0 when empty). */
    std::size_t peakIndex() const;
    double total() const;
};

/**
 * Element-wise sum of several component series (e.g. per-module
 * traffic into total module traffic). Tolerates ragged lengths: the
 * result has the longest input's length, missing elements count 0.
 */
TimelineSeries mergeSeries(const std::string &name,
                           const std::vector<const TimelineSeries *>
                               &parts);

/**
 * A sustained window in which one entity absorbed at least
 * TimelineConfig::hotShare of its family's traffic.
 */
struct HotSpot
{
    /** Entity family: "module" or "sync_var". */
    std::string kind;
    /** Module number or sync-variable id. */
    std::uint32_t index = 0;
    /** Sync-var label when one was recorded ("ctr[0]", ...). */
    std::string label;
    /** Cycle the hot window opened at. */
    sim::Tick onset = 0;
    /** Length of the hot window, cycles. */
    sim::Tick duration = 0;
    /** Largest per-interval traffic share inside the window. */
    double peakShare = 0;
    /** Boundary tick of the peak-share interval. */
    sim::Tick peakAt = 0;
    /** Traffic the entity absorbed during the window. */
    double events = 0;

    json::Value toJson() const;
};

/** One run's assembled timeline. */
struct Timeline
{
    /** Nominal sampling interval (0 when fewer than two samples). */
    sim::Tick interval = 0;

    /** Sampling boundary ticks, ascending (one per sample batch). */
    std::vector<sim::Tick> boundaries;

    /** Bus occupancy in [0, 1] per interval; data bus then sync. */
    std::vector<TimelineSeries> busOccupancy;
    /** Instantaneous bus queue depth (queued + in flight). */
    std::vector<TimelineSeries> busQueue;

    /** Requests serviced per interval, one series per module. */
    std::vector<TimelineSeries> moduleTraffic;
    /** Instantaneous per-module backlog, in requests. */
    std::vector<TimelineSeries> moduleBacklog;

    /**
     * Combining-network switch-conflict wait cycles per interval,
     * one series per stage (combining-fabric runs only).
     */
    std::vector<TimelineSeries> netStageWait;
    /** Packets absorbed by combining per interval, per stage. */
    std::vector<TimelineSeries> netStageCombines;
    /** Cluster-bus occupancy in [0, 1] per interval, per cluster. */
    std::vector<TimelineSeries> clusterBusOccupancy;

    /** Blocked waiters per sync var (sorted by descending total). */
    std::vector<std::pair<sim::SyncVarId, TimelineSeries>> varWaiters;
    /**
     * Sync ops per interval per variable, bucketed from the
     * recorder's sync-op events (sorted by descending total).
     */
    std::vector<std::pair<sim::SyncVarId, TimelineSeries>> varTraffic;

    /** Processors in each ProcActivity state at each boundary. */
    std::array<TimelineSeries, sim::numProcActivities> procStateMix;

    /** Event-core self-metrics. */
    TimelineSeries eventsPerInterval;
    TimelineSeries pendingEvents;
    TimelineSeries ringBuckets;
    TimelineSeries farHeap;
    TimelineSeries heapFallbacks;

    std::vector<HotSpot> hotspots;

    std::size_t numSamples() const { return boundaries.size(); }
    bool empty() const { return boundaries.empty(); }

    /** Full series document (for --timeline-json). */
    json::Value toJson() const;

    /**
     * Compact summary for trajectory records (schema v6): peak bus
     * occupancy/queue, peak module backlog, peak waiter count, peak
     * event rate, heap-fallback total and the hot-spot records.
     */
    json::Value summaryJson() const;

    /** Terminal sparkline/peak report. */
    void writeText(std::ostream &os, std::size_t width = 56) const;
};

/**
 * Assemble a timeline from a recorder's sample buffer (and its
 * sync-op events, which provide per-variable traffic without a
 * dedicated stream). Returns an empty Timeline when the run was not
 * sampled. `labels` resolution uses the recorder's nameSyncVar
 * records.
 */
Timeline buildTimeline(const TraceRecorder &recorder,
                       const TimelineConfig &cfg = TimelineConfig());

/**
 * Render `values` as a fixed-width unicode sparkline, max-pooling
 * when there are more values than columns. Zero renders as a
 * space; the peak renders as a full block.
 */
std::string sparkline(const std::vector<double> &values,
                      std::size_t width);

} // namespace core
} // namespace psync

#endif // PSYNC_CORE_TIMELINE_HH
