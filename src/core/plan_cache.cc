#include "core/plan_cache.hh"

#include <sstream>

#include "core/value_trace.hh"
#include "dep/loop_text.hh"
#include "sim/machine.hh"

namespace psync {
namespace core {

PlanCache::PlanCache(std::size_t capacity)
    : capacity_(capacity ? capacity : 1)
{
}

std::string
PlanCache::makeKey(const dep::Loop &loop, sync::SchemeKind kind,
                   const RunConfig &cfg)
{
    std::ostringstream key;
    // The canonical loop text is the primary key component: two
    // textual spellings that parse to the same loop share a plan,
    // and printLoop round-trips, so the text *is* the loop.
    key << dep::printLoop(loop);
    key << "\n@scheme=" << sync::schemeKindName(kind);
    // Machine fields planning reads: variable allocation spans the
    // fabric (kind, capacity, base address), data addresses come
    // from the layout (word size, module interleave), and process
    // schemes shape emission per processor count.
    const sim::MachineConfig &m = cfg.machine;
    key << ";procs=" << m.numProcs
        << ";fabric=" << static_cast<int>(m.fabric)
        << ";syncRegs=" << m.syncRegisters
        << ";syncBase=" << m.syncVarBase
        << ";modules=" << m.memory.numModules
        << ";wordBytes=" << m.memory.wordBytes;
    const sync::SchemeConfig &s = cfg.scheme;
    key << ";pcs=" << s.numPcs << ";scs=" << s.numScs
        << ";bcc=" << s.boundaryCheckCost
        << ";exact=" << s.exactBoundaries
        << ";cedar=" << s.cedarCombining
        << ";early=" << s.earlyBranchSignals;
    key << ";covElim=" << cfg.eliminateCoveredDeps;
    const ir::PassConfig &p = cfg.passes;
    key << ";passes=" << p.enabled << p.verify
        << p.eliminateRedundantWaits << p.peephole;
    return key.str();
}

std::shared_ptr<const CachedPlan>
PlanCache::get(const dep::Loop &loop, sync::SchemeKind kind,
               const RunConfig &cfg, const PlanFinisher &finisher)
{
    std::string key = makeKey(loop, kind, cfg);
    std::lock_guard<std::mutex> lk(mutex_);

    auto it = index_.find(key);
    if (it != index_.end()) {
        hits_.fetch_add(1, std::memory_order_relaxed);
        lru_.splice(lru_.begin(), lru_, it->second);
        return *it->second;
    }
    misses_.fetch_add(1, std::memory_order_relaxed);

    auto entry = std::make_shared<CachedPlan>();
    entry->key = key;
    entry->loopText = dep::printLoop(loop);
    entry->loop = loop;
    entry->kind = kind;

    // Planning-only machine, exactly as the native runner builds
    // one: the scheme allocates and initializes its sync variables
    // against the sim fabric, and the post-init values become the
    // epoch-reuse seed image.
    sim::Machine planning(cfg.machine);
    PlannedDoacross planned =
        planDoacross(loop, kind, cfg, planning.fabric());
    entry->plan = std::move(planned.plan);
    entry->programs = std::move(planned.programs);
    entry->passStats = std::move(planned.passStats);
    unsigned vars = planning.fabric().allocated();
    entry->initWords.reserve(vars);
    for (unsigned v = 0; v < vars; ++v)
        entry->initWords.push_back(planning.fabric().peek(v));

    // In-place synchronized schemes must reproduce the sequential
    // oracle bit for bit; renamed storage (instance-based) and the
    // deliberately unsynchronized baseline have no
    // backend-independent image — a finisher may attach one.
    if (kind != sync::SchemeKind::instanceBased &&
        kind != sync::SchemeKind::none) {
        SequentialImage seq =
            sequentialImage(loop, cfg.machine.memory.wordBytes);
        entry->refMemory = std::move(seq.memory);
        entry->refReads = std::move(seq.reads);
        entry->hasReference = true;
    }
    if (finisher)
        finisher(*entry);

    lru_.push_front(entry);
    index_.emplace(std::move(key), lru_.begin());
    while (lru_.size() > capacity_) {
        index_.erase(lru_.back()->key);
        lru_.pop_back();
        evictions_.fetch_add(1, std::memory_order_relaxed);
    }
    return entry;
}

bool
PlanCache::contains(const std::string &key) const
{
    std::lock_guard<std::mutex> lk(mutex_);
    return index_.count(key) != 0;
}

std::size_t
PlanCache::size() const
{
    std::lock_guard<std::mutex> lk(mutex_);
    return lru_.size();
}

} // namespace core
} // namespace psync
