/**
 * @file
 * Execution-trace dependence verifier.
 *
 * Records every tagged data access (statement, reference,
 * iteration, start/end ticks) during a simulation and afterwards
 * checks, for each dependence a scheme claims to enforce, that the
 * source access completed no later than the sink access started —
 * access-level checking, because the fine-grained data-oriented
 * schemes legitimately overlap other parts of the two statements.
 *
 * Covered (redundant) arcs are checked too: coverage elimination
 * is only correct if transitivity really delivers the ordering.
 * Instances whose source lies outside the iteration space (real
 * loop boundaries) and instances on untaken branch arms are
 * skipped, matching the semantics of the original loop.
 */

#ifndef PSYNC_CORE_TRACE_CHECK_HH
#define PSYNC_CORE_TRACE_CHECK_HH

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/value_rule.hh"
#include "dep/dependence.hh"
#include "dep/loop_ir.hh"
#include "sim/program.hh"

namespace psync {
namespace core {

/** Collects access events and verifies dependences post-run. */
class TraceChecker : public sim::TraceSink
{
  public:
    void access(std::uint32_t stmt, std::uint16_t ref,
                std::uint64_t iter, sim::Addr addr, bool is_write,
                sim::Tick start, sim::Tick end) override;

    /** Number of access records collected. */
    std::uint64_t numRecords() const { return records_.size(); }

    /**
     * Verify `deps` over the recorded trace of `loop`.
     * @return human-readable violation messages; empty = clean.
     */
    std::vector<std::string> verify(const dep::Loop &loop,
                                    const std::vector<dep::Dep> &deps,
                                    size_t max_messages = 16) const;

    /** Instances checked by the last verify() call. */
    std::uint64_t instancesChecked() const
    {
        return instancesChecked_;
    }

    void clear() { records_.clear(); }

  private:
    struct Record
    {
        sim::Tick firstStart = sim::maxTick;
        sim::Tick lastEnd = 0;
    };

    static std::uint64_t
    keyOf(std::uint32_t stmt, std::uint16_t ref, std::uint64_t iter)
    {
        return accessKey(stmt, ref, iter);
    }

    std::unordered_map<std::uint64_t, Record> records_;
    mutable std::uint64_t instancesChecked_ = 0;
};

} // namespace core
} // namespace psync

#endif // PSYNC_CORE_TRACE_CHECK_HH
