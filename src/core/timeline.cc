#include "core/timeline.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <map>
#include <utility>

namespace psync {
namespace core {

double
TimelineSeries::peak() const
{
    double m = 0;
    for (double v : values)
        m = std::max(m, v);
    return m;
}

std::size_t
TimelineSeries::peakIndex() const
{
    std::size_t idx = 0;
    double m = -std::numeric_limits<double>::infinity();
    for (std::size_t k = 0; k < values.size(); ++k) {
        if (values[k] > m) {
            m = values[k];
            idx = k;
        }
    }
    return values.empty() ? 0 : idx;
}

double
TimelineSeries::total() const
{
    double sum = 0;
    for (double v : values)
        sum += v;
    return sum;
}

TimelineSeries
mergeSeries(const std::string &name,
            const std::vector<const TimelineSeries *> &parts)
{
    TimelineSeries out;
    out.name = name;
    std::size_t longest = 0;
    for (const TimelineSeries *part : parts)
        longest = std::max(longest, part->values.size());
    out.values.assign(longest, 0.0);
    for (const TimelineSeries *part : parts) {
        for (std::size_t k = 0; k < part->values.size(); ++k)
            out.values[k] += part->values[k];
    }
    return out;
}

json::Value
HotSpot::toJson() const
{
    json::Value obj = json::object();
    obj.set("kind", kind);
    obj.set("index", static_cast<std::uint64_t>(index));
    if (!label.empty())
        obj.set("label", label);
    obj.set("onset", static_cast<std::uint64_t>(onset));
    obj.set("duration", static_cast<std::uint64_t>(duration));
    obj.set("peak_share", peakShare);
    obj.set("peak_at", static_cast<std::uint64_t>(peakAt));
    obj.set("events", events);
    return obj;
}

std::string
sparkline(const std::vector<double> &values, std::size_t width)
{
    static const char *blocks[8] = {"▁", "▂", "▃", "▄",
                                    "▅", "▆", "▇", "█"};
    if (values.empty() || width == 0)
        return "";
    std::size_t cols = std::min(width, values.size());
    std::vector<double> pooled(cols, 0.0);
    for (std::size_t c = 0; c < cols; ++c) {
        std::size_t lo = c * values.size() / cols;
        std::size_t hi = (c + 1) * values.size() / cols;
        double m = 0;
        for (std::size_t k = lo; k < std::max(hi, lo + 1); ++k)
            m = std::max(m, values[k]);
        pooled[c] = m;
    }
    double peak = 0;
    for (double v : pooled)
        peak = std::max(peak, v);
    std::string out;
    for (double v : pooled) {
        if (peak <= 0 || v <= 0) {
            out += " ";
            continue;
        }
        int level = static_cast<int>(std::ceil(v / peak * 8.0)) - 1;
        level = std::max(0, std::min(7, level));
        out += blocks[level];
    }
    return out;
}

namespace {

/** Raw per-(stream, index) sample vector, one slot per boundary. */
using RawKey = std::pair<int, std::uint32_t>;

constexpr double unsampled = std::numeric_limits<double>::quiet_NaN();

/** Instantaneous stream: missing samples are zero (sparse). */
TimelineSeries
instantSeries(const std::vector<double> *raw, std::size_t n,
              std::string name)
{
    TimelineSeries out;
    out.name = std::move(name);
    out.values.assign(n, 0.0);
    if (raw) {
        for (std::size_t k = 0; k < n; ++k) {
            if (!std::isnan((*raw)[k]))
                out.values[k] = (*raw)[k];
        }
    }
    return out;
}

/**
 * Cumulative stream: difference consecutive samples into
 * per-interval activity. values[0] is the zero-width baseline (0);
 * missing samples carry the previous running total forward.
 */
TimelineSeries
diffSeries(const std::vector<double> *raw, std::size_t n,
           std::string name)
{
    TimelineSeries out;
    out.name = std::move(name);
    out.values.assign(n, 0.0);
    if (!raw || n == 0)
        return out;
    double prev = std::isnan((*raw)[0]) ? 0.0 : (*raw)[0];
    for (std::size_t k = 1; k < n; ++k) {
        double cur = std::isnan((*raw)[k]) ? prev : (*raw)[k];
        out.values[k] = cur - prev;
        prev = cur;
    }
    return out;
}

/** One traffic entity offered to the hot-spot detector. */
struct HotCandidate
{
    std::uint32_t index;
    std::string label;
    const TimelineSeries *series;
};

void
detectHotSpots(const std::string &kind,
               const std::vector<HotCandidate> &entities,
               const std::vector<sim::Tick> &boundaries,
               const TimelineConfig &cfg, std::vector<HotSpot> &out)
{
    std::size_t n = boundaries.size();
    if (n < 2 || entities.empty())
        return;
    std::vector<double> totals(n, 0.0);
    for (const auto &e : entities) {
        for (std::size_t k = 0; k < e.series->values.size(); ++k)
            totals[k] += e.series->values[k];
    }
    for (const auto &e : entities) {
        bool open = false;
        std::size_t start = 0, last = 0, peakAtK = 0;
        double peakShare = 0, events = 0;
        auto close = [&]() {
            if (open && last - start + 1 >= cfg.hotMinIntervals) {
                HotSpot h;
                h.kind = kind;
                h.index = e.index;
                h.label = e.label;
                h.onset = boundaries[start - 1];
                h.duration = boundaries[last] - h.onset;
                h.peakShare = peakShare;
                h.peakAt = boundaries[peakAtK];
                h.events = events;
                out.push_back(std::move(h));
            }
            open = false;
            peakShare = 0;
            events = 0;
        };
        // Interval k covers (boundaries[k-1], boundaries[k]];
        // index 0 is the zero-width baseline and never hot.
        for (std::size_t k = 1; k < n; ++k) {
            double v = k < e.series->values.size()
                           ? e.series->values[k]
                           : 0.0;
            bool hot = totals[k] >= cfg.minEventsPerInterval &&
                       v >= cfg.hotShare * totals[k];
            if (!hot) {
                close();
                continue;
            }
            if (!open) {
                open = true;
                start = k;
            }
            last = k;
            events += v;
            double share = v / totals[k];
            if (share > peakShare) {
                peakShare = share;
                peakAtK = k;
            }
        }
        close();
    }
}

json::Value
seriesJson(const TimelineSeries &s)
{
    json::Value obj = json::object();
    obj.set("name", s.name);
    json::Value vals = json::array();
    for (double v : s.values)
        vals.push(v);
    obj.set("values", std::move(vals));
    return obj;
}

std::string
varName(sim::SyncVarId var, const std::string &label)
{
    std::string name = "v" + std::to_string(var);
    if (!label.empty())
        name += " (" + label + ")";
    return name;
}

} // namespace

Timeline
buildTimeline(const TraceRecorder &recorder, const TimelineConfig &cfg)
{
    Timeline tl;
    const auto &samples = recorder.samples();
    if (samples.empty())
        return tl;

    for (const auto &s : samples)
        tl.boundaries.push_back(s.at);
    std::sort(tl.boundaries.begin(), tl.boundaries.end());
    tl.boundaries.erase(std::unique(tl.boundaries.begin(),
                                    tl.boundaries.end()),
                        tl.boundaries.end());
    const std::size_t n = tl.boundaries.size();

    auto boundaryIndex = [&](sim::Tick at) -> std::size_t {
        auto it = std::lower_bound(tl.boundaries.begin(),
                                   tl.boundaries.end(), at);
        if (it == tl.boundaries.end())
            return n - 1;
        return static_cast<std::size_t>(it - tl.boundaries.begin());
    };

    // Nominal interval: the most common boundary gap (the final
    // drain sample is usually ragged).
    std::map<sim::Tick, unsigned> gapCounts;
    for (std::size_t k = 1; k < n; ++k)
        ++gapCounts[tl.boundaries[k] - tl.boundaries[k - 1]];
    unsigned best = 0;
    for (const auto &g : gapCounts) {
        if (g.second > best) {
            best = g.second;
            tl.interval = g.first;
        }
    }

    std::map<RawKey, std::vector<double>> raw;
    for (const auto &s : samples) {
        auto &vec = raw[{static_cast<int>(s.stream), s.index}];
        if (vec.empty())
            vec.assign(n, unsampled);
        vec[boundaryIndex(s.at)] = s.value;
    }
    auto rawOf = [&](sim::SampleStream stream,
                     std::uint32_t index) -> const std::vector<double> * {
        auto it = raw.find({static_cast<int>(stream), index});
        return it == raw.end() ? nullptr : &it->second;
    };
    auto indicesOf = [&](sim::SampleStream stream) {
        std::vector<std::uint32_t> indices;
        for (const auto &entry : raw) {
            if (entry.first.first == static_cast<int>(stream))
                indices.push_back(entry.first.second);
        }
        return indices;
    };

    // Buses: cumulative busy cycles -> occupancy per interval.
    static const char *busNames[2] = {"data_bus", "sync_bus"};
    for (std::uint32_t b = 0; b < 2; ++b) {
        const auto *busy = rawOf(sim::SampleStream::busBusyCycles, b);
        if (!busy)
            continue;
        TimelineSeries occ =
            diffSeries(busy, n,
                       std::string(busNames[b]) + " occupancy");
        for (std::size_t k = 1; k < n; ++k) {
            sim::Tick span =
                tl.boundaries[k] - tl.boundaries[k - 1];
            double frac = span
                ? occ.values[k] / static_cast<double>(span)
                : 0.0;
            occ.values[k] = std::max(0.0, std::min(1.0, frac));
        }
        tl.busOccupancy.push_back(std::move(occ));
        tl.busQueue.push_back(instantSeries(
            rawOf(sim::SampleStream::busQueueDepth, b), n,
            std::string(busNames[b]) + " queue"));
    }

    // Memory modules.
    for (std::uint32_t m :
         indicesOf(sim::SampleStream::moduleAccesses)) {
        tl.moduleTraffic.push_back(diffSeries(
            rawOf(sim::SampleStream::moduleAccesses, m), n,
            "module " + std::to_string(m) + " traffic"));
        tl.moduleBacklog.push_back(instantSeries(
            rawOf(sim::SampleStream::moduleBacklog, m), n,
            "module " + std::to_string(m) + " backlog"));
    }

    // Combining-network stages and cluster buses (absent entirely
    // on the flat fabrics, so these families stay empty there and
    // every JSON emission below skips them).
    for (std::uint32_t s :
         indicesOf(sim::SampleStream::netStageConflictCycles)) {
        tl.netStageWait.push_back(diffSeries(
            rawOf(sim::SampleStream::netStageConflictCycles, s), n,
            "net stage " + std::to_string(s) + " wait"));
    }
    for (std::uint32_t s :
         indicesOf(sim::SampleStream::netStageCombines)) {
        tl.netStageCombines.push_back(diffSeries(
            rawOf(sim::SampleStream::netStageCombines, s), n,
            "net stage " + std::to_string(s) + " combines"));
    }
    for (std::uint32_t c :
         indicesOf(sim::SampleStream::clusterBusBusyCycles)) {
        TimelineSeries occ = diffSeries(
            rawOf(sim::SampleStream::clusterBusBusyCycles, c), n,
            "cluster_bus" + std::to_string(c) + " occupancy");
        for (std::size_t k = 1; k < n; ++k) {
            sim::Tick span = tl.boundaries[k] - tl.boundaries[k - 1];
            double frac = span
                ? occ.values[k] / static_cast<double>(span)
                : 0.0;
            occ.values[k] = std::max(0.0, std::min(1.0, frac));
        }
        tl.clusterBusOccupancy.push_back(std::move(occ));
    }

    // Sync-variable waiter counts (sparse stream).
    const auto &varStats = recorder.syncVars();
    auto labelOf = [&](sim::SyncVarId var) -> std::string {
        auto it = varStats.find(var);
        return it == varStats.end() ? std::string()
                                    : it->second.label;
    };
    for (std::uint32_t var :
         indicesOf(sim::SampleStream::syncVarWaiters)) {
        tl.varWaiters.emplace_back(
            var, instantSeries(
                     rawOf(sim::SampleStream::syncVarWaiters, var),
                     n,
                     varName(var, labelOf(var)) + " waiters"));
    }

    // Per-variable traffic, bucketed from the sync-op event log.
    {
        std::map<sim::SyncVarId, TimelineSeries> traffic;
        for (const auto &ev : recorder.syncOpEvents()) {
            auto it = traffic.find(ev.var);
            if (it == traffic.end()) {
                it = traffic
                         .emplace(ev.var,
                                  TimelineSeries{
                                      varName(ev.var,
                                              labelOf(ev.var)) +
                                          " traffic",
                                      std::vector<double>(n, 0.0)})
                         .first;
            }
            it->second.values[boundaryIndex(ev.at)] += 1;
        }
        for (auto &entry : traffic)
            tl.varTraffic.emplace_back(entry.first,
                                       std::move(entry.second));
    }
    auto byTotalDesc = [](const auto &a, const auto &b) {
        return a.second.total() > b.second.total();
    };
    std::stable_sort(tl.varWaiters.begin(), tl.varWaiters.end(),
                     byTotalDesc);
    std::stable_sort(tl.varTraffic.begin(), tl.varTraffic.end(),
                     byTotalDesc);

    // Processor state mix: count processors per activity at each
    // boundary, carrying a processor's last known state forward.
    for (unsigned a = 0; a < sim::numProcActivities; ++a) {
        tl.procStateMix[a].name = std::string("procs ") +
            sim::procActivityName(
                static_cast<sim::ProcActivity>(a));
        tl.procStateMix[a].values.assign(n, 0.0);
    }
    for (std::uint32_t p :
         indicesOf(sim::SampleStream::procActivity)) {
        const auto *vec = rawOf(sim::SampleStream::procActivity, p);
        double state = 0;
        for (std::size_t k = 0; k < n; ++k) {
            if (!std::isnan((*vec)[k]))
                state = (*vec)[k];
            auto code = static_cast<unsigned>(state);
            if (code < sim::numProcActivities)
                tl.procStateMix[code].values[k] += 1;
        }
    }

    // Event-core self metrics.
    tl.eventsPerInterval =
        diffSeries(rawOf(sim::SampleStream::eventsExecuted, 0), n,
                   "events/interval");
    tl.pendingEvents =
        instantSeries(rawOf(sim::SampleStream::pendingEvents, 0), n,
                      "pending events");
    tl.ringBuckets =
        instantSeries(rawOf(sim::SampleStream::ringBuckets, 0), n,
                      "ring buckets");
    tl.farHeap =
        instantSeries(rawOf(sim::SampleStream::farHeapEvents, 0), n,
                      "far-heap events");
    tl.heapFallbacks =
        diffSeries(rawOf(sim::SampleStream::heapFallbacks, 0), n,
                   "heap fallbacks");

    // Hot spots over the two traffic families.
    std::vector<HotCandidate> modules;
    for (std::size_t m = 0; m < tl.moduleTraffic.size(); ++m) {
        modules.push_back({static_cast<std::uint32_t>(m),
                           std::string(),
                           &tl.moduleTraffic[m]});
    }
    detectHotSpots("module", modules, tl.boundaries, cfg,
                   tl.hotspots);
    std::vector<HotCandidate> vars;
    for (const auto &entry : tl.varTraffic)
        vars.push_back({entry.first, labelOf(entry.first),
                        &entry.second});
    detectHotSpots("sync_var", vars, tl.boundaries, cfg,
                   tl.hotspots);
    std::stable_sort(tl.hotspots.begin(), tl.hotspots.end(),
                     [](const HotSpot &a, const HotSpot &b) {
                         return a.events > b.events;
                     });
    return tl;
}

json::Value
Timeline::toJson() const
{
    json::Value doc = json::object();
    doc.set("interval", static_cast<std::uint64_t>(interval));
    json::Value bounds = json::array();
    for (sim::Tick b : boundaries)
        bounds.push(static_cast<std::uint64_t>(b));
    doc.set("boundaries", std::move(bounds));

    auto family = [](const std::vector<TimelineSeries> &list) {
        json::Value arr = json::array();
        for (const auto &s : list)
            arr.push(seriesJson(s));
        return arr;
    };
    json::Value series = json::object();
    series.set("bus_occupancy", family(busOccupancy));
    series.set("bus_queue", family(busQueue));
    series.set("module_traffic", family(moduleTraffic));
    series.set("module_backlog", family(moduleBacklog));
    // Topology families only exist on the composed fabrics; keep
    // flat-fabric documents unchanged by omitting them when empty.
    if (!netStageWait.empty())
        series.set("net_stage_wait", family(netStageWait));
    if (!netStageCombines.empty())
        series.set("net_stage_combines", family(netStageCombines));
    if (!clusterBusOccupancy.empty()) {
        series.set("cluster_bus_occupancy",
                   family(clusterBusOccupancy));
    }
    auto varFamily =
        [](const std::vector<std::pair<sim::SyncVarId,
                                       TimelineSeries>> &list) {
            json::Value arr = json::array();
            for (const auto &entry : list) {
                json::Value obj = seriesJson(entry.second);
                obj.set("var",
                        static_cast<std::uint64_t>(entry.first));
                arr.push(std::move(obj));
            }
            return arr;
        };
    series.set("sync_var_waiters", varFamily(varWaiters));
    series.set("sync_var_traffic", varFamily(varTraffic));
    json::Value mix = json::array();
    for (const auto &s : procStateMix)
        mix.push(seriesJson(s));
    series.set("proc_state_mix", std::move(mix));
    series.set("events_per_interval", seriesJson(eventsPerInterval));
    series.set("pending_events", seriesJson(pendingEvents));
    series.set("ring_buckets", seriesJson(ringBuckets));
    series.set("far_heap", seriesJson(farHeap));
    series.set("heap_fallbacks", seriesJson(heapFallbacks));
    doc.set("series", std::move(series));

    json::Value hot = json::array();
    for (const auto &h : hotspots)
        hot.push(h.toJson());
    doc.set("hotspots", std::move(hot));
    doc.set("summary", summaryJson());
    return doc;
}

json::Value
Timeline::summaryJson() const
{
    json::Value sum = json::object();
    sum.set("interval", static_cast<std::uint64_t>(interval));
    sum.set("samples", static_cast<std::uint64_t>(numSamples()));
    json::Value busPeaks = json::object();
    for (const auto &s : busOccupancy) {
        // "data_bus occupancy" -> "data_bus"
        busPeaks.set(s.name.substr(0, s.name.find(' ')), s.peak());
    }
    sum.set("peak_bus_occupancy", std::move(busPeaks));
    double busQ = 0;
    for (const auto &s : busQueue)
        busQ = std::max(busQ, s.peak());
    sum.set("peak_bus_queue", busQ);

    double backlog = 0;
    std::uint64_t backlogModule = 0;
    for (std::size_t m = 0; m < moduleBacklog.size(); ++m) {
        if (moduleBacklog[m].peak() > backlog) {
            backlog = moduleBacklog[m].peak();
            backlogModule = m;
        }
    }
    sum.set("peak_module_backlog", backlog);
    sum.set("peak_backlog_module", backlogModule);

    double waiters = 0;
    for (const auto &entry : varWaiters)
        waiters = std::max(waiters, entry.second.peak());
    sum.set("peak_sync_waiters", waiters);
    if (!netStageWait.empty()) {
        double stage_wait = 0;
        for (const auto &s : netStageWait)
            stage_wait = std::max(stage_wait, s.peak());
        sum.set("peak_net_stage_wait", stage_wait);
        double combines = 0;
        for (const auto &s : netStageCombines)
            combines += s.total();
        sum.set("net_combines", combines);
    }
    if (!clusterBusOccupancy.empty()) {
        double cluster_occ = 0;
        for (const auto &s : clusterBusOccupancy)
            cluster_occ = std::max(cluster_occ, s.peak());
        sum.set("peak_cluster_bus_occupancy", cluster_occ);
    }
    sum.set("peak_events_per_interval", eventsPerInterval.peak());
    sum.set("far_heap_peak", farHeap.peak());
    sum.set("heap_fallbacks", heapFallbacks.total());

    json::Value hot = json::array();
    for (const auto &h : hotspots)
        hot.push(h.toJson());
    sum.set("hotspots", std::move(hot));
    return sum;
}

void
Timeline::writeText(std::ostream &os, std::size_t width) const
{
    if (empty()) {
        os << "timeline: no samples recorded\n";
        return;
    }
    os << "timeline: " << numSamples() << " samples, interval "
       << interval << " cycles, span [" << boundaries.front()
       << ", " << boundaries.back() << "]\n";

    char buf[96];
    auto row = [&](const TimelineSeries &s, const char *fmt) {
        double p = s.peak();
        std::snprintf(buf, sizeof(buf), fmt, p);
        os << "  " << s.name;
        for (std::size_t pad = s.name.size(); pad < 24; ++pad)
            os << ' ';
        os << sparkline(s.values, width) << "  peak " << buf
           << " @ " << boundaries[s.peakIndex()] << "\n";
    };

    for (const auto &s : busOccupancy)
        row(s, "%.2f");
    for (const auto &s : busQueue)
        row(s, "%.0f");
    if (!moduleTraffic.empty()) {
        std::vector<const TimelineSeries *> parts;
        for (const auto &s : moduleTraffic)
            parts.push_back(&s);
        row(mergeSeries("module traffic (total)", parts), "%.0f");
        const TimelineSeries *hottest = &moduleTraffic[0];
        for (const auto &s : moduleTraffic) {
            if (s.total() > hottest->total())
                hottest = &s;
        }
        row(*hottest, "%.0f");
        const TimelineSeries *worst = &moduleBacklog[0];
        for (const auto &s : moduleBacklog) {
            if (s.peak() > worst->peak())
                worst = &s;
        }
        row(*worst, "%.1f");
    }
    if (!netStageWait.empty()) {
        std::vector<const TimelineSeries *> parts;
        for (const auto &s : netStageWait)
            parts.push_back(&s);
        row(mergeSeries("net stage wait (total)", parts), "%.0f");
        std::vector<const TimelineSeries *> combine_parts;
        for (const auto &s : netStageCombines)
            combine_parts.push_back(&s);
        row(mergeSeries("net combines (total)", combine_parts),
            "%.0f");
    }
    if (!clusterBusOccupancy.empty()) {
        const TimelineSeries *busiest = &clusterBusOccupancy[0];
        for (const auto &s : clusterBusOccupancy) {
            if (s.peak() > busiest->peak())
                busiest = &s;
        }
        row(*busiest, "%.2f");
    }
    for (std::size_t i = 0; i < varWaiters.size() && i < 3; ++i)
        row(varWaiters[i].second, "%.0f");
    for (std::size_t i = 0; i < varTraffic.size() && i < 3; ++i)
        row(varTraffic[i].second, "%.0f");

    const auto &computeMix =
        procStateMix[static_cast<unsigned>(
            sim::ProcActivity::compute)];
    if (!computeMix.values.empty()) {
        row(computeMix, "%.0f");
        TimelineSeries blocked = mergeSeries(
            "procs blocked",
            {&procStateMix[static_cast<unsigned>(
                 sim::ProcActivity::spin)],
             &procStateMix[static_cast<unsigned>(
                 sim::ProcActivity::parked)]});
        row(blocked, "%.0f");
    }
    row(eventsPerInterval, "%.0f");
    if (farHeap.peak() > 0)
        row(farHeap, "%.0f");
    if (heapFallbacks.total() > 0)
        row(heapFallbacks, "%.0f");

    if (hotspots.empty()) {
        os << "  no hot spots detected\n";
        return;
    }
    os << "hot spots:\n";
    for (const auto &h : hotspots) {
        os << "  " << h.kind << " " << h.index;
        if (!h.label.empty())
            os << " (" << h.label << ")";
        std::snprintf(buf, sizeof(buf),
                      ": onset %llu, %llu cycles, peak share %.0f%% "
                      "@ %llu (%.0f events)",
                      static_cast<unsigned long long>(h.onset),
                      static_cast<unsigned long long>(h.duration),
                      h.peakShare * 100.0,
                      static_cast<unsigned long long>(h.peakAt),
                      h.events);
        os << buf << "\n";
    }
}

} // namespace core
} // namespace psync
